/// \file vqmc_launch.cpp
/// \brief Multi-process launcher: fork N real ranks, rendezvous them over a
/// socket group, train data-parallel, and (optionally) execute a scripted
/// process fault matrix against them (DESIGN.md §5h).
///
///   # 4-process smoke run over a Unix-domain socket group
///   ./build/examples/vqmc_launch --ranks 4 --n 16 --iterations 20
///
///   # real process death: rank 2 raises SIGKILL at iteration 10; the
///   # survivors detect the EOF, shrink deterministically and finish
///   ./build/examples/vqmc_launch --ranks 4 --faults "kill:rank=2,iter=10"
///
///   # kill-then-resume bit-identity: kill every rank at iteration 15, then
///   # resume from the iteration-10 snapshots and compare params_fnv lines
///   ./build/examples/vqmc_launch --ranks 2 --checkpoint-base /tmp/ck
///       --checkpoint-every 10 --faults "kill:rank=0,iter=15;kill:rank=1,iter=15"
///   ./build/examples/vqmc_launch --ranks 2 --checkpoint-base /tmp/ck --resume
///
/// Each child prints one summary line with a FNV-1a checksum of its final
/// parameters (`params_fnv=0x...`); two runs reaching the same final state
/// print identical checksums, which is what the CI bit-identity jobs grep.
/// The parent prints a per-rank fate table and exits non-zero when any
/// rank's fate differs from what the fault plan predicts.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/checkpoint.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "obs/exposition.hpp"
#include "parallel/distributed_trainer.hpp"
#include "parallel/process_faults.hpp"
#include "parallel/socket_communicator.hpp"
#include "telemetry/flight_recorder.hpp"

namespace {

using namespace vqmc;
using namespace vqmc::parallel;

// Child exit codes the parent's expectation table understands.
constexpr int kExitOk = 0;          // completed (or left gracefully)
constexpr int kExitError = 2;       // unexpected vqmc::Error
constexpr int kExitAborted = 3;     // group abort / collective deadline

std::vector<std::string> split_specs(const std::string& text) {
  std::vector<std::string> specs;
  std::string current;
  std::istringstream in(text);
  while (std::getline(in, current, ';'))
    if (!current.empty()) specs.push_back(current);
  return specs;
}

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

struct LaunchConfig {
  int ranks = 4;
  int node_size = 0;
  double timeout_seconds = 10.0;
  double rendezvous_timeout_seconds = 30.0;
  PeerDeathPolicy on_peer_death = PeerDeathPolicy::kShrink;
  std::string results_dir;
  std::string crash_dir;
  int iteration_delay_ms = 0;
  DistributedConfig training;
  std::size_t n = 16;
};

/// The whole life of one worker process: env rendezvous, training,
/// summary emission. Never returns to the fork site.
[[noreturn]] void run_child(const LaunchConfig& launch) {
  try {
    // Crash evidence (DESIGN.md §5i): the flight-recorder ring dumps here
    // on fatal signal or group abort, so a SIGKILL'd neighbor's survivors
    // (and the launcher's fate table) are not the only record of the run.
    if (!launch.crash_dir.empty()) {
      telemetry::FlightRecorder::instance().set_crash_dir(launch.crash_dir);
      telemetry::FlightRecorder::install_crash_signal_handler();
    }
    SocketGroupOptions options;
    options.timeout_seconds = launch.timeout_seconds;
    options.rendezvous_timeout_seconds = launch.rendezvous_timeout_seconds;
    options.node_size = launch.node_size;
    options.on_peer_death = launch.on_peer_death;
    std::unique_ptr<SocketCommunicator> comm =
        connect_socket_group_from_env(options);
    const int rank = comm->rank();

    // This rank's scripted faults, handed down through the environment the
    // same way the rendezvous spec is.
    ProcessFaultPlan plan;
    if (const char* spec = std::getenv("VQMC_FAULTS"); spec && *spec) {
      const std::vector<ProcessFaultPlan> plans =
          parse_process_fault_specs(split_specs(spec), comm->size());
      plan = plans[std::size_t(rank)];
    }

    // Deterministic problem construction: every rank builds the identical
    // Hamiltonian and prototype from fixed seeds, exactly like the
    // thread-backed driver's shared prototype.
    const TransverseFieldIsing hamiltonian =
        TransverseFieldIsing::random_dense(launch.n, 11);
    Made prototype = Made::with_default_hidden(launch.n);
    prototype.initialize(12);

    const DistributedResult result = train_distributed_on(
        hamiltonian, prototype, launch.training, *comm, {},
        [&](long long iteration) {
          // Optional per-iteration stretch so CI can scrape the run while
          // it is demonstrably mid-flight.
          if (launch.iteration_delay_ms > 0)
            ::usleep(useconds_t(launch.iteration_delay_ms) * 1000);
          apply_process_faults_at_iteration(plan, iteration, *comm);
        });

    const bool completed = !result.final_parameters.empty();
    const std::uint64_t params_fnv =
        completed ? fnv1a64(result.final_parameters.data(),
                            result.final_parameters.size() * sizeof(Real))
                  : 0;

    std::ostringstream line;
    line << "[rank " << rank << "] "
         << (completed ? "completed" : "left mid-run")
         << " live=" << result.final_live_ranks
         << " energy=" << result.converged_energy
         << " replicas_identical=" << (result.replicas_identical ? 1 : 0)
         << " shrinks=" << result.shrink_events.size()
         << " params_fnv=" << hex64(params_fnv) << "\n";
    // Rank 0 (the group's root — it can never leave) also reports the
    // merged socket telemetry: reconnect/backoff behavior, collective
    // latency and per-rank straggler wait — the observables DESIGN.md
    // §5d/§5h promise.
    if (completed && rank == 0) {
      const auto* retries =
          result.merged_metrics.find_counter("comm.socket.connect_retries");
      const auto* collectives =
          result.merged_metrics.find_counter("comm.socket.collectives");
      const auto* deaths =
          result.merged_metrics.find_counter("comm.socket.peer_deaths");
      const auto* latency = result.merged_metrics.find_histogram(
          "comm.socket.collective_seconds");
      line << "[rank " << rank << "] socket telemetry:"
           << " collectives=" << (collectives ? collectives->value : 0)
           << " connect_retries=" << (retries ? retries->value : 0)
           << " peer_deaths=" << (deaths ? deaths->value : 0);
      if (latency && latency->count > 0)
        line << " collective_p95_s=" << latency->p95;
      line << " allreduce_wait_s=[";
      for (std::size_t r = 0;
           r < result.allreduce_wait_seconds_per_rank.size(); ++r)
        line << (r ? " " : "") << result.allreduce_wait_seconds_per_rank[r];
      line << "]\n";
    }
    std::cout << line.str() << std::flush;

    if (!launch.results_dir.empty()) {
      std::ostringstream json;
      json << "{\"rank\":" << rank << ",\"completed\":" << (completed ? 1 : 0)
           << ",\"final_live_ranks\":" << result.final_live_ranks
           << ",\"converged_energy\":" << result.converged_energy
           << ",\"replicas_identical\":" << (result.replicas_identical ? 1 : 0)
           << ",\"shrink_events\":[";
      for (std::size_t i = 0; i < result.shrink_events.size(); ++i) {
        const ShrinkEvent& event = result.shrink_events[i];
        json << (i ? "," : "") << "{\"iteration\":" << event.iteration
             << ",\"rank\":" << event.rank
             << ",\"live_after\":" << event.live_after << "}";
      }
      json << "],\"params_fnv\":\"" << hex64(params_fnv) << "\"}\n";
      std::ofstream out(launch.results_dir + "/rank" + std::to_string(rank) +
                        ".json");
      out << json.str();
    }
    std::exit(kExitOk);
  } catch (const CommTimeoutError& e) {
    std::cerr << "[child] group aborted: " << e.what() << "\n";
    std::exit(kExitAborted);
  } catch (const std::exception& e) {
    std::cerr << "[child] error: " << e.what() << "\n";
    std::exit(kExitError);
  }
}

struct RankFate {
  pid_t pid = -1;
  bool reaped = false;
  int status = 0;
};

std::string describe_status(int status) {
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    if (sig == SIGKILL) return "SIGKILL";
    if (sig == SIGTERM) return "SIGTERM";
    return "signal " + std::to_string(sig);
  }
  return "status " + std::to_string(status);
}

/// What the fault plan predicts for this rank. `any_kill_or_stop` widens the
/// acceptable fates of *other* ranks under the abort policy (a real death
/// turns into a group-wide CommTimeoutError for every survivor).
bool fate_matches_plan(const ProcessFaultPlan& plan, int status,
                       PeerDeathPolicy policy, bool any_kill_or_stop) {
  if (plan.kill_at_iteration >= 0)
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  if (WIFEXITED(status) && WEXITSTATUS(status) == kExitOk) return true;
  // A survivor may legitimately see the group abort: under the abort
  // policy any peer death does it, and a stopped peer outlasting the
  // collective deadline does it under either policy.
  const bool abort_plausible =
      (policy == PeerDeathPolicy::kAbort && any_kill_or_stop) ||
      plan.stop_at_iteration >= 0 || any_kill_or_stop;
  return abort_plausible && WIFEXITED(status) &&
         WEXITSTATUS(status) == kExitAborted;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("vqmc_launch",
                    "fork N real ranks over a socket group, train "
                    "data-parallel, and execute a scripted process fault "
                    "matrix against them");
  opts.add_option("ranks", "4", "number of worker processes to fork");
  opts.add_option("n", "16", "number of spins");
  opts.add_option("iterations", "20", "training iterations");
  opts.add_option("mbs", "4", "mini-batch per rank");
  opts.add_option("seed", "13", "training seed");
  opts.add_option("node-size", "0",
                  "hierarchical reduction node size (0 = flat star)");
  opts.add_option("timeout", "10",
                  "collective deadline in seconds (0 = wait forever)");
  opts.add_option("rendezvous-timeout", "30", "rendezvous deadline (s)");
  opts.add_option("faults", "",
                  "';'-separated process fault specs, e.g. "
                  "\"kill:rank=2,iter=10;stop:rank=1,iter=5,secs=1.5\"");
  opts.add_option("on-death", "shrink",
                  "peer-death policy: shrink (fold dead ranks out) or abort");
  opts.add_option("endpoint", "",
                  "rendezvous endpoint (unix:///path or tcp://host:port); "
                  "default: a fresh Unix socket under /tmp");
  opts.add_option("checkpoint-base", "",
                  "per-rank training snapshots under <base>.rank<r>");
  opts.add_option("checkpoint-every", "0",
                  "snapshot cadence in iterations (0 = off)");
  opts.add_flag("resume", "load <base>.rank<r> and continue bit-identically");
  opts.add_option("results-dir", "",
                  "write per-rank JSON results under this directory");
  opts.add_option("obs-endpoint", "",
                  "live status/metrics base endpoint: rank r serves "
                  "rank_endpoint(base, r); scraping the base pulls the whole "
                  "group (poll with vqmc_top)");
  opts.add_option("crash-dir", "",
                  "write flight-recorder crash reports (JSONL) here on "
                  "fatal signal or group abort");
  opts.add_option("iteration-delay-ms", "0",
                  "sleep this long at the top of every iteration (stretches "
                  "short runs so they can be scraped mid-flight)");
  if (!opts.parse(argc, argv)) return 0;

  LaunchConfig launch;
  launch.ranks = opts.get_int("ranks");
  launch.n = std::size_t(opts.get_int("n"));
  launch.node_size = opts.get_int("node-size");
  launch.timeout_seconds = opts.get_double("timeout");
  launch.rendezvous_timeout_seconds = opts.get_double("rendezvous-timeout");
  launch.results_dir = opts.get_string("results-dir");
  const std::string policy_name = opts.get_string("on-death");
  if (policy_name == "shrink") {
    launch.on_peer_death = PeerDeathPolicy::kShrink;
  } else if (policy_name == "abort") {
    launch.on_peer_death = PeerDeathPolicy::kAbort;
  } else {
    std::cerr << "unknown --on-death '" << policy_name
              << "' (expected shrink or abort)\n";
    return 1;
  }
  if (launch.ranks < 1) {
    std::cerr << "--ranks must be >= 1\n";
    return 1;
  }

  launch.training.shape = {1, launch.ranks};
  launch.training.iterations = opts.get_int("iterations");
  launch.training.mini_batch_size = std::size_t(opts.get_int("mbs"));
  launch.training.seed = std::uint64_t(opts.get_int("seed"));
  launch.training.eval_batch_per_rank = 64;
  launch.training.comm_timeout_seconds = launch.timeout_seconds;
  launch.training.checkpoint_base = opts.get_string("checkpoint-base");
  launch.training.checkpoint_every = opts.get_int("checkpoint-every");
  launch.training.resume = opts.get_flag("resume");
  launch.training.obs_endpoint = opts.get_string("obs-endpoint");
  launch.crash_dir = opts.get_string("crash-dir");
  launch.iteration_delay_ms = opts.get_int("iteration-delay-ms");

  // Validate the fault matrix up front (in the parent, where a bad spec is
  // a clean usage error instead of N confused children) and keep the parsed
  // plans for the SIGCONT scheduling and the fate table.
  std::vector<ProcessFaultPlan> plans(std::size_t(launch.ranks));
  const std::string fault_arg = opts.get_string("faults");
  try {
    if (!fault_arg.empty())
      plans = parse_process_fault_specs(split_specs(fault_arg), launch.ranks);
  } catch (const std::exception& e) {
    std::cerr << "bad --faults: " << e.what() << "\n";
    return 1;
  }
  bool any_kill_or_stop = false;
  for (const ProcessFaultPlan& plan : plans)
    any_kill_or_stop |=
        plan.kill_at_iteration >= 0 || plan.stop_at_iteration >= 0;

  std::string endpoint = opts.get_string("endpoint");
  if (endpoint.empty())
    endpoint = "unix:///tmp/vqmc_launch_" + std::to_string(::getpid()) +
               ".sock";

  // Fork the ranks. The parent is single-threaded here, so setenv in the
  // children is safe; each child sees only its own rank/fault variables.
  std::vector<RankFate> fates(std::size_t(launch.ranks));
  for (int rank = 0; rank < launch.ranks; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "fork failed for rank " << rank << "\n";
      for (const RankFate& fate : fates)
        if (fate.pid > 0) ::kill(fate.pid, SIGKILL);
      return 1;
    }
    if (pid == 0) {
      ::setenv("VQMC_ENDPOINT", endpoint.c_str(), 1);
      ::setenv("VQMC_RANK", std::to_string(rank).c_str(), 1);
      ::setenv("VQMC_RANKS", std::to_string(launch.ranks).c_str(), 1);
      ::setenv("VQMC_NODE_SIZE", std::to_string(launch.node_size).c_str(), 1);
      ::setenv("VQMC_FAULTS",
               format_process_fault_spec(plans[std::size_t(rank)], rank)
                   .c_str(),
               1);
      run_child(launch);  // never returns
    }
    fates[std::size_t(rank)].pid = pid;
  }

  // Reap loop. WUNTRACED surfaces scripted SIGSTOPs: the launcher plays the
  // cluster manager and SIGCONTs the wedged rank after its scripted pause,
  // turning "stop" faults into bounded real-process hangs.
  int reaped = 0;
  while (reaped < launch.ranks) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WUNTRACED);
    if (pid < 0) break;
    int rank = -1;
    for (int r = 0; r < launch.ranks; ++r)
      if (fates[std::size_t(r)].pid == pid) rank = r;
    if (rank < 0) continue;
    if (WIFSTOPPED(status)) {
      const double pause = plans[std::size_t(rank)].stop_seconds;
      std::cout << "[launch] rank " << rank << " stopped; SIGCONT in "
                << pause << "s\n";
      ::usleep(useconds_t(pause * 1e6));
      ::kill(pid, SIGCONT);
      continue;
    }
    fates[std::size_t(rank)].status = status;
    fates[std::size_t(rank)].reaped = true;
    ++reaped;
  }

  if (endpoint.rfind("unix://", 0) == 0)
    ::unlink(endpoint.substr(7).c_str());
  const std::string obs_base = launch.training.obs_endpoint;
  if (obs_base.rfind("unix://", 0) == 0) {
    for (int rank = 0; rank < launch.ranks; ++rank) {
      const std::string spec = obs::rank_endpoint(obs_base, rank);
      ::unlink(spec.substr(7).c_str());
    }
  }

  Table table("vqmc_launch fate matrix (" + std::to_string(launch.ranks) +
              " rank(s), policy " + policy_name + ")");
  table.set_header({"rank", "scripted fault", "fate", "as planned"});
  int mismatches = 0;
  for (int rank = 0; rank < launch.ranks; ++rank) {
    const ProcessFaultPlan& plan = plans[std::size_t(rank)];
    const RankFate& fate = fates[std::size_t(rank)];
    const bool ok =
        fate.reaped && fate_matches_plan(plan, fate.status,
                                         launch.on_peer_death,
                                         any_kill_or_stop);
    mismatches += ok ? 0 : 1;
    const std::string spec = format_process_fault_spec(plan, rank);
    table.add_row({std::to_string(rank), spec.empty() ? "-" : spec,
                   fate.reaped ? describe_status(fate.status) : "not reaped",
                   ok ? "yes" : "NO"});
  }
  std::cout << table.to_string();
  if (mismatches > 0) {
    std::cerr << mismatches << " rank(s) did not meet the scripted fate\n";
    return 1;
  }
  return 0;
}
