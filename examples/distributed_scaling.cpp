/// \file distributed_scaling.cpp
/// \brief Data-parallel VQMC across virtual devices (Section 4 of the
/// paper): identical model replicas, per-device exact sampling, one gradient
/// allreduce per iteration.  Demonstrates both of the paper's multi-GPU
/// observations — replicas stay synchronized, and a larger effective batch
/// (more devices x fixed mbs) converges to a better energy.
///
///   ./build/examples/distributed_scaling --n 30 --devices 1,2,4,8

#include <iostream>

#include "common/options.hpp"
#include "common/table.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "parallel/cost_model.hpp"
#include "parallel/distributed_trainer.hpp"
#include "telemetry/jsonl.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tracer.hpp"

int main(int argc, char** argv) {
  using namespace vqmc;
  using namespace vqmc::parallel;

  OptionParser opts("distributed_scaling",
                    "data-parallel VQMC on thread-backed virtual devices");
  opts.add_option("n", "30", "number of spins");
  opts.add_option("devices", "1,2,4,8", "device counts to sweep");
  opts.add_option("mbs", "4", "mini-batch per device (paper: 4)");
  opts.add_option("iterations", "80", "training iterations");
  opts.add_option("trace-out", "",
                  "write a Chrome-trace JSON of per-rank phase spans here "
                  "(open in chrome://tracing or Perfetto)");
  opts.add_option("log-json", "",
                  "append structured JSONL events (one object per line) here");
  opts.add_flag("telemetry-off",
                "disable all telemetry (metrics, spans) at runtime");
  if (!opts.parse(argc, argv)) return 0;

  if (opts.get_flag("telemetry-off")) telemetry::set_enabled(false);
  if (!opts.get_string("log-json").empty())
    telemetry::JsonlLogger::instance().open(opts.get_string("log-json"));
  const std::string trace_path = opts.get_string("trace-out");
  if (!trace_path.empty()) telemetry::Tracer::instance().start();

  const std::size_t n = std::size_t(opts.get_int("n"));
  const TransverseFieldIsing hamiltonian =
      TransverseFieldIsing::random_dense(n, 11);
  Made prototype = Made::with_default_hidden(n);
  prototype.initialize(12);

  Table table("Effective batch vs converged energy (TIM, n=" +
              std::to_string(n) + ")");
  table.set_header({"devices", "effective batch", "converged energy",
                    "replicas identical", "rank busy (s)",
                    "modeled V100 (s)"});

  for (int devices : opts.get_int_list("devices")) {
    DistributedConfig config;
    config.shape = {1, devices};
    config.iterations = opts.get_int("iterations");
    config.mini_batch_size = std::size_t(opts.get_int("mbs"));
    config.eval_batch_per_rank = 128;
    config.seed = 13;
    const DistributedResult result =
        train_distributed(hamiltonian, prototype, config);
    table.add_row({std::to_string(devices),
                   std::to_string(devices * opts.get_int("mbs")),
                   format_fixed(result.converged_energy, 4),
                   result.replicas_identical ? "yes" : "NO",
                   format_fixed(result.max_rank_busy_seconds, 3),
                   format_fixed(result.modeled_seconds, 4)});

    if (telemetry::enabled()) {
      // Per-rank allreduce wait: the straggler diagnostic the telemetry
      // merge exposes (DESIGN.md §5d).
      std::cout << "  " << devices << " device(s) allreduce wait (s):";
      for (const double w : result.allreduce_wait_seconds_per_rank)
        std::cout << " " << format_fixed(w, 3);
      std::cout << "\n";
      if (const telemetry::HistogramSnapshot* h =
              result.merged_metrics.find_histogram(
                  "comm.allreduce_wait_seconds")) {
        std::cout << "  merged comm.allreduce_wait_seconds: count "
                  << h->count << ", p50 " << format_fixed(h->p50, 6)
                  << "s, p95 " << format_fixed(h->p95, 6) << "s, p99 "
                  << format_fixed(h->p99, 6) << "s\n";
      }
    }
  }
  std::cout << table.to_string();
  std::cout << "\nWeak-scaling takeaway: rank busy time is ~flat in the "
               "device count while the effective batch (and thus the final "
               "energy) improves.\n";

  if (!trace_path.empty()) {
    telemetry::Tracer::instance().stop();
    telemetry::Tracer::instance().write_chrome_trace(trace_path);
    std::cout << "trace written to " << trace_path << " ("
              << telemetry::Tracer::instance().events().size() << " spans)\n";
  }
  telemetry::JsonlLogger::instance().close();
  return 0;
}
