/// \file distributed_scaling.cpp
/// \brief Data-parallel VQMC across virtual devices (Section 4 of the
/// paper): identical model replicas, per-device exact sampling, one gradient
/// allreduce per iteration.  Demonstrates both of the paper's multi-GPU
/// observations — replicas stay synchronized, and a larger effective batch
/// (more devices x fixed mbs) converges to a better energy.
///
///   ./build/examples/distributed_scaling --n 30 --devices 1,2,4,8

#include <iostream>

#include "common/options.hpp"
#include "common/table.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "parallel/cost_model.hpp"
#include "parallel/distributed_trainer.hpp"

int main(int argc, char** argv) {
  using namespace vqmc;
  using namespace vqmc::parallel;

  OptionParser opts("distributed_scaling",
                    "data-parallel VQMC on thread-backed virtual devices");
  opts.add_option("n", "30", "number of spins");
  opts.add_option("devices", "1,2,4,8", "device counts to sweep");
  opts.add_option("mbs", "4", "mini-batch per device (paper: 4)");
  opts.add_option("iterations", "80", "training iterations");
  if (!opts.parse(argc, argv)) return 0;

  const std::size_t n = std::size_t(opts.get_int("n"));
  const TransverseFieldIsing hamiltonian =
      TransverseFieldIsing::random_dense(n, 11);
  Made prototype = Made::with_default_hidden(n);
  prototype.initialize(12);

  Table table("Effective batch vs converged energy (TIM, n=" +
              std::to_string(n) + ")");
  table.set_header({"devices", "effective batch", "converged energy",
                    "replicas identical", "rank busy (s)",
                    "modeled V100 (s)"});

  for (int devices : opts.get_int_list("devices")) {
    DistributedConfig config;
    config.shape = {1, devices};
    config.iterations = opts.get_int("iterations");
    config.mini_batch_size = std::size_t(opts.get_int("mbs"));
    config.eval_batch_per_rank = 128;
    config.seed = 13;
    const DistributedResult result =
        train_distributed(hamiltonian, prototype, config);
    table.add_row({std::to_string(devices),
                   std::to_string(devices * opts.get_int("mbs")),
                   format_fixed(result.converged_energy, 4),
                   result.replicas_identical ? "yes" : "NO",
                   format_fixed(result.max_rank_busy_seconds, 3),
                   format_fixed(result.modeled_seconds, 4)});
  }
  std::cout << table.to_string();
  std::cout << "\nWeak-scaling takeaway: rank busy time is ~flat in the "
               "device count while the effective batch (and thus the final "
               "energy) improves.\n";
  return 0;
}
