/// \file number_partitioning.cpp
/// \brief Number partitioning as a QUBO (Section 2.4's "quadratic
/// unconstrained binary optimization" family): split a set of weights into
/// two groups with minimal sum difference.
///
/// With s_i = 1 - 2 x_i the squared imbalance expands to
///   (sum_i a_i s_i)^2 = sum_i a_i^2 + 2 sum_{i<j} a_i a_j s_i s_j,
/// a diagonal Ising energy, i.e. a QUBO after the s -> x substitution.
/// VQMC with exact autoregressive sampling is used as the heuristic; a
/// greedy differencing baseline provides the comparison.
///
///   ./build/examples/number_partitioning --n 24 --seed 5

#include <algorithm>
#include <iostream>
#include <limits>
#include <numeric>

#include "common/options.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "hamiltonian/qubo.hpp"
#include "nn/made.hpp"
#include "optim/adam.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/autoregressive_sampler.hpp"

int main(int argc, char** argv) {
  using namespace vqmc;

  OptionParser opts("number_partitioning", "QUBO heuristic via VQMC");
  opts.add_option("n", "24", "number of weights");
  opts.add_option("seed", "5", "instance + solver seed");
  opts.add_option("iterations", "200", "training iterations");
  if (!opts.parse(argc, argv)) return 0;

  const std::size_t n = std::size_t(opts.get_int("n"));
  const std::uint64_t seed = std::uint64_t(opts.get_int("seed"));

  // Random positive weights.
  rng::Xoshiro256 gen(seed);
  std::vector<Real> weights(n);
  for (Real& w : weights) w = rng::uniform(gen, 1.0, 100.0);
  const Real total = std::accumulate(weights.begin(), weights.end(), Real(0));

  auto imbalance = [&](std::span<const Real> x) {
    Real signed_sum = 0;
    for (std::size_t i = 0; i < n; ++i)
      signed_sum += weights[i] * (1 - 2 * x[i]);
    return std::abs(signed_sum);
  };

  // Ising energy (sum a_i s_i)^2 as a QUBO: substitute s = 1 - 2x.
  //   E = sum a_i^2 + 2 sum_{i<j} a_i a_j (1 - 2x_i)(1 - 2x_j)
  // Expanding the product gives constant + linear + quadratic terms in x.
  std::vector<Qubo::Term> terms;
  for (std::size_t i = 0; i < n; ++i) {
    Real linear = 0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) linear += -4 * weights[i] * weights[j];
    terms.push_back({i, i, linear});
    for (std::size_t j = i + 1; j < n; ++j)
      terms.push_back({i, j, 8 * weights[i] * weights[j]});
  }
  const Qubo problem(n, std::move(terms));

  // Greedy baseline: place each weight (descending) on the lighter side.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t(0));
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return weights[a] > weights[b]; });
  Vector greedy(n);
  Real left = 0, right = 0;
  for (std::size_t i : order) {
    if (left <= right) {
      left += weights[i];
      greedy[i] = 0;
    } else {
      right += weights[i];
      greedy[i] = 1;
    }
  }

  // VQMC heuristic.
  Made model = Made::with_default_hidden(n);
  model.initialize(seed + 1);
  AutoregressiveSampler sampler(model, seed + 2);
  Adam optimizer(0.05);
  TrainerConfig config;
  config.iterations = opts.get_int("iterations");
  config.batch_size = 256;
  VqmcTrainer trainer(problem, model, sampler, optimizer, config);
  trainer.run();

  Matrix samples;
  trainer.evaluate_with_samples(1024, samples);
  Real best = std::numeric_limits<Real>::max();
  for (std::size_t k = 0; k < samples.rows(); ++k)
    best = std::min(best, imbalance(samples.row(k)));

  std::cout << "number partitioning, n=" << n << ", total weight "
            << format_fixed(total, 1) << "\n";
  std::cout << "greedy baseline imbalance: "
            << format_fixed(imbalance(greedy.span()), 3) << "\n";
  std::cout << "VQMC best imbalance:       " << format_fixed(best, 3) << "\n";
  std::cout << "training time:             "
            << format_fixed(trainer.training_seconds(), 2) << " s\n";
  return 0;
}
