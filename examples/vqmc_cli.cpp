/// \file vqmc_cli.cpp
/// \brief Full-featured command-line driver: assemble any (Hamiltonian,
/// model, sampler, optimizer) combination supported by the library, train,
/// report, and optionally checkpoint / export metrics.
///
/// Examples:
///   vqmc_cli --problem tim --n 20 --model MADE --sampler AUTO \
///            --optimizer ADAM --iterations 300
///   vqmc_cli --problem maxcut --n 60 --model RBM --sampler MCMC \
///            --optimizer SGD+SR --metrics-csv run.csv
///   vqmc_cli --problem chain --n 24 --coupling 1 --field 1 \
///            --save-checkpoint model.ckpt
///   vqmc_cli --problem chain --n 24 --load-checkpoint model.ckpt \
///            --iterations 50   # resume

#include <iostream>
#include <memory>

#include "common/options.hpp"
#include "common/table.hpp"
#include "core/checkpoint.hpp"
#include "core/factory.hpp"
#include "core/reporting.hpp"
#include "core/trainer.hpp"
#include "obs/exposition.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/jsonl.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tracer.hpp"
#include "hamiltonian/exact.hpp"
#include "hamiltonian/heisenberg.hpp"
#include "hamiltonian/maxcut.hpp"
#include "hamiltonian/qubo.hpp"
#include "hamiltonian/transverse_field_ising.hpp"

using namespace vqmc;

namespace {

std::unique_ptr<Hamiltonian> make_problem(const std::string& kind,
                                          std::size_t n, Real coupling,
                                          Real field, std::uint64_t seed) {
  if (kind == "tim")
    return std::make_unique<TransverseFieldIsing>(
        TransverseFieldIsing::random_dense(n, seed));
  if (kind == "chain")
    return std::make_unique<TransverseFieldIsing>(
        TransverseFieldIsing::uniform_chain(n, coupling, field));
  if (kind == "maxcut")
    return std::make_unique<MaxCut>(MaxCut::paper_instance(n, seed));
  if (kind == "qubo")
    return std::make_unique<Qubo>(Qubo::random_dense(n, seed));
  if (kind == "xxz")
    return std::make_unique<XxzHeisenberg>(
        XxzHeisenberg::chain(n, coupling, field));
  throw Error("unknown problem '" + kind +
              "' (expected tim, chain, maxcut, qubo or xxz)");
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("vqmc_cli", "general VQMC driver");
  opts.add_option("problem", "tim", "tim | chain | maxcut | qubo | xxz");
  opts.add_option("n", "20", "problem size (spins / vertices)");
  opts.add_option("coupling", "1.0", "J for chain/xxz problems");
  opts.add_option("field", "1.0", "h for chain, Jxy for xxz");
  opts.add_option("model", "MADE", "MADE | DeepMADE | RNN | RBM");
  opts.add_option("hidden", "0", "latent size (0 = family default)");
  opts.add_option("sampler", "AUTO", "AUTO | MCMC");
  opts.add_option("optimizer", "ADAM", "SGD | ADAM | SGD+SR | ADAM+SR");
  opts.add_option("iterations", "300", "training iterations");
  opts.add_option("batch", "1024", "training batch size");
  opts.add_option("eval-batch", "1024", "evaluation batch size");
  opts.add_option("seed", "0", "master seed");
  opts.add_option("clip", "0", "max gradient norm (0 = off)");
  opts.add_option("guard-policy", "throw",
                  "health-guard recovery on non-finite values/divergence: "
                  "throw | skip | rollback");
  opts.add_option("divergence-window", "0",
                  "trip the guard after this many consecutive exploded "
                  "iterations (0 = off)");
  opts.add_option("metrics-csv", "", "write per-iteration metrics CSV here");
  opts.add_option("metrics-json", "", "write per-iteration metrics JSON here");
  opts.add_option("save-checkpoint", "", "write final parameters here");
  opts.add_option("load-checkpoint", "", "restore parameters before training");
  opts.add_option("checkpoint", "",
                  "training-state checkpoint base path (periodic full-state "
                  "saves; resume with --resume)");
  opts.add_option("checkpoint-every", "25",
                  "write a training checkpoint every k iterations (with "
                  "--checkpoint)");
  opts.add_option("resume", "",
                  "resume the full training state (parameters, optimizer "
                  "moments, RNG streams, iteration counter) from this "
                  "training checkpoint; the continuation is bit-identical "
                  "to an uninterrupted run");
  opts.add_flag("exact", "also compute the exact ground energy (n <= 20)");
  opts.add_option("trace-out", "",
                  "write a Chrome-trace JSON of the run's phase spans here "
                  "(open in chrome://tracing or Perfetto)");
  opts.add_option("log-json", "",
                  "append structured JSONL events (one object per line) here");
  opts.add_flag("telemetry-off",
                "disable all telemetry (metrics, spans) at runtime");
  opts.add_option("obs-endpoint", "",
                  "serve live status/metrics scrapes here (unix:///path or "
                  "tcp://host:port; poll with vqmc_top)");
  opts.add_option("crash-dir", "",
                  "write a flight-recorder crash report (JSONL) here on "
                  "fatal signal or uncaught error");
  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  try {
    if (opts.get_flag("telemetry-off")) telemetry::set_enabled(false);
    if (!opts.get_string("crash-dir").empty()) {
      telemetry::FlightRecorder::instance().set_crash_dir(
          opts.get_string("crash-dir"));
      telemetry::FlightRecorder::install_crash_signal_handler();
    }
    // Live exposition (DESIGN.md §5i): opt-in background scrape server over
    // the global registry and the flight-recorder ring. Inert (no thread,
    // no socket) unless --obs-endpoint is given.
    std::unique_ptr<obs::StatusServer> obs_server;
    if (!opts.get_string("obs-endpoint").empty()) {
      obs::StatusServerOptions obs_options;
      obs_options.endpoint = opts.get_string("obs-endpoint");
      obs_server = std::make_unique<obs::StatusServer>(obs_options, [] {
        obs::StatusReport report;
        report.add_metrics(telemetry::MetricsRegistry::global().snapshot());
        const telemetry::FlightRecorder& recorder =
            telemetry::FlightRecorder::instance();
        telemetry::FlightRecord last;
        if (recorder.latest(last)) {
          report.set_field("energy", last.energy);
          report.set_field("guard_trips", double(last.guard_trips));
        }
        report.set_field("iteration_rate", recorder.iteration_rate());
        return report;
      });
      std::cout << "obs endpoint: " << obs_server->endpoint() << "\n";
    }
    if (!opts.get_string("log-json").empty())
      telemetry::JsonlLogger::instance().open(opts.get_string("log-json"));
    const std::string trace_path = opts.get_string("trace-out");
    if (!trace_path.empty()) telemetry::Tracer::instance().start();
    const std::size_t n = std::size_t(opts.get_int("n"));
    const std::uint64_t seed = std::uint64_t(opts.get_int("seed"));
    const auto problem =
        make_problem(opts.get_string("problem"), n,
                     Real(opts.get_double("coupling")),
                     Real(opts.get_double("field")), seed + 1000);

    const std::string optimizer_kind = opts.get_string("optimizer");
    auto model = make_model(opts.get_string("model"), n,
                            std::size_t(opts.get_int("hidden")), seed);
    if (!opts.get_string("load-checkpoint").empty())
      load_checkpoint(opts.get_string("load-checkpoint"), *model);
    auto sampler = make_sampler(opts.get_string("sampler"), *model, seed + 1);
    auto optimizer = make_optimizer(optimizer_kind);

    TrainerConfig config;
    config.iterations = opts.get_int("iterations");
    config.batch_size = std::size_t(opts.get_int("batch"));
    config.use_sr = optimizer_label_uses_sr(optimizer_kind);
    config.max_grad_norm = Real(opts.get_double("clip"));
    config.guard.policy =
        health::parse_guard_policy(opts.get_string("guard-policy"));
    config.guard.divergence_window = opts.get_int("divergence-window");
    config.checkpoint_path = opts.get_string("checkpoint");
    config.checkpoint_every = opts.get_int("checkpoint-every");
    VqmcTrainer trainer(*problem, *model, *sampler, *optimizer, config);
    if (!opts.get_string("resume").empty()) {
      const TrainingSnapshot snap =
          load_training_checkpoint(opts.get_string("resume"));
      trainer.restore(snap);
      std::cout << "resumed from '" << opts.get_string("resume")
                << "' at iteration " << snap.iteration << "\n";
    }

    std::cout << "problem=" << problem->name() << " n=" << n
              << " model=" << model->name() << " (d=" << model->num_parameters()
              << ") sampler=" << sampler->name()
              << " optimizer=" << optimizer_kind << "\n";
    trainer.run();

    Matrix samples;
    const EnergyEstimate est = trainer.evaluate_with_samples(
        std::size_t(opts.get_int("eval-batch")), samples);
    std::cout << "energy " << est.mean << " +- " << est.std_error
              << " | std(l) " << est.std_dev << " | train "
              << format_fixed(trainer.training_seconds(), 2) << " s\n";

    // Phase attribution over the whole run (DESIGN.md §5d).
    PhaseBreakdown phase_totals;
    for (const IterationMetrics& m : trainer.history()) {
      phase_totals.sample += m.phases.sample;
      phase_totals.local_energy += m.phases.local_energy;
      phase_totals.gradient += m.phases.gradient;
      phase_totals.sr_solve += m.phases.sr_solve;
      phase_totals.allreduce += m.phases.allreduce;
      phase_totals.optimizer += m.phases.optimizer;
      phase_totals.checkpoint += m.phases.checkpoint;
    }
    if (phase_totals.total() > 0) {
      std::cout << "phases: sample "
                << format_fixed(phase_totals.sample, 2) << "s | local_energy "
                << format_fixed(phase_totals.local_energy, 2)
                << "s | gradient " << format_fixed(phase_totals.gradient, 2)
                << "s | sr " << format_fixed(phase_totals.sr_solve, 2)
                << "s | optimizer " << format_fixed(phase_totals.optimizer, 2)
                << "s | checkpoint "
                << format_fixed(phase_totals.checkpoint, 2) << "s\n";
    }

    const health::HealthCounters& hc = trainer.health_counters();
    if (hc.guard_trips > 0) {
      std::cout << "health: " << hc.guard_trips << " guard trip(s) ("
                << hc.skipped_iterations << " skipped, " << hc.rollbacks
                << " rollbacks) | last: " << hc.last_trip_reason << "\n";
    }

    if (const auto* maxcut = dynamic_cast<const MaxCut*>(problem.get())) {
      Real best = 0;
      for (std::size_t k = 0; k < samples.rows(); ++k)
        best = std::max(best, maxcut->cut_value(samples.row(k)));
      std::cout << "mean cut " << maxcut->cut_from_energy(est.mean)
                << " | best sampled cut " << best << "\n";
    }
    if (opts.get_string("problem") == "chain") {
      const Real exact = tfim_chain_ground_energy(
          n, Real(opts.get_double("coupling")), Real(opts.get_double("field")));
      std::cout << "exact chain energy (Jordan-Wigner): " << exact
                << " | relative error "
                << (est.mean - exact) / std::abs(exact) << "\n";
    } else if (opts.get_flag("exact") && n <= 20) {
      std::cout << "exact ground energy (Lanczos): "
                << exact_ground_state(*problem).energy << "\n";
    }

    if (!opts.get_string("metrics-csv").empty())
      write_text_file(opts.get_string("metrics-csv"),
                      metrics_to_csv(trainer.history()));
    if (!opts.get_string("metrics-json").empty())
      write_text_file(opts.get_string("metrics-json"),
                      metrics_to_json(trainer.history()));
    if (!opts.get_string("save-checkpoint").empty())
      save_checkpoint(opts.get_string("save-checkpoint"), *model);

    if (!trace_path.empty()) {
      telemetry::Tracer::instance().stop();
      telemetry::Tracer::instance().write_chrome_trace(trace_path);
      std::cout << "trace written to " << trace_path << " ("
                << telemetry::Tracer::instance().events().size()
                << " spans)\n";
    }
    telemetry::JsonlLogger::instance().close();
  } catch (const Error& e) {
    const std::string report =
        telemetry::FlightRecorder::instance().dump_crash_report(e.what());
    if (!report.empty())
      std::cerr << "crash report written to " << report << "\n";
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
