/// \file heisenberg_chain.cpp
/// \brief Ground state of an XXZ Heisenberg ring — a Hamiltonian with
/// two-site-flip off-diagonals, beyond the paper's TIM/Max-Cut families —
/// solved with three interchangeable autoregressive wavefunctions
/// (MADE, DeepMADE, RNN) through the same trainer.
///
///   ./build/examples/heisenberg_chain --n 10 --jz 0.5 --jxy 1.0

#include <iostream>

#include "common/options.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "hamiltonian/exact.hpp"
#include "hamiltonian/heisenberg.hpp"
#include "nn/deep_made.hpp"
#include "nn/made.hpp"
#include "nn/rnn.hpp"
#include "optim/adam.hpp"
#include "sampler/autoregressive_sampler.hpp"

int main(int argc, char** argv) {
  using namespace vqmc;

  OptionParser opts("heisenberg_chain",
                    "XXZ ring ground state with three AR wavefunctions");
  opts.add_option("n", "10", "ring length");
  opts.add_option("jz", "0.5", "longitudinal coupling");
  opts.add_option("jxy", "1.0", "transverse coupling (>= 0)");
  opts.add_option("iterations", "200", "training iterations");
  opts.add_option("batch", "256", "training batch size");
  if (!opts.parse(argc, argv)) return 0;

  const std::size_t n = std::size_t(opts.get_int("n"));
  const XxzHeisenberg hamiltonian = XxzHeisenberg::chain(
      n, Real(opts.get_double("jz")), Real(opts.get_double("jxy")));

  std::cout << "XXZ ring: n=" << n << ", Jz=" << opts.get_double("jz")
            << ", Jxy=" << opts.get_double("jxy") << "\n";
  Real exact_energy = 0;
  const bool have_exact = n <= 16;
  if (have_exact) {
    exact_energy = exact_ground_state(hamiltonian).energy;
    std::cout << "exact ground energy (Lanczos): " << exact_energy << "\n\n";
  }

  Table table("VQMC with interchangeable autoregressive models");
  table.set_header({"model", "params", "energy", "std(l)", "rel. error",
                    "train (s)"});

  auto run_model = [&](AutoregressiveModel& model) {
    model.initialize(7);
    AutoregressiveSampler sampler(model, 11);
    Adam optimizer(0.03);
    TrainerConfig config;
    config.iterations = opts.get_int("iterations");
    config.batch_size = std::size_t(opts.get_int("batch"));
    VqmcTrainer trainer(hamiltonian, model, sampler, optimizer, config);
    trainer.run();
    const EnergyEstimate est = trainer.evaluate(1024);
    const std::string rel =
        have_exact ? format_fixed((est.mean - exact_energy) /
                                      std::abs(exact_energy),
                                  4)
                   : "n/a";
    table.add_row({model.name(), std::to_string(model.num_parameters()),
                   format_fixed(est.mean, 4), format_fixed(est.std_dev, 4),
                   rel, format_fixed(trainer.training_seconds(), 2)});
  };

  Made made = Made::with_default_hidden(n);
  run_model(made);
  DeepMade deep(n, made_default_hidden(n), 2);
  run_model(deep);
  RnnWavefunction rnn(n, made_default_hidden(n) / 2);
  run_model(rnn);

  std::cout << table.to_string();
  std::cout << "\nNote: the XXZ off-diagonals flip *pairs* of spins — this "
               "example exercises the general row-sparse Hamiltonian "
               "interface (Definition 2.1) beyond the paper's single-flip "
               "TIM.\n";
  return 0;
}
