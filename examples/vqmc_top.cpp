/// \file vqmc_top.cpp
/// \brief Live terminal view of a running trainer / server: poll an
/// observability endpoint and render a refreshing per-rank table
/// (DESIGN.md §5i).
///
///   # watch a 4-rank vqmc_launch run
///   vqmc_top --endpoint unix:///tmp/vqmc_obs.sock
///
///   # one scrape, machine formats (CI uses --once)
///   vqmc_top --endpoint tcp://127.0.0.1:9100 --once --format prom
///   vqmc_top --endpoint tcp://127.0.0.1:9100 --once --format json
///
/// `--format table` (the default) shows per-rank liveness, iteration,
/// iteration rate, energy, allreduce-wait p50/p99, queue depth and guard
/// trips — scraped from the aggregating rank, so one endpoint covers the
/// whole group including ranks that stopped answering.

#include <unistd.h>

#include <chrono>
#include <iostream>
#include <thread>

#include "common/error.hpp"
#include "common/options.hpp"
#include "obs/exposition.hpp"

using namespace vqmc;

int main(int argc, char** argv) {
  OptionParser opts("vqmc_top",
                    "poll a vqmc observability endpoint and render a "
                    "refreshing status table");
  opts.add_option("endpoint", "",
                  "endpoint to scrape (unix:///path or tcp://host:port)");
  opts.add_option("format", "table", "table | json | prom | raw");
  opts.add_option("interval", "1.0", "refresh interval in seconds");
  opts.add_option("timeout", "5.0", "per-scrape deadline in seconds");
  opts.add_flag("once", "scrape once, print, exit (no screen refresh)");
  try {
    if (!opts.parse(argc, argv)) return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const std::string endpoint = opts.get_string("endpoint");
  if (endpoint.empty()) {
    std::cerr << "vqmc_top: --endpoint is required\n";
    return 1;
  }
  const std::string format = opts.get_string("format");
  const bool once = opts.get_flag("once");
  const double timeout = opts.get_double("timeout");
  const double interval = opts.get_double("interval");
  // Refresh with ANSI clear only when actually talking to a terminal;
  // redirected output degrades to appended frames.
  const bool clear_screen = !once && ::isatty(STDOUT_FILENO) != 0;

  int consecutive_failures = 0;
  while (true) {
    try {
      const std::string body = obs::fetch_status(endpoint, format, timeout);
      consecutive_failures = 0;
      if (clear_screen) std::cout << "\033[H\033[2J";
      std::cout << body;
      if (body.empty() || body.back() != '\n') std::cout << '\n';
      std::cout.flush();
    } catch (const Error& e) {
      ++consecutive_failures;
      std::cerr << "vqmc_top: scrape failed: " << e.what() << "\n";
      // One shot reports the failure; the watch loop survives a few missed
      // scrapes (the run may be between iterations or restarting) but
      // gives up once the endpoint looks gone for good.
      if (once || consecutive_failures >= 5) return 1;
    }
    if (once) return 0;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(long(interval * 1000)));
  }
}
