/// \file vqmc_serve.cpp
/// \brief Serving quickstart: load a MADE checkpoint (or random-initialize
/// one), publish a fleet of models to one serve::InferenceEngine, and drive
/// it with an in-process multi-tenant closed-loop load generator.
///
/// Normal mode prints throughput and end-to-end latency percentiles from
/// the telemetry registry; `--models N` spreads the clients over N
/// independently hot-swappable models on the one shared worker pool, and
/// `--quota-rate/--quota-burst` put a token-bucket quota on the load
/// generator's tenant.
///
/// `--smoke` is the CI serving smoke test: a 2-model fleet and three
/// tenants — "alice" (interactive lane, unlimited), "bob" (batch lane,
/// unlimited) and "mallory" (batch lane, burst-only quota that must
/// produce deterministic ServeQuotaError rejections).  Both models are
/// hot-swapped mid-load.  The process exits nonzero unless (a) every model
/// individually satisfies submitted == completed + failed after drain,
/// (b) every response is attributable to a published version of its model
/// and the final version won on both, (c) mallory was quota-rejected and
/// nobody else was, and (d) the global accounting closes exactly.
///
/// `--scrape-out FILE` (with `--obs-endpoint`) self-scrapes the Prometheus
/// rendering after drain and writes it to FILE, so CI can validate the
/// labeled per-model/per-tenant families with tools/check_metrics.py.
///
/// Examples:
///   vqmc_serve --spins 64 --clients 4 --requests 200
///   vqmc_serve --models 4 --clients 8 --window-us 500 --batch-rows 128
///   vqmc_serve --smoke --obs-endpoint unix:///tmp/serve.sock \
///       --scrape-out serve.prom

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/options.hpp"
#include "core/checkpoint.hpp"
#include "nn/made.hpp"
#include "obs/exposition.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "serve/inference_engine.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"

using namespace vqmc;

namespace {

Made make_model(const OptionParser& opts) {
  const std::string path = opts.get_string("checkpoint");
  if (!path.empty()) {
    const TrainingSnapshot snapshot = load_training_checkpoint(path);
    const auto model = serve::ModelSnapshot::from_training_snapshot(snapshot);
    std::cout << "loaded checkpoint '" << path << "': MADE n="
              << model->num_spins() << " h=" << model->hidden_size() << "\n";
    return model->model();
  }
  const std::size_t n = std::size_t(opts.get_int("spins"));
  const std::size_t h = opts.get_int("hidden") > 0
                            ? std::size_t(opts.get_int("hidden"))
                            : made_default_hidden(n);
  Made model(n, h);
  model.initialize(7);
  std::cout << "no checkpoint given; random-initialized MADE n=" << n
            << " h=" << h << "\n";
  return model;
}

/// Nudge every parameter, standing in for one optimizer step between
/// snapshot publishes.
void perturb(Made& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p += rng::uniform(gen, -0.01, 0.01);
}

struct ClientTally {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t quota = 0;
  std::uint64_t failed = 0;
  std::uint64_t min_version = UINT64_MAX;
  std::uint64_t max_version = 0;

  void saw_version(std::uint64_t v) {
    if (v < min_version) min_version = v;
    if (v > max_version) max_version = v;
  }
};

std::string model_name(std::size_t index) {
  return "m" + std::to_string(index);
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("vqmc_serve",
                    "serve a fleet of MADE wavefunctions to an in-process "
                    "multi-tenant load generator (quickstart + CI smoke)");
  opts.add_option("checkpoint", "", "training checkpoint to serve");
  opts.add_option("spins", "64", "spin count when random-initializing");
  opts.add_option("hidden", "0", "hidden width (0 = paper default)");
  opts.add_option("workers", "2", "engine worker threads (shared pool)");
  opts.add_option("batch-rows", "64", "micro-batch row budget");
  opts.add_option("window-us", "200", "batching window (microseconds)");
  opts.add_option("max-pending", "4096", "admission bound (rows)");
  opts.add_option("models", "1", "fleet size (models named m0..mN-1)");
  opts.add_option("clients", "4", "closed-loop client threads");
  opts.add_option("requests", "200", "requests per client");
  opts.add_option("rows", "16", "rows per request");
  opts.add_option("tenant", "", "tenant id for the load clients");
  opts.add_option("quota-rate", "0",
                  "tenant quota: sustained rows/s (0 = no refill)");
  opts.add_option("quota-burst", "0",
                  "tenant quota: burst rows (0 = unlimited tenant)");
  opts.add_option("obs-endpoint", "",
                  "serve live status/metrics scrapes here (unix:///path or "
                  "tcp://host:port; poll with vqmc_top)");
  opts.add_option("scrape-out", "",
                  "after drain, self-scrape the obs endpoint's Prometheus "
                  "rendering into this file");
  opts.add_flag("smoke",
                "CI smoke: 2-model fleet, 3 tenants, hot-swap + quota "
                "rejections under load, strict per-model accounting");
  if (!opts.parse(argc, argv)) return 0;

  const bool smoke = opts.get_flag("smoke");
  const std::size_t models =
      smoke ? 2 : std::max(1, opts.get_int("models"));
  Made model = make_model(opts);

  serve::ServeConfig config;
  config.workers = std::size_t(opts.get_int("workers"));
  config.max_batch_rows = std::size_t(opts.get_int("batch-rows"));
  config.max_wait_us = opts.get_double("window-us");
  config.max_pending_rows = std::size_t(opts.get_int("max-pending"));
  const std::string cli_tenant = opts.get_string("tenant");
  if (smoke) {
    // Burst-only budget: 64 rows ever, no refill — mallory's rejections
    // below are deterministic.
    config.tenant_quotas["mallory"] = serve::TenantQuota{0, 64};
  } else if (!cli_tenant.empty() && opts.get_double("quota-burst") > 0) {
    config.tenant_quotas[cli_tenant] = serve::TenantQuota{
        opts.get_double("quota-rate"), opts.get_double("quota-burst")};
  }
  serve::InferenceEngine engine(config);
  for (std::size_t m = 0; m < models; ++m) {
    // Distinct weights per model: responses are attributable per chain.
    Made variant = model;
    if (m > 0) perturb(variant, 100 + m);
    engine.publish_model(model_name(m), variant);
  }

  // Live exposition (DESIGN.md §5i): scrape-on-demand snapshots of the
  // global metrics registry plus the engine-wide and labeled per-model /
  // per-tenant counter families.
  std::unique_ptr<obs::StatusServer> obs_server;
  if (!opts.get_string("obs-endpoint").empty()) {
    obs::StatusServerOptions obs_options;
    obs_options.endpoint = opts.get_string("obs-endpoint");
    obs_server = std::make_unique<obs::StatusServer>(
        obs_options, [&engine] {
          obs::StatusReport report;
          report.add_metrics(telemetry::MetricsRegistry::global().snapshot());
          for (const auto& [name, value] :
               serve::counter_fields(engine.counters()))
            report.counters.push_back({name, value});
          for (const auto& [name, value] : engine.fleet_counter_fields())
            report.counters.push_back({name, value});
          return report;
        });
    std::cout << "obs endpoint: " << obs_server->endpoint() << "\n";
  }

  const std::size_t clients = std::size_t(opts.get_int("clients"));
  const int requests = opts.get_int("requests");
  const std::size_t rows = std::size_t(opts.get_int("rows"));

  std::cout << "serving " << models << " model(s) with " << config.workers
            << " shared workers, batch budget " << config.max_batch_rows
            << " rows, window " << config.max_wait_us << " us; load: "
            << clients << " clients x " << requests << " requests x " << rows
            << " rows\n";

  // Closed-loop load generator: each client alternates sample-n requests
  // with log-psi evaluations of the samples it just received — the typical
  // measurement loop of a downstream consumer.  Clients round-robin over
  // the fleet; lanes and tenants depend on the mode (smoke pins alice to
  // the interactive lane and bob to the batch lane).
  std::vector<ClientTally> tallies(clients);
  const double start_us = telemetry::now_us();
  std::vector<std::thread> threads;
  threads.reserve(clients + 1);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[c];
      serve::RequestOptions options;
      options.model = model_name(c % models);
      if (smoke) {
        options.tenant = c % 2 == 0 ? "alice" : "bob";
        options.priority = c % 2 == 0 ? serve::Priority::kInteractive
                                      : serve::Priority::kBatch;
      } else {
        options.tenant = cli_tenant;  // "" = engine default tenant
        options.priority = c % 2 == 0 ? serve::Priority::kInteractive
                                      : serve::Priority::kBatch;
      }
      for (int r = 0; r < requests; ++r) {
        const std::uint64_t seed = 10'000 * (c + 1) + std::uint64_t(r);
        try {
          serve::SampleResult sampled =
              engine.submit_sample(rows, seed, options).get();
          tally.saw_version(sampled.model_version);
          const serve::EvalResult eval =
              engine.submit_log_psi(std::move(sampled.samples), options)
                  .get();
          tally.saw_version(eval.model_version);
          tally.ok += 2;
        } catch (const serve::ServeQuotaError&) {
          ++tally.quota;  // rejected synchronously: nothing outstanding
        } catch (const serve::ServeOverloadError&) {
          ++tally.shed;  // reported synchronously: nothing outstanding
        } catch (const serve::ServeError&) {
          ++tally.failed;
        }
      }
    });
  }

  // Smoke: a greedy quota-limited tenant.  mallory's 100 single-row sample
  // requests run against a never-refilling 64-row bucket — exactly 64 admit
  // and 36 come back as ServeQuotaError (overload shedding, were it ever to
  // happen, consumes no tokens and is accounted separately).
  ClientTally mallory;
  constexpr int kMalloryRequests = 100;
  if (smoke) {
    threads.emplace_back([&] {
      serve::RequestOptions options;
      options.model = model_name(0);
      options.tenant = "mallory";
      options.priority = serve::Priority::kBatch;
      std::vector<std::future<serve::SampleResult>> futures;
      for (int r = 0; r < kMalloryRequests; ++r) {
        try {
          futures.push_back(
              engine.submit_sample(1, 777'000 + std::uint64_t(r), options));
        } catch (const serve::ServeQuotaError&) {
          ++mallory.quota;
        } catch (const serve::ServeOverloadError&) {
          ++mallory.shed;
        }
      }
      for (auto& future : futures) {
        try {
          mallory.saw_version(future.get().model_version);
          ++mallory.ok;
        } catch (const serve::ServeError&) {
          ++mallory.failed;
        }
      }
    });
  }

  // Hot-swap under load: publish a second version of every model while the
  // clients run.
  std::vector<std::uint64_t> last_versions(models, 1);
  if (smoke || clients > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 5 : 20));
    for (std::size_t m = 0; m < models; ++m) {
      Made variant = model;
      perturb(variant, 200 + m);
      last_versions[m] = engine.publish_model(model_name(m), variant);
    }
  }

  for (auto& thread : threads) thread.join();
  engine.drain();
  const double elapsed_s = (telemetry::now_us() - start_us) * 1e-6;

  const serve::EngineCounters counters = engine.counters();
  std::uint64_t client_ok = mallory.ok, client_shed = mallory.shed;
  std::uint64_t client_quota = mallory.quota,
                client_failed = mallory.failed;
  std::uint64_t min_version = mallory.min_version,
                max_version = mallory.max_version;
  for (const ClientTally& tally : tallies) {
    client_ok += tally.ok;
    client_shed += tally.shed;
    client_quota += tally.quota;
    client_failed += tally.failed;
    if (tally.max_version > 0) {
      min_version = std::min(min_version, tally.min_version);
      max_version = std::max(max_version, tally.max_version);
    }
  }

  std::cout << "\n--- results ---\n";
  std::cout << "elapsed: " << elapsed_s << " s\n";
  std::cout << "engine: ";
  for (const auto& [name, value] : serve::counter_fields(counters))
    std::cout << ' ' << name << '=' << value;
  std::cout << "\n";
  for (const auto& [name, model_c] : engine.model_counters()) {
    std::cout << "model " << name << ": submitted=" << model_c.submitted
              << " completed=" << model_c.completed
              << " failed=" << model_c.failed << " batches=" << model_c.batches
              << " version=" << model_c.version << "\n";
  }
  for (const auto& [name, tenant_c] : engine.tenant_counters()) {
    std::cout << "tenant " << name << ": submitted=" << tenant_c.submitted
              << " completed=" << tenant_c.completed
              << " failed=" << tenant_c.failed << " shed=" << tenant_c.shed
              << " quota_rejected=" << tenant_c.quota_rejected << "\n";
  }
  std::cout << "clients: ok=" << client_ok << " shed=" << client_shed
            << " quota=" << client_quota << " failed=" << client_failed
            << "; versions seen [" << (max_version == 0 ? 0 : min_version)
            << ", " << max_version << "]\n";
  if (counters.completed > 0) {
    std::cout << "throughput: " << double(counters.completed) / elapsed_s
              << " responses/s, "
              << double(counters.completed) * double(rows) / elapsed_s
              << " rows/s (approx)\n";
  }
  const telemetry::MetricsSnapshot metrics =
      telemetry::metrics().snapshot();
  if (const auto* latency = metrics.find_histogram("serve.latency_seconds")) {
    std::cout << "latency:   p50 " << latency->p50 * 1e3 << " ms, p95 "
              << latency->p95 * 1e3 << " ms, p99 " << latency->p99 * 1e3
              << " ms over " << latency->count << " responses\n";
  }
  if (const auto* occupancy = metrics.find_histogram("serve.batch_rows")) {
    std::cout << "batch occupancy: mean " << occupancy->mean()
              << " rows, p95 " << occupancy->p95 << "\n";
  }

  // Self-scrape: pull the Prometheus rendering off our own obs endpoint so
  // CI can validate the labeled serve families with check_metrics.py.
  const std::string scrape_out = opts.get_string("scrape-out");
  if (!scrape_out.empty()) {
    if (obs_server == nullptr) {
      std::cerr << "--scrape-out requires --obs-endpoint\n";
      return 1;
    }
    const std::string prom =
        obs::fetch_status(obs_server->endpoint(), "prom", 5.0);
    std::ofstream out(scrape_out);
    out << prom;
    if (!out) {
      std::cerr << "failed to write scrape to '" << scrape_out << "'\n";
      return 1;
    }
    std::cout << "wrote Prometheus scrape to " << scrape_out << " ("
              << prom.size() << " bytes)\n";
  }

  if (smoke) {
    // Zero dropped-but-unreported, per model and globally: every admitted
    // request resolved, every client-side outcome is accounted, responses
    // only ever cite published versions of their model, the hot-swap won on
    // every chain, and only the quota-limited tenant was quota-rejected.
    bool ok = true;
    const auto check = [&](bool condition, const std::string& what) {
      if (!condition) {
        std::cerr << "SMOKE FAILURE: " << what << "\n";
        ok = false;
      }
    };
    check(counters.submitted == counters.completed + counters.failed,
          "submitted != completed + failed after drain");
    check(client_ok + client_failed == counters.completed + counters.failed,
          "client-observed outcomes do not match engine accounting");
    check(client_shed == counters.shed, "shed count mismatch");
    check(client_quota == counters.quota_rejected,
          "quota rejection count mismatch");
    const auto model_counters = engine.model_counters();
    check(model_counters.size() == models, "model registry size mismatch");
    for (const auto& [name, model_c] : model_counters) {
      check(model_c.submitted == model_c.completed + model_c.failed,
            "model " + name + ": submitted != completed + failed");
      check(model_c.publishes == 2,
            "model " + name + ": expected exactly two published versions");
      check(model_c.version == 2,
            "model " + name + ": hot-swapped version is not current");
    }
    check(counters.publishes == 2 * models,
          "engine publish count != 2 per model");
    for (const auto& [name, tenant_c] : engine.tenant_counters()) {
      if (name == "mallory") {
        check(tenant_c.quota_rejected > 0,
              "mallory was never quota-rejected");
        check(tenant_c.submitted + tenant_c.quota_rejected + tenant_c.shed ==
                  kMalloryRequests,
              "mallory attempt accounting does not close");
      } else {
        check(tenant_c.quota_rejected == 0,
              "unlimited tenant " + name + " was quota-rejected");
      }
    }
    check(max_version <= 2 && (max_version == 0 || min_version >= 1),
          "response cites a never-published version");
    std::cout << (ok ? "SMOKE OK\n" : "SMOKE FAILED\n");
    return ok ? 0 : 1;
  }
  return 0;
}
