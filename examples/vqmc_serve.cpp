/// \file vqmc_serve.cpp
/// \brief Serving quickstart: load a MADE checkpoint (or random-initialize
/// one), publish it to a serve::InferenceEngine, and drive it with an
/// in-process closed-loop load generator.
///
/// Normal mode prints throughput and end-to-end latency percentiles from
/// the telemetry registry.  `--smoke` is the CI serving smoke test: it
/// publishes a second snapshot version mid-load and exits nonzero unless
/// (a) every admitted request was fulfilled (zero dropped-but-unreported:
/// submitted == completed + failed after drain), (b) every response is
/// attributable to one of the published versions, and (c) the final
/// published version won.
///
/// Examples:
///   vqmc_serve --spins 64 --clients 4 --requests 200
///   vqmc_serve --checkpoint run.ckpt --window-us 500 --batch-rows 128
///   vqmc_serve --smoke

#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/options.hpp"
#include "core/checkpoint.hpp"
#include "nn/made.hpp"
#include "obs/exposition.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "serve/inference_engine.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"

using namespace vqmc;

namespace {

Made make_model(const OptionParser& opts) {
  const std::string path = opts.get_string("checkpoint");
  if (!path.empty()) {
    const TrainingSnapshot snapshot = load_training_checkpoint(path);
    const auto model = serve::ModelSnapshot::from_training_snapshot(snapshot);
    std::cout << "loaded checkpoint '" << path << "': MADE n="
              << model->num_spins() << " h=" << model->hidden_size() << "\n";
    return model->model();
  }
  const std::size_t n = std::size_t(opts.get_int("spins"));
  const std::size_t h = opts.get_int("hidden") > 0
                            ? std::size_t(opts.get_int("hidden"))
                            : made_default_hidden(n);
  Made model(n, h);
  model.initialize(7);
  std::cout << "no checkpoint given; random-initialized MADE n=" << n
            << " h=" << h << "\n";
  return model;
}

/// Nudge every parameter, standing in for one optimizer step between
/// snapshot publishes.
void perturb(Made& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p += rng::uniform(gen, -0.01, 0.01);
}

struct ClientTally {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t min_version = UINT64_MAX;
  std::uint64_t max_version = 0;

  void saw_version(std::uint64_t v) {
    if (v < min_version) min_version = v;
    if (v > max_version) max_version = v;
  }
};

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("vqmc_serve",
                    "serve a MADE wavefunction to an in-process load "
                    "generator (quickstart + CI smoke test)");
  opts.add_option("checkpoint", "", "training checkpoint to serve");
  opts.add_option("spins", "64", "spin count when random-initializing");
  opts.add_option("hidden", "0", "hidden width (0 = paper default)");
  opts.add_option("workers", "2", "engine worker threads");
  opts.add_option("batch-rows", "64", "micro-batch row budget");
  opts.add_option("window-us", "200", "batching window (microseconds)");
  opts.add_option("max-pending", "4096", "admission bound (rows)");
  opts.add_option("clients", "4", "closed-loop client threads");
  opts.add_option("requests", "200", "requests per client");
  opts.add_option("rows", "16", "rows per request");
  opts.add_option("obs-endpoint", "",
                  "serve live status/metrics scrapes here (unix:///path or "
                  "tcp://host:port; poll with vqmc_top)");
  opts.add_flag("smoke", "CI smoke: hot-swap under load, strict accounting");
  if (!opts.parse(argc, argv)) return 0;

  const bool smoke = opts.get_flag("smoke");
  Made model = make_model(opts);

  serve::ServeConfig config;
  config.workers = std::size_t(opts.get_int("workers"));
  config.max_batch_rows = std::size_t(opts.get_int("batch-rows"));
  config.max_wait_us = opts.get_double("window-us");
  config.max_pending_rows = std::size_t(opts.get_int("max-pending"));
  serve::InferenceEngine engine(config);
  engine.publish_model(model);

  // Live exposition (DESIGN.md §5i): scrape-on-demand snapshots of the
  // global metrics registry plus the engine counters.
  std::unique_ptr<obs::StatusServer> obs_server;
  if (!opts.get_string("obs-endpoint").empty()) {
    obs::StatusServerOptions obs_options;
    obs_options.endpoint = opts.get_string("obs-endpoint");
    obs_server = std::make_unique<obs::StatusServer>(
        obs_options, [&engine] {
          obs::StatusReport report;
          report.add_metrics(telemetry::MetricsRegistry::global().snapshot());
          for (const auto& [name, value] :
               serve::counter_fields(engine.counters()))
            report.counters.push_back({name, value});
          return report;
        });
    std::cout << "obs endpoint: " << obs_server->endpoint() << "\n";
  }

  const std::size_t clients = std::size_t(opts.get_int("clients"));
  const int requests = opts.get_int("requests");
  const std::size_t rows = std::size_t(opts.get_int("rows"));

  std::cout << "serving with " << config.workers << " workers, batch budget "
            << config.max_batch_rows << " rows, window " << config.max_wait_us
            << " us; load: " << clients << " clients x " << requests
            << " requests x " << rows << " rows\n";

  // Closed-loop load generator: each client alternates sample-n requests
  // with log-psi evaluations of the samples it just received — the typical
  // measurement loop of a downstream consumer.
  std::vector<ClientTally> tallies(clients);
  const double start_us = telemetry::now_us();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[c];
      for (int r = 0; r < requests; ++r) {
        const std::uint64_t seed = 10'000 * (c + 1) + std::uint64_t(r);
        try {
          serve::SampleResult sampled =
              engine.submit_sample(rows, seed).get();
          tally.saw_version(sampled.model_version);
          const serve::EvalResult eval =
              engine.submit_log_psi(std::move(sampled.samples)).get();
          tally.saw_version(eval.model_version);
          tally.ok += 2;
        } catch (const serve::ServeOverloadError&) {
          ++tally.shed;  // reported synchronously: nothing outstanding
        } catch (const serve::ServeError&) {
          ++tally.failed;
        }
      }
    });
  }

  // Hot-swap under load: publish a second version while clients run.
  std::uint64_t last_version = 1;
  if (smoke || clients > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 5 : 20));
    perturb(model, 11);
    last_version = engine.publish_model(model);
  }

  for (auto& thread : threads) thread.join();
  engine.drain();
  const double elapsed_s = (telemetry::now_us() - start_us) * 1e-6;

  const serve::EngineCounters counters = engine.counters();
  std::uint64_t client_ok = 0, client_shed = 0, client_failed = 0;
  std::uint64_t min_version = UINT64_MAX, max_version = 0;
  for (const ClientTally& tally : tallies) {
    client_ok += tally.ok;
    client_shed += tally.shed;
    client_failed += tally.failed;
    if (tally.max_version > 0) {
      min_version = std::min(min_version, tally.min_version);
      max_version = std::max(max_version, tally.max_version);
    }
  }

  std::cout << "\n--- results ---\n";
  std::cout << "elapsed: " << elapsed_s << " s\n";
  std::cout << "engine: ";
  for (const auto& [name, value] : serve::counter_fields(counters))
    std::cout << ' ' << name << '=' << value;
  std::cout << "\n";
  std::cout << "clients: ok=" << client_ok << " shed=" << client_shed
            << " failed=" << client_failed << "; versions seen ["
            << (max_version == 0 ? 0 : min_version) << ", " << max_version
            << "]\n";
  if (counters.completed > 0) {
    std::cout << "throughput: " << double(counters.completed) / elapsed_s
              << " responses/s, "
              << double(counters.completed) * double(rows) / elapsed_s
              << " rows/s (approx)\n";
  }
  const telemetry::MetricsSnapshot metrics =
      telemetry::metrics().snapshot();
  if (const auto* latency = metrics.find_histogram("serve.latency_seconds")) {
    std::cout << "latency:   p50 " << latency->p50 * 1e3 << " ms, p95 "
              << latency->p95 * 1e3 << " ms, p99 " << latency->p99 * 1e3
              << " ms over " << latency->count << " responses\n";
  }
  if (const auto* occupancy = metrics.find_histogram("serve.batch_rows")) {
    std::cout << "batch occupancy: mean " << occupancy->mean()
              << " rows, p95 " << occupancy->p95 << "\n";
  }

  if (smoke) {
    // Zero dropped-but-unreported: every admitted request resolved, every
    // client-side outcome is accounted, responses only ever cite published
    // versions, and the hot-swap won.
    bool ok = true;
    const auto check = [&](bool condition, const char* what) {
      if (!condition) {
        std::cerr << "SMOKE FAILURE: " << what << "\n";
        ok = false;
      }
    };
    check(counters.submitted == counters.completed + counters.failed,
          "submitted != completed + failed after drain");
    check(client_ok + client_failed == counters.completed + counters.failed,
          "client-observed outcomes do not match engine accounting");
    check(client_shed == counters.shed, "shed count mismatch");
    check(counters.publishes == 2, "expected exactly two published versions");
    check(max_version <= last_version && (max_version == 0 || min_version >= 1),
          "response cites a never-published version");
    check(engine.current_version() == last_version,
          "hot-swapped version is not current");
    std::cout << (ok ? "SMOKE OK\n" : "SMOKE FAILED\n");
    return ok ? 0 : 1;
  }
  return 0;
}
