/// \file quickstart.cpp
/// \brief Five-minute tour of the library: build a small transverse-field
/// Ising Hamiltonian, train a MADE wavefunction with exact autoregressive
/// sampling, and check the result against exact diagonalization.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <iostream>

#include "core/trainer.hpp"
#include "hamiltonian/exact.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "optim/adam.hpp"
#include "sampler/autoregressive_sampler.hpp"

int main() {
  using namespace vqmc;

  // 1. A random 8-spin disordered TIM instance (Eq. 11 of the paper):
  //    H = -sum alpha_i X_i - sum beta_i Z_i - sum beta_ij Z_i Z_j.
  const std::size_t n = 8;
  const TransverseFieldIsing hamiltonian =
      TransverseFieldIsing::random_dense(n, /*seed=*/42);

  // 2. Ground truth for this small instance (Lanczos on the 2^8 space).
  const ExactGroundState exact = exact_ground_state(hamiltonian);
  std::cout << "exact ground energy: " << exact.energy << "\n";

  // 3. The variational model: MADE with the paper's default hidden width
  //    h = 5 (log n)^2, sampled exactly by the AUTO sampler.
  Made model = Made::with_default_hidden(n);
  model.initialize(/*seed=*/7);
  AutoregressiveSampler sampler(model, /*seed=*/11);
  Adam optimizer(/*learning_rate=*/0.02);

  // 4. Train: sample -> measure local energies -> gradient step.
  TrainerConfig config;
  config.iterations = 300;
  config.batch_size = 256;
  VqmcTrainer trainer(hamiltonian, model, sampler, optimizer, config);
  trainer.run();

  // 5. Evaluate on fresh samples and report.
  const EnergyEstimate estimate = trainer.evaluate(1024);
  std::cout << "VQMC energy:         " << estimate.mean << " +- "
            << estimate.std_error << "\n";
  std::cout << "std of local energy: " << estimate.std_dev
            << "  (approaches 0 at an exact eigenstate, Eq. 4)\n";
  std::cout << "relative error:      "
            << (estimate.mean - exact.energy) / std::abs(exact.energy)
            << "\n";
  std::cout << "training time:       " << trainer.training_seconds() << " s ("
            << config.iterations << " iterations)\n";
  return 0;
}
