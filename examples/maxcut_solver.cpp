/// \file maxcut_solver.cpp
/// \brief Max-Cut as combinatorial optimization with VQMC (Section 2.4 of
/// the paper): train MADE+AUTO on the diagonal cut Hamiltonian, polish the
/// best sampled partition with 1-swap local search, and compare against the
/// Random, Goemans-Williamson and Burer-Monteiro baselines.
///
///   ./build/examples/maxcut_solver --n 60 --seed 3 --iterations 150

#include <iostream>

#include "baselines/goemans_williamson.hpp"
#include "baselines/local_search.hpp"
#include "baselines/random_cut.hpp"
#include "common/options.hpp"
#include "core/trainer.hpp"
#include "hamiltonian/maxcut.hpp"
#include "nn/made.hpp"
#include "optim/adam.hpp"
#include "sampler/autoregressive_sampler.hpp"

int main(int argc, char** argv) {
  using namespace vqmc;

  OptionParser opts("maxcut_solver", "VQMC Max-Cut heuristic vs baselines");
  opts.add_option("n", "60", "graph size");
  opts.add_option("seed", "3", "instance + solver seed");
  opts.add_option("iterations", "150", "training iterations");
  opts.add_option("batch", "256", "training batch size");
  if (!opts.parse(argc, argv)) return 0;

  const std::size_t n = std::size_t(opts.get_int("n"));
  const std::uint64_t seed = std::uint64_t(opts.get_int("seed"));

  // The paper's instance family: symmetrized Bernoulli graph (G(n, 1/4)).
  const MaxCut problem = MaxCut::paper_instance(n, seed);
  const Graph& graph = problem.graph();
  std::cout << "Max-Cut instance: n=" << n << ", |E|=" << graph.num_edges()
            << "\n\n";

  // --- Classical baselines -------------------------------------------------
  const Real random = baselines::random_cut(graph, seed).cut;
  baselines::GoemansWilliamsonOptions gw_opts;
  gw_opts.seed = seed;
  const baselines::GoemansWilliamsonResult gw =
      baselines::goemans_williamson(graph, gw_opts);
  baselines::BurerMonteiroCutOptions bm_opts;
  bm_opts.seed = seed;
  const Real bm = baselines::burer_monteiro_cut(graph, bm_opts).cut;
  std::cout << "Random cut:            " << random << "\n";
  std::cout << "Goemans-Williamson:    " << gw.best.cut
            << "  (SDP upper bound " << gw.sdp_objective << ")\n";
  std::cout << "Burer-Monteiro+polish: " << bm << "\n";

  // --- VQMC ----------------------------------------------------------------
  Made model = Made::with_default_hidden(n);
  model.initialize(seed);
  AutoregressiveSampler sampler(model, seed + 1);
  Adam optimizer(0.05);
  TrainerConfig config;
  config.iterations = opts.get_int("iterations");
  config.batch_size = std::size_t(opts.get_int("batch"));
  VqmcTrainer trainer(problem, model, sampler, optimizer, config);
  trainer.run();

  Matrix samples;
  const EnergyEstimate est = trainer.evaluate_with_samples(1024, samples);
  Vector best(n);
  Real best_cut = -1;
  for (std::size_t k = 0; k < samples.rows(); ++k) {
    const Real c = problem.cut_value(samples.row(k));
    if (c > best_cut) {
      best_cut = c;
      auto row = samples.row(k);
      std::copy(row.begin(), row.end(), best.begin());
    }
  }
  const Real polished = baselines::local_search_1swap(graph, best);
  std::cout << "\nVQMC (MADE+AUTO+ADAM):\n";
  std::cout << "  mean cut over eval batch: " << problem.cut_from_energy(est.mean)
            << "\n";
  std::cout << "  best sampled cut:         " << best_cut << "\n";
  std::cout << "  after 1-swap polish:      " << polished << "\n";
  std::cout << "  training time:            " << trainer.training_seconds()
            << " s\n";
  return 0;
}
