/// \file tim_ground_state.cpp
/// \brief Ground-state search for the disordered transverse-field Ising
/// model with stochastic reconfiguration (natural gradient), the paper's
/// strongest optimizer configuration (SGD+SR, Table 2).
///
/// Prints the Figure-2-style training curve (energy + std of the stochastic
/// objective) and, for small n, the exact ground energy for comparison.
///
///   ./build/examples/tim_ground_state --n 16 --iterations 200

#include <iostream>

#include "common/options.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "hamiltonian/exact.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "optim/sgd.hpp"
#include "sampler/autoregressive_sampler.hpp"

int main(int argc, char** argv) {
  using namespace vqmc;

  OptionParser opts("tim_ground_state",
                    "TIM ground state via MADE + AUTO + SGD + SR");
  opts.add_option("n", "16", "number of spins");
  opts.add_option("seed", "1", "instance + solver seed");
  opts.add_option("iterations", "200", "training iterations");
  opts.add_option("batch", "256", "training batch size");
  opts.add_flag("no-sr", "disable stochastic reconfiguration");
  if (!opts.parse(argc, argv)) return 0;

  const std::size_t n = std::size_t(opts.get_int("n"));
  const std::uint64_t seed = std::uint64_t(opts.get_int("seed"));
  const TransverseFieldIsing hamiltonian =
      TransverseFieldIsing::random_dense(n, seed);

  Made model = Made::with_default_hidden(n);
  model.initialize(seed + 1);
  AutoregressiveSampler sampler(model, seed + 2);
  Sgd optimizer(0.1);  // the paper's SGD+SR setting

  TrainerConfig config;
  config.iterations = opts.get_int("iterations");
  config.batch_size = std::size_t(opts.get_int("batch"));
  config.use_sr = !opts.get_flag("no-sr");
  config.sr.regularization = 1e-3;  // the paper's lambda
  VqmcTrainer trainer(hamiltonian, model, sampler, optimizer, config);

  std::cout << "TIM n=" << n << ", optimizer SGD(0.1)"
            << (config.use_sr ? "+SR(1e-3)" : "") << "\n";
  std::cout << "iter\tenergy\tstd\n";
  const int stride = std::max(1, config.iterations / 20);
  for (int i = 0; i < config.iterations; ++i) {
    const IterationMetrics m = trainer.step();
    if (m.iteration % stride == 0 || i + 1 == config.iterations)
      std::cout << m.iteration << "\t" << format_fixed(m.energy, 4) << "\t"
                << format_fixed(m.std_dev, 4) << "\n";
  }

  const EnergyEstimate est = trainer.evaluate(1024);
  std::cout << "\nfinal energy: " << est.mean << " +- " << est.std_error
            << " (std of local energy " << est.std_dev << ")\n";
  if (n <= 18) {
    const ExactGroundState exact = exact_ground_state(hamiltonian);
    std::cout << "exact energy: " << exact.energy << " (relative error "
              << (est.mean - exact.energy) / std::abs(exact.energy) << ")\n";
  } else {
    std::cout << "(n > 18: exact diagonalization skipped)\n";
  }
  return 0;
}
