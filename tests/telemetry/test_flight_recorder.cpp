/// \file test_flight_recorder.cpp
/// \brief Flight-recorder ring semantics, crash-report schema, and
/// dump-on-abort behavior (DESIGN.md §5i).

#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/reporting.hpp"
#include "core/trainer.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "optim/adam.hpp"
#include "parallel/distributed_trainer.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "support/alloc_count.hpp"
#include "support/mini_json.hpp"
#include "telemetry/telemetry.hpp"

namespace vqmc::telemetry {
namespace {

/// Fresh per-test scratch directory under the gtest temp root.
std::string make_scratch_dir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "vqmc_fr_" + tag + "_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr)
    throw Error("test: mkdtemp failed for " + dir);
  return dir;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

FlightRecord make_record(std::int64_t iteration, int rank = 0) {
  FlightRecord r;
  r.iteration = iteration;
  r.rank = rank;
  r.live_ranks = 1;
  r.wall_us = now_us();
  r.energy = -1.5 * double(iteration);
  return r;
}

/// The recorder is process-global; every test starts from a clean ring and
/// leaves crash dumping disabled for the rest of the binary.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::instance().configure(FlightRecorder::kDefaultCapacity);
    FlightRecorder::instance().set_crash_dir("");
  }
  void TearDown() override {
    FlightRecorder::instance().configure(FlightRecorder::kDefaultCapacity);
    FlightRecorder::instance().set_crash_dir("");
    set_enabled(true);
  }
};

TEST_F(FlightRecorderTest, RingDropsOldestBeyondCapacity) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.configure(4);
  for (int i = 0; i < 10; ++i) rec.record(make_record(i));
  EXPECT_EQ(rec.recorded(), 10u);
  const std::vector<FlightRecord> ring = rec.snapshot();
  ASSERT_EQ(ring.size(), 4u);
  // Oldest first, and only the newest four survive.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring[std::size_t(i)].iteration, 6 + i);
}

TEST_F(FlightRecorderTest, SnapshotAndLatestFilterByRank) {
  FlightRecorder& rec = FlightRecorder::instance();
  for (int i = 0; i < 6; ++i) rec.record(make_record(i, /*rank=*/i % 2));
  EXPECT_EQ(rec.snapshot().size(), 6u);
  const std::vector<FlightRecord> rank1 = rec.snapshot(1);
  ASSERT_EQ(rank1.size(), 3u);
  for (const FlightRecord& r : rank1) EXPECT_EQ(r.rank, 1);
  FlightRecord last;
  ASSERT_TRUE(rec.latest(last));
  EXPECT_EQ(last.iteration, 5);
  ASSERT_TRUE(rec.latest(last, /*rank=*/0));
  EXPECT_EQ(last.iteration, 4);
  EXPECT_FALSE(rec.latest(last, /*rank=*/7));
}

TEST_F(FlightRecorderTest, ClearKeepsCapacityAndEmptiesRing) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.configure(8);
  for (int i = 0; i < 5; ++i) rec.record(make_record(i));
  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
  for (int i = 0; i < 12; ++i) rec.record(make_record(i));
  EXPECT_EQ(rec.snapshot().size(), 8u);
}

TEST_F(FlightRecorderTest, IterationRateFromWallClockSpread) {
  FlightRecorder& rec = FlightRecorder::instance();
  // Synthetic clock: 10 iterations spaced exactly 1 ms apart -> 1000 it/s.
  FlightRecord r = make_record(0);
  const double base_us = 1e6;
  for (int i = 0; i < 10; ++i) {
    r.iteration = i;
    r.wall_us = base_us + double(i) * 1e3;
    rec.record(r);
  }
  EXPECT_NEAR(rec.iteration_rate(), 1000.0, 1e-6);
  // A window narrower than the ring uses only the newest entries.
  EXPECT_NEAR(rec.iteration_rate(-1, 4), 1000.0, 1e-6);
  rec.clear();
  rec.record(make_record(0));
  EXPECT_DOUBLE_EQ(rec.iteration_rate(), 0.0);  // fewer than two entries
}

TEST_F(FlightRecorderTest, DisabledRecordIsANoOpAndAllocatesNothing) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.configure(16);
  rec.record(make_record(0));  // warm-up: ring exists, lazy state built
  const std::uint64_t baseline = rec.recorded();
  set_enabled(false);
  const std::uint64_t before = vqmc::testing::allocation_count();
  for (int i = 0; i < 1000; ++i) rec.record(make_record(i));
  const std::uint64_t after = vqmc::testing::allocation_count();
  set_enabled(true);
  EXPECT_EQ(after, before);
  EXPECT_EQ(rec.recorded(), baseline);
}

TEST_F(FlightRecorderTest, DumpWithoutCrashDirOrEntriesWritesNothing) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.record(make_record(0));
  EXPECT_EQ(rec.dump_crash_report("no dir configured"), "");
  const std::string dir = make_scratch_dir("empty");
  rec.clear();
  rec.set_crash_dir(dir);
  EXPECT_EQ(rec.dump_crash_report("empty ring"), "");
}

TEST_F(FlightRecorderTest, CrashReportFollowsTheDocumentedSchema) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.configure(8);
  const std::string dir = make_scratch_dir("schema");
  rec.set_crash_dir(dir);
  EXPECT_EQ(rec.crash_dir(), dir);
  for (int i = 0; i < 12; ++i) {
    FlightRecord r = make_record(i, /*rank=*/3);
    r.guard_trips = std::uint64_t(i);
    r.comm_wait_seconds = 0.25;
    rec.record(r);
  }

  const std::string path =
      rec.dump_crash_report("deliberate \"test\" dump", /*rank=*/3);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.rfind(dir + "/vqmc_crash.rank3.pid", 0), 0u);
  EXPECT_EQ(path.substr(path.size() - 6), ".jsonl");

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 9u);  // header + 8 ring entries

  const vqmc::testing::JsonValue header = vqmc::testing::parse_json(lines[0]);
  EXPECT_EQ(header.at("event").string_value, "crash_report");
  // The reason survives JSON-escaping of the embedded quotes.
  EXPECT_EQ(header.at("reason").string_value, "deliberate \"test\" dump");
  EXPECT_DOUBLE_EQ(header.at("rank").number_value, 3.0);
  EXPECT_DOUBLE_EQ(header.at("recorded").number_value, 12.0);
  EXPECT_DOUBLE_EQ(header.at("entries").number_value, 8.0);
  EXPECT_DOUBLE_EQ(header.at("signal").number_value, 0.0);
  EXPECT_TRUE(header.has("pid"));
  EXPECT_TRUE(header.has("unix_time"));

  // Entries are oldest first and carry the full phase breakdown.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const vqmc::testing::JsonValue entry = vqmc::testing::parse_json(lines[i]);
    EXPECT_EQ(entry.at("event").string_value, "iteration");
    EXPECT_DOUBLE_EQ(entry.at("iteration").number_value, double(3 + i));
    EXPECT_DOUBLE_EQ(entry.at("rank").number_value, 3.0);
    EXPECT_DOUBLE_EQ(entry.at("comm_wait_seconds").number_value, 0.25);
    for (const char* key :
         {"energy", "guard_trips", "sample_seconds", "local_energy_seconds",
          "gradient_seconds", "sr_seconds", "allreduce_seconds",
          "optimizer_seconds", "batch_occupancy", "live_ranks", "wall_us"})
      EXPECT_TRUE(entry.has(key)) << key;
  }
}

TEST_F(FlightRecorderTest, CrashReportMatchesTheRunsMetricsCsv) {
  // The ring is evidence, not an approximation: a trainer's crash report
  // must agree row-for-row with the metrics CSV the same run would have
  // written at a clean exit.
  FlightRecorder& rec = FlightRecorder::instance();
  rec.configure(8);
  const std::string dir = make_scratch_dir("csv");
  rec.set_crash_dir(dir);

  const std::size_t n = 5;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 2);
  Made made(n, 6);
  made.initialize(4);
  AutoregressiveSampler sampler(made, 9);
  Adam adam(0.01);
  TrainerConfig cfg;
  cfg.iterations = 12;
  cfg.batch_size = 16;
  VqmcTrainer trainer(tim, made, sampler, adam, cfg);
  trainer.run();

  const std::string path = rec.dump_crash_report("post-run audit");
  ASSERT_FALSE(path.empty());
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 9u);  // header + ring capacity

  // CSV rows for the same run (data lines, skipping the header).
  std::vector<std::string> csv_rows;
  {
    std::istringstream csv(metrics_to_csv(trainer.history()));
    std::string row;
    std::getline(csv, row);  // column header
    while (std::getline(csv, row)) csv_rows.push_back(row);
  }
  ASSERT_EQ(csv_rows.size(), 12u);

  // The ring holds the last 8 iterations (4..11); each JSONL entry must
  // match its CSV row on iteration, energy and guard trips.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const vqmc::testing::JsonValue entry = vqmc::testing::parse_json(lines[i]);
    const int iteration = int(entry.at("iteration").number_value);
    EXPECT_EQ(iteration, int(3 + i));
    const IterationMetrics& m = trainer.history()[std::size_t(iteration)];
    std::istringstream row(csv_rows[std::size_t(iteration)]);
    std::string cell;
    std::getline(row, cell, ',');
    EXPECT_EQ(std::stoi(cell), iteration);
    std::getline(row, cell, ',');
    EXPECT_DOUBLE_EQ(std::stod(cell), entry.at("energy").number_value);
    EXPECT_DOUBLE_EQ(entry.at("energy").number_value, double(m.energy));
    EXPECT_DOUBLE_EQ(entry.at("guard_trips").number_value,
                     double(m.guard_trips));
  }
}

TEST_F(FlightRecorderTest, DistributedAbortDumpsCrashReports) {
  // A hung collective aborts the group with CommTimeoutError; every rank's
  // unwind path must leave a crash report behind (the whole point of the
  // recorder — post-mortem sinks never run on this path).
  FlightRecorder& rec = FlightRecorder::instance();
  rec.configure(64);
  const std::string dir = make_scratch_dir("abort");
  rec.set_crash_dir(dir);

  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 2);
  Made made(5, 6);
  made.initialize(3);

  parallel::DistributedConfig cfg;
  cfg.shape = {1, 3};
  cfg.iterations = 30;
  cfg.mini_batch_size = 8;
  cfg.eval_batch_per_rank = 32;
  cfg.seed = 11;
  cfg.comm_timeout_seconds = 0.25;
  cfg.fault_plans.resize(3);
  // ~2 collectives per iteration: call 10 hangs a few iterations in, so the
  // ring holds real iteration evidence when the abort unwinds.
  cfg.fault_plans[1].hang_at_call = 10;
  cfg.fault_plans[1].hang_seconds = 3600;
  EXPECT_THROW(parallel::train_distributed(tim, made, cfg), CommTimeoutError);

  // Thread-backed ranks share one process: reports land in the same dir,
  // one file per dumping rank, tagged with its rank id.
  std::vector<std::string> reports;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().filename().string().rfind("vqmc_crash.rank", 0) == 0)
      reports.push_back(entry.path().string());
  ASSERT_FALSE(reports.empty());

  for (const std::string& path : reports) {
    const std::vector<std::string> lines = read_lines(path);
    ASSERT_GE(lines.size(), 2u) << path;
    const vqmc::testing::JsonValue header =
        vqmc::testing::parse_json(lines[0]);
    EXPECT_EQ(header.at("event").string_value, "crash_report");
    // The reason is the CommTimeoutError message from the unwinding rank.
    EXPECT_NE(header.at("reason").string_value.find("timed out"),
              std::string::npos)
        << header.at("reason").string_value;
    EXPECT_DOUBLE_EQ(header.at("entries").number_value,
                     double(lines.size() - 1));
    // The ring held real iteration evidence at abort time.
    const vqmc::testing::JsonValue last_entry =
        vqmc::testing::parse_json(lines.back());
    EXPECT_EQ(last_entry.at("event").string_value, "iteration");
    EXPECT_GE(last_entry.at("iteration").number_value, 0.0);
  }
}

}  // namespace
}  // namespace vqmc::telemetry
