#include "telemetry/jsonl.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "support/mini_json.hpp"
#include "telemetry/telemetry.hpp"

namespace vqmc::telemetry {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class JsonlTest : public ::testing::Test {
 protected:
  void TearDown() override {
    JsonlLogger::instance().close();
    set_iteration(-1);
    vqmc::set_log_rank(-1);
    std::remove(path_.c_str());
  }
  const std::string path_ = "/tmp/vqmc_test_events.jsonl";
};

TEST_F(JsonlTest, FormatsAContextCarryingParseableLine) {
  vqmc::set_log_rank(2);
  set_iteration(41);
  const std::string line = format_jsonl_line(
      "shrink", {{"dead_rank", 3}, {"live_after", 2}});
  set_iteration(-1);
  vqmc::set_log_rank(-1);

  const vqmc::testing::JsonValue doc = vqmc::testing::parse_json(line);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("event").string_value, "shrink");
  EXPECT_EQ(int(doc.at("rank").number_value), 2);
  EXPECT_EQ(int(doc.at("iteration").number_value), 41);
  EXPECT_EQ(int(doc.at("dead_rank").number_value), 3);
  EXPECT_EQ(int(doc.at("live_after").number_value), 2);
  // ISO-8601 UTC with millisecond precision: 2026-08-05T12:00:00.123Z.
  const std::string ts = doc.at("ts").string_value;
  ASSERT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST_F(JsonlTest, EscapesStringsAndMapsNonFiniteToNull) {
  const std::string line = format_jsonl_line(
      "check",
      {{"text", "quote \" backslash \\ newline \n tab \t"},
       {"nan", std::numeric_limits<double>::quiet_NaN()},
       {"inf", std::numeric_limits<double>::infinity()},
       {"pi", 3.25},
       {"ok", true},
       {"missing", nullptr}});
  const vqmc::testing::JsonValue doc = vqmc::testing::parse_json(line);
  EXPECT_EQ(doc.at("text").string_value,
            "quote \" backslash \\ newline \n tab \t");
  EXPECT_TRUE(doc.at("nan").is_null());
  EXPECT_TRUE(doc.at("inf").is_null());
  EXPECT_DOUBLE_EQ(doc.at("pi").number_value, 3.25);
  EXPECT_TRUE(doc.at("ok").bool_value);
  EXPECT_TRUE(doc.at("missing").is_null());
}

TEST_F(JsonlTest, InactiveLoggerDropsEventsCheaply) {
  ASSERT_FALSE(JsonlLogger::instance().active());
  jsonl_event("ignored", {{"n", 1}});  // must not crash or write anywhere
}

TEST_F(JsonlTest, WritesOneParseableObjectPerLine) {
  JsonlLogger::instance().open(path_);
  ASSERT_TRUE(JsonlLogger::instance().active());
  jsonl_event("first", {{"n", 1}});
  jsonl_event("second", {{"n", 2}});
  JsonlLogger::instance().close();

  const std::vector<std::string> lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(vqmc::testing::parse_json(lines[0]).at("event").string_value,
            "first");
  EXPECT_EQ(vqmc::testing::parse_json(lines[1]).at("event").string_value,
            "second");
}

TEST_F(JsonlTest, BridgesLogMessagesAsStructuredEvents) {
  JsonlLogger::instance().open(path_);
  vqmc::set_log_rank(1);
  vqmc::log_warn("trouble at mill");
  vqmc::set_log_rank(-1);
  JsonlLogger::instance().close();

  const std::vector<std::string> lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 1u);
  const vqmc::testing::JsonValue doc = vqmc::testing::parse_json(lines[0]);
  EXPECT_EQ(doc.at("event").string_value, "log");
  EXPECT_EQ(doc.at("level").string_value, "warn");
  EXPECT_EQ(doc.at("message").string_value, "trouble at mill");
  EXPECT_EQ(int(doc.at("rank").number_value), 1);
}

TEST_F(JsonlTest, CloseUninstallsTheBridge) {
  JsonlLogger::instance().open(path_);
  JsonlLogger::instance().close();
  vqmc::log_warn("after close");  // must not reopen or crash
  EXPECT_TRUE(read_lines(path_).empty());
}

}  // namespace
}  // namespace vqmc::telemetry
