#include "telemetry/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "support/mini_json.hpp"

namespace vqmc::telemetry {
namespace {

// The log-scale buckets (4 per octave) bound the relative quantile error by
// the bucket width, 2^(1/4) - 1 ~ 18.9% worst case (a point mass at a
// bucket's lower edge interpolates toward its upper edge). Tests assert 20%.
constexpr double kQuantileTolerance = 0.20;

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastValueWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  for (const double v : {1e-9, 1e-6, 1e-3, 0.5, 1.0, 3.0, 1e3}) {
    const int b = Histogram::bucket_index(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kNumBuckets);
    if (b > 0) EXPECT_GE(v, Histogram::bucket_lower_bound(b));
    if (b < Histogram::kNumBuckets - 1)
      EXPECT_LT(v, Histogram::bucket_upper_bound(b));
  }
}

TEST(Histogram, ExtremeValuesClampToEdgeBuckets) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kNumBuckets - 1);
}

TEST(Histogram, PercentilesOfUniformDistribution) {
  Histogram h;
  // 1..1000 ms uniformly: p50 ~ 0.5 s, p95 ~ 0.95 s, p99 ~ 0.99 s.
  for (int i = 1; i <= 1000; ++i) h.observe(double(i) * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), 500.5, 1e-9);
  EXPECT_NEAR(h.percentile(0.50), 0.50, 0.50 * kQuantileTolerance);
  EXPECT_NEAR(h.percentile(0.95), 0.95, 0.95 * kQuantileTolerance);
  EXPECT_NEAR(h.percentile(0.99), 0.99, 0.99 * kQuantileTolerance);
}

TEST(Histogram, PercentilesOfBimodalDistribution) {
  Histogram h;
  // 90 fast (1 ms) + 10 slow (1 s): p50 in the fast mode, p95/p99 slow.
  for (int i = 0; i < 90; ++i) h.observe(1e-3);
  for (int i = 0; i < 10; ++i) h.observe(1.0);
  EXPECT_NEAR(h.percentile(0.50), 1e-3, 1e-3 * kQuantileTolerance);
  EXPECT_NEAR(h.percentile(0.95), 1.0, 1.0 * kQuantileTolerance);
  EXPECT_NEAR(h.percentile(0.99), 1.0, 1.0 * kQuantileTolerance);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(MetricsRegistry, InstrumentsAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x").value(), 3u);
  registry.gauge("g").set(1.0);
  registry.histogram("h").observe(0.5);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "x");
  EXPECT_EQ(snap.counters[0].value, 3u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.counter("mid");
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
}

TEST(MetricsRegistry, ConcurrentCounterUpdatesAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) registry.counter("hits").add();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kPerThread);
}

TEST(MetricsSnapshot, PackApplySummedMergesTwoRanks) {
  // Two "ranks" with identical instrument sets, different values — the
  // distributed merge is an element-wise sum of the packed payloads.
  MetricsRegistry rank0;
  MetricsRegistry rank1;
  for (MetricsRegistry* r : {&rank0, &rank1}) {
    r->counter("iters");
    r->histogram("wait");
  }
  rank0.counter("iters").add(10);
  rank1.counter("iters").add(10);
  for (int i = 0; i < 100; ++i) rank0.histogram("wait").observe(1e-3);
  for (int i = 0; i < 100; ++i) rank1.histogram("wait").observe(1.0);

  MetricsSnapshot merged = rank0.snapshot();
  std::vector<Real> payload = merged.pack_additive();
  const std::vector<Real> other = rank1.snapshot().pack_additive();
  ASSERT_EQ(payload.size(), other.size());
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] += other[i];
  merged.apply_summed(payload);

  const CounterSnapshot* iters = merged.find_counter("iters");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->value, 20u);
  const HistogramSnapshot* wait = merged.find_histogram("wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, 200u);
  EXPECT_NEAR(wait->sum, 100.1, 1e-9);
  // Merged percentiles see both modes: p50 fast, p95 slow.
  EXPECT_NEAR(wait->p50, 1e-3, 1e-3 * kQuantileTolerance);
  EXPECT_NEAR(wait->p95, 1.0, 1.0 * kQuantileTolerance);
}

TEST(MetricsSnapshot, AdditivePayloadExcludesGauges) {
  // Regression: gauges are point-in-time values, not additive tallies. The
  // old cross-rank merge summed them through pack_additive, so a 4-rank
  // group reported trainer.iteration = 4 * iter. They must stay out of the
  // additive payload entirely.
  MetricsRegistry registry;
  registry.counter("c").add(1);
  registry.gauge("trainer.iteration").set(500);
  registry.histogram("h").observe(0.5);
  MetricsSnapshot snap = registry.snapshot();
  const std::vector<Real> additive = snap.pack_additive();
  std::vector<Real> doubled = additive;
  for (Real& v : doubled) v += v;
  snap.apply_summed(doubled);
  const GaugeSnapshot* g = snap.find_gauge("trainer.iteration");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 500.0);  // untouched by the additive merge
  EXPECT_EQ(snap.find_counter("c")->value, 2u);
}

TEST(MetricsSnapshot, PackApplyGaugeMaxMergesCrossRank) {
  // The distributed gauge merge: element-wise max over the packed gauge
  // vectors (a trailing allreduce_max in train_distributed).
  MetricsRegistry rank0;
  MetricsRegistry rank1;
  for (MetricsRegistry* r : {&rank0, &rank1}) {
    r->gauge("comm.live_ranks");
    r->gauge("trainer.iteration");
  }
  rank0.gauge("trainer.iteration").set(41);
  rank1.gauge("trainer.iteration").set(42);  // straggler-free rank is ahead
  rank0.gauge("comm.live_ranks").set(4);
  rank1.gauge("comm.live_ranks").set(3);

  MetricsSnapshot merged = rank0.snapshot();
  std::vector<Real> payload = merged.pack_gauges();
  const std::vector<Real> other = rank1.snapshot().pack_gauges();
  ASSERT_EQ(payload.size(), 2u);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = std::max(payload[i], other[i]);
  merged.apply_gauge_max(payload);

  EXPECT_DOUBLE_EQ(merged.find_gauge("trainer.iteration")->value, 42.0);
  EXPECT_DOUBLE_EQ(merged.find_gauge("comm.live_ranks")->value, 4.0);
}

TEST(MetricsSnapshot, ApplyGaugeMaxRejectsMismatchedPayload) {
  MetricsRegistry registry;
  registry.gauge("g");
  MetricsSnapshot snap = registry.snapshot();
  EXPECT_THROW(snap.apply_gauge_max(std::vector<Real>(2, Real(0))), Error);
}

TEST(MetricsSnapshot, MergeFromHonorsTheGaugeMergePolicy) {
  MetricsRegistry mine;
  MetricsRegistry theirs;
  for (MetricsRegistry* r : {&mine, &theirs}) {
    r->counter("iters");
    r->gauge("queue");
    r->histogram("wait");
  }
  mine.counter("iters").add(3);
  theirs.counter("iters").add(4);
  mine.gauge("queue").set(10);
  theirs.gauge("queue").set(7);
  mine.histogram("wait").observe(1e-3);
  theirs.histogram("wait").observe(1.0);

  MetricsSnapshot last_write = mine.snapshot();
  last_write.merge_from(theirs.snapshot(), GaugeMerge::kLastWrite);
  EXPECT_EQ(last_write.find_counter("iters")->value, 7u);
  EXPECT_DOUBLE_EQ(last_write.find_gauge("queue")->value, 7.0);
  EXPECT_EQ(last_write.find_histogram("wait")->count, 2u);

  MetricsSnapshot max_merge = mine.snapshot();
  max_merge.merge_from(theirs.snapshot(), GaugeMerge::kMax);
  EXPECT_EQ(max_merge.find_counter("iters")->value, 7u);
  EXPECT_DOUBLE_EQ(max_merge.find_gauge("queue")->value, 10.0);
  EXPECT_NEAR(max_merge.find_histogram("wait")->sum, 1.001, 1e-9);
}

TEST(MetricsSnapshot, MergeFromRejectsMismatchedInstrumentSets) {
  MetricsRegistry mine;
  MetricsRegistry theirs;
  mine.counter("a");
  theirs.counter("b");
  MetricsSnapshot snap = mine.snapshot();
  EXPECT_THROW(snap.merge_from(theirs.snapshot(), GaugeMerge::kLastWrite),
               Error);
}

TEST(MetricsSnapshot, ApplySummedRejectsMismatchedPayload) {
  MetricsRegistry registry;
  registry.counter("a");
  MetricsSnapshot snap = registry.snapshot();
  std::vector<Real> wrong(snap.pack_additive().size() + 1, Real(0));
  EXPECT_THROW(snap.apply_summed(wrong), Error);
}

TEST(MetricsSnapshot, ToJsonParses) {
  MetricsRegistry registry;
  registry.counter("n").add(7);
  registry.gauge("lr").set(0.01);
  registry.histogram("t").observe(0.25);
  const vqmc::testing::JsonValue doc =
      vqmc::testing::parse_json(registry.snapshot().to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("n").number_value, 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("lr").number_value, 0.01);
  const vqmc::testing::JsonValue& hist = doc.at("histograms").at("t");
  EXPECT_DOUBLE_EQ(hist.at("count").number_value, 1.0);
  EXPECT_TRUE(hist.has("p50"));
  EXPECT_TRUE(hist.has("p95"));
  EXPECT_TRUE(hist.has("p99"));
}

TEST(ScopedMetricsRegistry, RoutesAndRestoresThreadLocalCurrent) {
  MetricsRegistry mine;
  EXPECT_EQ(&metrics(), &MetricsRegistry::global());
  {
    const ScopedMetricsRegistry scope(mine);
    EXPECT_EQ(&metrics(), &mine);
    metrics().counter("scoped").add();
  }
  EXPECT_EQ(&metrics(), &MetricsRegistry::global());
  EXPECT_EQ(mine.counter("scoped").value(), 1u);
}

TEST(ScopedMetricsRegistry, IsPerThread) {
  MetricsRegistry mine;
  const ScopedMetricsRegistry scope(mine);
  std::thread other([] {
    // The override is thread-local: a different thread still sees global().
    EXPECT_EQ(&metrics(), &MetricsRegistry::global());
  });
  other.join();
}

TEST(Telemetry, RuntimeDisableMakesUpdatesNoOps) {
  MetricsRegistry registry;
  set_enabled(false);
  registry.counter("c").add(5);
  registry.gauge("g").set(1.0);
  registry.histogram("h").observe(1.0);
  set_enabled(true);
  EXPECT_EQ(registry.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
}

}  // namespace
}  // namespace vqmc::telemetry
