#include "telemetry/tracer.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "support/alloc_count.hpp"
#include "support/mini_json.hpp"
#include "telemetry/telemetry.hpp"

namespace vqmc::telemetry {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::instance().stop();
    Tracer::instance().clear();
    set_iteration(-1);
    vqmc::set_log_rank(-1);
  }
};

TEST_F(TracerTest, InactiveTracerRecordsNothing) {
  Tracer::instance().clear();
  { TELEMETRY_SPAN("ignored"); }
  EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST_F(TracerTest, RecordsNestedSpansWithDepth) {
  Tracer::instance().start();
  {
    TELEMETRY_SPAN("outer");
    {
      TELEMETRY_SPAN("inner");
    }
  }
  Tracer::instance().stop();
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer first, then inner.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  // The inner span is contained in the outer one.
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
  EXPECT_LE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us + 1.0);
}

TEST_F(TracerTest, CarriesIterationAndRankContext) {
  Tracer::instance().start();
  vqmc::set_log_rank(3);
  set_iteration(17);
  { TELEMETRY_SPAN("step"); }
  set_iteration(-1);
  vqmc::set_log_rank(-1);
  Tracer::instance().stop();
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_EQ(events[0].iteration, 17);
}

TEST_F(TracerTest, ManyThreadsRecordConcurrently) {
  Tracer::instance().start();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      vqmc::set_log_rank(t);
      for (int i = 0; i < kSpansPerThread; ++i) {
        TELEMETRY_SPAN("work");
      }
    });
  for (std::thread& t : threads) t.join();
  Tracer::instance().stop();
  const std::vector<TraceEvent> events = Tracer::instance().events();
  EXPECT_EQ(events.size(), std::size_t(kThreads) * kSpansPerThread);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
  std::set<int> ranks;
  for (const TraceEvent& e : events) ranks.insert(e.rank);
  EXPECT_EQ(ranks.size(), std::size_t(kThreads));
  // Sorted output: ts monotone non-decreasing.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
}

TEST_F(TracerTest, RingBufferDropsOldestBeyondCapacity) {
  Tracer::instance().start(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    TELEMETRY_SPAN("s");
  }
  Tracer::instance().stop();
  EXPECT_EQ(Tracer::instance().events().size(), 8u);
  EXPECT_EQ(Tracer::instance().dropped(), 12u);
}

TEST_F(TracerTest, ChromeJsonIsValidAndMonotone) {
  Tracer::instance().start();
  vqmc::set_log_rank(0);
  for (int i = 0; i < 3; ++i) {
    set_iteration(i);
    TELEMETRY_SPAN("iteration");
    { TELEMETRY_SPAN("sample"); }
    { TELEMETRY_SPAN("optimizer"); }
  }
  set_iteration(-1);
  vqmc::set_log_rank(-1);
  Tracer::instance().stop();

  const std::string json = Tracer::instance().to_chrome_json();
  const vqmc::testing::JsonValue doc = vqmc::testing::parse_json(json);
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.has("traceEvents"));
  const auto& events = doc.at("traceEvents").array_value;
  ASSERT_GE(events.size(), 9u);

  double last_ts = -1;
  std::size_t complete_events = 0;
  for (const auto& e : events) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.at("ph").string_value;
    if (ph == "M") continue;  // thread_name metadata
    EXPECT_EQ(ph, "X");
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_GE(e.at("ts").number_value, last_ts);
    last_ts = e.at("ts").number_value;
    ++complete_events;
  }
  EXPECT_EQ(complete_events, 9u);
}

TEST_F(TracerTest, StartClearsPreviousRun) {
  Tracer::instance().start();
  { TELEMETRY_SPAN("old"); }
  Tracer::instance().stop();
  ASSERT_EQ(Tracer::instance().events().size(), 1u);
  Tracer::instance().start();
  { TELEMETRY_SPAN("new"); }
  Tracer::instance().stop();
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "new");
}

TEST_F(TracerTest, InactiveSpansAllocateNothing) {
  Tracer::instance().stop();
  // Warm up any lazily-created thread state before counting.
  { TELEMETRY_SPAN("warmup"); }
  const std::uint64_t before = vqmc::testing::allocation_count();
  for (int i = 0; i < 1000; ++i) {
    TELEMETRY_SPAN("inactive");
  }
  const std::uint64_t after = vqmc::testing::allocation_count();
  EXPECT_EQ(after, before);
}

TEST_F(TracerTest, RuntimeDisabledSpansAllocateNothingEvenWhenActive) {
  Tracer::instance().start();
  set_enabled(false);
  { TELEMETRY_SPAN("warmup"); }
  const std::uint64_t before = vqmc::testing::allocation_count();
  for (int i = 0; i < 1000; ++i) {
    TELEMETRY_SPAN("disabled");
  }
  const std::uint64_t after = vqmc::testing::allocation_count();
  set_enabled(true);
  Tracer::instance().stop();
  EXPECT_EQ(after, before);
  EXPECT_TRUE(Tracer::instance().events().empty());
}

}  // namespace
}  // namespace vqmc::telemetry
