#include "core/local_energy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/exact.hpp"
#include "hamiltonian/maxcut.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "nn/rbm.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.5, 0.5);
}

Matrix all_configurations(std::size_t n) {
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  return batch;
}

/// Reference local energy via the dense matrix: l(x) = (H psi)(x) / psi(x).
Vector reference_local_energy(const Hamiltonian& h,
                              const WavefunctionModel& model) {
  const std::size_t n = h.num_spins();
  const std::size_t dim = std::size_t(1) << n;
  const Matrix configs = all_configurations(n);
  Vector lp(dim), psi(dim), h_psi(dim), local(dim);
  model.log_psi(configs, lp.span());
  for (std::size_t i = 0; i < dim; ++i) psi[i] = std::exp(lp[i]);
  h.apply_dense(psi.span(), h_psi.span());
  for (std::size_t i = 0; i < dim; ++i) local[i] = h_psi[i] / psi[i];
  return local;
}

TEST(LocalEnergy, MatchesDenseReferenceOnTimWithMade) {
  const std::size_t n = 5;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 1);
  Made made(n, 7);
  randomize_parameters(made, 2);

  const Matrix configs = all_configurations(n);
  LocalEnergyEngine engine(tim, made);
  Vector engine_local(configs.rows());
  engine.compute(configs, engine_local.span());

  const Vector reference = reference_local_energy(tim, made);
  for (std::size_t i = 0; i < configs.rows(); ++i)
    EXPECT_NEAR(engine_local[i], reference[i], 1e-9) << "config " << i;
}

TEST(LocalEnergy, MatchesDenseReferenceOnTimWithRbm) {
  const std::size_t n = 4;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 3);
  Rbm rbm(n, 5);
  randomize_parameters(rbm, 4);

  const Matrix configs = all_configurations(n);
  LocalEnergyEngine engine(tim, rbm);
  Vector engine_local(configs.rows());
  engine.compute(configs, engine_local.span());
  const Vector reference = reference_local_energy(tim, rbm);
  for (std::size_t i = 0; i < configs.rows(); ++i)
    EXPECT_NEAR(engine_local[i], reference[i], 1e-9);
}

TEST(LocalEnergy, DiagonalHamiltonianNeedsNoForwardPasses) {
  const MaxCut h{Graph::bernoulli_symmetrized(8, 5)};
  Made made(8, 6);
  LocalEnergyEngine engine(h, made);
  const Matrix configs = all_configurations(8);
  Vector local(configs.rows());
  engine.compute(configs, local.span());
  EXPECT_EQ(engine.forward_passes(), 0u);
  for (std::size_t i = 0; i < configs.rows(); ++i)
    EXPECT_NEAR(local[i], h.diagonal(configs.row(i)), 1e-12);
}

TEST(LocalEnergy, ChunkSizeDoesNotChangeResults) {
  const std::size_t n = 5;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 6);
  Made made(n, 4);
  randomize_parameters(made, 7);
  const Matrix configs = all_configurations(n);

  Vector big(configs.rows()), tiny(configs.rows());
  LocalEnergyEngine engine_big(tim, made, 4096);
  LocalEnergyEngine engine_tiny(tim, made, 3);  // forces many flushes
  engine_big.compute(configs, big.span());
  engine_tiny.compute(configs, tiny.span());
  for (std::size_t i = 0; i < configs.rows(); ++i)
    EXPECT_NEAR(big[i], tiny[i], 1e-10);
  EXPECT_GT(engine_tiny.forward_passes(), engine_big.forward_passes());
}

TEST(LocalEnergy, ForwardPassCountIsAsDocumented) {
  // TIM connects each sample to n flips; with chunk c the engine does
  // 1 + ceil(bs * n_nonzero_alpha / c) passes.
  const std::size_t n = 6, bs = 8;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 8);
  Made made(n, 4);
  LocalEnergyEngine engine(tim, made, 16);
  Matrix batch(bs, n);
  Vector local(bs);
  engine.compute(batch, local.span());
  EXPECT_EQ(engine.forward_passes(), 1u + (bs * n + 15u) / 16u);
  engine.reset_statistics();
  EXPECT_EQ(engine.forward_passes(), 0u);
}

TEST(LocalEnergy, MeanOverExactDistributionEqualsRayleighQuotient) {
  // E_{x ~ pi}[l(x)] = <psi, H psi> / <psi, psi> (Eq. 1/3).
  const std::size_t n = 4;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 9);
  Made made(n, 5);
  randomize_parameters(made, 10);

  const Matrix configs = all_configurations(n);
  const std::size_t dim = configs.rows();
  Vector lp(dim);
  made.log_psi(configs, lp.span());
  LocalEnergyEngine engine(tim, made);
  Vector local(dim);
  engine.compute(configs, local.span());

  Real expectation = 0;
  for (std::size_t i = 0; i < dim; ++i)
    expectation += std::exp(2 * lp[i]) * local[i];  // pi(x) l(x); Z = 1

  Vector psi(dim), h_psi(dim);
  for (std::size_t i = 0; i < dim; ++i) psi[i] = std::exp(lp[i]);
  tim.apply_dense(psi.span(), h_psi.span());
  const Real rayleigh =
      dot(psi.span(), h_psi.span()) / dot(psi.span(), psi.span());
  EXPECT_NEAR(expectation, rayleigh, 1e-9);
}

TEST(LocalEnergy, LogRatioClampKeepsDivergedModelsFinite) {
  // An RBM with huge weights produces astronomically large wavefunction
  // ratios; the engine must clamp them instead of overflowing to inf/NaN.
  const std::size_t n = 4;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 12);
  Rbm rbm(n, 3);
  for (Real& p : rbm.parameters()) p = 200.0;  // pathological parameters
  LocalEnergyEngine engine(tim, rbm, 1024, /*max_log_ratio=*/30);
  const Matrix configs = all_configurations(n);
  Vector local(configs.rows());
  engine.compute(configs, local.span());
  for (std::size_t i = 0; i < configs.rows(); ++i)
    EXPECT_TRUE(std::isfinite(local[i])) << "config " << i;
}

TEST(LocalEnergy, ClampDoesNotPerturbHealthyModels) {
  const std::size_t n = 5;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 13);
  Made made(n, 6);
  randomize_parameters(made, 14);
  const Matrix configs = all_configurations(n);
  Vector tight(configs.rows()), loose(configs.rows());
  LocalEnergyEngine engine_tight(tim, made, 1024, 30);
  LocalEnergyEngine engine_loose(tim, made, 1024, 1e6);
  engine_tight.compute(configs, tight.span());
  engine_loose.compute(configs, loose.span());
  for (std::size_t i = 0; i < configs.rows(); ++i)
    EXPECT_EQ(tight[i], loose[i]);
}

TEST(LocalEnergy, MismatchedSpinCountsRejected) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 11);
  Made made(5, 4);
  EXPECT_THROW(LocalEnergyEngine(tim, made), Error);
}

}  // namespace
}  // namespace vqmc
