#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "nn/made.hpp"
#include "nn/rbm.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc {
namespace {

// Each test writes its own file: under `ctest -j` every TEST runs as a
// separate concurrent process, so a path shared across tests races (one
// test's save replaces the file another test just corrupted).
std::string current_test_path() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string("/tmp/vqmc_checkpoint_") + info->test_suite_name() +
         "_" + info->name() + ".bin";
}
#define kPath current_test_path()

struct CheckpointCleanup {
  ~CheckpointCleanup() { std::remove(kPath.c_str()); }
};

void randomize(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -1.0, 1.0);
}

TEST(Checkpoint, RoundTripsParametersExactly) {
  CheckpointCleanup cleanup;
  Made saved(6, 8);
  randomize(saved, 1);
  save_checkpoint(kPath, saved);

  Made loaded(6, 8);  // different initialization
  loaded.initialize(99);
  load_checkpoint(kPath, loaded);
  for (std::size_t i = 0; i < saved.num_parameters(); ++i)
    EXPECT_EQ(loaded.parameters()[i], saved.parameters()[i]);
}

TEST(Checkpoint, RejectsWrongArchitecture) {
  CheckpointCleanup cleanup;
  Made made(6, 8);
  save_checkpoint(kPath, made);

  Made wrong_shape(6, 9);
  EXPECT_THROW(load_checkpoint(kPath, wrong_shape), Error);
  Made wrong_spins(7, 8);
  EXPECT_THROW(load_checkpoint(kPath, wrong_spins), Error);
  Rbm wrong_kind(6, 8);  // same n; parameter count differs too
  EXPECT_THROW(load_checkpoint(kPath, wrong_kind), Error);
}

TEST(Checkpoint, RejectsWrongModelKindEvenWithSameParameterCount) {
  CheckpointCleanup cleanup;
  // Craft two models with identical (n, d): Made(n, h) has d = 2hn + h + n;
  // Rbm(n, h') has d = h'n + h' + n + 1. For n = 5, Made h = 2 -> d = 27;
  // Rbm h' = ceil((27 - 6) / 6)... simply verify name mismatch dominates by
  // checking a corrupted-name path: save Made, flip its recorded name.
  Made made(5, 2);
  save_checkpoint(kPath, made);
  // Corrupt the stored name ("MADE" -> "MBDE").
  std::fstream f(kPath, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(32 + 1);  // header is 4 x uint64; name starts right after
  f.put('B');
  f.close();
  Made target(5, 2);
  EXPECT_THROW(load_checkpoint(kPath, target), Error);
}

TEST(Checkpoint, DetectsPayloadCorruption) {
  CheckpointCleanup cleanup;
  Made made(5, 4);
  randomize(made, 2);
  save_checkpoint(kPath, made);
  // Flip one byte in the middle of the parameter payload.
  std::fstream f(kPath, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(32 + 4 + 40);  // header + name + some parameters
  f.put('\x7f');
  f.close();
  Made target(5, 4);
  EXPECT_THROW(load_checkpoint(kPath, target), Error);
}

TEST(Checkpoint, MissingFileThrows) {
  Made made(4, 4);
  EXPECT_THROW(load_checkpoint("/tmp/vqmc_no_such_checkpoint.bin", made),
               Error);
}

TEST(Checkpoint, GarbageFileRejected) {
  CheckpointCleanup cleanup;
  std::ofstream out(kPath, std::ios::binary);
  out << "this is not a checkpoint";
  out.close();
  Made made(4, 4);
  EXPECT_THROW(load_checkpoint(kPath, made), Error);
}

TEST(Checkpoint, Fnv1aKnownVector) {
  // FNV-1a("a") = 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
}

TEST(Checkpoint, SaveIsAtomicAndLeavesNoTempFile) {
  CheckpointCleanup cleanup;
  Made made(6, 8);
  randomize(made, 3);
  save_checkpoint(kPath, made);
  // The crash-safe writer stages through <path>.tmp and renames; after a
  // successful save only the final file may exist.
  std::ifstream tmp(std::string(kPath) + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  Made target(6, 8);
  load_checkpoint(kPath, target);  // and the final file is valid
}

TEST(Checkpoint, SaveReplacesExistingFileAtomically) {
  CheckpointCleanup cleanup;
  Made first(6, 8);
  randomize(first, 4);
  save_checkpoint(kPath, first);
  Made second(6, 8);
  randomize(second, 5);
  save_checkpoint(kPath, second);  // overwrite path: rename over the old file
  Made target(6, 8);
  load_checkpoint(kPath, target);
  for (std::size_t i = 0; i < second.num_parameters(); ++i)
    EXPECT_EQ(target.parameters()[i], second.parameters()[i]);
}

std::vector<char> read_all_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  in.read(bytes.data(), size);
  return bytes;
}

void write_all_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

TEST(Checkpoint, RejectsFileTruncatedMidPayload) {
  CheckpointCleanup cleanup;
  Made made(6, 8);
  randomize(made, 6);
  save_checkpoint(kPath, made);
  std::vector<char> bytes = read_all_bytes(kPath);
  // Cut the file in the middle of the parameter payload: the loader must
  // report truncation (a short read), not a checksum mismatch.
  bytes.resize(bytes.size() / 2);
  write_all_bytes(kPath, bytes);
  Made target(6, 8);
  try {
    load_checkpoint(kPath, target);
    FAIL() << "truncated checkpoint was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Training checkpoints (full state, "VQMCTS01").
// ---------------------------------------------------------------------------

TrainingSnapshot example_snapshot() {
  TrainingSnapshot snap;
  snap.model_name = "MADE";
  snap.optimizer_name = "ADAM";
  snap.sampler_name = "AUTO";
  snap.num_spins = 6;
  snap.num_parameters = 3;
  snap.iteration = 42;
  snap.parameters = {0.5, -1.25, 3.0};
  snap.optimizer_state = {0.01, 42.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  snap.sampler_state = {1, 2, 3, 4};
  snap.trainer_state = {0.01, -7.5, 1.0, 12.5, -7.0, 1.0, 0.0, 0.0};
  return snap;
}

TEST(TrainingCheckpoint, RoundTripsEveryField) {
  CheckpointCleanup cleanup;
  const TrainingSnapshot saved = example_snapshot();
  save_training_checkpoint(kPath, saved);
  const TrainingSnapshot loaded = load_training_checkpoint(kPath);
  EXPECT_EQ(loaded.model_name, saved.model_name);
  EXPECT_EQ(loaded.optimizer_name, saved.optimizer_name);
  EXPECT_EQ(loaded.sampler_name, saved.sampler_name);
  EXPECT_EQ(loaded.num_spins, saved.num_spins);
  EXPECT_EQ(loaded.num_parameters, saved.num_parameters);
  EXPECT_EQ(loaded.iteration, saved.iteration);
  EXPECT_EQ(loaded.parameters, saved.parameters);
  EXPECT_EQ(loaded.optimizer_state, saved.optimizer_state);
  EXPECT_EQ(loaded.sampler_state, saved.sampler_state);
  EXPECT_EQ(loaded.trainer_state, saved.trainer_state);
}

TEST(TrainingCheckpoint, CorruptionMatrixRejectsEveryMutation) {
  CheckpointCleanup cleanup;
  save_training_checkpoint(kPath, example_snapshot());
  const std::vector<char> pristine = read_all_bytes(kPath);
  ASSERT_GT(pristine.size(), 80u);

  struct Mutation {
    const char* label;
    std::size_t offset;  // byte to XOR
    unsigned char mask;
  };
  const Mutation mutations[] = {
      {"flipped magic", 0, 0xff},
      {"wrong version", 8, 0x01},
      {"corrupt model-name length", 16, 0x40},
      {"bit-flipped payload", pristine.size() / 2, 0x10},
      {"bit-flipped checksum", pristine.size() - 1, 0x01},
  };
  for (const Mutation& m : mutations) {
    std::vector<char> bytes = pristine;
    bytes[m.offset] = char(bytes[m.offset] ^ m.mask);
    write_all_bytes(kPath, bytes);
    EXPECT_THROW(load_training_checkpoint(kPath), Error) << m.label;
  }
  // Sanity: the pristine bytes still load (the matrix tested the mutations,
  // not a broken writer).
  write_all_bytes(kPath, pristine);
  EXPECT_NO_THROW(load_training_checkpoint(kPath));
}

TEST(TrainingCheckpoint, EveryTruncationPointIsRejectedAsTruncation) {
  CheckpointCleanup cleanup;
  save_training_checkpoint(kPath, example_snapshot());
  const std::vector<char> pristine = read_all_bytes(kPath);
  // Cut the record at a spread of points: inside the header, inside each
  // payload, and one byte short of complete. All must throw, and cuts after
  // the magic/version prefix must be reported as truncation — the
  // structural check runs before the checksum is consulted.
  const std::size_t cuts[] = {4,  12, 20, pristine.size() / 3,
                              pristine.size() / 2, pristine.size() - 9,
                              pristine.size() - 1};
  for (const std::size_t cut : cuts) {
    std::vector<char> bytes = pristine;
    bytes.resize(cut);
    write_all_bytes(kPath, bytes);
    try {
      load_training_checkpoint(kPath);
      FAIL() << "accepted a file cut at byte " << cut;
    } catch (const Error& e) {
      if (cut >= 16) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
            << "cut at " << cut << ": " << e.what();
      }
    }
  }
}

TEST(TrainingCheckpoint, KeeperRetainsOnlyTheNewestHistory) {
  const std::string base = "/tmp/vqmc_keeper_test.bin";
  CheckpointKeeper keeper(base, 2);
  TrainingSnapshot snap = example_snapshot();
  for (int iter = 1; iter <= 5; ++iter) {
    snap.iteration = iter;
    keeper.write(snap);
  }
  // Only iterations 4 and 5 survive the retention budget.
  ASSERT_EQ(keeper.retained().size(), 2u);
  EXPECT_EQ(keeper.retained()[0], base + ".iter4");
  EXPECT_EQ(keeper.retained()[1], base + ".iter5");
  for (int iter = 1; iter <= 3; ++iter) {
    std::ifstream gone(base + ".iter" + std::to_string(iter));
    EXPECT_FALSE(gone.good()) << "iteration " << iter << " not pruned";
  }
  // The base path always resolves to the newest snapshot.
  EXPECT_EQ(load_training_checkpoint(base).iteration, 5);
  EXPECT_EQ(load_training_checkpoint(base + ".iter4").iteration, 4);
  for (const std::string& path : keeper.retained()) std::remove(path.c_str());
  std::remove(base.c_str());
}

TEST(Checkpoint, FsyncParentDirectoryCoversEveryPathShape) {
  // The directory-entry sync after the atomic rename (a rename alone is not
  // durable across power loss on journaled filesystems). Exercise each way
  // a path can name its parent: explicit directory, root-adjacent, and
  // bare filename (parent = cwd).
  EXPECT_TRUE(fsync_parent_directory("/tmp/vqmc_any_file_name"));
  EXPECT_TRUE(fsync_parent_directory("/vqmc_root_adjacent"));
  EXPECT_TRUE(fsync_parent_directory("bare_filename_in_cwd"));
  // A missing parent directory is reported, not ignored.
  EXPECT_FALSE(
      fsync_parent_directory("/tmp/vqmc_no_such_dir_xyzzy/checkpoint.bin"));
}

TEST(Checkpoint, SaveIntoMissingDirectoryFailsCleanly) {
  Made made(4, 3);
  EXPECT_THROW(
      save_checkpoint("/tmp/vqmc_no_such_dir_xyzzy/checkpoint.bin", made),
      Error);
}

}  // namespace
}  // namespace vqmc
