#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "nn/made.hpp"
#include "nn/rbm.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc {
namespace {

constexpr const char* kPath = "/tmp/vqmc_checkpoint_test.bin";

struct CheckpointCleanup {
  ~CheckpointCleanup() { std::remove(kPath); }
};

void randomize(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -1.0, 1.0);
}

TEST(Checkpoint, RoundTripsParametersExactly) {
  CheckpointCleanup cleanup;
  Made saved(6, 8);
  randomize(saved, 1);
  save_checkpoint(kPath, saved);

  Made loaded(6, 8);  // different initialization
  loaded.initialize(99);
  load_checkpoint(kPath, loaded);
  for (std::size_t i = 0; i < saved.num_parameters(); ++i)
    EXPECT_EQ(loaded.parameters()[i], saved.parameters()[i]);
}

TEST(Checkpoint, RejectsWrongArchitecture) {
  CheckpointCleanup cleanup;
  Made made(6, 8);
  save_checkpoint(kPath, made);

  Made wrong_shape(6, 9);
  EXPECT_THROW(load_checkpoint(kPath, wrong_shape), Error);
  Made wrong_spins(7, 8);
  EXPECT_THROW(load_checkpoint(kPath, wrong_spins), Error);
  Rbm wrong_kind(6, 8);  // same n; parameter count differs too
  EXPECT_THROW(load_checkpoint(kPath, wrong_kind), Error);
}

TEST(Checkpoint, RejectsWrongModelKindEvenWithSameParameterCount) {
  CheckpointCleanup cleanup;
  // Craft two models with identical (n, d): Made(n, h) has d = 2hn + h + n;
  // Rbm(n, h') has d = h'n + h' + n + 1. For n = 5, Made h = 2 -> d = 27;
  // Rbm h' = ceil((27 - 6) / 6)... simply verify name mismatch dominates by
  // checking a corrupted-name path: save Made, flip its recorded name.
  Made made(5, 2);
  save_checkpoint(kPath, made);
  // Corrupt the stored name ("MADE" -> "MBDE").
  std::fstream f(kPath, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(32 + 1);  // header is 4 x uint64; name starts right after
  f.put('B');
  f.close();
  Made target(5, 2);
  EXPECT_THROW(load_checkpoint(kPath, target), Error);
}

TEST(Checkpoint, DetectsPayloadCorruption) {
  CheckpointCleanup cleanup;
  Made made(5, 4);
  randomize(made, 2);
  save_checkpoint(kPath, made);
  // Flip one byte in the middle of the parameter payload.
  std::fstream f(kPath, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(32 + 4 + 40);  // header + name + some parameters
  f.put('\x7f');
  f.close();
  Made target(5, 4);
  EXPECT_THROW(load_checkpoint(kPath, target), Error);
}

TEST(Checkpoint, MissingFileThrows) {
  Made made(4, 4);
  EXPECT_THROW(load_checkpoint("/tmp/vqmc_no_such_checkpoint.bin", made),
               Error);
}

TEST(Checkpoint, GarbageFileRejected) {
  CheckpointCleanup cleanup;
  std::ofstream out(kPath, std::ios::binary);
  out << "this is not a checkpoint";
  out.close();
  Made made(4, 4);
  EXPECT_THROW(load_checkpoint(kPath, made), Error);
}

TEST(Checkpoint, Fnv1aKnownVector) {
  // FNV-1a("a") = 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
}

}  // namespace
}  // namespace vqmc
