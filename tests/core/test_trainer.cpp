#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/factory.hpp"
#include "core/hitting_time.hpp"
#include "hamiltonian/exact.hpp"
#include "hamiltonian/heisenberg.hpp"
#include "hamiltonian/maxcut.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/deep_made.hpp"
#include "nn/made.hpp"
#include "nn/rnn.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "sampler/autoregressive_sampler.hpp"

namespace vqmc {
namespace {

TEST(Trainer, EnergyDecreasesOnSmallTim) {
  const std::size_t n = 6;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 1);
  Made made(n, 8);
  made.initialize(2);
  AutoregressiveSampler sampler(made, 3);
  Adam adam(0.02);
  TrainerConfig cfg;
  cfg.iterations = 120;
  cfg.batch_size = 128;
  VqmcTrainer trainer(tim, made, sampler, adam, cfg);
  trainer.run();

  ASSERT_EQ(trainer.history().size(), 120u);
  const Real first = trainer.history().front().energy;
  const Real last = trainer.history().back().energy;
  EXPECT_LT(last, first);
  EXPECT_GT(trainer.training_seconds(), 0.0);
}

TEST(Trainer, MetricsAreWellFormed) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 4);
  Made made(4, 5);
  AutoregressiveSampler sampler(made, 5);
  Adam adam;
  TrainerConfig cfg;
  cfg.iterations = 5;
  cfg.batch_size = 32;
  VqmcTrainer trainer(tim, made, sampler, adam, cfg);
  trainer.run();
  double previous_time = 0;
  Real best = std::numeric_limits<Real>::max();
  for (const IterationMetrics& m : trainer.history()) {
    EXPECT_GE(m.std_dev, 0.0);
    EXPECT_GE(m.seconds, previous_time);
    previous_time = m.seconds;
    best = std::min(best, m.best_energy);
    EXPECT_EQ(m.best_energy, best);  // best is monotone non-increasing
  }
  EXPECT_EQ(trainer.history().back().iteration, 4);
}

TEST(Trainer, StepByStepMatchesRun) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 6);
  auto run_with = [&](bool stepwise) {
    Made made(4, 5);
    made.initialize(7);
    AutoregressiveSampler sampler(made, 8);
    Adam adam;
    TrainerConfig cfg;
    cfg.iterations = 10;
    cfg.batch_size = 16;
    VqmcTrainer trainer(tim, made, sampler, adam, cfg);
    if (stepwise) {
      for (int i = 0; i < 10; ++i) trainer.step();
    } else {
      trainer.run();
    }
    return std::vector<Real>(made.parameters().begin(),
                             made.parameters().end());
  };
  const std::vector<Real> a = run_with(true);
  const std::vector<Real> b = run_with(false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Trainer, SrPathRunsAndConverges) {
  const std::size_t n = 5;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 9);
  Made made(n, 4);
  made.initialize(10);
  AutoregressiveSampler sampler(made, 11);
  Sgd sgd(0.1);
  TrainerConfig cfg;
  cfg.iterations = 80;
  cfg.batch_size = 96;
  cfg.use_sr = true;
  cfg.sr.regularization = 1e-3;
  VqmcTrainer trainer(tim, made, sampler, sgd, cfg);
  trainer.run();
  EXPECT_LT(trainer.history().back().energy, trainer.history().front().energy);
}

TEST(Trainer, RunUntilStopsEarly) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 12);
  Made made(4, 4);
  AutoregressiveSampler sampler(made, 13);
  Adam adam;
  TrainerConfig cfg;
  cfg.iterations = 100;
  cfg.batch_size = 16;
  VqmcTrainer trainer(tim, made, sampler, adam, cfg);
  trainer.run_until(
      [](const IterationMetrics& m) { return m.iteration >= 4; });
  EXPECT_EQ(trainer.history().size(), 5u);
}

TEST(Trainer, EvaluateReturnsFreshEstimate) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 14);
  Made made(4, 4);
  AutoregressiveSampler sampler(made, 15);
  Adam adam;
  TrainerConfig cfg;
  cfg.iterations = 3;
  cfg.batch_size = 16;
  VqmcTrainer trainer(tim, made, sampler, adam, cfg);
  trainer.run();
  Matrix samples;
  const EnergyEstimate est = trainer.evaluate_with_samples(64, samples);
  EXPECT_EQ(samples.rows(), 64u);
  EXPECT_GE(est.std_dev, 0.0);
  // Evaluation must not pollute the training history or timing.
  EXPECT_EQ(trainer.history().size(), 3u);
}

TEST(Trainer, LrScheduleIsAppliedEachIteration) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 20);
  Made made(4, 4);
  AutoregressiveSampler sampler(made, 21);
  Sgd sgd(0.1);
  const StepDecaySchedule schedule(2, 0.5);
  TrainerConfig cfg;
  cfg.iterations = 5;
  cfg.batch_size = 8;
  cfg.lr_schedule = &schedule;
  VqmcTrainer trainer(tim, made, sampler, sgd, cfg);
  trainer.run();
  // After 5 steps the last applied multiplier was for iteration 4 -> 0.25.
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.1 * 0.25);
}

TEST(Trainer, GradientClippingBoundsTheUpdate) {
  // With a tiny max_grad_norm the per-step parameter change under plain SGD
  // is bounded by lr * max_grad_norm.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 22);
  Made made(5, 6);
  made.initialize(23);
  const std::vector<Real> before(made.parameters().begin(),
                                 made.parameters().end());
  AutoregressiveSampler sampler(made, 24);
  Sgd sgd(0.1);
  TrainerConfig cfg;
  cfg.iterations = 1;
  cfg.batch_size = 32;
  cfg.max_grad_norm = 1e-3;
  VqmcTrainer trainer(tim, made, sampler, sgd, cfg);
  trainer.step();
  Real delta_norm2 = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const Real d = made.parameters()[i] - before[i];
    delta_norm2 += d * d;
  }
  EXPECT_LE(std::sqrt(delta_norm2), 0.1 * 1e-3 + 1e-12);
}

TEST(Trainer, NegativeClipRejected) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 25);
  Made made(4, 4);
  AutoregressiveSampler sampler(made, 26);
  Adam adam;
  TrainerConfig cfg;
  cfg.max_grad_norm = -1;
  EXPECT_THROW(VqmcTrainer(tim, made, sampler, adam, cfg), Error);
}

TEST(Trainer, WorksWithDeepMadeAndRnnModels) {
  // The trainer is model-agnostic: any AutoregressiveModel slots in.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 27);
  for (int kind = 0; kind < 2; ++kind) {
    std::unique_ptr<AutoregressiveModel> model;
    if (kind == 0) {
      model = std::make_unique<DeepMade>(5, 6, 2);
    } else {
      model = std::make_unique<RnnWavefunction>(5, 6);
    }
    model->initialize(30 + std::uint64_t(kind));
    AutoregressiveSampler sampler(*model, 31);
    Adam adam(0.05);
    TrainerConfig cfg;
    cfg.iterations = 40;
    cfg.batch_size = 64;
    VqmcTrainer trainer(tim, *model, sampler, adam, cfg);
    trainer.run();
    EXPECT_LT(trainer.history().back().energy,
              trainer.history().front().energy)
        << "model kind " << kind;
  }
}

TEST(Trainer, OptimizesHeisenbergWithTwoSiteFlips) {
  // End-to-end through the multi-flip off-diagonal path.
  const XxzHeisenberg h = XxzHeisenberg::chain(6, 0.5, 0.5);
  Made made(6, 8);
  made.initialize(33);
  AutoregressiveSampler sampler(made, 34);
  Adam adam(0.03);
  TrainerConfig cfg;
  cfg.iterations = 120;
  cfg.batch_size = 128;
  VqmcTrainer trainer(h, made, sampler, adam, cfg);
  trainer.run();
  const ExactGroundState exact = exact_ground_state(h);
  const EnergyEstimate est = trainer.evaluate(512);
  EXPECT_GT(est.mean, exact.energy - 0.2);           // variational bound
  EXPECT_LT(est.mean, exact.energy + 0.25 * std::abs(exact.energy));
}

TEST(HittingTime, ReachesTrivialTargetImmediately) {
  const MaxCut h{Graph::bernoulli_symmetrized(10, 16)};
  Made made(10, 6);
  AutoregressiveSampler sampler(made, 17);
  Adam adam;
  TrainerConfig cfg;
  cfg.iterations = 50;
  cfg.batch_size = 32;
  VqmcTrainer trainer(h, made, sampler, adam, cfg);
  const HittingTimeResult r = measure_hitting_time(
      trainer, /*target=*/-1e9,
      [&h](const Matrix&, const EnergyEstimate& est) {
        return h.cut_from_energy(est.mean);
      },
      32);
  EXPECT_TRUE(r.reached);
  EXPECT_EQ(r.iterations, 1);
}

TEST(HittingTime, UnreachableTargetExhaustsBudget) {
  const MaxCut h{Graph::bernoulli_symmetrized(8, 18)};
  Made made(8, 5);
  AutoregressiveSampler sampler(made, 19);
  Adam adam;
  TrainerConfig cfg;
  cfg.iterations = 5;
  cfg.batch_size = 16;
  VqmcTrainer trainer(h, made, sampler, adam, cfg);
  const HittingTimeResult r = measure_hitting_time(
      trainer, /*target=*/1e9,
      [&h](const Matrix&, const EnergyEstimate& est) {
        return h.cut_from_energy(est.mean);
      },
      16);
  EXPECT_FALSE(r.reached);
  EXPECT_EQ(r.iterations, 5);
}

// ---------------------------------------------------------------------------
// Checkpoint/restart determinism (DESIGN.md §5c): a killed-and-resumed run
// must be bit-identical to one that was never interrupted.
// ---------------------------------------------------------------------------

// Each test writes its own base path: under `ctest -j` every TEST runs as
// a separate concurrent process, so a shared path races.
std::string current_ckpt_base() {
  return std::string("/tmp/vqmc_trainer_ckpt_") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         ".bin";
}
#define kCkptBase current_ckpt_base()

struct CkptCleanup {
  ~CkptCleanup() {
    for (int iter = 0; iter <= 40; ++iter)
      std::remove((std::string(kCkptBase) + ".iter" + std::to_string(iter))
                      .c_str());
    std::remove(kCkptBase.c_str());
  }
};

/// One assembled training stack over the same 6-spin TIM instance.
struct Stack {
  TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 21);
  Made made{6, 8};
  AutoregressiveSampler sampler;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<VqmcTrainer> trainer;

  Stack(const std::string& optimizer_kind, TrainerConfig cfg)
      : sampler((made.initialize(13), made), 17) {
    optimizer = optimizer_kind == "SGD" ? make_sgd(0.1) : make_adam(0.01);
    trainer = std::make_unique<VqmcTrainer>(tim, made, sampler, *optimizer,
                                            cfg);
  }
};

void expect_kill_and_resume_bit_identical(const std::string& optimizer_kind) {
  CkptCleanup cleanup;
  const int total = 20;
  const int kill_at = 10;

  TrainerConfig cfg;
  cfg.iterations = total;
  cfg.batch_size = 32;

  // Reference: uninterrupted run.
  Stack reference(optimizer_kind, cfg);
  reference.trainer->run();

  // Interrupted run: checkpoint every 5 iterations, "kill" the process at
  // iteration `kill_at` (stop and discard the whole stack)...
  TrainerConfig ckpt_cfg = cfg;
  ckpt_cfg.checkpoint_path = kCkptBase;
  ckpt_cfg.checkpoint_every = 5;
  {
    Stack victim(optimizer_kind, ckpt_cfg);
    victim.trainer->run_until([&](const IterationMetrics& m) {
      return m.iteration + 1 >= kill_at;
    });
    ASSERT_EQ(victim.trainer->history().size(), std::size_t(kill_at));
  }

  // ...then resume a *fresh* stack from the checkpoint on disk.
  Stack resumed(optimizer_kind, cfg);
  resumed.trainer->restore(load_training_checkpoint(kCkptBase));
  resumed.trainer->run();

  // Bit-identical parameters...
  for (std::size_t i = 0; i < reference.made.num_parameters(); ++i)
    EXPECT_EQ(resumed.made.parameters()[i], reference.made.parameters()[i])
        << optimizer_kind << " parameter " << i;
  // ...and a bit-identical post-resume energy trajectory.
  ASSERT_EQ(resumed.trainer->history().size(), std::size_t(total - kill_at));
  for (std::size_t k = 0; k < resumed.trainer->history().size(); ++k) {
    const IterationMetrics& ours = resumed.trainer->history()[k];
    const IterationMetrics& theirs =
        reference.trainer->history()[std::size_t(kill_at) + k];
    EXPECT_EQ(ours.iteration, theirs.iteration);
    EXPECT_EQ(ours.energy, theirs.energy) << "iteration " << ours.iteration;
  }
}

TEST(TrainerCheckpoint, KillAndResumeIsBitIdenticalWithSgd) {
  expect_kill_and_resume_bit_identical("SGD");
}

TEST(TrainerCheckpoint, KillAndResumeIsBitIdenticalWithAdam) {
  expect_kill_and_resume_bit_identical("ADAM");
}

TEST(TrainerCheckpoint, PeriodicWritesPruneToKeepLast) {
  CkptCleanup cleanup;
  TrainerConfig cfg;
  cfg.iterations = 20;
  cfg.batch_size = 16;
  cfg.checkpoint_path = kCkptBase;
  cfg.checkpoint_every = 4;
  cfg.checkpoint_keep_last = 2;
  Stack stack("ADAM", cfg);
  stack.trainer->run();
  // Checkpoints landed at iterations 4, 8, 12, 16, 20; only 16 and 20 are
  // retained, and the base path holds the final state.
  EXPECT_EQ(load_training_checkpoint(kCkptBase).iteration, 20);
  EXPECT_EQ(load_training_checkpoint(std::string(kCkptBase) + ".iter16")
                .iteration,
            16);
  std::ifstream pruned(std::string(kCkptBase) + ".iter12");
  EXPECT_FALSE(pruned.good());
}

TEST(TrainerCheckpoint, RestoreRejectsEveryIdentityMismatch) {
  CkptCleanup cleanup;
  TrainerConfig cfg;
  cfg.iterations = 4;
  cfg.batch_size = 16;
  Stack stack("ADAM", cfg);
  stack.trainer->run();
  const TrainingSnapshot good = stack.trainer->snapshot();

  // Each identity field is verified independently on restore.
  {
    TrainingSnapshot bad = good;
    bad.model_name = "RBM";
    EXPECT_THROW(stack.trainer->restore(bad), Error);
  }
  {
    TrainingSnapshot bad = good;
    bad.optimizer_name = "SGD";
    EXPECT_THROW(stack.trainer->restore(bad), Error);
  }
  {
    TrainingSnapshot bad = good;
    bad.sampler_name = "MCMC";
    EXPECT_THROW(stack.trainer->restore(bad), Error);
  }
  {
    TrainingSnapshot bad = good;
    bad.num_spins += 1;
    EXPECT_THROW(stack.trainer->restore(bad), Error);
  }
  {
    TrainingSnapshot bad = good;
    bad.num_parameters += 1;
    EXPECT_THROW(stack.trainer->restore(bad), Error);
  }
  // And the unmutated snapshot restores cleanly.
  EXPECT_NO_THROW(stack.trainer->restore(good));
}

}  // namespace
}  // namespace vqmc
