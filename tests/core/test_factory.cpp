#include "core/factory.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/made.hpp"

namespace vqmc {
namespace {

TEST(Factory, ModelKindsAndDefaults) {
  const auto made = make_model("MADE", 100);
  EXPECT_EQ(made->name(), "MADE");
  EXPECT_EQ(dynamic_cast<Made*>(made.get())->hidden_size(),
            made_default_hidden(100));

  const auto rbm = make_model("RBM", 30);
  EXPECT_EQ(rbm->name(), "RBM");
  // Paper default: h = n for RBM -> d = n^2 + n + n + 1.
  EXPECT_EQ(rbm->num_parameters(), 30u * 30u + 30u + 30u + 1u);

  const auto custom = make_model("MADE", 20, 12);
  EXPECT_EQ(dynamic_cast<Made*>(custom.get())->hidden_size(), 12u);

  const auto deep = make_model("DEEPMADE", 20);
  EXPECT_EQ(deep->name(), "DeepMADE");
  const auto rnn = make_model("RNN", 20);
  EXPECT_EQ(rnn->name(), "RNN");

  EXPECT_THROW(make_model("GPT", 10), Error);
}

TEST(Factory, ExtensionModelsSupportAutoSampling) {
  for (const std::string kind : {"DEEPMADE", "RNN"}) {
    const auto model = make_model(kind, 8, 6);
    EXPECT_NO_THROW(make_sampler("AUTO", *model, 1)) << kind;
  }
}

TEST(Factory, ModelSeedControlsInitialization) {
  const auto a = make_model("MADE", 10, 8, 1);
  const auto b = make_model("MADE", 10, 8, 1);
  const auto c = make_model("MADE", 10, 8, 2);
  bool same_ab = true, same_ac = true;
  for (std::size_t i = 0; i < a->num_parameters(); ++i) {
    same_ab &= a->parameters()[i] == b->parameters()[i];
    same_ac &= a->parameters()[i] == c->parameters()[i];
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(Factory, SamplerKinds) {
  const auto made = make_model("MADE", 8, 6);
  const auto auto_sampler = make_sampler("AUTO", *made, 1);
  EXPECT_EQ(auto_sampler->name(), "AUTO");
  EXPECT_TRUE(auto_sampler->is_exact());

  const auto mcmc = make_sampler("MCMC", *made, 1);
  EXPECT_EQ(mcmc->name(), "MCMC");
  EXPECT_FALSE(mcmc->is_exact());

  const auto fast = make_sampler("AUTO-fast", *made, 1);
  EXPECT_EQ(fast->name(), "AUTO-fast");
  EXPECT_TRUE(fast->is_exact());

  const auto rbm = make_model("RBM", 8);
  EXPECT_THROW(make_sampler("AUTO", *rbm, 1), Error);  // RBM is not AR
  const auto deep = make_model("DEEPMADE", 8, 6);
  EXPECT_THROW(make_sampler("AUTO-fast", *deep, 1), Error);  // MADE-only
  EXPECT_THROW(make_sampler("GIBBS", *made, 1), Error);
}

TEST(Factory, McmcDefaultsToPaperBurnIn) {
  const auto rbm = make_model("RBM", 50);
  const auto sampler = make_sampler("MCMC", *rbm, 1);
  const auto* mh = dynamic_cast<MetropolisSampler*>(sampler.get());
  ASSERT_NE(mh, nullptr);
  EXPECT_EQ(mh->config().burn_in, paper_burn_in(50));
  EXPECT_EQ(mh->config().num_chains, 2u);
}

TEST(Factory, OptimizerKindsAndSrLabels) {
  EXPECT_EQ(make_optimizer("SGD")->name(), "SGD");
  EXPECT_EQ(make_optimizer("ADAM")->name(), "ADAM");
  EXPECT_EQ(make_optimizer("SGD+SR")->name(), "SGD");
  EXPECT_TRUE(optimizer_label_uses_sr("SGD+SR"));
  EXPECT_FALSE(optimizer_label_uses_sr("SGD"));
  EXPECT_FALSE(optimizer_label_uses_sr("SR"));
  EXPECT_THROW(make_optimizer("LBFGS"), Error);
}

}  // namespace
}  // namespace vqmc
