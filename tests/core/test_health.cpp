#include "common/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/trainer.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "sampler/metropolis_sampler.hpp"

namespace vqmc {
namespace {

constexpr Real kNaN = std::numeric_limits<Real>::quiet_NaN();
constexpr Real kInf = std::numeric_limits<Real>::infinity();

/// Wraps a healthy MADE and injects non-finite values on demand:
///  * `set_inject_log_psi` poisons log-psi (and therefore the local
///    energies) while leaving the conditionals — and thus sampling —
///    healthy, so the trainer trips exactly at its energy guard;
///  * `set_inject_conditionals` poisons the AUTO sampling path instead.
class FaultyModel final : public AutoregressiveModel {
 public:
  FaultyModel(std::size_t n, std::size_t hidden, std::uint64_t seed)
      : inner_(n, hidden) {
    inner_.initialize(seed);
  }

  void set_inject_log_psi(bool on) { inject_log_psi_ = on; }
  void set_inject_conditionals(bool on) { inject_conditionals_ = on; }

  [[nodiscard]] std::size_t num_spins() const override {
    return inner_.num_spins();
  }
  [[nodiscard]] std::size_t num_parameters() const override {
    return inner_.num_parameters();
  }
  [[nodiscard]] std::span<Real> parameters() override {
    return inner_.parameters();
  }
  [[nodiscard]] std::span<const Real> parameters() const override {
    return inner_.parameters();
  }
  void initialize(std::uint64_t seed) override { inner_.initialize(seed); }

  void log_psi(const Matrix& batch, std::span<Real> out) const override {
    inner_.log_psi(batch, out);
    if (inject_log_psi_) out[0] = kNaN;
  }

  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad) const override {
    inner_.accumulate_log_psi_gradient(batch, coeff, grad);
  }

  void log_psi_gradient_per_sample(const Matrix& batch,
                                   Matrix& out) const override {
    inner_.log_psi_gradient_per_sample(batch, out);
  }

  void conditionals(const Matrix& batch, Matrix& out) const override {
    inner_.conditionals(batch, out);
    if (inject_conditionals_) out(0, 0) = kNaN;
  }

  [[nodiscard]] std::string name() const override { return "FaultyMADE"; }

  [[nodiscard]] std::unique_ptr<WavefunctionModel> clone() const override {
    return std::make_unique<FaultyModel>(*this);
  }

 private:
  Made inner_;
  bool inject_log_psi_ = false;
  bool inject_conditionals_ = false;
};

std::vector<Real> snapshot_of(const WavefunctionModel& model) {
  return {model.parameters().begin(), model.parameters().end()};
}

TEST(HealthPrimitives, AllFiniteAndCountNonfinite) {
  std::vector<Real> v{1.0, -2.5, 0.0};
  EXPECT_TRUE(health::all_finite(std::span<const Real>(v)));
  EXPECT_EQ(health::count_nonfinite(std::span<const Real>(v)), 0u);
  v[1] = kNaN;
  EXPECT_FALSE(health::all_finite(std::span<const Real>(v)));
  v.push_back(-kInf);
  EXPECT_EQ(health::count_nonfinite(std::span<const Real>(v)), 2u);

  Matrix m(2, 2);
  m.fill(1.0);
  EXPECT_TRUE(health::all_finite(m));
  m(1, 0) = kInf;
  EXPECT_FALSE(health::all_finite(m));
}

TEST(HealthPrimitives, GuardPolicyParseRoundTripsAndRejectsUnknown) {
  for (const health::GuardPolicy p :
       {health::GuardPolicy::Throw, health::GuardPolicy::SkipIteration,
        health::GuardPolicy::RollbackAndBackoff}) {
    EXPECT_EQ(health::parse_guard_policy(health::to_string(p)), p);
  }
  EXPECT_EQ(health::parse_guard_policy("RollbackAndBackoff"),
            health::GuardPolicy::RollbackAndBackoff);
  EXPECT_THROW(health::parse_guard_policy("explode"), Error);
}

TEST(DivergenceDetector, TripsAfterConsecutiveExplosionsOnly) {
  health::GuardConfig cfg;
  cfg.divergence_window = 2;
  cfg.divergence_factor = 1;
  cfg.divergence_offset = 1;
  health::DivergenceDetector detector(cfg);

  EXPECT_FALSE(detector.update(-1.0));  // establishes the running best
  EXPECT_EQ(detector.running_best(), -1.0);
  // Threshold: best + factor * (|best| + offset) = -1 + 2 = 1.
  EXPECT_FALSE(detector.update(10.0));  // first explosion: streak 1
  EXPECT_TRUE(detector.update(10.0));   // second consecutive: trip

  detector.reset_streak();
  EXPECT_FALSE(detector.update(10.0));  // streak restarts after a rollback
  EXPECT_FALSE(detector.update(0.5));   // below threshold clears the streak
  EXPECT_FALSE(detector.update(10.0));
  EXPECT_FALSE(detector.update(kNaN));  // non-finite is its own guard
  EXPECT_EQ(detector.running_best(), -1.0);

  // A window of 0 disables the detector entirely.
  health::DivergenceDetector off{};
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(off.update(i == 0 ? -1.0 : 1e12));
}

TEST(HealthGuards, ThrowPolicyFailsFastOnNonFiniteLocalEnergies) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 40);
  FaultyModel model(5, 6, 41);
  AutoregressiveSampler sampler(model, 42);
  Adam adam(0.02);
  TrainerConfig cfg;
  cfg.iterations = 10;
  cfg.batch_size = 32;  // guard policy defaults to Throw
  VqmcTrainer trainer(tim, model, sampler, adam, cfg);
  trainer.step();
  trainer.step();
  model.set_inject_log_psi(true);
  EXPECT_THROW(trainer.step(), Error);
  EXPECT_EQ(trainer.health_counters().guard_trips, 1u);
  EXPECT_EQ(trainer.health_counters().nonfinite_energy, 1u);
}

TEST(HealthGuards, SkipIterationLeavesParametersBitwiseUnchanged) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 43);
  FaultyModel model(5, 6, 44);
  AutoregressiveSampler sampler(model, 45);
  Adam adam(0.02);
  TrainerConfig cfg;
  cfg.iterations = 10;
  cfg.batch_size = 32;
  cfg.guard.policy = health::GuardPolicy::SkipIteration;
  VqmcTrainer trainer(tim, model, sampler, adam, cfg);
  trainer.step();
  trainer.step();

  const std::vector<Real> before = snapshot_of(model);
  model.set_inject_log_psi(true);
  const IterationMetrics m = trainer.step();
  model.set_inject_log_psi(false);

  const std::span<const Real> after = model.parameters();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(after[i], before[i]) << "parameter " << i;
  EXPECT_TRUE(std::isnan(m.energy));
  EXPECT_EQ(m.guard_trips, 1u);
  EXPECT_NE(m.guard_reason.find("non-finite local energies"),
            std::string::npos);
  EXPECT_EQ(trainer.health_counters().skipped_iterations, 1u);

  trainer.step();  // training continues after the skip
  EXPECT_EQ(trainer.health_counters().guard_trips, 1u);
}

TEST(HealthGuards, RollbackRestoresSnapshotAndShrinksLearningRate) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 46);
  FaultyModel model(5, 6, 47);
  AutoregressiveSampler sampler(model, 48);
  Sgd sgd(0.1);
  TrainerConfig cfg;
  cfg.iterations = 10;
  cfg.batch_size = 32;
  cfg.guard.policy = health::GuardPolicy::RollbackAndBackoff;
  VqmcTrainer trainer(tim, model, sampler, sgd, cfg);
  trainer.step();
  trainer.step();

  // The parameters now current were validated (finite energies) by the next
  // healthy step, which snapshots them before updating.
  const std::vector<Real> validated = snapshot_of(model);
  trainer.step();
  const std::vector<Real> advanced = snapshot_of(model);
  bool moved = false;
  for (std::size_t i = 0; i < validated.size(); ++i)
    moved = moved || advanced[i] != validated[i];
  ASSERT_TRUE(moved);  // the healthy step really changed the parameters

  model.set_inject_log_psi(true);
  trainer.step();  // trips: restore the snapshot, halve the learning rate
  model.set_inject_log_psi(false);

  const std::span<const Real> after = model.parameters();
  for (std::size_t i = 0; i < validated.size(); ++i)
    EXPECT_EQ(after[i], validated[i]) << "parameter " << i;
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.05);
  EXPECT_EQ(trainer.health_counters().rollbacks, 1u);
}

TEST(HealthGuards, IntermittentNaNRunCompletesUnderRollback) {
  // Acceptance criterion: a training run with injected NaN local energies
  // completes every iteration with finite parameters under
  // RollbackAndBackoff, while the same run fails fast under Throw.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 49);
  const auto run = [&tim](health::GuardPolicy policy) {
    FaultyModel model(6, 6, 50);
    AutoregressiveSampler sampler(model, 51);
    Adam adam(0.02);
    TrainerConfig cfg;
    cfg.iterations = 30;
    cfg.batch_size = 32;
    cfg.guard.policy = policy;
    VqmcTrainer trainer(tim, model, sampler, adam, cfg);
    for (int i = 0; i < cfg.iterations; ++i) {
      model.set_inject_log_psi(i % 3 == 2);
      trainer.step();
    }
    EXPECT_EQ(trainer.history().size(), 30u);
    EXPECT_TRUE(health::all_finite(model.parameters()));
    const IterationMetrics& last = trainer.history().back();
    EXPECT_GT(last.guard_trips, 0u);
    EXPECT_EQ(last.guard_trips, trainer.health_counters().guard_trips);
    EXPECT_EQ(trainer.health_counters().rollbacks,
              trainer.health_counters().guard_trips);
  };
  run(health::GuardPolicy::RollbackAndBackoff);
  EXPECT_THROW(run(health::GuardPolicy::Throw), Error);
}

TEST(HealthGuards, InvalidBackoffFactorRejected) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 52);
  FaultyModel model(4, 4, 53);
  AutoregressiveSampler sampler(model, 54);
  Adam adam;
  TrainerConfig cfg;
  cfg.guard.backoff_factor = 0;
  EXPECT_THROW(VqmcTrainer(tim, model, sampler, adam, cfg), Error);
  cfg.guard.backoff_factor = 1.5;
  EXPECT_THROW(VqmcTrainer(tim, model, sampler, adam, cfg), Error);
}

TEST(SamplerGuards, AutoregressiveSamplerClampsNonFiniteConditionals) {
  FaultyModel model(6, 5, 55);
  model.set_inject_conditionals(true);
  AutoregressiveSampler sampler(model, 56);
  Matrix out(16, 6);
  sampler.sample(out);
  EXPECT_GT(sampler.statistics().nonfinite_rejections, 0u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Real v = out.data()[i];
    EXPECT_TRUE(v == Real(0) || v == Real(1));
  }
}

TEST(SamplerGuards, MetropolisSamplerRejectsNonFiniteLogPsiProposals) {
  FaultyModel model(6, 5, 57);
  model.set_inject_log_psi(true);  // poisons chain 0's proposals every step
  MetropolisConfig mc;
  mc.num_chains = 2;
  mc.burn_in = 10;
  mc.seed = 58;
  MetropolisSampler sampler(model, mc);
  Matrix out(8, 6);
  sampler.sample(out);
  EXPECT_GT(sampler.statistics().nonfinite_rejections, 0u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Real v = out.data()[i];
    EXPECT_TRUE(v == Real(0) || v == Real(1));
  }
}

}  // namespace
}  // namespace vqmc
