#include "core/estimators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "nn/made.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {
namespace {

TEST(Estimators, EnergyStatisticsOfKnownBatch) {
  Vector l{1.0, 2.0, 3.0, 4.0};
  const EnergyEstimate est = estimate_energy(l.span());
  EXPECT_DOUBLE_EQ(est.mean, 2.5);
  EXPECT_DOUBLE_EQ(est.variance, 1.25);
  EXPECT_DOUBLE_EQ(est.std_dev, std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(est.std_error, std::sqrt(1.25) / 2.0);
  EXPECT_DOUBLE_EQ(est.min, 1.0);
}

TEST(Estimators, EmptyBatchRejected) {
  Vector empty;
  EXPECT_THROW(estimate_energy(empty.span()), Error);
}

TEST(Estimators, ConstantBatchHasZeroVariance) {
  Vector l(16);
  l.fill(-3.25);
  const EnergyEstimate est = estimate_energy(l.span());
  EXPECT_DOUBLE_EQ(est.mean, -3.25);
  EXPECT_DOUBLE_EQ(est.variance, 0.0);
}

TEST(Estimators, GradientIsZeroWhenLocalEnergiesAreConstant) {
  // Eq. 5: the coefficient (l - L) vanishes identically -> zero gradient.
  // This is the zero-variance principle that makes VQMC gradients quiet
  // near an eigenstate.
  Made made(4, 5);
  rng::Xoshiro256 gen(1);
  for (Real& p : made.parameters()) p = rng::uniform(gen, -0.5, 0.5);
  Matrix batch(6, 4);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  Vector local(6);
  local.fill(7.0);
  Vector grad(made.num_parameters());
  accumulate_energy_gradient(made, batch, local.span(), grad.span());
  for (std::size_t i = 0; i < grad.size(); ++i) EXPECT_EQ(grad[i], 0.0);
}

TEST(Estimators, GradientMatchesManualEquationFive) {
  Made made(4, 3);
  rng::Xoshiro256 gen(2);
  for (Real& p : made.parameters()) p = rng::uniform(gen, -0.5, 0.5);
  const std::size_t bs = 5;
  Matrix batch(bs, 4);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  Vector local(bs);
  for (std::size_t k = 0; k < bs; ++k) local[k] = rng::uniform(gen, -2.0, 2.0);

  Vector grad(made.num_parameters());
  accumulate_energy_gradient(made, batch, local.span(), grad.span());

  // Manual: grad = (2/bs) sum_k (l_k - mean) O_k via per-sample gradients.
  Matrix per_sample(bs, made.num_parameters());
  made.log_psi_gradient_per_sample(batch, per_sample);
  const Real l_bar = mean(local.span());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    Real expected = 0;
    for (std::size_t k = 0; k < bs; ++k)
      expected += 2 * (local[k] - l_bar) / Real(bs) * per_sample(k, i);
    EXPECT_NEAR(grad[i], expected, 1e-10);
  }
}

TEST(Estimators, GradientAccumulates) {
  Made made(3, 2);
  Matrix batch(2, 3);
  batch(0, 0) = 1;
  Vector local{1.0, 2.0};
  Vector grad(made.num_parameters());
  accumulate_energy_gradient(made, batch, local.span(), grad.span());
  Vector once = grad;
  accumulate_energy_gradient(made, batch, local.span(), grad.span());
  for (std::size_t i = 0; i < grad.size(); ++i)
    EXPECT_NEAR(grad[i], 2 * once[i], 1e-12);
}

}  // namespace
}  // namespace vqmc
