#include "core/reporting.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "support/mini_json.hpp"

namespace vqmc {
namespace {

constexpr const char* kCsvHeader =
    "iteration,energy,std_dev,best_energy,seconds,guard_trips,guard_reason,"
    "sample_seconds,local_energy_seconds,gradient_seconds,sr_seconds,"
    "allreduce_seconds,optimizer_seconds,checkpoint_seconds\n";

std::vector<IterationMetrics> sample_history() {
  std::vector<IterationMetrics> h(2);
  h[0] = {0, -1.5, 0.25, -2.0, 0.01, 0, "", {}};
  h[1] = {1, -1.75, 0.125, -2.25, 0.02, 0, "", {}};
  h[0].phases = {0.004, 0.003, 0.002, 0, 0, 0.001, 0};
  h[1].phases = {0.005, 0.006, 0.004, 0.002, 0.001, 0.001, 0.003};
  return h;
}

/// Split one CSV line into cells (no quoting in this format).
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream iss(line);
  while (std::getline(iss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

TEST(Reporting, CsvHasHeaderAndOneLinePerIteration) {
  const std::string csv = metrics_to_csv(sample_history());
  EXPECT_NE(csv.find(kCsvHeader), std::string::npos);
  EXPECT_NE(csv.find("0,-1.5,0.25,-2,0.01"), std::string::npos);
  EXPECT_NE(csv.find("1,-1.75,0.125,-2.25,0.02"), std::string::npos);
  // header + 2 rows = 3 newlines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Reporting, CsvOfEmptyHistoryIsJustTheHeader) {
  EXPECT_EQ(metrics_to_csv({}), kCsvHeader);
}

TEST(Reporting, GuardTripsAndSanitizedReasonAreExported) {
  std::vector<IterationMetrics> h(1);
  h[0] = {3,    -1.0, 0.5, -1.5, 0.04, 2, "non-finite local energies, 4 of 32",
          {}};
  const std::string csv = metrics_to_csv(h);
  // The comma inside the reason must not split the CSV cell (the reason cell
  // is followed by the seven phase columns).
  EXPECT_NE(csv.find(",2,non-finite local energies; 4 of 32,"),
            std::string::npos);
  const std::string json = metrics_to_json(h);
  EXPECT_NE(json.find("\"guard_trips\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"guard_reason\": \"non-finite local energies; 4 of "
                      "32\""),
            std::string::npos);
}

TEST(Reporting, NonFiniteEnergiesSerializeAsJsonNull) {
  std::vector<IterationMetrics> h(1);
  h[0] = {0,    std::numeric_limits<Real>::quiet_NaN(),
          std::numeric_limits<Real>::quiet_NaN(),
          -1.5, 0.01,
          1,    "bad batch",
          {}};
  const std::string json = metrics_to_json(h);
  EXPECT_NE(json.find("\"energy\": null"), std::string::npos);
  EXPECT_NE(json.find("\"std_dev\": null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Reporting, JsonIsWellFormedArray) {
  const std::string json = metrics_to_json(sample_history());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"iteration\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"energy\": -1.75"), std::string::npos);
  EXPECT_NE(json.find("\"best_energy\": -2.25"), std::string::npos);
  // Balanced braces: 2 iteration objects, each with a nested phases object.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 4);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 4);
}

TEST(Reporting, JsonOfEmptyHistoryIsEmptyArray) {
  EXPECT_EQ(metrics_to_json({}), "[]\n");
}

TEST(Reporting, CsvRoundTripsFieldByField) {
  std::vector<IterationMetrics> h = sample_history();
  h.push_back({2, std::numeric_limits<Real>::quiet_NaN(),
               std::numeric_limits<Real>::quiet_NaN(), -2.25, 0.03, 1,
               "bad, batch", {}});
  const std::string csv = metrics_to_csv(h);

  std::istringstream lines(csv);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const std::vector<std::string> header = split_csv_line(line);
  ASSERT_EQ(header.size(), 14u);
  EXPECT_EQ(header.front(), "iteration");
  EXPECT_EQ(header.back(), "checkpoint_seconds");

  for (const IterationMetrics& m : h) {
    ASSERT_TRUE(std::getline(lines, line));
    const std::vector<std::string> cells = split_csv_line(line);
    ASSERT_EQ(cells.size(), header.size());
    EXPECT_EQ(std::stoi(cells[0]), m.iteration);
    if (std::isfinite(m.energy)) {
      EXPECT_DOUBLE_EQ(std::stod(cells[1]), m.energy);
      EXPECT_DOUBLE_EQ(std::stod(cells[2]), m.std_dev);
    } else {
      // NaN survives the CSV as a non-numeric token (CSV has no null).
      EXPECT_TRUE(std::isnan(std::stod(cells[1])));
      EXPECT_TRUE(std::isnan(std::stod(cells[2])));
    }
    EXPECT_DOUBLE_EQ(std::stod(cells[3]), m.best_energy);
    EXPECT_DOUBLE_EQ(std::stod(cells[4]), m.seconds);
    EXPECT_EQ(std::stoull(cells[5]), m.guard_trips);
    // The sanitizer replaced the comma, so the reason stayed one cell.
    EXPECT_EQ(cells[6], m.guard_trips > 0 ? "bad; batch" : "");
    EXPECT_DOUBLE_EQ(std::stod(cells[7]), m.phases.sample);
    EXPECT_DOUBLE_EQ(std::stod(cells[8]), m.phases.local_energy);
    EXPECT_DOUBLE_EQ(std::stod(cells[9]), m.phases.gradient);
    EXPECT_DOUBLE_EQ(std::stod(cells[10]), m.phases.sr_solve);
    EXPECT_DOUBLE_EQ(std::stod(cells[11]), m.phases.allreduce);
    EXPECT_DOUBLE_EQ(std::stod(cells[12]), m.phases.optimizer);
    EXPECT_DOUBLE_EQ(std::stod(cells[13]), m.phases.checkpoint);
  }
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(Reporting, JsonRoundTripsFieldByFieldWithNanAsNull) {
  std::vector<IterationMetrics> h = sample_history();
  h.push_back({2, std::numeric_limits<Real>::quiet_NaN(),
               std::numeric_limits<Real>::quiet_NaN(), -2.25, 0.03, 1,
               "diverged", {}});
  const std::string json = metrics_to_json(h);

  const testing::JsonValue doc = testing::parse_json(json);
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array_value.size(), h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    const testing::JsonValue& obj = doc.array_value[i];
    const IterationMetrics& m = h[i];
    ASSERT_TRUE(obj.is_object());
    EXPECT_EQ(int(obj.at("iteration").number_value), m.iteration);
    if (std::isfinite(m.energy)) {
      EXPECT_DOUBLE_EQ(obj.at("energy").number_value, m.energy);
      EXPECT_DOUBLE_EQ(obj.at("std_dev").number_value, m.std_dev);
    } else {
      EXPECT_TRUE(obj.at("energy").is_null());
      EXPECT_TRUE(obj.at("std_dev").is_null());
    }
    EXPECT_DOUBLE_EQ(obj.at("best_energy").number_value, m.best_energy);
    EXPECT_DOUBLE_EQ(obj.at("seconds").number_value, m.seconds);
    EXPECT_EQ(std::uint64_t(obj.at("guard_trips").number_value),
              m.guard_trips);
    EXPECT_EQ(obj.at("guard_reason").string_value, m.guard_reason);
    const testing::JsonValue& phases = obj.at("phases");
    ASSERT_TRUE(phases.is_object());
    EXPECT_DOUBLE_EQ(phases.at("sample").number_value, m.phases.sample);
    EXPECT_DOUBLE_EQ(phases.at("local_energy").number_value,
                     m.phases.local_energy);
    EXPECT_DOUBLE_EQ(phases.at("gradient").number_value, m.phases.gradient);
    EXPECT_DOUBLE_EQ(phases.at("sr").number_value, m.phases.sr_solve);
    EXPECT_DOUBLE_EQ(phases.at("allreduce").number_value,
                     m.phases.allreduce);
    EXPECT_DOUBLE_EQ(phases.at("optimizer").number_value,
                     m.phases.optimizer);
    EXPECT_DOUBLE_EQ(phases.at("checkpoint").number_value,
                     m.phases.checkpoint);
  }
}

TEST(Reporting, WriteTextFileRoundTrips) {
  const std::string path = "/tmp/vqmc_reporting_test.csv";
  const std::string content = metrics_to_csv(sample_history());
  write_text_file(path, content);
  std::ifstream in(path, std::ios::binary);
  std::string read((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(read, content);
  std::remove(path.c_str());
}

TEST(Reporting, WriteToUnwritablePathThrows) {
  EXPECT_THROW(write_text_file("/nonexistent-dir/x.csv", "data"), Error);
}

}  // namespace
}  // namespace vqmc
