#include "core/reporting.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/error.hpp"

namespace vqmc {
namespace {

std::vector<IterationMetrics> sample_history() {
  std::vector<IterationMetrics> h(2);
  h[0] = {0, -1.5, 0.25, -2.0, 0.01, 0, ""};
  h[1] = {1, -1.75, 0.125, -2.25, 0.02, 0, ""};
  return h;
}

TEST(Reporting, CsvHasHeaderAndOneLinePerIteration) {
  const std::string csv = metrics_to_csv(sample_history());
  EXPECT_NE(csv.find("iteration,energy,std_dev,best_energy,seconds,"
                     "guard_trips,guard_reason\n"),
            std::string::npos);
  EXPECT_NE(csv.find("0,-1.5,0.25,-2,0.01"), std::string::npos);
  EXPECT_NE(csv.find("1,-1.75,0.125,-2.25,0.02"), std::string::npos);
  // header + 2 rows = 3 newlines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Reporting, CsvOfEmptyHistoryIsJustTheHeader) {
  const std::string csv = metrics_to_csv({});
  EXPECT_EQ(csv,
            "iteration,energy,std_dev,best_energy,seconds,guard_trips,"
            "guard_reason\n");
}

TEST(Reporting, GuardTripsAndSanitizedReasonAreExported) {
  std::vector<IterationMetrics> h(1);
  h[0] = {3, -1.0, 0.5, -1.5, 0.04, 2, "non-finite local energies, 4 of 32"};
  const std::string csv = metrics_to_csv(h);
  // The comma inside the reason must not split the CSV cell.
  EXPECT_NE(csv.find(",2,non-finite local energies; 4 of 32\n"),
            std::string::npos);
  const std::string json = metrics_to_json(h);
  EXPECT_NE(json.find("\"guard_trips\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"guard_reason\": \"non-finite local energies; 4 of "
                      "32\""),
            std::string::npos);
}

TEST(Reporting, NonFiniteEnergiesSerializeAsJsonNull) {
  std::vector<IterationMetrics> h(1);
  h[0] = {0, std::numeric_limits<Real>::quiet_NaN(),
          std::numeric_limits<Real>::quiet_NaN(), -1.5, 0.01, 1, "bad batch"};
  const std::string json = metrics_to_json(h);
  EXPECT_NE(json.find("\"energy\": null"), std::string::npos);
  EXPECT_NE(json.find("\"std_dev\": null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Reporting, JsonIsWellFormedArray) {
  const std::string json = metrics_to_json(sample_history());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"iteration\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"energy\": -1.75"), std::string::npos);
  EXPECT_NE(json.find("\"best_energy\": -2.25"), std::string::npos);
  // Balanced braces: 2 objects.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 2);
}

TEST(Reporting, JsonOfEmptyHistoryIsEmptyArray) {
  EXPECT_EQ(metrics_to_json({}), "[]\n");
}

TEST(Reporting, WriteTextFileRoundTrips) {
  const std::string path = "/tmp/vqmc_reporting_test.csv";
  const std::string content = metrics_to_csv(sample_history());
  write_text_file(path, content);
  std::ifstream in(path, std::ios::binary);
  std::string read((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(read, content);
  std::remove(path.c_str());
}

TEST(Reporting, WriteToUnwritablePathThrows) {
  EXPECT_THROW(write_text_file("/nonexistent-dir/x.csv", "data"), Error);
}

}  // namespace
}  // namespace vqmc
