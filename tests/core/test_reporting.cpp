#include "core/reporting.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace vqmc {
namespace {

std::vector<IterationMetrics> sample_history() {
  std::vector<IterationMetrics> h(2);
  h[0] = {0, -1.5, 0.25, -2.0, 0.01};
  h[1] = {1, -1.75, 0.125, -2.25, 0.02};
  return h;
}

TEST(Reporting, CsvHasHeaderAndOneLinePerIteration) {
  const std::string csv = metrics_to_csv(sample_history());
  EXPECT_NE(csv.find("iteration,energy,std_dev,best_energy,seconds\n"),
            std::string::npos);
  EXPECT_NE(csv.find("0,-1.5,0.25,-2,0.01"), std::string::npos);
  EXPECT_NE(csv.find("1,-1.75,0.125,-2.25,0.02"), std::string::npos);
  // header + 2 rows = 3 newlines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Reporting, CsvOfEmptyHistoryIsJustTheHeader) {
  const std::string csv = metrics_to_csv({});
  EXPECT_EQ(csv, "iteration,energy,std_dev,best_energy,seconds\n");
}

TEST(Reporting, JsonIsWellFormedArray) {
  const std::string json = metrics_to_json(sample_history());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"iteration\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"energy\": -1.75"), std::string::npos);
  EXPECT_NE(json.find("\"best_energy\": -2.25"), std::string::npos);
  // Balanced braces: 2 objects.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 2);
}

TEST(Reporting, JsonOfEmptyHistoryIsEmptyArray) {
  EXPECT_EQ(metrics_to_json({}), "[]\n");
}

TEST(Reporting, WriteTextFileRoundTrips) {
  const std::string path = "/tmp/vqmc_reporting_test.csv";
  const std::string content = metrics_to_csv(sample_history());
  write_text_file(path, content);
  std::ifstream in(path, std::ios::binary);
  std::string read((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(read, content);
  std::remove(path.c_str());
}

TEST(Reporting, WriteToUnwritablePathThrows) {
  EXPECT_THROW(write_text_file("/nonexistent-dir/x.csv", "data"), Error);
}

}  // namespace
}  // namespace vqmc
