#include "nn/deep_made.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/hamiltonian.hpp"
#include "nn/gradient_check.hpp"
#include "nn/made.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc {
namespace {

Matrix all_configurations(std::size_t n) {
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  return batch;
}

Matrix random_bits(std::size_t bs, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(bs, n);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.7, 0.7);
}

TEST(DeepMade, ParameterCountFormula) {
  const std::size_t n = 6, h = 9, depth = 3;
  const DeepMade model(n, h, depth);
  EXPECT_EQ(model.num_parameters(),
            h * n + h + (depth - 1) * (h * h + h) + n * h + n);
}

TEST(DeepMade, DepthOneMatchesMadeParameterCount) {
  const DeepMade deep(7, 11, 1);
  const Made shallow(7, 11);
  EXPECT_EQ(deep.num_parameters(), shallow.num_parameters());
}

class DeepMadeDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeepMadeDepthSweep, DistributionIsNormalized) {
  const std::size_t depth = std::size_t(GetParam());
  DeepMade model(5, 8, depth);
  randomize_parameters(model, 17 * depth);
  const Matrix batch = all_configurations(5);
  Vector lp(batch.rows());
  model.log_psi(batch, lp.span());
  Real total = 0;
  for (std::size_t k = 0; k < batch.rows(); ++k) total += std::exp(2 * lp[k]);
  EXPECT_NEAR(total, 1.0, 1e-10) << "depth " << depth;
}

TEST_P(DeepMadeDepthSweep, ConditionalsRespectAutoregressiveProperty) {
  const std::size_t depth = std::size_t(GetParam());
  const std::size_t n = 6;
  DeepMade model(n, 10, depth);
  randomize_parameters(model, 23 * depth);
  Matrix base = random_bits(1, n, depth);
  Matrix cond_base;
  model.conditionals(base, cond_base);
  for (std::size_t j = 0; j < n; ++j) {
    Matrix perturbed = base;
    perturbed(0, j) = 1 - perturbed(0, j);
    Matrix cond;
    model.conditionals(perturbed, cond);
    for (std::size_t i = 0; i <= j; ++i)
      EXPECT_EQ(cond(0, i), cond_base(0, i))
          << "depth " << depth << ": output " << i << " depends on input "
          << j;
  }
}

TEST_P(DeepMadeDepthSweep, GradientMatchesFiniteDifferences) {
  const std::size_t depth = std::size_t(GetParam());
  DeepMade model(4, 6, depth);
  randomize_parameters(model, 31 * depth);
  const Matrix batch = random_bits(5, 4, depth + 1);
  Vector coeff(5);
  rng::Xoshiro256 gen(41);
  for (std::size_t k = 0; k < 5; ++k) coeff[k] = rng::uniform(gen, -1.0, 1.0);
  const GradientCheckResult r =
      check_log_psi_gradient(model, batch, coeff.span());
  EXPECT_LT(r.max_abs_error, 1e-6)
      << "depth " << depth << ", worst parameter " << r.worst_index;
}

INSTANTIATE_TEST_SUITE_P(Depths, DeepMadeDepthSweep, ::testing::Values(1, 2, 3));

TEST(DeepMade, PerSampleGradientsSumToBatchGradient) {
  DeepMade model(5, 7, 2);
  randomize_parameters(model, 47);
  const std::size_t bs = 6;
  const Matrix batch = random_bits(bs, 5, 48);
  const std::size_t d = model.num_parameters();
  Matrix per_sample(bs, d);
  model.log_psi_gradient_per_sample(batch, per_sample);
  Vector coeff(bs);
  coeff.fill(1.0);
  Vector batch_grad(d);
  model.accumulate_log_psi_gradient(batch, coeff.span(), batch_grad.span());
  for (std::size_t i = 0; i < d; ++i) {
    Real acc = 0;
    for (std::size_t k = 0; k < bs; ++k) acc += per_sample(k, i);
    EXPECT_NEAR(acc, batch_grad[i], 1e-9);
  }
}

TEST(DeepMade, CloneIsDeepCopy) {
  DeepMade model(4, 5, 2);
  randomize_parameters(model, 51);
  auto copy = model.clone();
  EXPECT_EQ(copy->name(), "DeepMADE");
  copy->parameters()[0] += 1;
  EXPECT_NE(copy->parameters()[0], model.parameters()[0]);
}

TEST(DeepMade, RejectsDegenerateShapes) {
  EXPECT_THROW(DeepMade(1, 4, 1), Error);
  EXPECT_THROW(DeepMade(4, 0, 1), Error);
  EXPECT_THROW(DeepMade(4, 4, 0), Error);
}

}  // namespace
}  // namespace vqmc
