#include "nn/rnn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/hamiltonian.hpp"
#include "nn/gradient_check.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "sampler/diagnostics.hpp"

namespace vqmc {
namespace {

Matrix all_configurations(std::size_t n) {
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  return batch;
}

Matrix random_bits(std::size_t bs, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(bs, n);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.6, 0.6);
}

TEST(Rnn, ParameterCountFormula) {
  const std::size_t n = 7, h = 5;
  const RnnWavefunction rnn(n, h);
  EXPECT_EQ(rnn.num_parameters(), 2 * h + h * h + h + h + 1);
}

TEST(Rnn, DistributionIsNormalized) {
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    RnnWavefunction rnn(5, 6);
    randomize_parameters(rnn, 60 + seed);
    const Matrix batch = all_configurations(5);
    Vector lp(batch.rows());
    rnn.log_psi(batch, lp.span());
    Real total = 0;
    for (std::size_t k = 0; k < batch.rows(); ++k)
      total += std::exp(2 * lp[k]);
    EXPECT_NEAR(total, 1.0, 1e-10) << "seed " << seed;
  }
}

TEST(Rnn, ConditionalsAreCausal) {
  // Conditional t may depend only on x_0..x_{t-1}.
  const std::size_t n = 6;
  RnnWavefunction rnn(n, 7);
  randomize_parameters(rnn, 63);
  Matrix base = random_bits(1, n, 64);
  Matrix cond_base;
  rnn.conditionals(base, cond_base);
  for (std::size_t j = 0; j < n; ++j) {
    Matrix perturbed = base;
    perturbed(0, j) = 1 - perturbed(0, j);
    Matrix cond;
    rnn.conditionals(perturbed, cond);
    for (std::size_t i = 0; i <= j; ++i)
      EXPECT_EQ(cond(0, i), cond_base(0, i))
          << "conditional " << i << " depends on input " << j;
  }
}

TEST(Rnn, FirstConditionalIsInputIndependent) {
  RnnWavefunction rnn(5, 4);
  randomize_parameters(rnn, 65);
  Matrix a = random_bits(1, 5, 66), b = random_bits(1, 5, 67);
  Matrix ca, cb;
  rnn.conditionals(a, ca);
  rnn.conditionals(b, cb);
  EXPECT_EQ(ca(0, 0), cb(0, 0));
}

TEST(Rnn, GradientMatchesFiniteDifferences) {
  RnnWavefunction rnn(5, 4);
  randomize_parameters(rnn, 68);
  const Matrix batch = random_bits(6, 5, 69);
  Vector coeff(6);
  rng::Xoshiro256 gen(70);
  for (std::size_t k = 0; k < 6; ++k) coeff[k] = rng::uniform(gen, -1.0, 1.0);
  const GradientCheckResult r =
      check_log_psi_gradient(rnn, batch, coeff.span());
  EXPECT_LT(r.max_abs_error, 1e-6) << "worst parameter " << r.worst_index;
}

TEST(Rnn, PerSampleGradientsSumToBatchGradient) {
  RnnWavefunction rnn(4, 5);
  randomize_parameters(rnn, 71);
  const std::size_t bs = 5;
  const Matrix batch = random_bits(bs, 4, 72);
  const std::size_t d = rnn.num_parameters();
  Matrix per_sample(bs, d);
  rnn.log_psi_gradient_per_sample(batch, per_sample);
  Vector coeff(bs);
  coeff.fill(1.0);
  Vector batch_grad(d);
  rnn.accumulate_log_psi_gradient(batch, coeff.span(), batch_grad.span());
  for (std::size_t i = 0; i < d; ++i) {
    Real acc = 0;
    for (std::size_t k = 0; k < bs; ++k) acc += per_sample(k, i);
    EXPECT_NEAR(acc, batch_grad[i], 1e-9);
  }
}

TEST(Rnn, ExactSamplingMatchesEnumeratedDistribution) {
  RnnWavefunction rnn(4, 5);
  randomize_parameters(rnn, 73);
  AutoregressiveSampler sampler(rnn, 74);
  const std::size_t draws = 20000;
  Matrix out(draws, 4);
  sampler.sample(out);

  const Matrix configs = all_configurations(4);
  Vector lp(configs.rows());
  rnn.log_psi(configs, lp.span());
  std::vector<Real> exact(configs.rows());
  for (std::size_t i = 0; i < configs.rows(); ++i)
    exact[i] = std::exp(2 * lp[i]);
  const std::vector<Real> empirical = empirical_distribution(out);
  EXPECT_LT(total_variation_distance(empirical, exact), 0.03);
}

TEST(Rnn, CloneIsDeepCopy) {
  RnnWavefunction rnn(4, 3);
  randomize_parameters(rnn, 75);
  auto copy = rnn.clone();
  EXPECT_EQ(copy->name(), "RNN");
  copy->parameters()[0] += 1;
  EXPECT_NE(copy->parameters()[0], rnn.parameters()[0]);
}

TEST(Rnn, RejectsDegenerateShapes) {
  EXPECT_THROW(RnnWavefunction(1, 4), Error);
  EXPECT_THROW(RnnWavefunction(4, 0), Error);
}

}  // namespace
}  // namespace vqmc
