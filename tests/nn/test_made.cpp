#include "nn/made.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/hamiltonian.hpp"
#include "nn/gradient_check.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc {
namespace {

Matrix all_configurations(std::size_t n) {
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  return batch;
}

Matrix random_bits(std::size_t bs, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(bs, n);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed,
                          Real scale = 0.8) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -scale, scale);
}

TEST(Made, ParameterCountMatchesPaperFormula) {
  // d = 2hn + h + n (Section 4).
  const std::size_t n = 7, h = 11;
  const Made made(n, h);
  EXPECT_EQ(made.num_parameters(), 2 * h * n + h + n);
}

TEST(Made, DefaultHiddenIsFiveLogSquared) {
  EXPECT_EQ(made_default_hidden(100),
            std::size_t(std::lround(5 * std::log(100.0) * std::log(100.0))));
  EXPECT_GE(made_default_hidden(2), 4u);
}

TEST(Made, DistributionIsNormalized) {
  // The defining autoregressive property (Eq. 7): sum_x pi(x) = 1 exactly.
  for (std::uint64_t seed : {0ULL, 1ULL, 2ULL}) {
    Made made(6, 9);
    randomize_parameters(made, 100 + seed);
    const Matrix batch = all_configurations(6);
    Vector lp(batch.rows());
    made.log_psi(batch, lp.span());
    Real total = 0;
    for (std::size_t k = 0; k < batch.rows(); ++k)
      total += std::exp(2 * lp[k]);  // pi = psi^2
    EXPECT_NEAR(total, 1.0, 1e-10) << "seed " << seed;
  }
}

TEST(Made, ConditionalsRespectAutoregressiveMasks) {
  // Changing x_j must not affect conditional i for any i <= j.
  const std::size_t n = 6, h = 13;
  Made made(n, h);
  randomize_parameters(made, 5);
  Matrix base = random_bits(1, n, 6);
  Matrix cond_base;
  made.conditionals(base, cond_base);
  for (std::size_t j = 0; j < n; ++j) {
    Matrix perturbed = base;
    perturbed(0, j) = 1 - perturbed(0, j);
    Matrix cond;
    made.conditionals(perturbed, cond);
    for (std::size_t i = 0; i <= j; ++i)
      EXPECT_EQ(cond(0, i), cond_base(0, i))
          << "output " << i << " depends on input " << j;
  }
}

TEST(Made, FirstConditionalIsInputIndependent) {
  Made made(5, 8);
  randomize_parameters(made, 7);
  Matrix a = random_bits(1, 5, 8);
  Matrix b = random_bits(1, 5, 9);
  Matrix ca, cb;
  made.conditionals(a, ca);
  made.conditionals(b, cb);
  EXPECT_EQ(ca(0, 0), cb(0, 0));
}

TEST(Made, MasksHaveDocumentedStructure) {
  const std::size_t n = 5, h = 9;
  const Made made(n, h);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t mk = 1 + (k % (n - 1));
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(made.mask1()(k, j), (j + 1 <= mk) ? 1 : 0);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(made.mask2()(i, k), (i + 1 > mk) ? 1 : 0);
  }
}

TEST(Made, GradientMatchesFiniteDifferences) {
  Made made(5, 7);
  randomize_parameters(made, 11);
  const Matrix batch = random_bits(6, 5, 12);
  Vector coeff(6);
  rng::Xoshiro256 gen(13);
  for (std::size_t k = 0; k < 6; ++k) coeff[k] = rng::uniform(gen, -1.0, 1.0);
  const GradientCheckResult r =
      check_log_psi_gradient(made, batch, coeff.span());
  EXPECT_LT(r.max_abs_error, 1e-7) << "worst parameter " << r.worst_index;
}

TEST(Made, PerSampleGradientMatchesFiniteDifferences) {
  Made made(4, 6);
  randomize_parameters(made, 14);
  const Matrix batch = random_bits(5, 4, 15);
  const GradientCheckResult r = check_per_sample_gradient(made, batch);
  EXPECT_LT(r.max_abs_error, 1e-7);
}

TEST(Made, PerSampleGradientsSumToBatchGradient) {
  Made made(5, 8);
  randomize_parameters(made, 16);
  const std::size_t bs = 7;
  const Matrix batch = random_bits(bs, 5, 17);
  const std::size_t d = made.num_parameters();

  Matrix per_sample(bs, d);
  made.log_psi_gradient_per_sample(batch, per_sample);

  Vector coeff(bs);
  coeff.fill(1.0);
  Vector batch_grad(d);
  made.accumulate_log_psi_gradient(batch, coeff.span(), batch_grad.span());

  for (std::size_t i = 0; i < d; ++i) {
    Real acc = 0;
    for (std::size_t k = 0; k < bs; ++k) acc += per_sample(k, i);
    EXPECT_NEAR(acc, batch_grad[i], 1e-9);
  }
}

TEST(Made, CloneIsIndependentDeepCopy) {
  Made made(4, 5);
  randomize_parameters(made, 18);
  auto copy = made.clone();
  EXPECT_EQ(copy->name(), "MADE");
  EXPECT_EQ(copy->num_parameters(), made.num_parameters());

  const Matrix batch = random_bits(3, 4, 19);
  Vector lp_orig(3), lp_copy(3);
  made.log_psi(batch, lp_orig.span());
  copy->log_psi(batch, lp_copy.span());
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(lp_orig[k], lp_copy[k]);

  // Mutating the copy must not affect the original.
  copy->parameters()[0] += 1.0;
  Vector lp_after(3);
  made.log_psi(batch, lp_after.span());
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(lp_orig[k], lp_after[k]);
}

TEST(Made, InitializeIsDeterministicPerSeed) {
  Made a(6, 7), b(6, 7);
  a.initialize(33);
  b.initialize(33);
  for (std::size_t i = 0; i < a.num_parameters(); ++i)
    EXPECT_EQ(a.parameters()[i], b.parameters()[i]);
  b.initialize(34);
  bool any_different = false;
  for (std::size_t i = 0; i < a.num_parameters(); ++i)
    any_different |= a.parameters()[i] != b.parameters()[i];
  EXPECT_TRUE(any_different);
}

TEST(Made, RejectsDegenerateShapes) {
  EXPECT_THROW(Made(1, 4), Error);
  EXPECT_THROW(Made(4, 0), Error);
}

class MadeNormalizationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MadeNormalizationSweep, SumsToOne) {
  const auto [n, h] = GetParam();
  Made made{std::size_t(n), std::size_t(h)};
  randomize_parameters(made, std::uint64_t(n * 31 + h));
  const Matrix batch = all_configurations(std::size_t(n));
  Vector lp(batch.rows());
  made.log_psi(batch, lp.span());
  Real total = 0;
  for (std::size_t k = 0; k < batch.rows(); ++k) total += std::exp(2 * lp[k]);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, MadeNormalizationSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(1, 4, 10, 25)));

}  // namespace
}  // namespace vqmc
