/// \file test_masked_plan.cpp
/// \brief Pins the masked compute plan (DESIGN.md §5f/§5g): the packed
/// extent-kernel path must match the dense masked path it replaced within
/// the accumulation-order tolerance contract of kernels.hpp (the SIMD
/// kernels re-associate sums, so bit-for-bit equality against the dense
/// path no longer holds — but results stay deterministic and
/// batch-position independent), the autoregressive property must survive
/// the rewrite, and the version-counter weight cache must invalidate on
/// every parameter write and tolerate concurrent readers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "nn/made.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {
namespace {

Matrix random_bits(std::size_t bs, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(bs, n);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.8, 0.8);
}

/// Dense reference replicating the pre-plan code path: materialize
/// `M .* W`, run dense gemms, apply the mask elementwise to the weight
/// gradients.  The packed path must match it within the tolerance contract
/// (dense and extent kernels split accumulations differently under SIMD);
/// the packed weight values themselves are still copied bit-for-bit.
struct DenseReference {
  std::size_t n, h;
  Matrix w1m, w2m;  ///< mask .* W, materialized the old way
  Vector b1, b2;

  explicit DenseReference(const Made& made)
      : n(made.num_spins()), h(made.hidden_size()), b1(h), b2(n) {
    const std::span<const Real> p = std::as_const(made).parameters();
    const Matrix& m1 = made.mask1();
    const Matrix& m2 = made.mask2();
    w1m = Matrix(h, n);
    w2m = Matrix(n, h);
    const std::size_t off_b1 = h * n;
    const std::size_t off_w2 = off_b1 + h;
    const std::size_t off_b2 = off_w2 + n * h;
    for (std::size_t i = 0; i < h * n; ++i)
      w1m.data()[i] = m1.data()[i] * p[i];
    for (std::size_t i = 0; i < h; ++i) b1[i] = p[off_b1 + i];
    for (std::size_t i = 0; i < n * h; ++i)
      w2m.data()[i] = m2.data()[i] * p[off_w2 + i];
    for (std::size_t i = 0; i < n; ++i) b2[i] = p[off_b2 + i];
  }

  void forward(const Matrix& batch, Matrix& a1, Matrix& h1, Matrix& p) const {
    const std::size_t bs = batch.rows();
    a1 = Matrix(bs, h);
    gemm_nt(batch, w1m, a1);
    add_row_broadcast(a1, b1.span());
    h1 = a1;
    relu_inplace(h1);
    p = Matrix(bs, n);
    gemm_nt(h1, w2m, p);
    add_row_broadcast(p, b2.span());
    sigmoid_inplace(p);
  }

  void log_psi(const Matrix& batch, std::span<Real> out) const {
    Matrix a1, h1, p;
    forward(batch, a1, h1, p);
    const auto clamped_log = [](Real v) {
      return std::log(std::max(v, Real(1e-12)));  // kProbEps, as in made.cpp
    };
    for (std::size_t k = 0; k < batch.rows(); ++k) {
      Real log_pi = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const Real x = batch(k, i);
        log_pi += x * clamped_log(p(k, i)) + (1 - x) * clamped_log(1 - p(k, i));
      }
      out[k] = log_pi / 2;
    }
  }

  void accumulate_gradient(const Made& made, const Matrix& batch,
                           std::span<const Real> coeff,
                           std::span<Real> grad) const {
    const std::size_t bs = batch.rows();
    Matrix a1, h1, p;
    forward(batch, a1, h1, p);
    const std::size_t off_b1 = h * n;
    const std::size_t off_w2 = off_b1 + h;
    const std::size_t off_b2 = off_w2 + n * h;

    Matrix g2(bs, n);
    for (std::size_t k = 0; k < bs; ++k)
      for (std::size_t i = 0; i < n; ++i)
        g2(k, i) = coeff[k] / 2 * (batch(k, i) - p(k, i));

    Matrix dw2(n, h);  // zero-initialized
    gemm_tn_accumulate(g2, h1, dw2);
    for (std::size_t i = 0; i < n * h; ++i)
      grad[off_w2 + i] += made.mask2().data()[i] * dw2.data()[i];
    column_sum_accumulate(g2, grad.subspan(off_b2, n));

    Matrix g1(bs, h);
    gemm_nn(g2, w2m, g1);
    relu_backward_inplace(a1, g1);

    Matrix dw1(h, n);
    gemm_tn_accumulate(g1, batch, dw1);
    for (std::size_t i = 0; i < h * n; ++i)
      grad[i] += made.mask1().data()[i] * dw1.data()[i];
    column_sum_accumulate(g1, grad.subspan(off_b1, h));
  }

  void per_sample_gradient(const Made& made, const Matrix& batch,
                           Matrix& out) const {
    const std::size_t bs = batch.rows();
    Matrix a1m, h1m, pm;
    forward(batch, a1m, h1m, pm);
    const std::size_t off_b1 = h * n;
    const std::size_t off_w2 = off_b1 + h;
    const std::size_t off_b2 = off_w2 + n * h;
    std::vector<Real> g1(h);
    for (std::size_t k = 0; k < bs; ++k) {
      Real* o = out.row(k).data();
      std::fill_n(o, out.cols(), Real(0));
      std::fill(g1.begin(), g1.end(), Real(0));
      for (std::size_t i = 0; i < n; ++i) {
        const Real g2 = (batch(k, i) - pm(k, i)) / 2;
        o[off_b2 + i] = g2;
        for (std::size_t l = 0; l < h; ++l) {
          o[off_w2 + i * h + l] = made.mask2()(i, l) * g2 * h1m(k, l);
          g1[l] += g2 * w2m(i, l);
        }
      }
      for (std::size_t l = 0; l < h; ++l) {
        const Real g = (a1m(k, l) > 0) ? g1[l] : 0;
        o[off_b1 + l] = g;
        for (std::size_t j = 0; j < n; ++j)
          o[l * n + j] = made.mask1()(l, j) * g * batch(k, j);
      }
    }
  }
};

TEST(MaskedPlan, W1ExtentsArePrefixIntervals) {
  const std::size_t n = 7, h = 15;
  const Made made(n, h);
  const RowExtents& e1 = made.w1_extents();
  ASSERT_EQ(e1.rows(), h);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t mk = 1 + (k % (n - 1));
    const auto spans = e1.view().row(k);
    ASSERT_EQ(spans.size(), 1u) << "hidden row " << k;
    EXPECT_EQ(spans[0].begin, 0u);
    EXPECT_EQ(spans[0].end, mk);
    EXPECT_EQ(e1.row_end(k), mk);
  }
}

TEST(MaskedPlan, ExtentsRoundTripBothMasks) {
  const std::size_t n = 9, h = 14;
  const Made made(n, h);
  const auto rebuild = [](const RowExtents& ext, std::size_t cols) {
    Matrix m(ext.rows(), cols);
    m.fill(0.0);
    for (std::size_t r = 0; r < ext.rows(); ++r)
      for (const ColSpan s : ext.view().row(r))
        for (std::size_t j = s.begin; j < s.end; ++j) m(r, j) = 1.0;
    return m;
  };
  const Matrix m1 = rebuild(made.w1_extents(), n);
  const Matrix m2 = rebuild(made.w2_extents(), h);
  for (std::size_t i = 0; i < m1.size(); ++i)
    EXPECT_EQ(m1.data()[i], made.mask1().data()[i]);
  for (std::size_t i = 0; i < m2.size(); ++i)
    EXPECT_EQ(m2.data()[i], made.mask2().data()[i]);
}

TEST(MaskedPlan, PackedWeightsMatchMaskedParameters) {
  Made made(8, 13);
  randomize_parameters(made, 31);
  const DenseReference ref(made);
  const auto mw = made.masked();
  for (std::size_t i = 0; i < ref.w1m.size(); ++i)
    EXPECT_EQ(mw->w1m.data()[i], ref.w1m.data()[i]);
  for (std::size_t i = 0; i < ref.w2m.size(); ++i)
    EXPECT_EQ(mw->w2m.data()[i], ref.w2m.data()[i]);
}

// Tolerances for packed-vs-dense comparisons.  Activations and gradients
// are O(1) sums of at most max(n, h) ~ 20 O(1) terms, so the
// accumulation-order bound 2*L*eps*sum|t| sits around 1e-14; log_psi adds
// the vector-log's ~4-ulp core on values as large as |log eps| ~ 28.  The
// 1e-10 margins below are ~1e4 above both bounds while still catching any
// real kernel defect (which perturbs results at the 1e-2+ level).
constexpr Real kForwardTol = 1e-12;
constexpr Real kLogPsiTol = 1e-10;
constexpr Real kGradTol = 1e-10;

TEST(MaskedPlan, ConditionalsMatchDenseReference) {
  for (std::uint64_t seed : {41, 42, 43}) {
    Made made(10, 17);
    randomize_parameters(made, seed);
    const Matrix batch = random_bits(33, 10, seed + 100);
    const DenseReference ref(made);
    Matrix a1, h1, want;
    ref.forward(batch, a1, h1, want);
    Matrix got;
    made.conditionals(batch, got);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(got.data()[i], want.data()[i], kForwardTol)
          << "seed " << seed;

    Matrix again;  // same path, same input: bitwise deterministic
    made.conditionals(batch, again);
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(got.data()[i], again.data()[i]) << "seed " << seed;
  }
}

TEST(MaskedPlan, LogPsiMatchesDenseReference) {
  for (std::uint64_t seed : {51, 52, 53}) {
    Made made(11, 16);
    randomize_parameters(made, seed);
    const Matrix batch = random_bits(29, 11, seed + 100);
    const DenseReference ref(made);
    Vector want(29), got(29), again(29);
    ref.log_psi(batch, want.span());
    made.log_psi(batch, got.span());
    for (std::size_t k = 0; k < 29; ++k)
      EXPECT_NEAR(got[k], want[k], kLogPsiTol)
          << "seed " << seed << " row " << k;
    made.log_psi(batch, again.span());  // deterministic
    for (std::size_t k = 0; k < 29; ++k)
      EXPECT_EQ(got[k], again[k]) << "seed " << seed << " row " << k;
  }
}

TEST(MaskedPlan, BatchGradientMatchesDenseReference) {
  Made made(9, 14);
  randomize_parameters(made, 61);
  const std::size_t bs = 21;
  const Matrix batch = random_bits(bs, 9, 62);
  Vector coeff(bs);
  rng::Xoshiro256 gen(63);
  for (std::size_t k = 0; k < bs; ++k) coeff[k] = rng::uniform(gen, -1.0, 1.0);

  const std::size_t d = made.num_parameters();
  Vector want(d), got(d);
  const DenseReference ref(made);
  ref.accumulate_gradient(made, batch, coeff.span(), want.span());
  made.accumulate_log_psi_gradient(batch, coeff.span(), got.span());
  for (std::size_t i = 0; i < d; ++i)
    EXPECT_NEAR(got[i], want[i], kGradTol) << "parameter " << i;
}

TEST(MaskedPlan, PerSampleGradientMatchesDenseReference) {
  Made made(8, 12);
  randomize_parameters(made, 71);
  const std::size_t bs = 13;
  const Matrix batch = random_bits(bs, 8, 72);
  const std::size_t d = made.num_parameters();

  Matrix want(bs, d), got(bs, d);
  const DenseReference ref(made);
  ref.per_sample_gradient(made, batch, want);
  made.log_psi_gradient_per_sample(batch, got);
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got.data()[i], want.data()[i], kGradTol)
        << "flat index " << i;
}

TEST(MaskedPlan, AutoregressivePropertySurvivesPackedPath) {
  // Regression for the rewrite: flipping input j must leave every
  // conditional i <= j bit-identical (no path from x_j to p_i exists).
  for (std::uint64_t seed : {81, 82, 83}) {
    const std::size_t n = 9;
    Made made(n, 15);
    randomize_parameters(made, seed);
    const Matrix base = random_bits(4, n, seed + 100);
    Matrix cond_base;
    made.conditionals(base, cond_base);
    for (std::size_t j = 0; j < n; ++j) {
      Matrix perturbed = base;
      for (std::size_t k = 0; k < perturbed.rows(); ++k)
        perturbed(k, j) = 1 - perturbed(k, j);
      Matrix cond;
      made.conditionals(perturbed, cond);
      for (std::size_t k = 0; k < perturbed.rows(); ++k)
        for (std::size_t i = 0; i <= j; ++i)
          EXPECT_EQ(cond(k, i), cond_base(k, i))
              << "seed " << seed << ": output " << i << " depends on input "
              << j;
    }
  }
}

TEST(MaskedPlan, CacheReturnsSameSnapshotWhileParametersUnchanged) {
  Made made(6, 9);
  randomize_parameters(made, 91);
  const auto a = made.masked();
  const auto b = made.masked();
  EXPECT_EQ(a.get(), b.get());  // no rebuild, no copy
  EXPECT_EQ(a->version, made.parameter_version());
}

TEST(MaskedPlan, CacheInvalidatesOnMutableParameterAcquisition) {
  Made made(6, 9);
  randomize_parameters(made, 92);
  const auto before = made.masked();
  const Real old_w00 = before->w1m(0, 0);

  const std::uint64_t v = made.parameter_version();
  made.parameters()[0] = old_w00 + 1.5;  // parameter 0 is W1(0,0), in-mask
  EXPECT_GT(made.parameter_version(), v);

  const auto after = made.masked();
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(after->w1m(0, 0), old_w00 + 1.5);
  // The old snapshot is immutable: readers holding it are unaffected.
  EXPECT_EQ(before->w1m(0, 0), old_w00);
}

TEST(MaskedPlan, CacheInvalidatesOnInitialize) {
  Made made(6, 9);
  const auto before = made.masked();
  made.initialize(123);
  const auto after = made.masked();
  EXPECT_NE(before.get(), after.get());
  EXPECT_GT(after->version, before->version);
}

TEST(MaskedPlan, WorkspaceReuseAcrossShapesGivesIdenticalResults) {
  Made made(10, 13);
  randomize_parameters(made, 101);
  const Matrix big = random_bits(37, 10, 102);
  const Matrix small = random_bits(5, 10, 103);

  Vector fresh_big(37), fresh_small(5);
  made.log_psi(big, fresh_big.span());
  made.log_psi(small, fresh_small.span());

  // One workspace driven through shrinking and growing batch shapes.
  Made::Workspace ws;
  Vector got(37);
  made.log_psi(big, got.span(), ws);
  for (std::size_t k = 0; k < 37; ++k) EXPECT_EQ(got[k], fresh_big[k]);
  Vector got_small(5);
  made.log_psi(small, got_small.span(), ws);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_EQ(got_small[k], fresh_small[k]);
  made.log_psi(big, got.span(), ws);
  for (std::size_t k = 0; k < 37; ++k) EXPECT_EQ(got[k], fresh_big[k]);

  // Gradients through the same reused workspace.
  const std::size_t d = made.num_parameters();
  Vector coeff(37);
  coeff.fill(0.25);
  Vector grad_fresh(d), grad_ws(d);
  made.accumulate_log_psi_gradient(big, coeff.span(), grad_fresh.span());
  made.accumulate_log_psi_gradient(big, coeff.span(), grad_ws.span(), ws);
  for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(grad_ws[i], grad_fresh[i]);
}

TEST(MaskedPlan, MakeWorkspaceFeedsVirtualWsPath) {
  Made made(8, 11);
  randomize_parameters(made, 111);
  const WavefunctionModel& model = made;
  const Matrix batch = random_bits(17, 8, 112);

  const auto ws = model.make_workspace();
  ASSERT_NE(ws, nullptr);
  Vector plain(17), with_ws(17);
  model.log_psi(batch, plain.span());
  model.log_psi_ws(batch, with_ws.span(), ws.get());
  for (std::size_t k = 0; k < 17; ++k) EXPECT_EQ(with_ws[k], plain[k]);

  // Null workspace falls back to the plain path.
  Vector null_ws(17);
  model.log_psi_ws(batch, null_ws.span(), nullptr);
  for (std::size_t k = 0; k < 17; ++k) EXPECT_EQ(null_ws[k], plain[k]);
}

TEST(MaskedPlan, ConcurrentReadersShareOneCacheRebuild) {
  // Frozen parameters, many threads: every reader must observe the same
  // immutable masked-weight snapshot and identical evaluations.  Run under
  // TSan in CI.
  Made made(12, 18);
  randomize_parameters(made, 121);
  const Matrix batch = random_bits(24, 12, 122);
  Vector expected(24);
  made.log_psi(batch, expected.span());
  const auto canonical = made.masked();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool good = true;
      for (int iter = 0; iter < 20; ++iter) {
        const auto mw = made.masked();
        good &= mw.get() == canonical.get();
        Made::Workspace ws;
        Vector out(24);
        made.log_psi(batch, out.span(), ws);
        for (std::size_t k = 0; k < 24; ++k) good &= out[k] == expected[k];
      }
      ok[std::size_t(t)] = good ? 1 : 0;
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok[std::size_t(t)], 1);
}

}  // namespace
}  // namespace vqmc
