#include "nn/rbm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradient_check.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {
namespace {

Matrix random_bits(std::size_t bs, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(bs, n);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed,
                          Real scale = 0.7) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -scale, scale);
}

TEST(Rbm, ParameterCount) {
  // [W (h x n) | c (h) | a (n) | a0] -> hn + h + n + 1.
  const Rbm rbm(6, 4);
  EXPECT_EQ(rbm.num_parameters(), 6u * 4u + 4u + 6u + 1u);
}

TEST(Rbm, LogPsiMatchesHandComputedFormula) {
  const std::size_t n = 3, h = 2;
  Rbm rbm(n, h);
  randomize_parameters(rbm, 41);
  const std::span<const Real> p = rbm.parameters();
  // Layout: W row-major (h x n), then c (h), then a (n), then a0.
  const Matrix batch = random_bits(4, n, 42);
  Vector lp(4);
  rbm.log_psi(batch, lp.span());
  for (std::size_t k = 0; k < 4; ++k) {
    Real expected = p[h * n + h + n];  // a0
    for (std::size_t l = 0; l < h; ++l) {
      Real theta = p[h * n + l];  // c_l
      for (std::size_t j = 0; j < n; ++j) theta += p[l * n + j] * batch(k, j);
      expected += std::log(std::cosh(theta));
    }
    for (std::size_t j = 0; j < n; ++j)
      expected += p[h * n + h + j] * batch(k, j);
    EXPECT_NEAR(lp[k], expected, 1e-12);
  }
}

TEST(Rbm, IsNotNormalized) {
  const Rbm rbm(4, 4);
  EXPECT_FALSE(rbm.is_normalized());
}

TEST(Rbm, GradientMatchesFiniteDifferences) {
  Rbm rbm(5, 4);
  randomize_parameters(rbm, 43);
  const Matrix batch = random_bits(6, 5, 44);
  Vector coeff(6);
  rng::Xoshiro256 gen(45);
  for (std::size_t k = 0; k < 6; ++k) coeff[k] = rng::uniform(gen, -1.0, 1.0);
  const GradientCheckResult r =
      check_log_psi_gradient(rbm, batch, coeff.span());
  EXPECT_LT(r.max_abs_error, 1e-7) << "worst parameter " << r.worst_index;
}

TEST(Rbm, PerSampleGradientMatchesFiniteDifferences) {
  Rbm rbm(4, 3);
  randomize_parameters(rbm, 46);
  const Matrix batch = random_bits(5, 4, 47);
  const GradientCheckResult r = check_per_sample_gradient(rbm, batch);
  EXPECT_LT(r.max_abs_error, 1e-7);
}

TEST(Rbm, PerSampleGradientsSumToBatchGradient) {
  Rbm rbm(5, 6);
  randomize_parameters(rbm, 48);
  const std::size_t bs = 8;
  const Matrix batch = random_bits(bs, 5, 49);
  const std::size_t d = rbm.num_parameters();

  Matrix per_sample(bs, d);
  rbm.log_psi_gradient_per_sample(batch, per_sample);
  Vector coeff(bs);
  coeff.fill(1.0);
  Vector batch_grad(d);
  rbm.accumulate_log_psi_gradient(batch, coeff.span(), batch_grad.span());

  for (std::size_t i = 0; i < d; ++i) {
    Real acc = 0;
    for (std::size_t k = 0; k < bs; ++k) acc += per_sample(k, i);
    EXPECT_NEAR(acc, batch_grad[i], 1e-9);
  }
}

TEST(Rbm, CloneIsIndependentDeepCopy) {
  Rbm rbm(4, 4);
  randomize_parameters(rbm, 50);
  auto copy = rbm.clone();
  EXPECT_EQ(copy->name(), "RBM");
  copy->parameters()[0] += 1.0;
  EXPECT_NE(copy->parameters()[0], rbm.parameters()[0]);
}

TEST(Rbm, LogPsiStableForLargeActivations) {
  // Huge weights would overflow cosh; log_cosh must keep things finite.
  Rbm rbm(4, 3);
  for (Real& p : rbm.parameters()) p = 500.0;
  const Matrix batch = random_bits(2, 4, 51);
  Vector lp(2);
  rbm.log_psi(batch, lp.span());
  for (std::size_t k = 0; k < 2; ++k) EXPECT_TRUE(std::isfinite(lp[k]));
}

TEST(Rbm, GradientOfConstantCoefficientMatchesScaledSum) {
  // Linearity check: gradient with coeff = 2*ones equals twice coeff = ones.
  Rbm rbm(4, 3);
  randomize_parameters(rbm, 52);
  const Matrix batch = random_bits(5, 4, 53);
  Vector ones(5), twos(5);
  ones.fill(1.0);
  twos.fill(2.0);
  Vector g1(rbm.num_parameters()), g2(rbm.num_parameters());
  rbm.accumulate_log_psi_gradient(batch, ones.span(), g1.span());
  rbm.accumulate_log_psi_gradient(batch, twos.span(), g2.span());
  for (std::size_t i = 0; i < g1.size(); ++i)
    EXPECT_NEAR(g2[i], 2 * g1[i], 1e-10);
}

}  // namespace
}  // namespace vqmc
