#pragma once

/// \file mini_json.hpp
/// \brief Tiny recursive-descent JSON parser for test assertions only.
///
/// Validates and loads the JSON the repo emits (training histories, Chrome
/// traces, JSONL events, metrics snapshots) without adding a runtime
/// dependency. Throws std::runtime_error with a byte offset on malformed
/// input. Not a production parser: no \uXXXX decoding beyond pass-through,
/// no depth limit.

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace vqmc::testing {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array_value;
  std::map<std::string, JsonValue> object_value;

  [[nodiscard]] bool is_null() const { return kind == Kind::Null; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }

  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::Object && object_value.count(key) > 0;
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("json: missing key '" + key + "'");
    return object_value.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.string_value = parse_string();
      return v;
    }
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.bool_value = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_value[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_value.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Pass the four hex digits through un-decoded; good enough for
            // asserting on ASCII payloads.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            out += "\\u";
            out.append(text_, pos_, 4);
            pos_ += 4;
            break;
          default: fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      out += c;
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number_value = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace vqmc::testing
