#pragma once

/// \file alloc_count.hpp
/// \brief Binary-wide heap-allocation counter for zero-allocation tests.
///
/// alloc_count.cpp replaces the global operator new/delete pair with a
/// counting shim; link it into the test target (sources list) and assert
/// `allocation_count()` does not move across a span that must stay off the
/// heap. Only one test binary may link the .cpp once — the replacement is
/// process-global.

#include <cstdint>

namespace vqmc::testing {

/// Heap allocations made by this binary since process start.
[[nodiscard]] std::uint64_t allocation_count();

}  // namespace vqmc::testing
