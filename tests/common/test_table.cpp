#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vqmc {
namespace {

TEST(Table, EmptyTableRendersNothing) {
  Table t;
  EXPECT_EQ(t.to_string(), "");
  EXPECT_EQ(t.to_csv(), "");
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_EQ(t.columns(), 0u);
}

TEST(Table, HeaderAndRowsAligned) {
  Table t("Demo");
  t.set_header({"Model", "n"});
  t.add_row({"RBM", "20"});
  t.add_row({"MADE", "500"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("| Model"), std::string::npos);
  EXPECT_NE(s.find("| MADE"), std::string::npos);
  // The header rule exists.
  EXPECT_NE(s.find("|-"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, HeaderArityMustMatchExistingRows) {
  Table t;
  t.add_row({"x", "y", "z"});
  EXPECT_THROW(t.set_header({"a"}), Error);
  EXPECT_NO_THROW(t.set_header({"a", "b", "c"}));
}

TEST(Table, RowAccess) {
  Table t;
  t.add_row({"u", "v"});
  EXPECT_EQ(t.row(0)[1], "v");
  EXPECT_THROW(t.row(1), Error);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t;
  t.set_header({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableFormat, FixedDigits) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 1), "-1.0");
}

TEST(TableFormat, MeanStd) {
  EXPECT_EQ(format_mean_std(41.4, 2.0, 1), "41.4 ± 2.0");
}

}  // namespace
}  // namespace vqmc
