#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace vqmc {
namespace {

TEST(Timer, SecondsIsNonNegativeAndMonotone) {
  Timer timer;
  double previous = timer.seconds();
  EXPECT_GE(previous, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = timer.seconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(Timer, MeasuresASleepWithinLooseBounds) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.seconds();
  // Lower bound is hard (sleep_for never returns early on a monotonic
  // clock); the upper bound is loose to survive loaded CI machines.
  EXPECT_GE(elapsed, 0.019);
  EXPECT_LT(elapsed, 5.0);
}

TEST(Timer, ResetRestartsTheStopwatch) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(timer.seconds(), 0.004);
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.004);
}

TEST(Timer, MillisecondsMatchesSeconds) {
  Timer timer;
  const double s = timer.seconds();
  const double ms = timer.milliseconds();
  EXPECT_GE(ms, s * 1e3);
  EXPECT_LT(ms, (s + 1.0) * 1e3);
}

TEST(Timer, ResolutionIsFinerThanAMillisecond) {
  // The phase breakdown attributes sub-millisecond phases, so the clock
  // must tick at millisecond granularity or better: two reads separated by
  // a busy loop of bounded length must differ by less than 1 ms yet the
  // clock must advance within that window.
  Timer timer;
  double first = timer.seconds();
  double second = first;
  for (int i = 0; i < 10'000'000 && second == first; ++i)
    second = timer.seconds();
  EXPECT_GT(second, first);
  EXPECT_LT(second - first, 1e-3);
}

TEST(ThreadCpuTimer, CountsBusyWork) {
  ThreadCpuTimer cpu;
  volatile double sink = 0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink + 1.0;
  EXPECT_GT(cpu.seconds(), 0.0);
}

TEST(ThreadCpuTimer, MostlyIgnoresSleep) {
  ThreadCpuTimer cpu;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // A sleeping thread burns (almost) no CPU; allow generous scheduler noise.
  EXPECT_LT(cpu.seconds(), 0.040);
}

TEST(ThreadCpuTimer, IsMonotoneAcrossReads) {
  ThreadCpuTimer cpu;
  double previous = cpu.seconds();
  EXPECT_GE(previous, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = cpu.seconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

}  // namespace
}  // namespace vqmc
