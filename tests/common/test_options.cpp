#include "common/options.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vqmc {
namespace {

OptionParser make_parser() {
  OptionParser opts("prog", "test parser");
  opts.add_flag("full", "run full scale");
  opts.add_option("seeds", "5", "seed count");
  opts.add_option("lr", "0.1", "learning rate");
  opts.add_option("dims", "20,50", "dimension list");
  return opts;
}

TEST(OptionParser, DefaultsApply) {
  OptionParser opts = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(opts.parse(1, argv));
  EXPECT_FALSE(opts.get_flag("full"));
  EXPECT_EQ(opts.get_int("seeds"), 5);
  EXPECT_DOUBLE_EQ(opts.get_double("lr"), 0.1);
  EXPECT_EQ(opts.get_int_list("dims"), (std::vector<int>{20, 50}));
}

TEST(OptionParser, ParsesSpaceAndEqualsForms) {
  OptionParser opts = make_parser();
  const char* argv[] = {"prog", "--seeds", "7", "--lr=0.25", "--full"};
  ASSERT_TRUE(opts.parse(5, argv));
  EXPECT_TRUE(opts.get_flag("full"));
  EXPECT_EQ(opts.get_int("seeds"), 7);
  EXPECT_DOUBLE_EQ(opts.get_double("lr"), 0.25);
}

TEST(OptionParser, UnknownOptionThrows) {
  OptionParser opts = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(opts.parse(3, argv), Error);
}

TEST(OptionParser, MissingValueThrows) {
  OptionParser opts = make_parser();
  const char* argv[] = {"prog", "--seeds"};
  EXPECT_THROW(opts.parse(2, argv), Error);
}

TEST(OptionParser, FlagWithValueThrows) {
  OptionParser opts = make_parser();
  const char* argv[] = {"prog", "--full=yes"};
  EXPECT_THROW(opts.parse(2, argv), Error);
}

TEST(OptionParser, NonIntegerThrows) {
  OptionParser opts = make_parser();
  const char* argv[] = {"prog", "--seeds", "abc"};
  ASSERT_TRUE(opts.parse(3, argv));
  EXPECT_THROW(opts.get_int("seeds"), Error);
}

TEST(OptionParser, HelpReturnsFalse) {
  OptionParser opts = make_parser();
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(opts.parse(2, argv));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("usage: prog"), std::string::npos);
}

TEST(OptionParser, IntListRejectsGarbage) {
  OptionParser opts = make_parser();
  const char* argv[] = {"prog", "--dims", "20,x,50"};
  ASSERT_TRUE(opts.parse(3, argv));
  EXPECT_THROW(opts.get_int_list("dims"), Error);
}

}  // namespace
}  // namespace vqmc
