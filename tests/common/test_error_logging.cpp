#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"

namespace vqmc {
namespace {

TEST(Error, RequireThrowsWithLocation) {
  try {
    VQMC_REQUIRE(false, "boom");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom"), std::string::npos);
    EXPECT_NE(what.find("test_error_logging.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(VQMC_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Logging, LevelFilteringApplies) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  // Below-threshold messages are dropped (no observable side effect to
  // assert beyond not crashing; the level getter is the contract).
  log_info("should be suppressed");
  log_warn("should be emitted");
  set_log_level(saved);
}

TEST(ThreadCpuTimer, CountsOnlyThisThreadsCpuTime) {
  ThreadCpuTimer timer;
  // Spin a little so the counter is measurably positive.
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  const double busy = timer.seconds();
  EXPECT_GT(busy, 0.0);
  EXPECT_LT(busy, 10.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), busy + 1.0);
}

TEST(Timer, MeasuresNonNegativeElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds() * 1e3 - 1e-9);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace vqmc
