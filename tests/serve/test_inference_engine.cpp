#include "serve/inference_engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/local_energy.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/fast_made_sampler.hpp"
#include "telemetry/telemetry.hpp"

namespace vqmc::serve {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.8, 0.8);
}

Matrix random_configs(std::size_t rows, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(rows, n);
  for (std::size_t k = 0; k < rows; ++k)
    for (std::size_t i = 0; i < n; ++i)
      batch(k, i) = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

TEST(EngineCounters, CounterFieldNamesArePinned) {
  // counter_fields() is the single naming authority for `vqmc_serve --smoke`
  // output and the observability exposition snapshot. Renaming or
  // reordering a field silently breaks dashboards and the CI metrics
  // checker — this test makes that a visible decision.
  EngineCounters counters;
  counters.submitted = 1;
  counters.completed = 2;
  counters.failed = 3;
  counters.shed = 4;
  counters.quota_rejected = 8;
  counters.batches = 5;
  counters.publishes = 6;
  counters.max_batch_rows = 7;
  counters.nonfinite_draws = 9;
  const auto fields = counter_fields(counters);
  const std::vector<std::pair<std::string, std::uint64_t>> expected = {
      {"serve.submitted", 1},      {"serve.completed", 2},
      {"serve.failed", 3},         {"serve.shed", 4},
      {"serve.quota_rejected", 8}, {"serve.batches", 5},
      {"serve.publishes", 6},      {"serve.max_batch_rows", 7},
      {"serve.nonfinite_draws", 9},
  };
  ASSERT_EQ(fields.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fields[i].first, expected[i].first) << "index " << i;
    EXPECT_EQ(fields[i].second, expected[i].second) << "index " << i;
  }
}

TEST(EngineCounters, FleetCounterFieldNamesArePinned) {
  // The labeled per-model / per-tenant families are scraped by CI
  // (check_metrics.py --profile serve) and rendered by the obs endpoint —
  // renaming a family or a label key is a dashboard-breaking decision.
  ModelCounters model;
  model.submitted = 1;
  model.version = 2;
  const auto model_fields = model_counter_fields("m0", model);
  ASSERT_EQ(model_fields.size(), 7u);
  EXPECT_EQ(model_fields[0].first, "serve.model.submitted{model=\"m0\"}");
  EXPECT_EQ(model_fields[0].second, 1u);
  EXPECT_EQ(model_fields[1].first, "serve.model.completed{model=\"m0\"}");
  EXPECT_EQ(model_fields[2].first, "serve.model.failed{model=\"m0\"}");
  EXPECT_EQ(model_fields[3].first, "serve.model.batches{model=\"m0\"}");
  EXPECT_EQ(model_fields[4].first, "serve.model.publishes{model=\"m0\"}");
  EXPECT_EQ(model_fields[5].first, "serve.model.version{model=\"m0\"}");
  EXPECT_EQ(model_fields[5].second, 2u);
  EXPECT_EQ(model_fields[6].first,
            "serve.model.max_batch_rows{model=\"m0\"}");

  TenantCounters tenant;
  tenant.quota_rejected = 9;
  const auto tenant_fields = tenant_counter_fields("alice", tenant);
  ASSERT_EQ(tenant_fields.size(), 5u);
  EXPECT_EQ(tenant_fields[0].first,
            "serve.tenant.submitted{tenant=\"alice\"}");
  EXPECT_EQ(tenant_fields[1].first,
            "serve.tenant.completed{tenant=\"alice\"}");
  EXPECT_EQ(tenant_fields[2].first, "serve.tenant.failed{tenant=\"alice\"}");
  EXPECT_EQ(tenant_fields[3].first, "serve.tenant.shed{tenant=\"alice\"}");
  EXPECT_EQ(tenant_fields[4].first,
            "serve.tenant.quota_rejected{tenant=\"alice\"}");
  EXPECT_EQ(tenant_fields[4].second, 9u);
}

TEST(EngineCounters, CounterFieldsTrackTheLiveEngine) {
  Made made(6, 8);
  randomize_parameters(made, 3);
  InferenceEngine engine({.workers = 1});
  engine.publish_model(made);
  const Matrix configs = random_configs(4, 6, 5);
  (void)engine.submit_log_psi(configs).get();
  const auto fields = counter_fields(engine.counters());
  auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : fields)
      if (n == name) return v;
    ADD_FAILURE() << "missing field " << name;
    return 0;
  };
  EXPECT_EQ(value_of("serve.submitted"), 1u);
  EXPECT_EQ(value_of("serve.completed"), 1u);
  EXPECT_EQ(value_of("serve.publishes"), 1u);
  EXPECT_GE(value_of("serve.batches"), 1u);
  EXPECT_GE(value_of("serve.max_batch_rows"), 4u);
}

TEST(InferenceEngine, LogPsiMatchesModelBitForBit) {
  Made made(8, 10);
  randomize_parameters(made, 1);
  InferenceEngine engine({.workers = 2});
  EXPECT_EQ(engine.publish_model(made), 1u);

  const Matrix configs = random_configs(16, 8, 2);
  Vector expected(16);
  made.log_psi(configs, expected.span());

  auto future = engine.submit_log_psi(configs);
  const EvalResult result = future.get();
  EXPECT_EQ(result.model_version, 1u);
  ASSERT_EQ(result.values.size(), 16u);
  for (std::size_t k = 0; k < 16; ++k)
    EXPECT_EQ(expected[k], result.values[k]);
}

TEST(InferenceEngine, SampleMatchesInTrainerSamplerBitForBit) {
  Made made(9, 7);
  randomize_parameters(made, 3);
  InferenceEngine engine;
  engine.publish_model(made);

  FastMadeSampler reference(made, 77);
  Matrix expected(32, 9);
  reference.sample(expected);

  const SampleResult result = engine.submit_sample(32, 77).get();
  EXPECT_EQ(result.model_version, 1u);
  ASSERT_EQ(result.samples.rows(), 32u);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(expected.data()[i], result.samples.data()[i]);
}

TEST(InferenceEngine, NonfiniteDrawsSurfaceInEngineCounters) {
  // Serving a sick model (NaN output bias) must clamp the affected draws
  // and attribute them through counters().nonfinite_draws, so health guards
  // can tell a sick model from a sick engine.
  constexpr std::size_t n = 6;
  Made made(n, 8);
  randomize_parameters(made, 19);
  made.parameters()[made.num_parameters() - n + 1] =  // b2[1]
      std::numeric_limits<Real>::quiet_NaN();
  InferenceEngine engine({.workers = 1});
  engine.publish_model(made);

  const SampleResult result = engine.submit_sample(16, 5).get();
  ASSERT_EQ(result.samples.rows(), 16u);
  EXPECT_EQ(engine.counters().nonfinite_draws, 16u);  // one clamp per row
  const auto fields = counter_fields(engine.counters());
  bool found = false;
  for (const auto& [name, value] : fields) {
    if (name == "serve.nonfinite_draws") {
      found = true;
      EXPECT_EQ(value, 16u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(InferenceEngine, LocalEnergyMatchesEngineDirect) {
  const auto tim = TransverseFieldIsing::random_dense(6, 11);
  Made made(6, 8);
  randomize_parameters(made, 4);
  ServeConfig config;
  config.hamiltonian = &tim;
  InferenceEngine engine(config);
  engine.publish_model(made);

  const Matrix configs = random_configs(12, 6, 5);
  std::vector<Real> expected(12);
  LocalEnergyEngine direct(tim, made);
  direct.compute(configs, expected);

  const EvalResult result = engine.submit_local_energy(configs).get();
  ASSERT_EQ(result.values.size(), 12u);
  for (std::size_t k = 0; k < 12; ++k)
    EXPECT_EQ(expected[k], result.values[k]);
}

TEST(InferenceEngine, LocalEnergyRequiresHamiltonian) {
  Made made(6, 8);
  InferenceEngine engine;
  engine.publish_model(made);
  EXPECT_THROW((void)engine.submit_local_energy(random_configs(2, 6, 1)),
               Error);
}

TEST(InferenceEngine, SubmitBeforePublishRejected) {
  InferenceEngine engine;
  EXPECT_THROW((void)engine.submit_sample(4, 1), Error);
}

TEST(InferenceEngine, HotSwapAttributesVersionsExactly) {
  Made v1(7, 9), v2(7, 9);
  randomize_parameters(v1, 10);
  randomize_parameters(v2, 20);
  InferenceEngine engine;
  EXPECT_EQ(engine.publish_model(v1), 1u);

  const Matrix configs = random_configs(8, 7, 6);
  Vector expected_v1(8), expected_v2(8);
  v1.log_psi(configs, expected_v1.span());
  v2.log_psi(configs, expected_v2.span());

  const EvalResult before = engine.submit_log_psi(configs).get();
  EXPECT_EQ(before.model_version, 1u);
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_EQ(expected_v1[k], before.values[k]);

  EXPECT_EQ(engine.publish_model(v2), 2u);
  EXPECT_EQ(engine.current_version(), 2u);
  const EvalResult after = engine.submit_log_psi(configs).get();
  EXPECT_EQ(after.model_version, 2u);
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_EQ(expected_v2[k], after.values[k]);
}

TEST(InferenceEngine, PublishRejectsProblemSizeChange) {
  Made small(6, 8), large(7, 8);
  InferenceEngine engine;
  engine.publish_model(small);
  EXPECT_THROW(engine.publish_model(large), SnapshotMismatchError);
}

TEST(InferenceEngine, WindowCoalescesConcurrentRequestsIntoOneBatch) {
  Made made(6, 8);
  randomize_parameters(made, 7);
  ServeConfig config;
  config.workers = 1;
  config.max_batch_rows = 8;
  config.max_wait_us = 200000;  // generous window: the budget closes it
  InferenceEngine engine(config);
  engine.publish_model(made);

  const Matrix configs = random_configs(1, 6, 8);
  std::vector<std::future<EvalResult>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(engine.submit_log_psi(configs));
  for (auto& future : futures) (void)future.get();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, 8u);
  EXPECT_EQ(counters.completed, 8u);
  // All eight row-1 requests fit one micro-batch; allow a second in case
  // the worker dispatched before the budget filled.
  EXPECT_LE(counters.batches, 2u);
}

TEST(InferenceEngine, SaturatedQueueFillsAFull128RowBatch) {
  // Regression: the batch builder must be able to coalesce all the way up
  // to max_batch_rows — the serve bench used to top out at 64-row batches
  // at the 128-row config because the closed-loop producers could never
  // outrun the window.  pause() lets the queue saturate deterministically;
  // on resume() the single worker must harvest one full 128-row batch.
  Made made(6, 8);
  randomize_parameters(made, 21);
  ServeConfig config;
  config.workers = 1;
  config.max_batch_rows = 128;
  config.max_wait_us = 4000;
  config.max_pending_rows = 256;
  InferenceEngine engine(config);
  engine.publish_model(made);

  engine.pause();
  std::vector<std::future<SampleResult>> futures;
  for (int i = 0; i < 128; ++i)
    futures.push_back(engine.submit_sample(1, std::uint64_t(i)));
  engine.resume();
  for (auto& future : futures) (void)future.get();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, 128u);
  EXPECT_EQ(counters.completed, 128u);
  EXPECT_EQ(counters.batches, 1u);
  EXPECT_EQ(counters.max_batch_rows, 128u);
}

TEST(InferenceEngine, AdaptiveWindowClosesWhenAllPendingRowsAreBatched) {
  // Closed-loop regression: one lone client must not pay the full batching
  // window when every admitted row is already in the open batch (nothing
  // else can arrive until this batch completes).  With a 0.5 s window the
  // request must still round-trip in a small fraction of it.
  Made made(6, 8);
  randomize_parameters(made, 23);
  ServeConfig config;
  config.workers = 1;
  config.max_batch_rows = 128;
  config.max_wait_us = 500000;
  InferenceEngine engine(config);
  engine.publish_model(made);

  const double t0 = telemetry::now_us();
  (void)engine.submit_sample(1, 7).get();
  const double elapsed_us = telemetry::now_us() - t0;
  // One wait slice is max_wait_us / 8 = 62.5 ms; anything close to the
  // full 500 ms window means the adaptive close regressed.
  EXPECT_LT(elapsed_us, 250000.0);
}

TEST(InferenceEngine, OverloadShedsWithTypedError) {
  Made made(6, 8);
  randomize_parameters(made, 9);
  ServeConfig config;
  config.workers = 1;
  config.max_batch_rows = 4;
  config.max_wait_us = 200000;  // holds the first batch open
  config.max_pending_rows = 4;
  InferenceEngine engine(config);
  engine.publish_model(made);

  // 3 rows outstanding; a 2-row request exceeds the bound of 4 and is shed
  // synchronously, while a 1-row request still fits (and fills the batch).
  auto first = engine.submit_log_psi(random_configs(3, 6, 10));
  EXPECT_THROW((void)engine.submit_log_psi(random_configs(2, 6, 11)),
               ServeOverloadError);
  auto third = engine.submit_log_psi(random_configs(1, 6, 12));
  (void)first.get();
  (void)third.get();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.shed, 1u);
  EXPECT_EQ(counters.submitted, 2u);
  EXPECT_EQ(counters.completed, 2u);
  EXPECT_EQ(counters.failed, 0u);
}

TEST(InferenceEngine, DeadlineExpiryFailsThroughTheFuture) {
  Made made(6, 8);
  randomize_parameters(made, 13);
  ServeConfig config;
  config.workers = 1;
  config.max_batch_rows = 8;
  config.max_wait_us = 150000;  // window far beyond the request deadline
  InferenceEngine engine(config);
  engine.publish_model(made);

  auto future = engine.submit_log_psi(random_configs(1, 6, 14),
                                      /*timeout_us=*/1000);
  EXPECT_THROW((void)future.get(), ServeDeadlineError);
  engine.drain();
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, 1u);
  EXPECT_EQ(counters.failed, 1u);
  EXPECT_EQ(counters.completed, 0u);
}

TEST(InferenceEngine, ShutdownDrainsBacklogAndRejectsNewWork) {
  Made made(6, 8);
  randomize_parameters(made, 15);
  ServeConfig config;
  config.workers = 1;
  config.max_wait_us = 500000;  // shutdown must collapse this window
  InferenceEngine engine(config);
  engine.publish_model(made);

  std::vector<std::future<EvalResult>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(engine.submit_log_psi(random_configs(1, 6, 16)));
  engine.shutdown();

  // Every admitted request was fulfilled during shutdown (none dropped).
  for (auto& future : futures) (void)future.get();
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, 6u);
  EXPECT_EQ(counters.completed + counters.failed, 6u);

  EXPECT_THROW((void)engine.submit_sample(1, 1), ServeShutdownError);
  engine.shutdown();  // idempotent
}

TEST(InferenceEngine, DrainReachesQuiescentAccounting) {
  Made made(6, 8);
  randomize_parameters(made, 17);
  InferenceEngine engine({.workers = 2});
  engine.publish_model(made);
  std::vector<std::future<SampleResult>> futures;
  for (int i = 0; i < 20; ++i)
    futures.push_back(engine.submit_sample(4, std::uint64_t(i)));
  engine.drain();
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, 20u);
  EXPECT_EQ(counters.completed + counters.failed, counters.submitted);
  for (auto& future : futures) (void)future.get();
}

TEST(InferenceEngine, OversizedRequestIsServedAlone) {
  // A request larger than the micro-batch budget is legal; it simply forms
  // its own batch.
  Made made(6, 8);
  randomize_parameters(made, 19);
  ServeConfig config;
  config.max_batch_rows = 4;
  InferenceEngine engine(config);
  engine.publish_model(made);

  FastMadeSampler reference(made, 5);
  Matrix expected(16, 6);
  reference.sample(expected);
  const SampleResult result = engine.submit_sample(16, 5).get();
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(expected.data()[i], result.samples.data()[i]);
}

TEST(InferenceEngine, WrongSpinCountRejectedAtSubmit) {
  Made made(6, 8);
  InferenceEngine engine;
  engine.publish_model(made);
  EXPECT_THROW((void)engine.submit_log_psi(random_configs(2, 7, 1)), Error);
}

TEST(InferenceEngine, OverloadMessageNamesLimitDepthAndTenant) {
  // The rejection message is actionable by contract (errors.hpp): an
  // operator reading a client-side log must see which knob tripped, how
  // deep the backlog was, and which tenant was turned away.
  Made made(6, 8);
  randomize_parameters(made, 9);
  ServeConfig config;
  config.workers = 1;
  config.max_batch_rows = 4;
  config.max_wait_us = 200000;  // holds the first batch open
  config.max_pending_rows = 4;
  InferenceEngine engine(config);
  engine.publish_model(made);

  auto first = engine.submit_log_psi(random_configs(3, 6, 10));
  RequestOptions options;
  options.tenant = "carol";
  try {
    (void)engine.submit_log_psi(random_configs(2, 6, 11), options);
    FAIL() << "expected ServeOverloadError";
  } catch (const ServeOverloadError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'carol'"), std::string::npos) << what;
    EXPECT_NE(what.find("3 rows outstanding"), std::string::npos) << what;
    EXPECT_NE(what.find("max_pending_rows limit of 4"), std::string::npos)
        << what;
  }
  (void)first.get();
  const auto tenants = engine.tenant_counters();
  for (const auto& [name, t] : tenants) {
    if (name == "carol") EXPECT_EQ(t.shed, 1u);
  }
}

TEST(InferenceEngine, QuotaRejectionIsTypedDistinctAndActionable) {
  // A tenant over its token-bucket budget gets ServeQuotaError (not
  // overload: the engine has capacity), synchronously, with the budget in
  // the message; other tenants are unaffected.
  Made made(6, 8);
  randomize_parameters(made, 31);
  ServeConfig config;
  config.workers = 1;
  config.tenant_quotas["dave"] = TenantQuota{0, 4};  // 4 rows ever, no refill
  InferenceEngine engine(config);
  engine.publish_model(made);

  RequestOptions dave;
  dave.tenant = "dave";
  (void)engine.submit_log_psi(random_configs(4, 6, 32), dave).get();
  try {
    (void)engine.submit_log_psi(random_configs(1, 6, 33), dave);
    FAIL() << "expected ServeQuotaError";
  } catch (const ServeQuotaError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'dave'"), std::string::npos) << what;
    EXPECT_NE(what.find("rate"), std::string::npos) << what;
    EXPECT_NE(what.find("burst"), std::string::npos) << what;
    EXPECT_NE(what.find("available"), std::string::npos) << what;
  }
  // An unlimited tenant sails through while dave is rejected.
  (void)engine.submit_log_psi(random_configs(1, 6, 34)).get();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.quota_rejected, 1u);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.submitted, 2u);
  for (const auto& [name, t] : engine.tenant_counters()) {
    if (name == "dave") {
      EXPECT_EQ(t.quota_rejected, 1u);
      EXPECT_EQ(t.submitted, 1u);
    } else {
      EXPECT_EQ(t.quota_rejected, 0u);
    }
  }
}

TEST(InferenceEngine, QuotaRefillsAtTheConfiguredRate) {
  Made made(6, 8);
  randomize_parameters(made, 35);
  ServeConfig config;
  config.workers = 1;
  // 10 rows/s: the 2-row bucket needs 200 ms to refill, so the immediate
  // resubmit is rejected (back-to-back statements run far faster than
  // that) while a 300 ms wait guarantees a full bucket again.
  config.tenant_quotas["erin"] = TenantQuota{10, 2};
  InferenceEngine engine(config);
  engine.publish_model(made);

  RequestOptions erin;
  erin.tenant = "erin";
  (void)engine.submit_log_psi(random_configs(2, 6, 36), erin).get();
  EXPECT_THROW((void)engine.submit_log_psi(random_configs(2, 6, 37), erin),
               ServeQuotaError);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  (void)engine.submit_log_psi(random_configs(2, 6, 38), erin).get();
  EXPECT_EQ(engine.counters().quota_rejected, 1u);
}

TEST(InferenceEngine, NearDeadlineRequestIsDispatchedFirstViaEdf) {
  // EDF batch formation: a near-deadline request admitted *behind* a
  // deadline-free backlog of the same (model, kind) is harvested at the
  // front of the next batch.  The 4-row backlog fills max_batch_rows, so
  // without EDF the 1-row request would wait out the whole backlog batch
  // plus the window; with EDF it is served first, alone, and makes its
  // deadline.
  Made made(6, 8);
  randomize_parameters(made, 41);
  ServeConfig config;
  config.workers = 1;
  config.max_batch_rows = 4;
  config.max_wait_us = 0;  // dispatch immediately once resumed
  InferenceEngine engine(config);
  engine.publish_model(made);

  engine.pause();
  auto backlog = engine.submit_log_psi(random_configs(4, 6, 42));
  RequestOptions urgent;
  urgent.timeout_us = 2e6;  // 2 s: generous, but finite => EDF-first
  auto first = engine.submit_log_psi(random_configs(1, 6, 43), urgent);
  engine.resume();

  // The urgent request makes its deadline (EDF put it in the first batch).
  EXPECT_NO_THROW((void)first.get());
  EXPECT_NO_THROW((void)backlog.get());
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.completed, 2u);
  EXPECT_EQ(counters.failed, 0u);
  // They could not have co-batched (1 + 4 > max_batch_rows = 4).
  EXPECT_EQ(counters.batches, 2u);
}

TEST(InferenceEngine, ExpiredDeadlineFailsBeforeExecutionNeverAfter) {
  // A request whose deadline passed while queued is failed *before* the
  // kernel runs: failed == 1 with zero completions and zero wasted compute
  // (the batch that would have contained it executes nothing for it).
  Made made(6, 8);
  randomize_parameters(made, 45);
  ServeConfig config;
  config.workers = 1;
  config.max_wait_us = 0;
  InferenceEngine engine(config);
  engine.publish_model(made);

  engine.pause();
  RequestOptions options;
  options.tenant = "frank";
  options.timeout_us = 1000;  // 1 ms, expires while paused
  auto future = engine.submit_log_psi(random_configs(1, 6, 46), options);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  engine.resume();
  EXPECT_THROW((void)future.get(), ServeDeadlineError);
  engine.drain();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.failed, 1u);
  EXPECT_EQ(counters.completed, 0u);
  for (const auto& [name, t] : engine.tenant_counters()) {
    if (name == "frank") EXPECT_EQ(t.failed, 1u);
  }
}

TEST(InferenceEngine, FleetServesIndependentModelsOnOneWorkerPool) {
  // Two named models — different problem sizes — served by one shared
  // pool, each with its own version chain and exact per-model accounting.
  Made small(6, 8), large(9, 7);
  randomize_parameters(small, 51);
  randomize_parameters(large, 52);
  InferenceEngine engine({.workers = 2});
  EXPECT_EQ(engine.publish_model("small", small), 1u);
  EXPECT_EQ(engine.publish_model("large", large), 1u);

  Vector expected_small(3), expected_large(2);
  const Matrix configs_small = random_configs(3, 6, 53);
  const Matrix configs_large = random_configs(2, 9, 54);
  small.log_psi(configs_small, expected_small.span());
  large.log_psi(configs_large, expected_large.span());

  RequestOptions to_small, to_large;
  to_small.model = "small";
  to_large.model = "large";
  const EvalResult rs =
      engine.submit_log_psi(configs_small, to_small).get();
  const EvalResult rl =
      engine.submit_log_psi(configs_large, to_large).get();
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_EQ(expected_small[k], rs.values[k]);
  for (std::size_t k = 0; k < 2; ++k)
    EXPECT_EQ(expected_large[k], rl.values[k]);

  // Per-model hot-swap: bumping `small` leaves `large` at version 1.
  randomize_parameters(small, 55);
  EXPECT_EQ(engine.publish_model("small", small), 2u);
  EXPECT_EQ(engine.current_version("small"), 2u);
  EXPECT_EQ(engine.current_version("large"), 1u);

  const auto models = engine.model_counters();
  ASSERT_EQ(models.size(), 2u);
  for (const auto& [name, m] : models) {
    EXPECT_EQ(m.submitted, 1u) << name;
    EXPECT_EQ(m.completed, 1u) << name;
    EXPECT_EQ(m.failed, 0u) << name;
  }
  const auto names = engine.model_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "large");
  EXPECT_EQ(names[1], "small");
}

TEST(InferenceEngine, PerModelProblemSizePinStillHolds) {
  // The spin-count pin is per chain: republishing `a` with a different
  // size is rejected even though `b` happily serves that size.
  Made six(6, 8), seven(7, 8);
  InferenceEngine engine;
  engine.publish_model("a", six);
  engine.publish_model("b", seven);
  EXPECT_THROW(engine.publish_model("a", seven), SnapshotMismatchError);
  EXPECT_EQ(engine.current_version("a"), 1u);
}

TEST(InferenceEngine, UnknownModelRejectedAtSubmit) {
  Made made(6, 8);
  InferenceEngine engine;
  engine.publish_model(made);
  RequestOptions options;
  options.model = "nope";
  try {
    (void)engine.submit_sample(1, 1, options);
    FAIL() << "expected an error naming the model";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'nope'"), std::string::npos);
  }
}

TEST(InferenceEngine, LegacyDefaultModelCallsStillRoute) {
  // The versionless publish/submit overloads forward to
  // ServeConfig::default_model — serve v1 call sites compile and behave
  // unchanged.
  Made made(6, 8);
  randomize_parameters(made, 61);
  InferenceEngine engine;
  EXPECT_EQ(engine.publish_model(made), 1u);
  EXPECT_EQ(engine.current_version(), 1u);
  EXPECT_EQ(engine.model_names(), std::vector<std::string>{"default"});
  (void)engine.submit_log_psi(random_configs(2, 6, 62)).get();
  const auto models = engine.model_counters();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].first, "default");
  EXPECT_EQ(models[0].second.completed, 1u);
}

}  // namespace
}  // namespace vqmc::serve
