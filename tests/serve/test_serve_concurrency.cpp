#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/fast_made_sampler.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_snapshot.hpp"

namespace vqmc::serve {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.8, 0.8);
}

Matrix random_configs(std::size_t rows, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(rows, n);
  for (std::size_t k = 0; k < rows; ++k)
    for (std::size_t i = 0; i < n; ++i)
      batch(k, i) = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

// Satellite: the const forward paths must be safe for concurrent read-only
// use.  Eight threads hammer one frozen snapshot (log-psi and sampling) and
// every thread must reproduce the single-threaded golden results exactly.
// Run under TSan in CI to detect any hidden shared scratch.
TEST(ServeConcurrency, EightThreadsShareOneSnapshotBitForBit) {
  constexpr std::size_t kThreads = 8;
  constexpr int kIterations = 16;

  Made made(12, 14);
  randomize_parameters(made, 21);
  const auto snapshot = ModelSnapshot::from_model(made);

  const Matrix batch = random_configs(24, 12, 22);
  Vector golden_lp(24);
  snapshot->log_psi(batch, golden_lp.span());
  Matrix golden_samples(32, 12);
  snapshot->sample(golden_samples, 99);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Vector lp(24);
      Matrix samples(32, 12);
      for (int iter = 0; iter < kIterations; ++iter) {
        snapshot->log_psi(batch, lp.span());
        for (std::size_t k = 0; k < 24; ++k)
          if (lp[k] != golden_lp[k]) mismatches.fetch_add(1);
        samples.fill(0);
        snapshot->sample(samples, 99);
        for (std::size_t i = 0; i < samples.size(); ++i)
          if (samples.data()[i] != golden_samples.data()[i])
            mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// The borrowed Made itself must also tolerate concurrent const use (the
// documented contract FastMadeSampler and the snapshot rely on): one model,
// one sampler instance per thread, identical streams.
TEST(ServeConcurrency, PerThreadSamplersShareOneFrozenModel) {
  constexpr std::size_t kThreads = 8;

  Made made(10, 12);
  randomize_parameters(made, 23);

  FastMadeSampler golden_sampler(made, 55);
  Matrix golden(40, 10);
  golden_sampler.sample(golden);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      FastMadeSampler sampler(made, 55);
      Matrix samples(40, 10);
      sampler.sample(samples);
      for (std::size_t i = 0; i < samples.size(); ++i)
        if (samples.data()[i] != golden.data()[i]) mismatches.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Acceptance criterion: hot-swap under load is linearizable — every
// response is attributable to exactly one published snapshot version, and
// its payload matches that version's model exactly.  Clients submit a fixed
// canonical configuration while a publisher races new versions in; each
// response's value must equal the precomputed log-psi of the version it
// claims.
TEST(ServeConcurrency, HotSwapUnderLoadIsLinearizable) {
  constexpr std::size_t kVersions = 4;
  constexpr std::size_t kClients = 4;
  constexpr int kRequestsPerClient = 40;
  constexpr std::size_t kSpins = 9;

  std::vector<Made> models;
  models.reserve(kVersions);
  for (std::size_t v = 0; v < kVersions; ++v) {
    models.emplace_back(kSpins, 11);
    randomize_parameters(models.back(), 30 + v);
  }

  const Matrix canonical = random_configs(1, kSpins, 31);
  std::vector<Real> expected(kVersions + 1);
  for (std::size_t v = 0; v < kVersions; ++v) {
    Vector lp(1);
    models[v].log_psi(canonical, lp.span());
    expected[v + 1] = lp[0];  // versions are 1-based
  }

  ServeConfig config;
  config.workers = 2;
  config.max_batch_rows = 16;
  config.max_wait_us = 100;
  config.max_pending_rows = 1 << 20;  // never shed in this test
  InferenceEngine engine(config);
  engine.publish_model(models[0]);

  std::atomic<int> violations{0};
  std::atomic<std::uint64_t> max_version_seen{1};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const EvalResult result = engine.submit_log_psi(canonical).get();
        if (result.model_version < 1 || result.model_version > kVersions ||
            result.values.size() != 1 ||
            result.values[0] != expected[result.model_version]) {
          violations.fetch_add(1);
        }
        std::uint64_t seen = max_version_seen.load();
        while (seen < result.model_version &&
               !max_version_seen.compare_exchange_weak(seen,
                                                       result.model_version)) {
        }
      }
    });
  }
  std::thread publisher([&] {
    for (std::size_t v = 1; v < kVersions; ++v) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      engine.publish_model(models[v]);
    }
  });
  for (auto& client : clients) client.join();
  publisher.join();
  engine.drain();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(engine.current_version(), kVersions);

  // Zero dropped-but-unreported requests: everything submitted was either
  // completed or failed with a typed error (here: nothing failed).
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, kClients * std::size_t(kRequestsPerClient));
  EXPECT_EQ(counters.completed + counters.failed, counters.submitted);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.publishes, kVersions);
}

// Fleet acceptance criterion: eight threads hammer TWO named models while
// dedicated publishers race new versions into each chain independently.
// Every response must be attributable to exactly one (model, version) pair
// and match that pair's precomputed log-psi bitwise; a swap on one model
// must never bleed into the other.  Clients mix lanes so the weighted
// scheduler path is exercised under contention too.  Runs under TSan in CI.
TEST(ServeConcurrency, MultiModelHotSwapHammerKeepsChainsIndependent) {
  constexpr std::size_t kModels = 2;
  constexpr std::size_t kVersions = 3;
  constexpr std::size_t kClients = 6;  // + 2 publishers = 8 threads
  constexpr int kRequestsPerClient = 30;
  constexpr std::size_t kSpins = 8;

  const std::array<std::string, kModels> names = {"alpha", "beta"};
  std::array<std::vector<Made>, kModels> variants;
  for (std::size_t m = 0; m < kModels; ++m) {
    variants[m].reserve(kVersions);
    for (std::size_t v = 0; v < kVersions; ++v) {
      variants[m].emplace_back(kSpins, 10);
      randomize_parameters(variants[m].back(), 80 + 10 * m + v);
    }
  }

  const Matrix canonical = random_configs(1, kSpins, 81);
  // expected[m][v] is the golden log-psi of model m at 1-based version v.
  std::array<std::array<Real, kVersions + 1>, kModels> expected{};
  for (std::size_t m = 0; m < kModels; ++m) {
    for (std::size_t v = 0; v < kVersions; ++v) {
      Vector lp(1);
      variants[m][v].log_psi(canonical, lp.span());
      expected[m][v + 1] = lp[0];
    }
  }

  ServeConfig config;
  config.workers = 2;
  config.max_batch_rows = 16;
  config.max_wait_us = 100;
  config.max_pending_rows = 1 << 20;  // never shed in this test
  InferenceEngine engine(config);
  for (std::size_t m = 0; m < kModels; ++m)
    engine.publish_model(names[m], variants[m][0]);

  std::atomic<int> violations{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      RequestOptions options;
      options.model = names[c % kModels];
      options.tenant = (c % 2 == 0) ? "even" : "odd";
      options.priority = (c % 2 == 0) ? Priority::kInteractive
                                      : Priority::kBatch;
      const std::size_t m = c % kModels;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const EvalResult result =
            engine.submit_log_psi(canonical, options).get();
        if (result.model_version < 1 || result.model_version > kVersions ||
            result.values.size() != 1 ||
            result.values[0] != expected[m][result.model_version]) {
          violations.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> publishers;
  publishers.reserve(kModels);
  for (std::size_t m = 0; m < kModels; ++m) {
    publishers.emplace_back([&, m] {
      for (std::size_t v = 1; v < kVersions; ++v) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        engine.publish_model(names[m], variants[m][v]);
      }
    });
  }
  for (auto& client : clients) client.join();
  for (auto& publisher : publishers) publisher.join();
  engine.drain();

  EXPECT_EQ(violations.load(), 0);

  // Global and per-model accounting stay exact across the race.
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, kClients * std::size_t(kRequestsPerClient));
  EXPECT_EQ(counters.completed + counters.failed, counters.submitted);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.quota_rejected, 0u);
  EXPECT_EQ(counters.publishes, kModels * kVersions);
  const auto model_counters = engine.model_counters();
  ASSERT_EQ(model_counters.size(), kModels);
  std::uint64_t per_model_submitted = 0;
  for (const auto& [name, mc] : model_counters) {
    EXPECT_EQ(mc.completed + mc.failed, mc.submitted) << name;
    EXPECT_EQ(mc.publishes, kVersions) << name;
    EXPECT_EQ(mc.version, kVersions) << name;
    EXPECT_EQ(engine.current_version(name), kVersions) << name;
    per_model_submitted += mc.submitted;
  }
  EXPECT_EQ(per_model_submitted, counters.submitted);
}

// Same race, sampling kind: a sampled batch must be bit-identical to a
// dedicated FastMadeSampler run against the *claimed* version's model.
TEST(ServeConcurrency, HotSwapSamplesAttributeToClaimedVersion) {
  constexpr std::size_t kVersions = 3;
  constexpr std::size_t kClients = 3;
  constexpr int kRequestsPerClient = 20;
  constexpr std::size_t kSpins = 8;
  constexpr std::size_t kRows = 6;

  std::vector<Made> models;
  models.reserve(kVersions);
  for (std::size_t v = 0; v < kVersions; ++v) {
    models.emplace_back(kSpins, 10);
    randomize_parameters(models.back(), 60 + v);
  }

  ServeConfig config;
  config.workers = 2;
  config.max_batch_rows = 24;
  config.max_wait_us = 100;
  config.max_pending_rows = 1 << 20;
  InferenceEngine engine(config);
  engine.publish_model(models[0]);

  struct Observation {
    std::uint64_t seed;
    std::uint64_t version;
    Matrix samples;
  };
  std::vector<std::vector<Observation>> per_client(kClients);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::uint64_t seed = 1000 * (c + 1) + std::uint64_t(i);
        SampleResult result = engine.submit_sample(kRows, seed).get();
        per_client[c].push_back(
            {seed, result.model_version, std::move(result.samples)});
      }
    });
  }
  std::thread publisher([&] {
    for (std::size_t v = 1; v < kVersions; ++v) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      engine.publish_model(models[v]);
    }
  });
  for (auto& client : clients) client.join();
  publisher.join();
  engine.drain();

  // Verify after the fact, against the model of the claimed version.
  std::map<std::pair<std::uint64_t, std::uint64_t>, Matrix> expected_cache;
  int violations = 0;
  for (const auto& observations : per_client) {
    for (const Observation& obs : observations) {
      ASSERT_GE(obs.version, 1u);
      ASSERT_LE(obs.version, kVersions);
      const auto key = std::make_pair(obs.version, obs.seed);
      auto it = expected_cache.find(key);
      if (it == expected_cache.end()) {
        FastMadeSampler sampler(models[obs.version - 1], obs.seed);
        Matrix expected(kRows, kSpins);
        sampler.sample(expected);
        it = expected_cache.emplace(key, std::move(expected)).first;
      }
      for (std::size_t i = 0; i < obs.samples.size(); ++i)
        if (obs.samples.data()[i] != it->second.data()[i]) {
          ++violations;
          break;
        }
    }
  }
  EXPECT_EQ(violations, 0);
}

}  // namespace
}  // namespace vqmc::serve
