#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace vqmc::serve {
namespace {

/// Stub request: the scheduler only reads QueuedRequest's routing fields,
/// so the tests drive it with bare stubs and injected timestamps — no
/// engine, no clock, fully deterministic.
struct StubRequest : QueuedRequest {
  int id = 0;
};

std::unique_ptr<StubRequest> stub(const void* model, int kind, Priority lane,
                                  std::size_t rows, int id,
                                  double enqueue_us = 0,
                                  double deadline_us = 0) {
  auto request = std::make_unique<StubRequest>();
  request->model = model;
  request->kind = kind;
  request->priority = lane;
  request->rows = rows;
  request->id = id;
  request->enqueue_us = enqueue_us;
  if (deadline_us > 0) request->deadline_us = deadline_us;
  return request;
}

std::vector<int> ids_of(const BatchPlan& plan) {
  std::vector<int> ids;
  ids.reserve(plan.requests.size());
  for (const auto& request : plan.requests)
    ids.push_back(static_cast<const StubRequest&>(*request).id);
  return ids;
}

const void* const kModelA = &kModelA;
const void* const kModelB = &kModelB;

TEST(TokenBucket, BurstOnlyBudgetNeverRefills) {
  SchedulerConfig config;
  config.tenant_quotas["t"] = TenantQuota{0, 4};  // rate 0: hard budget
  ServeScheduler scheduler(config);

  EXPECT_TRUE(scheduler.try_admit("t", 3, 0).admitted);
  const QuotaDecision reject = scheduler.try_admit("t", 2, 0);
  EXPECT_FALSE(reject.admitted);
  EXPECT_DOUBLE_EQ(reject.available_rows, 1.0);
  ASSERT_NE(reject.quota, nullptr);
  EXPECT_DOUBLE_EQ(reject.quota->burst_rows, 4.0);
  // Rejection deducted nothing; the last token is still spendable — even
  // a year later (rate 0 never refills).
  EXPECT_TRUE(scheduler.try_admit("t", 1, 3.2e13).admitted);
  EXPECT_FALSE(scheduler.try_admit("t", 1, 3.2e13).admitted);
}

TEST(TokenBucket, RefillsAtRateAndCapsAtBurst) {
  SchedulerConfig config;
  config.tenant_quotas["t"] = TenantQuota{10, 5};  // 10 rows/s, burst 5
  ServeScheduler scheduler(config);

  EXPECT_TRUE(scheduler.try_admit("t", 5, 0).admitted);       // bucket empty
  EXPECT_FALSE(scheduler.try_admit("t", 1, 0).admitted);
  EXPECT_FALSE(scheduler.try_admit("t", 2, 150'000).admitted);  // 0.15s -> 1.5
  EXPECT_TRUE(scheduler.try_admit("t", 1, 150'000).admitted);   // ~0.5 left
  EXPECT_FALSE(scheduler.try_admit("t", 1, 150'000).admitted);
  // 10 s refills 100 tokens but the bucket caps at burst = 5.
  EXPECT_FALSE(scheduler.try_admit("t", 6, 10'100'000).admitted);
  EXPECT_TRUE(scheduler.try_admit("t", 5, 10'100'000).admitted);
}

TEST(TokenBucket, UnnamedTenantsAreUnlimited) {
  ServeScheduler scheduler(SchedulerConfig{});
  const QuotaDecision decision = scheduler.try_admit("anyone", 1'000'000, 0);
  EXPECT_TRUE(decision.admitted);
  EXPECT_EQ(decision.quota, nullptr);
}

TEST(TokenBucket, ConfigValidationRejectsDegenerateQuotas) {
  SchedulerConfig zero_burst;
  zero_burst.tenant_quotas["t"] = TenantQuota{1, 0};
  EXPECT_THROW((ServeScheduler{zero_burst}), Error);
  SchedulerConfig negative_rate;
  negative_rate.tenant_quotas["t"] = TenantQuota{-1, 4};
  EXPECT_THROW((ServeScheduler{negative_rate}), Error);
  SchedulerConfig zero_batch_weight;
  zero_batch_weight.batch_weight = 0;
  EXPECT_THROW((ServeScheduler{zero_batch_weight}), Error);
}

TEST(Lanes, WeightedPickupNeverStarvesTheBatchLane) {
  // interactive_weight 2 / batch_weight 1: with both lanes backlogged,
  // every 3-opening cycle serves the batch lane exactly once.
  SchedulerConfig config;
  config.interactive_weight = 2;
  config.batch_weight = 1;
  ServeScheduler scheduler(config);
  for (int i = 0; i < 6; ++i) {
    scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 100 + i));
    scheduler.enqueue(stub(kModelA, 0, Priority::kBatch, 1, 200 + i));
  }
  std::vector<int> picked;
  for (int open = 0; open < 6; ++open) {
    const BatchPlan plan = scheduler.open_batch(1);
    ASSERT_EQ(plan.requests.size(), 1u);
    picked.push_back(ids_of(plan)[0]);
  }
  // Cursor cycle: interactive, interactive, batch — twice.
  const std::vector<int> expected = {100, 101, 200, 102, 103, 201};
  EXPECT_EQ(picked, expected);
}

TEST(Lanes, EmptyScheduledLaneFallsBackToTheOther) {
  SchedulerConfig config;
  config.interactive_weight = 7;
  config.batch_weight = 1;
  ServeScheduler scheduler(config);
  // Only batch traffic queued: every opening serves it regardless of the
  // interactive-heavy schedule (weights share capacity, they don't idle it).
  scheduler.enqueue(stub(kModelA, 0, Priority::kBatch, 1, 1));
  scheduler.enqueue(stub(kModelA, 0, Priority::kBatch, 1, 2));
  EXPECT_EQ(ids_of(scheduler.open_batch(1)), std::vector<int>{1});
  EXPECT_EQ(ids_of(scheduler.open_batch(1)), std::vector<int>{2});
  EXPECT_TRUE(scheduler.empty());
}

TEST(Edf, DeadlinesOrderTheLaneAndTiesDegradeToFifo) {
  ServeScheduler scheduler(SchedulerConfig{});
  // Arrival order 1..4; deadlines reorder to 3, 1, then FIFO tail (2, 4
  // share +inf and fall back to arrival sequence).
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 1,
                         /*enqueue_us=*/0, /*deadline_us=*/500));
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 2));
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 3,
                         /*enqueue_us=*/0, /*deadline_us=*/100));
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 4));
  const BatchPlan plan = scheduler.open_batch(4);
  EXPECT_EQ(ids_of(plan), (std::vector<int>{3, 1, 2, 4}));
  EXPECT_DOUBLE_EQ(plan.earliest_deadline_us, 100.0);
}

TEST(Edf, HeadThatDoesNotFitBlocksTheLane) {
  // EDF is never bypassed: a 3-row head that doesn't fit must not be
  // jumped by the 1-row request queued behind it.
  ServeScheduler scheduler(SchedulerConfig{});
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 1,
                         /*enqueue_us=*/0, /*deadline_us=*/100));
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 3, 2,
                         /*enqueue_us=*/0, /*deadline_us=*/200));
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 3,
                         /*enqueue_us=*/0, /*deadline_us=*/300));
  const BatchPlan plan = scheduler.open_batch(2);
  EXPECT_EQ(ids_of(plan), std::vector<int>{1});
  EXPECT_EQ(scheduler.queued_rows(), 4u);
}

TEST(Edf, OversizedHeadOpensItsOwnBatch) {
  ServeScheduler scheduler(SchedulerConfig{});
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 10, 1));
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 2));
  const BatchPlan oversized = scheduler.open_batch(4);
  EXPECT_EQ(ids_of(oversized), std::vector<int>{1});
  EXPECT_EQ(oversized.rows, 10u);
  const BatchPlan next = scheduler.open_batch(4);
  EXPECT_EQ(ids_of(next), std::vector<int>{2});
}

TEST(Batches, NeverMixModelsOrKinds) {
  ServeScheduler scheduler(SchedulerConfig{});
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 1));
  scheduler.enqueue(stub(kModelB, 0, Priority::kInteractive, 1, 2));
  scheduler.enqueue(stub(kModelA, 1, Priority::kInteractive, 1, 3));
  // Three openings, one (model, kind) group each, in arrival order (no
  // deadlines -> seq decides the most-urgent head).
  const BatchPlan first = scheduler.open_batch(16);
  EXPECT_EQ(ids_of(first), std::vector<int>{1});
  EXPECT_EQ(first.model, kModelA);
  EXPECT_EQ(first.kind, 0);
  const BatchPlan second = scheduler.open_batch(16);
  EXPECT_EQ(ids_of(second), std::vector<int>{2});
  EXPECT_EQ(second.model, kModelB);
  const BatchPlan third = scheduler.open_batch(16);
  EXPECT_EQ(ids_of(third), std::vector<int>{3});
  EXPECT_EQ(third.kind, 1);
  EXPECT_TRUE(scheduler.empty());
}

TEST(Batches, MixLanesWithInteractiveHarvestedFirstOnTopUp) {
  // A batch fills from its scheduled lane, then tops up from the other
  // lane of the same group — tenants and lanes mix, models and kinds
  // don't.
  SchedulerConfig config;
  config.interactive_weight = 1;
  config.batch_weight = 1;
  ServeScheduler scheduler(config);
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 1));
  scheduler.enqueue(stub(kModelA, 0, Priority::kBatch, 1, 2));
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 3));
  // Cursor position 0 schedules interactive: 1, 3 first, then batch 2.
  const BatchPlan plan = scheduler.open_batch(8);
  EXPECT_EQ(ids_of(plan), (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(plan.rows, 3u);
}

TEST(Batches, UrgentHeadPicksTheGroupAcrossModels) {
  // With several groups backlogged, the opening serves the group whose
  // head is most urgent — a near-deadline request on model B preempts
  // model A's older deadline-free backlog.
  ServeScheduler scheduler(SchedulerConfig{});
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 1));
  scheduler.enqueue(stub(kModelB, 0, Priority::kInteractive, 1, 2,
                         /*enqueue_us=*/0, /*deadline_us=*/50));
  const BatchPlan plan = scheduler.open_batch(8);
  EXPECT_EQ(ids_of(plan), std::vector<int>{2});
  EXPECT_EQ(plan.model, kModelB);
}

TEST(Batches, GrowOnlyPullsTheSameGroup) {
  ServeScheduler scheduler(SchedulerConfig{});
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 1));
  BatchPlan plan = scheduler.open_batch(8);
  EXPECT_EQ(ids_of(plan), std::vector<int>{1});
  // Late arrivals: same group grows the open batch, another model doesn't.
  scheduler.enqueue(stub(kModelA, 0, Priority::kBatch, 2, 2));
  scheduler.enqueue(stub(kModelB, 0, Priority::kInteractive, 1, 3));
  EXPECT_EQ(scheduler.grow_batch(plan, 8), 2u);
  EXPECT_EQ(ids_of(plan), (std::vector<int>{1, 2}));
  EXPECT_EQ(plan.rows, 3u);
  EXPECT_EQ(scheduler.queued_rows(), 1u);  // model B still queued
}

TEST(Batches, PlanAggregatesTrackOldestArrivalAndEarliestDeadline) {
  ServeScheduler scheduler(SchedulerConfig{});
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 1,
                         /*enqueue_us=*/300, /*deadline_us=*/900));
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 1, 2,
                         /*enqueue_us=*/100, /*deadline_us=*/700));
  BatchPlan plan = scheduler.open_batch(8);
  EXPECT_DOUBLE_EQ(plan.oldest_enqueue_us, 100.0);
  EXPECT_DOUBLE_EQ(plan.earliest_deadline_us, 700.0);
  // Growing with an earlier deadline tightens the aggregate (the engine's
  // batching window re-clamps on every slice).
  scheduler.enqueue(stub(kModelA, 0, Priority::kBatch, 1, 3,
                         /*enqueue_us=*/400, /*deadline_us=*/500));
  EXPECT_EQ(scheduler.grow_batch(plan, 8), 1u);
  EXPECT_DOUBLE_EQ(plan.earliest_deadline_us, 500.0);
}

TEST(Batches, RowAccountingStaysExact) {
  ServeScheduler scheduler(SchedulerConfig{});
  EXPECT_TRUE(scheduler.empty());
  scheduler.enqueue(stub(kModelA, 0, Priority::kInteractive, 3, 1));
  scheduler.enqueue(stub(kModelB, 1, Priority::kBatch, 5, 2));
  EXPECT_EQ(scheduler.queued_rows(), 8u);
  (void)scheduler.open_batch(16);
  EXPECT_EQ(scheduler.queued_rows(), 5u);
  (void)scheduler.open_batch(16);
  EXPECT_EQ(scheduler.queued_rows(), 0u);
  EXPECT_TRUE(scheduler.empty());
  EXPECT_TRUE(scheduler.open_batch(16).empty());
}

}  // namespace
}  // namespace vqmc::serve
