#include "serve/model_snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "sampler/fast_made_sampler.hpp"
#include "support/alloc_count.hpp"

namespace vqmc::serve {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.8, 0.8);
}

Matrix random_configs(std::size_t rows, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(rows, n);
  for (std::size_t k = 0; k < rows; ++k)
    for (std::size_t i = 0; i < n; ++i)
      batch(k, i) = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

TrainingSnapshot made_training_snapshot(const Made& made) {
  TrainingSnapshot snapshot;
  snapshot.model_name = made.name();
  snapshot.num_spins = made.num_spins();
  snapshot.num_parameters = made.num_parameters();
  snapshot.parameters.assign(made.parameters().begin(),
                             made.parameters().end());
  return snapshot;
}

TEST(ModelSnapshot, LogPsiBitIdenticalToModel) {
  Made made(10, 13);
  randomize_parameters(made, 1);
  const auto snapshot = ModelSnapshot::from_model(made);
  const Matrix batch = random_configs(64, 10, 2);
  Vector expected(64), got(64);
  made.log_psi(batch, expected.span());
  snapshot->log_psi(batch, got.span());
  for (std::size_t k = 0; k < 64; ++k) EXPECT_EQ(expected[k], got[k]);
}

TEST(ModelSnapshot, LogPsiWorkspaceOverloadMatchesPlainAndReuses) {
  Made made(10, 13);
  randomize_parameters(made, 21);
  const auto snapshot = ModelSnapshot::from_model(made);
  const Matrix batch = random_configs(40, 10, 22);
  Vector plain(40), with_ws(40);
  snapshot->log_psi(batch, plain.span());

  Made::Workspace ws;
  snapshot->log_psi(batch, with_ws.span(), ws);
  for (std::size_t k = 0; k < 40; ++k) EXPECT_EQ(plain[k], with_ws[k]);
  // Second call through the now-shaped workspace stays identical.
  snapshot->log_psi(batch, with_ws.span(), ws);
  for (std::size_t k = 0; k < 40; ++k) EXPECT_EQ(plain[k], with_ws[k]);
}

TEST(ModelSnapshot, SampleBitIdenticalToFastMadeSampler) {
  Made made(8, 11);
  randomize_parameters(made, 3);
  const auto snapshot = ModelSnapshot::from_model(made);

  FastMadeSampler reference(made, 42);
  Matrix expected(96, 8);
  reference.sample(expected);

  Matrix got(96, 8);
  snapshot->sample(got, 42);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(expected.data()[i], got.data()[i]);
}

TEST(ModelSnapshot, CoalescedSlicesMatchDedicatedSamplers) {
  // Two requests fused into one batch must each receive exactly the rows a
  // dedicated sampler with their seed would have produced — coalescing is
  // invisible to every request.
  Made made(7, 9);
  randomize_parameters(made, 4);
  const auto snapshot = ModelSnapshot::from_model(made);

  Matrix expected_a(5, 7), expected_b(11, 7);
  FastMadeSampler sampler_a(made, 100);
  FastMadeSampler sampler_b(made, 200);
  sampler_a.sample(expected_a);
  sampler_b.sample(expected_b);

  Matrix fused(16, 7);
  rng::Xoshiro256 gen_a(100), gen_b(200);
  const ModelSnapshot::SampleSlice slices[] = {{0, 5, &gen_a},
                                               {5, 11, &gen_b}};
  snapshot->sample(fused, slices);

  for (std::size_t k = 0; k < 5; ++k)
    for (std::size_t i = 0; i < 7; ++i)
      EXPECT_EQ(expected_a(k, i), fused(k, i));
  for (std::size_t k = 0; k < 11; ++k)
    for (std::size_t i = 0; i < 7; ++i)
      EXPECT_EQ(expected_b(k, i), fused(5 + k, i));
}

TEST(ModelSnapshot, ThreeWayDrawParityAcrossSizes) {
  // The batched conditional engine serves both fast paths, and the baseline
  // AutoregressiveSampler is an independent implementation: under one seed,
  // all three must emit the identical batch, from the minimum spin count
  // (MADE needs n >= 2) through n = 1000.  The batch size covers a full
  // 4-row kernel tile plus a tail row.
  for (const std::size_t n : {2ul, 7ul, 100ul, 300ul, 1000ul}) {
    Made made(n, 9);
    randomize_parameters(made, 3000 + n);
    const auto snapshot = ModelSnapshot::from_model(made);

    AutoregressiveSampler baseline(made, 91);
    FastMadeSampler fast(made, 91);
    Matrix a(5, n), b(5, n), c(5, n);
    baseline.sample(a);
    fast.sample(b);
    EXPECT_EQ(snapshot->sample(c, 91), 0u) << "n = " << n;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.data()[i], b.data()[i]) << "AUTO vs fast, n = " << n;
      ASSERT_EQ(b.data()[i], c.data()[i]) << "fast vs snapshot, n = " << n;
    }
  }
}

TEST(ModelSnapshot, NonfiniteDrawsClampedCountedAndStillFastParity) {
  // A snapshot of a sick model (NaN output bias) must clamp the affected
  // conditionals to an unbiased coin, report the count, and keep bit parity
  // with FastMadeSampler over the same model and stream.
  constexpr std::size_t n = 7, bs = 48;
  Made made(n, 10);
  randomize_parameters(made, 13);
  made.parameters()[made.num_parameters() - n + 3] =  // b2[3]
      std::numeric_limits<Real>::quiet_NaN();
  const auto snapshot = ModelSnapshot::from_model(made);

  FastMadeSampler reference(made, 29);
  Matrix expected(bs, n), got(bs, n);
  reference.sample(expected);
  EXPECT_EQ(snapshot->sample(got, 29), bs);
  EXPECT_EQ(reference.statistics().nonfinite_rejections, bs);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(expected.data()[i], got.data()[i]);
}

TEST(ModelSnapshot, SampleAndLogPsiSteadyStateAllocateNothing) {
  // The serve worker path: once the per-worker workspace shapes stabilize,
  // sample() and log_psi() must not touch the heap (the per-request
  // `Matrix a1(bs, h)` this PR removed showed up exactly here).
  Made made(10, 13);
  randomize_parameters(made, 17);
  const auto snapshot = ModelSnapshot::from_model(made);
  const Matrix batch = random_configs(24, 10, 18);
  Matrix out(24, 10);
  Vector values(24);
  Made::Workspace ws;
  rng::Xoshiro256 gen(5);
  const ModelSnapshot::SampleSlice slice{0, 24, &gen};

  // Warm-up shapes the workspace (and first-touches any lazy internals).
  (void)snapshot->sample(out, {&slice, 1}, ws);
  snapshot->log_psi(batch, values.span(), ws);

  const std::uint64_t before = vqmc::testing::allocation_count();
  (void)snapshot->sample(out, {&slice, 1}, ws);
  snapshot->log_psi(batch, values.span(), ws);
  EXPECT_EQ(vqmc::testing::allocation_count(), before);
}

TEST(ModelSnapshot, RoundTripThroughTrainingSnapshot) {
  // Loading a checkpointed MADE must reproduce the in-trainer sampler's
  // stream bit-for-bit at a fixed seed (the serving<->training parity the
  // satellite demands).
  Made made(9, 12);
  randomize_parameters(made, 5);
  const TrainingSnapshot training = made_training_snapshot(made);
  const auto snapshot = ModelSnapshot::from_training_snapshot(training);
  EXPECT_EQ(snapshot->num_spins(), 9u);
  EXPECT_EQ(snapshot->hidden_size(), 12u);

  FastMadeSampler reference(made, 7);
  Matrix expected(64, 9), got(64, 9);
  reference.sample(expected);
  snapshot->sample(got, 7);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(expected.data()[i], got.data()[i]);

  const Matrix batch = random_configs(32, 9, 6);
  Vector lp_model(32), lp_snapshot(32);
  made.log_psi(batch, lp_model.span());
  snapshot->log_psi(batch, lp_snapshot.span());
  for (std::size_t k = 0; k < 32; ++k)
    EXPECT_EQ(lp_model[k], lp_snapshot[k]);
}

TEST(ModelSnapshot, RoundTripThroughCheckpointFile) {
  Made made(6, 8);
  randomize_parameters(made, 8);
  const std::string path = ::testing::TempDir() + "serve_ckpt_roundtrip.bin";
  save_training_checkpoint(path, made_training_snapshot(made));
  const TrainingSnapshot loaded = load_training_checkpoint(path);
  const auto snapshot = ModelSnapshot::from_training_snapshot(loaded);
  std::remove(path.c_str());

  FastMadeSampler reference(made, 11);
  Matrix expected(48, 6), got(48, 6);
  reference.sample(expected);
  snapshot->sample(got, 11);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(expected.data()[i], got.data()[i]);
}

TEST(ModelSnapshot, RejectsForeignModelFamily) {
  Made made(6, 8);
  TrainingSnapshot snapshot = made_training_snapshot(made);
  snapshot.model_name = "RBM";
  EXPECT_THROW(ModelSnapshot::from_training_snapshot(snapshot),
               SnapshotMismatchError);
}

TEST(ModelSnapshot, RejectsNonFactoringParameterCount) {
  Made made(6, 8);
  TrainingSnapshot snapshot = made_training_snapshot(made);
  snapshot.num_parameters += 1;  // 2hn + h + n no longer factors
  snapshot.parameters.push_back(0);
  EXPECT_THROW(ModelSnapshot::from_training_snapshot(snapshot),
               SnapshotMismatchError);
}

TEST(ModelSnapshot, RejectsParameterVectorLengthMismatch) {
  Made made(6, 8);
  TrainingSnapshot snapshot = made_training_snapshot(made);
  snapshot.parameters.pop_back();  // declared count no longer matches
  EXPECT_THROW(ModelSnapshot::from_training_snapshot(snapshot),
               SnapshotMismatchError);
}

TEST(ModelSnapshot, RejectsDegenerateSpinCount) {
  Made made(6, 8);
  TrainingSnapshot snapshot = made_training_snapshot(made);
  snapshot.num_spins = 1;
  EXPECT_THROW(ModelSnapshot::from_training_snapshot(snapshot),
               SnapshotMismatchError);
}

TEST(ModelSnapshot, MismatchIsTypedNotGeneric) {
  // The typed error must be catchable as the serve hierarchy, so a serving
  // process can refuse a bad model push without tearing down.
  Made made(6, 8);
  TrainingSnapshot snapshot = made_training_snapshot(made);
  snapshot.model_name = "RNN";
  bool caught = false;
  try {
    (void)ModelSnapshot::from_training_snapshot(snapshot);
  } catch (const ServeError&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace vqmc::serve
