#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "tensor/vector.hpp"

namespace vqmc {
namespace {

/// Minimize f(x) = 0.5 * ||x - target||^2 with gradient x - target.
template <typename Opt>
Real optimize_quadratic(Opt& opt, int steps, Real start = 5.0,
                        Real target = 1.0) {
  Vector x{start, -start};
  Vector grad(2);
  for (int i = 0; i < steps; ++i) {
    grad[0] = x[0] - target;
    grad[1] = x[1] - target;
    opt.step(x.span(), grad.span());
  }
  return std::max(std::fabs(x[0] - target), std::fabs(x[1] - target));
}

TEST(Sgd, SingleStepIsExactlyLrTimesGrad) {
  Sgd sgd(0.1);
  Vector x{1.0};
  Vector g{2.0};
  sgd.step(x.span(), g.span());
  EXPECT_DOUBLE_EQ(x[0], 0.8);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd sgd(0.1);
  EXPECT_LT(optimize_quadratic(sgd, 200), 1e-6);
}

TEST(Sgd, MomentumAcceleratesButStillConverges) {
  Sgd plain(0.05), momentum(0.05, 0.9);
  const Real err_plain = optimize_quadratic(plain, 50);
  const Real err_momentum = optimize_quadratic(momentum, 50);
  EXPECT_LT(err_momentum, err_plain);
  EXPECT_LT(optimize_quadratic(momentum, 300), 1e-6);
}

TEST(Sgd, InvalidHyperparametersRejected) {
  EXPECT_THROW(Sgd(0.0), Error);
  EXPECT_THROW(Sgd(0.1, 1.0), Error);
  EXPECT_THROW(Sgd(0.1, -0.1), Error);
}

TEST(Sgd, SizeMismatchRejected) {
  Sgd sgd(0.1);
  Vector x(2), g(3);
  EXPECT_THROW(sgd.step(x.span(), g.span()), Error);
}

TEST(Sgd, ResetClearsMomentum) {
  Sgd sgd(0.1, 0.9);
  Vector x{1.0}, g{1.0};
  sgd.step(x.span(), g.span());
  sgd.reset();
  Vector y{1.0};
  sgd.step(y.span(), g.span());
  // After reset, the first step must look like a fresh optimizer's.
  EXPECT_DOUBLE_EQ(y[0], 0.9);
}

TEST(Adam, FirstStepHasMagnitudeLr) {
  // With bias correction, the very first Adam step is lr * sign(grad).
  Adam adam(0.01);
  Vector x{0.0}, g{123.0};
  adam.step(x.span(), g.span());
  EXPECT_NEAR(x[0], -0.01, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam adam(0.05);
  EXPECT_LT(optimize_quadratic(adam, 1000), 1e-4);
}

TEST(Adam, StepsAreInvariantToGradientScale) {
  // Adam normalizes by the second moment, so scaling the gradient leaves
  // the first step unchanged.
  Adam a(0.01), b(0.01);
  Vector xa{0.0}, xb{0.0}, ga{1.0}, gb{1000.0};
  a.step(xa.span(), ga.span());
  b.step(xb.span(), gb.span());
  EXPECT_NEAR(xa[0], xb[0], 1e-6);
}

TEST(Adam, InvalidHyperparametersRejected) {
  EXPECT_THROW(Adam(-0.01), Error);
  EXPECT_THROW(Adam(0.01, 1.0), Error);
  EXPECT_THROW(Adam(0.01, 0.9, 1.0), Error);
  EXPECT_THROW(Adam(0.01, 0.9, 0.999, 0.0), Error);
}

TEST(Adam, ResetRestartsBiasCorrection) {
  Adam adam(0.01);
  Vector x{0.0}, g{1.0};
  adam.step(x.span(), g.span());
  adam.step(x.span(), g.span());
  adam.reset();
  Vector y{0.0};
  adam.step(y.span(), g.span());
  EXPECT_NEAR(y[0], -0.01, 1e-6);
}

TEST(Factories, ProduceTheDocumentedDefaults) {
  const auto sgd = make_sgd();
  const auto adam = make_adam();
  EXPECT_EQ(sgd->name(), "SGD");
  EXPECT_EQ(adam->name(), "ADAM");
}

// State serialization (checkpoint/restart): a restored optimizer must
// continue bit-identically to the original.
template <typename Opt>
void expect_state_roundtrip_resumes_bitwise(Opt make) {
  Opt a = make;
  Opt b = make;
  Vector pa{1.0, -2.0, 0.5};
  Vector pb{1.0, -2.0, 0.5};
  Vector g1{0.3, -0.1, 0.7};
  Vector g2{-0.2, 0.4, 0.1};

  a.step(pa.span(), g1.span());
  b.step(pb.span(), g1.span());

  // Serialize a's mid-run state into a *fresh* instance and continue both.
  Opt restored = make;
  restored.restore_state(a.serialize_state());
  restored.step(pa.span(), g2.span());
  b.step(pb.span(), g2.span());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(pa[i], pb[i]) << i;
}

TEST(OptimizerState, SgdRoundTripResumesBitwise) {
  expect_state_roundtrip_resumes_bitwise(Sgd(0.1, 0.5));
}

TEST(OptimizerState, AdamRoundTripResumesBitwise) {
  expect_state_roundtrip_resumes_bitwise(Adam(0.01));
}

TEST(OptimizerState, AdamSerializesMomentsAndStepCount) {
  Adam adam(0.01);
  Vector p{1.0, 2.0};
  Vector g{0.5, -0.5};
  adam.step(p.span(), g.span());
  const std::vector<Real> state = adam.serialize_state();
  // Layout: [lr, step_count, m..., v...].
  ASSERT_EQ(state.size(), 2u + 4u);
  EXPECT_EQ(state[0], Real(0.01));
  EXPECT_EQ(state[1], Real(1));
  EXPECT_THROW(adam.restore_state({0.01}), Error);  // malformed payload
}

TEST(OptimizerState, SgdRejectsEmptyState) {
  Sgd sgd(0.1);
  EXPECT_THROW(sgd.restore_state({}), Error);
}

}  // namespace
}  // namespace vqmc
