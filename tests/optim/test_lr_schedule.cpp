#include "optim/lr_schedule.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vqmc {
namespace {

TEST(LrSchedule, ConstantIsAlwaysOne) {
  const ConstantSchedule s;
  EXPECT_EQ(s.multiplier(0), 1.0);
  EXPECT_EQ(s.multiplier(1000), 1.0);
}

TEST(LrSchedule, StepDecayHalvesEveryPeriod) {
  const StepDecaySchedule s(10, 0.5);
  EXPECT_DOUBLE_EQ(s.multiplier(0), 1.0);
  EXPECT_DOUBLE_EQ(s.multiplier(9), 1.0);
  EXPECT_DOUBLE_EQ(s.multiplier(10), 0.5);
  EXPECT_DOUBLE_EQ(s.multiplier(25), 0.25);
}

TEST(LrSchedule, CosineEndpointsAndMonotonicity) {
  const CosineSchedule s(100, 0.1);
  EXPECT_DOUBLE_EQ(s.multiplier(0), 1.0);
  EXPECT_NEAR(s.multiplier(50), 0.55, 1e-12);  // midpoint: (1 + 0.1)/2
  EXPECT_DOUBLE_EQ(s.multiplier(100), 0.1);
  EXPECT_DOUBLE_EQ(s.multiplier(500), 0.1);  // clamped after the horizon
  for (int i = 1; i <= 100; ++i)
    EXPECT_LE(s.multiplier(i), s.multiplier(i - 1));
}

TEST(LrSchedule, InvalidConfigurationsRejected) {
  EXPECT_THROW(StepDecaySchedule(0, 0.5), Error);
  EXPECT_THROW(StepDecaySchedule(5, 0.0), Error);
  EXPECT_THROW(StepDecaySchedule(5, 1.5), Error);
  EXPECT_THROW(CosineSchedule(0), Error);
  EXPECT_THROW(CosineSchedule(10, 1.0), Error);
  const StepDecaySchedule s(5, 0.5);
  EXPECT_THROW(s.multiplier(-1), Error);
}

}  // namespace
}  // namespace vqmc
