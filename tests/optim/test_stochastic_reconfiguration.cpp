#include "optim/stochastic_reconfiguration.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {
namespace {

Matrix random_samples(std::size_t bs, std::size_t d, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix o(bs, d);
  for (std::size_t i = 0; i < o.size(); ++i)
    o.data()[i] = rng::uniform(gen, -1.0, 1.0);
  return o;
}

/// Reference: form S = cov(O) + lambda I densely and Cholesky-solve.
void reference_solution(const Matrix& o, Real lambda,
                        std::span<const Real> grad, std::span<Real> delta) {
  const std::size_t bs = o.rows(), d = o.cols();
  Vector o_bar(d);
  column_sum_accumulate(o, o_bar.span());
  scale(o_bar.span(), Real(1) / Real(bs));
  Matrix s(d, d);
  gemm_tn_accumulate(o, o, s);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j)
      s(i, j) = s(i, j) / Real(bs) - o_bar[i] * o_bar[j];
    s(i, i) += lambda;
  }
  ASSERT_TRUE(linalg::solve_spd(s, grad, delta));
}

TEST(StochasticReconfiguration, DensePathMatchesReference) {
  const std::size_t bs = 20, d = 8;
  const Matrix o = random_samples(bs, d, 1);
  rng::Xoshiro256 gen(2);
  Vector grad(d), delta(d), expected(d);
  for (std::size_t i = 0; i < d; ++i) grad[i] = rng::uniform(gen, -1.0, 1.0);

  SrConfig cfg;
  cfg.regularization = 1e-3;
  cfg.dense_threshold = 100;  // force the dense path
  StochasticReconfiguration sr(cfg);
  sr.precondition(o, grad.span(), delta.span());
  reference_solution(o, cfg.regularization, grad.span(), expected.span());
  for (std::size_t i = 0; i < d; ++i) EXPECT_NEAR(delta[i], expected[i], 1e-9);
}

TEST(StochasticReconfiguration, CgPathMatchesDensePath) {
  const std::size_t bs = 30, d = 12;
  const Matrix o = random_samples(bs, d, 3);
  rng::Xoshiro256 gen(4);
  Vector grad(d), dense(d), iterative(d);
  for (std::size_t i = 0; i < d; ++i) grad[i] = rng::uniform(gen, -1.0, 1.0);

  SrConfig dense_cfg;
  dense_cfg.dense_threshold = 100;
  StochasticReconfiguration sr_dense(dense_cfg);
  sr_dense.precondition(o, grad.span(), dense.span());

  SrConfig cg_cfg;
  cg_cfg.dense_threshold = 1;  // force CG
  cg_cfg.cg.tolerance = 1e-12;
  cg_cfg.cg.max_iterations = 500;
  StochasticReconfiguration sr_cg(cg_cfg);
  const SrReport report = sr_cg.precondition(o, grad.span(), iterative.span());
  EXPECT_GT(report.cg_iterations, 0);
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.breakdown);
  for (std::size_t i = 0; i < d; ++i) EXPECT_NEAR(iterative[i], dense[i], 1e-7);
}

TEST(StochasticReconfiguration, IdentityLimitForLargeRegularization) {
  // For lambda >> ||S||, delta ~= grad / lambda.
  const std::size_t bs = 10, d = 5;
  const Matrix o = random_samples(bs, d, 5);
  Vector grad(d), delta(d);
  grad.fill(2.0);
  SrConfig cfg;
  cfg.regularization = 1e6;
  StochasticReconfiguration sr(cfg);
  sr.precondition(o, grad.span(), delta.span());
  for (std::size_t i = 0; i < d; ++i) EXPECT_NEAR(delta[i], 2e-6, 1e-8);
}

TEST(StochasticReconfiguration, SolutionSatisfiesTheLinearSystem) {
  const std::size_t bs = 25, d = 6;
  const Matrix o = random_samples(bs, d, 6);
  rng::Xoshiro256 gen(7);
  Vector grad(d), delta(d);
  for (std::size_t i = 0; i < d; ++i) grad[i] = rng::uniform(gen, -1.0, 1.0);
  SrConfig cfg;
  StochasticReconfiguration sr(cfg);
  sr.precondition(o, grad.span(), delta.span());

  // Verify (S + lambda I) delta == grad by applying S through O.
  Vector o_bar(d);
  column_sum_accumulate(o, o_bar.span());
  scale(o_bar.span(), Real(1) / Real(bs));
  Vector ov(bs), s_delta(d);
  gemv(o, delta.span(), ov.span());
  gemv_t(o, ov.span(), s_delta.span());
  const Real ob_v = dot(o_bar.span(), delta.span());
  for (std::size_t i = 0; i < d; ++i) {
    const Real lhs = s_delta[i] / Real(bs) - o_bar[i] * ob_v +
                     cfg.regularization * delta[i];
    EXPECT_NEAR(lhs, grad[i], 1e-8);
  }
}

TEST(StochasticReconfiguration, NonFiniteInputsReportBreakdownNotNaN) {
  const std::size_t bs = 10, d = 4;
  Matrix o = random_samples(bs, d, 8);
  rng::Xoshiro256 gen(9);
  Vector grad(d), delta(d);
  for (std::size_t i = 0; i < d; ++i) grad[i] = rng::uniform(gen, -1.0, 1.0);

  // NaN gradient -> breakdown, delta zeroed (never NaN).
  grad[1] = std::numeric_limits<Real>::quiet_NaN();
  StochasticReconfiguration sr;
  SrReport report = sr.precondition(o, grad.span(), delta.span());
  EXPECT_TRUE(report.breakdown);
  EXPECT_FALSE(report.converged);
  EXPECT_FALSE(report.reason.empty());
  for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(delta[i], 0.0);

  // NaN per-sample log-derivatives -> breakdown too (both solve paths).
  grad[1] = 0.5;
  o(3, 2) = std::numeric_limits<Real>::infinity();
  for (const std::size_t threshold : {std::size_t(100), std::size_t(1)}) {
    SrConfig cfg;
    cfg.dense_threshold = threshold;
    StochasticReconfiguration guarded(cfg);
    report = guarded.precondition(o, grad.span(), delta.span());
    EXPECT_TRUE(report.breakdown);
    for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(delta[i], 0.0);
  }
}

TEST(StochasticReconfiguration, RejectsInvalidInput) {
  EXPECT_THROW(StochasticReconfiguration({.regularization = 0.0}), Error);
  StochasticReconfiguration sr;
  Matrix o(1, 4);  // bs < 2
  Vector grad(4), delta(4);
  EXPECT_THROW(sr.precondition(o, grad.span(), delta.span()), Error);
  Matrix ok(5, 4);
  Vector wrong(3);
  EXPECT_THROW(sr.precondition(ok, wrong.span(), delta.span()), Error);
}

}  // namespace
}  // namespace vqmc
