#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "tensor/buffer.hpp"
#include "tensor/matrix.hpp"
#include "tensor/vector.hpp"

namespace vqmc {
namespace {

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer<Real> buf(17);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0);
}

TEST(AlignedBuffer, AlignmentIs64Bytes) {
  AlignedBuffer<Real> buf(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kTensorAlignment,
            0u);
}

TEST(AlignedBuffer, DeepCopySemantics) {
  AlignedBuffer<Real> a(4);
  a[0] = 1.5;
  AlignedBuffer<Real> b = a;
  b[0] = 2.5;
  EXPECT_EQ(a[0], 1.5);
  EXPECT_EQ(b[0], 2.5);
  a = b;
  EXPECT_EQ(a[0], 2.5);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<Real> a(4);
  a[2] = 9;
  const Real* p = a.data();
  AlignedBuffer<Real> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[2], 9);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, SelfAssignmentIsSafe) {
  AlignedBuffer<Real> a(2);
  a[0] = 3;
  AlignedBuffer<Real>& ref = a;
  a = ref;
  EXPECT_EQ(a[0], 3);
}

TEST(AlignedBuffer, EmptyBufferIsValid) {
  AlignedBuffer<Real> a;
  EXPECT_EQ(a.size(), 0u);
  AlignedBuffer<Real> b = a;
  EXPECT_EQ(b.size(), 0u);
}

TEST(Vector, InitializerListAndNorm) {
  Vector v{3.0, 4.0};
  EXPECT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(Vector, FillAndSpan) {
  Vector v(5);
  v.fill(2.0);
  Real acc = 0;
  for (Real x : v.span()) acc += x;
  EXPECT_DOUBLE_EQ(acc, 10.0);
}

TEST(Vector, RangeForIteration) {
  Vector v{1, 2, 3};
  Real sum = 0;
  for (Real x : v) sum += x;
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(Matrix, RowMajorIndexing) {
  Matrix m(2, 3);
  m(1, 2) = 7;
  EXPECT_EQ(m.data()[1 * 3 + 2], 7);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
}

TEST(Matrix, RowViewIsContiguous) {
  Matrix m(3, 4);
  m(2, 0) = 1;
  m(2, 3) = 4;
  auto row = m.row(2);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], 1);
  EXPECT_EQ(row[3], 4);
  row[1] = 9;
  EXPECT_EQ(m(2, 1), 9);
}

TEST(Matrix, FillSetsEveryElement) {
  Matrix m(2, 2);
  m.fill(-1);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], -1);
}

}  // namespace
}  // namespace vqmc
