/// \file test_simd_kernels.cpp
/// \brief Pins the SIMD kernel rewrite (DESIGN.md §5g) against the scalar
/// references in kernels_ref.hpp.
///
/// Three properties of the accumulation-order contract are exercised at
/// every compiled-in dispatch level (generic / AVX2 / AVX-512, via
/// simd::force_level):
///
///  1. Parity within the documented ULP bound: for every dot-form output
///     element e with reduction terms t_i,
///     |e_simd - e_ref| <= 2 * L * eps * sum_i |t_i|  (L = reduction
///     length, eps = DBL_EPSILON) — the worst case over any
///     re-association of the sum.
///  2. Run-to-run bitwise determinism, including independence from the
///     OpenMP thread count.
///  3. Batch-position independence: a row's value is bitwise the same
///     whether it is computed alone or inside any larger batch.
///
/// Edge cases the blocking must survive (exercised at every level, and by
/// the sanitizer CI leg): empty extents (rows with no intervals),
/// single-column rows, spans shorter than a vector, and sub-vector tails
/// at every length around the register width.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"
#include "tensor/kernels_ref.hpp"
#include "tensor/simd.hpp"

namespace vqmc {
namespace {

constexpr Real kEps = std::numeric_limits<Real>::epsilon();

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng::uniform(gen, -1.0, 1.0);
  return m;
}

Matrix random_mask(std::size_t r, std::size_t c, std::uint64_t seed,
                   double density) {
  rng::Xoshiro256 gen(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng::uniform(gen, 0.0, 1.0) < density ? 1.0 : 0.0;
  return m;
}

Matrix apply_mask(const Matrix& w, const Matrix& mask) {
  Matrix out(w.rows(), w.cols());
  for (std::size_t i = 0; i < w.size(); ++i)
    out.data()[i] = mask.data()[i] != Real(0) ? w.data()[i] : Real(0);
  return out;
}

/// The contract's worst-case re-association bound for one reduction.
Real ulp_bound(std::size_t terms, Real abs_sum) {
  return 2 * Real(terms) * kEps * abs_sum;
}

/// Restores full dispatch when a test that forces a level exits.
struct LevelGuard {
  ~LevelGuard() { simd::force_level(simd::detected_level()); }
};

/// Levels to test: everything the CPU and build support, lowest first.
std::vector<simd::Level> testable_levels() {
  std::vector<simd::Level> levels = {simd::Level::kGeneric};
  if (simd::detected_level() >= simd::Level::kAvx2)
    levels.push_back(simd::Level::kAvx2);
  if (simd::detected_level() >= simd::Level::kAvx512)
    levels.push_back(simd::Level::kAvx512);
  return levels;
}

/// One masked problem instance: a (m x k), b (n x k) masked, extents over
/// b's rows — shapes chosen per test.
struct MaskedCase {
  Matrix mask, a, b;
  RowExtents ext;

  MaskedCase(std::size_t m, std::size_t n, std::size_t k, std::uint64_t seed,
             double density) {
    mask = random_mask(n, k, seed, density);
    if (n > 2) {
      for (std::size_t j = 0; j < k; ++j) mask(1, j) = 0;  // empty row
      for (std::size_t j = 0; j < k; ++j) mask(2, j) = 0;  // single column
      mask(2, k / 2) = 1;
    }
    a = random_matrix(m, k, seed + 1);
    b = apply_mask(random_matrix(n, k, seed + 2), mask);
    ext = RowExtents::from_mask(mask);
  }
};

// ---------------------------------------------------------------------------
// Parity sweep: every dispatch level vs the scalar reference, sizes from
// single elements through n = 1000, random masks, empty and single-column
// rows, thread counts 1 and 8.
// ---------------------------------------------------------------------------

void expect_gemm_parity_at_current_level(const MaskedCase& mc,
                                         const char* label) {
  const std::size_t m = mc.a.rows(), n = mc.b.rows();
  Matrix want(m, n), got(m, n);
  ref::gemm_nt_extents(mc.a, mc.b, mc.ext.view(), want);
  gemm_nt_extents(mc.a, mc.b, mc.ext.view(), got);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t j = 0; j < n; ++j) {
      Real abs_sum = 0;
      std::size_t terms = 0;
      for (const ColSpan s : mc.ext.view().row(j))
        for (std::size_t c = s.begin; c < s.end; ++c) {
          abs_sum += std::abs(mc.a(r, c) * mc.b(j, c));
          ++terms;
        }
      EXPECT_NEAR(got(r, j), want(r, j), ulp_bound(terms, abs_sum))
          << label << " C(" << r << "," << j << ") L=" << terms;
    }

  // The packed-panel form is bitwise identical to the extents form.
  const PackedRowPanels panels = PackedRowPanels::pack(mc.b, mc.ext.view());
  Matrix via_panels(m, n);
  gemm_nt_panels(mc.a, mc.ext.view(), panels, via_panels);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(via_panels.data()[i], got.data()[i]) << label << " flat " << i;
}

TEST(SimdKernels, GemmNtExtentsParitySweepAcrossLevelsSizesAndThreads) {
  LevelGuard guard;
  const std::size_t sizes[] = {1, 7, 100, 300, 1000};
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (const std::size_t n : sizes) {
      const MaskedCase mc(3, n, n, 1000 + n, 0.5);
#ifdef _OPENMP
      for (const int threads : {1, 8}) {
        omp_set_num_threads(threads);
#endif
        expect_gemm_parity_at_current_level(mc, simd::level_name(level));
#ifdef _OPENMP
      }
#endif
    }
  }
}

TEST(SimdKernels, GemvExtentsParityAcrossLevels) {
  LevelGuard guard;
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (const std::size_t n : {1ul, 7ul, 100ul, 300ul, 1000ul}) {
      const MaskedCase mc(1, n, n, 2000 + n, 0.5);
      Vector x(n), want(n), got(n);
      rng::Xoshiro256 gen(7 + n);
      for (std::size_t i = 0; i < n; ++i) x[i] = rng::uniform(gen, -1.0, 1.0);
      ref::gemv_extents(mc.b, mc.ext.view(), x.span(), want.span());
      gemv_extents(mc.b, mc.ext.view(), x.span(), got.span());
      for (std::size_t r = 0; r < n; ++r) {
        Real abs_sum = 0;
        std::size_t terms = 0;
        for (const ColSpan s : mc.ext.view().row(r))
          for (std::size_t c = s.begin; c < s.end; ++c) {
            abs_sum += std::abs(mc.b(r, c) * x[c]);
            ++terms;
          }
        EXPECT_NEAR(got[r], want[r], ulp_bound(terms, abs_sum))
            << simd::level_name(level) << " n=" << n << " row " << r;
      }
    }
  }
}

TEST(SimdKernels, AxpyFormExtentsKernelsMatchReferenceAcrossLevels) {
  LevelGuard guard;
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (const std::size_t n : {7ul, 100ul, 300ul}) {
      // gemm_nn_extents: a (m x k), b (k x n) masked, ext over b's rows.
      const std::size_t m = 3, k = n;
      const Matrix mask = random_mask(k, n, 3000 + n, 0.5);
      const Matrix a = random_matrix(m, k, 3001 + n);
      const Matrix b = apply_mask(random_matrix(k, n, 3002 + n), mask);
      const RowExtents ext = RowExtents::from_mask(mask);
      Matrix want(m, n), got(m, n);
      ref::gemm_nn_extents(a, b, ext.view(), want);
      gemm_nn_extents(a, b, ext.view(), got);
      for (std::size_t i = 0; i < got.size(); ++i) {
        // Axpy chains add k O(1) terms; reuse the same re-association bound
        // with a conservative |t| <= 1 per term.
        EXPECT_NEAR(got.data()[i], want.data()[i], ulp_bound(k, Real(k)))
            << simd::level_name(level) << " nn flat " << i;
      }

      // gemm_tn_accumulate_extents: a (k2 x m2), b (k2 x n), ext over c rows.
      const std::size_t k2 = 5, m2 = n;
      const Matrix mask2 = random_mask(m2, n, 3100 + n, 0.5);
      const Matrix a2 = random_matrix(k2, m2, 3101 + n);
      const Matrix b2 = random_matrix(k2, n, 3102 + n);
      const RowExtents ext2 = RowExtents::from_mask(mask2);
      const Matrix c0 = random_matrix(m2, n, 3103 + n);
      Matrix want2 = c0, got2 = c0;
      ref::gemm_tn_accumulate_extents(a2, b2, ext2.view(), want2);
      gemm_tn_accumulate_extents(a2, b2, ext2.view(), got2);
      for (std::size_t r = 0; r < m2; ++r)
        for (std::size_t j = 0; j < n; ++j) {
          if (mask2(r, j) != Real(0))
            EXPECT_NEAR(got2(r, j), want2(r, j), ulp_bound(k2 + 1, Real(k2 + 2)))
                << simd::level_name(level) << " tn " << r << "," << j;
          else
            EXPECT_EQ(got2(r, j), c0(r, j)) << "outside-mask touched";
        }
    }
  }
}

// ---------------------------------------------------------------------------
// Edge cases: all-empty extents, spans shorter than a vector, and every
// tail length around the widest register (8 doubles).
// ---------------------------------------------------------------------------

TEST(SimdKernels, AllEmptyExtentsZeroOutputsAndTouchNothing) {
  LevelGuard guard;
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    const std::size_t m = 4, n = 6, k = 9;
    Matrix mask(n, k);
    mask.fill(0.0);
    const Matrix a = random_matrix(m, k, 41);
    Matrix b(n, k);
    b.fill(0.0);
    const RowExtents ext = RowExtents::from_mask(mask);

    Matrix c(m, n);
    c.fill(123.0);
    gemm_nt_extents(a, b, ext.view(), c);
    for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0);

    Vector y(n);
    y.span()[0] = 55.0;
    Vector x(k);
    x.fill(1.0);
    gemv_extents(b, ext.view(), x.span(), y.span());
    for (std::size_t r = 0; r < n; ++r) EXPECT_EQ(y[r], 0.0);

    const Matrix c1 = random_matrix(n, k, 42);
    Matrix acc = c1;
    gemm_tn_accumulate_extents(random_matrix(3, n, 43), random_matrix(3, k, 44),
                               ext.view(), acc);
    for (std::size_t i = 0; i < acc.size(); ++i)
      EXPECT_EQ(acc.data()[i], c1.data()[i]);  // accumulator untouched

    const PackedRowPanels panels = PackedRowPanels::pack(b, ext.view());
    EXPECT_EQ(panels.nonzeros(), 0u);
    Matrix cp(m, n);
    cp.fill(9.0);
    gemm_nt_panels(a, ext.view(), panels, cp);
    for (std::size_t i = 0; i < cp.size(); ++i) EXPECT_EQ(cp.data()[i], 0.0);
  }
}

TEST(SimdKernels, EveryTailLengthAroundTheVectorWidthMatchesReference) {
  LevelGuard guard;
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    // k sweeps through every sub-vector tail: shorter than one AVX2 lane
    // set, exact multiples, one over, and past the unrolled 2x width.
    for (std::size_t k = 1; k <= 36; ++k) {
      Matrix mask(1, k);
      for (std::size_t j = 0; j < k; ++j) mask(0, j) = 1.0;
      const Matrix a = random_matrix(2, k, 500 + k);
      const Matrix b = apply_mask(random_matrix(1, k, 600 + k), mask);
      const RowExtents ext = RowExtents::from_mask(mask);
      Matrix want(2, 1), got(2, 1);
      ref::gemm_nt_extents(a, b, ext.view(), want);
      gemm_nt_extents(a, b, ext.view(), got);
      for (std::size_t r = 0; r < 2; ++r) {
        Real abs_sum = 0;
        for (std::size_t c = 0; c < k; ++c)
          abs_sum += std::abs(a(r, c) * b(0, c));
        EXPECT_NEAR(got(r, 0), want(r, 0), ulp_bound(k, abs_sum))
            << simd::level_name(level) << " k=" << k << " row " << r;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism and batch-position independence.
// ---------------------------------------------------------------------------

TEST(SimdKernels, RepeatedRunsAreBitwiseIdenticalIncludingAcrossThreadCounts) {
  const MaskedCase mc(16, 300, 300, 77, 0.5);
  Matrix first(16, 300), repeat(16, 300);
  gemm_nt_extents(mc.a, mc.b, mc.ext.view(), first);
  for (int run = 0; run < 3; ++run) {
#ifdef _OPENMP
    omp_set_num_threads(run % 2 == 0 ? 1 : 8);
#endif
    gemm_nt_extents(mc.a, mc.b, mc.ext.view(), repeat);
    for (std::size_t i = 0; i < first.size(); ++i)
      ASSERT_EQ(first.data()[i], repeat.data()[i])
          << "run " << run << " flat " << i;
  }
#ifdef _OPENMP
  omp_set_num_threads(omp_get_num_procs());
#endif
}

TEST(SimdKernels, RowValuesAreIndependentOfBatchPosition) {
  // Contract property 3: compute a 9-row batch, then each row alone; every
  // row must be bitwise identical either way (the serving path coalesces
  // rows into batches and must never perturb a value).
  const MaskedCase mc(9, 100, 100, 88, 0.5);
  Matrix full(9, 100);
  gemm_nt_extents(mc.a, mc.b, mc.ext.view(), full);
  for (std::size_t r = 0; r < 9; ++r) {
    Matrix one(1, 100), out(1, 100);
    for (std::size_t c = 0; c < 100; ++c) one(0, c) = mc.a(r, c);
    gemm_nt_extents(one, mc.b, mc.ext.view(), out);
    for (std::size_t j = 0; j < 100; ++j)
      ASSERT_EQ(out(0, j), full(r, j)) << "row " << r << " col " << j;
  }

  // Same property for the row-vectorized transcendental.
  Matrix logits = random_matrix(9, 100, 89);
  Matrix batch_sig = logits;
  sigmoid_inplace(batch_sig);
  for (std::size_t r = 0; r < 9; ++r) {
    Matrix row(1, 100);
    for (std::size_t c = 0; c < 100; ++c) row(0, c) = logits(r, c);
    sigmoid_inplace(row);
    for (std::size_t c = 0; c < 100; ++c)
      ASSERT_EQ(row(0, c), batch_sig(r, c)) << "row " << r << " col " << c;
  }
}

// ---------------------------------------------------------------------------
// Packed panels: geometry, refill, and the fused sampler primitives.
// ---------------------------------------------------------------------------

TEST(SimdKernels, PackedRowPanelsRoundTripAndRefill) {
  const Matrix mask = random_mask(11, 17, 91, 0.4);
  const Matrix b = apply_mask(random_matrix(11, 17, 92), mask);
  const RowExtents ext = RowExtents::from_mask(mask);

  PackedRowPanels panels = PackedRowPanels::pack(b, ext.view());
  ASSERT_EQ(panels.rows(), 11u);
  EXPECT_EQ(panels.nonzeros(), ext.nonzeros());
  for (std::size_t r = 0; r < 11; ++r) {
    const Real* p = panels.row(r);
    std::size_t t = 0;
    for (const ColSpan s : ext.view().row(r))
      for (std::size_t j = s.begin; j < s.end; ++j)
        EXPECT_EQ(p[t++], b(r, j)) << "row " << r << " col " << j;
  }

  const Matrix b2 = apply_mask(random_matrix(11, 17, 93), mask);
  panels.refill(b2, ext.view());
  for (std::size_t r = 0; r < 11; ++r) {
    const Real* p = panels.row(r);
    std::size_t t = 0;
    for (const ColSpan s : ext.view().row(r))
      for (std::size_t j = s.begin; j < s.end; ++j)
        EXPECT_EQ(p[t++], b2(r, j)) << "refilled row " << r;
  }
}

TEST(SimdKernels, ReluDotPanelsMatchesReferenceAcrossLevels) {
  LevelGuard guard;
  const Matrix mask = random_mask(5, 29, 95, 0.6);
  const Matrix b = apply_mask(random_matrix(5, 29, 96), mask);
  const RowExtents ext = RowExtents::from_mask(mask);
  const PackedRowPanels panels = PackedRowPanels::pack(b, ext.view());
  const Matrix a = random_matrix(1, 29, 97);
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (std::size_t r = 0; r < 5; ++r) {
      const Real want =
          ref::relu_dot_panels(ext.view().row(r), a.row(0).data(),
                               panels.row(r));
      const Real got =
          relu_dot_panels(ext.view().row(r), a.row(0).data(), panels.row(r));
      Real abs_sum = 0;
      std::size_t terms = 0;
      const Real* pv = panels.row(r);
      for (const ColSpan s : ext.view().row(r))
        for (std::size_t j = s.begin; j < s.end; ++j) {
          abs_sum += std::abs(std::max(a(0, j), Real(0)) * *pv++);
          ++terms;
        }
      EXPECT_NEAR(got, want, ulp_bound(terms, abs_sum))
          << simd::level_name(level) << " row " << r;
    }
  }
}

TEST(SimdKernels, ReluDotPanelsBatchBitwiseEqualsSingleRowAcrossLevels) {
  // The batched conditional engine's contract: out[r] of the batch kernel is
  // *bitwise* the single-row relu_dot_panels value, for every batch size and
  // row-tile split — plus reference parity within the documented ULP bound.
  LevelGuard guard;
  const Matrix mask = random_mask(6, 41, 143, 0.6);
  const Matrix b = apply_mask(random_matrix(6, 41, 144), mask);
  const RowExtents ext = RowExtents::from_mask(mask);
  const PackedRowPanels panels = PackedRowPanels::pack(b, ext.view());
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (const std::size_t rows : {1ul, 2ul, 3ul, 4ul, 5ul, 8ul, 9ul, 70ul}) {
      const Matrix a = random_matrix(rows, 41, 145 + rows);
      std::vector<Real> got(rows);
      for (std::size_t pr = 0; pr < 6; ++pr) {
        relu_dot_panels_batch(ext.view().row(pr), a.data(), 41, rows,
                              panels.row(pr), got.data());
        for (std::size_t r = 0; r < rows; ++r) {
          const Real single = relu_dot_panels(ext.view().row(pr),
                                              a.row(r).data(), panels.row(pr));
          EXPECT_EQ(got[r], single)
              << simd::level_name(level) << " rows " << rows << " panel row "
              << pr << " batch row " << r;
          const Real want = ref::relu_dot_panels(
              ext.view().row(pr), a.row(r).data(), panels.row(pr));
          Real abs_sum = 0;
          std::size_t terms = 0;
          const Real* pv = panels.row(pr);
          for (const ColSpan s : ext.view().row(pr))
            for (std::size_t j = s.begin; j < s.end; ++j) {
              abs_sum += std::abs(std::max(a(r, j), Real(0)) * *pv++);
              ++terms;
            }
          EXPECT_NEAR(got[r], want, ulp_bound(terms, abs_sum))
              << simd::level_name(level) << " vs reference, panel row " << pr;
        }
      }
    }
  }
}

TEST(SimdKernels, ReluDotPanelsBatchSubVectorTailSweepAcrossLevels) {
  // Every reduction tail length around the register width (1..36 columns,
  // one full-width span), at every level: bitwise vs the single-row kernel,
  // tolerance vs the scalar reference.
  LevelGuard guard;
  constexpr std::size_t kRows = 5;
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (std::size_t len = 1; len <= 36; ++len) {
      Matrix mask(1, len);
      for (std::size_t j = 0; j < len; ++j) mask(0, j) = 1;
      const Matrix b = random_matrix(1, len, 500 + len);
      const RowExtents ext = RowExtents::from_mask(mask);
      const PackedRowPanels panels = PackedRowPanels::pack(b, ext.view());
      const Matrix a = random_matrix(kRows, len, 600 + len);
      Real got[kRows];
      relu_dot_panels_batch(ext.view().row(0), a.data(), len, kRows,
                            panels.row(0), got);
      for (std::size_t r = 0; r < kRows; ++r) {
        EXPECT_EQ(got[r], relu_dot_panels(ext.view().row(0), a.row(r).data(),
                                          panels.row(0)))
            << simd::level_name(level) << " len " << len << " row " << r;
        Real abs_sum = 0;
        for (std::size_t j = 0; j < len; ++j)
          abs_sum += std::abs(std::max(a(r, j), Real(0)) * b(0, j));
        EXPECT_NEAR(got[r],
                    ref::relu_dot_panels(ext.view().row(0), a.row(r).data(),
                                         panels.row(0)),
                    ulp_bound(len, abs_sum))
            << simd::level_name(level) << " len " << len << " row " << r;
      }
    }
  }
}

TEST(SimdKernels, DotPanelsBlockKernelsBitwiseEqualSingleRowAcrossLevels) {
  // The conditional engine's frozen-tail kernels: relu_dot_panels_block must
  // reproduce the single-row relu_dot_panels bitwise for every (site, row)
  // cell, and dot_panels_block on the materialized relu of the same rows
  // must reproduce relu_dot_panels_block bitwise — the blocked loops only
  // reorder *which* cells are computed when, never the per-cell reduction.
  // nsites > kColBlock so the panel-block loop takes more than one trip.
  LevelGuard guard;
  constexpr std::size_t kSites = 300, kCols = 37, kBegin = 41;
  const Matrix mask = random_mask(kSites, kCols, 7321, 0.55);
  const Matrix b = apply_mask(random_matrix(kSites, kCols, 7322), mask);
  const RowExtents ext = RowExtents::from_mask(mask);
  const PackedRowPanels panels = PackedRowPanels::pack(b, ext.view());
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (const std::size_t rows : {1ul, 3ul, 4ul, 7ul, 8ul, 9ul, 21ul}) {
      const Matrix a = random_matrix(rows, kCols, 7400 + rows);
      Matrix relu_a(rows, kCols);
      for (std::size_t i = 0; i < a.size(); ++i)
        relu_a.data()[i] = a.data()[i] > 0 ? a.data()[i] : Real(0);
      Matrix got(kSites - kBegin, rows);
      relu_dot_panels_block(ext.view(), panels, kBegin, a.data(), kCols, rows,
                            got);
      Matrix via_relu(kSites - kBegin, rows);
      dot_panels_block(ext.view(), panels, kBegin, relu_a.data(), kCols, rows,
                       via_relu);
      Matrix want(kSites - kBegin, rows);
      ref::relu_dot_panels_block(ext.view(), panels, kBegin, a.data(), kCols,
                                 rows, want);
      for (std::size_t s = kBegin; s < kSites; ++s)
        for (std::size_t r = 0; r < rows; ++r) {
          const Real single = relu_dot_panels(ext.view().row(s),
                                              a.row(r).data(), panels.row(s));
          EXPECT_EQ(got(s - kBegin, r), single)
              << simd::level_name(level) << " rows " << rows << " site " << s
              << " row " << r;
          EXPECT_EQ(via_relu(s - kBegin, r), got(s - kBegin, r))
              << simd::level_name(level) << " plain-dot-on-relu, site " << s
              << " row " << r;
          Real abs_sum = 0;
          std::size_t terms = 0;
          const Real* pv = panels.row(s);
          for (const ColSpan sp : ext.view().row(s))
            for (std::size_t j = sp.begin; j < sp.end; ++j) {
              abs_sum += std::abs(std::max(a(r, j), Real(0)) * *pv++);
              ++terms;
            }
          EXPECT_NEAR(got(s - kBegin, r), want(s - kBegin, r),
                      ulp_bound(terms, abs_sum))
              << simd::level_name(level) << " vs reference, site " << s;
        }
    }
  }
}

TEST(SimdKernels, Rank1AddRowsBitwiseEqualsScalarWalkAcrossLevels) {
  // The engine's gathered rank-1 update: a unit fma multiplier rounds
  // exactly like the scalar +=, so the vector form must be bitwise equal to
  // the reference walk for every segment length around the register width.
  LevelGuard guard;
  constexpr std::size_t kRows = 11, kLda = 45;
  const std::vector<std::uint32_t> ids = {0, 2, 3, 7, 10};
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (std::size_t len = 0; len <= 19; ++len) {
      const std::size_t col_begin = kLda - 20;
      const Matrix vals = random_matrix(1, 20, 900 + len);
      Matrix got = random_matrix(kRows, kLda, 800 + len);
      Matrix want = got;
      rank1_add_rows(got.data(), kLda, {ids.data(), ids.size()}, col_begin,
                     vals.data(), len);
      ref::rank1_add_rows(want.data(), kLda, {ids.data(), ids.size()},
                          col_begin, vals.data(), len);
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got.data()[i], want.data()[i])
            << simd::level_name(level) << " len " << len << " flat " << i;
    }
  }
}

TEST(SimdKernels, AccumulateMaskedColsBitwiseEqualsAscendingAddsAcrossLevels) {
  // The engine's deferred far-segment pass: set bits must be applied in
  // ascending order with unit multipliers, bitwise equal to the naive
  // per-site walk.  Masks cover empty, sparse, dense and the top bit.
  LevelGuard guard;
  constexpr std::size_t kLen = 13;
  std::vector<Matrix> cols;
  std::vector<const Real*> ptrs;
  for (std::size_t bit = 0; bit < 64; ++bit) {
    cols.push_back(random_matrix(1, kLen, 1000 + bit));
    ptrs.push_back(cols.back().data());
  }
  const std::uint64_t masks[] = {0,
                                 1,
                                 0x8000000000000000ull,
                                 0x5a5a5a5a5a5a5a5aull,
                                 ~0ull};
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (const std::uint64_t mask : masks) {
      Matrix got = random_matrix(1, kLen, 2000);
      Matrix want = got;
      accumulate_masked_cols(got.data(), mask, ptrs.data(), kLen);
      ref::accumulate_masked_cols(want.data(), mask, ptrs.data(), kLen);
      for (std::size_t i = 0; i < kLen; ++i)
        EXPECT_EQ(got.data()[i], want.data()[i])
            << simd::level_name(level) << " mask " << std::hex << mask
            << " elem " << std::dec << i;
    }
  }
}

TEST(SimdKernels, BernoulliLogLikelihoodMatchesReferenceAcrossLevels) {
  LevelGuard guard;
  constexpr Real kProbEps = 1e-12;
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    for (const std::size_t n : {1ul, 7ul, 100ul, 1000ul}) {
      rng::Xoshiro256 gen(701 + n);
      Matrix x(1, n), p(1, n);
      for (std::size_t i = 0; i < n; ++i) {
        x(0, i) = rng::bernoulli(gen, 0.5) ? 1 : 0;
        p(0, i) = rng::uniform(gen, 0.0, 1.0);
      }
      p(0, 0) = 0.0;  // clamp path: log(max(., eps))
      if (n > 2) p(0, 2) = 1.0;
      const Real want =
          ref::bernoulli_log_likelihood(x.row(0), p.row(0).data(), kProbEps);
      const Real got =
          bernoulli_log_likelihood(x.row(0), p.row(0).data(), kProbEps);
      // Each term is a log in [log eps, 0] (|.| <= ~27.7), the vector log
      // itself is accurate to a few ulp, and the sum re-associates — the
      // contract bound with |t_i| <= |log eps| covers both.
      const Real bound = ulp_bound(n + 4, Real(n) * Real(28));
      EXPECT_NEAR(got, want, bound)
          << simd::level_name(level) << " n=" << n;

      const Real again =
          bernoulli_log_likelihood(x.row(0), p.row(0).data(), kProbEps);
      EXPECT_EQ(got, again);  // deterministic
    }
  }
}

}  // namespace
}  // namespace vqmc
