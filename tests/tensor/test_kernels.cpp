#include "tensor/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels_ref.hpp"

namespace vqmc {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng::uniform(gen, -1.0, 1.0);
  return m;
}

/// Naive reference O(mnk) matmul with explicit transpose flags.
Matrix reference_gemm(const Matrix& a, bool ta, const Matrix& b, bool tb) {
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t k = ta ? a.rows() : a.cols();
  const std::size_t n = tb ? b.rows() : b.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      Real acc = 0;
      for (std::size_t l = 0; l < k; ++l) {
        const Real av = ta ? a(l, i) : a(i, l);
        const Real bv = tb ? b(j, l) : b(l, j);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  return c;
}

void expect_matrix_near(const Matrix& x, const Matrix& y, Real tol = 1e-12) {
  ASSERT_EQ(x.rows(), y.rows());
  ASSERT_EQ(x.cols(), y.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_NEAR(x.data()[i], y.data()[i], tol) << "flat index " << i;
}

TEST(Kernels, DotAndAxpy) {
  Vector x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x.span(), y.span()), 32.0);
  axpy(2.0, x.span(), y.span());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(Kernels, DotSizeMismatchThrows) {
  Vector x(2), y(3);
  EXPECT_THROW(dot(x.span(), y.span()), Error);
}

TEST(Kernels, SumMeanVariance) {
  Vector v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(sum(v.span()), 10.0);
  EXPECT_DOUBLE_EQ(mean(v.span()), 2.5);
  EXPECT_DOUBLE_EQ(variance(v.span()), 1.25);
  Vector empty;
  EXPECT_DOUBLE_EQ(mean(empty.span()), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty.span()), 0.0);
}

TEST(Kernels, ScaleInPlace) {
  Vector v{2, -4};
  scale(v.span(), 0.5);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], -2.0);
}

TEST(Kernels, GemvMatchesReference) {
  const Matrix a = random_matrix(5, 7, 1);
  Vector x(7), y(5);
  rng::Xoshiro256 gen(2);
  for (std::size_t i = 0; i < 7; ++i) x[i] = rng::uniform(gen, -1.0, 1.0);
  gemv(a, x.span(), y.span());
  for (std::size_t r = 0; r < 5; ++r) {
    Real acc = 0;
    for (std::size_t c = 0; c < 7; ++c) acc += a(r, c) * x[c];
    EXPECT_NEAR(y[r], acc, 1e-12);
  }
}

TEST(Kernels, GemvTransposedMatchesReference) {
  const Matrix a = random_matrix(5, 7, 3);
  Vector x(5), y(7);
  rng::Xoshiro256 gen(4);
  for (std::size_t i = 0; i < 5; ++i) x[i] = rng::uniform(gen, -1.0, 1.0);
  gemv_t(a, x.span(), y.span());
  for (std::size_t c = 0; c < 7; ++c) {
    Real acc = 0;
    for (std::size_t r = 0; r < 5; ++r) acc += a(r, c) * x[r];
    EXPECT_NEAR(y[c], acc, 1e-12);
  }
}

TEST(Kernels, GemmNnMatchesReference) {
  const Matrix a = random_matrix(4, 6, 5);
  const Matrix b = random_matrix(6, 3, 6);
  Matrix c(4, 3);
  gemm_nn(a, b, c);
  expect_matrix_near(c, reference_gemm(a, false, b, false));
}

TEST(Kernels, GemmNtMatchesReference) {
  const Matrix a = random_matrix(4, 6, 7);
  const Matrix b = random_matrix(3, 6, 8);
  Matrix c(4, 3);
  gemm_nt(a, b, c);
  expect_matrix_near(c, reference_gemm(a, false, b, true));
}

TEST(Kernels, GemmTnAccumulates) {
  const Matrix a = random_matrix(5, 4, 9);
  const Matrix b = random_matrix(5, 3, 10);
  Matrix c(4, 3);
  c.fill(1.0);
  gemm_tn_accumulate(a, b, c);
  Matrix expected = reference_gemm(a, true, b, false);
  for (std::size_t i = 0; i < expected.size(); ++i)
    expected.data()[i] += 1.0;
  expect_matrix_near(c, expected);
}

TEST(Kernels, GemmShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(gemm_nn(a, b, c), Error);
}

TEST(Kernels, AddRowBroadcast) {
  Matrix a(2, 3);
  Vector b{1, 2, 3};
  add_row_broadcast(a, b.span());
  EXPECT_DOUBLE_EQ(a(0, 0), 1);
  EXPECT_DOUBLE_EQ(a(1, 2), 3);
}

TEST(Kernels, ReluAndBackward) {
  Matrix a(1, 4);
  a(0, 0) = -1;
  a(0, 1) = 0;
  a(0, 2) = 2;
  a(0, 3) = -0.5;
  Matrix pre = a;
  relu_inplace(a);
  EXPECT_DOUBLE_EQ(a(0, 0), 0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0);
  EXPECT_DOUBLE_EQ(a(0, 2), 2);

  Matrix grad(1, 4);
  grad.fill(1.0);
  relu_backward_inplace(pre, grad);
  EXPECT_DOUBLE_EQ(grad(0, 0), 0);  // pre <= 0 kills the gradient
  EXPECT_DOUBLE_EQ(grad(0, 1), 0);
  EXPECT_DOUBLE_EQ(grad(0, 2), 1);
}

TEST(Kernels, SigmoidStableAtExtremes) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-15);
  EXPECT_NEAR(sigmoid(800.0), 1.0, 1e-15);
  EXPECT_NEAR(sigmoid(-800.0), 0.0, 1e-15);
  EXPECT_TRUE(std::isfinite(sigmoid(-1e6)));
  Matrix a(1, 2);
  a(0, 0) = 100;
  a(0, 1) = -100;
  sigmoid_inplace(a);
  EXPECT_NEAR(a(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(a(0, 1), 0.0, 1e-12);
}

TEST(Kernels, LogCoshMatchesDirectFormSmallAndIsStableLarge) {
  for (Real x : {-2.0, -0.3, 0.0, 0.7, 3.0})
    EXPECT_NEAR(log_cosh(x), std::log(std::cosh(x)), 1e-12);
  // Large arguments: log cosh x ~ |x| - log 2.
  EXPECT_NEAR(log_cosh(1000.0), 1000.0 - std::log(2.0), 1e-9);
  EXPECT_TRUE(std::isfinite(log_cosh(1e8)));
}

TEST(Kernels, HadamardProduct) {
  Matrix a(1, 3), b(1, 3), c(1, 3);
  a(0, 0) = 2;
  a(0, 1) = 3;
  a(0, 2) = -1;
  b(0, 0) = 5;
  b(0, 1) = 0;
  b(0, 2) = 4;
  hadamard(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 10);
  EXPECT_DOUBLE_EQ(c(0, 1), 0);
  EXPECT_DOUBLE_EQ(c(0, 2), -4);
}

TEST(Kernels, ColumnSumAccumulate) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Vector out(2);
  out[0] = 10;
  column_sum_accumulate(a, out.span());
  EXPECT_DOUBLE_EQ(out[0], 14);
  EXPECT_DOUBLE_EQ(out[1], 6);
}

TEST(Kernels, PairwiseSumExactOnRepresentablePatternAtMillionElements) {
  // Exactness sanity check at batch >= 1e6: every intermediate in the
  // period-4 pattern {1e8, 0.5, -1e8, 1.5} (chunk sum exactly 2.0) is
  // representable in double, so any accumulation-order bug shows up as a
  // hard mismatch rather than tolerable noise.
  constexpr std::size_t kCount = 1u << 20;  // 1,048,576 elements
  Vector v(kCount);
  for (std::size_t i = 0; i < kCount; i += 4) {
    v[i] = 1e8;
    v[i + 1] = 0.5;
    v[i + 2] = -1e8;
    v[i + 3] = 1.5;
  }
  const Real exact_sum = Real(kCount / 4) * 2.0;
  const Real exact_mean = exact_sum / Real(kCount);
  EXPECT_NEAR(sum(v.span()), exact_sum, 1e-6);
  EXPECT_NEAR(mean(v.span()), exact_mean, 1e-12);

  // Variance: constant shift should not perturb the result. E[x]=0.5 per
  // the pattern; use a same-shape batch with values {1,2,3,4} repeating:
  // mean 2.5, population variance 1.25, exactly.
  for (std::size_t i = 0; i < kCount; ++i) v[i] = Real(1 + (i % 4));
  EXPECT_NEAR(mean(v.span()), 2.5, 1e-12);
  EXPECT_NEAR(variance(v.span()), 1.25, 1e-10);
}

TEST(Kernels, PairwiseSumMatchesLongDoubleReference) {
  // Tolerance regression at batch >= 1e6: compare against a long-double
  // reference on a random batch shaped like local energies.
  constexpr std::size_t kCount = 1'200'000;
  Vector v(kCount);
  rng::Xoshiro256 gen(99);
  for (std::size_t i = 0; i < kCount; ++i)
    v[i] = rng::uniform(gen, -50.0, 50.0);
  long double reference = 0.0L;
  for (std::size_t i = 0; i < kCount; ++i) reference += (long double)v[i];
  const Real got = sum(v.span());
  // Pairwise error bound ~ O(log2 N) ulps of the running magnitude; give
  // generous slack while still rejecting naive O(N)-ulp drift.
  EXPECT_NEAR(got, (Real)reference, 1e-7);

  long double mean_ref = reference / (long double)kCount;
  long double var_ref = 0.0L;
  for (std::size_t i = 0; i < kCount; ++i) {
    const long double d = (long double)v[i] - mean_ref;
    var_ref += d * d;
  }
  var_ref /= (long double)kCount;
  EXPECT_NEAR(mean(v.span()), (Real)mean_ref, 1e-12);
  EXPECT_NEAR(variance(v.span()), (Real)var_ref, 1e-9);
}

TEST(Kernels, GemvTransposedLargeMatchesLongDoubleReference) {
  // Row counts well past the parallel threshold so the per-thread partial
  // accumulator path is exercised; compare against a long-double serial
  // reference since the merge re-associates the sum.
  const std::size_t m = 1024, k = 37;
  const Matrix a = random_matrix(m, k, 41);
  Vector x(m), y(k);
  rng::Xoshiro256 gen(42);
  for (std::size_t i = 0; i < m; ++i) x[i] = rng::uniform(gen, -1.0, 1.0);
  gemv_t(a, x.span(), y.span());
  for (std::size_t c = 0; c < k; ++c) {
    long double acc = 0.0L;
    for (std::size_t r = 0; r < m; ++r)
      acc += (long double)a(r, c) * (long double)x[r];
    EXPECT_NEAR(y[c], (Real)acc, 1e-10) << "column " << c;
  }
}

// ---------------------------------------------------------------------------
// Extent-aware (masked) kernels.
// ---------------------------------------------------------------------------

Matrix random_mask(std::size_t r, std::size_t c, std::uint64_t seed,
                   double density) {
  rng::Xoshiro256 gen(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng::uniform(gen, 0.0, 1.0) < density ? 1.0 : 0.0;
  return m;
}

/// w with exact +0.0 written wherever the mask is zero (what Made's packed
/// weight cache produces).
Matrix apply_mask(const Matrix& w, const Matrix& mask) {
  Matrix out(w.rows(), w.cols());
  for (std::size_t i = 0; i < w.size(); ++i)
    out.data()[i] = mask.data()[i] != Real(0) ? w.data()[i] : Real(0);
  return out;
}

void expect_matrix_bitwise_equal(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.data()[i], want.data()[i]) << "flat index " << i;
}

TEST(RowExtents, FromMaskRecordsMaximalRuns) {
  Matrix mask(4, 6);
  mask.fill(0.0);
  // row 0: empty.  row 1: full.  row 2: [1,3) and [4,6).  row 3: {5}.
  for (std::size_t j = 0; j < 6; ++j) mask(1, j) = 1;
  mask(2, 1) = mask(2, 2) = 1;
  mask(2, 4) = mask(2, 5) = 1;
  mask(3, 5) = 1;

  const RowExtents ext = RowExtents::from_mask(mask);
  const RowExtentsView v = ext.view();
  ASSERT_EQ(ext.rows(), 4u);
  EXPECT_EQ(ext.nonzeros(), 11u);

  EXPECT_TRUE(v.row(0).empty());
  EXPECT_EQ(ext.row_end(0), 0u);

  ASSERT_EQ(v.row(1).size(), 1u);
  EXPECT_EQ(v.row(1)[0].begin, 0u);
  EXPECT_EQ(v.row(1)[0].end, 6u);

  ASSERT_EQ(v.row(2).size(), 2u);
  EXPECT_EQ(v.row(2)[0].begin, 1u);
  EXPECT_EQ(v.row(2)[0].end, 3u);
  EXPECT_EQ(v.row(2)[1].begin, 4u);
  EXPECT_EQ(v.row(2)[1].end, 6u);
  EXPECT_EQ(ext.row_end(2), 6u);

  ASSERT_EQ(v.row(3).size(), 1u);
  EXPECT_EQ(v.row(3)[0].begin, 5u);
  EXPECT_EQ(v.row(3)[0].end, 6u);
  EXPECT_EQ(ext.row_end(3), 6u);
}

TEST(RowExtents, FromMaskRoundTripsRandomMasks) {
  for (std::uint64_t seed : {11, 12, 13}) {
    const Matrix mask = random_mask(9, 13, seed, 0.4);
    const RowExtents ext = RowExtents::from_mask(mask);
    Matrix rebuilt(9, 13);
    rebuilt.fill(0.0);
    std::size_t nnz = 0;
    for (std::size_t r = 0; r < 9; ++r)
      for (const ColSpan s : ext.view().row(r))
        for (std::size_t j = s.begin; j < s.end; ++j) {
          rebuilt(r, j) = 1.0;
          ++nnz;
        }
    EXPECT_EQ(nnz, ext.nonzeros());
    expect_matrix_bitwise_equal(rebuilt, mask);
  }
}

// The extent kernels follow the tolerance contract of kernels.hpp: SIMD
// accumulation reorders the sum (vector lanes + FMA), so they agree with
// the scalar reference within the documented ULP bound instead of
// bit-for-bit.  Values here are O(1) with k <= 23 terms, so 1e-12 is many
// orders above the 2*L*eps*sum|t| bound.  What stays EXACT: rows with no
// extents are overwritten with 0.0, entries outside the mask are never
// touched, and each kernel is bitwise-deterministic run to run.
constexpr Real kExtentTol = 1e-12;

TEST(Kernels, GemvExtentsMatchesScalarReferenceOnMaskedMatrix) {
  const std::size_t m = 17, k = 23;
  Matrix mask = random_mask(m, k, 21, 0.5);
  for (std::size_t j = 0; j < k; ++j) mask(4, j) = 0;  // force an empty row
  const Matrix a = apply_mask(random_matrix(m, k, 22), mask);
  const RowExtents ext = RowExtents::from_mask(mask);

  Vector x(k), want(m), packed(m), again(m);
  rng::Xoshiro256 gen(23);
  for (std::size_t i = 0; i < k; ++i) x[i] = rng::uniform(gen, -1.0, 1.0);
  packed.span()[4] = 99.0;  // must be overwritten with 0 (empty row)
  ref::gemv_extents(a, ext.view(), x.span(), want.span());
  gemv_extents(a, ext.view(), x.span(), packed.span());
  for (std::size_t r = 0; r < m; ++r)
    EXPECT_NEAR(packed[r], want[r], kExtentTol) << "row " << r;
  EXPECT_EQ(packed[4], 0.0);

  gemv_extents(a, ext.view(), x.span(), again.span());  // deterministic
  for (std::size_t r = 0; r < m; ++r) EXPECT_EQ(packed[r], again[r]);
}

TEST(Kernels, GemmNtExtentsMatchesScalarReferenceOnMaskedMatrix) {
  const std::size_t m = 7, k = 19, n = 11;
  const Matrix mask = random_mask(n, k, 31, 0.5);
  const Matrix a = random_matrix(m, k, 32);
  const Matrix b = apply_mask(random_matrix(n, k, 33), mask);
  const RowExtents ext = RowExtents::from_mask(mask);

  Matrix want(m, n), packed(m, n), again(m, n);
  ref::gemm_nt_extents(a, b, ext.view(), want);
  gemm_nt_extents(a, b, ext.view(), packed);
  expect_matrix_near(packed, want, kExtentTol);

  gemm_nt_extents(a, b, ext.view(), again);  // deterministic
  expect_matrix_bitwise_equal(packed, again);
}

TEST(Kernels, GemmNnExtentsMatchesScalarReferenceOnMaskedMatrix) {
  const std::size_t m = 9, k = 13, n = 15;
  const Matrix mask = random_mask(k, n, 51, 0.5);
  const Matrix a = random_matrix(m, k, 52);
  const Matrix b = apply_mask(random_matrix(k, n, 53), mask);
  const RowExtents ext = RowExtents::from_mask(mask);

  Matrix want(m, n), packed(m, n), again(m, n);
  ref::gemm_nn_extents(a, b, ext.view(), want);
  gemm_nn_extents(a, b, ext.view(), packed);
  expect_matrix_near(packed, want, kExtentTol);

  gemm_nn_extents(a, b, ext.view(), again);  // deterministic
  expect_matrix_bitwise_equal(packed, again);
}

TEST(Kernels, GemmTnAccumulateExtentsMatchesReferenceInsideAndPreservesOutside) {
  const std::size_t k = 12, m = 8, n = 10;
  const Matrix mask = random_mask(m, n, 61, 0.5);
  const Matrix a = random_matrix(k, m, 62);
  const Matrix b = random_matrix(k, n, 63);
  const RowExtents ext = RowExtents::from_mask(mask);

  const Matrix c0 = random_matrix(m, n, 64);
  Matrix want = c0, packed = c0, again = c0;
  ref::gemm_tn_accumulate_extents(a, b, ext.view(), want);
  gemm_tn_accumulate_extents(a, b, ext.view(), packed);
  gemm_tn_accumulate_extents(a, b, ext.view(), again);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t j = 0; j < n; ++j) {
      if (mask(r, j) != Real(0))
        EXPECT_NEAR(packed(r, j), want(r, j), kExtentTol) << r << "," << j;
      else
        EXPECT_EQ(packed(r, j), c0(r, j)) << r << "," << j;  // untouched
      EXPECT_EQ(packed(r, j), again(r, j)) << r << "," << j;  // deterministic
    }
}

TEST(Kernels, ExtentsZeroClearsOnlyCoveredEntries) {
  const std::size_t m = 6, n = 9;
  const Matrix mask = random_mask(m, n, 71, 0.5);
  const RowExtents ext = RowExtents::from_mask(mask);
  const Matrix a0 = random_matrix(m, n, 72);
  Matrix a = a0;
  extents_zero(a, ext.view());
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t j = 0; j < n; ++j) {
      if (mask(r, j) != Real(0))
        EXPECT_EQ(a(r, j), 0.0);
      else
        EXPECT_EQ(a(r, j), a0(r, j));
    }
}

TEST(Kernels, ExtentsAddFlatAddsOnlyCoveredEntries) {
  const std::size_t m = 6, n = 9;
  const Matrix mask = random_mask(m, n, 81, 0.5);
  const RowExtents ext = RowExtents::from_mask(mask);
  const Matrix src = random_matrix(m, n, 82);
  const Matrix dst0 = random_matrix(m, n, 83);
  Vector dst(m * n);
  for (std::size_t i = 0; i < m * n; ++i) dst[i] = dst0.data()[i];
  extents_add_flat(src, ext.view(), dst.span());
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t j = 0; j < n; ++j) {
      const Real got = dst[r * n + j];
      if (mask(r, j) != Real(0))
        EXPECT_EQ(got, dst0(r, j) + src(r, j));
      else
        EXPECT_EQ(got, dst0(r, j));
    }
}

/// Property sweep: the three gemm variants agree with the naive reference
/// across a grid of shapes, including degenerate 1-sized extents.
class GemmShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeSweep, AllVariantsMatchReference) {
  const auto [m, k, n] = GetParam();
  const std::uint64_t seed = std::uint64_t(m * 10007 + k * 101 + n);
  const Matrix a = random_matrix(std::size_t(m), std::size_t(k), seed);
  const Matrix b_nn = random_matrix(std::size_t(k), std::size_t(n), seed + 1);
  const Matrix b_nt = random_matrix(std::size_t(n), std::size_t(k), seed + 2);
  const Matrix a_tn = random_matrix(std::size_t(k), std::size_t(m), seed + 3);

  Matrix c{std::size_t(m), std::size_t(n)};
  gemm_nn(a, b_nn, c);
  expect_matrix_near(c, reference_gemm(a, false, b_nn, false));

  gemm_nt(a, b_nt, c);
  expect_matrix_near(c, reference_gemm(a, false, b_nt, true));

  Matrix acc{std::size_t(m), std::size_t(n)};
  gemm_tn_accumulate(a_tn, b_nn, acc);
  expect_matrix_near(acc, reference_gemm(a_tn, true, b_nn, false));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeSweep,
    ::testing::Combine(::testing::Values(1, 3, 17), ::testing::Values(1, 5, 32),
                       ::testing::Values(1, 4, 23)));

}  // namespace
}  // namespace vqmc
