#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc::linalg {
namespace {

/// Build a random SPD matrix A = B B^T + n I.
Matrix random_spd(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix b(n, n);
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = rng::uniform(gen, -1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      Real acc = (i == j) ? Real(n) : Real(0);
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      a(i, j) = acc;
    }
  return a;
}

TEST(Cholesky, FactorReconstructsMatrix) {
  const Matrix a = random_spd(6, 1);
  Matrix l = a;
  ASSERT_TRUE(cholesky_factor(l));
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      Real acc = 0;
      for (std::size_t k = 0; k < 6; ++k) acc += l(i, k) * l(j, k);
      EXPECT_NEAR(acc, a(i, j), 1e-10);
    }
}

TEST(Cholesky, UpperTriangleZeroedAfterFactor) {
  Matrix l = random_spd(4, 2);
  ASSERT_TRUE(cholesky_factor(l));
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = i + 1; j < 4; ++j) EXPECT_EQ(l(i, j), 0.0);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const std::size_t n = 8;
  const Matrix a = random_spd(n, 3);
  rng::Xoshiro256 gen(4);
  Vector x_true(n), b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = rng::uniform(gen, -2.0, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    Real acc = 0;
    for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * x_true[j];
    b[i] = acc;
  }
  ASSERT_TRUE(solve_spd(a, b.span(), x.span()));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, IndefiniteMatrixRejected) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -1;  // indefinite
  Matrix l = a;
  EXPECT_FALSE(cholesky_factor(l));
  Vector b(2), x(2);
  EXPECT_FALSE(solve_spd(a, b.span(), x.span()));
}

TEST(Cholesky, IdentitySolveIsIdentityMap) {
  Matrix eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye(i, i) = 1;
  Vector b{1, 2, 3}, x(3);
  ASSERT_TRUE(solve_spd(eye, b.span(), x.span()));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], b[i], 1e-14);
}

}  // namespace
}  // namespace vqmc::linalg
