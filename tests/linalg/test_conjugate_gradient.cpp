#include "linalg/conjugate_gradient.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::linalg {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix b(n, n);
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = rng::uniform(gen, -1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      Real acc = (i == j) ? Real(2) : Real(0);
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      a(i, j) = acc;
    }
  return a;
}

LinearOperator dense_operator(const Matrix& a) {
  return [&a](std::span<const Real> x, std::span<Real> y) { gemv(a, x, y); };
}

TEST(ConjugateGradient, SolvesIdentityInOneIteration) {
  const std::size_t n = 10;
  Vector b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = Real(i + 1);
  const auto identity = [](std::span<const Real> in, std::span<Real> out) {
    std::copy(in.begin(), in.end(), out.begin());
  };
  const CgResult r = conjugate_gradient(identity, b.span(), x.span());
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], b[i], 1e-10);
}

TEST(ConjugateGradient, MatchesCholeskyOnRandomSpd) {
  const std::size_t n = 20;
  const Matrix a = random_spd(n, 11);
  rng::Xoshiro256 gen(12);
  Vector b(n), x_cg(n), x_chol(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng::uniform(gen, -1.0, 1.0);
  CgOptions opts;
  opts.tolerance = 1e-12;
  opts.max_iterations = 500;
  const CgResult r =
      conjugate_gradient(dense_operator(a), b.span(), x_cg.span(), opts);
  EXPECT_TRUE(r.converged);
  ASSERT_TRUE(solve_spd(a, b.span(), x_chol.span()));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_cg[i], x_chol[i], 1e-8);
}

TEST(ConjugateGradient, ZeroRhsGivesZeroSolution) {
  const Matrix a = random_spd(5, 13);
  Vector b(5), x(5);
  x.fill(3.0);  // non-zero initial guess must be cleared
  const CgResult r = conjugate_gradient(dense_operator(a), b.span(), x.span());
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(x[i], 0.0);
}

TEST(ConjugateGradient, ConvergesInAtMostNIterationsExactArithmetic) {
  const std::size_t n = 12;
  const Matrix a = random_spd(n, 14);
  rng::Xoshiro256 gen(15);
  Vector b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng::uniform(gen, -1.0, 1.0);
  CgOptions opts;
  opts.tolerance = 1e-9;
  const CgResult r =
      conjugate_gradient(dense_operator(a), b.span(), x.span(), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, int(n) + 2);
}

TEST(ConjugateGradient, RespectsIterationCap) {
  const std::size_t n = 30;
  const Matrix a = random_spd(n, 16);
  rng::Xoshiro256 gen(17);
  Vector b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng::uniform(gen, -1.0, 1.0);
  CgOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 1e-16;
  const CgResult r =
      conjugate_gradient(dense_operator(a), b.span(), x.span(), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

TEST(ConjugateGradient, NegativeCurvatureReportsBreakdown) {
  // y = -x is negative definite: p.Ap < 0 on the first direction.
  const std::size_t n = 6;
  Vector b(n), x(n);
  b.fill(1.0);
  const auto negate = [](std::span<const Real> in, std::span<Real> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = -in[i];
  };
  const CgResult r = conjugate_gradient(negate, b.span(), x.span());
  EXPECT_TRUE(r.breakdown);
  EXPECT_FALSE(r.converged);
  EXPECT_NE(std::string(r.breakdown_reason).find("curvature"),
            std::string::npos);
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(std::isfinite(x[i]));
}

TEST(ConjugateGradient, NonFiniteOperatorReportsBreakdownWithFiniteX) {
  const std::size_t n = 5;
  Vector b(n), x(n);
  b.fill(1.0);
  const auto poisoned = [](std::span<const Real> in, std::span<Real> out) {
    std::copy(in.begin(), in.end(), out.begin());
    out[2] = std::numeric_limits<Real>::quiet_NaN();
  };
  const CgResult r = conjugate_gradient(poisoned, b.span(), x.span());
  EXPECT_TRUE(r.breakdown);
  EXPECT_FALSE(r.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(std::isfinite(x[i]));
}

TEST(ConjugateGradient, NonFiniteRhsReportsBreakdown) {
  const Matrix a = random_spd(4, 18);
  Vector b(4), x(4);
  b.fill(1.0);
  b[1] = std::numeric_limits<Real>::infinity();
  const CgResult r = conjugate_gradient(dense_operator(a), b.span(), x.span());
  EXPECT_TRUE(r.breakdown);
  EXPECT_FALSE(r.converged);
}

TEST(ConjugateGradient, SizeMismatchThrows) {
  Vector b(3), x(4);
  EXPECT_THROW(conjugate_gradient(
                   [](std::span<const Real>, std::span<Real>) {}, b.span(),
                   x.span()),
               Error);
}

}  // namespace
}  // namespace vqmc::linalg
