#include "linalg/jacobi_eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const Real v = rng::uniform(gen, -1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

TEST(JacobiEigen, DiagonalMatrixTrivial) {
  Matrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = -1;
  a(2, 2) = 2;
  const EigenDecomposition eig = jacobi_eigen(a);
  EXPECT_TRUE(eig.converged);
  EXPECT_NEAR(eig.eigenvalues[0], -1, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3, 1e-12);
}

TEST(JacobiEigen, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  const EigenDecomposition eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 1, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3, 1e-12);
}

TEST(JacobiEigen, EigenpairsSatisfyDefinition) {
  const std::size_t n = 8;
  const Matrix a = random_symmetric(n, 21);
  const EigenDecomposition eig = jacobi_eigen(a);
  EXPECT_TRUE(eig.converged);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      Real av = 0;
      for (std::size_t k = 0; k < n; ++k) av += a(i, k) * eig.eigenvectors(k, j);
      EXPECT_NEAR(av, eig.eigenvalues[j] * eig.eigenvectors(i, j), 1e-9);
    }
  }
}

TEST(JacobiEigen, EigenvectorsOrthonormal) {
  const std::size_t n = 7;
  const Matrix a = random_symmetric(n, 22);
  const EigenDecomposition eig = jacobi_eigen(a);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      Real inner = 0;
      for (std::size_t k = 0; k < n; ++k)
        inner += eig.eigenvectors(k, p) * eig.eigenvectors(k, q);
      EXPECT_NEAR(inner, p == q ? 1.0 : 0.0, 1e-10);
    }
}

TEST(JacobiEigen, TraceAndEigenvalueSumAgree) {
  const std::size_t n = 10;
  const Matrix a = random_symmetric(n, 23);
  const EigenDecomposition eig = jacobi_eigen(a);
  Real trace = 0, sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += eig.eigenvalues[i];
  }
  EXPECT_NEAR(trace, sum, 1e-10);
}

TEST(JacobiEigen, EigenvaluesSortedAscending) {
  const Matrix a = random_symmetric(9, 24);
  const EigenDecomposition eig = jacobi_eigen(a);
  for (std::size_t i = 1; i < 9; ++i)
    EXPECT_LE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
}

TEST(JacobiEigen, AsymmetricInputIsSymmetrized) {
  Matrix a(2, 2);
  a(0, 1) = 2;
  a(1, 0) = 0;  // averaged to 1
  const EigenDecomposition eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], -1, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1, 1e-12);
}

}  // namespace
}  // namespace vqmc::linalg
