#include "linalg/lanczos.hpp"

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const Real v = rng::uniform(gen, -1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

TEST(Lanczos, MatchesJacobiOnRandomSymmetric) {
  const std::size_t n = 40;
  const Matrix a = random_symmetric(n, 31);
  const EigenDecomposition dense = jacobi_eigen(a);
  const LanczosResult sparse = lanczos_smallest(
      [&a](std::span<const Real> v, std::span<Real> y) { gemv(a, v, y); }, n);
  EXPECT_TRUE(sparse.converged);
  EXPECT_NEAR(sparse.eigenvalue, dense.eigenvalues[0], 1e-8);
}

TEST(Lanczos, RitzVectorIsAnEigenvector) {
  const std::size_t n = 25;
  const Matrix a = random_symmetric(n, 32);
  const LanczosResult r = lanczos_smallest(
      [&a](std::span<const Real> v, std::span<Real> y) { gemv(a, v, y); }, n);
  Vector av(n);
  gemv(a, r.eigenvector.span(), av.span());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(av[i], r.eigenvalue * r.eigenvector[i], 1e-6);
  EXPECT_NEAR(r.eigenvector.norm(), 1.0, 1e-10);
}

TEST(Lanczos, DiagonalOperatorFindsMinimum) {
  const std::size_t n = 100;
  const auto apply = [n](std::span<const Real> v, std::span<Real> y) {
    for (std::size_t i = 0; i < n; ++i) y[i] = Real(int(i % 13) - 6) * v[i];
  };
  const LanczosResult r = lanczos_smallest(apply, n);
  EXPECT_NEAR(r.eigenvalue, -6.0, 1e-8);
}

TEST(Lanczos, HandlesOneDimensionalSpace) {
  const auto apply = [](std::span<const Real> v, std::span<Real> y) {
    y[0] = Real(4.5) * v[0];
  };
  const LanczosResult r = lanczos_smallest(apply, 1);
  EXPECT_NEAR(r.eigenvalue, 4.5, 1e-12);
}

TEST(Lanczos, DegenerateGroundStateStillConverges) {
  // -I has eigenvalue -1 with full multiplicity; breakdown is immediate.
  const std::size_t n = 16;
  const auto apply = [](std::span<const Real> v, std::span<Real> y) {
    for (std::size_t i = 0; i < v.size(); ++i) y[i] = -v[i];
  };
  const LanczosResult r = lanczos_smallest(apply, n);
  EXPECT_NEAR(r.eigenvalue, -1.0, 1e-10);
}

}  // namespace
}  // namespace vqmc::linalg
