#include "sampler/fast_made_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/hamiltonian.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "sampler/diagnostics.hpp"

namespace vqmc {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.8, 0.8);
}

std::vector<Real> exact_distribution(const Made& made) {
  const std::size_t n = made.num_spins();
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  Vector lp(dim);
  made.log_psi(batch, lp.span());
  std::vector<Real> pi(dim);
  for (std::size_t i = 0; i < dim; ++i) pi[i] = std::exp(2 * lp[i]);
  return pi;
}

TEST(FastMadeSampler, MatchesBaselineSamplerBitForBit) {
  // Same seed, same Bernoulli-consumption order, conditionals equal up to
  // rounding: the two samplers should emit identical batches (a draw would
  // have to land within ~1 ulp of a conditional to differ).
  Made made(6, 9);
  randomize_parameters(made, 1);
  AutoregressiveSampler baseline(made, 7);
  FastMadeSampler fast(made, 7);
  Matrix a(512, 6), b(512, 6);
  baseline.sample(a);
  fast.sample(b);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    differing += a.data()[i] != b.data()[i] ? 1 : 0;
  EXPECT_EQ(differing, 0u);
}

TEST(FastMadeSampler, EmpiricalDistributionMatchesExactModel) {
  Made made(4, 6);
  randomize_parameters(made, 2);
  FastMadeSampler sampler(made, 3);
  const std::size_t draws = 20000;
  Matrix out(draws, 4);
  sampler.sample(out);
  EXPECT_LT(total_variation_distance(empirical_distribution(out),
                                     exact_distribution(made)),
            0.03);
}

TEST(FastMadeSampler, TracksParameterUpdatesBetweenCalls) {
  // Masked weights are re-materialized per call, so moving the parameters
  // must change the sampled distribution.
  Made made(4, 5);
  randomize_parameters(made, 4);
  FastMadeSampler sampler(made, 5);
  Matrix before(5000, 4);
  sampler.sample(before);
  // Push the first conditional hard toward 1.
  made.parameters()[made.num_parameters() - 4] = 25.0;  // b2[0]
  Matrix after(5000, 4);
  sampler.sample(after);
  Real frequency = 0;
  for (std::size_t k = 0; k < after.rows(); ++k) frequency += after(k, 0);
  EXPECT_GT(frequency / Real(after.rows()), 0.99);
}

TEST(FastMadeSampler, AccountingMatchesAlgorithmOne) {
  Made made(7, 4);
  FastMadeSampler sampler(made, 6);
  Matrix out(16, 7);
  sampler.sample(out);
  EXPECT_EQ(sampler.statistics().forward_passes, 7u);
  EXPECT_TRUE(sampler.is_exact());
  EXPECT_EQ(sampler.name(), "AUTO-fast");
}

TEST(FastMadeSampler, WrongShapeRejected) {
  Made made(4, 3);
  FastMadeSampler sampler(made, 1);
  Matrix wrong(4, 5);
  EXPECT_THROW(sampler.sample(wrong), Error);
}

}  // namespace
}  // namespace vqmc
