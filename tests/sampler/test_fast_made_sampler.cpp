#include "sampler/fast_made_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <limits>

#include "hamiltonian/hamiltonian.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "sampler/diagnostics.hpp"
#include "telemetry/metrics_registry.hpp"

namespace vqmc {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.8, 0.8);
}

std::vector<Real> exact_distribution(const Made& made) {
  const std::size_t n = made.num_spins();
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  Vector lp(dim);
  made.log_psi(batch, lp.span());
  std::vector<Real> pi(dim);
  for (std::size_t i = 0; i < dim; ++i) pi[i] = std::exp(2 * lp[i]);
  return pi;
}

TEST(FastMadeSampler, MatchesBaselineSamplerBitForBit) {
  // Same seed, same Bernoulli-consumption order, conditionals equal up to
  // rounding: the two samplers should emit identical batches (a draw would
  // have to land within ~1 ulp of a conditional to differ).
  Made made(6, 9);
  randomize_parameters(made, 1);
  AutoregressiveSampler baseline(made, 7);
  FastMadeSampler fast(made, 7);
  Matrix a(512, 6), b(512, 6);
  baseline.sample(a);
  fast.sample(b);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    differing += a.data()[i] != b.data()[i] ? 1 : 0;
  EXPECT_EQ(differing, 0u);
}

TEST(FastMadeSampler, EmpiricalDistributionMatchesExactModel) {
  Made made(4, 6);
  randomize_parameters(made, 2);
  FastMadeSampler sampler(made, 3);
  const std::size_t draws = 20000;
  Matrix out(draws, 4);
  sampler.sample(out);
  EXPECT_LT(total_variation_distance(empirical_distribution(out),
                                     exact_distribution(made)),
            0.03);
}

TEST(FastMadeSampler, TracksParameterUpdatesBetweenCalls) {
  // Masked weights are re-materialized per call, so moving the parameters
  // must change the sampled distribution.
  Made made(4, 5);
  randomize_parameters(made, 4);
  FastMadeSampler sampler(made, 5);
  Matrix before(5000, 4);
  sampler.sample(before);
  // Push the first conditional hard toward 1.
  made.parameters()[made.num_parameters() - 4] = 25.0;  // b2[0]
  Matrix after(5000, 4);
  sampler.sample(after);
  Real frequency = 0;
  for (std::size_t k = 0; k < after.rows(); ++k) frequency += after(k, 0);
  EXPECT_GT(frequency / Real(after.rows()), 0.99);
}

TEST(FastMadeSampler, AccountingMatchesAlgorithmOne) {
  Made made(7, 4);
  FastMadeSampler sampler(made, 6);
  Matrix out(16, 7);
  sampler.sample(out);
  EXPECT_EQ(sampler.statistics().forward_passes, 7u);
  EXPECT_TRUE(sampler.is_exact());
  EXPECT_EQ(sampler.name(), "AUTO-fast");
}

TEST(FastMadeSampler, WrongShapeRejected) {
  Made made(4, 3);
  FastMadeSampler sampler(made, 1);
  Matrix wrong(4, 5);
  EXPECT_THROW(sampler.sample(wrong), Error);
}

TEST(FastMadeSampler, MatchesBaselineAcrossSizes) {
  // AUTO vs AUTO-fast under the batched conditional engine, across spin
  // counts from the minimum (MADE needs n >= 2) through n = 1000, with a
  // batch size that exercises both a full 4-row kernel tile and a tail row.
  for (const std::size_t n : {2ul, 7ul, 100ul, 300ul, 1000ul}) {
    Made made(n, 11);
    randomize_parameters(made, 1000 + n);
    AutoregressiveSampler baseline(made, 17);
    FastMadeSampler fast(made, 17);
    Matrix a(5, n), b(5, n);
    baseline.sample(a);
    fast.sample(b);
    std::size_t differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
      differing += a.data()[i] != b.data()[i] ? 1 : 0;
    EXPECT_EQ(differing, 0u) << "n = " << n;
  }
}

TEST(FastMadeSampler, WorkspaceVariantMatchesAndReuses) {
  // sample_ws with a caller-owned Made::Workspace must reproduce the plain
  // sample() stream exactly, including across repeated (reused) calls.
  Made made(9, 13);
  randomize_parameters(made, 6);
  FastMadeSampler plain(made, 23), with_ws(made, 23);
  Made::Workspace ws;
  Matrix a(37, 9), b(37, 9);
  for (int round = 0; round < 3; ++round) {
    plain.sample(a);
    with_ws.sample_ws(b, &ws);
    for (std::size_t i = 0; i < a.size(); ++i)
      ASSERT_EQ(a.data()[i], b.data()[i]) << "round " << round;
  }
}

TEST(FastMadeSampler, NonfiniteConditionalsClampedCountedAndBaselineExact) {
  // A NaN output bias makes every site-2 conditional NaN. The engine must
  // clamp those draws to an unbiased coin and count them — exactly like the
  // baseline sampler — instead of feeding NaN into bernoulli (which
  // compares false and silently biased every later site before this fix).
  constexpr std::size_t n = 8, h = 12, bs = 64;
  Made made(n, h);
  randomize_parameters(made, 7);
  made.parameters()[made.num_parameters() - n + 2] =  // b2[2]
      std::numeric_limits<Real>::quiet_NaN();

  AutoregressiveSampler baseline(made, 31);
  FastMadeSampler fast(made, 31);
  Matrix a(bs, n), b(bs, n);
  baseline.sample(a);
  fast.sample(b);
  EXPECT_EQ(baseline.statistics().nonfinite_rejections, bs);
  EXPECT_EQ(fast.statistics().nonfinite_rejections, bs);
  // Clamped draws are fair coins from the same stream position, so the two
  // samplers stay bit-identical even on a sick model.
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a.data()[i], b.data()[i]);
  // Site 2 still received draws (not stuck all-zero, the silent-bias mode).
  std::size_t ones_at_site2 = 0;
  for (std::size_t k = 0; k < bs; ++k) ones_at_site2 += b(k, 2) != 0 ? 1 : 0;
  EXPECT_GT(ones_at_site2, 0u);
  EXPECT_LT(ones_at_site2, bs);
}

TEST(FastMadeSampler, ClampConsumesExactlyOneUniformKeepingStreamAligned) {
  // The guard consumes the uniform either way, so the RNG stream position
  // after a batch is independent of whether any clamp fired — a healthy
  // run's stream is bit-identical to one where the guard never existed.
  constexpr std::size_t n = 6, h = 9, bs = 21;
  Made healthy(n, h);
  randomize_parameters(healthy, 8);
  Made sick(n, h);
  randomize_parameters(sick, 8);
  sick.parameters()[sick.num_parameters() - n + 1] =  // b2[1]
      std::numeric_limits<Real>::quiet_NaN();

  FastMadeSampler on_healthy(healthy, 57), on_sick(sick, 57);
  Matrix out(bs, n);
  on_healthy.sample(out);
  on_sick.sample(out);
  EXPECT_EQ(on_sick.statistics().nonfinite_rejections, bs);
  EXPECT_EQ(on_healthy.serialize_state(), on_sick.serialize_state());
}

TEST(FastMadeSampler, NonfiniteInstrumentCreatedUnconditionally) {
  // The cross-rank metrics merge requires every rank to expose the same
  // instrument set; the counter must exist (at zero) even when no clamp
  // ever fires on this rank.
  if (!telemetry::enabled()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedMetricsRegistry scope(registry);
  Made made(5, 6);
  randomize_parameters(made, 9);
  FastMadeSampler sampler(made, 11);
  Matrix out(8, 5);
  sampler.sample(out);
  bool found = false;
  for (const auto& counter : registry.snapshot().counters) {
    if (counter.name == "sampler.nonfinite_rejections") {
      found = true;
      EXPECT_EQ(counter.value, 0u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace vqmc
