#include "sampler/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/vector.hpp"

namespace vqmc {
namespace {

TEST(Diagnostics, AutocorrelationOfIidIsNearZero) {
  rng::Xoshiro256 gen(1);
  std::vector<Real> series(5000);
  for (Real& v : series) v = rng::normal(gen);
  const std::vector<Real> rho = autocorrelation(series, 10);
  ASSERT_EQ(rho.size(), 11u);
  EXPECT_NEAR(rho[0], 1.0, 1e-12);
  for (std::size_t lag = 1; lag <= 10; ++lag)
    EXPECT_LT(std::fabs(rho[lag]), 0.05) << "lag " << lag;
}

TEST(Diagnostics, AutocorrelationOfAr1MatchesTheory) {
  // AR(1) with coefficient phi has rho_k = phi^k.
  const Real phi = 0.8;
  rng::Xoshiro256 gen(2);
  std::vector<Real> series(50000);
  Real x = 0;
  for (Real& v : series) {
    x = phi * x + rng::normal(gen);
    v = x;
  }
  const std::vector<Real> rho = autocorrelation(series, 5);
  for (std::size_t lag = 1; lag <= 5; ++lag)
    EXPECT_NEAR(rho[lag], std::pow(phi, Real(lag)), 0.05);
}

TEST(Diagnostics, IntegratedTimeOfIidIsAboutOne) {
  rng::Xoshiro256 gen(3);
  std::vector<Real> series(20000);
  for (Real& v : series) v = rng::normal(gen);
  EXPECT_NEAR(integrated_autocorrelation_time(series, 100), 1.0, 0.2);
}

TEST(Diagnostics, EssShrinksForCorrelatedChains) {
  rng::Xoshiro256 gen(4);
  std::vector<Real> iid(10000), corr(10000);
  Real x = 0;
  for (std::size_t i = 0; i < iid.size(); ++i) {
    iid[i] = rng::normal(gen);
    x = 0.9 * x + rng::normal(gen);
    corr[i] = x;
  }
  EXPECT_GT(effective_sample_size(iid), 3 * effective_sample_size(corr));
}

TEST(Diagnostics, ConstantSeriesHasZeroAutocorrelationByConvention) {
  std::vector<Real> series(100, 3.0);
  const std::vector<Real> rho = autocorrelation(series, 5);
  for (std::size_t lag = 0; lag < rho.size(); ++lag) EXPECT_EQ(rho[lag], 0.0);
}

TEST(Diagnostics, EmpiricalDistributionCounts) {
  Matrix samples(4, 2);
  // Rows: 00, 01, 01, 11 -> indices 0, 1, 1, 3.
  samples(1, 1) = 1;
  samples(2, 1) = 1;
  samples(3, 0) = 1;
  samples(3, 1) = 1;
  const std::vector<Real> p = empirical_distribution(samples);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.50);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_DOUBLE_EQ(p[3], 0.25);
}

TEST(Diagnostics, TotalVariationBasics) {
  const std::vector<Real> p{0.5, 0.5}, q{0.5, 0.5}, r{1.0, 0.0};
  EXPECT_DOUBLE_EQ(total_variation_distance(p, q), 0.0);
  EXPECT_DOUBLE_EQ(total_variation_distance(p, r), 0.5);
  const std::vector<Real> bad{1.0};
  EXPECT_THROW(total_variation_distance(p, bad), Error);
}

TEST(Diagnostics, GelmanRubinNearOneForWellMixedChains) {
  rng::Xoshiro256 gen(11);
  std::vector<std::vector<Real>> chains(4, std::vector<Real>(2000));
  for (auto& chain : chains)
    for (Real& v : chain) v = rng::normal(gen);
  const Real rhat = gelman_rubin(chains);
  EXPECT_GT(rhat, 0.95);
  EXPECT_LT(rhat, 1.05);
}

TEST(Diagnostics, GelmanRubinFlagsUnmixedChains) {
  // Chains stuck in different modes: between-chain variance dominates.
  rng::Xoshiro256 gen(12);
  std::vector<std::vector<Real>> chains(3, std::vector<Real>(500));
  for (std::size_t c = 0; c < 3; ++c)
    for (Real& v : chains[c]) v = Real(10 * c) + 0.1 * rng::normal(gen);
  EXPECT_GT(gelman_rubin(chains), 3.0);
}

TEST(Diagnostics, GelmanRubinInputValidation) {
  std::vector<std::vector<Real>> one_chain(1, std::vector<Real>(10, 0.0));
  EXPECT_THROW(gelman_rubin(one_chain), Error);
  std::vector<std::vector<Real>> ragged = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(gelman_rubin(ragged), Error);
  std::vector<std::vector<Real>> constant(2, std::vector<Real>(10, 3.0));
  EXPECT_EQ(gelman_rubin(constant), 1.0);  // degenerate convention
}

TEST(Diagnostics, Eq14SpeedupIsOneForOneUnit) {
  EXPECT_DOUBLE_EQ(mcmc_parallel_speedup(100, 1, 10, 1), 1.0);
}

TEST(Diagnostics, Eq14SpeedupDegradesWithBurnIn) {
  // With no burn-in the speedup is ~L; with huge burn-in it collapses to ~1.
  const Real no_burn = mcmc_parallel_speedup(0, 1, 100, 8);
  const Real heavy_burn = mcmc_parallel_speedup(100000, 1, 100, 8);
  EXPECT_GT(no_burn, 7.0);
  EXPECT_LT(heavy_burn, 1.1);
}

TEST(Diagnostics, Eq14IsAffineInL) {
  // Eq. 14 states speedup = a + b L; check three collinear points.
  const std::size_t k = 300, j = 2, n = 50;
  const Real s1 = mcmc_parallel_speedup(k, j, n, 1);
  const Real s2 = mcmc_parallel_speedup(k, j, n, 2);
  const Real s3 = mcmc_parallel_speedup(k, j, n, 3);
  EXPECT_NEAR(s3 - s2, s2 - s1, 1e-12);
}

TEST(Diagnostics, AutoSpeedupIsExactlyLinear) {
  EXPECT_DOUBLE_EQ(auto_parallel_speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(auto_parallel_speedup(24), 24.0);
}

}  // namespace
}  // namespace vqmc
