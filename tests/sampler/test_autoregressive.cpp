#include "sampler/autoregressive_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/hamiltonian.hpp"
#include "nn/made.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/diagnostics.hpp"
#include "sampler/metropolis_sampler.hpp"

namespace vqmc {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.8, 0.8);
}

std::vector<Real> exact_distribution(const Made& made) {
  const std::size_t n = made.num_spins();
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  Vector lp(dim);
  made.log_psi(batch, lp.span());
  std::vector<Real> pi(dim);
  for (std::size_t i = 0; i < dim; ++i) pi[i] = std::exp(2 * lp[i]);
  return pi;
}

TEST(AutoSampler, OutputsAreBits) {
  Made made(6, 8);
  randomize_parameters(made, 1);
  AutoregressiveSampler sampler(made, 2);
  Matrix out(32, 6);
  sampler.sample(out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Real v = out.data()[i];
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(AutoSampler, ExactlyNForwardPassesPerBatch) {
  // The headline property (Figure 1): n forward passes independent of bs.
  Made made(7, 5);
  AutoregressiveSampler sampler(made, 3);
  Matrix small(4, 7), large(128, 7);
  sampler.sample(small);
  EXPECT_EQ(sampler.statistics().forward_passes, 7u);
  sampler.sample(large);
  EXPECT_EQ(sampler.statistics().forward_passes, 14u);
  EXPECT_EQ(sampler.statistics().proposals, 0u);
  EXPECT_TRUE(sampler.is_exact());
}

TEST(AutoSampler, EmpiricalDistributionMatchesExactModel) {
  // The defining correctness property of AUTO: samples are exact draws
  // from pi_theta. Compare the histogram against the enumerated
  // distribution in total variation.
  Made made(4, 6);
  randomize_parameters(made, 4);
  AutoregressiveSampler sampler(made, 5);
  const std::size_t draws = 20000;
  Matrix out(draws, 4);
  sampler.sample(out);
  const std::vector<Real> empirical = empirical_distribution(out);
  const std::vector<Real> exact = exact_distribution(made);
  // Expected TV for N draws over 16 cells is O(sqrt(16 / N)) ~ 0.02.
  EXPECT_LT(total_variation_distance(empirical, exact), 0.03);
}

TEST(AutoSampler, MarginalOfFirstSiteMatchesFirstConditional) {
  Made made(5, 7);
  randomize_parameters(made, 6);
  Matrix probe(1, 5);
  Matrix cond;
  made.conditionals(probe, cond);
  const Real p1 = cond(0, 0);

  AutoregressiveSampler sampler(made, 7);
  const std::size_t draws = 20000;
  Matrix out(draws, 5);
  sampler.sample(out);
  Real frequency = 0;
  for (std::size_t k = 0; k < draws; ++k) frequency += out(k, 0);
  frequency /= Real(draws);
  EXPECT_NEAR(frequency, p1, 0.02);
}

TEST(AutoSampler, DeterministicPerSeed) {
  Made made(5, 4);
  randomize_parameters(made, 8);
  AutoregressiveSampler a(made, 99), b(made, 99);
  Matrix xa(16, 5), xb(16, 5);
  a.sample(xa);
  b.sample(xb);
  for (std::size_t i = 0; i < xa.size(); ++i)
    EXPECT_EQ(xa.data()[i], xb.data()[i]);
}

TEST(AutoSampler, StatisticsResetWorks) {
  Made made(3, 2);
  AutoregressiveSampler sampler(made, 1);
  Matrix out(2, 3);
  sampler.sample(out);
  EXPECT_GT(sampler.statistics().forward_passes, 0u);
  sampler.reset_statistics();
  EXPECT_EQ(sampler.statistics().forward_passes, 0u);
}

TEST(AutoSampler, AgreesWithMcmcOnTheSameModel) {
  // AUTO and a long-burn-in MCMC chain on the same MADE must produce the
  // same distribution — the strongest cross-check between the two sampling
  // stacks, independent of any enumerated reference.
  Made made(4, 6);
  randomize_parameters(made, 40);
  const std::size_t draws = 20000;

  AutoregressiveSampler auto_sampler(made, 41);
  Matrix auto_out(draws, 4);
  auto_sampler.sample(auto_out);

  MetropolisConfig cfg;
  cfg.burn_in = 500;
  cfg.thinning = 2;
  cfg.seed = 42;
  MetropolisSampler mcmc(made, cfg);
  Matrix mcmc_out(draws, 4);
  mcmc.sample(mcmc_out);

  EXPECT_LT(total_variation_distance(empirical_distribution(auto_out),
                                     empirical_distribution(mcmc_out)),
            0.06);
}

TEST(AutoSampler, WrongShapeRejected) {
  Made made(4, 3);
  AutoregressiveSampler sampler(made, 1);
  Matrix wrong(4, 5);
  EXPECT_THROW(sampler.sample(wrong), Error);
}

TEST(AutoSampler, StateRoundTripResumesTheSampleStream) {
  Made made(5, 6);
  made.initialize(3);
  AutoregressiveSampler a(made, 7);
  AutoregressiveSampler b(made, 7);
  Matrix batch_a(8, 5);
  Matrix batch_b(8, 5);
  a.sample(batch_a);
  b.sample(batch_b);

  // Serialize a's mid-run RNG state into a differently seeded sampler; its
  // next batch must be bit-identical to the uninterrupted twin's.
  AutoregressiveSampler restored(made, 12345);
  restored.restore_state(a.serialize_state());
  restored.sample(batch_a);
  b.sample(batch_b);
  for (std::size_t k = 0; k < batch_a.rows(); ++k)
    for (std::size_t j = 0; j < batch_a.cols(); ++j)
      EXPECT_EQ(batch_a(k, j), batch_b(k, j));

  // Malformed payloads are rejected.
  EXPECT_THROW(restored.restore_state({1, 2, 3}), Error);
}

}  // namespace
}  // namespace vqmc
