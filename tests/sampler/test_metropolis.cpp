#include "sampler/metropolis_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/hamiltonian.hpp"
#include "nn/made.hpp"
#include "nn/rbm.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/diagnostics.hpp"

namespace vqmc {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed,
                          Real scale = 0.4) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -scale, scale);
}

std::vector<Real> born_distribution(const WavefunctionModel& model) {
  const std::size_t n = model.num_spins();
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  Vector lp(dim);
  model.log_psi(batch, lp.span());
  std::vector<Real> pi(dim);
  Real z = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    pi[i] = std::exp(2 * lp[i]);
    z += pi[i];
  }
  for (Real& p : pi) p /= z;
  return pi;
}

TEST(MetropolisSampler, PaperBurnInFormula) {
  EXPECT_EQ(paper_burn_in(100), 400u);
  EXPECT_EQ(paper_burn_in(500), 1600u);
}

TEST(MetropolisSampler, OutputsAreBits) {
  Rbm rbm(5, 5);
  randomize_parameters(rbm, 1);
  MetropolisConfig cfg;
  cfg.burn_in = 50;
  MetropolisSampler sampler(rbm, cfg);
  Matrix out(16, 5);
  sampler.sample(out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Real v = out.data()[i];
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(MetropolisSampler, ConvergesToBornDistributionOfRbm) {
  // Ergodicity check: long chains should approximate pi = psi^2 / Z.
  Rbm rbm(4, 4);
  randomize_parameters(rbm, 2);
  MetropolisConfig cfg;
  cfg.num_chains = 2;
  cfg.burn_in = 500;
  cfg.thinning = 2;
  cfg.seed = 3;
  MetropolisSampler sampler(rbm, cfg);
  const std::size_t draws = 20000;
  Matrix out(draws, 4);
  sampler.sample(out);
  const std::vector<Real> empirical = empirical_distribution(out);
  const std::vector<Real> exact = born_distribution(rbm);
  EXPECT_LT(total_variation_distance(empirical, exact), 0.05);
}

TEST(MetropolisSampler, WorksWithNormalizedModelsToo) {
  // MCMC only needs log-psi differences, so it also runs on MADE.
  Made made(4, 5);
  randomize_parameters(made, 4, 0.8);
  MetropolisConfig cfg;
  cfg.burn_in = 500;
  cfg.seed = 5;
  MetropolisSampler sampler(made, cfg);
  const std::size_t draws = 20000;
  Matrix out(draws, 4);
  sampler.sample(out);
  const std::vector<Real> empirical = empirical_distribution(out);
  const std::vector<Real> exact = born_distribution(made);
  EXPECT_LT(total_variation_distance(empirical, exact), 0.05);
}

TEST(MetropolisSampler, ForwardPassAccountingMatchesFigureOne) {
  // Per sample() call: 1 (restart eval) + burn_in + thinning * ceil(bs / c).
  Rbm rbm(6, 3);
  MetropolisConfig cfg;
  cfg.num_chains = 2;
  cfg.burn_in = 25;
  cfg.thinning = 3;
  MetropolisSampler sampler(rbm, cfg);
  Matrix out(10, 6);  // ceil(10 / 2) = 5 collection rounds
  sampler.sample(out);
  EXPECT_EQ(sampler.statistics().forward_passes, 1u + 25u + 3u * 5u);
}

TEST(MetropolisSampler, AcceptanceRateIsReasonable) {
  Rbm rbm(8, 8);
  randomize_parameters(rbm, 6);
  MetropolisConfig cfg;
  cfg.burn_in = 200;
  MetropolisSampler sampler(rbm, cfg);
  Matrix out(200, 8);
  sampler.sample(out);
  const double rate = sampler.statistics().acceptance_rate();
  EXPECT_GT(rate, 0.1);  // single-site flips on a mild landscape
  EXPECT_LE(rate, 1.0);
}

TEST(MetropolisSampler, PersistentChainsSkipReburn) {
  Rbm rbm(5, 4);
  MetropolisConfig cfg;
  cfg.burn_in = 100;
  cfg.persistent_chains = true;
  cfg.num_chains = 1;
  MetropolisSampler sampler(rbm, cfg);
  Matrix out(10, 5);
  sampler.sample(out);
  const std::uint64_t first = sampler.statistics().forward_passes;
  sampler.sample(out);
  const std::uint64_t second = sampler.statistics().forward_passes - first;
  // Second call: 1 re-evaluation + 10 collection steps, no burn-in.
  EXPECT_EQ(second, 11u);
}

TEST(MetropolisSampler, PersistentChainsRunConfiguredReburn) {
  Rbm rbm(5, 4);
  MetropolisConfig cfg;
  cfg.burn_in = 100;
  cfg.persistent_chains = true;
  cfg.reburn_in = 7;
  cfg.num_chains = 1;
  MetropolisSampler sampler(rbm, cfg);
  Matrix out(10, 5);
  sampler.sample(out);  // first call pays the full burn-in
  const std::uint64_t first = sampler.statistics().forward_passes;
  EXPECT_EQ(first, 1u + 100u + 10u);
  sampler.sample(out);
  const std::uint64_t second = sampler.statistics().forward_passes - first;
  // Second call: 1 re-evaluation + reburn_in re-equilibration + 10 collection.
  EXPECT_EQ(second, 1u + 7u + 10u);
}

TEST(MetropolisSampler, DeterministicPerSeed) {
  Rbm rbm(5, 5);
  randomize_parameters(rbm, 7);
  MetropolisConfig cfg;
  cfg.burn_in = 30;
  cfg.seed = 8;
  MetropolisSampler a(rbm, cfg), b(rbm, cfg);
  Matrix xa(12, 5), xb(12, 5);
  a.sample(xa);
  b.sample(xb);
  for (std::size_t i = 0; i < xa.size(); ++i)
    EXPECT_EQ(xa.data()[i], xb.data()[i]);
}

TEST(MetropolisSampler, PairExchangeConservesMagnetization) {
  Rbm rbm(8, 4);
  randomize_parameters(rbm, 8);
  MetropolisConfig cfg;
  cfg.proposal = ProposalKind::PairExchange;
  cfg.num_chains = 1;
  cfg.burn_in = 0;
  cfg.persistent_chains = true;
  cfg.seed = 9;
  MetropolisSampler sampler(rbm, cfg);
  Matrix out(200, 8);
  sampler.sample(out);
  // All kept states of the single persistent chain share one magnetization
  // (the chain's random start is mixed with overwhelming probability).
  auto magnetization = [&](std::size_t row) {
    Real m = 0;
    for (std::size_t j = 0; j < 8; ++j) m += out(row, j);
    return m;
  };
  const Real m0 = magnetization(0);
  if (m0 > 0 && m0 < 8) {  // swap moves apply; polarized would fall back
    for (std::size_t k = 1; k < out.rows(); ++k)
      ASSERT_EQ(magnetization(k), m0) << "row " << k;
  }
}

TEST(MetropolisSampler, PairExchangeStillSamplesCorrectlyWithinASector) {
  // For a product-Bernoulli RBM restricted to one magnetization sector, the
  // exchange chain must reproduce the conditional Born distribution. Use a
  // model whose distribution is symmetric under permutations within a
  // sector and simply verify the chain moves (acceptance > 0).
  Rbm rbm(6, 3);
  randomize_parameters(rbm, 10);
  MetropolisConfig cfg;
  cfg.proposal = ProposalKind::PairExchange;
  cfg.burn_in = 100;
  cfg.seed = 11;
  MetropolisSampler sampler(rbm, cfg);
  Matrix out(100, 6);
  sampler.sample(out);
  EXPECT_GT(sampler.statistics().acceptance_rate(), 0.05);
}

TEST(MetropolisSampler, InvalidConfigRejected) {
  Rbm rbm(4, 4);
  MetropolisConfig zero_chains;
  zero_chains.num_chains = 0;
  EXPECT_THROW(MetropolisSampler(rbm, zero_chains), Error);
  MetropolisConfig zero_thinning;
  zero_thinning.thinning = 0;
  EXPECT_THROW(MetropolisSampler(rbm, zero_thinning), Error);
}

TEST(MetropolisSampler, IsNotExact) {
  Rbm rbm(4, 4);
  MetropolisSampler sampler(rbm, {});
  EXPECT_FALSE(sampler.is_exact());
  EXPECT_EQ(sampler.name(), "MCMC");
}

TEST(MetropolisSampler, StateRoundTripResumesPersistentChains) {
  Made made(5, 6);
  made.initialize(8);
  MetropolisConfig cfg;
  cfg.num_chains = 2;
  cfg.burn_in = 20;
  cfg.persistent_chains = true;
  cfg.seed = 4;

  MetropolisSampler a(made, cfg);
  MetropolisSampler b(made, cfg);
  Matrix batch_a(6, 5);
  Matrix batch_b(6, 5);
  a.sample(batch_a);
  b.sample(batch_b);

  // A restored sampler must resume the chains (positions, log-psi values and
  // RNG stream) exactly where the checkpoint froze them.
  MetropolisConfig other = cfg;
  other.seed = 999;
  MetropolisSampler restored(made, other);
  restored.restore_state(a.serialize_state());
  restored.sample(batch_a);
  b.sample(batch_b);
  for (std::size_t k = 0; k < batch_a.rows(); ++k)
    for (std::size_t j = 0; j < batch_a.cols(); ++j)
      EXPECT_EQ(batch_a(k, j), batch_b(k, j));

  EXPECT_THROW(restored.restore_state({1, 2}), Error);
}

}  // namespace
}  // namespace vqmc
