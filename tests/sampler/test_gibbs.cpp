#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/hamiltonian.hpp"
#include "nn/rbm.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/diagnostics.hpp"
#include "sampler/metropolis_sampler.hpp"

namespace vqmc {
namespace {

void randomize_parameters(WavefunctionModel& model, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  for (Real& p : model.parameters()) p = rng::uniform(gen, -0.4, 0.4);
}

std::vector<Real> born_distribution(const WavefunctionModel& model) {
  const std::size_t n = model.num_spins();
  const std::size_t dim = std::size_t(1) << n;
  Matrix batch(dim, n);
  for (std::uint64_t idx = 0; idx < dim; ++idx)
    decode_basis_state(idx, batch.row(idx));
  Vector lp(dim);
  model.log_psi(batch, lp.span());
  std::vector<Real> pi(dim);
  Real z = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    pi[i] = std::exp(2 * lp[i]);
    z += pi[i];
  }
  for (Real& p : pi) p /= z;
  return pi;
}

TEST(GibbsSampler, NameReflectsAcceptanceRule) {
  Rbm rbm(4, 4);
  MetropolisConfig cfg;
  cfg.rule = AcceptanceRule::HeatBath;
  MetropolisSampler gibbs(rbm, cfg);
  EXPECT_EQ(gibbs.name(), "GIBBS");
  MetropolisSampler mh(rbm, {});
  EXPECT_EQ(mh.name(), "MCMC");
}

TEST(GibbsSampler, ConvergesToBornDistribution) {
  // Heat-bath acceptance leaves the same stationary distribution invariant
  // as Metropolis-Hastings.
  Rbm rbm(4, 4);
  randomize_parameters(rbm, 1);
  MetropolisConfig cfg;
  cfg.rule = AcceptanceRule::HeatBath;
  cfg.burn_in = 500;
  cfg.thinning = 2;
  cfg.seed = 2;
  MetropolisSampler sampler(rbm, cfg);
  const std::size_t draws = 20000;
  Matrix out(draws, 4);
  sampler.sample(out);
  const std::vector<Real> empirical = empirical_distribution(out);
  const std::vector<Real> exact = born_distribution(rbm);
  EXPECT_LT(total_variation_distance(empirical, exact), 0.05);
}

TEST(GibbsSampler, AcceptanceRateLowerThanMetropolis) {
  // Barker/heat-bath acceptance pi'/(pi + pi') is pointwise <= the MH rule
  // min(1, pi'/pi), so its average acceptance can only be lower.
  Rbm rbm(6, 6);
  randomize_parameters(rbm, 3);

  auto rate_for = [&](AcceptanceRule rule) {
    MetropolisConfig cfg;
    cfg.rule = rule;
    cfg.burn_in = 400;
    cfg.seed = 4;
    MetropolisSampler sampler(rbm, cfg);
    Matrix out(400, 6);
    sampler.sample(out);
    return sampler.statistics().acceptance_rate();
  };
  EXPECT_LE(rate_for(AcceptanceRule::HeatBath) - 0.02,
            rate_for(AcceptanceRule::MetropolisHastings));
}

TEST(GibbsSampler, DeterministicPerSeed) {
  Rbm rbm(5, 5);
  randomize_parameters(rbm, 5);
  MetropolisConfig cfg;
  cfg.rule = AcceptanceRule::HeatBath;
  cfg.burn_in = 40;
  cfg.seed = 6;
  MetropolisSampler a(rbm, cfg), b(rbm, cfg);
  Matrix xa(8, 5), xb(8, 5);
  a.sample(xa);
  b.sample(xb);
  for (std::size_t i = 0; i < xa.size(); ++i)
    EXPECT_EQ(xa.data()[i], xb.data()[i]);
}

}  // namespace
}  // namespace vqmc
