/// \file test_exposition.cpp
/// \brief StatusServer scrape protocol, per-rank endpoint derivation, group
/// aggregation with dead ranks, and concurrent scrape/mutate hammering
/// (DESIGN.md §5i).

#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "support/mini_json.hpp"
#include "telemetry/metrics_registry.hpp"

namespace vqmc::obs {
namespace {

std::string make_scratch_dir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "vqmc_obs_" + tag + "_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr)
    throw Error("test: mkdtemp failed for " + dir);
  return dir;
}

/// Provider over a caller-owned registry plus a couple of fields — the same
/// shape the trainer and serve CLIs wire up.
StatusProvider registry_provider(telemetry::MetricsRegistry& registry) {
  return [&registry] {
    StatusReport report;
    report.add_metrics(registry.snapshot());
    report.set_field("energy", -10.5);
    return report;
  };
}

TEST(RankEndpoint, DerivesPerRankSpecs) {
  EXPECT_EQ(rank_endpoint("unix:///tmp/obs.sock", 0), "unix:///tmp/obs.sock");
  EXPECT_EQ(rank_endpoint("unix:///tmp/obs.sock", 2),
            "unix:///tmp/obs.sock.r2");
  EXPECT_EQ(rank_endpoint("tcp://127.0.0.1:9100", 0), "tcp://127.0.0.1:9100");
  EXPECT_EQ(rank_endpoint("tcp://127.0.0.1:9100", 3), "tcp://127.0.0.1:9103");
  // Ephemeral ports cannot be derived for peers; spec errors are loud.
  EXPECT_THROW(rank_endpoint("tcp://127.0.0.1:0", 1), Error);
  EXPECT_THROW(rank_endpoint("http://host:80", 1), Error);
}

TEST(StatusServer, ServesEveryFormatOverTcp) {
  telemetry::MetricsRegistry registry;
  registry.counter("trainer.iterations").add(42);
  registry.gauge("serve.queue_depth").set(3);
  registry.histogram("comm.allreduce_wait_seconds").observe(0.002);

  // Ephemeral port: endpoint() reports the kernel-assigned one.
  StatusServer server({.endpoint = "tcp://127.0.0.1:0"},
                      registry_provider(registry));
  ASSERT_NE(server.endpoint(), "tcp://127.0.0.1:0");

  const std::string prom = fetch_status(server.endpoint(), "prom", 5.0);
  EXPECT_NE(prom.find("vqmc_up 1"), std::string::npos);
  EXPECT_NE(prom.find("vqmc_trainer_iterations{rank=\"0\"} 42"),
            std::string::npos);

  const vqmc::testing::JsonValue doc =
      vqmc::testing::parse_json(fetch_status(server.endpoint(), "json", 5.0));
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.at("ranks").array_value.size(), 1u);
  EXPECT_DOUBLE_EQ(doc.at("ranks")
                       .array_value[0]
                       .at("counters")
                       .at("trainer.iterations")
                       .number_value,
                   42.0);

  const std::string table = fetch_status(server.endpoint(), "table", 5.0);
  EXPECT_NE(table.find("rank"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);

  const std::vector<StatusReport> raw =
      decode_reports(fetch_status(server.endpoint(), "raw", 5.0));
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].find_counter("trainer.iterations")->value, 42u);
  EXPECT_DOUBLE_EQ(raw[0].field_double("energy"), -10.5);
}

TEST(StatusServer, ServesOverUnixSocketAndSurvivesSequentialScrapes) {
  const std::string dir = make_scratch_dir("unix");
  telemetry::MetricsRegistry registry;
  telemetry::Counter& scrapes = registry.counter("scrapes");
  StatusServer server({.endpoint = "unix://" + dir + "/obs.sock"},
                      registry_provider(registry));
  for (int i = 1; i <= 5; ++i) {
    scrapes.add();
    const std::string raw = fetch_status(server.endpoint(), "raw", 5.0);
    const std::vector<StatusReport> reports = decode_reports(raw);
    ASSERT_EQ(reports.size(), 1u);
    // Collect-on-demand: each scrape sees the registry's current value.
    EXPECT_EQ(reports[0].find_counter("scrapes")->value, std::uint64_t(i));
  }
}

TEST(StatusServer, RejectsUnknownFormatWithoutDying) {
  telemetry::MetricsRegistry registry;
  StatusServer server({.endpoint = "tcp://127.0.0.1:0"},
                      registry_provider(registry));
  // The server drops the bad client's connection; the recv side of the
  // scrape fails, but the next well-formed scrape still answers.
  EXPECT_THROW((void)fetch_status(server.endpoint(), "yaml", 2.0), Error);
  const std::string prom = fetch_status(server.endpoint(), "prom", 5.0);
  EXPECT_NE(prom.find("vqmc_up 1"), std::string::npos);
}

TEST(StatusServer, AggregatesTheGroupAndReportsDeadRanks) {
  const std::string dir = make_scratch_dir("group");
  const std::string base = "unix://" + dir + "/obs.sock";

  telemetry::MetricsRegistry reg0;
  telemetry::MetricsRegistry reg1;
  reg0.counter("trainer.iterations").add(10);
  reg1.counter("trainer.iterations").add(20);

  StatusServer rank0({.endpoint = rank_endpoint(base, 0),
                      .rank = 0,
                      .world = 2,
                      .group_base = base,
                      .pull_deadline_seconds = 0.5},
                     registry_provider(reg0));
  auto rank1 = std::make_unique<StatusServer>(
      StatusServerOptions{.endpoint = rank_endpoint(base, 1),
                          .rank = 1,
                          .world = 2},
      registry_provider(reg1));

  // One scrape of the base endpoint exposes both ranks.
  {
    const vqmc::testing::JsonValue doc =
        vqmc::testing::parse_json(fetch_status(base, "json", 5.0));
    const auto& ranks = doc.at("ranks").array_value;
    ASSERT_EQ(ranks.size(), 2u);
    EXPECT_DOUBLE_EQ(ranks[0].at("reachable").number_value, 1.0);
    EXPECT_DOUBLE_EQ(ranks[1].at("reachable").number_value, 1.0);
    EXPECT_DOUBLE_EQ(
        ranks[0].at("counters").at("trainer.iterations").number_value, 10.0);
    EXPECT_DOUBLE_EQ(
        ranks[1].at("counters").at("trainer.iterations").number_value, 20.0);
  }

  // Kill rank 1: the group scrape still succeeds, the dead rank is data.
  rank1.reset();
  {
    const vqmc::testing::JsonValue doc =
        vqmc::testing::parse_json(fetch_status(base, "json", 5.0));
    const auto& ranks = doc.at("ranks").array_value;
    ASSERT_EQ(ranks.size(), 2u);
    EXPECT_DOUBLE_EQ(ranks[0].at("reachable").number_value, 1.0);
    EXPECT_DOUBLE_EQ(ranks[1].at("reachable").number_value, 0.0);
    const std::string prom = fetch_status(base, "prom", 5.0);
    EXPECT_NE(prom.find("vqmc_rank_reachable{rank=\"1\"} 0"),
              std::string::npos);
  }
}

TEST(StatusServer, ConcurrentScrapesWhileTrainingMutatesTheRegistry) {
  // The TSan-facing test: 8 scraper threads hammer the snapshot path while
  // a "trainer" thread mutates every instrument kind. Failures here are
  // data races in MetricsRegistry::snapshot() vs add/set/observe, or frame
  // handling bugs under connection churn.
  telemetry::MetricsRegistry registry;
  telemetry::Counter& iterations = registry.counter("trainer.iterations");
  telemetry::Gauge& queue = registry.gauge("serve.queue_depth");
  telemetry::Histogram& wait =
      registry.histogram("comm.allreduce_wait_seconds");

  StatusServer server({.endpoint = "tcp://127.0.0.1:0"},
                      registry_provider(registry));

  std::atomic<bool> stop{false};
  std::thread trainer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      iterations.add();
      queue.set(double(i % 17));
      wait.observe(1e-4 * double(1 + i % 50));
      ++i;
    }
  });

  constexpr int kScrapers = 8;
  constexpr int kScrapesEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int t = 0; t < kScrapers; ++t)
    scrapers.emplace_back([&, t] {
      const char* formats[] = {"prom", "json", "raw", "table"};
      for (int i = 0; i < kScrapesEach; ++i) {
        try {
          const std::string body = fetch_status(
              server.endpoint(), formats[(t + i) % 4], /*deadline=*/10.0);
          if (body.empty()) failures.fetch_add(1);
        } catch (const Error&) {
          failures.fetch_add(1);
        }
      }
    });
  for (std::thread& s : scrapers) s.join();
  stop.store(true);
  trainer.join();

  EXPECT_EQ(failures.load(), 0);
  // The registry survived: one final consistent scrape.
  const std::string prom = fetch_status(server.endpoint(), "prom", 5.0);
  EXPECT_NE(prom.find("vqmc_trainer_iterations"), std::string::npos);
}

TEST(StatusServer, StopIsIdempotentAndReleasesTheEndpoint) {
  const std::string dir = make_scratch_dir("stop");
  const std::string endpoint = "unix://" + dir + "/obs.sock";
  telemetry::MetricsRegistry registry;
  {
    StatusServer server({.endpoint = endpoint}, registry_provider(registry));
    (void)fetch_status(server.endpoint(), "raw", 5.0);
    server.stop();
    server.stop();
  }
  // A second server can bind the same unix path after the first released it.
  StatusServer again({.endpoint = endpoint}, registry_provider(registry));
  const std::vector<StatusReport> reports =
      decode_reports(fetch_status(again.endpoint(), "raw", 5.0));
  EXPECT_EQ(reports.size(), 1u);
}

}  // namespace
}  // namespace vqmc::obs
