/// \file test_status_report.cpp
/// \brief StatusReport wire encoding round-trip and the three renderers
/// (DESIGN.md §5i).

#include "obs/status_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "support/mini_json.hpp"
#include "telemetry/metrics_registry.hpp"

namespace vqmc::obs {
namespace {

StatusReport sample_report(int rank, int world) {
  telemetry::MetricsRegistry registry;
  registry.counter("trainer.iterations").add(500);
  registry.counter("trainer.guard_trips").add(2);
  registry.gauge("serve.queue_depth").set(12);
  for (int i = 0; i < 100; ++i)
    registry.histogram("comm.allreduce_wait_seconds").observe(2e-3);

  StatusReport report;
  report.rank = rank;
  report.world = world;
  report.add_metrics(registry.snapshot());
  report.set_field("energy", -21.948);
  report.set_field("state", "healthy");
  return report;
}

TEST(StatusReport, EncodeDecodeRoundTripsExactly) {
  const StatusReport original = sample_report(2, 4);
  const std::string text = original.encode();
  // Header + terminator frame the line-oriented payload.
  EXPECT_EQ(text.rfind("vqmc-status 1\n", 0), 0u);
  EXPECT_NE(text.find("\nend\n"), std::string::npos);

  const std::vector<StatusReport> decoded = decode_reports(text);
  ASSERT_EQ(decoded.size(), 1u);
  const StatusReport& r = decoded[0];
  EXPECT_EQ(r.rank, 2);
  EXPECT_EQ(r.world, 4);
  ASSERT_NE(r.find_counter("trainer.iterations"), nullptr);
  EXPECT_EQ(r.find_counter("trainer.iterations")->value, 500u);
  ASSERT_NE(r.find_gauge("serve.queue_depth"), nullptr);
  EXPECT_DOUBLE_EQ(r.find_gauge("serve.queue_depth")->value, 12.0);
  const StatusHistogram* h = r.find_histogram("comm.allreduce_wait_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 100u);
  const StatusHistogram* orig =
      original.find_histogram("comm.allreduce_wait_seconds");
  EXPECT_DOUBLE_EQ(h->sum, orig->sum);
  EXPECT_DOUBLE_EQ(h->p50, orig->p50);
  EXPECT_DOUBLE_EQ(h->p99, orig->p99);
  EXPECT_EQ(r.field("state"), "healthy");
  EXPECT_DOUBLE_EQ(r.field_double("energy"), -21.948);
  EXPECT_EQ(r.field("missing"), "");
  EXPECT_DOUBLE_EQ(r.field_double("missing", -1.0), -1.0);
}

TEST(StatusReport, DecodeParsesConcatenatedReports) {
  const std::string text =
      sample_report(0, 2).encode() + sample_report(1, 2).encode();
  const std::vector<StatusReport> decoded = decode_reports(text);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].rank, 0);
  EXPECT_EQ(decoded[1].rank, 1);
}

TEST(StatusReport, DecodeRejectsMalformedPayloads) {
  EXPECT_THROW(decode_reports("not-a-status 1\nend\n"), Error);
  EXPECT_THROW(decode_reports("vqmc-status 2\nend\n"), Error);
  // Truncated: no `end` terminator.
  EXPECT_THROW(decode_reports("vqmc-status 1\nfield rank 0\n"), Error);
}

TEST(StatusReport, SetFieldOverwritesInPlace) {
  StatusReport report;
  report.set_field("energy", 1.0);
  report.set_field("energy", 2.0);
  ASSERT_EQ(report.fields.size(), 1u);
  EXPECT_DOUBLE_EQ(report.field_double("energy"), 2.0);
}

TEST(PrometheusName, SanitizesAndPrefixes) {
  EXPECT_EQ(prometheus_name("trainer.iterations"), "vqmc_trainer_iterations");
  EXPECT_EQ(prometheus_name("comm.allreduce_wait_seconds"),
            "vqmc_comm_allreduce_wait_seconds");
  EXPECT_EQ(prometheus_name("weird-name!x"), "vqmc_weird_name_x");
}

GroupStatus sample_group() {
  GroupStatus group;
  group.world = 3;
  for (int r = 0; r < 3; ++r) {
    group.ranks.push_back(sample_report(r, 3));
    group.reachable.push_back(r == 1 ? 0 : 1);
  }
  // Rank 1 is a placeholder for an unreachable peer.
  group.ranks[1] = StatusReport{};
  group.ranks[1].rank = 1;
  group.ranks[1].world = 3;
  return group;
}

TEST(RenderPrometheus, EmitsWellFormedRankLabeledSeries) {
  const std::string text = render_prometheus(sample_group());
  EXPECT_NE(text.find("vqmc_up 1\n"), std::string::npos);
  EXPECT_NE(text.find("vqmc_rank_reachable{rank=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_rank_reachable{rank=\"1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vqmc_trainer_iterations counter"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_trainer_iterations{rank=\"0\"} 500"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_trainer_iterations{rank=\"2\"} 500"),
            std::string::npos);
  // The unreachable rank contributes no metric series.
  EXPECT_EQ(text.find("vqmc_trainer_iterations{rank=\"1\"}"),
            std::string::npos);
  // Histogram summaries expose quantile series plus _sum/_count.
  EXPECT_NE(
      text.find(
          "vqmc_comm_allreduce_wait_seconds{rank=\"0\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("vqmc_comm_allreduce_wait_seconds_count{rank=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_comm_allreduce_wait_seconds_sum{rank=\"0\"}"),
            std::string::npos);
  // Every non-comment line is `name{labels} value` or `name value`.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);  // text ends with a newline
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("vqmc_", 0), 0u) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(RenderJson, ParsesAndCarriesPerRankReachability) {
  const vqmc::testing::JsonValue doc =
      vqmc::testing::parse_json(render_json(sample_group()));
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("world").number_value, 3.0);
  const auto& ranks = doc.at("ranks").array_value;
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(ranks[0].at("rank").number_value, 0.0);
  EXPECT_DOUBLE_EQ(ranks[0].at("reachable").number_value, 1.0);
  EXPECT_DOUBLE_EQ(ranks[1].at("reachable").number_value, 0.0);
  EXPECT_DOUBLE_EQ(
      ranks[2].at("counters").at("trainer.iterations").number_value, 500.0);
}

TEST(RenderTable, OneRowPerRankAndDownMarkers) {
  const std::string text = render_table(sample_group());
  // Three data rows plus a header; the dead rank is marked DOWN.
  EXPECT_NE(text.find("rank"), std::string::npos);
  EXPECT_NE(text.find("DOWN"), std::string::npos);
  int lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_GE(lines, 4);
}

TEST(GroupStatus, SingleWrapsOneReachableReport) {
  const GroupStatus group = GroupStatus::single(sample_report(0, 1));
  EXPECT_EQ(group.world, 1);
  ASSERT_EQ(group.ranks.size(), 1u);
  ASSERT_EQ(group.reachable.size(), 1u);
  EXPECT_EQ(group.reachable[0], 1);
  const std::string prom = render_prometheus(group);
  EXPECT_NE(prom.find("vqmc_up 1"), std::string::npos);
}

}  // namespace
}  // namespace vqmc::obs
