/// \file test_status_report.cpp
/// \brief StatusReport wire encoding round-trip and the three renderers
/// (DESIGN.md §5i).

#include "obs/status_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "support/mini_json.hpp"
#include "telemetry/metrics_registry.hpp"

namespace vqmc::obs {
namespace {

StatusReport sample_report(int rank, int world) {
  telemetry::MetricsRegistry registry;
  registry.counter("trainer.iterations").add(500);
  registry.counter("trainer.guard_trips").add(2);
  registry.gauge("serve.queue_depth").set(12);
  for (int i = 0; i < 100; ++i)
    registry.histogram("comm.allreduce_wait_seconds").observe(2e-3);

  StatusReport report;
  report.rank = rank;
  report.world = world;
  report.add_metrics(registry.snapshot());
  report.set_field("energy", -21.948);
  report.set_field("state", "healthy");
  return report;
}

TEST(StatusReport, EncodeDecodeRoundTripsExactly) {
  const StatusReport original = sample_report(2, 4);
  const std::string text = original.encode();
  // Header + terminator frame the line-oriented payload.
  EXPECT_EQ(text.rfind("vqmc-status 1\n", 0), 0u);
  EXPECT_NE(text.find("\nend\n"), std::string::npos);

  const std::vector<StatusReport> decoded = decode_reports(text);
  ASSERT_EQ(decoded.size(), 1u);
  const StatusReport& r = decoded[0];
  EXPECT_EQ(r.rank, 2);
  EXPECT_EQ(r.world, 4);
  ASSERT_NE(r.find_counter("trainer.iterations"), nullptr);
  EXPECT_EQ(r.find_counter("trainer.iterations")->value, 500u);
  ASSERT_NE(r.find_gauge("serve.queue_depth"), nullptr);
  EXPECT_DOUBLE_EQ(r.find_gauge("serve.queue_depth")->value, 12.0);
  const StatusHistogram* h = r.find_histogram("comm.allreduce_wait_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 100u);
  const StatusHistogram* orig =
      original.find_histogram("comm.allreduce_wait_seconds");
  EXPECT_DOUBLE_EQ(h->sum, orig->sum);
  EXPECT_DOUBLE_EQ(h->p50, orig->p50);
  EXPECT_DOUBLE_EQ(h->p99, orig->p99);
  EXPECT_EQ(r.field("state"), "healthy");
  EXPECT_DOUBLE_EQ(r.field_double("energy"), -21.948);
  EXPECT_EQ(r.field("missing"), "");
  EXPECT_DOUBLE_EQ(r.field_double("missing", -1.0), -1.0);
}

TEST(StatusReport, DecodeParsesConcatenatedReports) {
  const std::string text =
      sample_report(0, 2).encode() + sample_report(1, 2).encode();
  const std::vector<StatusReport> decoded = decode_reports(text);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].rank, 0);
  EXPECT_EQ(decoded[1].rank, 1);
}

TEST(StatusReport, DecodeRejectsMalformedPayloads) {
  EXPECT_THROW(decode_reports("not-a-status 1\nend\n"), Error);
  EXPECT_THROW(decode_reports("vqmc-status 2\nend\n"), Error);
  // Truncated: no `end` terminator.
  EXPECT_THROW(decode_reports("vqmc-status 1\nfield rank 0\n"), Error);
}

TEST(StatusReport, SetFieldOverwritesInPlace) {
  StatusReport report;
  report.set_field("energy", 1.0);
  report.set_field("energy", 2.0);
  ASSERT_EQ(report.fields.size(), 1u);
  EXPECT_DOUBLE_EQ(report.field_double("energy"), 2.0);
}

TEST(PrometheusName, SanitizesAndPrefixes) {
  EXPECT_EQ(prometheus_name("trainer.iterations"), "vqmc_trainer_iterations");
  EXPECT_EQ(prometheus_name("comm.allreduce_wait_seconds"),
            "vqmc_comm_allreduce_wait_seconds");
  EXPECT_EQ(prometheus_name("weird-name!x"), "vqmc_weird_name_x");
}

GroupStatus sample_group() {
  GroupStatus group;
  group.world = 3;
  for (int r = 0; r < 3; ++r) {
    group.ranks.push_back(sample_report(r, 3));
    group.reachable.push_back(r == 1 ? 0 : 1);
  }
  // Rank 1 is a placeholder for an unreachable peer.
  group.ranks[1] = StatusReport{};
  group.ranks[1].rank = 1;
  group.ranks[1].world = 3;
  return group;
}

TEST(RenderPrometheus, EmitsWellFormedRankLabeledSeries) {
  const std::string text = render_prometheus(sample_group());
  EXPECT_NE(text.find("vqmc_up 1\n"), std::string::npos);
  EXPECT_NE(text.find("vqmc_rank_reachable{rank=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_rank_reachable{rank=\"1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vqmc_trainer_iterations counter"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_trainer_iterations{rank=\"0\"} 500"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_trainer_iterations{rank=\"2\"} 500"),
            std::string::npos);
  // The unreachable rank contributes no metric series.
  EXPECT_EQ(text.find("vqmc_trainer_iterations{rank=\"1\"}"),
            std::string::npos);
  // Histogram summaries expose quantile series plus _sum/_count.
  EXPECT_NE(
      text.find(
          "vqmc_comm_allreduce_wait_seconds{rank=\"0\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("vqmc_comm_allreduce_wait_seconds_count{rank=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_comm_allreduce_wait_seconds_sum{rank=\"0\"}"),
            std::string::npos);
  // Every non-comment line is `name{labels} value` or `name value`.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);  // text ends with a newline
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("vqmc_", 0), 0u) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(SplitMetricName, SeparatesEmbeddedLabelBodies) {
  const SplitMetricName plain = split_metric_name("serve.submitted");
  EXPECT_EQ(plain.base, "serve.submitted");
  EXPECT_EQ(plain.labels, "");
  const SplitMetricName labeled =
      split_metric_name("serve.model.submitted{model=\"m0\"}");
  EXPECT_EQ(labeled.base, "serve.model.submitted");
  EXPECT_EQ(labeled.labels, "model=\"m0\"");
  // A brace without the closing '}' is not a label body — keep it verbatim
  // (prometheus_name will sanitize it away).
  const SplitMetricName odd = split_metric_name("weird{half");
  EXPECT_EQ(odd.base, "weird{half");
  EXPECT_EQ(odd.labels, "");
}

TEST(RenderPrometheus, MergesEmbeddedLabelsWithRankAndGroupsFamilies) {
  telemetry::MetricsRegistry registry;
  using telemetry::labeled_name;
  registry.counter(labeled_name("serve.model.submitted", {{"model", "m0"}}))
      .add(7);
  registry.counter(labeled_name("serve.model.submitted", {{"model", "m1"}}))
      .add(9);
  registry
      .counter(labeled_name("serve.tenant.quota_rejected",
                            {{"tenant", "alice"}}))
      .add(3);
  for (int i = 0; i < 8; ++i)
    registry
        .histogram(
            labeled_name("serve.lane.latency_seconds", {{"lane", "batch"}}))
        .observe(1e-3);

  StatusReport report;
  report.rank = 0;
  report.world = 1;
  report.add_metrics(registry.snapshot());
  const std::string text =
      render_prometheus(GroupStatus::single(std::move(report)));

  // Embedded labels merge with the rank label into one series.
  EXPECT_NE(text.find(
                "vqmc_serve_model_submitted{rank=\"0\",model=\"m0\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find(
                "vqmc_serve_model_submitted{rank=\"0\",model=\"m1\"} 9"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "vqmc_serve_tenant_quota_rejected{rank=\"0\",tenant=\"alice\"} 3"),
      std::string::npos);
  // One TYPE header per *base* family even with several labeled members.
  const std::string type_line = "# TYPE vqmc_serve_model_submitted counter";
  const std::size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
  // Labeled histograms keep the quantile/_sum/_count structure.
  EXPECT_NE(text.find("# TYPE vqmc_serve_lane_latency_seconds summary"),
            std::string::npos);
  EXPECT_NE(
      text.find("vqmc_serve_lane_latency_seconds{rank=\"0\",lane=\"batch\","
                "quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find(
                "vqmc_serve_lane_latency_seconds_count{rank=\"0\","
                "lane=\"batch\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("vqmc_serve_lane_latency_seconds_sum{rank=\"0\","
                      "lane=\"batch\"}"),
            std::string::npos);
}

TEST(RenderJson, ParsesAndCarriesPerRankReachability) {
  const vqmc::testing::JsonValue doc =
      vqmc::testing::parse_json(render_json(sample_group()));
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("world").number_value, 3.0);
  const auto& ranks = doc.at("ranks").array_value;
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(ranks[0].at("rank").number_value, 0.0);
  EXPECT_DOUBLE_EQ(ranks[0].at("reachable").number_value, 1.0);
  EXPECT_DOUBLE_EQ(ranks[1].at("reachable").number_value, 0.0);
  EXPECT_DOUBLE_EQ(
      ranks[2].at("counters").at("trainer.iterations").number_value, 500.0);
}

TEST(RenderTable, OneRowPerRankAndDownMarkers) {
  const std::string text = render_table(sample_group());
  // Three data rows plus a header; the dead rank is marked DOWN.
  EXPECT_NE(text.find("rank"), std::string::npos);
  EXPECT_NE(text.find("DOWN"), std::string::npos);
  int lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_GE(lines, 4);
}

TEST(GroupStatus, SingleWrapsOneReachableReport) {
  const GroupStatus group = GroupStatus::single(sample_report(0, 1));
  EXPECT_EQ(group.world, 1);
  ASSERT_EQ(group.ranks.size(), 1u);
  ASSERT_EQ(group.reachable.size(), 1u);
  EXPECT_EQ(group.reachable[0], 1);
  const std::string prom = render_prometheus(group);
  EXPECT_NE(prom.find("vqmc_up 1"), std::string::npos);
}

}  // namespace
}  // namespace vqmc::obs
