#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/philox.hpp"
#include "rng/splitmix.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc::rng {
namespace {

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the public-domain implementation.
  SplitMix64 g(0);
  EXPECT_EQ(g(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(g(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(g(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro256, JumpProducesDisjointPrefix) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  b.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.count(b()));
}

TEST(Xoshiro256, StreamFactoryMatchesManualJumps) {
  Xoshiro256 manual(9);
  manual.jump();
  manual.jump();
  Xoshiro256 stream = Xoshiro256::stream(9, 2);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(manual(), stream());
}

TEST(Xoshiro256, BitsLookUniform) {
  Xoshiro256 g(77);
  // Every bit position should be set roughly half the time.
  std::vector<int> ones(64, 0);
  const int draws = 4096;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = g();
    for (int b = 0; b < 64; ++b) ones[b] += int((v >> b) & 1u);
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(ones[b], draws / 2 - 300) << "bit " << b;
    EXPECT_LT(ones[b], draws / 2 + 300) << "bit " << b;
  }
}

TEST(Philox, StatelessEvaluationIsAFunctionOfKeyAndCounter) {
  const auto a = Philox4x32::at(42, 0, 7);
  const auto b = Philox4x32::at(42, 0, 7);
  EXPECT_EQ(a, b);
  const auto c = Philox4x32::at(42, 0, 8);
  EXPECT_NE(a, c);
  const auto d = Philox4x32::at(43, 0, 7);
  EXPECT_NE(a, d);
}

TEST(Philox, SequentialMatchesStateless) {
  Philox4x32 g(99);
  g.set_counter(0, 0);
  const auto block0 = Philox4x32::at(99, 0, 0);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(g(), block0[std::size_t(i)]);
  const auto block1 = Philox4x32::at(99, 0, 1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(g(), block1[std::size_t(i)]);
}

TEST(Philox, CounterCarryPropagates) {
  Philox4x32 g(5);
  g.set_counter(0, ~std::uint64_t{0});  // lo at max: next block wraps into hi
  for (int i = 0; i < 4; ++i) (void)g();  // consume block at lo = max
  const auto next = Philox4x32::at(5, 1, 0);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(g(), next[std::size_t(i)]);
}

TEST(Philox, NextU64CombinesTwoWords) {
  Philox4x32 g(11);
  g.set_counter(0, 0);
  const auto block = Philox4x32::at(11, 0, 0);
  const std::uint64_t expected =
      (std::uint64_t(block[1]) << 32) | std::uint64_t(block[0]);
  EXPECT_EQ(g.next_u64(), expected);
}

TEST(Xoshiro256, StateRoundTripResumesTheStream) {
  Xoshiro256 g(99);
  for (int i = 0; i < 10; ++i) g();
  const auto mid = g.state();
  std::vector<std::uint64_t> tail;
  for (int i = 0; i < 8; ++i) tail.push_back(g());

  Xoshiro256 restored(1234567);  // different seed; state overrides it
  restored.set_state(mid);
  for (std::uint64_t expected : tail) EXPECT_EQ(restored(), expected);
}

TEST(Philox4x32, StateRoundTripResumesTheStream) {
  Philox4x32 g(0xfeedULL);
  g();  // leave the generator mid-block so the buffer index matters too
  const auto mid = g.state();
  std::vector<std::uint32_t> tail;
  for (int i = 0; i < 9; ++i) tail.push_back(g());

  Philox4x32 restored(0x1ULL);
  restored.set_state(mid);
  for (std::uint32_t expected : tail) EXPECT_EQ(restored(), expected);
}

}  // namespace
}  // namespace vqmc::rng
