#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc::rng {
namespace {

TEST(Distributions, Uniform01InRange) {
  Xoshiro256 g(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(g);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Distributions, Uniform01WorksWith32BitGenerators) {
  Philox4x32 g(3);
  double mean = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const double u = uniform01(g);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= draws;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Distributions, UniformRangeRespected) {
  Xoshiro256 g(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = uniform(g, -1.0, 1.0);
    ASSERT_GE(u, -1.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Distributions, UniformMeanAndVariance) {
  Xoshiro256 g(5);
  const int draws = 100000;
  double mean = 0, m2 = 0;
  for (int i = 0; i < draws; ++i) {
    const double u = uniform(g, 0.0, 1.0);
    mean += u;
    m2 += u * u;
  }
  mean /= draws;
  m2 /= draws;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(m2 - mean * mean, 1.0 / 12.0, 5e-3);
}

TEST(Distributions, UniformIndexUnbiasedOverSmallRange) {
  Xoshiro256 g(6);
  std::vector<int> counts(5, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[uniform_index(g, 5)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 5 - 600);
    EXPECT_LT(c, draws / 5 + 600);
  }
}

TEST(Distributions, UniformIndexZeroRange) {
  Xoshiro256 g(6);
  EXPECT_EQ(uniform_index(g, 0), 0u);
  EXPECT_EQ(uniform_index(g, 1), 0u);
}

TEST(Distributions, BernoulliFrequency) {
  Xoshiro256 g(7);
  int hits = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) hits += bernoulli(g, 0.25) ? 1 : 0;
  EXPECT_NEAR(double(hits) / draws, 0.25, 0.01);
}

TEST(Distributions, NormalMomentsMatch) {
  Xoshiro256 g(8);
  const int draws = 100000;
  double mean = 0, m2 = 0;
  for (int i = 0; i < draws; ++i) {
    const double z = normal(g);
    mean += z;
    m2 += z * z;
  }
  mean /= draws;
  m2 /= draws;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(m2, 1.0, 0.03);
}

TEST(Distributions, NormalShiftScale) {
  Xoshiro256 g(9);
  const int draws = 50000;
  double mean = 0;
  for (int i = 0; i < draws; ++i) mean += normal(g, 3.0, 0.5);
  mean /= draws;
  EXPECT_NEAR(mean, 3.0, 0.02);
}

TEST(Distributions, PhiloxUniformPassesChiSquare) {
  // 16-bin chi-square goodness-of-fit for Philox-driven uniform01.
  // 99.9th percentile of chi2 with 15 dof is ~37.7; use 45 for slack.
  Philox4x32 gen(2024);
  constexpr int kBins = 16;
  constexpr int kDraws = 64000;
  int counts[kBins] = {};
  for (int i = 0; i < kDraws; ++i) {
    const double u = uniform01(gen);
    ++counts[std::min(kBins - 1, int(u * kBins))];
  }
  const double expected = double(kDraws) / kBins;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 45.0);
}

TEST(Distributions, XoshiroPairsAreDecorrelated) {
  // Serial correlation of consecutive uniforms should vanish.
  Xoshiro256 gen(31337);
  const int draws = 100000;
  double prev = uniform01(gen);
  double sum_xy = 0, sum_x = 0, sum_x2 = 0;
  for (int i = 0; i < draws; ++i) {
    const double u = uniform01(gen);
    sum_xy += prev * u;
    sum_x += prev;
    sum_x2 += prev * prev;
    prev = u;
  }
  const double mean_x = sum_x / draws;
  const double cov = sum_xy / draws - mean_x * mean_x;
  const double var = sum_x2 / draws - mean_x * mean_x;
  EXPECT_LT(std::fabs(cov / var), 0.02);
}

}  // namespace
}  // namespace vqmc::rng
