// Tests for the socket-backed multi-process communicator: wire protocol
// framing, rendezvous, collectives, hierarchical reduction, graceful leave,
// real process death (fork + SIGKILL) and the shrink-vs-abort policy.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "parallel/process_faults.hpp"
#include "parallel/socket_communicator.hpp"
#include "parallel/wire_protocol.hpp"

namespace vqmc::parallel {
namespace {

std::string fresh_unix_endpoint(const char* tag) {
  static std::atomic<unsigned> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string("unix://") + (tmpdir ? tmpdir : "/tmp") + "/vqmc_test_" +
         tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(WireProtocol, FrameRoundTripOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  wire::Socket a(fds[0]);
  wire::Socket b(fds[1]);

  const std::vector<Real> payload = {1.5, -2.25, 3.0e17, 0.0};
  std::vector<unsigned char> bytes;
  wire::encode_reals(bytes, payload.data(), payload.size());
  ASSERT_TRUE(wire::send_frame(a, wire::FrameType::kContrib, 42, bytes.data(),
                               bytes.size(), 5.0));

  wire::Frame frame;
  ASSERT_TRUE(wire::recv_frame(b, frame, 5.0));
  EXPECT_EQ(frame.type, wire::FrameType::kContrib);
  EXPECT_EQ(frame.seq, 42u);
  std::vector<Real> decoded(payload.size());
  std::size_t offset = 0;
  wire::decode_reals(frame.payload, offset, decoded.data(), decoded.size());
  EXPECT_EQ(decoded, payload);
}

TEST(WireProtocol, EofReportsPeerDeathNotError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  wire::Socket a(fds[0]);
  wire::Socket b(fds[1]);
  a.close();
  wire::Frame frame;
  EXPECT_FALSE(wire::recv_frame(b, frame, 5.0));
}

TEST(WireProtocol, RecvDeadlineThrowsCommTimeout) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  wire::Socket a(fds[0]);
  wire::Socket b(fds[1]);
  wire::Frame frame;
  EXPECT_THROW((void)wire::recv_frame(b, frame, 0.05), CommTimeoutError);
}

TEST(WireProtocol, CorruptChecksumIsAProtocolError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  wire::Socket a(fds[0]);
  wire::Socket b(fds[1]);
  const double payload = 7.0;
  ASSERT_TRUE(wire::send_frame(a, wire::FrameType::kContrib, 0, &payload,
                               sizeof(payload), 5.0));
  // Flip one payload byte in flight by re-reading raw and rewriting: simpler
  // here — send a raw garbage frame directly through the fd.
  a.close();
  // Read the intact frame first to prove the channel works, then check that
  // garbage fails loudly rather than decoding to nonsense.
  wire::Frame frame;
  ASSERT_TRUE(wire::recv_frame(b, frame, 5.0));
  EXPECT_EQ(frame.payload.size(), sizeof(payload));

  int fds2[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds2), 0);
  wire::Socket c(fds2[0]);
  wire::Socket d(fds2[1]);
  // Valid header for an 8-byte payload, then garbage payload + checksum.
  std::vector<unsigned char> raw;
  const auto put32 = [&raw](std::uint32_t v) {
    raw.insert(raw.end(), reinterpret_cast<unsigned char*>(&v),
               reinterpret_cast<unsigned char*>(&v) + 4);
  };
  const auto put64 = [&raw](std::uint64_t v) {
    raw.insert(raw.end(), reinterpret_cast<unsigned char*>(&v),
               reinterpret_cast<unsigned char*>(&v) + 8);
  };
  put32(0x50575156u);  // "VQWP" little-endian
  put32(std::uint32_t(wire::FrameType::kContrib));
  put64(0);
  put64(8);
  for (int i = 0; i < 16; ++i) raw.push_back(0xAB);  // payload + bad checksum
  ASSERT_EQ(::send(c.fd(), raw.data(), raw.size(), 0), ssize_t(raw.size()));
  wire::Frame bad;
  EXPECT_THROW((void)wire::recv_frame(d, bad, 5.0), Error);
}

TEST(WireProtocol, ConnectRetriesWithBackoffUntilListenerAppears) {
  const std::string endpoint = fresh_unix_endpoint("latebind");
  long long attempts = 0;
  std::thread late_listener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    wire::Listener listener = wire::listen_on(endpoint);
    wire::Socket conn = wire::accept_from(listener.socket, 5.0);
    wire::Frame frame;
    (void)wire::recv_frame(conn, frame, 5.0);
  });
  wire::Socket conn = wire::connect_to(endpoint, 10.0, /*jitter_seed=*/7,
                                       &attempts);
  EXPECT_TRUE(conn.valid());
  EXPECT_GE(attempts, 1);  // the listener was late, so at least one retry
  ASSERT_TRUE(wire::send_frame(conn, wire::FrameType::kHello, 0, nullptr, 0,
                               5.0));
  late_listener.join();
}

TEST(WireProtocol, ConnectDeadlineExpiresAsCommTimeout) {
  const std::string endpoint = fresh_unix_endpoint("nolistener");
  EXPECT_THROW((void)wire::connect_to(endpoint, 0.2, 1), CommTimeoutError);
}

// ---------------------------------------------------------------------------
// Socket group collectives (threads hosting real sockets over loopback)

TEST(SocketCommunicator, AllreduceSumMatchesRankArithmetic) {
  constexpr int kRanks = 4;
  run_socket_group(kRanks, [](Communicator& comm) {
    std::vector<Real> data = {Real(comm.rank() + 1), Real(10 * comm.rank())};
    comm.allreduce_sum(data);
    EXPECT_DOUBLE_EQ(data[0], 1 + 2 + 3 + 4);
    EXPECT_DOUBLE_EQ(data[1], 0 + 10 + 20 + 30);
  });
}

TEST(SocketCommunicator, AllreduceMaxAndBroadcastAndBarrier) {
  run_socket_group(3, [](Communicator& comm) {
    Real max_value = Real(comm.rank() * comm.rank());
    max_value = comm.allreduce_max(max_value);
    EXPECT_DOUBLE_EQ(max_value, 4.0);

    std::vector<Real> payload = {Real(comm.rank()), Real(-comm.rank())};
    if (comm.rank() == 1) payload = {123.0, -7.5};
    comm.broadcast(payload, /*root=*/1);
    EXPECT_DOUBLE_EQ(payload[0], 123.0);
    EXPECT_DOUBLE_EQ(payload[1], -7.5);

    comm.barrier();  // and the group dissolves cleanly afterwards
  });
}

TEST(SocketCommunicator, SingleRankGroupIsSelfContained) {
  run_socket_group(1, [](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    Real value = 5.0;
    value = comm.allreduce_sum(value);
    EXPECT_DOUBLE_EQ(value, 5.0);
    comm.barrier();
  });
}

TEST(SocketCommunicator, HierarchicalTreeReducesCorrectlyAndDeterministically) {
  // node_size 2 over 5 ranks: nodes {0,1}, {2,3}, {4}. Partial folds at the
  // leaders change the float association relative to the flat star, so the
  // contract is (a) exact agreement for exactly-representable inputs and
  // (b) bit-identical results for the *same* topology across runs, even with
  // order-sensitive inputs.
  constexpr int kRanks = 5;
  SocketGroupOptions hier;
  hier.node_size = 2;

  const std::vector<Real> exact = {0.25, 0.5, 1.0, 2.0, 4.75};
  run_socket_group(kRanks, [&](Communicator& comm) {
    std::vector<Real> data = {exact[std::size_t(comm.rank())]};
    comm.allreduce_sum(data);
    EXPECT_EQ(data[0], 8.5);
  }, hier);

  const std::vector<Real> touchy = {0.1, 1e16, 0.2, -1e16, 0.7};
  std::vector<Real> first(kRanks, 0), second(kRanks, 0);
  for (std::vector<Real>* out : {&first, &second}) {
    run_socket_group(kRanks, [&](Communicator& comm) {
      std::vector<Real> data = {touchy[std::size_t(comm.rank())]};
      comm.allreduce_sum(data);
      (*out)[std::size_t(comm.rank())] = data[0];
    }, hier);
  }
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(first[std::size_t(r)], second[std::size_t(r)]) << "rank " << r;
    EXPECT_EQ(first[0], first[std::size_t(r)]) << "rank " << r;
  }
}

TEST(SocketCommunicator, GracefulLeaveShrinksDeterministically) {
  constexpr int kRanks = 4;
  std::vector<int> live_after(kRanks, -1);
  run_socket_group(kRanks, [&](Communicator& comm) {
    Real value = 1.0;
    value = comm.allreduce_sum(value);
    EXPECT_DOUBLE_EQ(value, 4.0);
    if (comm.rank() == 2) {
      comm.leave();
      return;
    }
    value = 1.0;
    value = comm.allreduce_sum(value);
    EXPECT_DOUBLE_EQ(value, 3.0);
    EXPECT_FALSE(comm.is_alive(2));
    live_after[std::size_t(comm.rank())] = comm.live_count();
  });
  EXPECT_EQ(live_after[0], 3);
  EXPECT_EQ(live_after[1], 3);
  EXPECT_EQ(live_after[3], 3);
}

TEST(SocketCommunicator, LeaderCannotLeave) {
  SocketGroupOptions options;
  options.node_size = 2;
  run_socket_group(4, [](Communicator& comm) {
    Real value = 1.0;
    value = comm.allreduce_sum(value);
    if (comm.rank() == 2) {
      // Rank 2 leads node {2, 3}: leaving would orphan rank 3.
      EXPECT_THROW(comm.leave(), Error);
    }
    comm.barrier();
  }, options);
}

TEST(SocketCommunicator, HungPeerTripsCollectiveDeadlineEverywhere) {
  SocketGroupOptions options;
  options.timeout_seconds = 0.3;
  std::atomic<int> timeouts{0};
  try {
    run_socket_group(3, [&](Communicator& comm) {
      try {
        if (comm.rank() == 2) {
          // Silent, connected, not contributing: the deadline is the only
          // liveness check that can catch this.
          comm.interruptible_sleep(20.0);
          return;
        }
        Real value = 1.0;
        value = comm.allreduce_sum(value);
      } catch (const CommTimeoutError&) {
        timeouts.fetch_add(1);
        throw;
      }
    }, options);
    FAIL() << "expected CommTimeoutError to propagate";
  } catch (const CommTimeoutError&) {
  }
  // Both blocked ranks observe the timeout; the sleeper wakes via the abort.
  EXPECT_GE(timeouts.load(), 2);
}

TEST(SocketCommunicator, EnvRendezvousMatchesExplicitArguments) {
  const std::string endpoint = fresh_unix_endpoint("env");
  ::setenv("VQMC_ENDPOINT", endpoint.c_str(), 1);
  ::setenv("VQMC_RANKS", "2", 1);
  std::thread peer([&] {
    auto comm = connect_socket_group(endpoint, 1, 2);
    Real value = 10.0;
    value = comm->allreduce_sum(value);
    EXPECT_DOUBLE_EQ(value, 11.0);
  });
  ::setenv("VQMC_RANK", "0", 1);
  auto comm = connect_socket_group_from_env();
  EXPECT_EQ(comm->rank(), 0);
  EXPECT_EQ(comm->size(), 2);
  Real value = 1.0;
  value = comm->allreduce_sum(value);
  EXPECT_DOUBLE_EQ(value, 11.0);
  peer.join();
  ::unsetenv("VQMC_ENDPOINT");
  ::unsetenv("VQMC_RANK");
  ::unsetenv("VQMC_RANKS");
}

// ---------------------------------------------------------------------------
// Real process death (fork + SIGKILL)

// Forks a child that joins the group as `rank` and runs `child_body`; the
// parent returns the child pid. The child NEVER returns: it _exit()s (or is
// killed) so gtest state is not duplicated.
template <typename Body>
pid_t fork_rank(Body child_body) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  int status = 0;
  try {
    child_body();
  } catch (...) {
    status = 1;
  }
  ::_exit(status);
}

TEST(SocketCommunicatorProcess, RealProcessDeathShrinksSurvivors) {
  const std::string endpoint = fresh_unix_endpoint("death");
  SocketGroupOptions options;
  options.timeout_seconds = 5.0;

  // Rank 2 (child process) dies hard after the first collective.
  const pid_t victim = fork_rank([&] {
    auto comm = connect_socket_group(endpoint, 2, 3, options);
    Real value = 1.0;
    value = comm->allreduce_sum(value);
    std::raise(SIGKILL);
  });
  const pid_t peer = fork_rank([&] {
    auto comm = connect_socket_group(endpoint, 1, 3, options);
    Real value = 1.0;
    value = comm->allreduce_sum(value);
    if (value != 3.0) ::_exit(2);
    value = 1.0;
    value = comm->allreduce_sum(value);
    if (value != 2.0) ::_exit(3);
    if (comm->is_alive(2) || comm->live_count() != 2) ::_exit(4);
    ::_exit(0);
  });

  auto comm = connect_socket_group(endpoint, 0, 3, options);
  Real value = 1.0;
  value = comm->allreduce_sum(value);
  EXPECT_DOUBLE_EQ(value, 3.0);
  // Give the kernel a moment to deliver the victim's FIN, then fold it out.
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  value = 1.0;
  value = comm->allreduce_sum(value);
  EXPECT_DOUBLE_EQ(value, 2.0);
  EXPECT_FALSE(comm->is_alive(2));
  EXPECT_EQ(comm->live_count(), 2);
  ASSERT_EQ(comm->observed_deaths().size(), 1u);
  EXPECT_EQ(comm->observed_deaths()[0], 2);

  ASSERT_EQ(::waitpid(peer, &status, 0), peer);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SocketCommunicatorProcess, AbortPolicyTurnsDeathIntoGroupTimeout) {
  const std::string endpoint = fresh_unix_endpoint("abortpolicy");
  SocketGroupOptions options;
  options.timeout_seconds = 5.0;
  options.on_peer_death = PeerDeathPolicy::kAbort;

  const pid_t victim = fork_rank([&] {
    auto comm = connect_socket_group(endpoint, 1, 2, options);
    Real value = 1.0;
    value = comm->allreduce_sum(value);
    std::raise(SIGKILL);
  });

  auto comm = connect_socket_group(endpoint, 0, 2, options);
  Real value = 1.0;
  value = comm->allreduce_sum(value);
  EXPECT_DOUBLE_EQ(value, 2.0);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);

  value = 1.0;
  EXPECT_THROW(comm->allreduce_sum(std::span<Real>(&value, 1)),
               CommTimeoutError);
}

TEST(SocketCommunicatorProcess, ScriptedBoundaryKillViaProcessFaultPlan) {
  const std::string endpoint = fresh_unix_endpoint("plan");
  SocketGroupOptions options;
  options.timeout_seconds = 5.0;
  const auto plans = parse_process_fault_specs({"kill:rank=1,iter=2"}, 2);

  const pid_t victim = fork_rank([&] {
    auto comm = connect_socket_group(endpoint, 1, 2, options);
    for (long long iter = 0;; ++iter) {
      apply_process_faults_at_iteration(plans[1], iter, *comm);
      Real value = 1.0;
      value = comm->allreduce_sum(value);
    }
  });

  auto comm = connect_socket_group(endpoint, 0, 2, options);
  std::vector<Real> history;
  for (long long iter = 0; iter < 4; ++iter) {
    Real value = 1.0;
    value = comm->allreduce_sum(value);
    history.push_back(value);
    if (iter == 1) {
      int status = 0;
      ASSERT_EQ(::waitpid(victim, &status, 0), victim);
      ASSERT_TRUE(WIFSIGNALED(status));
      ASSERT_EQ(WTERMSIG(status), SIGKILL);
    }
  }
  // Iterations 0 and 1 see both ranks; the boundary kill before iteration 2
  // shrinks every later collective deterministically.
  const std::vector<Real> expected = {2.0, 2.0, 1.0, 1.0};
  EXPECT_EQ(history, expected);
}

// ---------------------------------------------------------------------------
// Process fault plan parsing

TEST(ProcessFaultPlan, ParsesKillLeaveStopSpecs) {
  const auto plans = parse_process_fault_specs(
      {"kill:rank=2,iter=10", "leave:rank=1,iter=4",
       "stop:rank=3,iter=5,secs=1.5"},
      4);
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_TRUE(plans[0].empty());
  EXPECT_EQ(plans[1].leave_at_iteration, 4);
  EXPECT_EQ(plans[2].kill_at_iteration, 10);
  EXPECT_EQ(plans[3].stop_at_iteration, 5);
  EXPECT_DOUBLE_EQ(plans[3].stop_seconds, 1.5);
}

TEST(ProcessFaultPlan, RoundTripsThroughSpecFormat) {
  ProcessFaultPlan plan;
  plan.kill_at_iteration = 7;
  const std::string spec = format_process_fault_spec(plan, 3);
  int rank = -1;
  const ProcessFaultPlan parsed = parse_process_fault_spec(spec, 4, &rank);
  EXPECT_EQ(rank, 3);
  EXPECT_EQ(parsed.kill_at_iteration, 7);
}

TEST(ProcessFaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_process_fault_specs({"explode:rank=0,iter=1"}, 2),
               Error);
  EXPECT_THROW((void)parse_process_fault_specs({"kill:rank=9,iter=1"}, 2),
               Error);
  EXPECT_THROW((void)parse_process_fault_specs({"kill:rank=0"}, 2), Error);
  EXPECT_THROW((void)parse_process_fault_specs({"kill:rank=0,iter=1,secs=2"},
                                               2),
               Error);
}

}  // namespace
}  // namespace vqmc::parallel
