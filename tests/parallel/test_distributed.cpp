#include "parallel/distributed_trainer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "core/trainer.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "optim/adam.hpp"
#include "rng/splitmix.hpp"
#include "sampler/autoregressive_sampler.hpp"

namespace vqmc::parallel {
namespace {

DistributedConfig small_config(int ranks, int iterations = 15,
                               std::size_t mbs = 8) {
  DistributedConfig cfg;
  cfg.shape = {1, ranks};
  cfg.iterations = iterations;
  cfg.mini_batch_size = mbs;
  cfg.eval_batch_per_rank = 32;
  cfg.seed = 7;
  return cfg;
}

TEST(DistributedTrainer, ReplicasStayBitIdentical) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 1);
  Made made(6, 8);
  made.initialize(2);
  const DistributedResult r =
      train_distributed(tim, made, small_config(4));
  EXPECT_TRUE(r.replicas_identical);
  EXPECT_EQ(r.energy_history.size(), 15u);
  EXPECT_FALSE(r.final_parameters.empty());
}

TEST(DistributedTrainer, SingleRankMatchesSerialTrainerExactly) {
  // With L = 1 and the same seed derivation, the distributed path must
  // reproduce the serial trainer's parameter trajectory bit-for-bit.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 3);
  const int iterations = 10;
  const std::size_t batch = 16;

  Made proto(5, 6);
  proto.initialize(4);
  DistributedConfig cfg = small_config(1, iterations, batch);
  const DistributedResult dist = train_distributed(tim, proto, cfg);

  // Serial reference with the identical RNG stream and update rule.
  Made serial(5, 6);
  serial.initialize(4);
  const std::uint64_t rank_seed = cfg.seed ^ rng::splitmix64_once(1);
  AutoregressiveSampler sampler(serial, rank_seed);
  Adam adam(0.01);
  TrainerConfig tcfg;
  tcfg.iterations = iterations;
  tcfg.batch_size = batch;
  VqmcTrainer trainer(tim, serial, sampler, adam, tcfg);
  trainer.run();

  ASSERT_EQ(dist.final_parameters.size(), serial.num_parameters());
  for (std::size_t i = 0; i < serial.num_parameters(); ++i)
    EXPECT_EQ(dist.final_parameters[i], serial.parameters()[i])
        << "parameter " << i;
}

TEST(DistributedTrainer, MergedGaugesTakeTheMaxAcrossRanksNotTheSum) {
  // Regression for the cross-rank gauge merge: gauges are point-in-time
  // values and must ride the trailing allreduce_max, never the additive
  // payload — summing them made a 4-rank run report trainer.iteration as
  // 4x the true iteration (and comm.live_ranks as ranks^2).
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 2);
  Made made(6, 8);
  made.initialize(3);
  const int iterations = 8;
  const int ranks = 4;
  const DistributedResult r =
      train_distributed(tim, made, small_config(ranks, iterations));

  const telemetry::GaugeSnapshot* iter_gauge =
      r.merged_metrics.find_gauge("trainer.iteration");
  ASSERT_NE(iter_gauge, nullptr);
  EXPECT_DOUBLE_EQ(iter_gauge->value, double(iterations - 1));

  const telemetry::GaugeSnapshot* live_gauge =
      r.merged_metrics.find_gauge("comm.live_ranks");
  ASSERT_NE(live_gauge, nullptr);
  EXPECT_DOUBLE_EQ(live_gauge->value, double(ranks));

  // Counters still sum: every rank contributes its own iteration count.
  const telemetry::CounterSnapshot* iters =
      r.merged_metrics.find_counter("trainer.iterations");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->value, std::uint64_t(ranks) * iterations);
}

TEST(DistributedTrainer, EnergyDecreasesWithTraining) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 5);
  Made made(6, 8);
  made.initialize(6);
  DistributedConfig cfg = small_config(2, 60, 32);
  const DistributedResult r = train_distributed(tim, made, cfg);
  EXPECT_LT(r.energy_history.back(), r.energy_history.front());
  EXPECT_LT(r.converged_energy, r.energy_history.front());
  EXPECT_GE(r.converged_std, 0.0);
}

TEST(DistributedTrainer, MoreRanksMeansLargerEffectiveBatch) {
  // Figure 4's mechanism: at fixed mbs, more devices -> bigger effective
  // batch -> at least as good converged energy (allow noise).
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(8, 7);
  Made proto(8, 10);
  proto.initialize(8);

  DistributedConfig small = small_config(1, 50, 4);
  DistributedConfig large = small_config(6, 50, 4);
  const DistributedResult r_small = train_distributed(tim, proto, small);
  const DistributedResult r_large = train_distributed(tim, proto, large);
  // Not a strict inequality test (stochastic); assert the large-batch run
  // is not dramatically worse.
  EXPECT_LT(r_large.converged_energy,
            r_small.converged_energy + 0.5 * std::abs(r_small.converged_energy));
}

TEST(DistributedTrainer, NodeTopologyDoesNotChangeResults) {
  // 1x4 and 2x2 have the same total rank count; the math (and with our
  // deterministic collectives, the bits) must agree.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 9);
  Made proto(5, 6);
  proto.initialize(10);
  DistributedConfig flat = small_config(4, 8, 4);
  flat.shape = {1, 4};
  DistributedConfig square = small_config(4, 8, 4);
  square.shape = {2, 2};
  const DistributedResult a = train_distributed(tim, proto, flat);
  const DistributedResult b = train_distributed(tim, proto, square);
  ASSERT_EQ(a.final_parameters.size(), b.final_parameters.size());
  for (std::size_t i = 0; i < a.final_parameters.size(); ++i)
    EXPECT_EQ(a.final_parameters[i], b.final_parameters[i]);
}

TEST(DistributedTrainer, ModeledTimeIsPopulatedForMade) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 11);
  Made proto(5, 6);
  const DistributedResult r = train_distributed(tim, proto, small_config(2, 3, 4));
  EXPECT_GT(r.modeled_seconds, 0.0);
  EXPECT_GT(r.max_rank_busy_seconds, 0.0);
}

TEST(DistributedTrainer, SgdOptimizerOptionWorks) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 12);
  Made proto(5, 6);
  proto.initialize(13);
  DistributedConfig cfg = small_config(2, 10, 8);
  cfg.optimizer = "SGD";
  const DistributedResult r = train_distributed(tim, proto, cfg);
  EXPECT_TRUE(r.replicas_identical);
}

TEST(DistributedTrainer, RunsAreBitReproducible) {
  // Two runs with identical configuration must agree bit-for-bit: per-rank
  // RNG streams are seed-derived and the collectives fold deterministically.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 15);
  Made proto(5, 6);
  proto.initialize(16);
  const DistributedConfig cfg = small_config(3, 12, 8);
  const DistributedResult a = train_distributed(tim, proto, cfg);
  const DistributedResult b = train_distributed(tim, proto, cfg);
  ASSERT_EQ(a.final_parameters.size(), b.final_parameters.size());
  for (std::size_t i = 0; i < a.final_parameters.size(); ++i)
    EXPECT_EQ(a.final_parameters[i], b.final_parameters[i]);
  ASSERT_EQ(a.energy_history.size(), b.energy_history.size());
  for (std::size_t i = 0; i < a.energy_history.size(); ++i)
    EXPECT_EQ(a.energy_history[i], b.energy_history[i]);
}

TEST(DistributedTrainer, DifferentSeedsGiveDifferentTrajectories) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 17);
  Made proto(5, 6);
  proto.initialize(18);
  DistributedConfig a_cfg = small_config(2, 6, 8);
  DistributedConfig b_cfg = a_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  const DistributedResult a = train_distributed(tim, proto, a_cfg);
  const DistributedResult b = train_distributed(tim, proto, b_cfg);
  bool any_different = false;
  for (std::size_t i = 0; i < a.final_parameters.size(); ++i)
    any_different |= a.final_parameters[i] != b.final_parameters[i];
  EXPECT_TRUE(any_different);
}

TEST(DistributedTrainer, InvalidConfigRejected) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 14);
  Made proto(4, 4);
  DistributedConfig cfg = small_config(1);
  cfg.mini_batch_size = 0;
  EXPECT_THROW(train_distributed(tim, proto, cfg), Error);
}

TEST(DistributedTrainer, UnknownOptimizerRejectedWithOffendingName) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 19);
  Made proto(4, 4);
  DistributedConfig cfg = small_config(2, 2, 4);
  cfg.optimizer = "RMSPROP";
  try {
    train_distributed(tim, proto, cfg);
    FAIL() << "unknown optimizer must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("RMSPROP"), std::string::npos);
  }
}

TEST(DistributedTrainer, SrOptimizerRejectedWithPointerToSerialTrainer) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 19);
  Made proto(4, 4);
  DistributedConfig cfg = small_config(2, 2, 4);
  cfg.optimizer = "SGD+SR";
  try {
    train_distributed(tim, proto, cfg);
    FAIL() << "SR optimizers must be rejected, not silently remapped";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SGD+SR"), std::string::npos);
    EXPECT_NE(what.find("serial"), std::string::npos);
  }
}

/// Cloneable model whose FIRST clone (i.e. exactly one of the per-rank
/// replicas) permanently returns a NaN log-psi, so one rank feeds bad local
/// energies into every iteration while sampling stays healthy everywhere.
class OneBadCloneModel final : public AutoregressiveModel {
 public:
  OneBadCloneModel(std::size_t n, std::size_t hidden, std::uint64_t seed)
      : inner_(n, hidden), clones_(std::make_shared<std::atomic<int>>(0)) {
    inner_.initialize(seed);
  }

  [[nodiscard]] std::size_t num_spins() const override {
    return inner_.num_spins();
  }
  [[nodiscard]] std::size_t num_parameters() const override {
    return inner_.num_parameters();
  }
  [[nodiscard]] std::span<Real> parameters() override {
    return inner_.parameters();
  }
  [[nodiscard]] std::span<const Real> parameters() const override {
    return inner_.parameters();
  }
  void initialize(std::uint64_t seed) override { inner_.initialize(seed); }
  void log_psi(const Matrix& batch, std::span<Real> out) const override {
    inner_.log_psi(batch, out);
    if (faulty_) out[0] = std::numeric_limits<Real>::quiet_NaN();
  }
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad) const override {
    inner_.accumulate_log_psi_gradient(batch, coeff, grad);
  }
  void log_psi_gradient_per_sample(const Matrix& batch,
                                   Matrix& out) const override {
    inner_.log_psi_gradient_per_sample(batch, out);
  }
  void conditionals(const Matrix& batch, Matrix& out) const override {
    inner_.conditionals(batch, out);
  }
  [[nodiscard]] std::string name() const override { return "OneBadClone"; }
  [[nodiscard]] std::unique_ptr<WavefunctionModel> clone() const override {
    auto copy = std::make_unique<OneBadCloneModel>(*this);
    copy->faulty_ = clones_->fetch_add(1) == 0;
    return copy;
  }

 private:
  Made inner_;
  std::shared_ptr<std::atomic<int>> clones_;
  bool faulty_ = false;
};

TEST(DistributedTrainer, OneBadRankIsDetectedCollectivelyUnderSkip) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 21);
  OneBadCloneModel proto(5, 6, 22);
  DistributedConfig cfg = small_config(3, 8, 8);
  cfg.guard.policy = health::GuardPolicy::SkipIteration;
  const DistributedResult r = train_distributed(tim, proto, cfg);

  // Every iteration trips (the fault is permanent), every rank takes the
  // same decision, and the replicas stay bit-identical through recovery.
  EXPECT_TRUE(r.replicas_identical);
  EXPECT_EQ(r.guard_trips, 8u);
  EXPECT_NE(r.last_trip_reason.find("non-finite"), std::string::npos);

  // The per-rank tally attributes every bad contribution to a single rank:
  // 8 training iterations plus the final evaluation.
  std::uint64_t total = 0;
  int bad_ranks = 0;
  for (const std::uint64_t c : r.guard_trips_per_rank) {
    total += c;
    bad_ranks += c > 0 ? 1 : 0;
  }
  EXPECT_EQ(bad_ranks, 1);
  EXPECT_EQ(total, 9u);

  // The sick rank is excluded from the global estimates, not averaged in.
  EXPECT_TRUE(std::isfinite(r.converged_energy));
  for (const Real e : r.energy_history) EXPECT_TRUE(std::isfinite(e));
}

TEST(DistributedTrainer, OneBadRankUnderThrowFailsFast) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 21);
  OneBadCloneModel proto(5, 6, 22);
  DistributedConfig cfg = small_config(3, 8, 8);  // guard defaults to Throw
  EXPECT_THROW(train_distributed(tim, proto, cfg), Error);
}

}  // namespace
}  // namespace vqmc::parallel
