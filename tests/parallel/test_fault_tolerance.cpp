/// \file test_fault_tolerance.cpp
/// \brief Fault-tolerant distributed training (DESIGN.md §5c): collective
/// deadlines, elastic rank failure, and deterministic fault injection.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "parallel/distributed_trainer.hpp"
#include "parallel/fault_injection.hpp"
#include "parallel/thread_communicator.hpp"
#include "tensor/vector.hpp"

namespace vqmc::parallel {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Communicator layer: deadlines and dynamic membership.
// ---------------------------------------------------------------------------

TEST(CommTimeout, MissingRankAbortsBlockedPeersWithinDeadline) {
  GroupOptions options;
  options.timeout_seconds = 0.2;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      run_thread_group(
          3,
          [&](Communicator& comm) {
            // Rank 2 never shows up for the collective; the others must be
            // released by the deadline instead of blocking forever.
            if (comm.rank() == 2) return;
            Vector v{Real(comm.rank())};
            comm.allreduce_sum(v.span());
          },
          options),
      CommTimeoutError);
  // Generous bound: the deadline is 0.2 s; anything near a minute would mean
  // a rank deadlocked and the watchdog never fired.
  EXPECT_LT(seconds_since(start), 30.0);
}

TEST(CommTimeout, CompletedCollectivesAreUnaffectedByTheDeadline) {
  GroupOptions options;
  options.timeout_seconds = 5.0;
  std::vector<Real> sums(3, 0);
  run_thread_group(
      3,
      [&](Communicator& comm) {
        Vector v{Real(comm.rank() + 1)};
        comm.allreduce_sum(v.span());
        sums[std::size_t(comm.rank())] = v[0];
      },
      options);
  for (Real s : sums) EXPECT_DOUBLE_EQ(s, 6.0);
}

TEST(ElasticMembership, LeaveShrinksReductionsToSurvivors) {
  std::vector<Real> sums(4, -1);
  std::vector<int> live(4, -1);
  run_thread_group(4, [&](Communicator& comm) {
    if (comm.rank() == 3) {
      comm.leave();  // departs before ever contributing
      return;
    }
    Vector v{Real(100 + comm.rank())};
    comm.allreduce_sum(v.span());
    sums[std::size_t(comm.rank())] = v[0];
    live[std::size_t(comm.rank())] = comm.live_count();
    EXPECT_FALSE(comm.is_alive(3));
    EXPECT_TRUE(comm.is_alive(comm.rank()));
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(sums[std::size_t(r)], 303.0) << "rank " << r;
    EXPECT_EQ(live[std::size_t(r)], 3) << "rank " << r;
  }
}

TEST(ElasticMembership, BroadcastAndMaxWorkAfterShrink) {
  std::vector<Real> maxima(3, -1);
  run_thread_group(3, [&](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.leave();
      return;
    }
    Vector b{comm.rank() == 0 ? Real(42) : Real(0)};
    comm.broadcast(b.span(), 0);
    EXPECT_DOUBLE_EQ(b[0], 42.0);
    maxima[std::size_t(comm.rank())] =
        comm.allreduce_max(Real(10 * (comm.rank() + 1)));
  });
  EXPECT_DOUBLE_EQ(maxima[0], 30.0);
  EXPECT_DOUBLE_EQ(maxima[2], 30.0);
}

// ---------------------------------------------------------------------------
// Fault injection decorator.
// ---------------------------------------------------------------------------

TEST(FaultInjection, KillAtCallLeavesGroupAndThrowsRankDead) {
  std::vector<Real> sums(3, 0);
  bool rank2_died = false;
  run_thread_group(3, [&](Communicator& comm) {
    FaultPlan plan;
    if (comm.rank() == 2) plan.kill_at_call = 1;
    FaultInjectingCommunicator injected(comm, plan);

    Vector v{Real(1)};
    injected.allreduce_sum(v.span());  // call 0: everyone participates
    EXPECT_DOUBLE_EQ(v[0], 3.0);

    Vector w{Real(comm.rank())};
    try {
      injected.allreduce_sum(w.span());  // call 1: rank 2 dies instead
      sums[std::size_t(comm.rank())] = w[0];
    } catch (const RankDeadError&) {
      rank2_died = comm.rank() == 2;
      return;
    }
  });
  EXPECT_TRUE(rank2_died);
  EXPECT_DOUBLE_EQ(sums[0], 1.0);  // 0 + 1: survivors only
  EXPECT_DOUBLE_EQ(sums[1], 1.0);
}

TEST(FaultInjection, DelayUnderTheDeadlineIsTolerated) {
  GroupOptions options;
  options.timeout_seconds = 10.0;
  std::vector<Real> sums(2, 0);
  run_thread_group(
      2,
      [&](Communicator& comm) {
        FaultPlan plan;
        if (comm.rank() == 1) {
          plan.delay_at_call = 0;
          plan.delay_seconds = 0.05;
        }
        FaultInjectingCommunicator injected(comm, plan);
        Vector v{Real(comm.rank() + 1)};
        injected.allreduce_sum(v.span());
        sums[std::size_t(comm.rank())] = v[0];
      },
      options);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 3.0);
}

TEST(FaultInjection, HungCollectiveAbortsTheGroupWithinDeadline) {
  GroupOptions options;
  options.timeout_seconds = 0.2;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      run_thread_group(
          3,
          [&](Communicator& comm) {
            FaultPlan plan;
            if (comm.rank() == 0) {
              plan.hang_at_call = 0;
              plan.hang_seconds = 3600;  // must be cut short by the abort
            }
            FaultInjectingCommunicator injected(comm, plan);
            Vector v{Real(1)};
            injected.allreduce_sum(v.span());
          },
          options),
      CommTimeoutError);
  // All three threads joined (run_thread_group returned) long before the
  // hour-long hang: the interruptible sleep was woken by the group abort.
  EXPECT_LT(seconds_since(start), 30.0);
}

TEST(FaultInjection, CorruptFlipsTheConfiguredPayloadBits) {
  std::vector<Real> results(2, 0);
  run_thread_group(2, [&](Communicator& comm) {
    FaultPlan plan;
    if (comm.rank() == 1) {
      plan.corrupt_at_call = 0;
      plan.corrupt_index = 0;
      // 0.0 with the exponent field flipped is +inf: the fold must propagate
      // it so downstream health guards can see it.
    }
    FaultInjectingCommunicator injected(comm, plan);
    Vector v{Real(0)};
    injected.allreduce_sum(v.span());
    results[std::size_t(comm.rank())] = v[0];
  });
  EXPECT_TRUE(std::isinf(results[0]));
  EXPECT_TRUE(std::isinf(results[1]));
}

// ---------------------------------------------------------------------------
// Elastic distributed training.
// ---------------------------------------------------------------------------

DistributedConfig fault_config(int ranks, int iterations = 12,
                               std::size_t mbs = 8) {
  DistributedConfig cfg;
  cfg.shape = {1, ranks};
  cfg.iterations = iterations;
  cfg.mini_batch_size = mbs;
  cfg.eval_batch_per_rank = 32;
  cfg.seed = 11;
  return cfg;
}

TEST(ElasticTraining, RankDeathAtStartMatchesSmallerClusterBitwise) {
  // Per-rank RNG streams depend only on the rank index, so a 3-rank group
  // whose rank 2 dies before contributing anything must follow the *exact*
  // trajectory of a 2-rank group — this is the strongest possible check that
  // the gradient average is rescaled correctly after a shrink (a wrong
  // divisor changes every parameter of every subsequent iteration).
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 3);
  Made made(6, 8);
  made.initialize(5);

  DistributedConfig with_death = fault_config(3);
  with_death.fault_plans.resize(3);
  with_death.fault_plans[2].kill_at_iteration = 0;
  const DistributedResult shrunk = train_distributed(tim, made, with_death);

  const DistributedResult reference =
      train_distributed(tim, made, fault_config(2));

  ASSERT_EQ(shrunk.shrink_events.size(), 1u);
  EXPECT_EQ(shrunk.shrink_events[0].iteration, 0);
  EXPECT_EQ(shrunk.shrink_events[0].rank, 2);
  EXPECT_EQ(shrunk.shrink_events[0].live_after, 2);
  EXPECT_EQ(shrunk.final_live_ranks, 2);
  EXPECT_TRUE(shrunk.replicas_identical);

  ASSERT_EQ(shrunk.energy_history.size(), reference.energy_history.size());
  for (std::size_t i = 0; i < reference.energy_history.size(); ++i)
    EXPECT_EQ(shrunk.energy_history[i], reference.energy_history[i])
        << "iteration " << i;
  ASSERT_EQ(shrunk.final_parameters.size(),
            reference.final_parameters.size());
  for (std::size_t i = 0; i < reference.final_parameters.size(); ++i)
    EXPECT_EQ(shrunk.final_parameters[i], reference.final_parameters[i])
        << "parameter " << i;
  EXPECT_EQ(shrunk.converged_energy, reference.converged_energy);
}

TEST(ElasticTraining, MidRunRankDeathShrinksAndSurvivorsStayIdentical) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 4);
  Made made(6, 8);
  made.initialize(6);

  DistributedConfig cfg = fault_config(4, 14);
  cfg.fault_plans.resize(4);
  cfg.fault_plans[1].kill_at_iteration = 5;
  const DistributedResult r = train_distributed(tim, made, cfg);

  ASSERT_EQ(r.shrink_events.size(), 1u);
  EXPECT_EQ(r.shrink_events[0].iteration, 5);
  EXPECT_EQ(r.shrink_events[0].rank, 1);
  EXPECT_EQ(r.shrink_events[0].live_after, 3);
  EXPECT_EQ(r.final_live_ranks, 3);
  EXPECT_TRUE(r.replicas_identical);
  EXPECT_EQ(r.energy_history.size(), 14u);
  // Training kept producing finite energies through the recovery.
  for (Real e : r.energy_history) EXPECT_TRUE(std::isfinite(e));
}

TEST(ElasticTraining, TwoDeathsLeaveALoneSurvivor) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 9);
  Made made(5, 6);
  made.initialize(7);

  DistributedConfig cfg = fault_config(3, 10);
  cfg.fault_plans.resize(3);
  cfg.fault_plans[0].kill_at_iteration = 3;
  cfg.fault_plans[2].kill_at_iteration = 6;
  const DistributedResult r = train_distributed(tim, made, cfg);

  ASSERT_EQ(r.shrink_events.size(), 2u);
  EXPECT_EQ(r.shrink_events[0].rank, 0);
  EXPECT_EQ(r.shrink_events[0].live_after, 2);
  EXPECT_EQ(r.shrink_events[1].rank, 2);
  EXPECT_EQ(r.shrink_events[1].live_after, 1);
  EXPECT_EQ(r.final_live_ranks, 1);
  EXPECT_TRUE(r.replicas_identical);
  for (Real e : r.energy_history) EXPECT_TRUE(std::isfinite(e));
}

TEST(ElasticTraining, HungRankTimesOutTheWholeRun) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 2);
  Made made(5, 6);
  made.initialize(3);

  DistributedConfig cfg = fault_config(3, 10);
  cfg.comm_timeout_seconds = 0.25;
  cfg.fault_plans.resize(3);
  cfg.fault_plans[1].hang_at_call = 4;
  cfg.fault_plans[1].hang_seconds = 3600;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(train_distributed(tim, made, cfg), CommTimeoutError);
  EXPECT_LT(seconds_since(start), 30.0);
}

TEST(ElasticTraining, CorruptedFlagTripsGuardAndRunRecoversUnderSkip) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 8);
  Made made(6, 8);
  made.initialize(9);

  DistributedConfig cfg = fault_config(2, 10);
  cfg.guard.policy = health::GuardPolicy::SkipIteration;
  cfg.fault_plans.resize(2);
  // Rank 1's bad-energy flag slot holds exactly 0.0; the default exponent
  // flip turns it into +inf, which the post-allreduce trip logic must read
  // as "a rank reported non-finite energies".
  cfg.fault_plans[1].corrupt_at_call = 0;
  cfg.fault_plans[1].corrupt_index = 2 + 1;
  const DistributedResult r = train_distributed(tim, made, cfg);

  EXPECT_GE(r.guard_trips, 1u);
  EXPECT_FALSE(r.last_trip_reason.empty());
  EXPECT_TRUE(r.replicas_identical);
  EXPECT_EQ(r.final_live_ranks, 2);
  EXPECT_TRUE(r.shrink_events.empty());
}

}  // namespace
}  // namespace vqmc::parallel
