#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/error.hpp"
#include "parallel/communicator.hpp"
#include "parallel/thread_communicator.hpp"
#include "tensor/vector.hpp"

namespace vqmc::parallel {
namespace {

TEST(SelfCommunicator, IsTrivialGroupOfOne) {
  SelfCommunicator comm;
  EXPECT_EQ(comm.rank(), 0);
  EXPECT_EQ(comm.size(), 1);
  Vector v{1.0, 2.0};
  comm.allreduce_sum(v.span());
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(comm.allreduce_sum(Real(5)), 5.0);
}

TEST(SelfCommunicator, DegenerateCollectivesAreIdentities) {
  // Both degenerate collectives of the group of one: an elementwise max
  // over a single rank and its scalar convenience form must hand every
  // value back unchanged, exactly like allreduce_sum does.
  SelfCommunicator comm;
  Vector v{3.0, -7.0};
  comm.allreduce_max(v.span());
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], -7.0);
  EXPECT_DOUBLE_EQ(comm.allreduce_max(Real(-2.5)), -2.5);
  EXPECT_EQ(comm.live_count(), 1);
  EXPECT_TRUE(comm.is_alive(0));
}

TEST(ThreadGroup, RanksAreDistinctAndComplete) {
  const int L = 6;
  std::vector<std::atomic<int>> seen(L);
  run_thread_group(L, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), L);
    seen[std::size_t(comm.rank())].fetch_add(1);
  });
  for (int r = 0; r < L; ++r) EXPECT_EQ(seen[std::size_t(r)].load(), 1);
}

TEST(ThreadGroup, AllreduceSumIsCorrectAndIdenticalOnAllRanks) {
  const int L = 5;
  std::vector<std::vector<Real>> results{std::size_t(L)};
  run_thread_group(L, [&](Communicator& comm) {
    Vector v(3);
    v[0] = Real(comm.rank());
    v[1] = 1;
    v[2] = Real(comm.rank() * comm.rank());
    comm.allreduce_sum(v.span());
    results[std::size_t(comm.rank())] = {v[0], v[1], v[2]};
  });
  // sum ranks = 10, count = 5, sum squares = 30.
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r[0], 10.0);
    EXPECT_DOUBLE_EQ(r[1], 5.0);
    EXPECT_DOUBLE_EQ(r[2], 30.0);
  }
}

TEST(ThreadGroup, AllreduceSumIsBitIdenticalAcrossRanks) {
  // Irrational-ish summands make order sensitivity observable; the fixed
  // fold order must give bit-identical results everywhere.
  const int L = 7;
  std::vector<Real> results(std::size_t(L), Real(0));
  run_thread_group(L, [&](Communicator& comm) {
    Vector v(1);
    v[0] = Real(1) / Real(3 + comm.rank());
    comm.allreduce_sum(v.span());
    results[std::size_t(comm.rank())] = v[0];
  });
  for (int r = 1; r < L; ++r) EXPECT_EQ(results[0], results[std::size_t(r)]);
}

TEST(ThreadGroup, AllreduceMax) {
  const int L = 4;
  std::vector<Real> results(std::size_t(L), Real(0));
  run_thread_group(L, [&](Communicator& comm) {
    Vector v(1);
    v[0] = Real((comm.rank() * 7) % 5);  // 0, 2, 4, 1
    comm.allreduce_max(v.span());
    results[std::size_t(comm.rank())] = v[0];
  });
  for (Real r : results) EXPECT_DOUBLE_EQ(r, 4.0);
}

TEST(ThreadGroup, BroadcastFromEveryRoot) {
  const int L = 3;
  for (int root = 0; root < L; ++root) {
    std::vector<Real> results(std::size_t(L), Real(0));
    run_thread_group(L, [&](Communicator& comm) {
      Vector v(1);
      v[0] = comm.rank() == root ? Real(42 + root) : Real(-1);
      comm.broadcast(v.span(), root);
      results[std::size_t(comm.rank())] = v[0];
    });
    for (Real r : results) EXPECT_DOUBLE_EQ(r, Real(42 + root));
  }
}

TEST(ThreadGroup, ConsecutiveCollectivesDoNotInterfere) {
  const int L = 4;
  run_thread_group(L, [&](Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      Vector v(2);
      v[0] = Real(comm.rank() + round);
      v[1] = Real(round);
      comm.allreduce_sum(v.span());
      EXPECT_DOUBLE_EQ(v[0], Real(6 + 4 * round));
      EXPECT_DOUBLE_EQ(v[1], Real(4 * round));
      comm.barrier();
    }
  });
}

TEST(ThreadGroup, SingleRankGroupWorks) {
  run_thread_group(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    Vector v{3.0};
    comm.allreduce_sum(v.span());
    EXPECT_DOUBLE_EQ(v[0], 3.0);
  });
}

TEST(ThreadGroup, ExceptionBeforeCollectivesPropagates) {
  EXPECT_THROW(run_thread_group(
                   2, [&](Communicator& comm) {
                     if (comm.rank() >= 0) throw Error("rank failure");
                   }),
               Error);
}

TEST(ThreadGroup, ZeroRanksRejected) {
  EXPECT_THROW(run_thread_group(0, [](Communicator&) {}), Error);
}

}  // namespace
}  // namespace vqmc::parallel
