// Shared conformance suite for Communicator backends: every test runs
// against both the thread-backed group and the socket-backed group, proving
// the two implement the same collective contract — including the parts the
// trainer depends on for determinism (rank-order folds, membership after
// leave(), per-collective deadlines).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "parallel/socket_communicator.hpp"
#include "parallel/thread_communicator.hpp"

namespace vqmc::parallel {
namespace {

struct BackendParam {
  const char* name;
  // Runs `body` on `num_ranks` endpoints with the given collective deadline.
  std::function<void(int, const std::function<void(Communicator&)>&, double)>
      run;
};

class CommConformance : public ::testing::TestWithParam<BackendParam> {
 protected:
  void run(int num_ranks, const std::function<void(Communicator&)>& body,
           double timeout_seconds = 0) {
    GetParam().run(num_ranks, body, timeout_seconds);
  }
};

TEST_P(CommConformance, RankAndSizeAreConsistent) {
  std::atomic<int> seen{0};
  run(3, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 3);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 3);
    EXPECT_EQ(comm.live_count(), 3);
    EXPECT_TRUE(comm.is_alive(comm.rank()));
    seen.fetch_add(1);
  });
  EXPECT_EQ(seen.load(), 3);
}

TEST_P(CommConformance, AllreduceSumIsBitIdenticalAcrossRanks) {
  // Accumulating floats in different orders gives different bits; the
  // contract is a fixed rank-order fold, so every rank must see the same
  // bit pattern of the same sum.
  constexpr int kRanks = 4;
  std::vector<Real> results(kRanks, 0);
  run(kRanks, [&](Communicator& comm) {
    // Values chosen so floating-point addition is order-sensitive.
    std::vector<Real> data = {std::pow(Real(10), comm.rank() - 2) + Real(1) /
                                  Real(3 + comm.rank())};
    comm.allreduce_sum(data);
    results[std::size_t(comm.rank())] = data[0];
  });
  for (int r = 1; r < kRanks; ++r) EXPECT_EQ(results[0], results[std::size_t(r)]);
}

TEST_P(CommConformance, AllreduceMaxScalar) {
  run(3, [](Communicator& comm) {
    const Real result = comm.allreduce_max(Real(comm.rank() == 1 ? 50 : 1));
    EXPECT_DOUBLE_EQ(result, 50.0);
  });
}

TEST_P(CommConformance, BroadcastFromEveryRoot) {
  constexpr int kRanks = 3;
  run(kRanks, [](Communicator& comm) {
    for (int root = 0; root < kRanks; ++root) {
      std::vector<Real> payload(2, Real(comm.rank()));
      if (comm.rank() == root) payload = {Real(100 + root), Real(-root)};
      comm.broadcast(payload, root);
      EXPECT_DOUBLE_EQ(payload[0], 100 + root);
      EXPECT_DOUBLE_EQ(payload[1], -root);
    }
  });
}

TEST_P(CommConformance, BarrierSynchronizesPhases) {
  constexpr int kRanks = 4;
  std::atomic<int> phase_one{0};
  run(kRanks, [&](Communicator& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    // Everyone reached the barrier, so every increment must be visible.
    EXPECT_EQ(phase_one.load(), kRanks);
    (void)comm;
  });
}

TEST_P(CommConformance, LeaveShrinksMembershipAndReductions) {
  constexpr int kRanks = 4;
  run(kRanks, [](Communicator& comm) {
    Real value = comm.allreduce_sum(Real(1));
    EXPECT_DOUBLE_EQ(value, 4.0);
    if (comm.rank() == 3) {
      comm.leave();
      return;
    }
    value = comm.allreduce_sum(Real(1));
    EXPECT_DOUBLE_EQ(value, 3.0);
    EXPECT_EQ(comm.live_count(), 3);
    EXPECT_FALSE(comm.is_alive(3));
    EXPECT_TRUE(comm.is_alive(comm.rank()));
  });
}

TEST_P(CommConformance, SequentialLeavesDownToOneRank) {
  constexpr int kRanks = 3;
  run(kRanks, [](Communicator& comm) {
    // Highest live rank leaves each round; the reduction shrinks 3 -> 2 -> 1.
    for (int live = kRanks; live >= 2; --live) {
      const Real value = comm.allreduce_sum(Real(1));
      EXPECT_DOUBLE_EQ(value, live);
      if (comm.rank() == live - 1) {
        comm.leave();
        return;
      }
    }
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(Real(1)), 1.0);
  });
}

TEST_P(CommConformance, DeadlineOnHungPeerThrowsCommTimeout) {
  std::atomic<int> timeouts{0};
  try {
    run(3, [&](Communicator& comm) {
      if (comm.rank() == 2) {
        comm.interruptible_sleep(20.0);  // never joins the collective
        return;
      }
      try {
        (void)comm.allreduce_sum(Real(1));
      } catch (const CommTimeoutError&) {
        timeouts.fetch_add(1);
        throw;
      }
    }, /*timeout_seconds=*/0.3);
    FAIL() << "expected CommTimeoutError";
  } catch (const CommTimeoutError&) {
  }
  EXPECT_GE(timeouts.load(), 2);
}

TEST_P(CommConformance, ScalarOverloadsMatchSpanForms) {
  run(2, [](Communicator& comm) {
    const Real sum = comm.allreduce_sum(Real(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, 3.0);
    std::vector<Real> span_data = {Real(comm.rank() + 1)};
    comm.allreduce_sum(span_data);
    EXPECT_EQ(sum, span_data[0]);  // identical fold, identical bits
  });
}

INSTANTIATE_TEST_SUITE_P(
    Backends, CommConformance,
    ::testing::Values(
        BackendParam{"threads",
                     [](int ranks,
                        const std::function<void(Communicator&)>& body,
                        double timeout) {
                       GroupOptions options;
                       options.timeout_seconds = timeout;
                       run_thread_group(ranks, body, options);
                     }},
        BackendParam{"sockets",
                     [](int ranks,
                        const std::function<void(Communicator&)>& body,
                        double timeout) {
                       SocketGroupOptions options;
                       options.timeout_seconds = timeout;
                       run_socket_group(ranks, body, options);
                     }},
        BackendParam{"sockets_hierarchical",
                     [](int ranks,
                        const std::function<void(Communicator&)>& body,
                        double timeout) {
                       SocketGroupOptions options;
                       options.timeout_seconds = timeout;
                       options.node_size = 2;
                       run_socket_group(ranks, body, options);
                     }}),
    [](const ::testing::TestParamInfo<BackendParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace vqmc::parallel
