// Edge cases of the thread-backed group machinery: zero/negative deadlines,
// aborts that land before a rank ever reaches a collective, wakeups that
// must not complete a phase early, and interruptible_sleep boundaries.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "parallel/thread_communicator.hpp"

namespace vqmc::parallel {
namespace {

TEST(ThreadCommEdges, ZeroTimeoutMeansNoDeadline) {
  // timeout_seconds == 0 disables the deadline: a slow rank must NOT abort
  // the group even when it takes far longer than any default would allow.
  GroupOptions options;
  options.timeout_seconds = 0;
  run_thread_group(2, [](Communicator& comm) {
    if (comm.rank() == 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    const Real value = comm.allreduce_sum(Real(1));
    EXPECT_DOUBLE_EQ(value, 2.0);
  }, options);
}

TEST(ThreadCommEdges, NegativeTimeoutMeansNoDeadline) {
  GroupOptions options;
  options.timeout_seconds = -3.5;
  run_thread_group(2, [](Communicator& comm) {
    if (comm.rank() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    comm.barrier();
  }, options);
}

TEST(ThreadCommEdges, AbortBeforePeerEntersCollective) {
  // Rank 1 fails before rank 0 ever reaches the barrier: the abort must be
  // observed on *entry* to the collective, not only by ranks already waiting
  // inside one.
  std::atomic<bool> rank1_failed{false};
  try {
    run_thread_group(2, [&](Communicator& comm) {
      if (comm.rank() == 1) {
        rank1_failed.store(true);
        throw Error("scripted failure before any collective");
      }
      while (!rank1_failed.load()) std::this_thread::yield();
      // Give run_thread_group's catch handler time to mark the abort.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      EXPECT_THROW(comm.barrier(), CommTimeoutError);
    });
    FAIL() << "expected the scripted failure to propagate";
  } catch (const Error& e) {
    // The non-timeout root cause must win over consequent timeouts.
    EXPECT_NE(std::string(e.what()).find("scripted failure"),
              std::string::npos);
  }
}

TEST(ThreadCommEdges, LeaveCompletesAPhaseThePeersAlreadyArrivedAt) {
  // Rank 2 leaves while ranks 0 and 1 are already blocked in the barrier:
  // the departure must complete the phase (threshold drops to the number of
  // arrived ranks), not strand them until the deadline.
  GroupOptions options;
  options.timeout_seconds = 10.0;  // far above what the test should take
  Timer timer;
  run_thread_group(3, [](Communicator& comm) {
    if (comm.rank() == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      comm.leave();
      return;
    }
    comm.barrier();
    EXPECT_EQ(comm.live_count(), 2);
  }, options);
  EXPECT_LT(timer.seconds(), 5.0);
}

TEST(ThreadCommEdges, NotifyFromLeaveDoesNotCompleteForeignPhase) {
  // A leave() wakes every waiter (notify_all). Waiters whose phase is NOT
  // complete must re-check their predicate and keep waiting — a spurious or
  // foreign wakeup cannot release a barrier early.
  GroupOptions options;
  options.timeout_seconds = 5.0;
  run_thread_group(4, [](Communicator& comm) {
    if (comm.rank() == 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      comm.leave();  // wakes ranks 0..2 blocked in the barrier below
      return;
    }
    if (comm.rank() == 2) {
      // Arrive last among the survivors so the other two must absorb the
      // leave-notify without completing the phase.
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
    comm.barrier();
    const Real value = comm.allreduce_sum(Real(1));
    EXPECT_DOUBLE_EQ(value, 3.0);
  }, options);
}

TEST(ThreadCommEdges, InterruptibleSleepZeroAndNegativeReturnImmediately) {
  run_thread_group(1, [](Communicator& comm) {
    Timer timer;
    comm.interruptible_sleep(0.0);
    comm.interruptible_sleep(-1.0);
    EXPECT_LT(timer.seconds(), 0.5);
  });
}

TEST(ThreadCommEdges, InterruptibleSleepWakesOnGroupAbort) {
  GroupOptions options;
  options.timeout_seconds = 0.2;
  Timer timer;
  try {
    run_thread_group(2, [](Communicator& comm) {
      if (comm.rank() == 1) {
        comm.interruptible_sleep(30.0);  // must wake when the group aborts
        return;
      }
      (void)comm.allreduce_sum(Real(1));  // times out: peer never joins
    }, options);
    FAIL() << "expected CommTimeoutError";
  } catch (const CommTimeoutError&) {
  }
  // Total wall time is deadline + wakeup, nowhere near the 30 s sleep.
  EXPECT_LT(timer.seconds(), 10.0);
}

TEST(ThreadCommEdges, CollectiveAfterAbortThrowsImmediately) {
  GroupOptions options;
  options.timeout_seconds = 0.2;
  run_thread_group(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.interruptible_sleep(1.0);  // miss rank 0's collective
      // The group is aborted by now; every further collective must fail
      // fast instead of re-arming a deadline.
      Timer timer;
      EXPECT_THROW(comm.barrier(), CommTimeoutError);
      EXPECT_THROW((void)comm.allreduce_sum(Real(1)), CommTimeoutError);
      EXPECT_LT(timer.seconds(), 1.0);
      return;
    }
    EXPECT_THROW((void)comm.allreduce_sum(Real(1)), CommTimeoutError);
  }, options);
}

TEST(ThreadCommEdges, DoubleLeaveIsIdempotent) {
  run_thread_group(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.leave();
      comm.leave();  // second call must be a harmless no-op
      return;
    }
    const Real value = comm.allreduce_sum(Real(1));
    EXPECT_DOUBLE_EQ(value, 1.0);
    EXPECT_EQ(comm.live_count(), 1);
  });
}

}  // namespace
}  // namespace vqmc::parallel
