// train_distributed_on (single-rank body on an arbitrary communicator) and
// checkpoint/resume: the socket-backed path must reproduce the thread-backed
// path bit-for-bit, and a resumed run must replay the tail of the original
// trajectory bit-identically.

#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "parallel/distributed_trainer.hpp"
#include "parallel/socket_communicator.hpp"
#include "parallel/thread_communicator.hpp"

namespace vqmc::parallel {
namespace {

DistributedConfig resume_config(int ranks, int iterations = 12) {
  DistributedConfig cfg;
  cfg.shape = {1, ranks};
  cfg.iterations = iterations;
  cfg.mini_batch_size = 6;
  cfg.eval_batch_per_rank = 16;
  cfg.seed = 7;
  return cfg;
}

void remove_rank_checkpoints(const std::string& base, int ranks) {
  for (int r = 0; r < ranks; ++r) {
    const std::string rank_base = base + ".rank" + std::to_string(r);
    std::remove(rank_base.c_str());
    for (int iter = 0; iter < 64; ++iter)
      std::remove((rank_base + ".iter" + std::to_string(iter)).c_str());
  }
}

TEST(TrainDistributedOn, SocketBackedRunMatchesThreadBackedBitwise) {
  // Same problem, same config: the flat socket star folds contributions in
  // rank order exactly like the thread backend, so the two backends must
  // produce bit-identical trajectories and final parameters.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 1);
  Made made(6, 8);
  made.initialize(2);
  const DistributedConfig cfg = resume_config(3);

  const DistributedResult threads = train_distributed(tim, made, cfg);

  std::mutex mutex;
  DistributedResult sockets;
  run_socket_group(3, [&](Communicator& comm) {
    const DistributedResult mine =
        train_distributed_on(tim, made, cfg, comm);
    if (comm.rank() == 0) {
      const std::lock_guard<std::mutex> lock(mutex);
      sockets = mine;
    }
  });

  ASSERT_EQ(sockets.energy_history.size(), threads.energy_history.size());
  for (std::size_t i = 0; i < threads.energy_history.size(); ++i)
    EXPECT_EQ(sockets.energy_history[i], threads.energy_history[i])
        << "iteration " << i;
  ASSERT_EQ(sockets.final_parameters.size(), threads.final_parameters.size());
  for (std::size_t i = 0; i < threads.final_parameters.size(); ++i)
    EXPECT_EQ(sockets.final_parameters[i], threads.final_parameters[i]);
  EXPECT_EQ(sockets.converged_energy, threads.converged_energy);
  EXPECT_TRUE(sockets.replicas_identical);
  EXPECT_EQ(sockets.final_live_ranks, 3);
}

TEST(TrainDistributedOn, GathersPerRankVectorsThroughTheCommunicator) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 2);
  Made made(5, 6);
  made.initialize(3);
  const DistributedConfig cfg = resume_config(2, 8);

  run_socket_group(2, [&](Communicator& comm) {
    const DistributedResult mine = train_distributed_on(tim, made, cfg, comm);
    // Per-rank vectors are gathered, so BOTH ranks hold the full picture.
    ASSERT_EQ(mine.allreduce_wait_seconds_per_rank.size(), 2u);
    ASSERT_EQ(mine.guard_trips_per_rank.size(), 2u);
    EXPECT_GT(mine.allreduce_wait_seconds_per_rank[0], 0.0);
    EXPECT_GT(mine.allreduce_wait_seconds_per_rank[1], 0.0);
    EXPECT_GT(mine.max_rank_busy_seconds, 0.0);
  });
}

TEST(TrainDistributedOn, RejectsShapeCommunicatorMismatch) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 1);
  Made made(4, 4);
  made.initialize(1);
  const DistributedConfig cfg = resume_config(3);  // 3 ranks, world of 2
  run_socket_group(2, [&](Communicator& comm) {
    EXPECT_THROW((void)train_distributed_on(tim, made, cfg, comm), Error);
  });
}

TEST(DistributedCheckpoint, ResumeReplaysTheTailBitIdentically) {
  const std::string base = "/tmp/vqmc_dist_resume_test";
  const int ranks = 2;
  remove_rank_checkpoints(base, ranks);

  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 1);
  Made made(6, 8);
  made.initialize(2);

  // Reference: one uninterrupted run, no checkpointing involved.
  const DistributedConfig plain = resume_config(ranks);
  const DistributedResult reference = train_distributed(tim, made, plain);

  // Checkpointed run: snapshots at iterations 4 and 8; the run completes,
  // so <base>.rank<r> holds the iteration-8 state.
  DistributedConfig checkpointed = plain;
  checkpointed.checkpoint_base = base;
  checkpointed.checkpoint_every = 4;
  const DistributedResult first = train_distributed(tim, made, checkpointed);
  ASSERT_EQ(first.converged_energy, reference.converged_energy);

  // Resume: load the iteration-8 snapshots and replay 8..12. The replayed
  // tail (parameters, optimizer moments, sampler RNG) must land on exactly
  // the reference's final state.
  DistributedConfig resumed = checkpointed;
  resumed.resume = true;
  const DistributedResult second = train_distributed(tim, made, resumed);

  ASSERT_EQ(second.final_parameters.size(), reference.final_parameters.size());
  for (std::size_t i = 0; i < reference.final_parameters.size(); ++i)
    EXPECT_EQ(second.final_parameters[i], reference.final_parameters[i]);
  EXPECT_EQ(second.converged_energy, reference.converged_energy);
  EXPECT_EQ(second.converged_std, reference.converged_std);
  // Replayed history slots match; pre-resume slots read 0 by contract.
  for (std::size_t i = 8; i < reference.energy_history.size(); ++i)
    EXPECT_EQ(second.energy_history[i], reference.energy_history[i]);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(second.energy_history[i], Real(0));

  remove_rank_checkpoints(base, ranks);
}

TEST(DistributedCheckpoint, ResumeRejectsAForeignModel) {
  const std::string base = "/tmp/vqmc_dist_resume_reject_test";
  remove_rank_checkpoints(base, 1);

  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 1);
  Made made(6, 8);
  made.initialize(2);
  DistributedConfig cfg = resume_config(1, 8);
  cfg.checkpoint_base = base;
  cfg.checkpoint_every = 4;
  (void)train_distributed(tim, made, cfg);

  // Same checkpoint, different architecture: the identity check must fire.
  const TransverseFieldIsing other_tim =
      TransverseFieldIsing::random_dense(7, 1);
  Made other(7, 8);
  other.initialize(2);
  DistributedConfig wrong = cfg;
  wrong.resume = true;
  EXPECT_THROW((void)train_distributed(other_tim, other, wrong), Error);

  remove_rank_checkpoints(base, 1);
}

TEST(DistributedCheckpoint, ResumeRequiresABasePath) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 1);
  Made made(4, 4);
  made.initialize(1);
  DistributedConfig cfg = resume_config(1, 4);
  cfg.resume = true;  // but no checkpoint_base
  EXPECT_THROW((void)train_distributed(tim, made, cfg), Error);
}

}  // namespace
}  // namespace vqmc::parallel
