#include "parallel/sharded_made.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "nn/made.hpp"
#include "parallel/thread_communicator.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc::parallel {
namespace {

Matrix random_bits(std::size_t bs, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix batch(bs, n);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  return batch;
}

Made make_prototype(std::size_t n, std::size_t h, std::uint64_t seed) {
  Made made(n, h);
  rng::Xoshiro256 gen(seed);
  for (Real& p : made.parameters()) p = rng::uniform(gen, -0.8, 0.8);
  return made;
}

TEST(ShardedMade, ShardSizesPartitionTheHiddenLayer) {
  const Made proto = make_prototype(6, 10, 1);
  run_thread_group(3, [&](Communicator& comm) {
    ShardedMade shard(proto, comm);
    EXPECT_EQ(shard.hidden_total(), 10u);
    // 10 units over 3 ranks: 4, 3, 3.
    const std::size_t expected = comm.rank() == 0 ? 4u : 3u;
    EXPECT_EQ(shard.hidden_local(), expected);
  });
}

TEST(ShardedMade, LogPsiMatchesDenseModelOnEveryRank) {
  const std::size_t n = 7, h = 9, bs = 5;
  const Made proto = make_prototype(n, h, 2);
  const Matrix batch = random_bits(bs, n, 3);
  Vector dense_lp(bs);
  proto.log_psi(batch, dense_lp.span());

  for (int ranks : {1, 2, 4}) {
    run_thread_group(ranks, [&](Communicator& comm) {
      ShardedMade shard(proto, comm);
      Vector lp(bs);
      shard.log_psi(batch, lp.span());
      for (std::size_t k = 0; k < bs; ++k)
        ASSERT_NEAR(lp[k], dense_lp[k], 1e-12)
            << "ranks=" << ranks << " rank=" << comm.rank() << " sample " << k;
      EXPECT_EQ(shard.allreduce_count(), 1u);
    });
  }
}

TEST(ShardedMade, ConditionalsMatchDenseModel) {
  const std::size_t n = 6, h = 8, bs = 4;
  const Made proto = make_prototype(n, h, 4);
  const Matrix batch = random_bits(bs, n, 5);
  Matrix dense_cond;
  proto.conditionals(batch, dense_cond);

  run_thread_group(3, [&](Communicator& comm) {
    ShardedMade shard(proto, comm);
    Matrix cond;
    shard.conditionals(batch, cond);
    for (std::size_t i = 0; i < cond.size(); ++i)
      ASSERT_NEAR(cond.data()[i], dense_cond.data()[i], 1e-12);
  });
}

TEST(ShardedMade, GatheredShardGradientsMatchDenseGradient) {
  const std::size_t n = 5, h = 7, bs = 6;
  const Made proto = make_prototype(n, h, 6);
  const Matrix batch = random_bits(bs, n, 7);
  Vector coeff(bs);
  rng::Xoshiro256 gen(8);
  for (std::size_t k = 0; k < bs; ++k) coeff[k] = rng::uniform(gen, -1.0, 1.0);

  // Dense reference gradient.
  Vector dense_grad(proto.num_parameters());
  proto.accumulate_log_psi_gradient(batch, coeff.span(), dense_grad.span());
  const Real* dg_w1 = dense_grad.data();
  const Real* dg_b1 = dense_grad.data() + h * n;
  const Real* dg_w2 = dense_grad.data() + h * n + h;
  const Real* dg_b2 = dense_grad.data() + h * n + h + n * h;

  const int ranks = 3;
  std::vector<int> checked(ranks, 0);
  run_thread_group(ranks, [&](Communicator& comm) {
    ShardedMade shard(proto, comm);
    Vector grad(shard.num_local_parameters());
    shard.accumulate_log_psi_gradient(batch, coeff.span(), grad.span());

    const std::size_t hl = shard.hidden_local();
    const std::size_t hb = shard.hidden_begin();
    const Real* g_w1 = grad.data();
    const Real* g_b1 = grad.data() + hl * n;
    const Real* g_w2 = grad.data() + hl * n + hl;
    const Real* g_b2 = grad.data() + hl * n + hl + n * hl;

    for (std::size_t k = 0; k < hl; ++k) {
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_NEAR(g_w1[k * n + j], dg_w1[(hb + k) * n + j], 1e-12);
      ASSERT_NEAR(g_b1[k], dg_b1[hb + k], 1e-12);
    }
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < hl; ++k)
        ASSERT_NEAR(g_w2[i * hl + k], dg_w2[i * h + (hb + k)], 1e-12);
    // Output bias gradient is replicated on every rank.
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(g_b2[i], dg_b2[i], 1e-12);
    checked[std::size_t(comm.rank())] = 1;
  });
  for (int c : checked) EXPECT_EQ(c, 1);
}

TEST(ShardedMade, LocalParameterCountIsShardSized) {
  const Made proto = make_prototype(6, 8, 9);
  run_thread_group(2, [&](Communicator& comm) {
    ShardedMade shard(proto, comm);
    const std::size_t hl = shard.hidden_local();
    EXPECT_EQ(shard.num_local_parameters(), hl * 6 + hl + 6 * hl + 6);
  });
}

TEST(ShardedMade, MoreRanksThanHiddenUnitsRejected) {
  const Made proto = make_prototype(4, 2, 10);
  EXPECT_THROW(run_thread_group(
                   3, [&](Communicator& comm) { ShardedMade shard(proto, comm); }),
               Error);
}

}  // namespace
}  // namespace vqmc::parallel
