#include "parallel/cost_model.hpp"

#include <gtest/gtest.h>

namespace vqmc::parallel {
namespace {

TEST(CostModel, ParameterCountMatchesPaperFormula) {
  EXPECT_EQ(made_parameter_count(100, 50), 2u * 50u * 100u + 50u + 100u);
}

TEST(CostModel, ForwardFlopsScaleLinearlyInEachFactor) {
  const double base = made_forward_flops(100, 50, 8);
  EXPECT_NEAR(made_forward_flops(200, 50, 8) / base, 2.0, 0.05);
  EXPECT_NEAR(made_forward_flops(100, 100, 8) / base, 2.0, 0.05);
  EXPECT_NEAR(made_forward_flops(100, 50, 16) / base, 2.0, 0.05);
}

TEST(CostModel, SamplingTimeScalesQuadraticallyInN) {
  // n forward passes, each O(h n): total O(h n^2) (Section 4).
  DeviceCostModel device;
  device.kernel_latency_seconds = 0;  // isolate the flop term
  const double t1 = model_sampling_seconds(device, 100, 50, 64);
  const double t2 = model_sampling_seconds(device, 200, 50, 64);
  EXPECT_NEAR(t2 / t1, 4.0, 0.1);
}

TEST(CostModel, SamplingTimeIndependentOfClusterSize) {
  // Weak scaling: per-device time depends only on the per-device batch.
  DeviceCostModel device;
  const double alone = model_sampling_seconds(device, 1000, 120, 4);
  EXPECT_GT(alone, 0);
  // (The cluster does not appear in the signature — the assertion is the
  // API shape itself; this test documents the invariant.)
}

TEST(CostModel, AllreduceIsZeroForSingleDevice) {
  DeviceCostModel device;
  EXPECT_EQ(model_allreduce_seconds(device, {1, 1}, 1000000), 0.0);
}

TEST(CostModel, InterNodeAllreduceIsSlower) {
  DeviceCostModel device;
  const ClusterShape one_node{1, 4};
  const ClusterShape four_nodes{4, 1};
  const std::size_t count = 10'000'000;
  EXPECT_GT(model_allreduce_seconds(device, four_nodes, count),
            model_allreduce_seconds(device, one_node, count));
}

TEST(CostModel, AllreduceIsTinyRelativeToComputeAtPaperScale) {
  // Section 4's efficiency argument: the O(hn) allreduce is negligible
  // against O(h n^2 mbs) compute. Check at the 10K-dim configuration.
  DeviceCostModel device;
  const ClusterShape shape{6, 4};
  const std::size_t n = 10000, h = 424 /* 5 (log n)^2 */, mbs = 4;
  const double comms =
      model_allreduce_seconds(device, shape, made_parameter_count(n, h));
  const double compute = model_sampling_seconds(device, n, h, mbs) +
                         model_local_energy_seconds(device, n, h, mbs, 1024);
  EXPECT_LT(comms, 0.05 * compute);
}

TEST(CostModel, IterationTimeIncludesAllComponents) {
  DeviceCostModel device;
  const ClusterShape shape{2, 2};
  const double total = model_iteration_seconds(device, shape, 500, 193, 16, 1024);
  const double sampling = model_sampling_seconds(device, 500, 193, 16);
  EXPECT_GT(total, sampling);
}

TEST(CostModel, SaturatingMiniBatchMatchesPaperTable7) {
  DeviceCostModel device;
  EXPECT_EQ(saturating_mini_batch(device, 20), 1u << 19);
  EXPECT_EQ(saturating_mini_batch(device, 50), 1u << 17);
  EXPECT_EQ(saturating_mini_batch(device, 100), 1u << 15);
  EXPECT_EQ(saturating_mini_batch(device, 200), 1u << 13);
  EXPECT_EQ(saturating_mini_batch(device, 500), 1u << 11);
  EXPECT_EQ(saturating_mini_batch(device, 1000), 1u << 9);
  EXPECT_EQ(saturating_mini_batch(device, 2000), 1u << 7);
  EXPECT_EQ(saturating_mini_batch(device, 5000), 1u << 4);
  EXPECT_EQ(saturating_mini_batch(device, 10000), 1u << 2);
}

TEST(CostModel, SaturatingMiniBatchFallbackIsMonotoneInN) {
  DeviceCostModel device;
  EXPECT_GE(saturating_mini_batch(device, 300),
            saturating_mini_batch(device, 700));
  EXPECT_GE(saturating_mini_batch(device, 700),
            saturating_mini_batch(device, 3000));
  EXPECT_GE(saturating_mini_batch(device, 100000), 4u);
}

TEST(CostModel, ClusterShapeTotal) {
  EXPECT_EQ((ClusterShape{6, 4}).total(), 24);
  EXPECT_EQ((ClusterShape{1, 1}).total(), 1);
}

}  // namespace
}  // namespace vqmc::parallel
