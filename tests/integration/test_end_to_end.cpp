/// End-to-end validation: the full VQMC stack must recover exact ground
/// states on small instances — the strongest correctness statement the
/// library can make about itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/local_search.hpp"
#include "core/factory.hpp"
#include "core/trainer.hpp"
#include "hamiltonian/exact.hpp"
#include "hamiltonian/maxcut.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "nn/rbm.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "parallel/distributed_trainer.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "sampler/metropolis_sampler.hpp"

namespace vqmc {
namespace {

TEST(EndToEnd, MadeAutoAdamConvergesToExactTimGroundState) {
  const std::size_t n = 6;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 100);
  const ExactGroundState exact = exact_ground_state(tim);

  Made made(n, 12);
  made.initialize(101);
  AutoregressiveSampler sampler(made, 102);
  Adam adam(0.02);
  TrainerConfig cfg;
  cfg.iterations = 400;
  cfg.batch_size = 256;
  VqmcTrainer trainer(tim, made, sampler, adam, cfg);
  trainer.run();

  const EnergyEstimate final = trainer.evaluate(1024);
  // Variational: estimate must stay above lambda_min (up to sampling noise)
  // and land close to it after training.
  EXPECT_GT(final.mean, exact.energy - 0.15);
  EXPECT_LT(final.mean, exact.energy + 0.5);
  // Eq. 4: the std of the stochastic objective shrinks near the eigenstate.
  EXPECT_LT(final.std_dev, 1.0);
}

TEST(EndToEnd, MadeAutoSgdSrConvergesFasterThanPlainSgdOnTim) {
  const std::size_t n = 5;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 103);

  auto final_energy = [&](bool use_sr) {
    Made made(n, 8);
    made.initialize(104);
    AutoregressiveSampler sampler(made, 105);
    Sgd sgd(0.1);
    TrainerConfig cfg;
    cfg.iterations = 60;
    cfg.batch_size = 128;
    cfg.use_sr = use_sr;
    VqmcTrainer trainer(tim, made, sampler, sgd, cfg);
    trainer.run();
    return trainer.evaluate(512).mean;
  };

  const Real with_sr = final_energy(true);
  const Real without_sr = final_energy(false);
  // SR (natural gradient) should be at least as good after few iterations
  // (the paper's consistent observation); allow a small noise margin.
  EXPECT_LT(with_sr, without_sr + 0.3);
}

TEST(EndToEnd, MadeAutoFindsMaxCutOptimumOnSmallGraph) {
  const std::size_t n = 10;
  const MaxCut h = MaxCut::paper_instance(n, 106);
  const Real optimum = exact_max_cut(h.graph());

  Made made(n, 10);
  made.initialize(107);
  AutoregressiveSampler sampler(made, 108);
  Adam adam(0.05);
  TrainerConfig cfg;
  cfg.iterations = 150;
  cfg.batch_size = 128;
  VqmcTrainer trainer(h, made, sampler, adam, cfg);
  trainer.run();

  Matrix samples;
  trainer.evaluate_with_samples(512, samples);
  Real best_cut = 0;
  for (std::size_t k = 0; k < samples.rows(); ++k)
    best_cut = std::max(best_cut, h.cut_value(samples.row(k)));
  EXPECT_GE(best_cut, optimum - 1e-9);  // should find the exact optimum
}

TEST(EndToEnd, RbmMcmcAdamAlsoOptimizesSmallMaxCut) {
  const std::size_t n = 8;
  const MaxCut h = MaxCut::paper_instance(n, 109);
  const Real optimum = exact_max_cut(h.graph());

  Rbm rbm(n, n);
  rbm.initialize(110);
  MetropolisConfig mc;
  mc.burn_in = paper_burn_in(n);
  mc.seed = 111;
  MetropolisSampler sampler(rbm, mc);
  Adam adam(0.05);
  TrainerConfig cfg;
  cfg.iterations = 120;
  cfg.batch_size = 64;
  VqmcTrainer trainer(h, rbm, sampler, adam, cfg);
  trainer.run();

  Matrix samples;
  trainer.evaluate_with_samples(256, samples);
  Real best_cut = 0;
  for (std::size_t k = 0; k < samples.rows(); ++k)
    best_cut = std::max(best_cut, h.cut_value(samples.row(k)));
  EXPECT_GE(best_cut, 0.85 * optimum);
}

TEST(EndToEnd, VarianceShrinksAlongTraining) {
  // Figure 2's blue curve: the std of the stochastic objective decreases
  // as the wavefunction approaches the ground state.
  const std::size_t n = 5;
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(n, 112);
  Made made(n, 8);
  made.initialize(113);
  AutoregressiveSampler sampler(made, 114);
  Adam adam(0.02);
  TrainerConfig cfg;
  cfg.iterations = 250;
  cfg.batch_size = 128;
  VqmcTrainer trainer(tim, made, sampler, adam, cfg);
  trainer.run();

  Real early = 0, late = 0;
  for (int i = 0; i < 10; ++i) {
    early += trainer.history()[std::size_t(i)].std_dev;
    late += trainer.history()[trainer.history().size() - 1 - std::size_t(i)]
                .std_dev;
  }
  EXPECT_LT(late, early);
}

TEST(EndToEnd, DistributedTrainingFindsMaxCutOptimum) {
  // The full multi-device stack on a combinatorial problem: 4 virtual
  // devices, effective batch 4 x 32, must find the exact optimum of a small
  // Max-Cut instance.
  const std::size_t n = 10;
  const MaxCut h = MaxCut::paper_instance(n, 200);
  const Real optimum = exact_max_cut(h.graph());

  Made proto = Made::with_default_hidden(n);
  proto.initialize(201);
  parallel::DistributedConfig cfg;
  cfg.shape = {2, 2};
  cfg.iterations = 120;
  cfg.mini_batch_size = 32;
  cfg.eval_batch_per_rank = 128;
  cfg.seed = 202;
  const parallel::DistributedResult r =
      parallel::train_distributed(h, proto, cfg);
  EXPECT_TRUE(r.replicas_identical);
  // Converged mean energy implies a mean cut close to the optimum.
  EXPECT_GE(h.cut_from_energy(r.converged_energy), 0.9 * optimum);
}

TEST(EndToEnd, VqmcCutPolishedByLocalSearchMatchesBaselinePipeline) {
  // Library composition: VQMC proposal + classical polish.
  const std::size_t n = 12;
  const MaxCut h = MaxCut::paper_instance(n, 115);
  Made made(n, 8);
  made.initialize(116);
  AutoregressiveSampler sampler(made, 117);
  Adam adam(0.05);
  TrainerConfig cfg;
  cfg.iterations = 60;
  cfg.batch_size = 64;
  VqmcTrainer trainer(h, made, sampler, adam, cfg);
  trainer.run();

  Matrix samples;
  trainer.evaluate_with_samples(64, samples);
  Vector best(n);
  Real best_cut = -1;
  for (std::size_t k = 0; k < samples.rows(); ++k) {
    const Real c = h.cut_value(samples.row(k));
    if (c > best_cut) {
      best_cut = c;
      std::copy(samples.row(k).begin(), samples.row(k).end(), best.begin());
    }
  }
  const Real polished = baselines::local_search_1swap(h.graph(), best);
  EXPECT_GE(polished, best_cut);
  EXPECT_NEAR(polished, exact_max_cut(h.graph()), 1.0);
}

}  // namespace
}  // namespace vqmc
