#include "hamiltonian/qubo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hamiltonian/exact.hpp"

namespace vqmc {
namespace {

TEST(Qubo, HandComputedEnergy) {
  // E(x) = 2 x0 - 3 x1 + 4 x0 x1.
  Qubo q(2, {{0, 0, 2.0}, {1, 1, -3.0}, {0, 1, 4.0}});
  Vector x(2);
  x[0] = 0;
  x[1] = 0;
  EXPECT_DOUBLE_EQ(q.diagonal(x.span()), 0.0);
  x[1] = 1;
  EXPECT_DOUBLE_EQ(q.diagonal(x.span()), -3.0);
  x[0] = 1;
  EXPECT_DOUBLE_EQ(q.diagonal(x.span()), 3.0);
  x[1] = 0;
  EXPECT_DOUBLE_EQ(q.diagonal(x.span()), 2.0);
}

TEST(Qubo, ExactMinimumByScan) {
  Qubo q(2, {{0, 0, 2.0}, {1, 1, -3.0}, {0, 1, 4.0}});
  const auto [energy, argmin] = exact_diagonal_minimum(q);
  EXPECT_DOUBLE_EQ(energy, -3.0);
  EXPECT_EQ(argmin[0], 0.0);
  EXPECT_EQ(argmin[1], 1.0);
}

TEST(Qubo, FlipDeltaMatchesRecomputation) {
  const Qubo q = Qubo::random_dense(10, 17);
  Vector x(10);
  decode_basis_state(0b1011010110, x.span());
  for (std::size_t site = 0; site < 10; ++site) {
    Vector flipped = x;
    flipped[site] = 1 - flipped[site];
    EXPECT_NEAR(q.diagonal_flip_delta(x.span(), site),
                q.diagonal(flipped.span()) - q.diagonal(x.span()), 1e-12);
  }
}

TEST(Qubo, InvalidTermsRejected) {
  EXPECT_THROW(Qubo(3, {{2, 1, 1.0}}), Error);  // i > j
  EXPECT_THROW(Qubo(3, {{0, 3, 1.0}}), Error);  // out of range
}

TEST(Qubo, RandomDenseTermCount) {
  const Qubo q = Qubo::random_dense(6, 1);
  EXPECT_EQ(q.terms().size(), 21u);  // n (n + 1) / 2
  EXPECT_TRUE(q.is_diagonal());
}

}  // namespace
}  // namespace vqmc
