#include "hamiltonian/exact.hpp"

#include <gtest/gtest.h>

#include "hamiltonian/maxcut.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {
namespace {

TEST(Exact, LanczosMatchesDenseSpectrumOnTim) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 4);
  const linalg::EigenDecomposition dense = exact_spectrum(tim);
  const ExactGroundState sparse = exact_ground_state(tim);
  EXPECT_NEAR(sparse.energy, dense.eigenvalues[0], 1e-8);
}

TEST(Exact, GroundStateIsNonNegativeUpToGlobalSign) {
  // Perron–Frobenius: with alpha_i >= 0 the ground vector can be chosen
  // entrywise non-negative. The Lanczos vector may carry a global sign.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 8);
  const ExactGroundState gs = exact_ground_state(tim);
  Real sign = 0;
  for (std::size_t i = 0; i < gs.amplitudes.size(); ++i) {
    if (std::abs(gs.amplitudes[i]) > 1e-8) {
      sign = gs.amplitudes[i] > 0 ? 1 : -1;
      break;
    }
  }
  for (std::size_t i = 0; i < gs.amplitudes.size(); ++i)
    EXPECT_GE(sign * gs.amplitudes[i], -1e-8);
}

TEST(Exact, ApplyDenseMatchesToDense) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 2);
  const Matrix h = tim.to_dense();
  const std::size_t dim = 16;
  Vector v(dim), y_apply(dim), y_dense(dim);
  for (std::size_t i = 0; i < dim; ++i) v[i] = Real(i) - 7.5;
  tim.apply_dense(v.span(), y_apply.span());
  gemv(h, v.span(), y_dense.span());
  for (std::size_t i = 0; i < dim; ++i)
    EXPECT_NEAR(y_apply[i], y_dense[i], 1e-11);
}

TEST(Exact, DiagonalMinimumAgreesWithSpectrumForMaxCut) {
  const MaxCut h{Graph::bernoulli_symmetrized(8, 21)};
  const auto [scan_energy, scan_x] = exact_diagonal_minimum(h);
  const linalg::EigenDecomposition eig = exact_spectrum(h);
  EXPECT_NEAR(scan_energy, eig.eigenvalues[0], 1e-9);
  (void)scan_x;
}

TEST(Exact, MaxCutBruteForceOnKnownGraphs) {
  EXPECT_DOUBLE_EQ(exact_max_cut(Graph::cycle(6)), 6.0);
  EXPECT_DOUBLE_EQ(exact_max_cut(Graph::cycle(7)), 6.0);
  EXPECT_DOUBLE_EQ(exact_max_cut(Graph::complete(4)), 4.0);   // 2x2 split
  EXPECT_DOUBLE_EQ(exact_max_cut(Graph::complete(5)), 6.0);   // 2x3 split
}

TEST(Exact, VarianceVanishesAtExactEigenstate) {
  // Eq. 4's signature property: if psi is the exact ground state, the local
  // energy is constant (= lambda_min) for every configuration with nonzero
  // amplitude.
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(4, 9);
  // Use the dense decomposition for a machine-precision eigenvector (the
  // Lanczos Ritz vector's residual is only ~sqrt of its value tolerance).
  const linalg::EigenDecomposition spectrum = exact_spectrum(tim);
  ExactGroundState gs;
  gs.energy = spectrum.eigenvalues[0];
  gs.amplitudes = Vector(16);
  for (std::size_t i = 0; i < 16; ++i)
    gs.amplitudes[i] = spectrum.eigenvectors(i, 0);
  const std::size_t n = 4, dim = 16;
  Vector x(n);
  for (std::uint64_t idx = 0; idx < dim; ++idx) {
    decode_basis_state(idx, x.span());
    if (std::abs(gs.amplitudes[idx]) < 1e-8) continue;
    Real local = tim.diagonal(x.span());
    tim.for_each_off_diagonal(
        x.span(), [&](std::span<const std::size_t> flips, Real value) {
          std::uint64_t col = idx;
          for (std::size_t site : flips)
            col ^= std::uint64_t(1) << (n - 1 - site);
          local += value * gs.amplitudes[col] / gs.amplitudes[idx];
        });
    EXPECT_NEAR(local, gs.energy, 1e-6);
  }
}

}  // namespace
}  // namespace vqmc
