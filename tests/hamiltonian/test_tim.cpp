#include "hamiltonian/transverse_field_ising.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "hamiltonian/exact.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/lanczos.hpp"

namespace vqmc {
namespace {

TEST(BasisEncoding, RoundTripsAndMatchesPaperConvention) {
  // x = 2^{n-1} x_1 ... 2^0 x_n: site 0 is the most significant bit.
  Vector x(3);
  decode_basis_state(0b101, x.span());
  EXPECT_EQ(x[0], 1);
  EXPECT_EQ(x[1], 0);
  EXPECT_EQ(x[2], 1);
  EXPECT_EQ(encode_basis_state(x.span()), 0b101u);
  for (std::uint64_t idx = 0; idx < 8; ++idx) {
    decode_basis_state(idx, x.span());
    EXPECT_EQ(encode_basis_state(x.span()), idx);
  }
}

TEST(Tim, TwoSpinHandComputedMatrix) {
  // H = -a0 X_0 - a1 X_1 - b0 Z_0 - b1 Z_1 - b01 Z_0 Z_1.
  const Real a0 = 0.3, a1 = 0.7, b0 = 0.2, b1 = -0.4, b01 = 0.5;
  TransverseFieldIsing tim({a0, a1}, {b0, b1}, {{0, 1, b01}});
  const Matrix h = tim.to_dense();

  // Basis order |00>, |01>, |10>, |11> (site 0 = MSB); Z eigenvalue
  // s = 1 - 2x.
  EXPECT_NEAR(h(0, 0), -b0 - b1 - b01, 1e-14);        // s = (+1, +1)
  EXPECT_NEAR(h(1, 1), -b0 + b1 + b01, 1e-14);        // s = (+1, -1)
  EXPECT_NEAR(h(2, 2), b0 - b1 + b01, 1e-14);         // s = (-1, +1)
  EXPECT_NEAR(h(3, 3), b0 + b1 - b01, 1e-14);         // s = (-1, -1)
  // X_1 flips the LSB: |00> <-> |01|; X_0 flips the MSB: |00> <-> |10>.
  EXPECT_NEAR(h(0, 1), -a1, 1e-14);
  EXPECT_NEAR(h(0, 2), -a0, 1e-14);
  EXPECT_NEAR(h(1, 3), -a0, 1e-14);
  EXPECT_NEAR(h(2, 3), -a1, 1e-14);
  // No double flips.
  EXPECT_EQ(h(0, 3), 0.0);
  EXPECT_EQ(h(1, 2), 0.0);
}

TEST(Tim, DenseMatrixIsSymmetric) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(5, 3);
  const Matrix h = tim.to_dense();
  for (std::size_t i = 0; i < h.rows(); ++i)
    for (std::size_t j = 0; j < h.cols(); ++j)
      EXPECT_EQ(h(i, j), h(j, i));
}

TEST(Tim, SingleSpinExactSolution) {
  // A single spin in a tilted field, H = -a X - b Z, has ground energy
  // -sqrt(a^2 + b^2). Embed it as spin 0 of a 2-spin system with the other
  // spin free (alpha = beta = 0, no coupling): the spectrum is the tensor
  // product, so the ground energy is unchanged.
  const Real a = 0.6, b = 0.8;
  TransverseFieldIsing tim({a, 0.0}, {b, 0.0}, {});
  const linalg::EigenDecomposition eig = exact_spectrum(tim);
  EXPECT_NEAR(eig.eigenvalues[0], -std::sqrt(a * a + b * b), 1e-10);
}

TEST(Tim, RowSparsityIsNPlusOne) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(6, 1);
  EXPECT_EQ(tim.row_sparsity(), 7u);
  Vector x(6);
  decode_basis_state(13, x.span());
  std::size_t entries = 0;
  tim.for_each_off_diagonal(
      x.span(), [&](std::span<const std::size_t> flips, Real value) {
        EXPECT_EQ(flips.size(), 1u);
        EXPECT_LT(value, 0.0);  // -alpha_i with alpha_i > 0 a.s.
        ++entries;
      });
  EXPECT_EQ(entries, 6u);
}

TEST(Tim, DiagonalFlipDeltaMatchesRecomputation) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(8, 5);
  Vector x(8);
  decode_basis_state(0b10110101, x.span());
  for (std::size_t site = 0; site < 8; ++site) {
    const Real before = tim.diagonal(x.span());
    Vector flipped = x;
    flipped[site] = 1 - flipped[site];
    const Real after = tim.diagonal(flipped.span());
    EXPECT_NEAR(tim.diagonal_flip_delta(x.span(), site), after - before,
                1e-12)
        << "site " << site;
  }
}

TEST(Tim, RandomDenseRespectsParameterRanges) {
  const TransverseFieldIsing tim = TransverseFieldIsing::random_dense(20, 42);
  for (Real a : tim.alpha()) {
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 1.0);
  }
  for (Real b : tim.beta()) {
    EXPECT_GE(b, -1.0);
    EXPECT_LT(b, 1.0);
  }
  EXPECT_EQ(tim.couplings().size(), 20u * 19u / 2u);
}

TEST(Tim, RandomSparseHasBoundedCouplings) {
  const std::size_t n = 100, degree = 4;
  const TransverseFieldIsing tim =
      TransverseFieldIsing::random_sparse(n, degree, 1);
  EXPECT_LE(tim.couplings().size(), n * degree);
  EXPECT_GE(tim.couplings().size(), n * degree / 2);  // dedup removes few
  for (const auto& c : tim.couplings()) EXPECT_LT(c.i, c.j);
}

TEST(Tim, NegativeAlphaRejected) {
  EXPECT_THROW(TransverseFieldIsing({-0.1, 0.2}, {0.0, 0.0}, {}), Error);
}

TEST(TimChain, JordanWignerMatchesLanczosAcrossCouplings) {
  // The closed-form free-fermion energy must agree with exact
  // diagonalization for every (J, h) regime: ferromagnetic (h < J),
  // critical (h = J) and paramagnetic (h > J).
  for (const auto& [coupling, field] : std::vector<std::pair<Real, Real>>{
           {1.0, 0.3}, {1.0, 1.0}, {0.4, 1.2}, {0.0, 1.0}, {1.0, 0.0}}) {
    for (std::size_t n : {4u, 6u, 9u}) {
      const TransverseFieldIsing chain =
          TransverseFieldIsing::uniform_chain(n, coupling, field);
      linalg::LanczosOptions lz;
      lz.tolerance = 1e-12;
      const Real numeric = exact_ground_state(chain, lz).energy;
      const Real analytic = tfim_chain_ground_energy(n, coupling, field);
      EXPECT_NEAR(numeric, analytic, 1e-7)
          << "n=" << n << " J=" << coupling << " h=" << field;
    }
  }
}

TEST(TimChain, FerromagneticLimitIsMinusNJ) {
  EXPECT_NEAR(tfim_chain_ground_energy(10, 2.0, 0.0), -20.0, 1e-12);
}

TEST(TimChain, ParamagneticLimitIsMinusNH) {
  EXPECT_NEAR(tfim_chain_ground_energy(10, 0.0, 1.5), -15.0, 1e-12);
}

TEST(TimChain, CriticalEnergyDensityApproachesMinusFourOverPi) {
  // At J = h = 1 the thermodynamic energy density is -4/pi; finite chains
  // converge to it quickly.
  const Real density = tfim_chain_ground_energy(256, 1.0, 1.0) / 256;
  EXPECT_NEAR(density, -4.0 / 3.14159265358979323846, 1e-4);
}

TEST(TimChain, UniformChainStructure) {
  const TransverseFieldIsing chain =
      TransverseFieldIsing::uniform_chain(6, 0.5, 0.7, /*periodic=*/true);
  EXPECT_EQ(chain.couplings().size(), 6u);  // 5 bonds + wrap
  for (Real a : chain.alpha()) EXPECT_EQ(a, 0.7);
  for (Real b : chain.beta()) EXPECT_EQ(b, 0.0);
  const TransverseFieldIsing open =
      TransverseFieldIsing::uniform_chain(6, 0.5, 0.7, /*periodic=*/false);
  EXPECT_EQ(open.couplings().size(), 5u);
}

TEST(Tim, DeterministicPerSeed) {
  const TransverseFieldIsing a = TransverseFieldIsing::random_dense(10, 5);
  const TransverseFieldIsing b = TransverseFieldIsing::random_dense(10, 5);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a.alpha()[i], b.alpha()[i]);
  for (std::size_t i = 0; i < a.couplings().size(); ++i)
    EXPECT_EQ(a.couplings()[i].beta, b.couplings()[i].beta);
}

}  // namespace
}  // namespace vqmc
