#include "hamiltonian/maxcut.hpp"

#include <gtest/gtest.h>

#include "hamiltonian/exact.hpp"

namespace vqmc {
namespace {

TEST(MaxCut, EnergyCutRelationHoldsOnEveryConfiguration) {
  const Graph g = Graph::bernoulli_symmetrized(8, 3);
  const MaxCut h{g};
  Vector x(8);
  for (std::uint64_t idx = 0; idx < 256; ++idx) {
    decode_basis_state(idx, x.span());
    const Real cut = h.cut_value(x.span());
    const Real energy = h.diagonal(x.span());
    EXPECT_NEAR(h.cut_from_energy(energy), cut, 1e-10);
    EXPECT_NEAR(h.energy_from_cut(cut), energy, 1e-10);
  }
}

TEST(MaxCut, GroundStateIsMaximumCut) {
  const Graph g = Graph::bernoulli_symmetrized(10, 11);
  const MaxCut h{g};
  const auto [energy, argmin] = exact_diagonal_minimum(h);
  const Real best_cut = exact_max_cut(g);
  EXPECT_NEAR(h.cut_value(argmin.span()), best_cut, 1e-10);
  EXPECT_NEAR(h.cut_from_energy(energy), best_cut, 1e-10);
}

TEST(MaxCut, IsDiagonalAndSparsityOne) {
  const MaxCut h{Graph::cycle(5)};
  EXPECT_TRUE(h.is_diagonal());
  EXPECT_EQ(h.row_sparsity(), 1u);
  Vector x(5);
  std::size_t visits = 0;
  h.for_each_off_diagonal(x.span(),
                          [&](std::span<const std::size_t>, Real) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

TEST(MaxCut, DiagonalFlipDeltaMatchesRecomputation) {
  const Graph g = Graph::bernoulli_symmetrized(12, 5);
  const MaxCut h{g};
  Vector x(12);
  decode_basis_state(0b101101011010, x.span());
  for (std::size_t site = 0; site < 12; ++site) {
    const Real before = h.diagonal(x.span());
    Vector flipped = x;
    flipped[site] = 1 - flipped[site];
    EXPECT_NEAR(h.diagonal_flip_delta(x.span(), site),
                h.diagonal(flipped.span()) - before, 1e-12);
  }
}

TEST(MaxCut, CycleGroundStateCutsEverythingForEvenN) {
  const MaxCut h{Graph::cycle(6)};
  const auto [energy, argmin] = exact_diagonal_minimum(h);
  EXPECT_NEAR(h.cut_value(argmin.span()), 6.0, 1e-12);
  (void)energy;
}

TEST(MaxCut, PaperInstanceMatchesGraphGenerator) {
  const MaxCut h = MaxCut::paper_instance(20, 9);
  const Graph g = Graph::bernoulli_symmetrized(20, 9);
  EXPECT_EQ(h.graph().num_edges(), g.num_edges());
}

TEST(MaxCut, EnergySymmetricUnderGlobalFlip) {
  // The cut (and therefore the energy) is invariant under complementing the
  // partition.
  const Graph g = Graph::bernoulli_symmetrized(9, 13);
  const MaxCut h{g};
  Vector x(9), xc(9);
  decode_basis_state(0b101010011, x.span());
  for (std::size_t i = 0; i < 9; ++i) xc[i] = 1 - x[i];
  EXPECT_NEAR(h.diagonal(x.span()), h.diagonal(xc.span()), 1e-12);
}

}  // namespace
}  // namespace vqmc
