#include "hamiltonian/heisenberg.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hamiltonian/exact.hpp"
#include "linalg/jacobi_eigen.hpp"

namespace vqmc {
namespace {

TEST(Heisenberg, TwoSiteBlockIsExactlySolvable) {
  // H = Jz Z0 Z1 - Jxy (X0 X1 + Y0 Y1) on one edge has spectrum
  // {Jz, Jz, -Jz + 2 Jxy... } — concretely: diag(Jz, -Jz, -Jz, Jz) with
  // off-diagonal -2 Jxy between |01> and |10>; eigenvalues are
  // Jz (x2), -Jz - 2 Jxy, -Jz + 2 Jxy.
  const Real jz = 0.7, jxy = 0.4;
  Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  const XxzHeisenberg h(std::move(g), jz, jxy);
  const linalg::EigenDecomposition eig = exact_spectrum(h);
  EXPECT_NEAR(eig.eigenvalues[0], -jz - 2 * jxy, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], -jz + 2 * jxy, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], jz, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[3], jz, 1e-12);
}

TEST(Heisenberg, OffDiagonalsOnlyConnectAntiAlignedPairs) {
  const XxzHeisenberg h = XxzHeisenberg::chain(6, 0.5, 0.3);
  Vector x(6);
  decode_basis_state(0b101010, x.span());  // fully anti-aligned ring
  std::size_t count = 0;
  h.for_each_off_diagonal(x.span(),
                          [&](std::span<const std::size_t> flips, Real value) {
                            EXPECT_EQ(flips.size(), 2u);
                            EXPECT_NEAR(value, -2 * 0.3, 1e-15);
                            ++count;
                          });
  EXPECT_EQ(count, 6u);  // every ring edge is anti-aligned

  decode_basis_state(0b000000, x.span());  // aligned: no XX+YY action
  count = 0;
  h.for_each_off_diagonal(
      x.span(), [&](std::span<const std::size_t>, Real) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(Heisenberg, DenseMatrixIsSymmetric) {
  const XxzHeisenberg h = XxzHeisenberg::chain(5, -0.3, 0.8);
  const Matrix m = h.to_dense();
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) EXPECT_EQ(m(i, j), m(j, i));
}

TEST(Heisenberg, MagnetizationIsConserved) {
  // XX+YY flips an anti-aligned pair: the number of up spins never changes,
  // so H is block diagonal in total magnetization. Check via the dense
  // matrix: entries between different-magnetization states vanish.
  const XxzHeisenberg h = XxzHeisenberg::chain(4, 0.5, 0.5);
  const Matrix m = h.to_dense();
  auto popcount = [](std::uint64_t v) {
    int c = 0;
    while (v) {
      c += int(v & 1);
      v >>= 1;
    }
    return c;
  };
  for (std::uint64_t r = 0; r < 16; ++r)
    for (std::uint64_t c = 0; c < 16; ++c)
      if (popcount(r) != popcount(c)) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Heisenberg, LanczosGroundStateOnSmallChain) {
  // XY ring of 4 spins (Jz = 0): exactly solvable by Jordan-Wigner; just
  // cross-check Lanczos against the dense spectrum here.
  const XxzHeisenberg h = XxzHeisenberg::chain(4, 0.0, 1.0);
  const linalg::EigenDecomposition dense = exact_spectrum(h);
  const ExactGroundState sparse = exact_ground_state(h);
  EXPECT_NEAR(sparse.energy, dense.eigenvalues[0], 1e-8);
}

TEST(Heisenberg, RowSparsityBound) {
  const XxzHeisenberg h = XxzHeisenberg::chain(8, 0.2, 0.1);
  EXPECT_EQ(h.row_sparsity(), 1u + 8u);
}

TEST(Heisenberg, NegativeJxyRejected) {
  EXPECT_THROW(XxzHeisenberg::chain(4, 0.5, -0.1), Error);
}

TEST(Heisenberg, ZeroJxyIsDiagonalInPractice) {
  const XxzHeisenberg h = XxzHeisenberg::chain(5, 0.9, 0.0);
  Vector x(5);
  decode_basis_state(0b10110, x.span());
  std::size_t count = 0;
  h.for_each_off_diagonal(
      x.span(), [&](std::span<const std::size_t>, Real) { ++count; });
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace vqmc
