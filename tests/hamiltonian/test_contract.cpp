/// Interface-contract property tests: every Hamiltonian family must satisfy
/// the Definition-2.1 requirements the rest of the library relies on —
/// symmetry, non-positive off-diagonals (Perron-Frobenius), agreement
/// between the visitor enumeration, to_dense() and apply_dense(), and the
/// advertised row-sparsity bound.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "hamiltonian/exact.hpp"
#include "hamiltonian/heisenberg.hpp"
#include "hamiltonian/maxcut.hpp"
#include "hamiltonian/qubo.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {
namespace {

using Factory = std::function<std::unique_ptr<Hamiltonian>()>;

struct Family {
  std::string label;
  Factory make;
};

std::vector<Family> families() {
  return {
      {"TIM-dense",
       [] {
         return std::make_unique<TransverseFieldIsing>(
             TransverseFieldIsing::random_dense(6, 11));
       }},
      {"TIM-chain",
       [] {
         return std::make_unique<TransverseFieldIsing>(
             TransverseFieldIsing::uniform_chain(6, 0.8, 0.6));
       }},
      {"MaxCut",
       [] { return std::make_unique<MaxCut>(MaxCut::paper_instance(6, 12)); }},
      {"QUBO", [] { return std::make_unique<Qubo>(Qubo::random_dense(6, 13)); }},
      {"XXZ",
       [] {
         return std::make_unique<XxzHeisenberg>(XxzHeisenberg::chain(6, 0.4, 0.7));
       }},
  };
}

class HamiltonianContract : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HamiltonianContract, DenseMatrixIsSymmetric) {
  const auto h = families()[GetParam()].make();
  const Matrix m = h->to_dense();
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = i + 1; j < m.cols(); ++j)
      ASSERT_EQ(m(i, j), m(j, i)) << families()[GetParam()].label;
}

TEST_P(HamiltonianContract, OffDiagonalsAreNonPositive) {
  // Section 2.1's sign assumption: non-positive off-diagonals so the ground
  // state can be chosen entrywise non-negative.
  const auto h = families()[GetParam()].make();
  const Matrix m = h->to_dense();
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (i != j)
        ASSERT_LE(m(i, j), 0.0) << families()[GetParam()].label;
}

TEST_P(HamiltonianContract, VisitorAgreesWithDenseMatrix) {
  const auto h = families()[GetParam()].make();
  const std::size_t n = h->num_spins();
  const Matrix m = h->to_dense();
  Vector x(n);
  for (std::uint64_t row = 0; row < m.rows(); ++row) {
    decode_basis_state(row, x.span());
    ASSERT_NEAR(h->diagonal(x.span()), m(row, row), 1e-12);
    Real off_sum_visitor = 0;
    h->for_each_off_diagonal(
        x.span(), [&](std::span<const std::size_t> flips, Real value) {
          ASSERT_FALSE(flips.empty());
          off_sum_visitor += value;
        });
    Real off_sum_dense = 0;
    for (std::uint64_t col = 0; col < m.cols(); ++col)
      if (col != row) off_sum_dense += m(row, col);
    ASSERT_NEAR(off_sum_visitor, off_sum_dense, 1e-12)
        << families()[GetParam()].label << " row " << row;
  }
}

TEST_P(HamiltonianContract, ApplyDenseMatchesMaterializedMatrix) {
  const auto h = families()[GetParam()].make();
  const Matrix m = h->to_dense();
  const std::size_t dim = m.rows();
  rng::Xoshiro256 gen(99);
  Vector v(dim), via_apply(dim), via_gemv(dim);
  for (std::size_t i = 0; i < dim; ++i) v[i] = rng::uniform(gen, -1.0, 1.0);
  h->apply_dense(v.span(), via_apply.span());
  gemv(m, v.span(), via_gemv.span());
  for (std::size_t i = 0; i < dim; ++i)
    ASSERT_NEAR(via_apply[i], via_gemv[i], 1e-11);
}

TEST_P(HamiltonianContract, RowSparsityBoundHolds) {
  const auto h = families()[GetParam()].make();
  const std::size_t n = h->num_spins();
  Vector x(n);
  for (std::uint64_t row = 0; row < (std::uint64_t(1) << n); ++row) {
    decode_basis_state(row, x.span());
    std::size_t entries = 1;  // the diagonal
    h->for_each_off_diagonal(
        x.span(), [&](std::span<const std::size_t>, Real) { ++entries; });
    ASSERT_LE(entries, h->row_sparsity()) << families()[GetParam()].label;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HamiltonianContract,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return families()[info.param].label.substr(0, 3) +
                                  std::to_string(info.param);
                         });

}  // namespace
}  // namespace vqmc
