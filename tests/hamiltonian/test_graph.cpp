#include "hamiltonian/graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tensor/vector.hpp"

namespace vqmc {
namespace {

TEST(Graph, AddEdgeAndAdjacency) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2, 2.5);
  g.add_edge(3, 0);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.5);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
  EXPECT_EQ(g.neighbors(2).size(), 1u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), Error);
}

TEST(Graph, OutOfRangeVertexRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), Error);
}

TEST(Graph, NeighborsBeforeFinalizeThrows) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.neighbors(0), Error);
}

TEST(Graph, CutValueOfTriangle) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  Vector all_same{0, 0, 0};
  EXPECT_DOUBLE_EQ(g.cut_value(all_same.span()), 0.0);
  Vector split{1, 0, 0};  // vertex 0 alone: cuts 2 of 3 edges
  EXPECT_DOUBLE_EQ(g.cut_value(split.span()), 2.0);
}

TEST(Graph, CutValueWeighted) {
  Graph g(2);
  g.add_edge(0, 1, 3.5);
  g.finalize();
  Vector x{1, 0};
  EXPECT_DOUBLE_EQ(g.cut_value(x.span()), 3.5);
}

TEST(Graph, CycleGeneratorKnownMaxCut) {
  const Graph even = Graph::cycle(6);
  EXPECT_EQ(even.num_edges(), 6u);
  Vector alternating{0, 1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(even.cut_value(alternating.span()), 6.0);
}

TEST(Graph, CompleteGraphEdgeCount) {
  const Graph k5 = Graph::complete(5);
  EXPECT_EQ(k5.num_edges(), 10u);
  EXPECT_EQ(k5.max_degree(), 4u);
}

TEST(Graph, BernoulliSymmetrizedIsDeterministicPerSeed) {
  const Graph a = Graph::bernoulli_symmetrized(30, 7);
  const Graph b = Graph::bernoulli_symmetrized(30, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].u, b.edges()[i].u);
    EXPECT_EQ(a.edges()[i].v, b.edges()[i].v);
  }
  const Graph c = Graph::bernoulli_symmetrized(30, 8);
  EXPECT_NE(a.num_edges(), c.num_edges());  // overwhelmingly likely
}

TEST(Graph, BernoulliSymmetrizedDensityNearOneQuarter) {
  // Edge kept iff both directed Bernoulli(1/2) draws are 1 -> p = 1/4.
  const std::size_t n = 200;
  const Graph g = Graph::bernoulli_symmetrized(n, 99);
  const double pairs = double(n) * double(n - 1) / 2;
  const double density = double(g.num_edges()) / pairs;
  EXPECT_NEAR(density, 0.25, 0.02);
}

TEST(Graph, ErdosRenyiDensityMatchesP) {
  const std::size_t n = 150;
  const Graph g = Graph::erdos_renyi(n, 0.1, 5);
  const double pairs = double(n) * double(n - 1) / 2;
  EXPECT_NEAR(double(g.num_edges()) / pairs, 0.1, 0.02);
}

TEST(Graph, ErdosRenyiExtremes) {
  EXPECT_EQ(Graph::erdos_renyi(20, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(Graph::erdos_renyi(20, 1.0, 1).num_edges(), 190u);
}

}  // namespace
}  // namespace vqmc
