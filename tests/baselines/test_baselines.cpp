#include <gtest/gtest.h>

#include "baselines/burer_monteiro.hpp"
#include "baselines/goemans_williamson.hpp"
#include "baselines/local_search.hpp"
#include "baselines/random_cut.hpp"
#include "hamiltonian/exact.hpp"

namespace vqmc::baselines {
namespace {

TEST(RandomCut, PartitionIsValidAndCutMatches) {
  const Graph g = Graph::bernoulli_symmetrized(20, 1);
  const CutResult r = random_cut(g, 2);
  ASSERT_EQ(r.partition.size(), 20u);
  for (Real v : r.partition) EXPECT_TRUE(v == 0.0 || v == 1.0);
  EXPECT_DOUBLE_EQ(r.cut, g.cut_value(r.partition.span()));
}

TEST(RandomCut, AveragesToHalfTheEdges) {
  const Graph g = Graph::bernoulli_symmetrized(60, 3);
  Real total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) total += random_cut(g, 100 + t).cut;
  EXPECT_NEAR(total / trials, Real(g.num_edges()) / 2,
              0.05 * Real(g.num_edges()));
}

TEST(RandomCut, BestOfManyBeatsSingle) {
  const Graph g = Graph::bernoulli_symmetrized(30, 4);
  const CutResult single = random_cut(g, 5);
  const CutResult best = best_random_cut(g, 64, 5);
  EXPECT_GE(best.cut, single.cut);
}

TEST(BurerMonteiro, FactorRowsAreUnitNorm) {
  const Graph g = Graph::bernoulli_symmetrized(15, 6);
  const BurerMonteiroResult r = solve_maxcut_sdp(g);
  for (std::size_t i = 0; i < r.v.rows(); ++i) {
    Real norm2 = 0;
    for (std::size_t c = 0; c < r.v.cols(); ++c)
      norm2 += r.v(i, c) * r.v(i, c);
    EXPECT_NEAR(norm2, 1.0, 1e-10);
  }
}

TEST(BurerMonteiro, SdpObjectiveUpperBoundsMaxCut) {
  const Graph g = Graph::bernoulli_symmetrized(14, 7);
  const Real optimum = exact_max_cut(g);
  const BurerMonteiroResult r = solve_maxcut_sdp(g);
  EXPECT_GE(r.sdp_objective, optimum - 1e-6);
  // And is within the GW integrality regime (not wildly loose).
  EXPECT_LE(r.sdp_objective, optimum / 0.87 + 1.0);
}

TEST(BurerMonteiro, BipartiteSdpIsTight) {
  // On the even cycle the SDP optimum equals the max cut (graph is
  // bipartite), so the solver should reach it.
  const Graph g = Graph::cycle(8);
  const BurerMonteiroResult r = solve_maxcut_sdp(g);
  EXPECT_NEAR(r.sdp_objective, 8.0, 1e-3);
}

TEST(GoemansWilliamson, AchievesApproximationGuaranteeOnSmallGraphs) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const Graph g = Graph::bernoulli_symmetrized(14, seed);
    const Real optimum = exact_max_cut(g);
    GoemansWilliamsonOptions opts;
    opts.seed = seed;
    const GoemansWilliamsonResult r = goemans_williamson(g, opts);
    EXPECT_GE(r.best.cut, 0.878 * optimum - 1e-9) << "seed " << seed;
    EXPECT_LE(r.best.cut, optimum + 1e-9);
    EXPECT_DOUBLE_EQ(r.best.cut, g.cut_value(r.best.partition.span()));
  }
}

TEST(LocalSearch, NeverDecreasesTheCut) {
  const Graph g = Graph::bernoulli_symmetrized(25, 14);
  CutResult r = random_cut(g, 15);
  const Real before = r.cut;
  const Real after = local_search_1swap(g, r.partition);
  EXPECT_GE(after, before);
  EXPECT_DOUBLE_EQ(after, g.cut_value(r.partition.span()));
}

TEST(LocalSearch, FixedPointHasNoImprovingMove) {
  const Graph g = Graph::bernoulli_symmetrized(18, 16);
  CutResult r = random_cut(g, 17);
  const Real final_cut = local_search_1swap(g, r.partition);
  // Verify 1-optimality by brute force.
  for (std::size_t i = 0; i < 18; ++i) {
    Vector flipped = r.partition;
    flipped[i] = 1 - flipped[i];
    EXPECT_LE(g.cut_value(flipped.span()), final_cut + 1e-9);
  }
}

TEST(LocalSearch, MaxMovesRespected) {
  const Graph g = Graph::complete(12);
  Vector partition(12);  // all on one side: every move improves
  local_search_1swap(g, partition, 3);
  // Exactly 3 vertices should have moved.
  Real moved = 0;
  for (Real v : partition) moved += v;
  EXPECT_EQ(moved, 3.0);
}

TEST(BurerMonteiroCut, FindsOptimumOnSmallInstances) {
  for (std::uint64_t seed : {21ULL, 22ULL}) {
    const Graph g = Graph::bernoulli_symmetrized(12, seed);
    const Real optimum = exact_max_cut(g);
    BurerMonteiroCutOptions opts;
    opts.seed = seed;
    const CutResult r = burer_monteiro_cut(g, opts);
    EXPECT_NEAR(r.cut, optimum, 1e-9) << "seed " << seed;
  }
}

TEST(BurerMonteiroCut, BeatsOrMatchesPlainGw) {
  const Graph g = Graph::bernoulli_symmetrized(20, 23);
  GoemansWilliamsonOptions gw_opts;
  gw_opts.seed = 23;
  const GoemansWilliamsonResult gw = goemans_williamson(g, gw_opts);
  BurerMonteiroCutOptions bm_opts;
  bm_opts.seed = 23;
  const CutResult bm = burer_monteiro_cut(g, bm_opts);
  EXPECT_GE(bm.cut, gw.best.cut);
}

}  // namespace
}  // namespace vqmc::baselines
