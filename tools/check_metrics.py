#!/usr/bin/env python3
"""Validate Prometheus text scraped from a vqmc observability endpoint.

Checks (in order):
  1. Every non-comment line is ``name value`` or ``name{labels} value`` with
     a ``vqmc_``-prefixed metric name and a parseable float value; label
     strings are well-formed (``key="value"`` pairs).
  2. ``vqmc_up`` is present and equals 1.
  3. With ``--ranks R``: ``vqmc_rank_reachable{rank="r"}`` exists for every
     rank 0..R-1, and at least ``--min-reachable`` of them are 1 (default:
     all of them).
  4. Every metric family named in ``--require`` has a series for every
     *reachable* rank (per-rank series carry ``rank="r"`` labels).
  5. Every ``# TYPE`` comment names a family that actually emits samples.

Usage:
  python3 tools/check_metrics.py scrape.prom --ranks 4 \
      --require vqmc_trainer_iterations,vqmc_comm_allreduce_wait_seconds
  python3 tools/check_metrics.py serve.prom --ranks 1 --profile serve

``--profile`` selects the default ``--require`` list: ``trainer`` (the
training families above) or ``serve`` (the engine-wide and labeled
per-model/per-tenant/per-lane serving families; labeled series carry
``model=``/``tenant=``/``lane=`` labels next to ``rank=``).  An explicit
``--require`` overrides the profile.

Exits 0 on success, 1 with a diagnostic on the first failed check.
"""

from __future__ import annotations

import argparse
import re
import sys

REQUIRED_PROFILES = {
    "trainer": (
        "vqmc_trainer_iterations,vqmc_trainer_iteration,"
        "vqmc_comm_live_ranks,vqmc_comm_allreduce_wait_seconds_count"
    ),
    "serve": (
        "vqmc_serve_submitted,vqmc_serve_completed,vqmc_serve_quota_rejected,"
        "vqmc_serve_model_submitted,vqmc_serve_model_completed,"
        "vqmc_serve_model_version,vqmc_serve_tenant_submitted,"
        "vqmc_serve_tenant_quota_rejected,"
        "vqmc_serve_lane_latency_seconds_count,"
        "vqmc_serve_tenant_latency_seconds_count"
    ),
}

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')


def fail(message: str) -> None:
    print(f"check_metrics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_labels(raw: str | None) -> dict[str, str]:
    labels: dict[str, str] = {}
    if not raw:
        return labels
    for pair in raw.split(","):
        if not LABEL_RE.match(pair):
            fail(f"malformed label pair '{pair}'")
        key, value = pair.split("=", 1)
        labels[key] = value.strip('"')
    return labels


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scrape", help="Prometheus text file to validate")
    parser.add_argument(
        "--ranks",
        type=int,
        default=0,
        help="require rank_reachable series for ranks 0..R-1 (0 = skip)",
    )
    parser.add_argument(
        "--min-reachable",
        type=int,
        default=-1,
        help="minimum ranks that must be reachable (-1 = all of --ranks)",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(REQUIRED_PROFILES),
        default="trainer",
        help="which default --require family list to use",
    )
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated metric families that must have per-rank series "
        "(overrides --profile)",
    )
    args = parser.parse_args()
    if not args.require:
        args.require = REQUIRED_PROFILES[args.profile]

    try:
        with open(args.scrape, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        fail(f"cannot read {args.scrape}: {exc}")
    if not text.strip():
        fail("scrape is empty")

    # 1. Line grammar; collect samples as (name, labels, value).
    samples: list[tuple[str, dict[str, str], float]] = []
    typed_families: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed_families.add(parts[2])
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            fail(f"line {lineno} is not a valid sample: '{line}'")
        name = match.group("name")
        if not name.startswith("vqmc_"):
            fail(f"line {lineno}: metric '{name}' lacks the vqmc_ prefix")
        labels = parse_labels(match.group("labels"))
        try:
            value = float(match.group("value"))
        except ValueError:
            fail(f"line {lineno}: unparseable value '{match.group('value')}'")
        samples.append((name, labels, value))
    if not samples:
        fail("no samples in scrape")

    # 2. vqmc_up == 1.
    up = [v for (n, _, v) in samples if n == "vqmc_up"]
    if not up:
        fail("vqmc_up missing")
    if up[0] != 1:
        fail(f"vqmc_up = {up[0]} (expected 1)")

    # 3. Per-rank reachability.
    reachable_ranks: set[int] = set()
    if args.ranks > 0:
        reachability = {
            int(labels["rank"]): value
            for (name, labels, value) in samples
            if name == "vqmc_rank_reachable" and "rank" in labels
        }
        missing = [r for r in range(args.ranks) if r not in reachability]
        if missing:
            fail(f"vqmc_rank_reachable missing for ranks {missing}")
        reachable_ranks = {r for r, v in reachability.items() if v == 1}
        need = args.ranks if args.min_reachable < 0 else args.min_reachable
        if len(reachable_ranks) < need:
            fail(
                f"only {sorted(reachable_ranks)} reachable "
                f"(need >= {need} of {args.ranks})"
            )

    # 4. Required families have a series for every reachable rank.
    required = [f for f in args.require.split(",") if f]
    for family in required:
        ranks_seen = {
            int(labels["rank"])
            for (name, labels, _) in samples
            if name == family and "rank" in labels
        }
        if not ranks_seen:
            fail(f"required family '{family}' has no rank-labeled series")
        missing = sorted(reachable_ranks - ranks_seen)
        if missing:
            fail(f"family '{family}' missing series for ranks {missing}")

    # 5. No dangling TYPE comments.
    sample_names = {name for (name, _, _) in samples}
    dangling = [
        family
        for family in sorted(typed_families)
        if not any(
            n == family or n.startswith(family + "_") for n in sample_names
        )
    ]
    if dangling:
        fail(f"TYPE declared but no samples emitted: {dangling}")

    print(
        f"check_metrics: OK: {len(samples)} samples, "
        f"{len(sample_names)} series names, "
        f"{len(reachable_ranks) if args.ranks else 'n/a'} reachable ranks"
    )


if __name__ == "__main__":
    main()
