#!/usr/bin/env python3
"""Validate a Chrome-trace JSON produced by the vqmc telemetry tracer.

Checks (in order):
  1. The file parses as JSON and has a non-empty ``traceEvents`` array.
  2. Every complete ("X") event carries the required keys with sane values
     (non-negative ts/dur, string name).
  3. Complete-event timestamps are monotone non-decreasing (the exporter
     sorts by ts; a violation means a broken merge or clock).
  4. Every expected phase span name appears at least once.
  5. Every expected rank appears as a distinct tid (ranks map to tids; the
     exporter also emits "M" thread_name metadata rows naming them).
  6. Per-iteration coverage: summing phase-span durations against the
     enclosing "iteration" spans, phases must account for at least
     ``--min-coverage`` of iteration wall time (acceptance: >= 0.95).

Usage:
  python3 tools/check_trace.py trace.json [--ranks 4] [--min-coverage 0.95] \
      [--phases sample,local_energy,gradient,allreduce,optimizer]

Exits 0 on success, 1 with a diagnostic on the first failed check.
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def fail(message: str) -> None:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome-trace JSON file to validate")
    parser.add_argument(
        "--ranks",
        type=int,
        default=0,
        help="require ranks 0..R-1 to appear as tids (0 = skip the check)",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=0.95,
        help="minimum fraction of iteration span time covered by phase spans",
    )
    parser.add_argument(
        "--phases",
        default="sample,local_energy,gradient,allreduce,optimizer",
        help="comma-separated span names that must appear (empty = skip)",
    )
    args = parser.parse_args()

    # 1. Parse.
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse {args.trace}: {exc}")

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    complete = [e for e in events if e.get("ph") == "X"]
    if not complete:
        fail("no complete ('X') span events in trace")

    # 2. Required keys and sane values on every complete event.
    for i, event in enumerate(complete):
        for key in REQUIRED_KEYS:
            if key not in event:
                fail(f"event {i} missing key '{key}': {event}")
        if "dur" not in event:
            fail(f"event {i} missing key 'dur': {event}")
        if not isinstance(event["name"], str) or not event["name"]:
            fail(f"event {i} has a non-string/empty name: {event}")
        if event["ts"] < 0 or event["dur"] < 0:
            fail(f"event {i} has negative ts/dur: {event}")

    # 3. Monotone timestamps.
    last_ts = None
    for event in complete:
        if last_ts is not None and event["ts"] < last_ts:
            fail(
                f"timestamps not monotone: {event['ts']} after {last_ts} "
                f"(event {event['name']})"
            )
        last_ts = event["ts"]

    # 4. Required phases present.
    names = {event["name"] for event in complete}
    phases = [p for p in args.phases.split(",") if p]
    missing = [p for p in phases if p not in names]
    if missing:
        fail(f"missing phase spans: {missing} (present: {sorted(names)})")

    # 5. Ranks present as tids.
    if args.ranks > 0:
        tids = {event["tid"] for event in complete}
        missing_ranks = [r for r in range(args.ranks) if r not in tids]
        if missing_ranks:
            fail(f"missing rank tids: {missing_ranks} (tids seen: {sorted(tids)})")

    # 6. Coverage: phase spans vs the enclosing "iteration" spans, per tid.
    iteration_total = 0.0
    phase_total = 0.0
    phase_set = set(phases)
    for event in complete:
        if event["name"] == "iteration":
            iteration_total += event["dur"]
        elif event["name"] in phase_set:
            phase_total += event["dur"]
    if iteration_total > 0:
        coverage = phase_total / iteration_total
        if coverage < args.min_coverage:
            fail(
                f"phase spans cover {coverage:.1%} of iteration time "
                f"(need >= {args.min_coverage:.0%})"
            )
        print(
            f"check_trace: OK: {len(complete)} spans, "
            f"{len(names)} distinct names, coverage {coverage:.1%}"
        )
    else:
        print(
            f"check_trace: OK: {len(complete)} spans, "
            f"{len(names)} distinct names (no iteration spans; "
            "coverage check skipped)"
        )


if __name__ == "__main__":
    main()
