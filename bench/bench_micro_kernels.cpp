/// \file bench_micro_kernels.cpp
/// \brief google-benchmark microbenchmarks for the compute substrate: the
/// gemm kernels behind every forward pass, MADE/RBM evaluation, AUTO and
/// MCMC sampling, and the local-energy engine.
///
/// These are the building blocks whose costs the Section 4 complexity
/// analysis (O(h n^2 mbs) sampling, O(hn) communication) is written in; the
/// reported times let users calibrate the DeviceCostModel to their own
/// hardware.

#include <benchmark/benchmark.h>

#include "core/local_energy.hpp"
#include "hamiltonian/transverse_field_ising.hpp"
#include "nn/made.hpp"
#include "nn/rbm.hpp"
#include "parallel/thread_communicator.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "sampler/fast_made_sampler.hpp"
#include "sampler/metropolis_sampler.hpp"
#include "tensor/kernels.hpp"

namespace {

using namespace vqmc;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng::uniform(gen, -1.0, 1.0);
  return m;
}

void BM_GemmNt(benchmark::State& state) {
  const std::size_t bs = std::size_t(state.range(0));
  const std::size_t n = std::size_t(state.range(1));
  const std::size_t h = std::size_t(state.range(2));
  const Matrix x = random_matrix(bs, n, 1);
  const Matrix w = random_matrix(h, n, 2);
  Matrix out(bs, h);
  for (auto _ : state) {
    gemm_nt(x, w, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(2 * bs * n * h));
}
BENCHMARK(BM_GemmNt)
    ->Args({64, 100, 106})
    ->Args({128, 200, 140})
    ->Args({256, 500, 193});

void BM_MadeForward(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const std::size_t bs = std::size_t(state.range(1));
  Made made = Made::with_default_hidden(n);
  made.initialize(1);
  const Matrix batch = random_matrix(bs, n, 3);
  Vector out(bs);
  for (auto _ : state) {
    made.log_psi(batch, out.span());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MadeForward)->Args({50, 128})->Args({100, 128})->Args({200, 64});

void BM_RbmForward(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const std::size_t bs = std::size_t(state.range(1));
  Rbm rbm(n, n);
  rbm.initialize(1);
  const Matrix batch = random_matrix(bs, n, 4);
  Vector out(bs);
  for (auto _ : state) {
    rbm.log_psi(batch, out.span());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RbmForward)->Args({50, 128})->Args({100, 128})->Args({200, 64});

void BM_AutoSampling(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const std::size_t bs = std::size_t(state.range(1));
  Made made = Made::with_default_hidden(n);
  made.initialize(1);
  AutoregressiveSampler sampler(made, 2);
  Matrix out(bs, n);
  for (auto _ : state) {
    sampler.sample(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(bs));
}
BENCHMARK(BM_AutoSampling)->Args({50, 64})->Args({100, 64})->Args({200, 32});

void BM_FastAutoSampling(benchmark::State& state) {
  // The incremental sampler: O(bs h n) per batch vs Algorithm 1's
  // O(bs h n^2) — the ratio to BM_AutoSampling should grow ~linearly in n.
  const std::size_t n = std::size_t(state.range(0));
  const std::size_t bs = std::size_t(state.range(1));
  Made made = Made::with_default_hidden(n);
  made.initialize(1);
  FastMadeSampler sampler(made, 2);
  Matrix out(bs, n);
  for (auto _ : state) {
    sampler.sample(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(bs));
}
BENCHMARK(BM_FastAutoSampling)
    ->Args({50, 64})
    ->Args({100, 64})
    ->Args({200, 32});

void BM_McmcSampling(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const std::size_t bs = std::size_t(state.range(1));
  Rbm rbm(n, n);
  rbm.initialize(1);
  MetropolisConfig cfg;
  cfg.burn_in = paper_burn_in(n);
  MetropolisSampler sampler(rbm, cfg);
  Matrix out(bs, n);
  for (auto _ : state) {
    sampler.sample(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(bs));
}
BENCHMARK(BM_McmcSampling)->Args({50, 64})->Args({100, 64})->Args({200, 32});

void BM_LocalEnergyTim(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const std::size_t bs = std::size_t(state.range(1));
  const TransverseFieldIsing tim =
      TransverseFieldIsing::random_dense(n, 1);
  Made made = Made::with_default_hidden(n);
  made.initialize(1);
  LocalEnergyEngine engine(tim, made);
  const Matrix batch = random_matrix(bs, n, 5);
  // Round to bits (local energy expects configurations).
  Matrix bits(bs, n);
  for (std::size_t i = 0; i < bits.size(); ++i)
    bits.data()[i] = batch.data()[i] > 0 ? 1 : 0;
  Vector out(bs);
  for (auto _ : state) {
    engine.compute(bits, out.span());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LocalEnergyTim)->Args({50, 64})->Args({100, 32});

void BM_ThreadAllreduce(benchmark::State& state) {
  const int ranks = int(state.range(0));
  const std::size_t count = std::size_t(state.range(1));
  for (auto _ : state) {
    parallel::run_thread_group(ranks, [&](parallel::Communicator& comm) {
      Vector v(count);
      v.fill(Real(comm.rank()));
      comm.allreduce_sum(v.span());
      benchmark::DoNotOptimize(v.data());
    });
  }
}
BENCHMARK(BM_ThreadAllreduce)->Args({4, 10000})->Args({8, 10000});

}  // namespace

BENCHMARK_MAIN();
