/// \file bench_table1_training_time.cpp
/// \brief Reproduces Table 1: training-time comparison of RBM&MCMC vs
/// MADE&AUTO on the TIM problem (300 iterations, one device).
///
/// Expected shape (paper): MADE&AUTO is faster by an order of magnitude at
/// every size, and both columns grow with n — MADE roughly linearly in its
/// sampling dimension, RBM&MCMC with the burn-in length k = 3n + 100.

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "nn/made.hpp"
#include "parallel/cost_model.hpp"
#include "sampler/metropolis_sampler.hpp"

using namespace vqmc;
using namespace vqmc::bench;

int main(int argc, char** argv) {
  OptionParser opts("bench_table1_training_time",
                    "Table 1: training time, RBM&MCMC vs MADE&AUTO on TIM");
  add_scale_options(opts);
  opts.add_option("json", "BENCH_table1.json",
                  "machine-readable artifact path (empty disables)");
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  scale.seeds = 1;  // Table 1 reports a single timing per cell
  print_scale_banner("Table 1: training time (seconds) on TIM", scale,
                     opts.get_flag("full"));

  Table table("Training time (seconds) for " +
              std::to_string(scale.iterations) + " iterations");
  std::vector<std::string> header = {"Model", "Optimizer", "Sampler"};
  for (int n : scale.dims) header.push_back("n=" + std::to_string(n));
  table.set_header(header);

  std::vector<std::string> rbm_row = {"RBM", "ADAM", "MCMC"};
  std::vector<std::string> made_row = {"MADE", "ADAM", "AUTO"};
  std::ostringstream measured_json;
  for (int n : scale.dims) {
    const TransverseFieldIsing tim =
        TransverseFieldIsing::random_dense(std::size_t(n), std::uint64_t(n));
    const ComboResult rbm = run_combo(tim, "RBM", "MCMC", "ADAM", scale, 1);
    const ComboResult made = run_combo(tim, "MADE", "AUTO", "ADAM", scale, 1);
    rbm_row.push_back(format_fixed(rbm.train_seconds, 2));
    made_row.push_back(format_fixed(made.train_seconds, 2));
    if (measured_json.tellp() > 0) measured_json << ",\n";
    measured_json << "    {\"n\": " << n
                  << ", \"rbm_mcmc_seconds\": " << rbm.train_seconds
                  << ", \"made_auto_seconds\": " << made.train_seconds
                  << ", \"speedup\": "
                  << rbm.train_seconds / std::max(1e-9, made.train_seconds)
                  << "}";
    std::cout << "n=" << n << ": RBM&MCMC " << format_fixed(rbm.train_seconds, 2)
              << "s, MADE&AUTO " << format_fixed(made.train_seconds, 2)
              << "s (speedup "
              << format_fixed(rbm.train_seconds /
                                  std::max(1e-9, made.train_seconds),
                              1)
              << "x)\n";
    // Phase attribution (DESIGN.md §5d): where each combo's time went.
    const std::string rbm_phases = format_phase_breakdown(rbm.phase_totals);
    const std::string made_phases = format_phase_breakdown(made.phase_totals);
    if (!rbm_phases.empty())
      std::cout << "      RBM&MCMC phases:  " << rbm_phases << "\n";
    if (!made_phases.empty())
      std::cout << "      MADE&AUTO phases: " << made_phases << "\n";
  }
  table.add_row(rbm_row);
  table.add_row(made_row);
  std::cout << "\n" << table.to_string() << "\n";
  std::cout
      << "NOTE: measured times above run on a flop-bound CPU substrate, "
         "where MADE's large-batch matmuls dominate. The paper's V100 "
         "timings are per-pass *latency*-bound, which is what penalizes "
         "MCMC's k + bs/c tiny-batch chain steps. The modeled section below "
         "applies the V100-class cost model (see src/parallel/cost_model.hpp)"
         " at the paper's full scale:\n\n";

  // --- MODELED: paper scale on a V100-class device --------------------------
  const parallel::DeviceCostModel device;
  const std::vector<int> paper_dims = {20, 50, 100, 200, 500};
  const std::size_t paper_bs = 1024;
  const int paper_iters = 300;
  Table modeled("MODELED training time (seconds), V100-class device, 300 "
                "iterations, batch 1024");
  std::vector<std::string> mh = {"Model", "Sampler"};
  for (int n : paper_dims) mh.push_back("n=" + std::to_string(n));
  modeled.set_header(mh);
  std::vector<std::string> m_rbm = {"RBM", "MCMC"};
  std::vector<std::string> m_made = {"MADE", "AUTO"};
  for (int n : paper_dims) {
    const std::size_t un = std::size_t(n);
    const std::size_t h_made = made_default_hidden(un);
    const double t_made =
        paper_iters * parallel::model_auto_iteration_seconds(device, un,
                                                             h_made, paper_bs,
                                                             1024);
    const double t_rbm =
        paper_iters * parallel::model_mcmc_iteration_seconds(
                          device, un, un, paper_bs, 2, paper_burn_in(un), 1,
                          1024);
    m_made.push_back(format_fixed(t_made, 2));
    m_rbm.push_back(format_fixed(t_rbm, 2));
  }
  modeled.add_row(m_rbm);
  modeled.add_row(m_made);
  std::cout << modeled.to_string() << "\n";
  std::cout << "Paper reference (V100, full scale): RBM&MCMC 135.6 -> 456.7 s,"
               " MADE&AUTO 2.9 -> 49.6 s over n = 20 -> 500.\n";

  const std::string json_path = opts.get_string("json");
  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n  \"bench\": \"table1_training_time\",\n";
    json << "  \"iterations\": " << scale.iterations
         << ",\n  \"batch_size\": " << scale.batch_size
         << ",\n  \"full_scale\": " << (opts.get_flag("full") ? "true" : "false")
         << ",\n  \"measured\": [\n"
         << measured_json.str() << "\n  ],\n";
    json << "  \"modeled_v100\": [\n";
    for (std::size_t i = 0; i < paper_dims.size(); ++i) {
      const std::size_t un = std::size_t(paper_dims[i]);
      const std::size_t h_made = made_default_hidden(un);
      const double t_made =
          paper_iters * parallel::model_auto_iteration_seconds(
                            device, un, h_made, paper_bs, 1024);
      const double t_rbm =
          paper_iters * parallel::model_mcmc_iteration_seconds(
                            device, un, un, paper_bs, 2, paper_burn_in(un), 1,
                            1024);
      json << "    {\"n\": " << paper_dims[i]
           << ", \"rbm_mcmc_seconds\": " << t_rbm
           << ", \"made_auto_seconds\": " << t_made << "}"
           << (i + 1 < paper_dims.size() ? ",\n" : "\n");
    }
    json << "  ],\n";
    json << "  \"paper_reference\": {\"rbm_mcmc_seconds\": [135.6, 456.7], "
            "\"made_auto_seconds\": [2.9, 49.6], \"dims\": [20, 500]}\n}\n";
    std::ofstream file(json_path);
    file << json.str();
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
