/// \file bench_table4_mcmc_scheme.cpp
/// \brief Reproduces Table 4: ablation over the MCMC sampling scheme for
/// RBM + ADAM on Max-Cut.
///
/// Scheme 1 varies the burn-in (discard the first {n, 3n+100, 10n} states);
/// Scheme 2 varies the thinning (keep every {2, 5, 10}-th state).
///
/// Expected shape (paper): longer chains (10n burn-in or x10 thinning) give
/// better cuts at proportionally higher cost; time scales with the chain
/// length, not the model size.

#include <iostream>

#include "bench_common.hpp"

using namespace vqmc;
using namespace vqmc::bench;

int main(int argc, char** argv) {
  OptionParser opts("bench_table4_mcmc_scheme",
                    "Table 4: MCMC scheme ablation (RBM, ADAM, Max-Cut)");
  add_scale_options(opts);
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {50, 100};
    scale.seeds = 1;
  } else {
    scale.dims = {50, 100, 200, 500};
  }
  print_scale_banner("Table 4: MCMC sampling-scheme ablation", scale,
                     opts.get_flag("full"));

  struct Scheme {
    std::string label;
    std::size_t burn_in_factor_n;  ///< burn-in = factor * n (0 = use offset)
    std::size_t burn_in_offset;    ///< extra constant burn-in
    std::size_t thinning;
  };
  // {n, 3n+100, 10n} are Scheme 1; {x2, x5, x10} are Scheme 2 with the
  // paper-default burn-in.
  const std::vector<Scheme> schemes = {
      {"k=n", 1, 0, 1},        {"k=3n+100", 3, 100, 1}, {"k=10n", 10, 0, 1},
      {"x2", 3, 100, 2},       {"x5", 3, 100, 5},       {"x10", 3, 100, 10},
  };

  Table cut_table("Cut (left) and training seconds (right) per scheme");
  std::vector<std::string> header = {"n"};
  for (const Scheme& s : schemes) header.push_back("cut " + s.label);
  for (const Scheme& s : schemes) header.push_back("time " + s.label);
  cut_table.set_header(header);

  for (int n : scale.dims) {
    const std::size_t un = std::size_t(n);
    const MaxCut h = MaxCut::paper_instance(un, 1000 + un);
    std::vector<std::string> row = {std::to_string(n)};
    std::vector<std::string> times;
    for (const Scheme& s : schemes) {
      MetropolisConfig mcmc;
      mcmc.burn_in = s.burn_in_factor_n * un + s.burn_in_offset;
      mcmc.thinning = s.thinning;
      std::vector<Real> cuts, secs;
      for (int seed = 0; seed < scale.seeds; ++seed) {
        const ComboResult r = run_combo(h, "RBM", "MCMC", "ADAM", scale,
                                        std::uint64_t(seed + 1), 0, mcmc);
        cuts.push_back(r.mean_cut);
        secs.push_back(Real(r.train_seconds));
      }
      row.push_back(format_fixed(mean_std(cuts).first, 1));
      times.push_back(format_fixed(mean_std(secs).first, 2));
    }
    row.insert(row.end(), times.begin(), times.end());
    cut_table.add_row(row);
    std::cout << "done: n=" << n << "\n";
  }
  std::cout << "\n" << cut_table.to_string() << "\n";
  std::cout << "Paper shape check: k=10n and x10 give the best cuts at the "
               "highest cost; cost tracks chain length.\n";
  return 0;
}
