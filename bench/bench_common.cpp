#include "bench_common.hpp"

#include <cmath>
#include <iostream>

namespace vqmc::bench {

void add_scale_options(OptionParser& opts) {
  opts.add_flag("full", "run the paper-scale parameters (hours of CPU time)");
  opts.add_option("dims", "", "override problem sizes, e.g. 20,50,100");
  opts.add_option("iterations", "0", "override training iterations");
  opts.add_option("batch", "0", "override training batch size");
  opts.add_option("seeds", "0", "override number of random seeds");
}

Scale parse_scale(OptionParser& opts, int argc, const char* const* argv,
                  bool& ok) {
  ok = opts.parse(argc, argv);
  Scale scale = opts.get_flag("full") ? paper_scale() : quick_scale();
  if (!ok) return scale;
  if (!opts.get_string("dims").empty()) scale.dims = opts.get_int_list("dims");
  if (opts.get_int("iterations") > 0)
    scale.iterations = opts.get_int("iterations");
  if (opts.get_int("batch") > 0)
    scale.batch_size = std::size_t(opts.get_int("batch"));
  if (opts.get_int("seeds") > 0) scale.seeds = opts.get_int("seeds");
  return scale;
}

void print_scale_banner(const std::string& artifact, const Scale& scale,
                        bool full) {
  std::cout << "== " << artifact << " ==\n";
  std::cout << (full ? "scale: FULL (paper parameters)"
                     : "scale: QUICK (single-core defaults; --full for paper "
                       "parameters)")
            << "\n";
  std::cout << "dims:";
  for (int n : scale.dims) std::cout << " " << n;
  std::cout << " | iterations: " << scale.iterations
            << " | batch: " << scale.batch_size << " | seeds: " << scale.seeds
            << "\n\n";
}

ComboResult run_combo(const Hamiltonian& hamiltonian,
                      const std::string& model_kind,
                      const std::string& sampler_kind,
                      const std::string& optimizer_kind, const Scale& scale,
                      std::uint64_t seed, std::size_t hidden,
                      MetropolisConfig mcmc) {
  const std::size_t n = hamiltonian.num_spins();
  auto model = make_model(model_kind, n, hidden, seed);
  auto sampler = make_sampler(sampler_kind, *model, seed * 7919 + 13, mcmc);
  auto optimizer = make_optimizer(optimizer_kind);

  TrainerConfig cfg;
  cfg.iterations = scale.iterations;
  cfg.batch_size = scale.batch_size;
  cfg.use_sr = optimizer_label_uses_sr(optimizer_kind);
  VqmcTrainer trainer(hamiltonian, *model, *sampler, *optimizer, cfg);
  trainer.run();

  ComboResult result;
  result.history = trainer.history();
  result.train_seconds = trainer.training_seconds();
  result.phase_totals = sum_phases(result.history);

  Matrix samples;
  const EnergyEstimate est =
      trainer.evaluate_with_samples(scale.eval_batch, samples);
  result.eval_energy = est.mean;
  result.eval_std = est.std_dev;

  if (const auto* maxcut = dynamic_cast<const MaxCut*>(&hamiltonian)) {
    result.mean_cut = maxcut->cut_from_energy(est.mean);
    for (std::size_t k = 0; k < samples.rows(); ++k)
      result.best_cut =
          std::max(result.best_cut, maxcut->cut_value(samples.row(k)));
  }
  return result;
}

PhaseBreakdown sum_phases(const std::vector<IterationMetrics>& history) {
  PhaseBreakdown total;
  for (const IterationMetrics& m : history) {
    total.sample += m.phases.sample;
    total.local_energy += m.phases.local_energy;
    total.gradient += m.phases.gradient;
    total.sr_solve += m.phases.sr_solve;
    total.allreduce += m.phases.allreduce;
    total.optimizer += m.phases.optimizer;
    total.checkpoint += m.phases.checkpoint;
  }
  return total;
}

std::string format_phase_breakdown(const PhaseBreakdown& phases) {
  const double total = phases.total();
  if (total <= 0) return "";
  const std::pair<const char*, double> parts[] = {
      {"sample", phases.sample},       {"local_energy", phases.local_energy},
      {"gradient", phases.gradient},   {"sr", phases.sr_solve},
      {"allreduce", phases.allreduce}, {"optimizer", phases.optimizer},
      {"checkpoint", phases.checkpoint}};
  std::string out;
  for (const auto& [name, seconds] : parts) {
    const double share = seconds / total;
    if (share < 0.005) continue;
    if (!out.empty()) out += " | ";
    out += name;
    out += ' ';
    out += std::to_string(int(std::lround(share * 100)));
    out += '%';
  }
  return out;
}

std::pair<Real, Real> mean_std(const std::vector<Real>& values) {
  if (values.empty()) return {0, 0};
  Real mean = 0;
  for (Real v : values) mean += v;
  mean /= Real(values.size());
  if (values.size() == 1) return {mean, 0};
  Real var = 0;
  for (Real v : values) var += (v - mean) * (v - mean);
  var /= Real(values.size() - 1);
  return {mean, std::sqrt(var)};
}

}  // namespace vqmc::bench
