/// \file bench_table2_convergence.cpp
/// \brief Reproduces Table 2: converged objective values on Max-Cut (cut
/// number, higher is better) and TIM (ground energy, lower is better) for
/// the classical baselines and every (model, sampler, optimizer) combo.
///
/// Expected shape (paper): Burer-Monteiro >= Goemans-Williamson >> Random;
/// MADE&AUTO with SGD+SR is competitive with the SDP solvers; RBM&MCMC
/// degrades at the largest sizes.

#include <iostream>

#include "baselines/goemans_williamson.hpp"
#include "baselines/local_search.hpp"
#include "baselines/random_cut.hpp"
#include "bench_common.hpp"

using namespace vqmc;
using namespace vqmc::bench;

namespace {

using CellFn = std::function<Real(std::size_t n, std::uint64_t seed)>;

std::vector<std::string> sweep_row(std::vector<std::string> prefix,
                                   const Scale& scale, const CellFn& cell) {
  for (int n : scale.dims) {
    std::vector<Real> values;
    for (int s = 0; s < scale.seeds; ++s)
      values.push_back(cell(std::size_t(n), std::uint64_t(s + 1)));
    const auto [mean, std] = mean_std(values);
    prefix.push_back(format_mean_std(mean, std, 1));
  }
  return prefix;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("bench_table2_convergence",
                    "Table 2: converged objectives on Max-Cut and TIM");
  add_scale_options(opts);
  opts.add_flag("skip-tim", "only run the Max-Cut section");
  bool ok = false;
  const Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  print_scale_banner("Table 2: converged objective values", scale,
                     opts.get_flag("full"));

  std::vector<std::string> header = {"Problem", "Method"};
  for (int n : scale.dims) header.push_back("n=" + std::to_string(n));

  // Fixed problem instance per size (as in the paper); seeds vary only the
  // solver randomness.
  auto maxcut_for = [](std::size_t n) {
    return MaxCut::paper_instance(n, 1000 + n);
  };
  auto tim_for = [](std::size_t n) {
    return TransverseFieldIsing::random_dense(n, 2000 + n);
  };

  Table table("Table 2 (cut number for Max-Cut; ground energy for TIM)");
  table.set_header(header);

  // --- Classical baselines ------------------------------------------------
  table.add_row(sweep_row({"Max-Cut", "Classical: Random"}, scale,
                          [&](std::size_t n, std::uint64_t seed) {
                            return baselines::random_cut(maxcut_for(n).graph(),
                                                         seed)
                                .cut;
                          }));
  table.add_row(sweep_row(
      {"Max-Cut", "Classical: Goemans-Williamson"}, scale,
      [&](std::size_t n, std::uint64_t seed) {
        baselines::GoemansWilliamsonOptions gw;
        gw.seed = seed;
        return baselines::goemans_williamson(maxcut_for(n).graph(), gw)
            .best.cut;
      }));
  table.add_row(sweep_row({"Max-Cut", "Classical: Burer-Monteiro"}, scale,
                          [&](std::size_t n, std::uint64_t seed) {
                            baselines::BurerMonteiroCutOptions bm;
                            bm.seed = seed;
                            return baselines::burer_monteiro_cut(
                                       maxcut_for(n).graph(), bm)
                                .cut;
                          }));

  // --- VQMC combos on Max-Cut ----------------------------------------------
  const std::vector<std::pair<std::string, std::string>> families = {
      {"RBM", "MCMC"}, {"MADE", "AUTO"}};
  const std::vector<std::string> optimizers = {"SGD", "ADAM", "SGD+SR"};
  for (const auto& [model, sampler] : families) {
    for (const std::string& optimizer : optimizers) {
      table.add_row(sweep_row(
          {"Max-Cut", model + "+" + sampler + " " + optimizer}, scale,
          [&, model = model, sampler = sampler,
           optimizer](std::size_t n, std::uint64_t seed) {
            const MaxCut h = maxcut_for(n);
            return run_combo(h, model, sampler, optimizer, scale, seed)
                .mean_cut;
          }));
      std::cout << "done: Max-Cut " << model << "+" << sampler << " "
                << optimizer << "\n";
    }
  }

  // --- VQMC combos on TIM ---------------------------------------------------
  if (!opts.get_flag("skip-tim")) {
    for (const auto& [model, sampler] : families) {
      for (const std::string& optimizer : optimizers) {
        table.add_row(sweep_row(
            {"TIM", model + "+" + sampler + " " + optimizer}, scale,
            [&, model = model, sampler = sampler,
             optimizer](std::size_t n, std::uint64_t seed) {
              const TransverseFieldIsing h = tim_for(n);
              return run_combo(h, model, sampler, optimizer, scale, seed)
                  .eval_energy;
            }));
        std::cout << "done: TIM " << model << "+" << sampler << " "
                  << optimizer << "\n";
      }
    }
  }

  std::cout << "\n" << table.to_string() << "\n";
  std::cout << "Paper shape check: BM >= GW >> Random; MADE+AUTO SGD+SR "
               "within ~1% of BM on Max-Cut; RBM+MCMC trails at the largest "
               "size.\n";
  return 0;
}
