/// \file bench_fig3_weak_scaling.cpp
/// \brief Reproduces Figure 3: weak scaling of AUTO sampling across GPU
/// configurations (1x1 .. 6x4) with memory-saturating per-device batches.
///
/// Two complementary measurements (see DESIGN.md substitution table):
///  * MEASURED: per-rank busy time of real thread-backed ranks running the
///    real data-parallel code on scaled-down problem sizes (this machine has
///    one CPU core, so per-rank *busy* time — not wall time — is the
///    meaningful weak-scaling observable).
///  * MODELED: V100-class analytic device time at the paper's problem sizes
///    (1K/2K/5K/10K dims) from the cost model, including the ring-allreduce.
///
/// Expected shape (paper): normalized times ~1 across all configurations
/// for every dimension — near-optimal weak scaling.

#include <iostream>

#include "bench_common.hpp"
#include "nn/made.hpp"
#include "parallel/cost_model.hpp"
#include "parallel/distributed_trainer.hpp"

using namespace vqmc;
using namespace vqmc::bench;
using namespace vqmc::parallel;

namespace {

const std::vector<ClusterShape> kConfigs = {
    {1, 1}, {1, 2}, {1, 4}, {2, 2}, {2, 4}, {4, 2}, {4, 4}, {8, 2}, {6, 4}};

std::string shape_label(const ClusterShape& s) {
  return std::to_string(s.nodes) + "x" + std::to_string(s.gpus_per_node);
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("bench_fig3_weak_scaling",
                    "Figure 3: weak scaling of AUTO sampling");
  add_scale_options(opts);
  opts.add_option("mbs", "8", "per-rank mini-batch for the measured runs");
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {50, 100, 200};
    scale.iterations = 5;
  } else {
    scale.dims = {1000, 2000, 5000, 10000};
    scale.iterations = 20;
  }
  print_scale_banner("Figure 3: weak scaling (normalized sampling times)",
                     scale, opts.get_flag("full"));

  const DeviceCostModel device;

  // --- MEASURED: thread-backed ranks on this machine -----------------------
  std::cout << "MEASURED per-rank busy seconds (normalized by the 6x4 "
               "column), thread-backed virtual devices:\n";
  Table measured("");
  std::vector<std::string> header = {"# GPUs"};
  for (int n : scale.dims) header.push_back("n=" + std::to_string(n));
  measured.set_header(header);

  const std::size_t mbs = std::size_t(opts.get_int("mbs"));
  std::vector<std::vector<double>> busy(kConfigs.size());
  std::vector<std::vector<double>> wait(kConfigs.size());
  for (std::size_t d = 0; d < scale.dims.size(); ++d) {
    const std::size_t n = std::size_t(scale.dims[d]);
    // Large-n instances use sparse disorder to bound memory (DESIGN.md).
    const TransverseFieldIsing tim =
        n <= 2048 ? TransverseFieldIsing::random_dense(n, 3000 + n)
                  : TransverseFieldIsing::random_sparse(n, 16, 3000 + n);
    Made proto = Made::with_default_hidden(n);
    proto.initialize(1);
    for (std::size_t c = 0; c < kConfigs.size(); ++c) {
      DistributedConfig cfg;
      cfg.shape = kConfigs[c];
      cfg.iterations = scale.iterations;
      cfg.mini_batch_size = mbs;
      cfg.eval_batch_per_rank = 1;
      cfg.seed = 5;
      const DistributedResult r = train_distributed(tim, proto, cfg, device);
      busy[c].push_back(r.max_rank_busy_seconds);
      // Max-over-ranks allreduce wait: the straggler penalty the paper's
      // weak-scaling argument says should stay negligible.
      double w = 0;
      for (const double s : r.allreduce_wait_seconds_per_rank)
        w = std::max(w, s);
      wait[c].push_back(w);
    }
  }
  for (std::size_t c = 0; c < kConfigs.size(); ++c) {
    std::vector<std::string> row = {shape_label(kConfigs[c])};
    for (std::size_t d = 0; d < scale.dims.size(); ++d) {
      const double reference = busy[kConfigs.size() - 1][d];
      row.push_back(format_fixed(busy[c][d] / std::max(1e-12, reference), 3));
    }
    measured.add_row(row);
  }
  std::cout << measured.to_string() << "\n";

  std::cout << "Max per-rank allreduce wait seconds (telemetry; thread-backed "
               "ranks contend for host cores, so absolute values are "
               "substrate artifacts — the paper's observable is the trend "
               "with cluster size):\n";
  Table wait_table("");
  wait_table.set_header(header);
  for (std::size_t c = 0; c < kConfigs.size(); ++c) {
    std::vector<std::string> row = {shape_label(kConfigs[c])};
    for (std::size_t d = 0; d < scale.dims.size(); ++d)
      row.push_back(format_fixed(wait[c][d], 3));
    wait_table.add_row(row);
  }
  std::cout << wait_table.to_string() << "\n";

  // --- MODELED: V100-class device time at the paper's dimensions -----------
  std::cout << "MODELED V100-class iteration seconds at the paper's "
               "dimensions (memory-saturating mbs), normalized by 6x4:\n";
  const std::vector<int> paper_dims = {1000, 2000, 5000, 10000};
  Table modeled("");
  std::vector<std::string> mh = {"# GPUs"};
  for (int n : paper_dims) mh.push_back("n=" + std::to_string(n));
  modeled.set_header(mh);
  for (const ClusterShape& shape : kConfigs) {
    std::vector<std::string> row = {shape_label(shape)};
    for (int n : paper_dims) {
      const std::size_t un = std::size_t(n);
      const std::size_t h = made_default_hidden(un);
      const std::size_t sat = saturating_mini_batch(device, un);
      const double t =
          model_iteration_seconds(device, shape, un, h, sat, 1024);
      const double ref = model_iteration_seconds(
          device, ClusterShape{6, 4}, un, h, sat, 1024);
      row.push_back(format_fixed(t / ref, 3));
    }
    modeled.add_row(row);
  }
  std::cout << modeled.to_string() << "\n";
  std::cout << "Paper shape check: every normalized entry ~1.00 (weak "
               "scaling is near-optimal because sampling needs no "
               "communication).\n";
  return 0;
}
