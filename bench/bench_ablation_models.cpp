/// \file bench_ablation_models.cpp
/// \brief Extension experiment: autoregressive architecture comparison —
/// MADE (the paper's model) vs a 2-layer DeepMADE vs an RNN wavefunction
/// (the Hibat-Allah et al. alternative cited in Related Work), all trained
/// with the same AUTO sampler and Adam on TIM.
///
/// Expected shape: all three converge (they are all normalized
/// autoregressive models with exact sampling); MADE evaluates all
/// conditionals in one matmul pass while the RNN pays n sequential
/// recurrence steps per evaluation, so MADE dominates on time.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "nn/made.hpp"

using namespace vqmc;
using namespace vqmc::bench;

int main(int argc, char** argv) {
  OptionParser opts("bench_ablation_models",
                    "autoregressive architecture comparison on TIM");
  add_scale_options(opts);
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {20, 30};
    scale.iterations = 50;
    scale.batch_size = 96;
    scale.seeds = 1;
  }
  print_scale_banner("Ablation: MADE vs DeepMADE vs RNN (AUTO + ADAM, TIM)",
                     scale, opts.get_flag("full"));

  const std::vector<std::string> models = {"MADE", "DEEPMADE", "RNN"};
  Table table("Converged energy (left) and training seconds (right)");
  std::vector<std::string> header = {"n"};
  for (const std::string& m : models) header.push_back("E " + m);
  for (const std::string& m : models) header.push_back("t " + m);
  table.set_header(header);

  for (int n : scale.dims) {
    const TransverseFieldIsing tim =
        TransverseFieldIsing::random_dense(std::size_t(n), 8000 + std::size_t(n));
    std::vector<std::string> row = {std::to_string(n)};
    std::vector<std::string> times;
    for (const std::string& model : models) {
      // The RNN's O(n^2 H^2) conditionals are its documented cost; give it
      // a narrower hidden state so the sweep stays balanced.
      const std::size_t hidden =
          model == "RNN" ? std::max<std::size_t>(8, made_default_hidden(
                                                        std::size_t(n)) /
                                                        2)
                         : 0;
      std::vector<Real> energies, seconds;
      for (int s = 0; s < scale.seeds; ++s) {
        const ComboResult r = run_combo(tim, model, "AUTO", "ADAM", scale,
                                        std::uint64_t(s + 1), hidden);
        energies.push_back(r.eval_energy);
        seconds.push_back(Real(r.train_seconds));
      }
      row.push_back(format_fixed(mean_std(energies).first, 2));
      times.push_back(format_fixed(mean_std(seconds).first, 2));
      std::cout << "done: " << model << " n=" << n << "\n";
    }
    row.insert(row.end(), times.begin(), times.end());
    table.add_row(row);
  }
  std::cout << "\n" << table.to_string() << "\n";
  std::cout << "Shape check: MADE and DeepMADE converge comparably with MADE "
               "cheapest (single-pass conditionals); the RNN trails at a "
               "fixed iteration budget — its sequential recurrence is both "
               "slower per pass and harder to optimize (BPTT), which is why "
               "the paper builds on MADE.\n";
  return 0;
}
