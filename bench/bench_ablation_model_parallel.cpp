/// \file bench_ablation_model_parallel.cpp
/// \brief Extension experiment: model parallelism (the paper's avenue (1),
/// which it describes but does not implement) vs sampling parallelism.
///
/// Measures, for the hidden-layer-sharded MADE:
///  * numerical parity with the dense model (max |Δ log psi|),
///  * per-rank parameter memory vs the dense replica,
///  * the communication trade-off: model parallelism moves O(bs x n)
///    activations per forward pass, sampling parallelism moves O(h n)
///    gradients once per iteration.  The printed table evaluates both
///    volumes across problem sizes so users can pick the right strategy
///    (the paper's conclusion — shard samples, not the model, while the
///    model still fits — falls out of the numbers).

#include <iostream>

#include "bench_common.hpp"
#include "nn/made.hpp"
#include "parallel/cost_model.hpp"
#include "parallel/sharded_made.hpp"
#include "parallel/thread_communicator.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

using namespace vqmc;
using namespace vqmc::bench;
using namespace vqmc::parallel;

int main(int argc, char** argv) {
  OptionParser opts("bench_ablation_model_parallel",
                    "model parallelism (sharded MADE) vs sampling parallelism");
  add_scale_options(opts);
  opts.add_option("ranks", "4", "number of shards");
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) scale.dims = {50, 100, 200};
  const int ranks = opts.get_int("ranks");
  print_scale_banner("Ablation: model parallelism (sharded MADE)", scale,
                     opts.get_flag("full"));

  Table table("Sharded MADE across " + std::to_string(ranks) + " ranks");
  table.set_header({"n", "h", "max |dlogpsi| vs dense", "dense params/rank",
                    "shard params/rank", "MP bytes/fwd (bs=1024)",
                    "SP bytes/iter"});

  for (int n : scale.dims) {
    const std::size_t un = std::size_t(n);
    const std::size_t h = made_default_hidden(un);
    Made proto(un, h);
    rng::Xoshiro256 gen(9000 + un);
    for (Real& p : proto.parameters()) p = rng::uniform(gen, -0.8, 0.8);

    // Random evaluation batch.
    const std::size_t bs = 32;
    Matrix batch(bs, un);
    for (std::size_t i = 0; i < batch.size(); ++i)
      batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
    Vector dense_lp(bs);
    proto.log_psi(batch, dense_lp.span());

    Real max_diff = 0;
    std::size_t shard_params = 0;
    run_thread_group(ranks, [&](Communicator& comm) {
      ShardedMade shard(proto, comm);
      Vector lp(bs);
      shard.log_psi(batch, lp.span());
      Real local_max = 0;
      for (std::size_t k = 0; k < bs; ++k)
        local_max = std::max(local_max, std::abs(lp[k] - dense_lp[k]));
      Vector reduce(1);
      reduce[0] = local_max;
      comm.allreduce_max(reduce.span());
      if (comm.rank() == 0) {
        max_diff = reduce[0];
        shard_params = shard.num_local_parameters();
      }
    });

    // Communication volumes (doubles -> bytes at 8B here; the paper's fp32
    // would halve both, the ratio is what matters).
    const double mp_bytes = 1024.0 * double(un) * 8;          // per forward
    const double sp_bytes = double(made_parameter_count(un, h)) * 8;  // per iter
    table.add_row({std::to_string(n), std::to_string(h),
                   format_fixed(max_diff, 15),
                   std::to_string(made_parameter_count(un, h)),
                   std::to_string(shard_params), format_fixed(mp_bytes, 0),
                   format_fixed(sp_bytes, 0)});
    std::cout << "done: n=" << n << "\n";
  }
  std::cout << "\n" << table.to_string() << "\n";
  std::cout
      << "Shape check: parity at machine precision; shard memory ~1/" << ranks
      << " of the dense replica plus the replicated output bias. Model "
         "parallelism pays O(bs n) bytes on EVERY forward pass (n + measure "
         "passes per iteration), sampling parallelism O(h n) once per "
         "iteration — which is why the paper shards samples while the model "
         "fits, and this shard exists for when it does not.\n";
  return 0;
}
