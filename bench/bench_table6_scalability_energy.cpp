/// \file bench_table6_scalability_energy.cpp
/// \brief Reproduces Table 6 (appendix): converged energy and running time
/// per GPU configuration with mbs = 4 per device.
///
/// Expected shape (paper): at every problem size the converged energy
/// improves (more negative) as the total device count grows, while the
/// per-device running time stays flat (it depends on mbs, not on L).

#include <iostream>

#include "bench_common.hpp"
#include "nn/made.hpp"
#include "parallel/cost_model.hpp"
#include "parallel/distributed_trainer.hpp"

using namespace vqmc;
using namespace vqmc::bench;
using namespace vqmc::parallel;

int main(int argc, char** argv) {
  OptionParser opts("bench_table6_scalability_energy",
                    "Table 6: converged energy & time per GPU configuration");
  add_scale_options(opts);
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {20, 50, 100};
    scale.iterations = 40;
  }
  print_scale_banner("Table 6: raw multi-device scalability (mbs = 4)", scale,
                     opts.get_flag("full"));

  const std::vector<ClusterShape> configs = {{1, 1}, {1, 2}, {1, 4}, {2, 2},
                                             {2, 4}, {4, 2}, {4, 4}, {8, 2},
                                             {6, 4}};
  Table table("Converged energy / per-rank busy seconds per configuration");
  std::vector<std::string> header = {"# GPUs", "Metric"};
  for (int n : scale.dims) header.push_back("n=" + std::to_string(n));
  table.set_header(header);

  for (const ClusterShape& shape : configs) {
    std::vector<std::string> energy_row = {
        std::to_string(shape.nodes) + "x" + std::to_string(shape.gpus_per_node),
        "Energy"};
    std::vector<std::string> time_row = {"", "Busy (s)"};
    for (int n : scale.dims) {
      const std::size_t un = std::size_t(n);
      const TransverseFieldIsing tim =
          un <= 2048 ? TransverseFieldIsing::random_dense(un, 4000 + un)
                     : TransverseFieldIsing::random_sparse(un, 16, 4000 + un);
      Made proto = Made::with_default_hidden(un);
      proto.initialize(2);
      DistributedConfig cfg;
      cfg.shape = shape;
      cfg.iterations = scale.iterations;
      cfg.mini_batch_size = 4;
      cfg.eval_batch_per_rank = 64;
      cfg.seed = 6;
      const DistributedResult r = train_distributed(tim, proto, cfg);
      energy_row.push_back(format_fixed(r.converged_energy, 2));
      time_row.push_back(format_fixed(r.max_rank_busy_seconds, 3));
    }
    table.add_row(energy_row);
    table.add_row(time_row);
    std::cout << "done: " << shape.nodes << "x" << shape.gpus_per_node << "\n";
  }
  std::cout << "\n" << table.to_string() << "\n";
  std::cout << "Paper shape check: energy improves down each column as L "
               "grows; busy time per rank is ~flat.\n";
  return 0;
}
