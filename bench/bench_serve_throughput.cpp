/// \file bench_serve_throughput.cpp
/// \brief Serving throughput vs micro-batching policy (DESIGN.md §5e).
///
/// Closed-loop clients hammer one InferenceEngine with single-row requests
/// while the batching policy sweeps from "no coalescing" (budget 1, window
/// 0 — every request is its own batch) to progressively wider
/// `max_batch_rows x max_wait_us` windows.  Since the masked compute plan
/// landed (DESIGN.md §5f), snapshots hold prebuilt packed weights — the
/// old ~1.9 ms-per-call materialization at n = 1000 is gone — so
/// coalescing now amortizes only the remaining per-request fixed costs
/// (queue handoff, future wakeup, batch assembly, per-batch dispatch).
/// The sweep measures how much that is still worth end to end.
///
/// Emits BENCH_serve.json with per-config throughput and client-observed
/// latency percentiles, plus the headline micro-batching gain
/// (best tuned config vs the no-coalescing baseline).
///
/// A second section exercises the fleet scheduler (DESIGN.md §5j): two
/// named models served by one worker pool under three closed-loop tenants
/// — an interactive lane, a steady batch lane and a quota-capped "greedy"
/// batch tenant.  Exit criteria: the interactive lane's p99 must not
/// exceed the steady batch lane's p99 (the 7:1 weighted pickup at work),
/// the greedy tenant must see ServeQuotaError rejections, and per-model
/// accounting must stay exact (submitted == completed + failed per model
/// and in total).

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "nn/made.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "serve/errors.hpp"
#include "serve/inference_engine.hpp"
#include "telemetry/telemetry.hpp"

using namespace vqmc;

namespace {

struct SweepPoint {
  std::size_t max_batch_rows;
  double max_wait_us;
};

struct RunResult {
  SweepPoint point{};
  std::uint64_t responses = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch_rows = 0;  ///< high-water batch occupancy
  double seconds = 0;
  double rps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;

  [[nodiscard]] double mean_batch_rows() const {
    return batches == 0 ? 0 : double(responses) / double(batches);
  }
};

double percentile_of_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * double(sorted.size() - 1);
  const std::size_t lo = std::size_t(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - double(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

/// Drive one engine configuration with `clients` closed-loop threads for
/// `seconds`; every request is `rows` rows of the given kind.
RunResult run_point(const Made& model, bool sample_kind,
                    const SweepPoint& point, std::size_t workers,
                    std::size_t clients, std::size_t rows, double seconds) {
  serve::ServeConfig config;
  config.workers = workers;
  config.max_batch_rows = point.max_batch_rows;
  config.max_wait_us = point.max_wait_us;
  config.max_pending_rows =
      std::max<std::size_t>(4096, clients * rows * 4);
  serve::InferenceEngine engine(config);
  engine.publish_model(model);

  // One shared pool of evaluation configurations (clients reuse them; the
  // engine copies what it needs).
  const std::size_t n = model.num_spins();
  Matrix pool(64, n);
  rng::Xoshiro256 gen(12345);
  for (std::size_t i = 0; i < pool.size(); ++i)
    pool.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;

  std::vector<std::vector<double>> latencies_us(clients);
  const double start_us = telemetry::now_us();
  const double deadline_us = start_us + seconds * 1e6;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& latencies = latencies_us[c];
      Matrix configs(rows, n);
      std::uint64_t r = 0;
      while (telemetry::now_us() < deadline_us) {
        const double t0 = telemetry::now_us();
        if (sample_kind) {
          (void)engine.submit_sample(rows, 1000 * (c + 1) + r).get();
        } else {
          for (std::size_t k = 0; k < rows; ++k) {
            const auto src = pool.row((c + r + k) % pool.rows());
            std::copy(src.begin(), src.end(), configs.row(k).begin());
          }
          (void)engine.submit_log_psi(configs).get();
        }
        latencies.push_back(telemetry::now_us() - t0);
        ++r;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  engine.drain();
  const double elapsed_s = (telemetry::now_us() - start_us) * 1e-6;

  std::vector<double> all;
  for (const auto& latencies : latencies_us)
    all.insert(all.end(), latencies.begin(), latencies.end());
  std::sort(all.begin(), all.end());

  const serve::EngineCounters counters = engine.counters();
  RunResult result;
  result.point = point;
  result.responses = counters.completed;
  result.batches = counters.batches;
  result.max_batch_rows = counters.max_batch_rows;
  result.seconds = elapsed_s;
  result.rps = double(counters.completed) / elapsed_s;
  result.p50_ms = percentile_of_sorted(all, 0.50) * 1e-3;
  result.p95_ms = percentile_of_sorted(all, 0.95) * 1e-3;
  result.p99_ms = percentile_of_sorted(all, 0.99) * 1e-3;
  return result;
}

struct TenantSpec {
  const char* name;
  serve::Priority priority;
  std::size_t clients;
  std::size_t rows;  ///< rows per request
};

struct TenantResult {
  std::string name;
  const char* lane = "";
  std::uint64_t responses = 0;
  std::uint64_t quota_rejected = 0;
  double p50_ms = 0, p99_ms = 0;
};

struct FleetResult {
  std::vector<TenantResult> tenants;
  std::vector<std::pair<std::string, serve::ModelCounters>> models;
  serve::EngineCounters counters{};
  double interactive_p99_ms = 0;
  double steady_batch_p99_ms = 0;
  bool lane_slo_met = false;     ///< interactive p99 <= steady batch p99
  bool quota_enforced = false;   ///< greedy saw ServeQuotaError rejections
  bool accounting_exact = false; ///< per-model and global books balance
};

/// Two models on one worker pool, three closed-loop tenants: "alice"
/// (interactive, 1-row), "steady" (batch, 4-row) and "greedy" (batch,
/// 4-row, quota-capped).  Every client alternates models per request so
/// both chains stay hot; greedy backs off briefly on each rejection so
/// the loop measures quota policy, not spin throughput.
FleetResult run_fleet(const Made& model, std::size_t workers,
                      double seconds) {
  serve::ServeConfig config;
  config.workers = workers;
  config.max_batch_rows = 32;
  config.max_wait_us = 1000;
  config.max_pending_rows = 4096;
  // ~50-row burst then 200 rows/s: far below what a closed loop pushes.
  config.tenant_quotas["greedy"] = serve::TenantQuota{200, 50};
  serve::InferenceEngine engine(config);
  engine.publish_model("m0", model);
  engine.publish_model("m1", model);

  const std::vector<TenantSpec> specs = {
      {"alice", serve::Priority::kInteractive, 8, 1},
      {"steady", serve::Priority::kBatch, 8, 4},
      {"greedy", serve::Priority::kBatch, 4, 4},
  };

  std::vector<std::vector<std::vector<double>>> latencies_us(specs.size());
  const double start_us = telemetry::now_us();
  const double deadline_us = start_us + seconds * 1e6;
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const TenantSpec& spec = specs[s];
    latencies_us[s].resize(spec.clients);
    for (std::size_t c = 0; c < spec.clients; ++c) {
      threads.emplace_back([&, s, c] {
        const TenantSpec& tenant = specs[s];
        std::vector<double>& latencies = latencies_us[s][c];
        serve::RequestOptions options;
        options.tenant = tenant.name;
        options.priority = tenant.priority;
        std::uint64_t r = 0;
        while (telemetry::now_us() < deadline_us) {
          options.model = (r % 2 == 0) ? "m0" : "m1";
          const double t0 = telemetry::now_us();
          try {
            (void)engine
                .submit_sample(tenant.rows, 1000 * (100 * s + c + 1) + r,
                               options)
                .get();
            latencies.push_back(telemetry::now_us() - t0);
          } catch (const serve::ServeQuotaError&) {
            std::this_thread::sleep_for(std::chrono::microseconds(500));
          } catch (const serve::ServeOverloadError&) {
            std::this_thread::sleep_for(std::chrono::microseconds(500));
          }
          ++r;
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();
  engine.drain();

  FleetResult fleet;
  fleet.counters = engine.counters();
  fleet.models = engine.model_counters();
  const auto tenant_counters = engine.tenant_counters();
  for (std::size_t s = 0; s < specs.size(); ++s) {
    TenantResult tenant;
    tenant.name = specs[s].name;
    tenant.lane = serve::priority_name(specs[s].priority);
    std::vector<double> all;
    for (const auto& latencies : latencies_us[s])
      all.insert(all.end(), latencies.begin(), latencies.end());
    std::sort(all.begin(), all.end());
    tenant.responses = all.size();
    tenant.p50_ms = percentile_of_sorted(all, 0.50) * 1e-3;
    tenant.p99_ms = percentile_of_sorted(all, 0.99) * 1e-3;
    for (const auto& [name, counters] : tenant_counters)
      if (name == tenant.name) tenant.quota_rejected = counters.quota_rejected;
    if (tenant.name == "alice") fleet.interactive_p99_ms = tenant.p99_ms;
    if (tenant.name == "steady") fleet.steady_batch_p99_ms = tenant.p99_ms;
    if (tenant.name == "greedy")
      fleet.quota_enforced = tenant.quota_rejected > 0;
    fleet.tenants.push_back(std::move(tenant));
  }
  fleet.lane_slo_met = fleet.interactive_p99_ms <= fleet.steady_batch_p99_ms;

  fleet.accounting_exact =
      fleet.counters.submitted ==
      fleet.counters.completed + fleet.counters.failed;
  std::uint64_t model_submitted = 0;
  for (const auto& [name, counters] : fleet.models) {
    if (counters.submitted != counters.completed + counters.failed)
      fleet.accounting_exact = false;
    model_submitted += counters.submitted;
  }
  if (model_submitted != fleet.counters.submitted)
    fleet.accounting_exact = false;
  return fleet;
}

void append_result_json(std::ostringstream& json, const RunResult& result,
                        double gain) {
  json << "      {\"max_batch_rows\": " << result.point.max_batch_rows
       << ", \"max_wait_us\": " << result.point.max_wait_us
       << ", \"responses\": " << result.responses
       << ", \"seconds\": " << result.seconds
       << ", \"throughput_rps\": " << result.rps
       << ", \"mean_batch_rows\": " << result.mean_batch_rows()
       << ", \"max_batch_rows_seen\": " << result.max_batch_rows
       << ", \"gain_vs_baseline\": " << gain
       << ", \"latency_ms\": {\"p50\": " << result.p50_ms
       << ", \"p95\": " << result.p95_ms << ", \"p99\": " << result.p99_ms
       << "}}";
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("bench_serve_throughput",
                    "serving throughput vs micro-batch policy; writes "
                    "BENCH_serve.json");
  opts.add_option("spins", "1000", "MADE input dimension");
  opts.add_option("hidden", "0", "hidden width (0 = paper default)");
  // 256 closed-loop clients keep >= 2x max_batch_rows requests in flight at
  // the widest sweep point (128), so the row budget can actually saturate;
  // the old default of 64 capped every batch at 64 rows by construction.
  opts.add_option("clients", "256", "closed-loop client threads");
  opts.add_option("rows", "1", "rows per request");
  opts.add_option("workers", "1", "engine worker threads");
  opts.add_option("seconds", "1.5", "measurement time per configuration");
  opts.add_option("out", "BENCH_serve.json", "JSON artifact path");
  if (!opts.parse(argc, argv)) return 0;

  const std::size_t n = std::size_t(opts.get_int("spins"));
  const std::size_t h = opts.get_int("hidden") > 0
                            ? std::size_t(opts.get_int("hidden"))
                            : made_default_hidden(n);
  const std::size_t clients = std::size_t(opts.get_int("clients"));
  const std::size_t rows = std::size_t(opts.get_int("rows"));
  const std::size_t workers = std::size_t(opts.get_int("workers"));
  const double seconds = opts.get_double("seconds");

  Made model(n, h);
  model.initialize(7);
  std::cout << "MADE n=" << n << " h=" << h << " ("
            << model.num_parameters() << " parameters); " << clients
            << " closed-loop clients x " << rows << " row(s)/request, "
            << workers << " worker(s), " << seconds << " s/config\n\n";

  const SweepPoint baseline{1, 0};
  const std::vector<SweepPoint> tuned = {
      {16, 500}, {32, 1000}, {64, 2000}, {128, 4000}};

  std::ostringstream json;
  json << "{\n  \"bench\": \"serve_throughput\",\n";
  json << "  \"model\": {\"spins\": " << n << ", \"hidden\": " << h
       << ", \"parameters\": " << model.num_parameters() << "},\n";
  json << "  \"load\": {\"clients\": " << clients
       << ", \"rows_per_request\": " << rows << ", \"workers\": " << workers
       << ", \"seconds_per_config\": " << seconds << "},\n";
  json << "  \"kinds\": {\n";

  double best_gain = 0;
  double min_gain = std::numeric_limits<double>::infinity();
  const char* kind_names[] = {"sample", "log_psi"};
  // Per-kind results (baseline first, then the tuned sweep) for the
  // sample-vs-log-psi ratio section below.
  std::vector<RunResult> kind_results[2];
  for (int kind = 0; kind < 2; ++kind) {
    const bool sample_kind = kind == 0;
    std::cout << "=== kind: " << kind_names[kind] << " ===\n";
    const RunResult base =
        run_point(model, sample_kind, baseline, workers, clients, rows,
                  seconds);
    kind_results[kind].push_back(base);
    std::cout << "  batch=1 window=0      : " << format_fixed(base.rps, 1)
              << " req/s  p50 " << format_fixed(base.p50_ms, 2)
              << " ms  p99 " << format_fixed(base.p99_ms, 2) << " ms\n";

    json << "    \"" << kind_names[kind] << "\": {\n      \"baseline\":\n";
    append_result_json(json, base, 1.0);
    json << ",\n      \"tuned\": [\n";

    double kind_best = 0;
    for (std::size_t i = 0; i < tuned.size(); ++i) {
      const RunResult result = run_point(model, sample_kind, tuned[i],
                                         workers, clients, rows, seconds);
      kind_results[kind].push_back(result);
      const double gain = base.rps > 0 ? result.rps / base.rps : 0;
      kind_best = std::max(kind_best, gain);
      min_gain = std::min(min_gain, gain);
      std::cout << "  batch=" << result.point.max_batch_rows << " window="
                << result.point.max_wait_us
                << "us: " << format_fixed(result.rps, 1) << " req/s  p50 "
                << format_fixed(result.p50_ms, 2) << " ms  p99 "
                << format_fixed(result.p99_ms, 2) << " ms  (occupancy "
                << format_fixed(result.mean_batch_rows(), 1) << " rows, gain "
                << format_fixed(gain, 2) << "x)\n";
      json << "  ";
      append_result_json(json, result, gain);
      json << (i + 1 < tuned.size() ? ",\n" : "\n");
    }
    json << "      ],\n      \"best_gain\": " << kind_best << "\n    }"
         << (kind == 0 ? ",\n" : "\n");
    best_gain = std::max(best_gain, kind_best);
    std::cout << "  best micro-batching gain: "
              << format_fixed(kind_best, 2) << "x\n\n";
  }

  // Sample-vs-log-psi ratio: the batched conditional engine's target is
  // exact ancestral sampling within 1.5x of the log-psi cost at the same
  // batching policy (the ROADMAP's Table-1 sampling-cost criterion).  The
  // ratio is taken point-by-point and the gate holds if any tuned point
  // meets it — the saturated points are where the batched kernel matters.
  std::cout << "=== sample vs log_psi (same policy) ===\n";
  double best_p50_ratio = std::numeric_limits<double>::infinity();
  json << "  },\n  \"sample_vs_log_psi\": {\n    \"points\": [\n";
  for (std::size_t i = 0; i < kind_results[0].size(); ++i) {
    const RunResult& sample_result = kind_results[0][i];
    const RunResult& log_psi_result = kind_results[1][i];
    const double p50_ratio = log_psi_result.p50_ms > 0
                                 ? sample_result.p50_ms / log_psi_result.p50_ms
                                 : 0;
    const double rps_ratio = sample_result.rps > 0
                                 ? log_psi_result.rps / sample_result.rps
                                 : 0;
    if (i > 0) best_p50_ratio = std::min(best_p50_ratio, p50_ratio);
    std::cout << "  batch=" << sample_result.point.max_batch_rows
              << " window=" << sample_result.point.max_wait_us
              << "us: sample p50 " << format_fixed(sample_result.p50_ms, 2)
              << " ms vs log_psi p50 "
              << format_fixed(log_psi_result.p50_ms, 2) << " ms -> ratio "
              << format_fixed(p50_ratio, 2) << "x\n";
    json << "      {\"max_batch_rows\": " << sample_result.point.max_batch_rows
         << ", \"max_wait_us\": " << sample_result.point.max_wait_us
         << ", \"sample_p50_ms\": " << sample_result.p50_ms
         << ", \"log_psi_p50_ms\": " << log_psi_result.p50_ms
         << ", \"p50_ratio\": " << p50_ratio
         << ", \"rps_ratio\": " << rps_ratio << "}"
         << (i + 1 < kind_results[0].size() ? ",\n" : "\n");
  }
  const double target_max_ratio = 1.5;
  const bool ratio_ok = best_p50_ratio <= target_max_ratio;
  json << "    ],\n    \"best_p50_ratio\": " << best_p50_ratio
       << ",\n    \"target_max_ratio\": " << target_max_ratio
       << ",\n    \"ratio_ok\": " << (ratio_ok ? "true" : "false") << "\n";
  std::cout << "  best tuned sample/log_psi p50 ratio "
            << format_fixed(best_p50_ratio, 2) << "x (target <= "
            << format_fixed(target_max_ratio, 1) << "x: "
            << (ratio_ok ? "ACHIEVED" : "MISSED") << ")\n\n";

  // Fleet section: 2 models x 3 tenants on one pool.
  std::cout << "=== fleet: 2 models x 3 tenants ===\n";
  const FleetResult fleet = run_fleet(model, workers, seconds);
  for (const TenantResult& tenant : fleet.tenants) {
    std::cout << "  " << tenant.name << " (" << tenant.lane
              << "): " << tenant.responses << " responses  p50 "
              << format_fixed(tenant.p50_ms, 2) << " ms  p99 "
              << format_fixed(tenant.p99_ms, 2) << " ms";
    if (tenant.quota_rejected > 0)
      std::cout << "  quota-rejected " << tenant.quota_rejected;
    std::cout << "\n";
  }
  for (const auto& [name, counters] : fleet.models)
    std::cout << "  model " << name << ": " << counters.submitted
              << " submitted, " << counters.completed << " completed, "
              << counters.batches << " batches\n";
  std::cout << "  interactive p99 " << format_fixed(fleet.interactive_p99_ms, 2)
            << " ms vs steady batch p99 "
            << format_fixed(fleet.steady_batch_p99_ms, 2) << " ms -> lane SLO "
            << (fleet.lane_slo_met ? "met" : "MISSED") << "; quota "
            << (fleet.quota_enforced ? "enforced" : "NOT ENFORCED")
            << "; accounting "
            << (fleet.accounting_exact ? "exact" : "BROKEN") << "\n\n";

  json << "  },\n  \"fleet\": {\n    \"tenants\": [\n";
  for (std::size_t t = 0; t < fleet.tenants.size(); ++t) {
    const TenantResult& tenant = fleet.tenants[t];
    json << "      {\"tenant\": \"" << tenant.name << "\", \"lane\": \""
         << tenant.lane << "\", \"responses\": " << tenant.responses
         << ", \"quota_rejected\": " << tenant.quota_rejected
         << ", \"latency_ms\": {\"p50\": " << tenant.p50_ms
         << ", \"p99\": " << tenant.p99_ms << "}}"
         << (t + 1 < fleet.tenants.size() ? ",\n" : "\n");
  }
  json << "    ],\n    \"models\": [\n";
  for (std::size_t m = 0; m < fleet.models.size(); ++m) {
    const auto& [name, counters] = fleet.models[m];
    json << "      {\"model\": \"" << name
         << "\", \"submitted\": " << counters.submitted
         << ", \"completed\": " << counters.completed
         << ", \"failed\": " << counters.failed
         << ", \"batches\": " << counters.batches
         << ", \"version\": " << counters.version << "}"
         << (m + 1 < fleet.models.size() ? ",\n" : "\n");
  }
  json << "    ],\n    \"interactive_p99_ms\": " << fleet.interactive_p99_ms
       << ",\n    \"steady_batch_p99_ms\": " << fleet.steady_batch_p99_ms
       << ",\n    \"lane_slo_met\": "
       << (fleet.lane_slo_met ? "true" : "false")
       << ",\n    \"quota_enforced\": "
       << (fleet.quota_enforced ? "true" : "false")
       << ",\n    \"accounting_exact\": "
       << (fleet.accounting_exact ? "true" : "false") << "\n  }";

  // Exit criteria: (1) micro-batching must be monotone-safe — no point of
  // the sweep may fall below the no-coalescing baseline (the adaptive
  // window close exists precisely so a wide window cannot hurt under
  // closed-loop load; the historical 3x bar assumed per-call weight
  // materialization, which the packed plan removed — best gain is still
  // reported for regression tracking); (2) exact sampling must land within
  // 1.5x of log-psi p50 at some tuned point (the batched conditional
  // engine's target); (3) the fleet run must hold the interactive-lane
  // SLO, enforce the greedy tenant's quota and keep per-model accounting
  // exact.
  const double target_gain = 1.0;
  const bool fleet_ok =
      fleet.lane_slo_met && fleet.quota_enforced && fleet.accounting_exact;
  const bool achieved = min_gain >= target_gain && ratio_ok && fleet_ok;
  json << ",\n  \"gain\": " << best_gain
       << ",\n  \"min_gain\": " << min_gain
       << ",\n  \"target_min_gain\": " << target_gain
       << ",\n  \"sample_vs_log_psi_ratio_ok\": " << (ratio_ok ? "true" : "false")
       << ",\n  \"fleet_ok\": " << (fleet_ok ? "true" : "false")
       << ",\n  \"achieved\": " << (achieved ? "true" : "false") << "\n}\n";

  const std::string out = opts.get_string("out");
  std::ofstream file(out);
  file << json.str();
  std::cout << "micro-batching gain: best " << format_fixed(best_gain, 2)
            << "x, min across sweep " << format_fixed(min_gain, 2)
            << "x (monotone-safe target: every point >= "
            << format_fixed(target_gain, 1)
            << "x: " << (min_gain >= target_gain ? "ACHIEVED" : "MISSED")
            << "); fleet criteria " << (fleet_ok ? "ACHIEVED" : "MISSED")
            << "; wrote " << out << "\n";
  return achieved ? 0 : 1;
}
