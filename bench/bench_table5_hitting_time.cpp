/// \file bench_table5_hitting_time.cpp
/// \brief Reproduces Table 5: seconds of training needed to reach a target
/// cut, MADE+AUTO vs RBM+MCMC (ADAM; evaluation time excluded).
///
/// The paper's absolute targets ({41, 190, 730, 2800, 16800}) belong to its
/// instances; here the target is a fixed fraction of each instance's
/// Burer-Monteiro cut so the protocol transfers across scales (the paper
/// chose its targets "heuristically based on Table 2" — same idea).
///
/// Expected shape (paper): MADE+AUTO hits the target in seconds at every
/// size, RBM+MCMC needs orders of magnitude longer and the gap widens
/// with n.

#include <iostream>

#include "baselines/local_search.hpp"
#include "bench_common.hpp"
#include "core/hitting_time.hpp"

using namespace vqmc;
using namespace vqmc::bench;

namespace {

HittingTimeResult hit(const MaxCut& h, const std::string& model,
                      const std::string& sampler, Real target,
                      const Scale& scale, std::uint64_t seed) {
  auto m = make_model(model, h.num_spins(), 0, seed);
  auto s = make_sampler(sampler, *m, seed * 31 + 7);
  auto o = make_optimizer("ADAM");
  TrainerConfig cfg;
  cfg.iterations = scale.iterations * 4;  // generous budget for the race
  cfg.batch_size = scale.batch_size;
  VqmcTrainer trainer(h, *m, *s, *o, cfg);
  return measure_hitting_time(
      trainer, target,
      [&h](const Matrix&, const EnergyEstimate& est) {
        return h.cut_from_energy(est.mean);
      },
      scale.eval_batch);
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("bench_table5_hitting_time",
                    "Table 5: time to reach a target cut");
  add_scale_options(opts);
  opts.add_option("target-fraction", "0.93",
                  "target = fraction * Burer-Monteiro cut");
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {20, 50, 100};
    scale.seeds = 1;
  }
  const Real fraction = Real(opts.get_double("target-fraction"));
  print_scale_banner("Table 5: hitting time (seconds, training only)", scale,
                     opts.get_flag("full"));

  Table table("Seconds to reach the target cut (x = budget exhausted)");
  std::vector<std::string> header = {"Method"};
  for (int n : scale.dims) header.push_back("n=" + std::to_string(n));
  table.set_header(header);

  std::vector<std::string> made_row = {"MADE+AUTO"};
  std::vector<std::string> rbm_row = {"RBM+MCMC"};
  for (int n : scale.dims) {
    const std::size_t un = std::size_t(n);
    const MaxCut h = MaxCut::paper_instance(un, 1000 + un);
    baselines::BurerMonteiroCutOptions bm;
    bm.seed = 1;
    const Real target = fraction * baselines::burer_monteiro_cut(h.graph(), bm).cut;
    std::cout << "n=" << n << ": target cut " << format_fixed(target, 1)
              << "\n";

    std::vector<Real> made_secs, rbm_secs;
    bool made_all = true, rbm_all = true;
    for (int s = 0; s < scale.seeds; ++s) {
      const HittingTimeResult mr =
          hit(h, "MADE", "AUTO", target, scale, std::uint64_t(s + 1));
      const HittingTimeResult rr =
          hit(h, "RBM", "MCMC", target, scale, std::uint64_t(s + 1));
      made_all &= mr.reached;
      rbm_all &= rr.reached;
      made_secs.push_back(Real(mr.train_seconds));
      rbm_secs.push_back(Real(rr.train_seconds));
    }
    made_row.push_back(made_all ? format_fixed(mean_std(made_secs).first, 2)
                                : "x");
    rbm_row.push_back(rbm_all ? format_fixed(mean_std(rbm_secs).first, 2)
                              : "x(" + format_fixed(mean_std(rbm_secs).first, 1) + ")");
  }
  table.add_row(made_row);
  table.add_row(rbm_row);
  std::cout << "\n" << table.to_string() << "\n";
  std::cout << "Paper shape check: MADE+AUTO reaches the target 1-2 orders "
               "of magnitude faster; the gap widens with n.\n";
  return 0;
}
