/// \file bench_ablation_sr.cpp
/// \brief Ablation of the stochastic-reconfiguration design choices that
/// DESIGN.md calls out: the regularization lambda (the paper fixes 1e-3
/// without a sweep) and the dense-vs-matrix-free solve path.
///
/// Expected shape: a broad sweet spot around lambda ~ 1e-3..1e-2 (too small
/// -> ill-conditioned natural gradient, too large -> SR degenerates to
/// plain SGD); the CG path matches the dense path's convergence while
/// avoiding the d x d matrix.

#include <iostream>

#include "bench_common.hpp"
#include "nn/made.hpp"
#include "optim/sgd.hpp"
#include "sampler/autoregressive_sampler.hpp"

using namespace vqmc;
using namespace vqmc::bench;

namespace {

Real final_energy(const TransverseFieldIsing& tim, Real lambda,
                  std::size_t dense_threshold, int iterations,
                  std::size_t batch, std::uint64_t seed,
                  std::size_t hidden = 0) {
  Made made = hidden == 0 ? Made::with_default_hidden(tim.num_spins())
                          : Made(tim.num_spins(), hidden);
  made.initialize(seed);
  AutoregressiveSampler sampler(made, seed + 1);
  Sgd sgd(0.1);
  TrainerConfig cfg;
  cfg.iterations = iterations;
  cfg.batch_size = batch;
  cfg.use_sr = true;
  cfg.sr.regularization = lambda;
  cfg.sr.dense_threshold = dense_threshold;
  VqmcTrainer trainer(tim, made, sampler, sgd, cfg);
  trainer.run();
  return trainer.evaluate(512).mean;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("bench_ablation_sr",
                    "SR ablation: regularization sweep + solve-path parity");
  add_scale_options(opts);
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {20, 40};
    scale.iterations = 50;
    scale.batch_size = 96;
  }
  print_scale_banner("Ablation: stochastic reconfiguration", scale,
                     opts.get_flag("full"));

  // --- Lambda sweep ---------------------------------------------------------
  const std::vector<Real> lambdas = {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0};
  Table sweep("Converged TIM energy vs SR regularization lambda "
              "(SGD 0.1, lower is better; paper uses lambda = 1e-3)");
  std::vector<std::string> header = {"n"};
  for (Real l : lambdas) header.push_back("l=" + format_fixed(l, 5));
  header.push_back("no SR");
  sweep.set_header(header);

  for (int n : scale.dims) {
    const TransverseFieldIsing tim =
        TransverseFieldIsing::random_dense(std::size_t(n), 7000 + std::size_t(n));
    std::vector<std::string> row = {std::to_string(n)};
    for (Real lambda : lambdas) {
      row.push_back(format_fixed(
          final_energy(tim, lambda, 0 /* force CG */, scale.iterations,
                       scale.batch_size, 1),
          2));
    }
    // Plain SGD reference.
    Made made = Made::with_default_hidden(std::size_t(n));
    made.initialize(1);
    AutoregressiveSampler sampler(made, 2);
    Sgd sgd(0.1);
    TrainerConfig cfg;
    cfg.iterations = scale.iterations;
    cfg.batch_size = scale.batch_size;
    VqmcTrainer trainer(tim, made, sampler, sgd, cfg);
    trainer.run();
    row.push_back(format_fixed(trainer.evaluate(512).mean, 2));
    sweep.add_row(row);
    std::cout << "done: lambda sweep n=" << n << "\n";
  }
  std::cout << "\n" << sweep.to_string() << "\n";

  // --- Dense vs CG solve-path parity ----------------------------------------
  // The dense path Cholesky-factors the d x d Fisher every iteration
  // (O(d^3)), so parity is checked on a deliberately small model: n = 16,
  // h = 12 -> d = 412. The CG path handles the paper-scale d.
  std::cout << "Solve-path parity (n = 16, h = 12, same seed, lambda = "
               "1e-3):\n";
  Table parity("");
  parity.set_header({"n", "dense-path energy", "CG-path energy", "abs diff"});
  {
    const std::size_t n = 16, h = 12;
    const TransverseFieldIsing tim =
        TransverseFieldIsing::random_dense(n, 7000 + n);
    const Real dense = final_energy(tim, 1e-3, std::size_t(1) << 30,
                                    scale.iterations, scale.batch_size, 3, h);
    const Real cg = final_energy(tim, 1e-3, 0, scale.iterations,
                                 scale.batch_size, 3, h);
    parity.add_row({std::to_string(n), format_fixed(dense, 4),
                    format_fixed(cg, 4),
                    format_fixed(std::abs(dense - cg), 5)});
  }
  std::cout << parity.to_string() << "\n";
  std::cout << "Shape check: sweet spot around 1e-3..1e-2; very large lambda "
               "approaches the no-SR column; dense and CG paths agree to "
               "solver tolerance.\n";
  return 0;
}
