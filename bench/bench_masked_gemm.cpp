/// \file bench_masked_gemm.cpp
/// \brief Packed (extent-kernel) vs dense masked MADE forward throughput.
///
/// The dense baseline replicates the pre-plan per-call pipeline exactly:
/// materialize `M .* W` for both layers, then run dense gemms over the
/// full weight matrices — every multiply against a masked-out (zero)
/// entry is wasted work, and the materialization is a fixed per-call cost
/// proportional to the parameter count.  The packed path is the shipped
/// one: `Made::log_psi` over the version-counter weight cache and the
/// extent-aware kernels (DESIGN.md §5f).
///
/// Both paths produce bit-identical outputs (verified in-run); the bench
/// therefore measures pure compute savings.  The headline is single-thread
/// per-call speedup at n = 1000 (target >= 1.5x).  Emits
/// BENCH_masked_gemm.json; exits nonzero if the packed path is slower than
/// the dense baseline at any swept size.

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <span>
#include <sstream>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "nn/made.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

using namespace vqmc;

namespace {

/// Scratch for the dense baseline (mirrors what the old code allocated or
/// materialized per call; here hoisted so the comparison is generous to
/// the baseline — it pays for the multiply work, not allocator churn).
struct DenseScratch {
  Matrix w1m, w2m;
  Matrix a1, h1, p;
};

/// The pre-plan dense path: per-call mask materialization + dense gemms.
void dense_log_psi(const Made& made, const Matrix& batch, std::span<Real> out,
                   DenseScratch& s) {
  const std::size_t n = made.num_spins();
  const std::size_t h = made.hidden_size();
  const std::size_t bs = batch.rows();
  const std::span<const Real> params =
      static_cast<const WavefunctionModel&>(made).parameters();
  const std::size_t off_w2 = h * n + h;

  const Real* m1 = made.mask1().data();
  const Real* m2 = made.mask2().data();
  for (std::size_t i = 0; i < h * n; ++i)
    s.w1m.data()[i] = m1[i] * params[i];
  for (std::size_t i = 0; i < n * h; ++i)
    s.w2m.data()[i] = m2[i] * params[off_w2 + i];

  gemm_nt(batch, s.w1m, s.a1);
  add_row_broadcast(s.a1, made.bias1());
  s.h1 = s.a1;
  relu_inplace(s.h1);
  gemm_nt(s.h1, s.w2m, s.p);
  add_row_broadcast(s.p, made.bias2());
  sigmoid_inplace(s.p);

  for (std::size_t k = 0; k < bs; ++k) {
    Real log_pi = 0;
    const Real* x = batch.row(k).data();
    const Real* p = s.p.row(k).data();
    for (std::size_t i = 0; i < n; ++i) {
      const Real pi = std::max(p[i], Real(1e-12));
      const Real qi = std::max(1 - p[i], Real(1e-12));
      log_pi += x[i] * std::log(pi) + (1 - x[i]) * std::log(qi);
    }
    out[k] = log_pi / 2;
  }
}

/// Median per-call milliseconds over `repeats` timed blocks of `calls`.
double time_per_call_ms(const std::function<void()>& fn, std::size_t calls,
                        int repeats) {
  std::vector<double> samples;
  samples.reserve(std::size_t(repeats));
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    for (std::size_t c = 0; c < calls; ++c) fn();
    samples.push_back(timer.milliseconds() / double(calls));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct SizeResult {
  std::size_t spins = 0;
  std::size_t hidden = 0;
  double dense_ms = 0;
  double packed_ms = 0;
  double speedup = 0;
  bool bitwise_equal = false;
};

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("bench_masked_gemm",
                    "packed vs dense masked MADE forward throughput; writes "
                    "BENCH_masked_gemm.json");
  opts.add_option("spins", "100,300,1000", "MADE sizes to sweep (headline "
                  "is the largest)");
  opts.add_option("hidden", "0", "hidden width (0 = paper default per n)");
  opts.add_option("rows", "64", "batch rows per forward call");
  opts.add_option("repeats", "5", "timed blocks per path (median reported)");
  opts.add_option("seconds", "0.2", "target measurement time per block");
  opts.add_option("out", "BENCH_masked_gemm.json", "JSON artifact path");
  if (!opts.parse(argc, argv)) return 0;

#ifdef _OPENMP
  // Single-thread headline: the win must come from skipped multiplies and
  // the removed materialization, not from parallel scaling differences.
  omp_set_num_threads(1);
#endif

  std::vector<int> sizes = opts.get_int_list("spins");
  std::sort(sizes.begin(), sizes.end());
  const std::size_t rows = std::size_t(opts.get_int("rows"));
  const int repeats = opts.get_int("repeats");
  const double block_seconds = opts.get_double("seconds");

  std::cout << "single-thread packed vs dense masked forward, " << rows
            << " rows/call, median of " << repeats << " blocks\n\n";

  std::vector<SizeResult> results;
  bool all_equal = true;
  for (const int n_int : sizes) {
    const std::size_t n = std::size_t(n_int);
    const std::size_t h = opts.get_int("hidden") > 0
                              ? std::size_t(opts.get_int("hidden"))
                              : made_default_hidden(n);
    Made made(n, h);
    made.initialize(17);
    rng::Xoshiro256 gen(n);
    Matrix batch(rows, n);
    for (std::size_t i = 0; i < batch.size(); ++i)
      batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;

    DenseScratch scratch{Matrix(h, n), Matrix(n, h), Matrix(rows, h),
                         Matrix(rows, h), Matrix(rows, n)};
    Made::Workspace ws;
    Vector dense_out(rows), packed_out(rows);

    // Warm both paths (shapes the workspace, fills the weight cache) and
    // pin the bit-for-bit contract before timing.
    dense_log_psi(made, batch, dense_out.span(), scratch);
    made.log_psi(batch, packed_out.span(), ws);
    bool equal = true;
    for (std::size_t k = 0; k < rows; ++k)
      equal &= dense_out[k] == packed_out[k];
    all_equal &= equal;

    // Calibrate calls per timed block off a dense probe.
    Timer probe;
    dense_log_psi(made, batch, dense_out.span(), scratch);
    const double probe_s = std::max(probe.seconds(), 1e-6);
    const std::size_t calls = std::max<std::size_t>(
        3, std::size_t(block_seconds / probe_s));

    SizeResult r;
    r.spins = n;
    r.hidden = h;
    r.bitwise_equal = equal;
    r.dense_ms = time_per_call_ms(
        [&] { dense_log_psi(made, batch, dense_out.span(), scratch); }, calls,
        repeats);
    r.packed_ms = time_per_call_ms(
        [&] { made.log_psi(batch, packed_out.span(), ws); }, calls, repeats);
    r.speedup = r.packed_ms > 0 ? r.dense_ms / r.packed_ms : 0;
    results.push_back(r);

    std::cout << "n=" << n << " h=" << h << ": dense "
              << format_fixed(r.dense_ms, 3) << " ms/call, packed "
              << format_fixed(r.packed_ms, 3) << " ms/call  -> "
              << format_fixed(r.speedup, 2) << "x"
              << (equal ? "" : "  [MISMATCH]") << "\n";
  }

  const SizeResult& headline = results.back();
  const double target = 1.5;
  const bool achieved = headline.speedup >= target;
  const bool not_slower =
      std::all_of(results.begin(), results.end(),
                  [](const SizeResult& r) { return r.speedup >= 1.0; });

  std::ostringstream json;
  json << "{\n  \"bench\": \"masked_gemm\",\n  \"threads\": 1,\n"
       << "  \"batch_rows\": " << rows << ",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json << "    {\"spins\": " << r.spins << ", \"hidden\": " << r.hidden
         << ", \"dense_ms_per_call\": " << r.dense_ms
         << ", \"packed_ms_per_call\": " << r.packed_ms
         << ", \"speedup\": " << r.speedup << ", \"bitwise_equal\": "
         << (r.bitwise_equal ? "true" : "false") << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"headline\": {\"spins\": " << headline.spins
       << ", \"speedup\": " << headline.speedup << ", \"target\": " << target
       << ", \"achieved\": " << (achieved ? "true" : "false") << "},\n"
       << "  \"not_slower\": " << (not_slower ? "true" : "false") << ",\n"
       << "  \"bitwise_equal\": " << (all_equal ? "true" : "false") << "\n}\n";

  const std::string out = opts.get_string("out");
  std::ofstream file(out);
  file << json.str();

  std::cout << "\nheadline n=" << headline.spins << " speedup "
            << format_fixed(headline.speedup, 2) << "x (target >= "
            << format_fixed(target, 1) << "x: "
            << (achieved ? "ACHIEVED" : "MISSED") << "); wrote " << out
            << "\n";
  if (!all_equal) {
    std::cout << "FAIL: packed path diverged from the dense baseline\n";
    return 1;
  }
  if (!not_slower) {
    std::cout << "FAIL: packed path slower than dense at some size\n";
    return 1;
  }
  return 0;
}
