/// \file bench_masked_gemm.cpp
/// \brief Three-way masked MADE forward throughput: dense-scalar vs
/// packed-scalar vs SIMD (DESIGN.md §5f/§5g).
///
/// The three timed paths retrace the kernel lineage:
///
///  - *dense-scalar* (pre-plan, PR 4 era): per-call `M .* W`
///    materialization, then scalar dense gemms over the full weight
///    matrices (vqmc::ref) — every multiply against a masked-out entry is
///    wasted work and the materialization is a fixed per-call cost.
///  - *packed-scalar* (PR 5 era): the cached masked weights and the scalar
///    extent kernels (vqmc::ref) — structural zeros skipped, no SIMD.
///  - *simd* (shipped): `Made::log_psi` over the packed panels with the
///    runtime-dispatched SIMD kernels.
///
/// All paths compute the same log psi values; the SIMD path must agree
/// with the scalar ones within the accumulation-order tolerance contract
/// (kernels.hpp) — verified in-run.  The headline is single-thread
/// per-call speedup at the largest size: simd over packed-scalar
/// (target >= 3x) and simd over dense-scalar.  Emits
/// BENCH_masked_gemm.json; exits nonzero on a missed target or a parity
/// failure.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <span>
#include <sstream>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "nn/made.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"
#include "tensor/kernels_ref.hpp"
#include "tensor/simd.hpp"

using namespace vqmc;

namespace {

/// Scratch shared by the two scalar baselines (hoisted so they pay for
/// multiply work, not allocator churn).
struct ScalarScratch {
  Matrix w1m, w2m;  ///< dense path only: per-call materialization target
  Matrix a1, h1, p;
};

/// The pre-plan dense path: per-call mask materialization + scalar dense
/// gemms + scalar log loop.
void dense_scalar_log_psi(const Made& made, const Matrix& batch,
                          std::span<Real> out, ScalarScratch& s) {
  const std::size_t n = made.num_spins();
  const std::size_t h = made.hidden_size();
  const std::size_t bs = batch.rows();
  const std::span<const Real> params =
      static_cast<const WavefunctionModel&>(made).parameters();
  const std::size_t off_w2 = h * n + h;

  const Real* m1 = made.mask1().data();
  const Real* m2 = made.mask2().data();
  for (std::size_t i = 0; i < h * n; ++i)
    s.w1m.data()[i] = m1[i] * params[i];
  for (std::size_t i = 0; i < n * h; ++i)
    s.w2m.data()[i] = m2[i] * params[off_w2 + i];

  ref::gemm_nt(batch, s.w1m, s.a1);
  add_row_broadcast(s.a1, made.bias1());
  s.h1 = s.a1;
  relu_inplace(s.h1);
  ref::gemm_nt(s.h1, s.w2m, s.p);
  add_row_broadcast(s.p, made.bias2());
  ref::sigmoid_inplace(s.p);

  for (std::size_t k = 0; k < bs; ++k)
    out[k] =
        ref::bernoulli_log_likelihood(batch.row(k), s.p.row(k).data(), 1e-12) /
        2;
}

/// The PR 5 packed path: cached masked weights + scalar extent kernels.
void packed_scalar_log_psi(const Made& made, const Made::MaskedWeights& mw,
                           const Matrix& batch, std::span<Real> out,
                           ScalarScratch& s) {
  const std::size_t bs = batch.rows();
  ref::gemm_nt_extents(batch, mw.w1m, made.w1_extents().view(), s.a1);
  add_row_broadcast(s.a1, made.bias1());
  s.h1 = s.a1;
  relu_inplace(s.h1);
  ref::gemm_nt_extents(s.h1, mw.w2m, made.w2_extents().view(), s.p);
  add_row_broadcast(s.p, made.bias2());
  ref::sigmoid_inplace(s.p);
  for (std::size_t k = 0; k < bs; ++k)
    out[k] =
        ref::bernoulli_log_likelihood(batch.row(k), s.p.row(k).data(), 1e-12) /
        2;
}

/// Median per-call milliseconds over `repeats` timed blocks of `calls`.
double time_per_call_ms(const std::function<void()>& fn, std::size_t calls,
                        int repeats) {
  std::vector<double> samples;
  samples.reserve(std::size_t(repeats));
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    for (std::size_t c = 0; c < calls; ++c) fn();
    samples.push_back(timer.milliseconds() / double(calls));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct SizeResult {
  std::size_t spins = 0;
  std::size_t hidden = 0;
  double dense_ms = 0;
  double packed_ms = 0;
  double simd_ms = 0;
  double simd_over_packed = 0;
  double simd_over_dense = 0;
  double parity_max_abs = 0;  ///< max |simd - packed_scalar| over the batch
  bool parity_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("bench_masked_gemm",
                    "dense-scalar vs packed-scalar vs SIMD masked MADE "
                    "forward throughput; writes BENCH_masked_gemm.json");
  opts.add_option("spins", "100,300,1000", "MADE sizes to sweep (headline "
                  "is the largest)");
  opts.add_option("hidden", "0", "hidden width (0 = paper default per n)");
  opts.add_option("rows", "64", "batch rows per forward call");
  opts.add_option("repeats", "5", "timed blocks per path (median reported)");
  opts.add_option("seconds", "0.2", "target measurement time per block");
  opts.add_option("out", "BENCH_masked_gemm.json", "JSON artifact path");
  if (!opts.parse(argc, argv)) return 0;

#ifdef _OPENMP
  // Single-thread headline: the win must come from skipped multiplies,
  // packing, and vector width, not from parallel scaling differences.
  omp_set_num_threads(1);
#endif

  std::vector<int> sizes = opts.get_int_list("spins");
  std::sort(sizes.begin(), sizes.end());
  const std::size_t rows = std::size_t(opts.get_int("rows"));
  const int repeats = opts.get_int("repeats");
  const double block_seconds = opts.get_double("seconds");
  const char* simd_level = simd::level_name(simd::active_level());

  std::cout << "single-thread masked forward, " << rows
            << " rows/call, median of " << repeats
            << " blocks, simd level " << simd_level << "\n\n";

  // Parity tolerance: log psi sums ~n terms of magnitude <= |log eps|
  // ~ 28 through re-associated dots and the polynomial log; the contract
  // bound at n = 1000 sits near 1e-11, so 1e-8 is a safe margin that still
  // catches any real kernel defect.
  const Real parity_tol = 1e-8;

  std::vector<SizeResult> results;
  bool all_parity = true;
  for (const int n_int : sizes) {
    const std::size_t n = std::size_t(n_int);
    const std::size_t h = opts.get_int("hidden") > 0
                              ? std::size_t(opts.get_int("hidden"))
                              : made_default_hidden(n);
    Made made(n, h);
    made.initialize(17);
    rng::Xoshiro256 gen(n);
    Matrix batch(rows, n);
    for (std::size_t i = 0; i < batch.size(); ++i)
      batch.data()[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;

    ScalarScratch scratch{Matrix(h, n), Matrix(n, h), Matrix(rows, h),
                          Matrix(rows, h), Matrix(rows, n)};
    Made::Workspace ws;
    Vector dense_out(rows), packed_out(rows), simd_out(rows);
    const std::shared_ptr<const Made::MaskedWeights> mw = made.masked();

    // Warm every path (shapes the workspace, fills the weight cache) and
    // check the tolerance contract before timing.
    dense_scalar_log_psi(made, batch, dense_out.span(), scratch);
    packed_scalar_log_psi(made, *mw, batch, packed_out.span(), scratch);
    made.log_psi(batch, simd_out.span(), ws);
    Real max_abs = 0;
    for (std::size_t k = 0; k < rows; ++k) {
      max_abs = std::max(max_abs, std::abs(simd_out[k] - packed_out[k]));
      max_abs = std::max(max_abs, std::abs(simd_out[k] - dense_out[k]));
    }
    const bool parity = max_abs <= parity_tol;
    all_parity &= parity;

    // Calibrate calls per timed block off a dense probe.
    Timer probe;
    dense_scalar_log_psi(made, batch, dense_out.span(), scratch);
    const double probe_s = std::max(probe.seconds(), 1e-6);
    const std::size_t calls = std::max<std::size_t>(
        3, std::size_t(block_seconds / probe_s));

    SizeResult r;
    r.spins = n;
    r.hidden = h;
    r.parity_max_abs = max_abs;
    r.parity_ok = parity;
    r.dense_ms = time_per_call_ms(
        [&] { dense_scalar_log_psi(made, batch, dense_out.span(), scratch); },
        calls, repeats);
    r.packed_ms = time_per_call_ms(
        [&] {
          packed_scalar_log_psi(made, *mw, batch, packed_out.span(), scratch);
        },
        calls, repeats);
    r.simd_ms = time_per_call_ms(
        [&] { made.log_psi(batch, simd_out.span(), ws); }, calls, repeats);
    r.simd_over_packed = r.simd_ms > 0 ? r.packed_ms / r.simd_ms : 0;
    r.simd_over_dense = r.simd_ms > 0 ? r.dense_ms / r.simd_ms : 0;
    results.push_back(r);

    std::cout << "n=" << n << " h=" << h << ": dense-scalar "
              << format_fixed(r.dense_ms, 3) << " ms, packed-scalar "
              << format_fixed(r.packed_ms, 3) << " ms, simd "
              << format_fixed(r.simd_ms, 3) << " ms  -> "
              << format_fixed(r.simd_over_packed, 2) << "x over packed, "
              << format_fixed(r.simd_over_dense, 2) << "x over dense"
              << (parity ? "" : "  [PARITY FAIL]") << "\n";
  }

  const SizeResult& headline = results.back();
  const double target = 3.0;
  const bool achieved = headline.simd_over_packed >= target;
  const bool not_slower =
      std::all_of(results.begin(), results.end(), [](const SizeResult& r) {
        return r.simd_over_packed >= 1.0 && r.simd_over_dense >= 1.0;
      });

  std::ostringstream json;
  json << "{\n  \"bench\": \"masked_gemm\",\n  \"threads\": 1,\n"
       << "  \"simd_level\": \"" << simd_level << "\",\n"
       << "  \"batch_rows\": " << rows << ",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json << "    {\"spins\": " << r.spins << ", \"hidden\": " << r.hidden
         << ", \"dense_scalar_ms_per_call\": " << r.dense_ms
         << ", \"packed_scalar_ms_per_call\": " << r.packed_ms
         << ", \"simd_ms_per_call\": " << r.simd_ms
         << ", \"speedup_simd_over_packed\": " << r.simd_over_packed
         << ", \"speedup_simd_over_dense\": " << r.simd_over_dense
         << ", \"parity_max_abs_diff\": " << r.parity_max_abs
         << ", \"parity_ok\": " << (r.parity_ok ? "true" : "false") << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"headline\": {\"spins\": " << headline.spins
       << ", \"speedup_simd_over_packed\": " << headline.simd_over_packed
       << ", \"speedup_simd_over_dense\": " << headline.simd_over_dense
       << ", \"target\": " << target
       << ", \"achieved\": " << (achieved ? "true" : "false") << "},\n"
       << "  \"not_slower\": " << (not_slower ? "true" : "false") << ",\n"
       << "  \"parity_ok\": " << (all_parity ? "true" : "false") << "\n}\n";

  const std::string out = opts.get_string("out");
  std::ofstream file(out);
  file << json.str();

  std::cout << "\nheadline n=" << headline.spins << " simd speedup "
            << format_fixed(headline.simd_over_packed, 2)
            << "x over packed-scalar (target >= " << format_fixed(target, 1)
            << "x: " << (achieved ? "ACHIEVED" : "MISSED") << "), "
            << format_fixed(headline.simd_over_dense, 2)
            << "x over dense-scalar; wrote " << out << "\n";
  if (!all_parity) {
    std::cout << "FAIL: simd path outside the tolerance contract\n";
    return 1;
  }
  if (!not_slower) {
    std::cout << "FAIL: simd path slower than a scalar baseline somewhere\n";
    return 1;
  }
  return achieved ? 0 : 1;
}
