/// \file bench_eq14_mcmc_efficiency.cpp
/// \brief Reproduces the Eq. 14 analysis: the parallel speedup of MCMC
/// sampling is affine in the device count L with a slope that decays toward
/// zero as the (inherently sequential) burn-in grows, while AUTO's speedup
/// is exactly L.
///
/// Also validates the formula empirically by counting the actual forward
/// passes of the MetropolisSampler.

#include <iostream>

#include "bench_common.hpp"
#include "nn/rbm.hpp"
#include "sampler/diagnostics.hpp"
#include "sampler/metropolis_sampler.hpp"

using namespace vqmc;
using namespace vqmc::bench;

int main(int argc, char** argv) {
  OptionParser opts("bench_eq14_mcmc_efficiency",
                    "Eq. 14: analytical MCMC parallel efficiency");
  opts.add_option("samples-per-unit", "100", "n in Eq. 14");
  opts.add_option("thinning", "1", "j in Eq. 14");
  if (!opts.parse(argc, argv)) return 0;
  const std::size_t per_unit = std::size_t(opts.get_int("samples-per-unit"));
  const std::size_t thinning = std::size_t(opts.get_int("thinning"));

  std::cout << "== Eq. 14: MCMC sampling speedup a + bL ==\n\n";
  Table table("Speedup of L units (n=" + std::to_string(per_unit) +
              " kept samples/unit, j=" + std::to_string(thinning) + ")");
  std::vector<std::string> header = {"burn-in k"};
  const std::vector<std::size_t> units = {1, 2, 4, 8, 16, 24};
  for (std::size_t L : units) header.push_back("L=" + std::to_string(L));
  header.push_back("slope b");
  table.set_header(header);

  for (std::size_t k : {std::size_t(0), std::size_t(100), std::size_t(1000),
                        std::size_t(10000)}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (std::size_t L : units)
      row.push_back(format_fixed(mcmc_parallel_speedup(k, thinning, per_unit, L), 2));
    const Real slope = mcmc_parallel_speedup(k, thinning, per_unit, 2) -
                       mcmc_parallel_speedup(k, thinning, per_unit, 1);
    row.push_back(format_fixed(slope, 3));
    table.add_row(row);
  }
  std::cout << table.to_string() << "\n";

  std::vector<std::string> auto_row = {"AUTO (any k)"};
  for (std::size_t L : units)
    auto_row.push_back(format_fixed(auto_parallel_speedup(L), 2));
  std::cout << "AUTO speedup (exact sampling, no burn-in):";
  for (const std::string& s : auto_row) std::cout << " " << s;
  std::cout << "\n\n";

  // Empirical cross-check: the sampler's forward-pass counter matches the
  // k + j * (bs / c) accounting that Eq. 14 is built on.
  const std::size_t n = 50, bs = 100, chains = 2, burn = paper_burn_in(n);
  Rbm rbm(n, n);
  MetropolisConfig cfg;
  cfg.num_chains = chains;
  cfg.burn_in = burn;
  cfg.thinning = thinning;
  MetropolisSampler sampler(rbm, cfg);
  Matrix batch(bs, n);
  sampler.sample(batch);
  const std::uint64_t expected = 1 + burn + thinning * (bs / chains);
  std::cout << "Empirical check: MetropolisSampler used "
            << sampler.statistics().forward_passes
            << " forward passes for one batch; Eq. 14 accounting predicts "
            << expected << " (1 restart + k + j*bs/c).\n";
  std::cout << (sampler.statistics().forward_passes == expected
                    ? "MATCH\n"
                    : "MISMATCH\n");
  return 0;
}
