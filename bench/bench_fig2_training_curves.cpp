/// \file bench_fig2_training_curves.cpp
/// \brief Reproduces Figure 2: training curves (energy and std of the
/// stochastic objective) for TIM, RBM&MCMC vs MADE&AUTO.
///
/// Expected shape (paper): MADE&AUTO's energy decreases smoothly and its
/// std (blue curve) collapses toward zero at every size; RBM&MCMC becomes
/// unstable as n grows because the fixed-length chains under-sample the
/// distribution.

#include <iostream>

#include "bench_common.hpp"

using namespace vqmc;
using namespace vqmc::bench;

namespace {

void print_series(const std::string& label,
                  const std::vector<IterationMetrics>& history, int stride) {
  std::cout << label << "\n";
  std::cout << "  iter  energy        std\n";
  for (std::size_t i = 0; i < history.size();
       i += std::size_t(std::max(1, stride))) {
    const IterationMetrics& m = history[i];
    std::cout << "  " << m.iteration << "\t" << format_fixed(m.energy, 4)
              << "\t" << format_fixed(m.std_dev, 4) << "\n";
  }
  const IterationMetrics& last = history.back();
  std::cout << "  final " << format_fixed(last.energy, 4) << "\t"
            << format_fixed(last.std_dev, 4) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts("bench_fig2_training_curves",
                    "Figure 2: TIM training curves (energy + std)");
  add_scale_options(opts);
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  scale.seeds = 1;
  print_scale_banner("Figure 2: training curves for TIM", scale,
                     opts.get_flag("full"));
  const int stride = std::max(1, scale.iterations / 10);

  for (int n : scale.dims) {
    const TransverseFieldIsing tim =
        TransverseFieldIsing::random_dense(std::size_t(n), std::uint64_t(n));
    std::cout << "--- n = " << n << " ---\n";
    const ComboResult made = run_combo(tim, "MADE", "AUTO", "ADAM", scale, 1);
    print_series("MADE & AUTO (red: energy, blue: std)", made.history, stride);
    const ComboResult rbm = run_combo(tim, "RBM", "MCMC", "ADAM", scale, 1);
    print_series("RBM & MCMC (red: energy, blue: std)", rbm.history, stride);

    // The figure's qualitative claim, checked numerically: MADE's final std
    // should be a small fraction of its initial std.
    const Real made_ratio =
        made.history.back().std_dev /
        std::max<Real>(1e-12, made.history.front().std_dev);
    std::cout << "MADE std reduction factor: " << format_fixed(made_ratio, 3)
              << " (lower is better; paper shows collapse toward 0)\n\n";
  }
  return 0;
}
