/// \file bench_fig4_batch_size_effect.cpp
/// \brief Reproduces Figure 4: normalized converged energy vs the number of
/// GPUs at a fixed per-device batch of 4 (effective batch = 4L).
///
/// Expected shape (paper): converged energy improves (gets more negative)
/// as the device count grows; the improvement saturates for small problems
/// and keeps growing for larger ones.

#include <iostream>

#include "bench_common.hpp"
#include "nn/made.hpp"
#include "parallel/distributed_trainer.hpp"

using namespace vqmc;
using namespace vqmc::bench;
using namespace vqmc::parallel;

int main(int argc, char** argv) {
  OptionParser opts("bench_fig4_batch_size_effect",
                    "Figure 4: converged energy vs number of devices");
  add_scale_options(opts);
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {20, 50, 100};
    scale.iterations = 50;
  }
  print_scale_banner("Figure 4: normalized converged energy (mbs = 4)", scale,
                     opts.get_flag("full"));

  const std::vector<ClusterShape> configs = {{1, 1}, {1, 2}, {1, 4}, {2, 4},
                                             {4, 4}, {8, 2}, {6, 4}};
  Table table("Normalized converged energy (divided by the most negative "
              "value in each row; 1.000 = best)");
  std::vector<std::string> header = {"n \\ #GPUs"};
  for (const ClusterShape& s : configs)
    header.push_back(std::to_string(s.total()));
  table.set_header(header);

  for (int n : scale.dims) {
    const std::size_t un = std::size_t(n);
    const TransverseFieldIsing tim =
        un <= 2048 ? TransverseFieldIsing::random_dense(un, 4000 + un)
                   : TransverseFieldIsing::random_sparse(un, 16, 4000 + un);
    Made proto = Made::with_default_hidden(un);
    proto.initialize(2);

    std::vector<Real> energies;
    for (const ClusterShape& shape : configs) {
      DistributedConfig cfg;
      cfg.shape = shape;
      cfg.iterations = scale.iterations;
      cfg.mini_batch_size = 4;  // Figure 4's setting
      cfg.eval_batch_per_rank = 64;
      cfg.seed = 6;
      const DistributedResult r = train_distributed(tim, proto, cfg);
      energies.push_back(r.converged_energy);
    }
    Real best = energies.front();
    for (Real e : energies) best = std::min(best, e);
    std::vector<std::string> row = {"n=" + std::to_string(n)};
    for (Real e : energies)
      row.push_back(format_fixed(e / best, 3));  // best -> 1.000
    table.add_row(row);
    std::cout << "done: n=" << n << " (best energy " << format_fixed(best, 2)
              << ")\n";
  }
  std::cout << "\n" << table.to_string() << "\n";
  std::cout << "Paper shape check: entries rise toward 1.000 with more "
               "devices; small n saturates early, large n keeps improving.\n";
  return 0;
}
