/// \file bench_table3_latent_size.cpp
/// \brief Reproduces Table 3: ablation over the latent size h for MADE and
/// RBM on Max-Cut (cut quality and training time).
///
/// Expected shape (paper): best cuts occur for h between 3(log n)^2 and n;
/// very small and very large latents underperform; training time is nearly
/// flat in h until the model saturates the device.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace vqmc;
using namespace vqmc::bench;

int main(int argc, char** argv) {
  OptionParser opts("bench_table3_latent_size",
                    "Table 3: latent-size ablation on Max-Cut");
  add_scale_options(opts);
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {50, 100};
    scale.seeds = 1;
  } else {
    scale.dims = {50, 100, 200, 500};
  }
  print_scale_banner("Table 3: latent-size ablation (ADAM, Max-Cut)", scale,
                     opts.get_flag("full"));

  // Latent sizes from the paper's sweep (n^2 only in --full: it is the
  // "push the device to its limits" column).
  auto latents_for = [&](std::size_t n) {
    const double log2n = std::log(double(n)) * std::log(double(n));
    std::vector<std::pair<std::string, std::size_t>> out = {
        {"(log n)^2", std::size_t(std::lround(log2n))},
        {"3(log n)^2", std::size_t(std::lround(3 * log2n))},
        {"5(log n)^2", std::size_t(std::lround(5 * log2n))},
        {"n", n},
        {"5n", 5 * n},
    };
    if (opts.get_flag("full")) out.push_back({"n^2", n * n});
    return out;
  };

  for (const std::string& model : {std::string("MADE"), std::string("RBM")}) {
    const std::string sampler = model == "MADE" ? "AUTO" : "MCMC";
    Table cuts("Model " + model + " — cut (left) and training seconds "
               "(right) per latent size");
    std::vector<std::string> header = {"n"};
    for (const auto& [label, _] : latents_for(100))
      header.push_back("cut h=" + label);
    for (const auto& [label, _] : latents_for(100))
      header.push_back("time h=" + label);
    cuts.set_header(header);

    for (int n : scale.dims) {
      const std::size_t un = std::size_t(n);
      const MaxCut h = MaxCut::paper_instance(un, 1000 + un);
      std::vector<std::string> row = {std::to_string(n)};
      std::vector<std::string> times;
      for (const auto& [label, latent] : latents_for(un)) {
        std::vector<Real> per_seed_cut, per_seed_time;
        for (int s = 0; s < scale.seeds; ++s) {
          const ComboResult r = run_combo(h, model, sampler, "ADAM", scale,
                                          std::uint64_t(s + 1), latent);
          per_seed_cut.push_back(r.mean_cut);
          per_seed_time.push_back(Real(r.train_seconds));
        }
        row.push_back(format_fixed(mean_std(per_seed_cut).first, 1));
        times.push_back(format_fixed(mean_std(per_seed_time).first, 2));
      }
      row.insert(row.end(), times.begin(), times.end());
      cuts.add_row(row);
      std::cout << "done: " << model << " n=" << n << "\n";
    }
    std::cout << "\n" << cuts.to_string() << "\n";
  }
  std::cout << "Paper shape check: optimum between 3(log n)^2 and n; "
               "time flat in h until compute saturates.\n";
  return 0;
}
