/// \file bench_table7_weak_scaling_raw.cpp
/// \brief Reproduces Table 7 (appendix): raw per-configuration running time
/// with the memory-saturating per-device batch.
///
/// Like Figure 3 this prints both the measured thread-rank busy times (at
/// reduced dimensions) and the modeled V100 times at the paper's nine
/// dimensions with its exact per-GPU sample counts (2^19 at n=20 down to
/// 2^2 at n=10000).
///
/// Expected shape (paper): within a column the times are constant across
/// configurations (weak scaling); across columns they grow with n.

#include <iostream>

#include "bench_common.hpp"
#include "nn/made.hpp"
#include "parallel/cost_model.hpp"
#include "parallel/distributed_trainer.hpp"

using namespace vqmc;
using namespace vqmc::bench;
using namespace vqmc::parallel;

int main(int argc, char** argv) {
  OptionParser opts("bench_table7_weak_scaling_raw",
                    "Table 7: raw weak-scaling times");
  add_scale_options(opts);
  bool ok = false;
  Scale scale = parse_scale(opts, argc, argv, ok);
  if (!ok) return 0;
  if (!opts.get_flag("full")) {
    scale.dims = {20, 50, 100};
    scale.iterations = 5;
  }
  print_scale_banner("Table 7: raw weak-scaling running times", scale,
                     opts.get_flag("full"));

  const std::vector<ClusterShape> configs = {{1, 1}, {1, 2}, {1, 4}, {2, 2},
                                             {2, 4}, {4, 2}, {4, 4}, {8, 2},
                                             {6, 4}};
  const DeviceCostModel device;

  // Measured runs use a reduced saturating batch so a 24-rank group fits on
  // one CPU: cap the per-rank batch at 64.
  std::cout << "MEASURED per-rank busy seconds (reduced dims, capped mbs):\n";
  Table measured("");
  std::vector<std::string> header = {"# GPUs"};
  std::vector<std::size_t> mbs_list;
  for (int n : scale.dims) {
    const std::size_t sat =
        std::min<std::size_t>(64, saturating_mini_batch(device, std::size_t(n)));
    mbs_list.push_back(sat);
    header.push_back("n=" + std::to_string(n) + " (mbs=" + std::to_string(sat) +
                     ")");
  }
  measured.set_header(header);
  for (const ClusterShape& shape : configs) {
    std::vector<std::string> row = {std::to_string(shape.nodes) + "x" +
                                    std::to_string(shape.gpus_per_node)};
    for (std::size_t d = 0; d < scale.dims.size(); ++d) {
      const std::size_t un = std::size_t(scale.dims[d]);
      const TransverseFieldIsing tim =
          un <= 2048 ? TransverseFieldIsing::random_dense(un, 3000 + un)
                     : TransverseFieldIsing::random_sparse(un, 16, 3000 + un);
      Made proto = Made::with_default_hidden(un);
      proto.initialize(1);
      DistributedConfig cfg;
      cfg.shape = shape;
      cfg.iterations = scale.iterations;
      cfg.mini_batch_size = mbs_list[d];
      cfg.eval_batch_per_rank = 1;
      cfg.seed = 9;
      const DistributedResult r = train_distributed(tim, proto, cfg, device);
      row.push_back(format_fixed(r.max_rank_busy_seconds, 3));
    }
    measured.add_row(row);
  }
  std::cout << measured.to_string() << "\n";

  // Modeled: the paper's nine dimensions and exact saturating batches,
  // 300 iterations on V100-class devices.
  std::cout << "MODELED V100-class seconds for 300 iterations at the paper's "
               "dimensions (saturating mbs from Table 7):\n";
  const std::vector<int> paper_dims = {20,  50,   100,  200,  500,
                                       1000, 2000, 5000, 10000};
  Table modeled("");
  std::vector<std::string> mh = {"# GPUs"};
  for (int n : paper_dims) mh.push_back("n=" + std::to_string(n));
  modeled.set_header(mh);
  for (const ClusterShape& shape : configs) {
    std::vector<std::string> row = {std::to_string(shape.nodes) + "x" +
                                    std::to_string(shape.gpus_per_node)};
    for (int n : paper_dims) {
      const std::size_t un = std::size_t(n);
      const std::size_t h = made_default_hidden(un);
      const std::size_t sat = saturating_mini_batch(device, un);
      const double t =
          300.0 * model_iteration_seconds(device, shape, un, h, sat, 65536);
      row.push_back(format_fixed(t, 1));
    }
    modeled.add_row(row);
  }
  std::cout << modeled.to_string() << "\n";
  std::cout << "Paper shape check: columns are ~constant down the table "
               "(weak scaling); paper's measured row 1x1 was 77.3s (n=20) to "
               "1058.9s (n=10000).\n";
  return 0;
}
