#pragma once

/// \file bench_common.hpp
/// \brief Shared experiment runner for the paper-reproduction benches.
///
/// Every bench binary regenerates one table or figure of Zhao et al.
/// (SC'21).  Defaults are scaled down so the whole harness completes on a
/// single CPU core (this substrate's "GPU" is a software device — see
/// DESIGN.md); pass `--full` for the paper-scale parameters.  Each binary
/// prints the scale factors it used so results are never mistaken for
/// paper-scale numbers.

#include <memory>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/factory.hpp"
#include "core/trainer.hpp"
#include "hamiltonian/maxcut.hpp"
#include "hamiltonian/transverse_field_ising.hpp"

namespace vqmc::bench {

/// Scale profile for one bench run.
struct Scale {
  std::vector<int> dims;       ///< problem sizes to sweep
  int iterations = 0;          ///< training iterations
  std::size_t batch_size = 0;  ///< training batch
  std::size_t eval_batch = 0;  ///< evaluation batch
  int seeds = 0;               ///< independent repetitions
};

/// The paper's settings (Section 5.1).
inline Scale paper_scale() {
  return {{20, 50, 100, 200, 500}, 300, 1024, 1024, 5};
}

/// One-CPU-core defaults: same protocol, smaller sweep.
inline Scale quick_scale() { return {{20, 50, 100}, 60, 128, 256, 2}; }

/// Standard bench option set; returns the scale selected by the flags.
Scale parse_scale(OptionParser& opts, int argc, const char* const* argv,
                  bool& ok);

/// Register the standard options on a parser (call before parse_scale).
void add_scale_options(OptionParser& opts);

/// Print the standard scale banner.
void print_scale_banner(const std::string& artifact, const Scale& scale,
                        bool full);

/// Result of one (model, sampler, optimizer) training run.
struct ComboResult {
  Real eval_energy = 0;     ///< mean local energy over the eval batch
  Real eval_std = 0;        ///< std of the stochastic objective
  Real mean_cut = 0;        ///< Max-Cut only: cut implied by eval energy
  Real best_cut = 0;        ///< Max-Cut only: best cut among eval samples
  double train_seconds = 0; ///< wall time of the training loop
  /// Where the training time went, summed over the history (Table 1 /
  /// DESIGN.md §5d attribution).
  PhaseBreakdown phase_totals;
  std::vector<IterationMetrics> history;
};

/// Sum the per-iteration phase breakdowns of a history.
PhaseBreakdown sum_phases(const std::vector<IterationMetrics>& history);

/// One-line phase attribution, e.g.
/// "sample 42% | local_energy 31% | gradient 18% | optimizer 9%" (phases
/// below 0.5% of the total are omitted; empty string when nothing was
/// attributed).
std::string format_phase_breakdown(const PhaseBreakdown& phases);

/// Build the (model, sampler, optimizer) combo from row labels and train it
/// on `hamiltonian`. `hidden == 0` selects the family default.
ComboResult run_combo(const Hamiltonian& hamiltonian,
                      const std::string& model_kind,
                      const std::string& sampler_kind,
                      const std::string& optimizer_kind, const Scale& scale,
                      std::uint64_t seed, std::size_t hidden = 0,
                      MetropolisConfig mcmc = {});

/// Mean / sample-std over per-seed values (std = 0 for a single seed).
std::pair<Real, Real> mean_std(const std::vector<Real>& values);

}  // namespace vqmc::bench
