#pragma once

/// \file cholesky.hpp
/// \brief Dense Cholesky factorization and SPD solves.
///
/// Used by the small dense variant of stochastic reconfiguration (when the
/// parameter count is modest it is cheaper to form `S + λI` once and solve
/// directly) and by tests as an independent check on the CG solver.

#include "tensor/matrix.hpp"
#include "tensor/vector.hpp"

namespace vqmc::linalg {

/// In-place lower Cholesky factorization A = L L^T.
/// Only the lower triangle of `a` is referenced; on return the lower triangle
/// holds L (the strict upper triangle is zeroed).
/// \returns false if the matrix is not positive definite.
bool cholesky_factor(Matrix& a);

/// Solve L L^T x = b given the factor from cholesky_factor. `x` may alias b.
void cholesky_solve(const Matrix& l, std::span<const Real> b,
                    std::span<Real> x);

/// Convenience: solve A x = b for SPD A (copies A, factors, solves).
/// \returns false if A is not positive definite (x untouched).
bool solve_spd(const Matrix& a, std::span<const Real> b, std::span<Real> x);

}  // namespace vqmc::linalg
