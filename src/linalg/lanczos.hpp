#pragma once

/// \file lanczos.hpp
/// \brief Lanczos iteration for the extremal eigenpair of a large symmetric
/// operator given only a matvec.
///
/// This is the exact-diagonalization workhorse: the 2^n x 2^n Hamiltonian is
/// never materialized — `SparseHamiltonian::apply` provides the matvec — so
/// ground-state energies up to n ≈ 20 spins are available as ground truth
/// for the VQMC convergence tests.

#include <cstdint>
#include <functional>

#include "tensor/vector.hpp"

namespace vqmc::linalg {

struct LanczosOptions {
  int max_iterations = 300;  ///< Krylov dimension cap
  Real tolerance = 1e-10;    ///< on the change in the Ritz value
  std::uint64_t seed = 7;    ///< for the random start vector
  bool full_reorthogonalize = true;
};

struct LanczosResult {
  Real eigenvalue = 0;
  Vector eigenvector;  ///< unit-norm Ritz vector
  int iterations = 0;
  bool converged = false;
};

/// Compute the *smallest* eigenpair of the symmetric operator `apply` acting
/// on R^dim.
LanczosResult lanczos_smallest(
    const std::function<void(std::span<const Real>, std::span<Real>)>& apply,
    std::size_t dim, const LanczosOptions& options = {});

}  // namespace vqmc::linalg
