#include "linalg/jacobi_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace vqmc::linalg {

namespace {

Real off_diagonal_norm(const Matrix& a) {
  Real acc = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j) acc += a(i, j) * a(i, j);
  return std::sqrt(2 * acc);
}

Real frobenius_norm(const Matrix& a) {
  Real acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a.data()[i] * a.data()[i];
  return std::sqrt(acc);
}

}  // namespace

EigenDecomposition jacobi_eigen(const Matrix& a, int max_sweeps,
                                Real tolerance) {
  VQMC_REQUIRE(a.rows() == a.cols(), "jacobi_eigen: matrix must be square");
  const std::size_t n = a.rows();

  Matrix work(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      work(i, j) = (a(i, j) + a(j, i)) / 2;

  Matrix vecs(n, n);
  for (std::size_t i = 0; i < n; ++i) vecs(i, i) = 1;

  EigenDecomposition out;
  const Real norm = frobenius_norm(work);
  const Real threshold = tolerance * (norm > 0 ? norm : Real(1));

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(work) <= threshold) {
      out.converged = true;
      break;
    }
    out.sweeps = sweep + 1;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const Real apq = work(p, q);
        if (std::fabs(apq) <= threshold / Real(n * n + 1)) continue;
        const Real app = work(p, p);
        const Real aqq = work(q, q);
        // Rotation angle from the standard Jacobi formulas.
        const Real tau = (aqq - app) / (2 * apq);
        const Real t = (tau >= 0 ? Real(1) : Real(-1)) /
                       (std::fabs(tau) + std::sqrt(1 + tau * tau));
        const Real c = 1 / std::sqrt(1 + t * t);
        const Real s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const Real akp = work(k, p);
          const Real akq = work(k, q);
          work(k, p) = c * akp - s * akq;
          work(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const Real apk = work(p, k);
          const Real aqk = work(q, k);
          work(p, k) = c * apk - s * aqk;
          work(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const Real vkp = vecs(k, p);
          const Real vkq = vecs(k, q);
          vecs(k, p) = c * vkp - s * vkq;
          vecs(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!out.converged && off_diagonal_norm(work) <= threshold)
    out.converged = true;

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return work(x, x) < work(y, y);
  });

  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = work(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i)
      out.eigenvectors(i, j) = vecs(i, order[j]);
  }
  return out;
}

}  // namespace vqmc::linalg
