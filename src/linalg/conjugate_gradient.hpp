#pragma once

/// \file conjugate_gradient.hpp
/// \brief Matrix-free conjugate gradient for symmetric positive-definite
/// systems.
///
/// Used by stochastic reconfiguration to solve `(S + λI) δ = g` where `S` is
/// the centered Fisher/quantum-geometric matrix.  The operator is supplied as
/// a callback so `S v` can be applied through the per-sample log-derivative
/// matrix in O(bs · d) without ever forming the d × d matrix.

#include <functional>
#include <span>

#include "tensor/vector.hpp"

namespace vqmc::linalg {

/// y = A x for the (implicitly represented) SPD operator A.
using LinearOperator =
    std::function<void(std::span<const Real> x, std::span<Real> y)>;

struct CgOptions {
  int max_iterations = 200;
  Real tolerance = 1e-10;  ///< on the relative residual ||r|| / ||b||
};

struct CgResult {
  int iterations = 0;
  Real relative_residual = 0;
  bool converged = false;
  /// True when the solve aborted on a numerical breakdown: a zero/negative
  /// curvature direction (`p·Ap <= 0`, the operator is not SPD along `p`) or
  /// a non-finite residual.  `x` holds the last iterate from *before* the
  /// breakdown step, so callers never receive a freshly poisoned solution.
  bool breakdown = false;
  /// Empty unless `breakdown`; a short human-readable cause.
  const char* breakdown_reason = "";
};

/// Solve A x = b with unpreconditioned CG; `x` holds the initial guess on
/// entry (commonly zero) and the solution on exit.
CgResult conjugate_gradient(const LinearOperator& apply,
                            std::span<const Real> b, std::span<Real> x,
                            const CgOptions& options = {});

}  // namespace vqmc::linalg
