#include "linalg/conjugate_gradient.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::linalg {

CgResult conjugate_gradient(const LinearOperator& apply,
                            std::span<const Real> b, std::span<Real> x,
                            const CgOptions& options) {
  VQMC_REQUIRE(b.size() == x.size(), "cg: size mismatch");
  const std::size_t n = b.size();
  Vector r(n), p(n), ap(n);

  // r = b - A x.
  apply(x, r.span());
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  for (std::size_t i = 0; i < n; ++i) p[i] = r[i];

  const Real b_norm = std::sqrt(dot(b, b));
  if (b_norm == Real(0)) {
    for (std::size_t i = 0; i < n; ++i) x[i] = 0;
    return {0, 0, true};
  }

  Real rr = dot(r.span(), r.span());
  CgResult result;
  if (!std::isfinite(b_norm) || !std::isfinite(rr)) {
    result.breakdown = true;
    result.breakdown_reason = "non-finite right-hand side or initial residual";
    return result;
  }
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.relative_residual = std::sqrt(rr) / b_norm;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
    apply(p.span(), ap.span());
    const Real p_ap = dot(p.span(), ap.span());
    if (!std::isfinite(p_ap)) {
      // Stop before alpha = rr / p_ap poisons x: SR would otherwise apply
      // the NaN iterate as a parameter update.
      result.breakdown = true;
      result.breakdown_reason = "non-finite curvature p.Ap";
      return result;
    }
    if (p_ap <= Real(0)) {
      // Operator is not positive-definite along p (can happen with a noisy
      // Fisher estimate); return the current best iterate.
      result.breakdown = true;
      result.breakdown_reason = "non-positive curvature direction (p.Ap <= 0)";
      return result;
    }
    const Real alpha = rr / p_ap;
    axpy(alpha, p.span(), x);
    axpy(-alpha, ap.span(), r.span());
    const Real rr_next = dot(r.span(), r.span());
    if (!std::isfinite(rr_next)) {
      // Undo the step that produced the non-finite residual so x stays the
      // last finite iterate.
      axpy(-alpha, p.span(), x);
      result.breakdown = true;
      result.breakdown_reason = "non-finite residual";
      return result;
    }
    const Real beta = rr_next / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_next;
    result.iterations = iter + 1;
  }
  result.relative_residual = std::sqrt(rr) / b_norm;
  result.converged = result.relative_residual <= options.tolerance;
  return result;
}

}  // namespace vqmc::linalg
