#pragma once

/// \file jacobi_eigen.hpp
/// \brief Cyclic Jacobi eigensolver for dense real-symmetric matrices.
///
/// Robust, dependency-free full diagonalization.  Used for exact ground
/// states of small Hamiltonians (validation), the Goemans–Williamson Gram
/// factorization, and tests of the Lanczos solver.  O(n^3) per sweep — fine
/// for the n ≤ 4096 matrices we feed it.

#include "tensor/matrix.hpp"
#include "tensor/vector.hpp"

namespace vqmc::linalg {

struct EigenDecomposition {
  Vector eigenvalues;  ///< ascending order
  Matrix eigenvectors; ///< column j is the eigenvector of eigenvalues[j]
  int sweeps = 0;
  bool converged = false;
};

/// Diagonalize symmetric `a` (symmetry is enforced by averaging off-diagonal
/// pairs). `max_sweeps` cyclic Jacobi sweeps with threshold `tolerance` on
/// the off-diagonal Frobenius norm relative to the matrix norm.
EigenDecomposition jacobi_eigen(const Matrix& a, int max_sweeps = 64,
                                Real tolerance = 1e-12);

}  // namespace vqmc::linalg
