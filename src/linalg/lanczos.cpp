#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::linalg {

LanczosResult lanczos_smallest(
    const std::function<void(std::span<const Real>, std::span<Real>)>& apply,
    std::size_t dim, const LanczosOptions& options) {
  VQMC_REQUIRE(dim > 0, "lanczos: dimension must be positive");
  const int m = std::min<int>(options.max_iterations, int(dim));

  // Krylov basis (kept for reorthogonalization and Ritz-vector assembly).
  std::vector<Vector> basis;
  basis.reserve(std::size_t(m));
  std::vector<Real> alpha, beta;  // tridiagonal coefficients

  rng::Xoshiro256 gen(options.seed);
  Vector v(dim);
  for (std::size_t i = 0; i < dim; ++i) v[i] = rng::normal(gen);
  scale(v.span(), 1 / v.norm());
  basis.push_back(v);

  Vector w(dim);
  LanczosResult result;
  Real previous_ritz = std::numeric_limits<Real>::max();

  for (int j = 0; j < m; ++j) {
    apply(basis[std::size_t(j)].span(), w.span());
    const Real a = dot(w.span(), basis[std::size_t(j)].span());
    alpha.push_back(a);
    axpy(-a, basis[std::size_t(j)].span(), w.span());
    if (j > 0) axpy(-beta[std::size_t(j - 1)], basis[std::size_t(j - 1)].span(), w.span());

    if (options.full_reorthogonalize) {
      // Classical Gram-Schmidt against all previous vectors (twice for
      // numerical safety). Costly but robust; dims here are <= 2^20.
      for (int pass = 0; pass < 2; ++pass) {
        for (const Vector& q : basis) {
          const Real proj = dot(w.span(), q.span());
          axpy(-proj, q.span(), w.span());
        }
      }
    }

    // Ritz value from the tridiagonal matrix built so far.
    const std::size_t k = alpha.size();
    Matrix tri(k, k);
    for (std::size_t i = 0; i < k; ++i) {
      tri(i, i) = alpha[i];
      if (i + 1 < k) {
        tri(i, i + 1) = beta[i];
        tri(i + 1, i) = beta[i];
      }
    }
    const EigenDecomposition eig = jacobi_eigen(tri);
    const Real ritz = eig.eigenvalues[0];
    result.iterations = j + 1;

    const Real b = w.norm();
    const bool breakdown = b <= Real(1e-14);
    if (std::fabs(ritz - previous_ritz) <= options.tolerance || breakdown ||
        j + 1 == m) {
      // Assemble the Ritz vector sum_i y_i q_i.
      result.eigenvalue = ritz;
      result.eigenvector = Vector(dim);
      for (std::size_t i = 0; i < k; ++i)
        axpy(eig.eigenvectors(i, 0), basis[i].span(),
             result.eigenvector.span());
      const Real norm = result.eigenvector.norm();
      if (norm > 0) scale(result.eigenvector.span(), 1 / norm);
      result.converged =
          std::fabs(ritz - previous_ritz) <= options.tolerance || breakdown;
      return result;
    }
    previous_ritz = ritz;

    beta.push_back(b);
    scale(w.span(), 1 / b);
    basis.push_back(w);
  }
  return result;  // unreachable: the loop always returns on j + 1 == m
}

}  // namespace vqmc::linalg
