#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vqmc::linalg {

bool cholesky_factor(Matrix& a) {
  VQMC_REQUIRE(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    Real diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= Real(0)) return false;
    const Real ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      Real v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }
  // Zero the strict upper triangle so the factor is unambiguous.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0;
  return true;
}

void cholesky_solve(const Matrix& l, std::span<const Real> b,
                    std::span<Real> x) {
  const std::size_t n = l.rows();
  VQMC_REQUIRE(b.size() == n && x.size() == n, "cholesky_solve: size mismatch");
  // Forward substitution L y = b (y stored in x).
  for (std::size_t i = 0; i < n; ++i) {
    Real v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * x[k];
    x[i] = v / l(i, i);
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    Real v = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l(k, ii) * x[k];
    x[ii] = v / l(ii, ii);
  }
}

bool solve_spd(const Matrix& a, std::span<const Real> b, std::span<Real> x) {
  Matrix factor = a;
  if (!cholesky_factor(factor)) return false;
  cholesky_solve(factor, b, x);
  return true;
}

}  // namespace vqmc::linalg
