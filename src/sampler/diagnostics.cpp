#include "sampler/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

std::vector<Real> autocorrelation(std::span<const Real> series,
                                  std::size_t max_lag) {
  const std::size_t n = series.size();
  if (n < 2) return {};
  const Real m = mean(series);
  Real var = 0;
  for (Real v : series) var += (v - m) * (v - m);
  if (var == 0) return std::vector<Real>(std::min(max_lag, n - 1) + 1, Real(0));

  const std::size_t lags = std::min(max_lag, n - 1);
  std::vector<Real> rho(lags + 1);
  for (std::size_t lag = 0; lag <= lags; ++lag) {
    Real acc = 0;
    for (std::size_t t = 0; t + lag < n; ++t)
      acc += (series[t] - m) * (series[t + lag] - m);
    rho[lag] = acc / var;
  }
  return rho;
}

Real integrated_autocorrelation_time(std::span<const Real> series,
                                     std::size_t max_lag) {
  const std::vector<Real> rho = autocorrelation(series, max_lag);
  if (rho.empty()) return 1;
  Real tau = 1;
  for (std::size_t lag = 1; lag < rho.size(); ++lag) {
    if (rho[lag] <= 0) break;
    tau += 2 * rho[lag];
  }
  return tau;
}

Real effective_sample_size(std::span<const Real> series) {
  if (series.empty()) return 0;
  return Real(series.size()) / integrated_autocorrelation_time(series);
}

std::vector<Real> empirical_distribution(const Matrix& samples) {
  const std::size_t n = samples.cols();
  VQMC_REQUIRE(n <= 20, "empirical_distribution limited to n <= 20");
  const std::size_t dim = std::size_t(1) << n;
  std::vector<Real> p(dim, Real(0));
  for (std::size_t k = 0; k < samples.rows(); ++k)
    p[encode_basis_state(samples.row(k))] += 1;
  const Real total = Real(samples.rows());
  for (Real& v : p) v /= total;
  return p;
}

Real total_variation_distance(std::span<const Real> p,
                              std::span<const Real> q) {
  VQMC_REQUIRE(p.size() == q.size(), "TV distance: support mismatch");
  Real acc = 0;
  for (std::size_t i = 0; i < p.size(); ++i) acc += std::fabs(p[i] - q[i]);
  return acc / 2;
}

Real gelman_rubin(const std::vector<std::vector<Real>>& chains) {
  VQMC_REQUIRE(chains.size() >= 2, "gelman_rubin: need at least 2 chains");
  const std::size_t n = chains.front().size();
  VQMC_REQUIRE(n >= 2, "gelman_rubin: chains must have length >= 2");
  for (const auto& chain : chains)
    VQMC_REQUIRE(chain.size() == n, "gelman_rubin: unequal chain lengths");

  const Real m = Real(chains.size());
  std::vector<Real> chain_mean(chains.size());
  Real grand_mean = 0;
  for (std::size_t c = 0; c < chains.size(); ++c) {
    chain_mean[c] = mean(chains[c]);
    grand_mean += chain_mean[c];
  }
  grand_mean /= m;

  // Between-chain variance (of chain means, times N).
  Real b = 0;
  for (Real mu : chain_mean) b += (mu - grand_mean) * (mu - grand_mean);
  b *= Real(n) / (m - 1);

  // Mean within-chain (sample) variance.
  Real w = 0;
  for (const auto& chain : chains) {
    Real var = 0;
    const Real mu = mean(chain);
    for (Real v : chain) var += (v - mu) * (v - mu);
    w += var / Real(n - 1);
  }
  w /= m;
  if (w == 0) return 1;  // degenerate constant chains: call them mixed

  const Real var_plus = (Real(n - 1) / Real(n)) * w + b / Real(n);
  return std::sqrt(var_plus / w);
}

Real mcmc_parallel_speedup(std::size_t k, std::size_t j, std::size_t n,
                           std::size_t num_units) {
  VQMC_REQUIRE(n >= 1 && j >= 1 && num_units >= 1,
               "mcmc_parallel_speedup: invalid arguments");
  const Real serial = Real(k) + Real(n * num_units - 1) * Real(j) + 1;
  const Real parallel = Real(k) + Real(n - 1) * Real(j) + 1;
  return serial / parallel;
}

Real auto_parallel_speedup(std::size_t num_units) {
  return Real(num_units);
}

}  // namespace vqmc
