#pragma once

/// \file autoregressive_sampler.hpp
/// \brief Exact ancestral sampling from an autoregressive model
/// (Algorithm 1 of the paper, batched).
///
/// Site i is drawn from p(x_i | x_{<i}), which MADE produces for every i in
/// one forward pass; sampling a batch therefore costs exactly n forward
/// passes regardless of batch size — the property that makes the sampling
/// step embarrassingly parallel across devices.

#include <cstdint>

#include "nn/wavefunction.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/sampler.hpp"

namespace vqmc {

/// AUTO sampler: exact i.i.d. draws from pi_theta.
class AutoregressiveSampler final : public Sampler {
 public:
  /// \param model the autoregressive wavefunction (not owned; must outlive
  ///        the sampler)
  /// \param seed RNG seed for this sampler's private stream
  AutoregressiveSampler(const AutoregressiveModel& model, std::uint64_t seed);

  void sample(Matrix& out) override;

  [[nodiscard]] const SamplerStatistics& statistics() const override {
    return stats_;
  }
  void reset_statistics() override { stats_ = {}; }
  [[nodiscard]] bool is_exact() const override { return true; }
  [[nodiscard]] std::string name() const override { return "AUTO"; }

  /// State layout: the 4 RNG words (AUTO draws are otherwise stateless).
  [[nodiscard]] std::vector<std::uint64_t> serialize_state() const override {
    const auto words = gen_.state();
    return {words.begin(), words.end()};
  }
  void restore_state(const std::vector<std::uint64_t>& state) override {
    VQMC_REQUIRE(state.size() == 4, "AUTO: sampler state size mismatch");
    gen_.set_state({state[0], state[1], state[2], state[3]});
  }

 private:
  const AutoregressiveModel& model_;
  rng::Xoshiro256 gen_;
  SamplerStatistics stats_;
  Matrix conditionals_;  ///< scratch, reused across calls
};

}  // namespace vqmc
