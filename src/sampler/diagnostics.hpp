#pragma once

/// \file diagnostics.hpp
/// \brief Sampling-quality diagnostics and the Eq. 14 efficiency model.
///
/// Used by tests (chain correctness vs exact distributions) and by the
/// `bench_eq14_mcmc_efficiency` harness that reproduces the paper's
/// analytical MCMC parallel-efficiency argument.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/real.hpp"

namespace vqmc {

/// Lag-k autocorrelations of a scalar chain, for k = 0..max_lag.
/// Returns an empty vector for chains shorter than 2 elements.
std::vector<Real> autocorrelation(std::span<const Real> series,
                                  std::size_t max_lag);

/// Integrated autocorrelation time tau = 1 + 2 sum_k rho_k, truncated at the
/// first non-positive autocorrelation (Geyer's initial positive sequence,
/// simplified).
Real integrated_autocorrelation_time(std::span<const Real> series,
                                     std::size_t max_lag = 1000);

/// Effective sample size N / tau.
Real effective_sample_size(std::span<const Real> series);

/// Empirical distribution of a batch of n-bit configurations over the 2^n
/// basis states (n <= 20).
std::vector<Real> empirical_distribution(const Matrix& samples);

/// Total-variation distance between two distributions on the same support.
Real total_variation_distance(std::span<const Real> p, std::span<const Real> q);

/// Gelman-Rubin potential scale reduction factor (R-hat) over M scalar
/// chains of equal length: sqrt(((N-1)/N * W + B/N) / W) with W the mean
/// within-chain variance and B/N the between-chain variance of the chain
/// means. Values near 1 indicate the chains have mixed; >> 1 flags the
/// burn-in failures the paper attributes to MCMC at large n.
Real gelman_rubin(const std::vector<std::vector<Real>>& chains);

/// The paper's Eq. 14: speedup of L computing units for MCMC sampling with
/// burn-in k, thinning j and n kept samples per unit —
/// (k + (nL - 1) j + 1) / (k + (n - 1) j + 1).  Slope w.r.t. L decays toward
/// 0 as k grows: burn-in is inherently sequential.
Real mcmc_parallel_speedup(std::size_t k, std::size_t j, std::size_t n,
                           std::size_t num_units);

/// AUTO sampling speedup under the same accounting: sampling is n forward
/// passes per unit regardless of batch, so the speedup is exactly L.
Real auto_parallel_speedup(std::size_t num_units);

}  // namespace vqmc
