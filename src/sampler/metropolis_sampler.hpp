#pragma once

/// \file metropolis_sampler.hpp
/// \brief Random-walk Metropolis–Hastings sampler over the Born distribution
/// pi_theta(x) ∝ exp(2 log psi_theta(x)).
///
/// The sampler reproduces the paper's MCMC configuration (Section 5.1):
/// single-site-flip proposals, c parallel chains (default 2), burn-in of
/// k steps per chain per sampling call (default k = 3n + 100) and optional
/// thinning.  Chains restart from random configurations on every `sample()`
/// call — as in the paper, where each of the 300 training iterations pays
/// the full burn-in — unless `persistent_chains` is set.
///
/// Table 4's ablations map to `burn_in` (Scheme 1: discard the first
/// {n, 10n}) and `thinning` (Scheme 2: keep every {2, 5, 10}-th sample).
///
/// Forward-pass accounting: one batched model evaluation per MH step across
/// all chains, so a call costs k + j * ceil(bs/c) forward passes (Figure 1).

#include <cstdint>
#include <vector>

#include "nn/wavefunction.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/sampler.hpp"

namespace vqmc {

/// Acceptance rule for single-site-flip chains.
enum class AcceptanceRule {
  /// Metropolis-Hastings: accept with min(1, pi'/pi). The paper's sampler.
  MetropolisHastings,
  /// Heat-bath / Gibbs / Barker: accept with pi'/(pi + pi'). Same
  /// stationary distribution, different mixing profile; included because
  /// Section 2.2 lists Gibbs sampling among the MCMC variants.
  HeatBath,
};

/// Proposal move set for the chains.
enum class ProposalKind {
  /// Flip one uniformly random site (the paper's random-walk move).
  SingleFlip,
  /// Swap the values of one random up-spin and one random down-spin.
  /// Conserves total magnetization, so the chain explores a fixed
  /// particle-number sector — the right move set for U(1)-symmetric models
  /// like the XXZ chain. Falls back to a single flip when the current
  /// configuration is fully polarized (the swap move would be stuck).
  PairExchange,
};

/// Configuration of the MH sampler; defaults follow Section 5.1.
struct MetropolisConfig {
  std::size_t num_chains = 2;
  /// Burn-in steps per chain per sample() call; the paper's heuristic is
  /// k = 3n + 100 (use `paper_burn_in`).
  std::size_t burn_in = 0;
  /// Keep every `thinning`-th post-burn-in state (1 = keep all).
  std::size_t thinning = 1;
  /// Keep chain state across sample() calls instead of re-burning.
  bool persistent_chains = false;
  /// Re-equilibration steps run at the start of every persistent-chain
  /// sample() call (after the chains are re-scored under the updated
  /// parameters). The default 0 preserves the historical behavior: chains
  /// resume exactly where they stopped, which is cheap but biased — the
  /// retained states are distributed according to the *previous* iteration's
  /// pi_theta, and small parameter updates make that bias small but
  /// systematic. A few tens of steps trade forward passes for a chain that
  /// has relaxed toward the updated distribution. Ignored when
  /// `persistent_chains` is false (full burn-in runs instead).
  std::size_t reburn_in = 0;
  AcceptanceRule rule = AcceptanceRule::MetropolisHastings;
  ProposalKind proposal = ProposalKind::SingleFlip;
  std::uint64_t seed = 0;
};

/// The paper's burn-in heuristic k = 3n + 100.
constexpr std::size_t paper_burn_in(std::size_t n) { return 3 * n + 100; }

/// Random-walk MH sampler (works with any WavefunctionModel, normalized or
/// not — only log-psi differences enter the acceptance ratio).
class MetropolisSampler final : public Sampler {
 public:
  MetropolisSampler(const WavefunctionModel& model, MetropolisConfig config);

  void sample(Matrix& out) override;

  [[nodiscard]] const SamplerStatistics& statistics() const override {
    return stats_;
  }
  void reset_statistics() override { stats_ = {}; }
  [[nodiscard]] bool is_exact() const override { return false; }
  [[nodiscard]] std::string name() const override {
    return config_.rule == AcceptanceRule::HeatBath ? "GIBBS" : "MCMC";
  }

  [[nodiscard]] const MetropolisConfig& config() const { return config_; }

  /// State layout: [4 RNG words, chains_initialized, then — only when the
  /// chains are live — the c x n chain states and c log-psi values
  /// (bit-cast)]. Persistent chains therefore survive checkpoint/restart
  /// exactly; note the restored log-psi values are only consistent if the
  /// model parameters are restored to the same point (the training
  /// checkpoint does both).
  [[nodiscard]] std::vector<std::uint64_t> serialize_state() const override;
  void restore_state(const std::vector<std::uint64_t>& state) override;

 private:
  /// (Re-)initialize chains uniformly at random.
  void restart_chains();

  /// One MH step across all chains (one batched forward pass).
  void step();

  const WavefunctionModel& model_;
  MetropolisConfig config_;
  rng::Xoshiro256 gen_;
  SamplerStatistics stats_;

  Matrix states_;             ///< c x n current chain states
  Vector state_log_psi_;      ///< log psi of each chain state
  Matrix proposals_;          ///< scratch c x n
  Vector proposal_log_psi_;   ///< scratch
  std::vector<std::size_t> flip_sites_;  ///< scratch
  bool chains_initialized_ = false;
};

}  // namespace vqmc
