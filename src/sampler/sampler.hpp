#pragma once

/// \file sampler.hpp
/// \brief Sampler interface: draw configurations from a model's Born
/// distribution pi_theta(x) = psi_theta(x)^2 / <psi, psi>.
///
/// The two implementations mirror Figure 1 of the paper:
///  * AutoregressiveSampler (AUTO) — exact sampling in n forward passes.
///  * MetropolisSampler (MCMC) — random-walk Metropolis–Hastings with
///    burn-in and thinning, k + j*bs/c forward passes.
///
/// Samplers count their forward passes so benches can report the
/// parallel-efficiency accounting of Eq. 14 directly.

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "nn/wavefunction.hpp"
#include "tensor/matrix.hpp"

namespace vqmc {

/// Cumulative work/quality counters exposed by every sampler.
struct SamplerStatistics {
  std::uint64_t forward_passes = 0;  ///< batched model evaluations
  std::uint64_t proposals = 0;       ///< MH proposals (0 for AUTO)
  std::uint64_t accepted = 0;        ///< accepted proposals (0 for AUTO)
  /// Model evaluations rejected/clamped because the model returned a
  /// non-finite value: NaN/inf log-psi proposals (MCMC, rejected outright)
  /// or NaN/inf conditionals (AUTO, clamped to an unbiased coin). A nonzero
  /// count means the model is numerically unhealthy; the trainer's health
  /// guards will usually trip on the same batch.
  std::uint64_t nonfinite_rejections = 0;

  [[nodiscard]] double acceptance_rate() const {
    return proposals == 0 ? 0.0 : double(accepted) / double(proposals);
  }
};

/// Draws batches of spin configurations for the VQMC estimators.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Fill `out` (batch x n, entries in {0,1}) with (approximate or exact)
  /// samples from the current model distribution.
  virtual void sample(Matrix& out) = 0;

  /// sample() with a caller-owned model workspace: samplers that evaluate
  /// the model (or run the batched conditional engine) reuse `ws` for all
  /// scratch, so steady-state batches allocate nothing once shapes
  /// stabilize.  `ws` may be null or of a foreign concrete type — samplers
  /// fall back to internal scratch; results are identical either way.
  virtual void sample_ws(Matrix& out, WavefunctionModel::Workspace* ws) {
    (void)ws;
    sample(out);
  }

  [[nodiscard]] virtual const SamplerStatistics& statistics() const = 0;
  virtual void reset_statistics() = 0;

  /// True if samples are exact draws from pi_theta (AUTO); false when they
  /// are asymptotic (MCMC).
  [[nodiscard]] virtual bool is_exact() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Full mutable state as a flat word vector (checkpoint/restart): the RNG
  /// stream position plus any retained chain state. Restoring it into a
  /// same-kind sampler over the same model resumes the sample stream exactly
  /// — the property the kill-and-resume determinism tests assert. The base
  /// default covers stateless samplers (empty state).
  [[nodiscard]] virtual std::vector<std::uint64_t> serialize_state() const {
    return {};
  }

  /// Inverse of serialize_state(). Throws vqmc::Error on a state vector that
  /// cannot belong to this sampler kind.
  virtual void restore_state(const std::vector<std::uint64_t>& state) {
    VQMC_REQUIRE(state.empty(), name() + ": sampler state size mismatch");
  }
};

}  // namespace vqmc
