#include "sampler/conditional_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

std::uint64_t sample_conditionals_batched(const Made& model,
                                          const Made::MaskedWeights& mw,
                                          Matrix& out,
                                          std::span<const DrawSlice> slices,
                                          Made::Workspace& ws) {
  const std::size_t n = model.num_spins();
  const std::size_t h = model.hidden_size();
  VQMC_REQUIRE(out.cols() == n, "sampler: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "sampler: batch must be non-empty");
  for (const DrawSlice& s : slices) {
    VQMC_REQUIRE(s.gen != nullptr, "sampler: slice without generator");
    VQMC_REQUIRE(s.row_count > 0 && s.row_begin + s.row_count <= bs,
                 "sampler: slice outside batch");
  }

  const ColPanelGeometry& w1_cols = model.w1_col_panels();
  const Real* w1_col_values = mw.w1_col_values.data();
  const RowExtentsView w2_ext = model.w2_extents().view();
  const std::span<const Real> b1 = model.bias1();
  const std::span<const Real> b2 = model.bias2();

  // A1 starts at the bias: the initial configuration is all-zeros, which
  // contributes nothing through W1m.  The block is kept at an aligned
  // pad-to-8 stride; the pad columns are never read (every kernel walks
  // explicit extents inside [0, h)).
  const std::size_t hp = (h + 7) & ~std::size_t(7);
  ensure_shape(ws.a1_pad, bs, hp);
  Real* a_base = ws.a1_pad.data();
  for (std::size_t k = 0; k < bs; ++k) {
    Real* row = a_base + k * hp;
    for (std::size_t l = 0; l < h; ++l) row[l] = b1[l];
  }
  if (ws.logits.size() != bs) ws.logits = Vector(bs);
  Real* logits = ws.logits.data();
  if (ws.flips.capacity() < bs) ws.flips.reserve(bs);
  out.fill(0);

  // First site after the last non-empty W1 column: from there on no draw
  // can change A1, so the remaining logits are one blocked kernel pass
  // instead of a per-site sweep that re-reads the whole activation block
  // for every site.  MADE's cycling degrees leave every column j with no
  // hidden degree >= j+1 empty — for h <= n-1 that is every site >= h, the
  // large majority at paper scale (n = 1000 gives h = 239).
  std::size_t frozen = n;
  while (frozen > 0 && w1_cols.col(frozen - 1).empty()) --frozen;

  std::uint64_t nonfinite = 0;

  // Draws stay site-major / row-minor within each slice's private stream:
  // each row consumes exactly one uniform per site — including clamped
  // non-finite conditionals — so healthy streams are bit-identical to the
  // unguarded history and slices never perturb one another.
  const auto draw_site = [&](std::size_t i, const Real* site_logits,
                             bool record_flips) {
    const Real bias = b2[i];
    for (const DrawSlice& s : slices) {
      rng::Xoshiro256& gen = *s.gen;
      const std::size_t end = s.row_begin + s.row_count;
      for (std::size_t k = s.row_begin; k < end; ++k) {
        Real p1 = sigmoid(bias + site_logits[k]);
        if (!std::isfinite(p1)) {
          // Unhealthy model (NaN/inf parameters). Fall back to an unbiased
          // coin instead of feeding NaN into an ill-defined comparison that
          // would silently bias this and every later site.
          ++nonfinite;
          p1 = Real(0.5);
        }
        if (rng::bernoulli(gen, p1)) {
          out(k, i) = 1;
          if (record_flips) ws.flips.push_back(static_cast<std::uint32_t>(k));
        }
      }
    }
  };

  // When every live W1 column is the contiguous suffix [i, h) — MADE's
  // cycling degrees whenever h <= n-1 — the rank-1 pass can be blocked:
  // inside a 64-site block only the near segment [i, block_end) is applied
  // immediately (it feeds the very next logits), while the far segment
  // [block_end, h) is recorded as one flip bit per row and applied at
  // block end row-by-row, so each activation row is updated once per block
  // while cache-resident instead of once per site from scattered lines.
  // Within every element the adds still land in ascending site order with
  // a unit fma multiplier, keeping the stream bitwise identical to the
  // naive per-site walk.
  bool suffix_cols = true;
  for (std::size_t i = 0; i < frozen; ++i) {
    const std::span<const std::uint32_t> rows = w1_cols.col(i);
    if (rows.size() != h - i || rows.empty() || rows.front() != i) {
      suffix_cols = false;
      break;
    }
  }

  if (suffix_cols) {
    constexpr std::size_t kSiteBlock = 64;
    if (ws.flip_masks.size() != bs) ws.flip_masks.assign(bs, 0);
    if (ws.col_ptrs.size() != kSiteBlock) ws.col_ptrs.resize(kSiteBlock);
    for (std::size_t b0 = 0; b0 < frozen; b0 += kSiteBlock) {
      const std::size_t b1 = std::min(b0 + kSiteBlock, frozen);
      const std::size_t far_len = h > b1 ? h - b1 : 0;
      std::fill(ws.flip_masks.begin(), ws.flip_masks.end(), 0);
      for (std::size_t i = b0; i < b1; ++i) {
        // One batched kernel call per site: logits[k] is bitwise identical
        // to the single-row relu_dot_panels the per-row loop used to make,
        // so the historical draw streams are preserved exactly.
        relu_dot_panels_batch(w2_ext.row(i), a_base, hp, bs, mw.w2p.row(i),
                              logits);
        ws.flips.clear();
        draw_site(i, logits, /*record_flips=*/true);

        const Real* col = w1_col_values + w1_cols.offsets[i];
        const std::size_t near_len = std::min(b1, h) - i;
        rank1_add_rows(a_base, hp, ws.flips, i, col, near_len);
        if (far_len > 0) {
          ws.col_ptrs[i - b0] = col + near_len;
          const std::uint64_t bit = std::uint64_t(1) << (i - b0);
          for (const std::uint32_t k : ws.flips) ws.flip_masks[k] |= bit;
        }
      }
      if (far_len > 0) {
        for (std::size_t k = 0; k < bs; ++k) {
          if (ws.flip_masks[k] == 0) continue;
          accumulate_masked_cols(a_base + k * hp + b1, ws.flip_masks[k],
                                 ws.col_ptrs.data(), far_len);
        }
      }
    }
  } else {
    for (std::size_t i = 0; i < frozen; ++i) {
      relu_dot_panels_batch(w2_ext.row(i), a_base, hp, bs, mw.w2p.row(i),
                            logits);
      ws.flips.clear();
      draw_site(i, logits, /*record_flips=*/true);

      // Gathered rank-1 pass: input i flipped 0 -> 1 adds column i of W1m
      // to the flipped rows only.  The column panel lists exactly the
      // hidden rows whose prefix extent covers i; each row is touched
      // once, so this is bitwise identical to updating inside the draw
      // loop.
      const std::span<const std::uint32_t> upd_rows = w1_cols.col(i);
      const Real* upd_vals = w1_col_values + w1_cols.offsets[i];
      for (const std::uint32_t k : ws.flips) {
        Real* a_row = a_base + std::size_t(k) * hp;
        for (std::size_t t = 0; t < upd_rows.size(); ++t)
          a_row[upd_rows[t]] += upd_vals[t];
      }
    }
  }

  if (frozen < n) {
    // Frozen tail: A1 is final, so every remaining site's logits come from
    // one blocked pass (bitwise identical per cell to the per-site kernel)
    // and the draw loop just walks the precomputed rows.  No rank-1 update:
    // these columns are empty by construction.  Rectify once into a
    // pad-to-8 aligned-stride copy so the ~(n - h) remaining sites stream
    // plain dots from cache-line-aligned rows instead of re-applying relu
    // under every fma over split loads — same accumulation structure, same
    // bits, roughly half the load-port pressure.
    const std::size_t hp = (h + 7) & ~std::size_t(7);
    ensure_shape(ws.h1_pad, bs, hp);
    Real* hp_base = ws.h1_pad.data();
    for (std::size_t k = 0; k < bs; ++k) {
      const Real* src = a_base + k * hp;
      Real* dst = hp_base + k * hp;
      for (std::size_t l = 0; l < h; ++l)
        dst[l] = src[l] > 0 ? src[l] : Real(0);
    }
    ensure_shape(ws.tail_logits, n - frozen, bs);
    dot_panels_block(w2_ext, mw.w2p, frozen, hp_base, hp, bs,
                     ws.tail_logits);
    for (std::size_t i = frozen; i < n; ++i)
      draw_site(i, ws.tail_logits.row(i - frozen).data(),
                /*record_flips=*/false);
  }
  return nonfinite;
}

}  // namespace vqmc
