#include "sampler/fast_made_sampler.hpp"

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

FastMadeSampler::FastMadeSampler(const Made& model, std::uint64_t seed)
    : model_(model), gen_(seed) {}

void FastMadeSampler::sample(Matrix& out) {
  TELEMETRY_SPAN("sample.auto_fast");
  const std::size_t n = model_.num_spins();
  const std::size_t h = model_.hidden_size();
  VQMC_REQUIRE(out.cols() == n, "AUTO-fast: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "AUTO-fast: batch must be non-empty");

  // Fetch the packed masked weights from the model's version-counter cache
  // (rebuilt only when the parameters actually moved since the last call).
  const std::shared_ptr<const Made::MaskedWeights> mw = model_.masked();
  const ColPanelGeometry& w1_cols = model_.w1_col_panels();
  const Real* w1_col_values = mw->w1_col_values.data();
  const RowExtentsView w2_ext = model_.w2_extents().view();
  const std::span<const Real> b1 = model_.bias1();
  const std::span<const Real> b2 = model_.bias2();

  // A1 starts at the bias: the initial configuration is all-zeros, which
  // contributes nothing through W1m.
  if (a1_.rows() != bs || a1_.cols() != h) a1_ = Matrix(bs, h);
  for (std::size_t k = 0; k < bs; ++k) {
    Real* row = a1_.row(k).data();
    for (std::size_t l = 0; l < h; ++l) row[l] = b1[l];
  }
  out.fill(0);

  for (std::size_t i = 0; i < n; ++i) {
    ++stats_.forward_passes;  // comparable accounting with Algorithm 1
    const Real* w2_panel = mw->w2p.row(i);
    const std::span<const ColSpan> w2_spans = w2_ext.row(i);
    const std::span<const std::uint32_t> upd_rows = w1_cols.col(i);
    const Real* upd_vals = w1_col_values + w1_cols.offsets[i];
    const Real bias = b2[i];
    // Sequential over the batch: each row consumes exactly one Bernoulli
    // draw per site, in the same (site-major, row-minor) order as the
    // baseline AutoregressiveSampler — which makes the two samplers
    // bit-identical under the same seed.
    for (std::size_t k = 0; k < bs; ++k) {
      const Real* a_row = a1_.row(k).data();
      // Only the in-extent hidden units feed output i; relu_dot_panels is
      // the shared serve/sampler logit primitive (ModelSnapshot::sample
      // calls the same one, keeping the two paths mutually bit-identical).
      const Real logit = bias + relu_dot_panels(w2_spans, a_row, w2_panel);
      const Real p1 = sigmoid(logit);
      if (rng::bernoulli(gen_, p1)) {
        out(k, i) = 1;
        // Rank-1 update: input i flipped 0 -> 1 adds column i of W1m.
        // The column panel lists exactly the hidden rows whose prefix
        // extent covers i; each row is touched once, so this is bitwise
        // identical to the strided masked column walk it replaces.
        Real* a_mut = a1_.row(k).data();
        for (std::size_t t = 0; t < upd_rows.size(); ++t)
          a_mut[upd_rows[t]] += upd_vals[t];
      }
    }
  }

  if (telemetry::enabled()) {
    telemetry::MetricsRegistry& registry = telemetry::metrics();
    registry.counter("sampler.auto_fast.batches").add();
    registry.counter("sampler.auto_fast.forward_passes").add(n);
    registry.counter("sampler.auto_fast.samples").add(bs);
  }
}

}  // namespace vqmc
