#include "sampler/fast_made_sampler.hpp"

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

FastMadeSampler::FastMadeSampler(const Made& model, std::uint64_t seed)
    : model_(model), gen_(seed) {}

void FastMadeSampler::sample(Matrix& out) {
  TELEMETRY_SPAN("sample.auto_fast");
  const std::size_t n = model_.num_spins();
  const std::size_t h = model_.hidden_size();
  VQMC_REQUIRE(out.cols() == n, "AUTO-fast: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "AUTO-fast: batch must be non-empty");

  // Materialize the masked weights once per batch (the parameters may have
  // moved since the previous call).
  model_.masked_weights_public(w1m_, w2m_);
  const std::span<const Real> b1 = model_.bias1();
  const std::span<const Real> b2 = model_.bias2();

  // A1 starts at the bias: the initial configuration is all-zeros, which
  // contributes nothing through W1m.
  if (a1_.rows() != bs || a1_.cols() != h) a1_ = Matrix(bs, h);
  for (std::size_t k = 0; k < bs; ++k) {
    Real* row = a1_.row(k).data();
    for (std::size_t l = 0; l < h; ++l) row[l] = b1[l];
  }
  out.fill(0);

  for (std::size_t i = 0; i < n; ++i) {
    ++stats_.forward_passes;  // comparable accounting with Algorithm 1
    const Real* w2_row = w2m_.row(i).data();
    const Real bias = b2[i];
    // Sequential over the batch: each row consumes exactly one Bernoulli
    // draw per site, in the same (site-major, row-minor) order as the
    // baseline AutoregressiveSampler — which makes the two samplers
    // bit-identical under the same seed.
    for (std::size_t k = 0; k < bs; ++k) {
      const Real* a_row = a1_.row(k).data();
      Real logit = bias;
      for (std::size_t l = 0; l < h; ++l) {
        const Real hl = a_row[l] > 0 ? a_row[l] : 0;  // ReLU on the fly
        logit += w2_row[l] * hl;
      }
      const Real p1 = sigmoid(logit);
      if (rng::bernoulli(gen_, p1)) {
        out(k, i) = 1;
        // Rank-1 update: input i flipped 0 -> 1 adds column i of W1m.
        Real* a_mut = a1_.row(k).data();
        const Real* w1_base = w1m_.data();
        for (std::size_t l = 0; l < h; ++l) a_mut[l] += w1_base[l * n + i];
      }
    }
  }

  if (telemetry::enabled()) {
    telemetry::MetricsRegistry& registry = telemetry::metrics();
    registry.counter("sampler.auto_fast.batches").add();
    registry.counter("sampler.auto_fast.forward_passes").add(n);
    registry.counter("sampler.auto_fast.samples").add(bs);
  }
}

}  // namespace vqmc
