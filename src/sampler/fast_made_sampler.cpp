#include "sampler/fast_made_sampler.hpp"

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

FastMadeSampler::FastMadeSampler(const Made& model, std::uint64_t seed)
    : model_(model), gen_(seed) {}

void FastMadeSampler::sample(Matrix& out) {
  TELEMETRY_SPAN("sample.auto_fast");
  const std::size_t n = model_.num_spins();
  const std::size_t h = model_.hidden_size();
  VQMC_REQUIRE(out.cols() == n, "AUTO-fast: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "AUTO-fast: batch must be non-empty");

  // Fetch the packed masked weights from the model's version-counter cache
  // (rebuilt only when the parameters actually moved since the last call).
  const std::shared_ptr<const Made::MaskedWeights> mw = model_.masked();
  const RowExtents& w1_ext = model_.w1_extents();
  const RowExtentsView w2_ext = model_.w2_extents().view();
  const std::span<const Real> b1 = model_.bias1();
  const std::span<const Real> b2 = model_.bias2();

  // A1 starts at the bias: the initial configuration is all-zeros, which
  // contributes nothing through W1m.
  if (a1_.rows() != bs || a1_.cols() != h) a1_ = Matrix(bs, h);
  for (std::size_t k = 0; k < bs; ++k) {
    Real* row = a1_.row(k).data();
    for (std::size_t l = 0; l < h; ++l) row[l] = b1[l];
  }
  out.fill(0);

  for (std::size_t i = 0; i < n; ++i) {
    ++stats_.forward_passes;  // comparable accounting with Algorithm 1
    const Real* w2_row = mw->w2m.row(i).data();
    const std::span<const ColSpan> w2_spans = w2_ext.row(i);
    const Real bias = b2[i];
    // Sequential over the batch: each row consumes exactly one Bernoulli
    // draw per site, in the same (site-major, row-minor) order as the
    // baseline AutoregressiveSampler — which makes the two samplers
    // bit-identical under the same seed.
    for (std::size_t k = 0; k < bs; ++k) {
      const Real* a_row = a1_.row(k).data();
      Real logit = bias;
      // Only the in-extent hidden units feed output i; the rest are
      // structural zeros in W2m and contribute nothing.
      for (const ColSpan s : w2_spans) {
        for (std::size_t l = s.begin; l < s.end; ++l) {
          const Real hl = a_row[l] > 0 ? a_row[l] : 0;  // ReLU on the fly
          logit += w2_row[l] * hl;
        }
      }
      const Real p1 = sigmoid(logit);
      if (rng::bernoulli(gen_, p1)) {
        out(k, i) = 1;
        // Rank-1 update: input i flipped 0 -> 1 adds column i of W1m.
        // Hidden unit l sees input i only when i < m_l, i.e. i lies inside
        // the prefix extent of W1 row l; entries beyond it are zeros.
        Real* a_mut = a1_.row(k).data();
        const Real* w1_base = mw->w1m.data();
        for (std::size_t l = 0; l < h; ++l) {
          if (i < w1_ext.row_end(l)) a_mut[l] += w1_base[l * n + i];
        }
      }
    }
  }

  if (telemetry::enabled()) {
    telemetry::MetricsRegistry& registry = telemetry::metrics();
    registry.counter("sampler.auto_fast.batches").add();
    registry.counter("sampler.auto_fast.forward_passes").add(n);
    registry.counter("sampler.auto_fast.samples").add(bs);
  }
}

}  // namespace vqmc
