#include "sampler/fast_made_sampler.hpp"

#include "common/error.hpp"
#include "sampler/conditional_engine.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"

namespace vqmc {

FastMadeSampler::FastMadeSampler(const Made& model, std::uint64_t seed)
    : model_(model), gen_(seed) {}

void FastMadeSampler::sample(Matrix& out) { sample_ws(out, nullptr); }

void FastMadeSampler::sample_ws(Matrix& out,
                                WavefunctionModel::Workspace* ws) {
  TELEMETRY_SPAN("sample.auto_fast");
  const std::size_t n = model_.num_spins();
  VQMC_REQUIRE(out.cols() == n, "AUTO-fast: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "AUTO-fast: batch must be non-empty");

  // Fetch the packed masked weights from the model's version-counter cache
  // (rebuilt only when the parameters actually moved since the last call).
  const std::shared_ptr<const Made::MaskedWeights> mw = model_.masked();

  // Run the shared batched conditional engine in the caller's workspace when
  // one of the right concrete type is supplied, else in internal scratch.
  Made::Workspace* engine_ws = dynamic_cast<Made::Workspace*>(ws);
  if (engine_ws == nullptr) engine_ws = &scratch_;
  const DrawSlice slice{0, bs, &gen_};
  const std::uint64_t nonfinite =
      sample_conditionals_batched(model_, *mw, out, {&slice, 1}, *engine_ws);

  stats_.forward_passes += n;  // comparable accounting with Algorithm 1
  stats_.nonfinite_rejections += nonfinite;

  if (telemetry::enabled()) {
    telemetry::MetricsRegistry& registry = telemetry::metrics();
    registry.counter("sampler.auto_fast.batches").add();
    registry.counter("sampler.auto_fast.forward_passes").add(n);
    registry.counter("sampler.auto_fast.samples").add(bs);
    // Created unconditionally (add(0) registers the instrument): the
    // cross-rank metrics merge requires every rank to expose the identical
    // instrument set whether or not the guard ever fired.
    registry.counter("sampler.nonfinite_rejections").add(nonfinite);
  }
}

}  // namespace vqmc
