#pragma once

/// \file conditional_engine.hpp
/// \brief Batched incremental conditional engine for exact MADE sampling.
///
/// This is the one implementation of the incremental ancestral draw loop
/// (DESIGN.md §5k) shared by FastMadeSampler (training) and
/// serve::ModelSnapshot (inference).  For each site i it evaluates the
/// logits of the *whole* micro-batch in a single relu_dot_panels_batch
/// kernel call, takes the Bernoulli draws in site-major / row-minor order
/// within each slice's private RNG stream, then applies the rank-1
/// A1 += column_i(W1m) updates as a gathered pass over exactly the rows
/// that drew 1.  Because the batched kernel is per-row bitwise identical
/// to the single-row relu_dot_panels and the draw order is unchanged, the
/// engine reproduces the historical FastMadeSampler / ModelSnapshot draw
/// streams bit for bit.
///
/// Non-finite conditionals (NaN/inf sigmoid output from an unhealthy
/// parameter vector) are clamped to an unbiased coin p = 0.5 and counted,
/// mirroring AutoregressiveSampler's guard: the uniform is consumed either
/// way, so a healthy run's RNG stream is bit-identical whether or not the
/// guard ever fires.
///
/// All scratch lives in the caller-owned Made::Workspace (`a1` is the
/// running pre-activation block, `logits` the per-site batched logits,
/// `flips` the gathered flip list), so steady-state calls perform zero
/// allocations once shapes stabilize.

#include <cstdint>
#include <span>

#include "nn/made.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/matrix.hpp"

namespace vqmc {

/// One contiguous run of output rows drawing from a private RNG stream.
/// Rows within a slice consume draws in site-major / row-minor order;
/// distinct slices never touch each other's generator, so a slice's draws
/// do not depend on which other slices share the batch (the serve
/// coalescing-parity contract).  serve::ModelSnapshot::SampleSlice is an
/// alias of this type.
struct DrawSlice {
  std::size_t row_begin = 0;       ///< first output row
  std::size_t row_count = 0;       ///< number of rows
  rng::Xoshiro256* gen = nullptr;  ///< RNG stream for these rows (not owned)
};

/// Draw exact samples from `model`'s autoregressive distribution into
/// `out` (rows(out) x num_spins, filled with {0,1}).  `mw` must be the
/// packed masked weights for the model's current parameters (callers hold
/// the Made::masked() snapshot, or a serve snapshot's pinned copy).  Every
/// slice must reference a valid generator and lie within the batch; slices
/// need not cover every row (uncovered rows stay all-zero and consume no
/// randomness).  Returns the number of non-finite conditionals clamped to
/// the unbiased coin.
std::uint64_t sample_conditionals_batched(const Made& model,
                                          const Made::MaskedWeights& mw,
                                          Matrix& out,
                                          std::span<const DrawSlice> slices,
                                          Made::Workspace& ws);

}  // namespace vqmc
