#include "sampler/autoregressive_sampler.hpp"

#include "common/error.hpp"
#include "rng/distributions.hpp"

namespace vqmc {

AutoregressiveSampler::AutoregressiveSampler(const AutoregressiveModel& model,
                                             std::uint64_t seed)
    : model_(model), gen_(seed) {}

void AutoregressiveSampler::sample(Matrix& out) {
  const std::size_t n = model_.num_spins();
  VQMC_REQUIRE(out.cols() == n, "AUTO: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "AUTO: batch must be non-empty");

  out.fill(0);
  // Ancestral sampling: after pass i the first i+1 sites of every row are
  // final. Conditionals for site i only read sites < i (masked), so the
  // not-yet-sampled zero entries are never consumed.
  for (std::size_t i = 0; i < n; ++i) {
    model_.conditionals(out, conditionals_);
    ++stats_.forward_passes;
    for (std::size_t k = 0; k < bs; ++k) {
      const Real p1 = conditionals_(k, i);
      out(k, i) = rng::bernoulli(gen_, p1) ? Real(1) : Real(0);
    }
  }
}

}  // namespace vqmc
