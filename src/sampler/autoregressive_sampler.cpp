#include "sampler/autoregressive_sampler.hpp"

#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"

namespace vqmc {

AutoregressiveSampler::AutoregressiveSampler(const AutoregressiveModel& model,
                                             std::uint64_t seed)
    : model_(model), gen_(seed) {}

void AutoregressiveSampler::sample(Matrix& out) {
  TELEMETRY_SPAN("sample.auto");
  const std::uint64_t nonfinite_before = stats_.nonfinite_rejections;
  const std::size_t n = model_.num_spins();
  VQMC_REQUIRE(out.cols() == n, "AUTO: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "AUTO: batch must be non-empty");

  out.fill(0);
  // Ancestral sampling: after pass i the first i+1 sites of every row are
  // final. Conditionals for site i only read sites < i (masked), so the
  // not-yet-sampled zero entries are never consumed.
  for (std::size_t i = 0; i < n; ++i) {
    model_.conditionals(out, conditionals_);
    ++stats_.forward_passes;
    for (std::size_t k = 0; k < bs; ++k) {
      Real p1 = conditionals_(k, i);
      if (!std::isfinite(p1)) {
        // A NaN/inf conditional would turn the draw into an ill-defined
        // comparison and silently bias every later site. Clamp to an
        // unbiased coin (one uniform is consumed either way, so healthy
        // runs keep a bit-identical RNG stream) and count the event so the
        // trainer's health guards can attribute the sick batch.
        ++stats_.nonfinite_rejections;
        p1 = Real(0.5);
      }
      out(k, i) = rng::bernoulli(gen_, p1) ? Real(1) : Real(0);
    }
  }

  // Unconditional instrument creation keeps every rank's instrument set
  // identical, which the cross-rank metrics merge requires.
  if (telemetry::enabled()) {
    telemetry::MetricsRegistry& registry = telemetry::metrics();
    registry.counter("sampler.auto.batches").add();
    registry.counter("sampler.auto.forward_passes").add(n);
    registry.counter("sampler.auto.samples").add(bs);
    registry.counter("sampler.nonfinite_rejections")
        .add(stats_.nonfinite_rejections - nonfinite_before);
  }
}

}  // namespace vqmc
