#include "sampler/metropolis_sampler.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "rng/distributions.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

MetropolisSampler::MetropolisSampler(const WavefunctionModel& model,
                                     MetropolisConfig config)
    : model_(model), config_(config), gen_(config.seed ^ 0x4d434d43ULL) {
  VQMC_REQUIRE(config_.num_chains >= 1, "MCMC: need at least one chain");
  VQMC_REQUIRE(config_.thinning >= 1, "MCMC: thinning must be >= 1");
  const std::size_t n = model_.num_spins();
  const std::size_t c = config_.num_chains;
  states_ = Matrix(c, n);
  state_log_psi_ = Vector(c);
  proposals_ = Matrix(c, n);
  proposal_log_psi_ = Vector(c);
  flip_sites_.resize(c);
}

std::vector<std::uint64_t> MetropolisSampler::serialize_state() const {
  static_assert(sizeof(Real) == sizeof(std::uint64_t),
                "chain-state serialization assumes 64-bit Real");
  const auto words = gen_.state();
  std::vector<std::uint64_t> state(words.begin(), words.end());
  state.push_back(chains_initialized_ ? 1 : 0);
  if (chains_initialized_) {
    const std::size_t c = config_.num_chains;
    const std::size_t n = model_.num_spins();
    state.reserve(state.size() + c * n + c);
    for (std::size_t chain = 0; chain < c; ++chain)
      for (std::size_t j = 0; j < n; ++j)
        state.push_back(std::bit_cast<std::uint64_t>(states_(chain, j)));
    for (std::size_t chain = 0; chain < c; ++chain)
      state.push_back(std::bit_cast<std::uint64_t>(state_log_psi_[chain]));
  }
  return state;
}

void MetropolisSampler::restore_state(const std::vector<std::uint64_t>& state) {
  const std::size_t c = config_.num_chains;
  const std::size_t n = model_.num_spins();
  VQMC_REQUIRE(state.size() == 5 || state.size() == 5 + c * n + c,
               name() + ": sampler state size mismatch");
  gen_.set_state({state[0], state[1], state[2], state[3]});
  chains_initialized_ = state[4] != 0;
  if (chains_initialized_) {
    VQMC_REQUIRE(state.size() == 5 + c * n + c,
                 name() + ": chain state missing from sampler state");
    std::size_t pos = 5;
    for (std::size_t chain = 0; chain < c; ++chain)
      for (std::size_t j = 0; j < n; ++j)
        states_(chain, j) = std::bit_cast<Real>(state[pos++]);
    for (std::size_t chain = 0; chain < c; ++chain)
      state_log_psi_[chain] = std::bit_cast<Real>(state[pos++]);
  }
}

void MetropolisSampler::restart_chains() {
  const std::size_t n = model_.num_spins();
  for (std::size_t chain = 0; chain < config_.num_chains; ++chain)
    for (std::size_t j = 0; j < n; ++j)
      states_(chain, j) = rng::bernoulli(gen_, 0.5) ? Real(1) : Real(0);
  model_.log_psi(states_, state_log_psi_.span());
  ++stats_.forward_passes;
  chains_initialized_ = true;
}

void MetropolisSampler::step() {
  const std::size_t n = model_.num_spins();
  const std::size_t c = config_.num_chains;

  // Propose per chain: a single-site flip or a magnetization-conserving
  // pair exchange.
  for (std::size_t chain = 0; chain < c; ++chain) {
    auto src = states_.row(chain);
    auto dst = proposals_.row(chain);
    std::copy(src.begin(), src.end(), dst.begin());
    if (config_.proposal == ProposalKind::PairExchange) {
      // Pick a random up site and a random down site by index-within-class;
      // the swap proposal is symmetric, so no Hastings correction is needed.
      std::size_t ups = 0;
      for (std::size_t j = 0; j < n; ++j) ups += dst[j] > Real(0.5) ? 1u : 0u;
      if (ups > 0 && ups < n) {
        std::size_t up_pick = std::size_t(rng::uniform_index(gen_, ups));
        std::size_t down_pick =
            std::size_t(rng::uniform_index(gen_, n - ups));
        std::size_t up_site = n, down_site = n;
        for (std::size_t j = 0; j < n; ++j) {
          if (dst[j] > Real(0.5)) {
            if (up_pick-- == 0) up_site = j;
          } else {
            if (down_pick-- == 0) down_site = j;
          }
        }
        dst[up_site] = 0;
        dst[down_site] = 1;
        flip_sites_[chain] = up_site;
        continue;
      }
      // Fully polarized: fall through to a single flip so the chain can
      // still move (and, from a mixed state, re-enter the sector).
    }
    const std::size_t site = std::size_t(rng::uniform_index(gen_, n));
    flip_sites_[chain] = site;
    dst[site] = 1 - dst[site];
  }

  // One batched forward pass evaluates every chain's proposal.
  model_.log_psi(proposals_, proposal_log_psi_.span());
  ++stats_.forward_passes;

  // MH accepts with min(1, pi'/pi) = min(1, e^{2 dlogpsi}); heat bath with
  // pi'/(pi + pi') = sigmoid(2 dlogpsi). Both leave pi invariant.
  for (std::size_t chain = 0; chain < c; ++chain) {
    ++stats_.proposals;
    if (!std::isfinite(proposal_log_psi_[chain])) {
      // A NaN/inf log-psi must never enter the chain state: a NaN acceptance
      // ratio silently poisons every later step, and +inf would be accepted
      // with certainty. Reject outright and count the event.
      ++stats_.nonfinite_rejections;
      continue;
    }
    const Real dlog = proposal_log_psi_[chain] - state_log_psi_[chain];
    bool accept;
    if (config_.rule == AcceptanceRule::HeatBath) {
      accept = rng::uniform01(gen_) < sigmoid(2 * dlog);
    } else {
      accept = dlog >= 0 || rng::uniform01(gen_) < std::exp(2 * dlog);
    }
    if (accept) {
      ++stats_.accepted;
      auto src = proposals_.row(chain);
      auto dst = states_.row(chain);
      std::copy(src.begin(), src.end(), dst.begin());
      state_log_psi_[chain] = proposal_log_psi_[chain];
    }
  }
}

void MetropolisSampler::sample(Matrix& out) {
  TELEMETRY_SPAN("sample.mcmc");
  const std::uint64_t nonfinite_before = stats_.nonfinite_rejections;
  const std::size_t n = model_.num_spins();
  VQMC_REQUIRE(out.cols() == n, "MCMC: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "MCMC: batch must be non-empty");

  // Burn-in (or persistent-chain re-equilibration) vs chain/collection time
  // are the two terms of the paper's MCMC budget (Eq. 14: k + j*bs/c model
  // evaluations); the split is recorded so Table 1 benches can attribute
  // which term dominates.
  Timer burn_timer;
  {
    TELEMETRY_SPAN("mcmc.burn_in");
    if (!config_.persistent_chains || !chains_initialized_) {
      restart_chains();
      for (std::size_t i = 0; i < config_.burn_in; ++i) step();
    } else {
      // Persistent chains still need a fresh log-psi: the model parameters
      // have typically changed since the previous call.
      model_.log_psi(states_, state_log_psi_.span());
      ++stats_.forward_passes;
      // Optional re-equilibration toward the updated distribution (see
      // MetropolisConfig::reburn_in for the bias trade-off).
      for (std::size_t i = 0; i < config_.reburn_in; ++i) step();
    }
  }
  const double burn_seconds = burn_timer.seconds();

  // Collect: round-robin over chains, advancing `thinning` steps between
  // kept states of the same chain (i.e. one step per kept sample when
  // c == 1 and thinning == 1).
  Timer chain_timer;
  {
    TELEMETRY_SPAN("mcmc.collect");
    const std::size_t c = config_.num_chains;
    std::size_t collected = 0;
    while (collected < bs) {
      for (std::size_t t = 0; t < config_.thinning; ++t) step();
      for (std::size_t chain = 0; chain < c && collected < bs; ++chain) {
        auto src = states_.row(chain);
        auto dst = out.row(collected++);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
  }

  if (telemetry::enabled()) {
    telemetry::MetricsRegistry& registry = telemetry::metrics();
    registry.counter("sampler.mcmc.batches").add();
    registry.histogram("sampler.mcmc.burn_in_seconds").observe(burn_seconds);
    registry.histogram("sampler.mcmc.chain_seconds")
        .observe(chain_timer.seconds());
    registry.counter("sampler.nonfinite_rejections")
        .add(stats_.nonfinite_rejections - nonfinite_before);
  }
}

}  // namespace vqmc
