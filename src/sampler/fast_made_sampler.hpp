#pragma once

/// \file fast_made_sampler.hpp
/// \brief Incremental ancestral sampler for MADE: O(bs h n) per batch
/// instead of Algorithm 1's O(bs h n^2).
///
/// Algorithm 1 re-runs the full forward pass (two O(h n) matmuls per row)
/// for each of the n sites even though, between consecutive passes, exactly
/// one input entry per row can change (the site just sampled).  This
/// sampler keeps the hidden pre-activations A1 = x W1m^T + b1 as running
/// state and applies rank-1 updates:
///
///   site i sampled to 1  =>  A1 row += column i of W1m,
///
/// then evaluates only the single conditional p_{i+1} it needs via one
/// O(h) dot product per row.  The result distribution is *identical* to
/// AutoregressiveSampler — the tests check bit-for-bit equality under the
/// same seed — only asymptotically faster, which matters because sampling
/// dominates the paper's per-iteration cost (Section 4's O(h n^2 mbs)
/// becomes O(h n mbs)).
///
/// Cost accounting: the statistics still count n "forward passes" per batch
/// to stay comparable with the baseline sampler's Figure-1 accounting.
///
/// The masked weights come straight from the model's version-counter cache
/// (Made::masked(), see masked_plan.hpp) — nothing is materialized per
/// call — and the inner loops iterate only the mask extents, skipping the
/// structurally zero terms without changing any result bit.
///
/// The draw loop itself lives in the shared batched conditional engine
/// (sampler/conditional_engine.hpp): per site, one relu_dot_panels_batch
/// kernel call evaluates the whole batch's logits, non-finite conditionals
/// are clamped to an unbiased coin and counted (nonfinite_rejections, as in
/// the baseline), and the rank-1 updates run as a gathered pass over the
/// rows that flipped.
///
/// Thread safety: a FastMadeSampler instance is single-threaded — it owns
/// mutable scratch (the engine workspace) and an RNG stream.  The borrowed
/// Made, however, is only ever read through const methods, so any number of
/// sampler instances (one per thread) may share one frozen model
/// concurrently.  The serving path (serve::ModelSnapshot) runs the same
/// engine with per-request generators, keeping the two draw streams
/// bit-for-bit identical (tested).

#include <cstdint>

#include "nn/made.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/sampler.hpp"

namespace vqmc {

/// Drop-in accelerated AUTO sampler specialized to the Made architecture.
class FastMadeSampler final : public Sampler {
 public:
  /// \param model the MADE wavefunction (not owned; must outlive the
  ///        sampler). Parameter *values* may change between sample() calls
  ///        (the masked weights are re-fetched from the model's cache).
  FastMadeSampler(const Made& model, std::uint64_t seed);

  void sample(Matrix& out) override;
  void sample_ws(Matrix& out, WavefunctionModel::Workspace* ws) override;

  [[nodiscard]] const SamplerStatistics& statistics() const override {
    return stats_;
  }
  void reset_statistics() override { stats_ = {}; }
  [[nodiscard]] bool is_exact() const override { return true; }
  [[nodiscard]] std::string name() const override { return "AUTO-fast"; }

  /// State layout: the 4 RNG words (draws are otherwise stateless).
  [[nodiscard]] std::vector<std::uint64_t> serialize_state() const override {
    const auto words = gen_.state();
    return {words.begin(), words.end()};
  }
  void restore_state(const std::vector<std::uint64_t>& state) override {
    VQMC_REQUIRE(state.size() == 4, "AUTO-fast: sampler state size mismatch");
    gen_.set_state({state[0], state[1], state[2], state[3]});
  }

 private:
  const Made& model_;
  rng::Xoshiro256 gen_;
  SamplerStatistics stats_;

  // Engine scratch reused across calls when the caller supplies no
  // workspace (sample_ws threads a caller-owned Made::Workspace instead).
  Made::Workspace scratch_;
};

}  // namespace vqmc
