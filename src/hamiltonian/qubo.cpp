#include "hamiltonian/qubo.hpp"

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc {

Qubo::Qubo(std::size_t n, std::vector<Term> terms)
    : n_(n), terms_(std::move(terms)) {
  VQMC_REQUIRE(n_ >= 1, "QUBO: need at least one variable");
  for (const Term& t : terms_) {
    VQMC_REQUIRE(t.i <= t.j, "QUBO: terms must satisfy i <= j");
    VQMC_REQUIRE(t.j < n_, "QUBO: term index out of range");
  }
  offsets_.assign(n_ + 1, 0);
  for (const Term& t : terms_) {
    ++offsets_[t.i + 1];
    if (t.i != t.j) ++offsets_[t.j + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) offsets_[i] += offsets_[i - 1];
  adjacency_.assign(offsets_.back(), {0, 0});
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Term& t : terms_) {
    adjacency_[cursor[t.i]++] = {t.j, t.q};
    if (t.i != t.j) adjacency_[cursor[t.j]++] = {t.i, t.q};
  }
}

Qubo Qubo::random_dense(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<Term> terms;
  terms.reserve(n * (n + 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      terms.push_back({i, j, rng::uniform(gen, -1.0, 1.0)});
  return Qubo(n, std::move(terms));
}

Real Qubo::diagonal(std::span<const Real> x) const {
  VQMC_ASSERT(x.size() == n_, "QUBO: configuration size mismatch");
  Real acc = 0;
  for (const Term& t : terms_) {
    if (t.i == t.j) {
      acc += t.q * x[t.i];
    } else {
      acc += t.q * x[t.i] * x[t.j];
    }
  }
  return acc;
}

Real Qubo::diagonal_flip_delta(std::span<const Real> x,
                               std::size_t site) const {
  VQMC_ASSERT(site < n_, "QUBO: site out of range");
  // x_site -> 1 - x_site. Linear term changes by q * (1 - 2 x_site);
  // quadratic terms q x_site x_other change by q (1 - 2 x_site) x_other.
  const Real d = 1 - 2 * x[site];
  Real delta = 0;
  const std::size_t begin = offsets_[site], end = offsets_[site + 1];
  for (std::size_t k = begin; k < end; ++k) {
    const auto& [other, q] = adjacency_[k];
    delta += (other == site) ? q * d : q * d * x[other];
  }
  return delta;
}

}  // namespace vqmc
