#include "hamiltonian/exact.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "hamiltonian/graph.hpp"
#include "linalg/jacobi_eigen.hpp"

namespace vqmc {

ExactGroundState exact_ground_state(const Hamiltonian& h,
                                    const linalg::LanczosOptions& options) {
  const std::size_t n = h.num_spins();
  VQMC_REQUIRE(n <= 20, "exact_ground_state limited to n <= 20 spins");
  const std::size_t dim = std::size_t(1) << n;
  auto apply = [&h](std::span<const Real> v, std::span<Real> y) {
    h.apply_dense(v, y);
  };
  linalg::LanczosResult lanczos = linalg::lanczos_smallest(apply, dim, options);
  ExactGroundState out;
  out.energy = lanczos.eigenvalue;
  out.amplitudes = std::move(lanczos.eigenvector);
  return out;
}

linalg::EigenDecomposition exact_spectrum(const Hamiltonian& h) {
  VQMC_REQUIRE(h.num_spins() <= 12, "exact_spectrum limited to n <= 12 spins");
  return linalg::jacobi_eigen(h.to_dense());
}

std::pair<Real, Vector> exact_diagonal_minimum(const Hamiltonian& h) {
  const std::size_t n = h.num_spins();
  VQMC_REQUIRE(h.is_diagonal(), "exact_diagonal_minimum: H must be diagonal");
  VQMC_REQUIRE(n <= 30, "exact_diagonal_minimum limited to n <= 30");
  const std::uint64_t dim = std::uint64_t(1) << n;
  Vector x(n), best(n);
  Real best_energy = std::numeric_limits<Real>::max();
  for (std::uint64_t idx = 0; idx < dim; ++idx) {
    decode_basis_state(idx, x.span());
    const Real e = h.diagonal(x.span());
    if (e < best_energy) {
      best_energy = e;
      best = x;
    }
  }
  return {best_energy, best};
}

Real exact_max_cut(const Graph& graph) {
  const std::size_t n = graph.num_vertices();
  VQMC_REQUIRE(n <= 30, "exact_max_cut limited to n <= 30 vertices");
  // Fix vertex 0's side to halve the search (cut is symmetric).
  const std::uint64_t half = std::uint64_t(1) << (n - 1);
  Vector x(n);
  Real best = 0;
  for (std::uint64_t idx = 0; idx < half; ++idx) {
    decode_basis_state(idx, x.span());
    best = std::max(best, graph.cut_value(x.span()));
  }
  return best;
}

}  // namespace vqmc
