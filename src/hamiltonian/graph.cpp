#include "hamiltonian/graph.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc {

Real Graph::total_weight() const {
  Real acc = 0;
  for (const Edge& e : edges_) acc += e.weight;
  return acc;
}

void Graph::add_edge(std::size_t u, std::size_t v, Real weight) {
  VQMC_REQUIRE(u != v, "graph: self-loops are not allowed");
  VQMC_REQUIRE(u < num_vertices_ && v < num_vertices_,
               "graph: vertex index out of range");
  edges_.push_back(Edge{std::min(u, v), std::max(u, v), weight});
  finalized_ = false;
}

void Graph::finalize() {
  offsets_.assign(num_vertices_ + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= num_vertices_; ++i) offsets_[i] += offsets_[i - 1];
  adjacency_.assign(offsets_.back(), {0, 0});
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    adjacency_[cursor[e.u]++] = {e.v, e.weight};
    adjacency_[cursor[e.v]++] = {e.u, e.weight};
  }
  finalized_ = true;
}

std::span<const std::pair<std::size_t, Real>> Graph::neighbors(
    std::size_t u) const {
  VQMC_REQUIRE(finalized_, "graph: call finalize() before neighbors()");
  VQMC_REQUIRE(u < num_vertices_, "graph: vertex index out of range");
  return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

Real Graph::cut_value(std::span<const Real> x) const {
  VQMC_REQUIRE(x.size() == num_vertices_, "cut_value: partition size mismatch");
  Real cut = 0;
  for (const Edge& e : edges_) {
    const bool su = x[e.u] > Real(0.5);
    const bool sv = x[e.v] > Real(0.5);
    if (su != sv) cut += e.weight;
  }
  return cut;
}

std::size_t Graph::max_degree() const {
  VQMC_REQUIRE(finalized_, "graph: call finalize() before max_degree()");
  std::size_t best = 0;
  for (std::size_t u = 0; u < num_vertices_; ++u)
    best = std::max(best, offsets_[u + 1] - offsets_[u]);
  return best;
}

Graph Graph::bernoulli_symmetrized(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  // Sample the full asymmetric B matrix row-by-row so the construction
  // mirrors the paper exactly (every B_ij, including the diagonal and both
  // triangles, consumes one draw — this keeps instances stable if the
  // acceptance rule ever changes).
  std::vector<std::uint8_t> b(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      b[i * n + j] = rng::bernoulli(gen, 0.5) ? 1 : 0;

  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // round((B_ij + B_ji) / 2) with half-to-even: 1 iff both entries are 1.
      if (b[i * n + j] && b[j * n + i]) g.add_edge(i, j);
    }
  }
  g.finalize();
  return g;
}

Graph Graph::erdos_renyi(std::size_t n, double p, std::uint64_t seed) {
  VQMC_REQUIRE(p >= 0 && p <= 1, "erdos_renyi: p must be in [0,1]");
  rng::Xoshiro256 gen(seed);
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng::bernoulli(gen, p)) g.add_edge(i, j);
  g.finalize();
  return g;
}

Graph Graph::cycle(std::size_t n) {
  VQMC_REQUIRE(n >= 3, "cycle: need at least 3 vertices");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  g.finalize();
  return g;
}

Graph Graph::complete(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  g.finalize();
  return g;
}

}  // namespace vqmc
