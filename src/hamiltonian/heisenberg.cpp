#include "hamiltonian/heisenberg.hpp"

#include "common/error.hpp"

namespace vqmc {

XxzHeisenberg::XxzHeisenberg(Graph graph, Real jz, Real jxy)
    : graph_(std::move(graph)), jz_(jz), jxy_(jxy) {
  VQMC_REQUIRE(graph_.num_vertices() >= 2, "XXZ: need at least 2 spins");
  VQMC_REQUIRE(jxy_ >= 0,
               "XXZ: Jxy must be non-negative (Perron-Frobenius sign rule)");
}

Real XxzHeisenberg::diagonal(std::span<const Real> x) const {
  VQMC_ASSERT(x.size() == num_spins(), "XXZ: configuration size mismatch");
  Real acc = 0;
  for (const Graph::Edge& e : graph_.edges())
    acc += jz_ * e.weight * ising_sign(x[e.u]) * ising_sign(x[e.v]);
  return acc;
}

void XxzHeisenberg::for_each_off_diagonal(
    std::span<const Real> x, const OffDiagonalVisitor& visit) const {
  VQMC_ASSERT(x.size() == num_spins(), "XXZ: configuration size mismatch");
  if (jxy_ == Real(0)) return;
  std::size_t flips[2];
  for (const Graph::Edge& e : graph_.edges()) {
    // (XX + YY) only connects anti-aligned pairs.
    if (x[e.u] == x[e.v]) continue;
    flips[0] = e.u;
    flips[1] = e.v;
    visit(std::span<const std::size_t>(flips, 2), -2 * jxy_ * e.weight);
  }
}

}  // namespace vqmc
