#pragma once

/// \file transverse_field_ising.hpp
/// \brief The disordered transverse-field Ising model (TIM) of Eq. 11:
///
///   H = -sum_i (alpha_i X_i + beta_i Z_i) - sum_{i<j} beta_ij Z_i Z_j
///
/// with alpha_i ~ U(0,1) (non-negative so Perron–Frobenius applies) and
/// beta_i, beta_ij ~ U(-1,1), sampled once per instance and fixed.
///
/// In the computational basis the row at configuration x has a diagonal
/// entry -sum beta_i s_i - sum beta_ij s_i s_j (s_i = 1 - 2 x_i) and one
/// off-diagonal entry -alpha_i for each single-site flip, giving sparsity
/// s = n + 1 (Definition 2.1).
///
/// Coupling storage: the paper draws a dense beta_ij over all pairs, which is
/// O(n^2) memory — 400 MB of doubles at n = 10^4.  For the large-n scaling
/// experiments we therefore also support a sparse disorder variant with a
/// fixed expected degree (see DESIGN.md substitution table); the dense
/// variant is bit-faithful to the paper and is the default for n <= 2048.

#include <cstdint>
#include <memory>
#include <vector>

#include "hamiltonian/hamiltonian.hpp"

namespace vqmc {

/// Transverse-field Ising Hamiltonian with arbitrary (dense or sparse)
/// pairwise disorder.
class TransverseFieldIsing final : public Hamiltonian {
 public:
  /// A single Z_i Z_j coupling term.
  struct Coupling {
    std::size_t i;
    std::size_t j;
    Real beta;
  };

  /// Construct from explicit fields and couplings (i < j required).
  TransverseFieldIsing(std::vector<Real> alpha, std::vector<Real> beta,
                       std::vector<Coupling> couplings);

  /// Paper instance: alpha_i ~ U(0,1), beta_i ~ U(-1,1) and a dense
  /// beta_ij ~ U(-1,1) over all pairs i < j.
  static TransverseFieldIsing random_dense(std::size_t n, std::uint64_t seed);

  /// Memory-bounded variant for n >> 10^3: same marginals but each pair is
  /// included independently with probability `degree / (n - 1)`, giving an
  /// expected per-site degree `degree`. Documented substitution for the
  /// 5K/10K-dimension scaling runs.
  static TransverseFieldIsing random_sparse(std::size_t n, std::size_t degree,
                                            std::uint64_t seed);

  /// Uniform ferromagnetic chain H = -h sum X_i - J sum Z_i Z_{i+1}
  /// (optionally periodic). Exactly solvable by Jordan-Wigner — see
  /// tfim_chain_ground_energy — which gives ground-truth energies far
  /// beyond exact-diagonalization reach.
  static TransverseFieldIsing uniform_chain(std::size_t n, Real coupling,
                                            Real field, bool periodic = true);

  // Hamiltonian interface.
  [[nodiscard]] std::size_t num_spins() const override { return alpha_.size(); }
  [[nodiscard]] std::size_t row_sparsity() const override {
    return alpha_.size() + 1;
  }
  [[nodiscard]] Real diagonal(std::span<const Real> x) const override;
  void for_each_off_diagonal(std::span<const Real> x,
                             const OffDiagonalVisitor& visit) const override;
  [[nodiscard]] std::string name() const override { return "TIM"; }

  [[nodiscard]] const std::vector<Real>& alpha() const { return alpha_; }
  [[nodiscard]] const std::vector<Real>& beta() const { return beta_; }
  [[nodiscard]] const std::vector<Coupling>& couplings() const {
    return couplings_;
  }

 private:
  std::vector<Real> alpha_;  ///< transverse fields (non-negative)
  std::vector<Real> beta_;   ///< longitudinal fields
  std::vector<Coupling> couplings_;
  // Per-site coupling adjacency for O(degree) single-flip diagonal updates
  // used by the Metropolis sampler.
  std::vector<std::size_t> adj_offsets_;
  std::vector<std::pair<std::size_t, Real>> adjacency_;

  void build_adjacency();

 public:
  /// Change in diagonal energy when flipping `site` of configuration x.
  /// O(degree(site)) — used by the MCMC sampler's incremental updates.
  [[nodiscard]] Real diagonal_flip_delta(std::span<const Real> x,
                                         std::size_t site) const;
};

/// Exact ground energy of the *periodic* uniform TFIM chain
/// H = -h sum X_i - J sum Z_i Z_{i+1} via the Jordan-Wigner free-fermion
/// solution (even-parity sector):
///
///   E_0 = - sum_{m=0}^{n-1} sqrt(J^2 + h^2 - 2 J h cos k_m),
///   k_m = (2m + 1) pi / n.
///
/// Valid for J, h >= 0 and any chain length n >= 2; O(n) evaluation, so it
/// provides ground truth at sizes where 2^n diagonalization is impossible.
Real tfim_chain_ground_energy(std::size_t n, Real coupling, Real field);

}  // namespace vqmc
