#pragma once

/// \file exact.hpp
/// \brief Exact ground-state solvers (exponential in n; validation only).
///
/// Two paths: dense Jacobi diagonalization (n <= 12, full spectrum) and
/// matrix-free Lanczos (n <= 20, extremal pair).  For diagonal Hamiltonians
/// an O(2^n) scan finds the exact optimum, used to validate Max-Cut
/// baselines and VQMC cuts.

#include "hamiltonian/graph.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/lanczos.hpp"

namespace vqmc {

struct ExactGroundState {
  Real energy = 0;
  Vector amplitudes;  ///< 2^n ground-state vector (unit norm)
};

/// Smallest eigenpair via matrix-free Lanczos. Requires n <= 20.
ExactGroundState exact_ground_state(const Hamiltonian& h,
                                    const linalg::LanczosOptions& options = {});

/// Full spectrum via dense Jacobi. Requires n <= 12.
linalg::EigenDecomposition exact_spectrum(const Hamiltonian& h);

/// Exhaustive minimum of a diagonal Hamiltonian. Requires n <= 30.
/// Returns (energy, argmin configuration).
std::pair<Real, Vector> exact_diagonal_minimum(const Hamiltonian& h);

/// Exhaustive maximum cut by brute force. Requires n <= 30.
Real exact_max_cut(const Graph& graph);

}  // namespace vqmc
