#include "hamiltonian/hamiltonian.hpp"

#include "common/error.hpp"

namespace vqmc {

void decode_basis_state(std::uint64_t idx, std::span<Real> x) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Site 0 <-> most significant bit, matching the paper's
    // x = 2^{n-1} x_1 ... 2^0 x_n convention.
    x[i] = Real((idx >> (n - 1 - i)) & 1u);
  }
}

std::uint64_t encode_basis_state(std::span<const Real> x) {
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    idx <<= 1;
    if (x[i] > Real(0.5)) idx |= 1u;
  }
  return idx;
}

void Hamiltonian::apply_dense(std::span<const Real> v,
                              std::span<Real> y) const {
  const std::size_t n = num_spins();
  VQMC_REQUIRE(n <= 24, "apply_dense limited to n <= 24 spins");
  const std::uint64_t dim = std::uint64_t(1) << n;
  VQMC_REQUIRE(v.size() == dim && y.size() == dim,
               "apply_dense: vector size must be 2^n");

  Vector x(n);
  std::vector<Real> flipped(n);
  for (std::uint64_t row = 0; row < dim; ++row) {
    decode_basis_state(row, x.span());
    Real acc = diagonal(x.span()) * v[row];
    for_each_off_diagonal(
        x.span(), [&](std::span<const std::size_t> flips, Real value) {
          std::uint64_t col = row;
          for (std::size_t site : flips)
            col ^= std::uint64_t(1) << (n - 1 - site);
          acc += value * v[col];
        });
    y[row] = acc;
  }
}

Matrix Hamiltonian::to_dense() const {
  const std::size_t n = num_spins();
  VQMC_REQUIRE(n <= 14, "to_dense limited to n <= 14 spins");
  const std::uint64_t dim = std::uint64_t(1) << n;
  Matrix h(dim, dim);
  Vector x(n);
  for (std::uint64_t row = 0; row < dim; ++row) {
    decode_basis_state(row, x.span());
    h(row, row) = diagonal(x.span());
    for_each_off_diagonal(
        x.span(), [&](std::span<const std::size_t> flips, Real value) {
          std::uint64_t col = row;
          for (std::size_t site : flips)
            col ^= std::uint64_t(1) << (n - 1 - site);
          h(row, col) = value;
        });
  }
  return h;
}

}  // namespace vqmc
