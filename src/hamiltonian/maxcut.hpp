#pragma once

/// \file maxcut.hpp
/// \brief Max-Cut as a diagonal quantum Hamiltonian (special case of Eq. 11).
///
/// With alpha_i = beta_i = 0 and couplings beta_ij = -(1/4) L_ij the
/// Hamiltonian is diagonal and its ground state encodes the maximum cut:
///
///   E(x) = (1/4) sum_{i<j} L_ij s_i s_j,     s_i = 1 - 2 x_i,
///   cut(x) = (W - 4 E(x)) / 2,               W = total edge weight,
///
/// so minimizing the variational energy maximizes the cut.  (The paper
/// writes beta_ij = +L_ij/4 inside H = -sum beta_ij Z_i Z_j; the sign here is
/// fixed so that the *ground* state is the maximum — not minimum — cut,
/// which is the convention its Table 2 numbers require.)  Because H is
/// diagonal, the local energy needs no wavefunction ratios and VQMC reduces
/// to the natural-evolution-strategies optimizer of [Zhao et al. 2020].

#include <cstdint>

#include "hamiltonian/graph.hpp"
#include "hamiltonian/hamiltonian.hpp"

namespace vqmc {

/// Diagonal Max-Cut Hamiltonian over a weighted graph.
class MaxCut final : public Hamiltonian {
 public:
  explicit MaxCut(Graph graph);

  /// Paper instance family (symmetrized-Bernoulli graph, see Graph docs).
  static MaxCut paper_instance(std::size_t n, std::uint64_t seed) {
    return MaxCut(Graph::bernoulli_symmetrized(n, seed));
  }

  // Hamiltonian interface.
  [[nodiscard]] std::size_t num_spins() const override {
    return graph_.num_vertices();
  }
  [[nodiscard]] std::size_t row_sparsity() const override { return 1; }
  [[nodiscard]] Real diagonal(std::span<const Real> x) const override;
  void for_each_off_diagonal(std::span<const Real> /*x*/,
                             const OffDiagonalVisitor& /*visit*/)
      const override {}
  [[nodiscard]] bool is_diagonal() const override { return true; }
  [[nodiscard]] std::string name() const override { return "MaxCut"; }

  /// Cut weight of configuration x.
  [[nodiscard]] Real cut_value(std::span<const Real> x) const {
    return graph_.cut_value(x);
  }

  /// Convert a variational energy to the corresponding (expected) cut.
  [[nodiscard]] Real cut_from_energy(Real energy) const {
    return (graph_.total_weight() - 4 * energy) / 2;
  }

  /// Inverse of cut_from_energy.
  [[nodiscard]] Real energy_from_cut(Real cut) const {
    return (graph_.total_weight() - 2 * cut) / 4;
  }

  [[nodiscard]] const Graph& graph() const { return graph_; }

  /// Energy change from flipping `site` (O(degree); used by MCMC).
  [[nodiscard]] Real diagonal_flip_delta(std::span<const Real> x,
                                         std::size_t site) const;

 private:
  Graph graph_;
};

}  // namespace vqmc
