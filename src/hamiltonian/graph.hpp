#pragma once

/// \file graph.hpp
/// \brief Undirected weighted graphs and the paper's random-graph generator.
///
/// Table 2's Max-Cut instances are built by sampling B_ij ~ Bernoulli(0.5),
/// symmetrizing to (B + B^T)/2 and rounding (half-to-even, as NumPy does),
/// which keeps an edge exactly when both B_ij and B_ji are 1 — an
/// Erdős–Rényi graph with edge probability 1/4.  `bernoulli_symmetrized`
/// reproduces that construction bit-for-bit given a seed.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/real.hpp"

namespace vqmc {

/// Undirected weighted graph stored as an edge list plus CSR-style adjacency.
class Graph {
 public:
  struct Edge {
    std::size_t u;
    std::size_t v;
    Real weight;
  };

  Graph() = default;
  explicit Graph(std::size_t num_vertices) : num_vertices_(num_vertices) {}

  [[nodiscard]] std::size_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Total edge weight (== num_edges for unweighted graphs).
  [[nodiscard]] Real total_weight() const;

  /// Add edge {u, v} with weight w. Self-loops are rejected.
  void add_edge(std::size_t u, std::size_t v, Real weight = 1);

  /// Neighbors of u as (vertex, weight) pairs. Requires finalize() first.
  [[nodiscard]] std::span<const std::pair<std::size_t, Real>> neighbors(
      std::size_t u) const;

  /// Build the adjacency index; call after the last add_edge.
  void finalize();

  /// Cut weight of the bipartition encoded by x in {0,1}^n.
  [[nodiscard]] Real cut_value(std::span<const Real> x) const;

  /// Maximum vertex degree (0 for empty graphs). Requires finalize().
  [[nodiscard]] std::size_t max_degree() const;

  // -- Generators -----------------------------------------------------------

  /// The paper's Table 2 instance family: edge (i, j) present iff
  /// B_ij = B_ji = 1 with B_ij ~ Bernoulli(0.5). Equivalent to G(n, 1/4).
  static Graph bernoulli_symmetrized(std::size_t n, std::uint64_t seed);

  /// Erdős–Rényi G(n, p).
  static Graph erdos_renyi(std::size_t n, double p, std::uint64_t seed);

  /// Ring graph C_n (known max cut: n for even n, n - 1 for odd n).
  static Graph cycle(std::size_t n);

  /// Complete graph K_n (known max cut: floor(n/2) * ceil(n/2)).
  static Graph complete(std::size_t n);

 private:
  std::size_t num_vertices_ = 0;
  std::vector<Edge> edges_;
  // CSR adjacency (built by finalize()).
  std::vector<std::size_t> offsets_;
  std::vector<std::pair<std::size_t, Real>> adjacency_;
  bool finalized_ = false;
};

}  // namespace vqmc
