#pragma once

/// \file qubo.hpp
/// \brief General quadratic unconstrained binary optimization (QUBO) as a
/// diagonal Hamiltonian.
///
/// QUBO minimizes x^T Q x over x in {0,1}^n.  This covers Max-Cut (Section
/// 2.4 of the paper) and a large family of combinatorial problems; the class
/// exists so downstream users can plug arbitrary QUBO instances into the
/// VQMC optimizer without going through the graph representation.

#include <cstdint>
#include <vector>

#include "hamiltonian/hamiltonian.hpp"

namespace vqmc {

/// Diagonal Hamiltonian with E(x) = sum_i q_ii x_i + sum_{i<j} q_ij x_i x_j.
class Qubo final : public Hamiltonian {
 public:
  struct Term {
    std::size_t i;
    std::size_t j;  ///< i == j encodes a linear term
    Real q;
  };

  Qubo(std::size_t n, std::vector<Term> terms);

  /// Random dense instance with q ~ U(-1, 1) (for tests/examples).
  static Qubo random_dense(std::size_t n, std::uint64_t seed);

  // Hamiltonian interface.
  [[nodiscard]] std::size_t num_spins() const override { return n_; }
  [[nodiscard]] std::size_t row_sparsity() const override { return 1; }
  [[nodiscard]] Real diagonal(std::span<const Real> x) const override;
  void for_each_off_diagonal(std::span<const Real> /*x*/,
                             const OffDiagonalVisitor& /*visit*/)
      const override {}
  [[nodiscard]] bool is_diagonal() const override { return true; }
  [[nodiscard]] std::string name() const override { return "QUBO"; }

  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }

  /// Energy change from flipping `site` (O(degree); used by MCMC).
  [[nodiscard]] Real diagonal_flip_delta(std::span<const Real> x,
                                         std::size_t site) const;

 private:
  std::size_t n_;
  std::vector<Term> terms_;
  // Per-site term adjacency for incremental flip deltas.
  std::vector<std::size_t> offsets_;
  std::vector<std::pair<std::size_t, Real>> adjacency_;  // (other, q); other == site for linear
};

}  // namespace vqmc
