#pragma once

/// \file hamiltonian.hpp
/// \brief The row-sparse symmetric operator interface of Definition 2.1.
///
/// A Hamiltonian here is a 2^n x 2^n real-symmetric matrix H whose rows are
/// indexed by n-bit spin configurations and which is *row-s-sparse and
/// efficiently row computable*: for any configuration x the non-zero entries
/// {(y, H_xy)} of row x can be enumerated in O(s) time.  For the families in
/// the paper (Eq. 11) every off-diagonal column y differs from x on a small
/// set of flipped sites, so entries are reported as (flip set, value) pairs.
///
/// Spin configurations are stored as Real vectors with entries in {0, 1}
/// (bit convention; the Ising sign is s_i = 1 - 2 x_i) because they are fed
/// directly to the neural network models.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/real.hpp"
#include "tensor/vector.hpp"

namespace vqmc {

/// Visitor invoked once per non-zero off-diagonal entry of a row.
/// `flips` lists the sites on which the column configuration differs from
/// the row configuration (never empty — the diagonal is reported separately).
using OffDiagonalVisitor =
    std::function<void(std::span<const std::size_t> flips, Real value)>;

/// Row-sparse symmetric operator (Definition 2.1 of the paper).
class Hamiltonian {
 public:
  virtual ~Hamiltonian() = default;

  /// Number of spins n; the matrix dimension is 2^n.
  [[nodiscard]] virtual std::size_t num_spins() const = 0;

  /// Sparsity parameter s: an upper bound on non-zeros per row.
  [[nodiscard]] virtual std::size_t row_sparsity() const = 0;

  /// H_xx for configuration x (entries in {0,1}).
  [[nodiscard]] virtual Real diagonal(std::span<const Real> x) const = 0;

  /// Enumerate the non-zero off-diagonal entries of row x.
  virtual void for_each_off_diagonal(std::span<const Real> x,
                                     const OffDiagonalVisitor& visit) const = 0;

  /// True if the operator is diagonal in the computational basis (QUBO /
  /// Max-Cut); lets the local-energy engine skip wavefunction evaluations at
  /// connected configurations entirely.
  [[nodiscard]] virtual bool is_diagonal() const { return false; }

  /// Human-readable family name ("TIM", "MaxCut", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  // -- Dense/exact helpers (exponential in n; for validation only) ---------

  /// y = H v on the full 2^n-dimensional space. Requires n <= 24.
  void apply_dense(std::span<const Real> v, std::span<Real> y) const;

  /// Materialize H as a dense 2^n x 2^n matrix. Requires n <= 14.
  [[nodiscard]] Matrix to_dense() const;
};

/// Decode basis-state index `idx` into a {0,1} configuration (bit i of the
/// paper's binary row representation: x = 2^{n-1} x_1 ... 2^0 x_n, so
/// site 0 corresponds to the most significant bit).
void decode_basis_state(std::uint64_t idx, std::span<Real> x);

/// Inverse of decode_basis_state.
std::uint64_t encode_basis_state(std::span<const Real> x);

/// Ising sign of site i: s_i = 1 - 2 x_i.
inline Real ising_sign(Real x) { return 1 - 2 * x; }

}  // namespace vqmc
