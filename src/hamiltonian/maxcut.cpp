#include "hamiltonian/maxcut.hpp"

#include "common/error.hpp"

namespace vqmc {

MaxCut::MaxCut(Graph graph) : graph_(std::move(graph)) {
  VQMC_REQUIRE(graph_.num_vertices() >= 2, "MaxCut: need at least 2 vertices");
}

Real MaxCut::diagonal(std::span<const Real> x) const {
  VQMC_ASSERT(x.size() == num_spins(), "MaxCut: configuration size mismatch");
  // E(x) = (1/4) sum_{(i,j) in E} w_ij s_i s_j == (W - 2 cut) / 4.
  Real acc = 0;
  for (const Graph::Edge& e : graph_.edges())
    acc += e.weight * ising_sign(x[e.u]) * ising_sign(x[e.v]);
  return acc / 4;
}

Real MaxCut::diagonal_flip_delta(std::span<const Real> x,
                                 std::size_t site) const {
  VQMC_ASSERT(site < num_spins(), "MaxCut: site out of range");
  const Real s = ising_sign(x[site]);
  Real delta = 0;
  for (const auto& [other, weight] : graph_.neighbors(site))
    delta -= 2 * weight * s * ising_sign(x[other]) / 4;
  return delta;
}

}  // namespace vqmc
