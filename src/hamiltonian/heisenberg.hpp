#pragma once

/// \file heisenberg.hpp
/// \brief XXZ Heisenberg model on an arbitrary graph — the library's
/// two-site-flip Hamiltonian.
///
///   H = sum_{(i,j) in E} w_ij [ Jz Z_i Z_j - Jxy (X_i X_j + Y_i Y_j) ]
///
/// In the computational basis, Z_i Z_j is diagonal (s_i s_j) and
/// (X_i X_j + Y_i Y_j) |x> flips the pair (i, j) iff the two spins are
/// anti-aligned, with matrix element 2; the off-diagonal entries are thus
/// -2 Jxy w_ij, non-positive for Jxy >= 0 (Perron-Frobenius, as required by
/// Section 2.1 of the paper).  Row sparsity is 1 + |E|.
///
/// The paper's experiments stop at single-flip operators (TIM); this model
/// exercises the multi-site-flip path of the general Definition-2.1
/// interface end-to-end (local energy, exact diagonalization, VQMC).

#include <cstdint>

#include "hamiltonian/graph.hpp"
#include "hamiltonian/hamiltonian.hpp"

namespace vqmc {

/// XXZ model over a weighted interaction graph.
class XxzHeisenberg final : public Hamiltonian {
 public:
  /// \param graph interaction graph (finalized)
  /// \param jz longitudinal coupling
  /// \param jxy transverse coupling; must be >= 0 so off-diagonals are
  ///        non-positive and the ground state can be chosen non-negative
  XxzHeisenberg(Graph graph, Real jz, Real jxy);

  /// Antiferromagnetic-XY chain of length n (a standard testbed whose
  /// 2-site blocks are exactly solvable).
  static XxzHeisenberg chain(std::size_t n, Real jz, Real jxy) {
    return XxzHeisenberg(Graph::cycle(n), jz, jxy);
  }

  // Hamiltonian interface.
  [[nodiscard]] std::size_t num_spins() const override {
    return graph_.num_vertices();
  }
  [[nodiscard]] std::size_t row_sparsity() const override {
    return 1 + graph_.num_edges();
  }
  [[nodiscard]] Real diagonal(std::span<const Real> x) const override;
  void for_each_off_diagonal(std::span<const Real> x,
                             const OffDiagonalVisitor& visit) const override;
  [[nodiscard]] std::string name() const override { return "XXZ"; }

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] Real jz() const { return jz_; }
  [[nodiscard]] Real jxy() const { return jxy_; }

 private:
  Graph graph_;
  Real jz_;
  Real jxy_;
};

}  // namespace vqmc
