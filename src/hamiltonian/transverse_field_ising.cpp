#include "hamiltonian/transverse_field_ising.hpp"

#include <algorithm>
#include <tuple>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc {

TransverseFieldIsing::TransverseFieldIsing(std::vector<Real> alpha,
                                           std::vector<Real> beta,
                                           std::vector<Coupling> couplings)
    : alpha_(std::move(alpha)),
      beta_(std::move(beta)),
      couplings_(std::move(couplings)) {
  VQMC_REQUIRE(alpha_.size() == beta_.size(),
               "TIM: alpha and beta must have the same length");
  for (Real a : alpha_)
    VQMC_REQUIRE(a >= 0, "TIM: alpha_i must be non-negative (Perron-Frobenius)");
  for (const Coupling& c : couplings_) {
    VQMC_REQUIRE(c.i < c.j, "TIM: couplings must satisfy i < j");
    VQMC_REQUIRE(c.j < alpha_.size(), "TIM: coupling index out of range");
  }
  build_adjacency();
}

TransverseFieldIsing TransverseFieldIsing::random_dense(std::size_t n,
                                                        std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<Real> alpha(n), beta(n);
  for (std::size_t i = 0; i < n; ++i) alpha[i] = rng::uniform(gen, 0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) beta[i] = rng::uniform(gen, -1.0, 1.0);
  std::vector<Coupling> couplings;
  couplings.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      couplings.push_back({i, j, rng::uniform(gen, -1.0, 1.0)});
  return TransverseFieldIsing(std::move(alpha), std::move(beta),
                              std::move(couplings));
}

TransverseFieldIsing TransverseFieldIsing::random_sparse(std::size_t n,
                                                         std::size_t degree,
                                                         std::uint64_t seed) {
  VQMC_REQUIRE(n >= 2, "TIM: need at least 2 spins");
  rng::Xoshiro256 gen(seed);
  std::vector<Real> alpha(n), beta(n);
  for (std::size_t i = 0; i < n; ++i) alpha[i] = rng::uniform(gen, 0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) beta[i] = rng::uniform(gen, -1.0, 1.0);
  std::vector<Coupling> couplings;
  // Draw `degree` random partners per site (deduplicated by keeping i < j and
  // skipping repeats probabilistically — collisions are rare for degree << n).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < degree; ++k) {
      std::size_t j = std::size_t(rng::uniform_index(gen, n - 1));
      if (j >= i) ++j;
      const std::size_t lo = std::min(i, j), hi = std::max(i, j);
      couplings.push_back({lo, hi, rng::uniform(gen, -1.0, 1.0)});
    }
  }
  // Remove duplicate pairs, keeping the first draw.
  std::sort(couplings.begin(), couplings.end(),
            [](const Coupling& a, const Coupling& b) {
              return std::tie(a.i, a.j) < std::tie(b.i, b.j);
            });
  couplings.erase(std::unique(couplings.begin(), couplings.end(),
                              [](const Coupling& a, const Coupling& b) {
                                return a.i == b.i && a.j == b.j;
                              }),
                  couplings.end());
  return TransverseFieldIsing(std::move(alpha), std::move(beta),
                              std::move(couplings));
}

TransverseFieldIsing TransverseFieldIsing::uniform_chain(std::size_t n,
                                                         Real coupling,
                                                         Real field,
                                                         bool periodic) {
  VQMC_REQUIRE(n >= 2, "TIM chain: need at least 2 spins");
  VQMC_REQUIRE(field >= 0, "TIM chain: field must be non-negative");
  std::vector<Real> alpha(n, field), beta(n, Real(0));
  std::vector<Coupling> couplings;
  for (std::size_t i = 0; i + 1 < n; ++i) couplings.push_back({i, i + 1, coupling});
  if (periodic && n > 2) couplings.push_back({0, n - 1, coupling});
  return TransverseFieldIsing(std::move(alpha), std::move(beta),
                              std::move(couplings));
}

Real tfim_chain_ground_energy(std::size_t n, Real coupling, Real field) {
  VQMC_REQUIRE(n >= 2, "tfim_chain_ground_energy: need at least 2 spins");
  VQMC_REQUIRE(coupling >= 0 && field >= 0,
               "tfim_chain_ground_energy: J, h must be non-negative");
  // Even-parity momenta k = (2m + 1) pi / n, single-particle energies
  // eps(k) = sqrt(J^2 + h^2 - 2 J h cos k); E0 = -sum eps.
  Real energy = 0;
  const Real pi = Real(3.14159265358979323846);
  for (std::size_t m = 0; m < n; ++m) {
    const Real k = (2 * Real(m) + 1) * pi / Real(n);
    energy -= std::sqrt(coupling * coupling + field * field -
                        2 * coupling * field * std::cos(k));
  }
  return energy;
}

void TransverseFieldIsing::build_adjacency() {
  const std::size_t n = alpha_.size();
  adj_offsets_.assign(n + 1, 0);
  for (const Coupling& c : couplings_) {
    ++adj_offsets_[c.i + 1];
    ++adj_offsets_[c.j + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) adj_offsets_[i] += adj_offsets_[i - 1];
  adjacency_.assign(adj_offsets_.back(), {0, 0});
  std::vector<std::size_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (const Coupling& c : couplings_) {
    adjacency_[cursor[c.i]++] = {c.j, c.beta};
    adjacency_[cursor[c.j]++] = {c.i, c.beta};
  }
}

Real TransverseFieldIsing::diagonal(std::span<const Real> x) const {
  VQMC_ASSERT(x.size() == num_spins(), "TIM: configuration size mismatch");
  Real acc = 0;
  for (std::size_t i = 0; i < beta_.size(); ++i)
    acc -= beta_[i] * ising_sign(x[i]);
  for (const Coupling& c : couplings_)
    acc -= c.beta * ising_sign(x[c.i]) * ising_sign(x[c.j]);
  return acc;
}

void TransverseFieldIsing::for_each_off_diagonal(
    [[maybe_unused]] std::span<const Real> x,
    const OffDiagonalVisitor& visit) const {
  VQMC_ASSERT(x.size() == num_spins(), "TIM: configuration size mismatch");
  std::size_t flip[1];
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    if (alpha_[i] == Real(0)) continue;
    flip[0] = i;
    visit(std::span<const std::size_t>(flip, 1), -alpha_[i]);
  }
}

Real TransverseFieldIsing::diagonal_flip_delta(std::span<const Real> x,
                                               std::size_t site) const {
  VQMC_ASSERT(site < num_spins(), "TIM: site out of range");
  // Flipping site changes s_site -> -s_site; the diagonal terms containing
  // that spin flip sign, so the delta is twice their current value.
  const Real s = ising_sign(x[site]);
  Real delta = 2 * beta_[site] * s;  // -beta s -> +beta s
  const std::size_t begin = adj_offsets_[site], end = adj_offsets_[site + 1];
  for (std::size_t k = begin; k < end; ++k) {
    const auto& [other, beta] = adjacency_[k];
    delta += 2 * beta * s * ising_sign(x[other]);
  }
  return delta;
}

}  // namespace vqmc
