#pragma once

/// \file estimators.hpp
/// \brief Monte Carlo estimators for the VQMC objective (Eq. 3-5).

#include <span>

#include "nn/wavefunction.hpp"
#include "tensor/real.hpp"

namespace vqmc {

/// Sample statistics of the stochastic objective.
struct EnergyEstimate {
  Real mean = 0;       ///< estimate of L(theta)
  Real variance = 0;   ///< var of l_theta under pi_theta (Eq. 4); -> 0 at an
                       ///< exact eigenstate
  Real std_dev = 0;    ///< sqrt(variance)
  Real std_error = 0;  ///< std_dev / sqrt(batch) (i.i.d. assumption)
  Real min = 0;        ///< best (lowest) local energy in the batch
};

/// Mean/variance/extreme of a batch of local energies.
EnergyEstimate estimate_energy(std::span<const Real> local_energies);

/// Energy gradient (Eq. 5): grad = 2 E[(l - L) d log psi] estimated as
/// grad += (2/bs) sum_k (l_k - mean(l)) d log psi(x_k)/d theta.
/// `grad` must be zeroed by the caller if a fresh gradient is wanted.
/// `ws` (optional, from model.make_workspace()) reuses the model's
/// evaluation scratch across calls.
void accumulate_energy_gradient(const WavefunctionModel& model,
                                const Matrix& batch,
                                std::span<const Real> local_energies,
                                std::span<Real> grad,
                                WavefunctionModel::Workspace* ws = nullptr);

}  // namespace vqmc
