#pragma once

/// \file local_energy.hpp
/// \brief The local-energy engine: l_theta(x) = (H psi)(x) / psi(x) (Eq. 3).
///
/// For a row-sparse Hamiltonian the local energy expands to
///
///   l(x) = H_xx + sum_{y != x} H_xy psi(y) / psi(x)
///        = H_xx + sum_{y} H_xy exp(log psi(y) - log psi(x)),
///
/// where the y-sum runs over the O(s) configurations connected to x.  The
/// engine batches the connected-configuration evaluations into forward
/// passes of bounded size so memory stays O(chunk * n) even when bs * s is
/// huge — this mirrors the paper's "fixed number of forward passes for
/// physical quantity measurements".
///
/// Diagonal Hamiltonians (Max-Cut / QUBO) short-circuit: no wavefunction
/// evaluation is needed at all, and VQMC degenerates to the
/// natural-evolution-strategies optimizer.

#include <cstdint>
#include <memory>

#include "hamiltonian/hamiltonian.hpp"
#include "nn/wavefunction.hpp"

namespace vqmc {

/// Computes batches of local energies for a fixed (H, model) pair.
class LocalEnergyEngine {
 public:
  /// \param hamiltonian the operator (not owned; must outlive the engine)
  /// \param model the trial wavefunction (not owned)
  /// \param chunk_size max rows per batched wavefunction evaluation
  /// \param max_log_ratio clamp on |log psi(y) - log psi(x)| before
  ///        exponentiation. Physical wavefunction ratios between connected
  ///        configurations are O(1); the clamp only engages when an
  ///        unnormalized model (RBM) destabilizes mid-training and keeps
  ///        the local energy finite instead of overflowing to inf/NaN.
  LocalEnergyEngine(const Hamiltonian& hamiltonian,
                    const WavefunctionModel& model,
                    std::size_t chunk_size = 1024, Real max_log_ratio = 30);

  /// Local energies of each row of `batch` into `out` (length batch.rows()).
  void compute(const Matrix& batch, std::span<Real> out);

  /// Batched model evaluations performed so far (for Figure-1 accounting).
  [[nodiscard]] std::uint64_t forward_passes() const {
    return forward_passes_;
  }
  void reset_statistics() { forward_passes_ = 0; }

 private:
  void flush_chunk(std::span<Real> out);

  const Hamiltonian& hamiltonian_;
  const WavefunctionModel& model_;
  std::size_t chunk_size_;
  Real max_log_ratio_;
  std::uint64_t forward_passes_ = 0;

  // Scratch reused across compute() calls.
  /// Model evaluation workspace (null for models without one); every
  /// log_psi in the chunk loop reuses it instead of allocating scratch.
  std::unique_ptr<WavefunctionModel::Workspace> model_ws_;
  Vector log_psi_x_;
  Matrix chunk_configs_;
  Vector chunk_log_psi_;
  std::vector<std::size_t> chunk_sample_;  ///< sample index per chunk row
  std::vector<Real> chunk_value_;          ///< H_xy per chunk row
  std::size_t chunk_fill_ = 0;
};

}  // namespace vqmc
