#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace vqmc {

bool fsync_parent_directory(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, std::max<std::size_t>(slash, 1));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  return synced;
#else
  (void)path;
  return true;  // no portable directory sync; the data fsync already ran
#endif
}

namespace {

constexpr std::uint64_t kParamMagic = 0x56514d43'43503031ULL;  // "VQMCCP01"
constexpr std::uint64_t kTrainMagic = 0x56514d43'54533031ULL;  // "VQMCTS01"
constexpr std::uint64_t kTrainVersion = 1;

struct Header {
  std::uint64_t magic = kParamMagic;
  std::uint64_t num_spins = 0;
  std::uint64_t num_parameters = 0;
  std::uint64_t name_length = 0;
};

/// Write `bytes` of `data` to `path` crash-safely: serialize to
/// `<path>.tmp`, flush to stable storage, then atomically rename over
/// `path` and fsync the parent directory. A crash at any point leaves
/// either the old file or the new one — never a torn mix — and the rename
/// itself is durable: without the directory fsync, a power loss right after
/// rename() can roll the directory entry back to the old file (or to
/// nothing, for a first-ever checkpoint) on journaled filesystems.
void write_file_atomic(const std::string& path, const void* data,
                       std::size_t bytes) {
  const std::string tmp = path + ".tmp";
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  VQMC_REQUIRE(fd >= 0, "checkpoint: cannot open '" + tmp + "' for writing");
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t written = 0;
  while (written < bytes) {
    const ::ssize_t w = ::write(fd, p + written, bytes - written);
    if (w <= 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      throw Error("checkpoint: short write to '" + tmp + "' (" +
                  std::to_string(written) + " of " + std::to_string(bytes) +
                  " bytes)");
    }
    written += std::size_t(w);
  }
  const bool synced = ::fsync(fd) == 0;
  const bool closed = ::close(fd) == 0;
  if (!synced || !closed) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: flushing '" + tmp + "' failed");
  }
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    VQMC_REQUIRE(out.good(), "checkpoint: cannot open '" + tmp + "'");
    out.write(static_cast<const char*>(data), std::streamsize(bytes));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("checkpoint: short write to '" + tmp + "'");
    }
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
  }
  VQMC_REQUIRE(fsync_parent_directory(path),
               "checkpoint: cannot fsync the directory of '" + path + "'");
}

/// Read all of `path` into a byte buffer; throws on a missing file.
std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  VQMC_REQUIRE(in.good(), "checkpoint: cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<unsigned char> buffer(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(buffer.data()), size);
    VQMC_REQUIRE(in.gcount() == size,
                 "checkpoint: '" + path + "' could not be read completely");
  }
  return buffer;
}

/// Append-only byte sink for building a record in memory before the single
/// atomic write.
struct ByteWriter {
  std::vector<unsigned char> bytes;

  void raw(const void* data, std::size_t n) {
    if (n == 0) return;  // empty vectors hand over data() == nullptr
    const auto* p = static_cast<const unsigned char*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void u64(std::uint64_t value) { raw(&value, sizeof(value)); }
  void string(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void reals(const std::vector<Real>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(Real));
  }
  void words(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(std::uint64_t));
  }
};

/// Bounds-checked cursor over a loaded record. Every read that would run
/// past the end throws a *truncation* error — structurally, before any
/// checksum is consulted — so a file cut mid-payload is reported as what it
/// is instead of as generic corruption.
struct ByteReader {
  const std::vector<unsigned char>& bytes;
  const std::string& path;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return bytes.size() - pos; }

  void raw(void* out, std::size_t n) {
    VQMC_REQUIRE(remaining() >= n,
                 "checkpoint: '" + path + "' is truncated (needed " +
                     std::to_string(n) + " more bytes, " +
                     std::to_string(remaining()) + " left)");
    if (n == 0) return;  // empty vectors hand over data() == nullptr
    std::memcpy(out, bytes.data() + pos, n);
    pos += n;
  }
  std::uint64_t u64() {
    std::uint64_t value = 0;
    raw(&value, sizeof(value));
    return value;
  }
  std::string string(std::size_t max_length = 255) {
    const std::uint64_t length = u64();
    VQMC_REQUIRE(length <= max_length,
                 "checkpoint: '" + path + "' has a corrupt string field");
    std::string s(length, '\0');
    raw(s.data(), length);
    return s;
  }
  std::vector<Real> reals(std::size_t max_count) {
    const std::uint64_t count = u64();
    VQMC_REQUIRE(count <= max_count && count * sizeof(Real) <= remaining(),
                 "checkpoint: '" + path + "' is truncated inside a payload");
    std::vector<Real> v(count);
    raw(v.data(), count * sizeof(Real));
    return v;
  }
  std::vector<std::uint64_t> words(std::size_t max_count) {
    const std::uint64_t count = u64();
    VQMC_REQUIRE(
        count <= max_count && count * sizeof(std::uint64_t) <= remaining(),
        "checkpoint: '" + path + "' is truncated inside a payload");
    std::vector<std::uint64_t> v(count);
    raw(v.data(), count * sizeof(std::uint64_t));
    return v;
  }
};

/// Generous per-payload sanity bound: rejects absurd counts coming from a
/// corrupted length field before any allocation is attempted.
constexpr std::size_t kMaxPayload = std::size_t(1) << 32;

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void save_checkpoint(const std::string& path, const WavefunctionModel& model) {
  const std::string name = model.name();
  Header header;
  header.num_spins = model.num_spins();
  header.num_parameters = model.num_parameters();
  header.name_length = name.size();

  ByteWriter out;
  out.raw(&header, sizeof(header));
  out.raw(name.data(), name.size());
  const std::span<const Real> params = model.parameters();
  out.raw(params.data(), params.size() * sizeof(Real));
  out.u64(fnv1a64(params.data(), params.size() * sizeof(Real)));
  write_file_atomic(path, out.bytes.data(), out.bytes.size());
}

void load_checkpoint(const std::string& path, WavefunctionModel& model) {
  const std::vector<unsigned char> bytes = read_file(path);
  ByteReader in{bytes, path};

  Header header;
  in.raw(&header, sizeof(header));
  VQMC_REQUIRE(header.magic == kParamMagic,
               "checkpoint: '" + path + "' is not a vqmc checkpoint");
  VQMC_REQUIRE(header.num_spins == model.num_spins(),
               "checkpoint: spin count mismatch");
  VQMC_REQUIRE(header.num_parameters == model.num_parameters(),
               "checkpoint: parameter count mismatch");
  VQMC_REQUIRE(header.name_length < 256, "checkpoint: corrupt name field");

  std::string name(header.name_length, '\0');
  in.raw(name.data(), name.size());
  VQMC_REQUIRE(name == model.name(), "checkpoint: model kind mismatch ('" +
                                         name + "' vs '" + model.name() +
                                         "')");

  std::vector<Real> params(header.num_parameters);
  in.raw(params.data(), params.size() * sizeof(Real));
  const std::uint64_t checksum = in.u64();
  VQMC_REQUIRE(
      checksum == fnv1a64(params.data(), params.size() * sizeof(Real)),
      "checkpoint: checksum mismatch (corrupt file)");

  std::span<Real> target = model.parameters();
  std::copy(params.begin(), params.end(), target.begin());
}

void save_training_checkpoint(const std::string& path,
                              const TrainingSnapshot& snapshot) {
  ByteWriter out;
  out.u64(kTrainMagic);
  out.u64(kTrainVersion);
  out.string(snapshot.model_name);
  out.string(snapshot.optimizer_name);
  out.string(snapshot.sampler_name);
  out.u64(snapshot.num_spins);
  out.u64(snapshot.num_parameters);
  out.u64(std::uint64_t(snapshot.iteration));
  out.reals(snapshot.parameters);
  out.reals(snapshot.optimizer_state);
  out.words(snapshot.sampler_state);
  out.reals(snapshot.trainer_state);
  out.u64(fnv1a64(out.bytes.data(), out.bytes.size()));
  write_file_atomic(path, out.bytes.data(), out.bytes.size());
}

TrainingSnapshot load_training_checkpoint(const std::string& path) {
  const std::vector<unsigned char> bytes = read_file(path);
  ByteReader in{bytes, path};

  VQMC_REQUIRE(in.u64() == kTrainMagic,
               "checkpoint: '" + path + "' is not a vqmc training checkpoint");
  const std::uint64_t version = in.u64();
  VQMC_REQUIRE(version == kTrainVersion,
               "checkpoint: '" + path + "' has unsupported format version " +
                   std::to_string(version));

  TrainingSnapshot snapshot;
  snapshot.model_name = in.string();
  snapshot.optimizer_name = in.string();
  snapshot.sampler_name = in.string();
  snapshot.num_spins = in.u64();
  snapshot.num_parameters = in.u64();
  snapshot.iteration = std::int64_t(in.u64());
  snapshot.parameters = in.reals(kMaxPayload);
  snapshot.optimizer_state = in.reals(kMaxPayload);
  snapshot.sampler_state = in.words(kMaxPayload);
  snapshot.trainer_state = in.reals(kMaxPayload);

  // Structural truncation has been ruled out above; now the trailing
  // checksum authenticates the bits.
  VQMC_REQUIRE(in.remaining() == sizeof(std::uint64_t),
               "checkpoint: '" + path + "' is truncated (checksum missing)");
  const std::size_t payload = in.pos;
  const std::uint64_t checksum = in.u64();
  VQMC_REQUIRE(checksum == fnv1a64(bytes.data(), payload),
               "checkpoint: checksum mismatch (corrupt file)");
  return snapshot;
}

CheckpointKeeper::CheckpointKeeper(std::string base_path, int keep_last)
    : base_path_(std::move(base_path)), keep_last_(keep_last) {
  VQMC_REQUIRE(!base_path_.empty(), "checkpoint keeper: empty base path");
  VQMC_REQUIRE(keep_last_ >= 1, "checkpoint keeper: keep_last must be >= 1");
}

void CheckpointKeeper::write(const TrainingSnapshot& snapshot) {
  const std::string iter_path =
      base_path_ + ".iter" + std::to_string(snapshot.iteration);
  save_training_checkpoint(iter_path, snapshot);
  save_training_checkpoint(base_path_, snapshot);
  retained_.push_back(iter_path);
  while (retained_.size() > std::size_t(keep_last_)) {
    std::remove(retained_.front().c_str());
    retained_.erase(retained_.begin());
  }
}

}  // namespace vqmc
