#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace vqmc {

namespace {

constexpr std::uint64_t kMagic = 0x56514d43'43503031ULL;  // "VQMCCP01"

struct Header {
  std::uint64_t magic = kMagic;
  std::uint64_t num_spins = 0;
  std::uint64_t num_parameters = 0;
  std::uint64_t name_length = 0;
};

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void save_checkpoint(const std::string& path, const WavefunctionModel& model) {
  std::ofstream out(path, std::ios::binary);
  VQMC_REQUIRE(out.good(), "checkpoint: cannot open '" + path + "'");

  const std::string name = model.name();
  Header header;
  header.num_spins = model.num_spins();
  header.num_parameters = model.num_parameters();
  header.name_length = name.size();

  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(name.data(), std::streamsize(name.size()));
  const std::span<const Real> params = model.parameters();
  out.write(reinterpret_cast<const char*>(params.data()),
            std::streamsize(params.size() * sizeof(Real)));
  const std::uint64_t checksum =
      fnv1a64(params.data(), params.size() * sizeof(Real));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  VQMC_REQUIRE(out.good(), "checkpoint: write to '" + path + "' failed");
}

void load_checkpoint(const std::string& path, WavefunctionModel& model) {
  std::ifstream in(path, std::ios::binary);
  VQMC_REQUIRE(in.good(), "checkpoint: cannot open '" + path + "'");

  Header header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  VQMC_REQUIRE(in.good() && header.magic == kMagic,
               "checkpoint: '" + path + "' is not a vqmc checkpoint");
  VQMC_REQUIRE(header.num_spins == model.num_spins(),
               "checkpoint: spin count mismatch");
  VQMC_REQUIRE(header.num_parameters == model.num_parameters(),
               "checkpoint: parameter count mismatch");
  VQMC_REQUIRE(header.name_length < 256, "checkpoint: corrupt name field");

  std::string name(header.name_length, '\0');
  in.read(name.data(), std::streamsize(name.size()));
  VQMC_REQUIRE(in.good() && name == model.name(),
               "checkpoint: model kind mismatch ('" + name + "' vs '" +
                   model.name() + "')");

  std::vector<Real> params(header.num_parameters);
  in.read(reinterpret_cast<char*>(params.data()),
          std::streamsize(params.size() * sizeof(Real)));
  std::uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  VQMC_REQUIRE(in.good(), "checkpoint: truncated file");
  VQMC_REQUIRE(
      checksum == fnv1a64(params.data(), params.size() * sizeof(Real)),
      "checkpoint: checksum mismatch (corrupt file)");

  std::span<Real> target = model.parameters();
  std::copy(params.begin(), params.end(), target.begin());
}

}  // namespace vqmc
