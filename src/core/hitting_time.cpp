#include "core/hitting_time.hpp"

namespace vqmc {

HittingTimeResult measure_hitting_time(VqmcTrainer& trainer, Real target,
                                       const EvaluationScore& score,
                                       std::size_t eval_batch_size) {
  HittingTimeResult result;
  Matrix samples;
  for (int i = 0; i < trainer.config().iterations; ++i) {
    trainer.step();
    result.iterations = i + 1;
    // Evaluation (excluded from the timing, per Table 5's protocol — the
    // trainer only accumulates time inside step()).
    const EnergyEstimate est =
        trainer.evaluate_with_samples(eval_batch_size, samples);
    result.final_score = score(samples, est);
    result.train_seconds = trainer.training_seconds();
    if (result.final_score >= target) {
      result.reached = true;
      return result;
    }
  }
  return result;
}

}  // namespace vqmc
