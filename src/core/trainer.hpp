#pragma once

/// \file trainer.hpp
/// \brief The VQMC training loop (right panel of Figure 1): sample ->
/// measure local energies -> estimate gradient (optionally SR-preconditioned)
/// -> update parameters.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/health.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"
#include "core/estimators.hpp"
#include "core/local_energy.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "nn/wavefunction.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "optim/stochastic_reconfiguration.hpp"
#include "sampler/sampler.hpp"

namespace vqmc {

/// Training configuration; defaults follow Section 5.1.
struct TrainerConfig {
  int iterations = 300;
  std::size_t batch_size = 1024;
  bool use_sr = false;
  SrConfig sr;
  /// Rows per batched wavefunction evaluation in the local-energy engine.
  std::size_t local_energy_chunk = 1024;
  /// Optional learning-rate schedule (borrowed; must outlive the trainer).
  /// nullptr reproduces the paper's protocol (no scheduler).
  const LrSchedule* lr_schedule = nullptr;
  /// Clip the (possibly SR-preconditioned) update to this Euclidean norm
  /// before the optimizer step; 0 disables (the paper's setting).
  Real max_grad_norm = 0;
  /// Numerical run-health guards (non-finite local energies / gradients /
  /// SR updates, optional divergence detection) and the recovery policy.
  /// Defaults: fail fast (Throw) on non-finite values, divergence detection
  /// off — healthy runs are bit-identical to a guard-free trainer.
  health::GuardConfig guard;
  /// Periodic training checkpoints (DESIGN.md §5c): every
  /// `checkpoint_every` completed iterations the full training state is
  /// written atomically under `checkpoint_path` (plus a
  /// `<path>.iter<N>` history pruned to `checkpoint_keep_last` entries).
  /// Disabled when the path is empty or the period is 0.
  std::string checkpoint_path;
  int checkpoint_every = 0;
  int checkpoint_keep_last = 3;
};

/// Where one iteration's wall time went (seconds, DESIGN.md §5d). The
/// phases partition the step: sampling, local-energy measurement, energy
/// gradient, SR preconditioning, gradient allreduce (distributed runs
/// only), optimizer update, periodic checkpoint write.
struct PhaseBreakdown {
  double sample = 0;
  double local_energy = 0;
  double gradient = 0;
  double sr_solve = 0;
  double allreduce = 0;
  double optimizer = 0;
  double checkpoint = 0;

  [[nodiscard]] double total() const {
    return sample + local_energy + gradient + sr_solve + allreduce +
           optimizer + checkpoint;
  }
};

/// Per-iteration metrics (the red/blue curves of Figure 2).
struct IterationMetrics {
  int iteration = 0;
  Real energy = 0;       ///< batch mean local energy (training loss)
  Real std_dev = 0;      ///< batch std of the stochastic objective
  Real best_energy = 0;  ///< lowest local energy seen so far in training
  double seconds = 0;    ///< cumulative training wall time
  /// Cumulative health-guard trips up to and including this iteration.
  /// On a tripped iteration `energy`/`std_dev` are NaN when the batch local
  /// energies were non-finite.
  std::uint64_t guard_trips = 0;
  /// Reason of the most recent guard trip; empty while the run is healthy.
  std::string guard_reason;
  /// Attributed wall time of this iteration (Table 1 / Eq. 14 accounting).
  PhaseBreakdown phases;
};

/// Single-device VQMC trainer.
///
/// The trainer borrows (does not own) the Hamiltonian, model, sampler and
/// optimizer so callers can compose them freely; all four must outlive it.
class VqmcTrainer {
 public:
  VqmcTrainer(const Hamiltonian& hamiltonian, WavefunctionModel& model,
              Sampler& sampler, Optimizer& optimizer, TrainerConfig config);

  /// Run one training iteration and return its metrics.
  IterationMetrics step();

  /// Run config.iterations iterations (appending to the history).
  void run();

  /// Run until `stop(metrics)` returns true or config.iterations is hit.
  void run_until(const std::function<bool(const IterationMetrics&)>& stop);

  /// Mean local energy of a fresh evaluation batch (not recorded in the
  /// history; mirrors the paper's 1024-sample test evaluation).
  [[nodiscard]] EnergyEstimate evaluate(std::size_t eval_batch_size);

  /// Draw an evaluation batch and also return the configurations (for cut
  /// extraction in Max-Cut experiments).
  EnergyEstimate evaluate_with_samples(std::size_t eval_batch_size,
                                       Matrix& samples);

  [[nodiscard]] const std::vector<IterationMetrics>& history() const {
    return history_;
  }
  [[nodiscard]] const TrainerConfig& config() const { return config_; }
  [[nodiscard]] LocalEnergyEngine& local_energy_engine() { return engine_; }

  /// Cumulative training wall-time in seconds (excludes evaluate() calls).
  [[nodiscard]] double training_seconds() const { return training_seconds_; }

  /// Run-health tally: guard trips by cause and the recoveries applied.
  [[nodiscard]] const health::HealthCounters& health_counters() const {
    return health_;
  }

  /// Capture the full mutable training state at the current iteration
  /// boundary: model parameters, optimizer moments, sampler RNG/chain state,
  /// iteration counter and guard state. Restoring it into an identically
  /// configured trainer makes the continuation bit-identical to a run that
  /// was never interrupted.
  [[nodiscard]] TrainingSnapshot snapshot() const;

  /// Inverse of snapshot(). Verifies the snapshot's identity fields (model /
  /// optimizer / sampler kinds and sizes) against this trainer and throws
  /// vqmc::Error on any mismatch.
  void restore(const TrainingSnapshot& snapshot);

 private:
  /// Apply the configured guard policy after a trip; throws under Throw.
  void handle_guard_trip(const std::string& reason);
  const Hamiltonian& hamiltonian_;
  WavefunctionModel& model_;
  Sampler& sampler_;
  Optimizer& optimizer_;
  TrainerConfig config_;
  LocalEnergyEngine engine_;
  StochasticReconfiguration sr_;

  Matrix batch_;
  Vector local_energies_;
  Vector gradient_;
  Vector natural_gradient_;
  Matrix per_sample_o_;
  /// Model evaluation workspace (null for models without one), threaded
  /// through the gradient phases so their scratch survives iterations.
  std::unique_ptr<WavefunctionModel::Workspace> model_ws_;

  std::vector<IterationMetrics> history_;
  Real base_learning_rate_ = 0;
  int iteration_ = 0;
  Real best_energy_ = 0;
  bool have_best_ = false;
  double training_seconds_ = 0;

  health::DivergenceDetector divergence_;
  health::HealthCounters health_;
  /// Last parameters observed to produce finite local energies (only
  /// maintained under RollbackAndBackoff).
  Vector snapshot_;
  bool have_snapshot_ = false;

  /// Periodic-checkpoint bookkeeping; null unless configured.
  std::unique_ptr<CheckpointKeeper> keeper_;
};

}  // namespace vqmc
