#include "core/estimators.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels.hpp"
#include "tensor/vector.hpp"

namespace vqmc {

EnergyEstimate estimate_energy(std::span<const Real> local_energies) {
  VQMC_REQUIRE(!local_energies.empty(), "estimate_energy: empty batch");
  EnergyEstimate est;
  est.mean = mean(local_energies);
  est.variance = variance(local_energies);
  est.std_dev = std::sqrt(est.variance);
  est.std_error = est.std_dev / std::sqrt(Real(local_energies.size()));
  est.min = *std::min_element(local_energies.begin(), local_energies.end());
  return est;
}

void accumulate_energy_gradient(const WavefunctionModel& model,
                                const Matrix& batch,
                                std::span<const Real> local_energies,
                                std::span<Real> grad,
                                WavefunctionModel::Workspace* ws) {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(local_energies.size() == bs,
               "energy gradient: local energy size mismatch");
  const Real l_bar = mean(local_energies);
  Vector coeff(bs);
  for (std::size_t k = 0; k < bs; ++k)
    coeff[k] = 2 * (local_energies[k] - l_bar) / Real(bs);
  model.accumulate_log_psi_gradient_ws(batch, coeff.span(), grad, ws);
}

}  // namespace vqmc
