#include "core/factory.hpp"

#include "common/error.hpp"
#include "nn/deep_made.hpp"
#include "nn/made.hpp"
#include "nn/rbm.hpp"
#include "nn/rnn.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "sampler/fast_made_sampler.hpp"

namespace vqmc {

std::unique_ptr<WavefunctionModel> make_model(const std::string& kind,
                                              std::size_t n, std::size_t hidden,
                                              std::uint64_t seed) {
  if (kind == "MADE") {
    const std::size_t h = hidden == 0 ? made_default_hidden(n) : hidden;
    auto model = std::make_unique<Made>(n, h);
    model->initialize(seed);
    return model;
  }
  if (kind == "RBM") {
    const std::size_t h = hidden == 0 ? n : hidden;
    auto model = std::make_unique<Rbm>(n, h);
    model->initialize(seed);
    return model;
  }
  if (kind == "DEEPMADE" || kind == "DeepMADE") {
    const std::size_t h = hidden == 0 ? made_default_hidden(n) : hidden;
    auto model = std::make_unique<DeepMade>(n, h, 2);
    model->initialize(seed);
    return model;
  }
  if (kind == "RNN") {
    const std::size_t h = hidden == 0 ? made_default_hidden(n) : hidden;
    auto model = std::make_unique<RnnWavefunction>(n, h);
    model->initialize(seed);
    return model;
  }
  throw Error("unknown model kind '" + kind +
              "' (expected MADE, DeepMADE, RNN or RBM)");
}

std::unique_ptr<Sampler> make_sampler(const std::string& kind,
                                      const WavefunctionModel& model,
                                      std::uint64_t seed,
                                      MetropolisConfig mcmc) {
  if (kind == "AUTO") {
    const auto* ar = dynamic_cast<const AutoregressiveModel*>(&model);
    VQMC_REQUIRE(ar != nullptr,
                 "AUTO sampling requires an autoregressive model");
    return std::make_unique<AutoregressiveSampler>(*ar, seed);
  }
  if (kind == "AUTO-fast") {
    const auto* made = dynamic_cast<const Made*>(&model);
    VQMC_REQUIRE(made != nullptr,
                 "AUTO-fast sampling is specialized to the MADE architecture");
    return std::make_unique<FastMadeSampler>(*made, seed);
  }
  if (kind == "MCMC") {
    if (mcmc.burn_in == 0) mcmc.burn_in = paper_burn_in(model.num_spins());
    mcmc.seed = seed;
    return std::make_unique<MetropolisSampler>(model, mcmc);
  }
  throw Error("unknown sampler kind '" + kind +
              "' (expected AUTO, AUTO-fast or MCMC)");
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& kind) {
  if (kind == "SGD" || kind == "SGD+SR") return make_sgd(0.1);
  if (kind == "ADAM" || kind == "ADAM+SR") return make_adam(0.01);
  throw Error("unknown optimizer kind '" + kind + "'");
}

bool optimizer_label_uses_sr(const std::string& kind) {
  return kind.size() >= 3 && kind.substr(kind.size() - 3) == "+SR";
}

}  // namespace vqmc
