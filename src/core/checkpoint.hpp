#pragma once

/// \file checkpoint.hpp
/// \brief Checkpointing: crash-safe parameter snapshots and full
/// training-state checkpoint/restart.
///
/// Two formats live here:
///
///  * **Parameter checkpoints** ("VQMCCP01"): the flat parameter vector with
///    model identity (name, spin count, parameter count) and a FNV-1a
///    checksum — enough to transplant trained weights.
///  * **Training checkpoints** ("VQMCTS01"): the *entire* mutable training
///    state — parameters, optimizer moments, sampler RNG/chain state,
///    iteration counter and guard state — so a killed-and-resumed run is
///    bit-identical to an uninterrupted one (DESIGN.md §5c). This is what
///    the multi-hour paper-scale runs (Table 7) need to survive preemption.
///
/// Both writers are crash-safe: the record is serialized in memory, written
/// to `<path>.tmp`, fsync'd and atomically renamed over `<path>`, so a crash
/// mid-write can never destroy the previous good checkpoint. Both loaders
/// reject truncation explicitly (a short read is reported as truncation, not
/// as a checksum mismatch) and verify every identity field against the
/// target so a checkpoint can never be silently applied to the wrong
/// architecture. `CheckpointKeeper` adds periodic-write bookkeeping with
/// last-k retention.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/wavefunction.hpp"

namespace vqmc {

/// Write `model`'s parameters to `path` (atomic tmp+fsync+rename). Throws
/// vqmc::Error on I/O failure.
void save_checkpoint(const std::string& path, const WavefunctionModel& model);

/// Restore parameters from `path` into `model`. Throws vqmc::Error if the
/// file is missing/truncated/corrupt or was written for a different
/// architecture (mismatched name, spin count or parameter count).
void load_checkpoint(const std::string& path, WavefunctionModel& model);

/// FNV-1a 64-bit hash of a byte range (exposed for tests).
std::uint64_t fnv1a64(const void* data, std::size_t bytes);

/// Fsync the directory containing `path`, making a just-renamed file's
/// directory entry durable (on journaled filesystems a rename alone can be
/// rolled back by a power loss until its directory is synced). Returns
/// false when the directory cannot be opened or synced. Every checkpoint
/// writer calls this after its atomic rename; exposed for tests.
bool fsync_parent_directory(const std::string& path);

/// The complete mutable state of a training run at an iteration boundary.
/// The identity fields (names and sizes) are verified on restore; the state
/// vectors use each component's own serialization layout (see
/// Optimizer::serialize_state, Sampler::serialize_state,
/// VqmcTrainer::snapshot).
struct TrainingSnapshot {
  std::string model_name;
  std::string optimizer_name;
  std::string sampler_name;
  std::uint64_t num_spins = 0;
  std::uint64_t num_parameters = 0;
  std::int64_t iteration = 0;
  std::vector<Real> parameters;
  std::vector<Real> optimizer_state;
  std::vector<std::uint64_t> sampler_state;
  std::vector<Real> trainer_state;
};

/// Serialize `snapshot` to `path` atomically (tmp+fsync+rename). Throws
/// vqmc::Error on I/O failure.
void save_training_checkpoint(const std::string& path,
                              const TrainingSnapshot& snapshot);

/// Parse a training checkpoint. Throws vqmc::Error on a missing file, bad
/// magic/version, truncation (detected structurally, before the checksum is
/// consulted) or checksum mismatch.
TrainingSnapshot load_training_checkpoint(const std::string& path);

/// Periodic-checkpoint bookkeeping: every write() stores the snapshot both
/// under `<base>` (the always-current resume point) and under
/// `<base>.iter<N>` (history), pruning history beyond the newest
/// `keep_last` entries. All writes are atomic, so a crash between the two
/// writes leaves at worst a stale-but-valid `<base>`.
class CheckpointKeeper {
 public:
  explicit CheckpointKeeper(std::string base_path, int keep_last = 3);

  /// Persist `snapshot`; prunes the oldest retained history file when the
  /// retention budget is exceeded.
  void write(const TrainingSnapshot& snapshot);

  [[nodiscard]] const std::string& base_path() const { return base_path_; }

  /// History files currently retained (oldest first).
  [[nodiscard]] const std::vector<std::string>& retained() const {
    return retained_;
  }

 private:
  std::string base_path_;
  int keep_last_;
  std::vector<std::string> retained_;
};

}  // namespace vqmc
