#pragma once

/// \file checkpoint.hpp
/// \brief Model checkpointing: save/restore the flat parameter vector with
/// an integrity-checked binary header.
///
/// The multi-hour paper-scale runs (Table 7's 1000+ second trainings, times
/// 300 iterations, times sweep points) need restartability; this is the
/// minimal robust format: magic + version + model identity (name, spin
/// count, parameter count) + raw little-endian doubles + a FNV-1a checksum.
/// Loading verifies every field against the target model so a checkpoint
/// can never be silently applied to the wrong architecture.

#include <cstdint>
#include <string>

#include "nn/wavefunction.hpp"

namespace vqmc {

/// Write `model`'s parameters to `path`. Throws vqmc::Error on I/O failure.
void save_checkpoint(const std::string& path, const WavefunctionModel& model);

/// Restore parameters from `path` into `model`. Throws vqmc::Error if the
/// file is missing/corrupt or was written for a different architecture
/// (mismatched name, spin count or parameter count).
void load_checkpoint(const std::string& path, WavefunctionModel& model);

/// FNV-1a 64-bit hash of a byte range (exposed for tests).
std::uint64_t fnv1a64(const void* data, std::size_t bytes);

}  // namespace vqmc
