#pragma once

/// \file reporting.hpp
/// \brief Export of training histories for external analysis/plotting.
///
/// The bench binaries print paper-style tables; downstream users usually
/// want the raw per-iteration series instead (e.g. to regenerate Figure 2
/// in their own plotting stack). These helpers serialize the trainer's
/// MetricsHistory as CSV or JSON.

#include <string>
#include <vector>

#include "core/trainer.hpp"

namespace vqmc {

/// CSV with header
/// `iteration,energy,std_dev,best_energy,seconds,guard_trips,guard_reason,`
/// `sample_seconds,local_energy_seconds,gradient_seconds,sr_seconds,`
/// `allreduce_seconds,optimizer_seconds,checkpoint_seconds` — the trailing
/// seven columns are the iteration's phase breakdown (DESIGN.md §5d).
std::string metrics_to_csv(const std::vector<IterationMetrics>& history);

/// JSON array of objects with the same fields; the phase breakdown is a
/// nested `"phases"` object. Numbers are emitted with enough digits to
/// round-trip doubles; non-finite energies (guard-tripped iterations)
/// serialize as null.
std::string metrics_to_json(const std::vector<IterationMetrics>& history);

/// Write `content` to `path`, throwing vqmc::Error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace vqmc
