#include "core/reporting.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace vqmc {

namespace {

void emit_number(std::ostringstream& oss, double value) {
  oss.precision(std::numeric_limits<double>::max_digits10);
  oss << value;
}

/// JSON has no NaN/inf literals; guard-tripped iterations record NaN
/// energies, which serialize as null.
void emit_json_number(std::ostringstream& oss, double value) {
  if (std::isfinite(value)) {
    emit_number(oss, value);
  } else {
    oss << "null";
  }
}

/// Guard reasons are free-form text; keep them one-CSV-cell / one-JSON-string
/// safe without pulling in a full escaper.
std::string sanitize_reason(const std::string& reason) {
  std::string out;
  out.reserve(reason.size());
  for (const char c : reason) {
    if (c == ',' || c == ';') {
      out += ';';
    } else if (c == '"' || c == '\\') {
      out += '\'';
    } else if (c == '\n' || c == '\r') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string metrics_to_csv(const std::vector<IterationMetrics>& history) {
  std::ostringstream oss;
  oss << "iteration,energy,std_dev,best_energy,seconds,guard_trips,"
         "guard_reason,sample_seconds,local_energy_seconds,gradient_seconds,"
         "sr_seconds,allreduce_seconds,optimizer_seconds,checkpoint_seconds\n";
  for (const IterationMetrics& m : history) {
    oss << m.iteration << ',';
    emit_number(oss, m.energy);
    oss << ',';
    emit_number(oss, m.std_dev);
    oss << ',';
    emit_number(oss, m.best_energy);
    oss << ',';
    emit_number(oss, m.seconds);
    oss << ',' << m.guard_trips << ',' << sanitize_reason(m.guard_reason);
    const double phase_values[] = {
        m.phases.sample,    m.phases.local_energy, m.phases.gradient,
        m.phases.sr_solve,  m.phases.allreduce,    m.phases.optimizer,
        m.phases.checkpoint};
    for (const double v : phase_values) {
      oss << ',';
      emit_number(oss, v);
    }
    oss << '\n';
  }
  return oss.str();
}

std::string metrics_to_json(const std::vector<IterationMetrics>& history) {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < history.size(); ++i) {
    const IterationMetrics& m = history[i];
    if (i) oss << ",";
    oss << "\n  {\"iteration\": " << m.iteration << ", \"energy\": ";
    emit_json_number(oss, m.energy);
    oss << ", \"std_dev\": ";
    emit_json_number(oss, m.std_dev);
    oss << ", \"best_energy\": ";
    emit_json_number(oss, m.best_energy);
    oss << ", \"seconds\": ";
    emit_number(oss, m.seconds);
    oss << ", \"guard_trips\": " << m.guard_trips << ", \"guard_reason\": \""
        << sanitize_reason(m.guard_reason) << "\"";
    oss << ", \"phases\": {\"sample\": ";
    emit_number(oss, m.phases.sample);
    oss << ", \"local_energy\": ";
    emit_number(oss, m.phases.local_energy);
    oss << ", \"gradient\": ";
    emit_number(oss, m.phases.gradient);
    oss << ", \"sr\": ";
    emit_number(oss, m.phases.sr_solve);
    oss << ", \"allreduce\": ";
    emit_number(oss, m.phases.allreduce);
    oss << ", \"optimizer\": ";
    emit_number(oss, m.phases.optimizer);
    oss << ", \"checkpoint\": ";
    emit_number(oss, m.phases.checkpoint);
    oss << "}}";
  }
  oss << (history.empty() ? "]" : "\n]");
  oss << "\n";
  return oss.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  VQMC_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << content;
  VQMC_REQUIRE(out.good(), "write to '" + path + "' failed");
}

}  // namespace vqmc
