#include "core/reporting.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace vqmc {

namespace {

void emit_number(std::ostringstream& oss, double value) {
  oss.precision(std::numeric_limits<double>::max_digits10);
  oss << value;
}

}  // namespace

std::string metrics_to_csv(const std::vector<IterationMetrics>& history) {
  std::ostringstream oss;
  oss << "iteration,energy,std_dev,best_energy,seconds\n";
  for (const IterationMetrics& m : history) {
    oss << m.iteration << ',';
    emit_number(oss, m.energy);
    oss << ',';
    emit_number(oss, m.std_dev);
    oss << ',';
    emit_number(oss, m.best_energy);
    oss << ',';
    emit_number(oss, m.seconds);
    oss << '\n';
  }
  return oss.str();
}

std::string metrics_to_json(const std::vector<IterationMetrics>& history) {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < history.size(); ++i) {
    const IterationMetrics& m = history[i];
    if (i) oss << ",";
    oss << "\n  {\"iteration\": " << m.iteration << ", \"energy\": ";
    emit_number(oss, m.energy);
    oss << ", \"std_dev\": ";
    emit_number(oss, m.std_dev);
    oss << ", \"best_energy\": ";
    emit_number(oss, m.best_energy);
    oss << ", \"seconds\": ";
    emit_number(oss, m.seconds);
    oss << "}";
  }
  oss << (history.empty() ? "]" : "\n]");
  oss << "\n";
  return oss.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  VQMC_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << content;
  VQMC_REQUIRE(out.good(), "write to '" + path + "' failed");
}

}  // namespace vqmc
