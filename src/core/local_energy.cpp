#include "core/local_energy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vqmc {

LocalEnergyEngine::LocalEnergyEngine(const Hamiltonian& hamiltonian,
                                     const WavefunctionModel& model,
                                     std::size_t chunk_size,
                                     Real max_log_ratio)
    : hamiltonian_(hamiltonian),
      model_(model),
      chunk_size_(std::max<std::size_t>(1, chunk_size)),
      max_log_ratio_(max_log_ratio),
      model_ws_(model.make_workspace()) {
  VQMC_REQUIRE(hamiltonian_.num_spins() == model_.num_spins(),
               "local energy: Hamiltonian and model disagree on spin count");
  VQMC_REQUIRE(max_log_ratio_ > 0, "local energy: clamp must be positive");
}

void LocalEnergyEngine::flush_chunk(std::span<Real> out) {
  if (chunk_fill_ == 0) return;
  // Evaluate log psi at the buffered connected configurations. The buffer
  // may be partially filled; evaluate a view of the filled prefix.
  Matrix view(chunk_fill_, chunk_configs_.cols());
  std::copy_n(chunk_configs_.data(), chunk_fill_ * chunk_configs_.cols(),
              view.data());
  if (chunk_log_psi_.size() != chunk_fill_) chunk_log_psi_ = Vector(chunk_fill_);
  model_.log_psi_ws(view, chunk_log_psi_.span(), model_ws_.get());
  ++forward_passes_;
  for (std::size_t r = 0; r < chunk_fill_; ++r) {
    const std::size_t k = chunk_sample_[r];
    const Real log_ratio = std::clamp(chunk_log_psi_[r] - log_psi_x_[k],
                                      -max_log_ratio_, max_log_ratio_);
    out[k] += chunk_value_[r] * std::exp(log_ratio);
  }
  chunk_fill_ = 0;
}

void LocalEnergyEngine::compute(const Matrix& batch, std::span<Real> out) {
  const std::size_t bs = batch.rows();
  const std::size_t n = batch.cols();
  VQMC_REQUIRE(out.size() == bs, "local energy: output size mismatch");
  VQMC_REQUIRE(n == hamiltonian_.num_spins(),
               "local energy: batch has wrong spin count");

  // Diagonal part (always needed).
  for (std::size_t k = 0; k < bs; ++k)
    out[k] = hamiltonian_.diagonal(batch.row(k));

  if (hamiltonian_.is_diagonal()) return;

  // log psi at the sample configurations (denominator of the ratios).
  if (log_psi_x_.size() != bs) log_psi_x_ = Vector(bs);
  model_.log_psi_ws(batch, log_psi_x_.span(), model_ws_.get());
  ++forward_passes_;

  // Gather connected configurations into fixed-size chunks.
  if (chunk_configs_.rows() != chunk_size_ || chunk_configs_.cols() != n) {
    chunk_configs_ = Matrix(chunk_size_, n);
    chunk_sample_.resize(chunk_size_);
    chunk_value_.resize(chunk_size_);
  }

  for (std::size_t k = 0; k < bs; ++k) {
    const auto x = batch.row(k);
    hamiltonian_.for_each_off_diagonal(
        x, [&](std::span<const std::size_t> flips, Real value) {
          auto dst = chunk_configs_.row(chunk_fill_);
          std::copy(x.begin(), x.end(), dst.begin());
          for (std::size_t site : flips) dst[site] = 1 - dst[site];
          chunk_sample_[chunk_fill_] = k;
          chunk_value_[chunk_fill_] = value;
          if (++chunk_fill_ == chunk_size_) flush_chunk(out);
        });
  }
  flush_chunk(out);
}

}  // namespace vqmc
