#pragma once

/// \file hitting_time.hpp
/// \brief Time-to-target measurement (Table 5 of the paper).
///
/// Trains a model and, after each iteration, draws an evaluation batch and
/// scores it; stops when the score reaches the target.  Per the paper,
/// evaluation time is excluded from the reported hitting time.

#include <functional>
#include <optional>

#include "core/trainer.hpp"

namespace vqmc {

/// Scores an evaluation batch; higher is better (e.g. mean cut value).
using EvaluationScore =
    std::function<Real(const Matrix& samples, const EnergyEstimate& estimate)>;

struct HittingTimeResult {
  bool reached = false;
  int iterations = 0;        ///< training iterations executed
  double train_seconds = 0;  ///< training-only time (paper's metric)
  Real final_score = 0;
};

/// Train until `score(...) >= target` or the trainer's iteration budget runs
/// out.  `eval_batch_size` samples are drawn for each evaluation.
HittingTimeResult measure_hitting_time(VqmcTrainer& trainer, Real target,
                                       const EvaluationScore& score,
                                       std::size_t eval_batch_size);

}  // namespace vqmc
