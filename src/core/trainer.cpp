#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

VqmcTrainer::VqmcTrainer(const Hamiltonian& hamiltonian,
                         WavefunctionModel& model, Sampler& sampler,
                         Optimizer& optimizer, TrainerConfig config)
    : hamiltonian_(hamiltonian),
      model_(model),
      sampler_(sampler),
      optimizer_(optimizer),
      config_(config),
      engine_(hamiltonian, model, config.local_energy_chunk),
      sr_(config.sr) {
  VQMC_REQUIRE(config_.iterations >= 0, "trainer: iterations must be >= 0");
  VQMC_REQUIRE(config_.batch_size >= 1, "trainer: batch size must be >= 1");
  const std::size_t n = hamiltonian_.num_spins();
  batch_ = Matrix(config_.batch_size, n);
  local_energies_ = Vector(config_.batch_size);
  gradient_ = Vector(model_.num_parameters());
  if (config_.use_sr) {
    natural_gradient_ = Vector(model_.num_parameters());
    per_sample_o_ = Matrix(config_.batch_size, model_.num_parameters());
  }
  VQMC_REQUIRE(config_.max_grad_norm >= 0,
               "trainer: max_grad_norm must be non-negative");
  base_learning_rate_ = optimizer_.learning_rate();
}

IterationMetrics VqmcTrainer::step() {
  Timer timer;

  // 1. Sample a batch from the current model distribution.
  sampler_.sample(batch_);

  // 2. Local energies (Eq. 3).
  engine_.compute(batch_, local_energies_.span());
  const EnergyEstimate est = estimate_energy(local_energies_.span());

  // 3. Energy gradient (Eq. 5).
  gradient_.fill(0);
  accumulate_energy_gradient(model_, batch_, local_energies_.span(),
                             gradient_.span());

  // 4. Optional SR preconditioning, clipping and schedule, then the update.
  std::span<Real> update = gradient_.span();
  if (config_.use_sr) {
    model_.log_psi_gradient_per_sample(batch_, per_sample_o_);
    sr_.precondition(per_sample_o_, gradient_.span(),
                     natural_gradient_.span());
    update = natural_gradient_.span();
  }
  if (config_.max_grad_norm > 0) {
    Real norm2 = 0;
    for (Real v : update) norm2 += v * v;
    const Real norm = std::sqrt(norm2);
    if (norm > config_.max_grad_norm)
      scale(update, config_.max_grad_norm / norm);
  }
  if (config_.lr_schedule != nullptr) {
    optimizer_.set_learning_rate(base_learning_rate_ *
                                 config_.lr_schedule->multiplier(iteration_));
  }
  optimizer_.step(model_.parameters(), update);

  if (!have_best_ || est.min < best_energy_) {
    best_energy_ = est.min;
    have_best_ = true;
  }

  training_seconds_ += timer.seconds();
  IterationMetrics metrics;
  metrics.iteration = iteration_++;
  metrics.energy = est.mean;
  metrics.std_dev = est.std_dev;
  metrics.best_energy = best_energy_;
  metrics.seconds = training_seconds_;
  history_.push_back(metrics);
  return metrics;
}

void VqmcTrainer::run() {
  for (int i = 0; i < config_.iterations; ++i) step();
}

void VqmcTrainer::run_until(
    const std::function<bool(const IterationMetrics&)>& stop) {
  for (int i = 0; i < config_.iterations; ++i) {
    if (stop(step())) return;
  }
}

EnergyEstimate VqmcTrainer::evaluate(std::size_t eval_batch_size) {
  Matrix samples;
  return evaluate_with_samples(eval_batch_size, samples);
}

EnergyEstimate VqmcTrainer::evaluate_with_samples(std::size_t eval_batch_size,
                                                  Matrix& samples) {
  VQMC_REQUIRE(eval_batch_size >= 1, "trainer: eval batch must be >= 1");
  samples = Matrix(eval_batch_size, hamiltonian_.num_spins());
  sampler_.sample(samples);
  Vector energies(eval_batch_size);
  engine_.compute(samples, energies.span());
  return estimate_energy(energies.span());
}

}  // namespace vqmc
