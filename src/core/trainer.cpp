#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/jsonl.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

namespace {

/// Feed the per-iteration phase breakdown into the thread-current metrics
/// registry (merged across ranks in distributed runs; see DESIGN.md §5d).
void record_phase_metrics(const PhaseBreakdown& phases) {
  if (!telemetry::enabled()) return;
  telemetry::MetricsRegistry& registry = telemetry::metrics();
  registry.counter("trainer.iterations").add();
  registry.histogram("phase.sample_seconds").observe(phases.sample);
  registry.histogram("phase.local_energy_seconds")
      .observe(phases.local_energy);
  registry.histogram("phase.gradient_seconds").observe(phases.gradient);
  if (phases.sr_solve > 0)
    registry.histogram("phase.sr_seconds").observe(phases.sr_solve);
  if (phases.allreduce > 0)
    registry.histogram("phase.allreduce_seconds").observe(phases.allreduce);
  registry.histogram("phase.optimizer_seconds").observe(phases.optimizer);
  if (phases.checkpoint > 0)
    registry.histogram("phase.checkpoint_seconds")
        .observe(phases.checkpoint);
}

/// Append this iteration to the crash-evidence ring (DESIGN.md §5i).
void record_flight(const IterationMetrics& metrics) {
  if (!telemetry::enabled()) return;
  telemetry::FlightRecord record;
  record.iteration = metrics.iteration;
  record.rank = std::max(0, log_rank());
  record.live_ranks = 1;
  record.wall_us = telemetry::now_us();
  record.energy = double(metrics.energy);
  record.guard_trips = metrics.guard_trips;
  record.sample_seconds = metrics.phases.sample;
  record.local_energy_seconds = metrics.phases.local_energy;
  record.gradient_seconds = metrics.phases.gradient;
  record.sr_seconds = metrics.phases.sr_solve;
  record.allreduce_seconds = metrics.phases.allreduce;
  record.optimizer_seconds = metrics.phases.optimizer;
  record.comm_wait_seconds = metrics.phases.allreduce;
  telemetry::FlightRecorder::instance().record(record);
}

}  // namespace

VqmcTrainer::VqmcTrainer(const Hamiltonian& hamiltonian,
                         WavefunctionModel& model, Sampler& sampler,
                         Optimizer& optimizer, TrainerConfig config)
    : hamiltonian_(hamiltonian),
      model_(model),
      sampler_(sampler),
      optimizer_(optimizer),
      config_(config),
      engine_(hamiltonian, model, config.local_energy_chunk),
      sr_(config.sr) {
  VQMC_REQUIRE(config_.iterations >= 0, "trainer: iterations must be >= 0");
  VQMC_REQUIRE(config_.batch_size >= 1, "trainer: batch size must be >= 1");
  const std::size_t n = hamiltonian_.num_spins();
  batch_ = Matrix(config_.batch_size, n);
  local_energies_ = Vector(config_.batch_size);
  gradient_ = Vector(model_.num_parameters());
  if (config_.use_sr) {
    natural_gradient_ = Vector(model_.num_parameters());
    per_sample_o_ = Matrix(config_.batch_size, model_.num_parameters());
  }
  model_ws_ = model_.make_workspace();
  VQMC_REQUIRE(config_.max_grad_norm >= 0,
               "trainer: max_grad_norm must be non-negative");
  VQMC_REQUIRE(config_.guard.backoff_factor > 0 &&
                   config_.guard.backoff_factor <= 1,
               "trainer: guard backoff factor must be in (0, 1]");
  base_learning_rate_ = optimizer_.learning_rate();
  divergence_ = health::DivergenceDetector(config_.guard);
  if (config_.guard.policy == health::GuardPolicy::RollbackAndBackoff)
    snapshot_ = Vector(model_.num_parameters());
  VQMC_REQUIRE(config_.checkpoint_every >= 0,
               "trainer: checkpoint_every must be >= 0");
  if (!config_.checkpoint_path.empty() && config_.checkpoint_every > 0) {
    keeper_ = std::make_unique<CheckpointKeeper>(
        config_.checkpoint_path, config_.checkpoint_keep_last);
  }
}

void VqmcTrainer::handle_guard_trip(const std::string& reason) {
  ++health_.guard_trips;
  health_.last_trip_reason = reason;
  telemetry::jsonl_event(
      "guard_trip",
      {{"reason", reason}, {"trips", health_.guard_trips}});
  if (telemetry::enabled())
    telemetry::metrics().counter("trainer.guard_trips").add();
  if (config_.guard.policy != health::GuardPolicy::Throw)
    log_warn("trainer: health guard tripped at iteration ", iteration_, ": ",
             reason);
  switch (config_.guard.policy) {
    case health::GuardPolicy::Throw:
      throw Error("trainer: health guard tripped at iteration " +
                  std::to_string(iteration_) + ": " + reason);
    case health::GuardPolicy::SkipIteration:
      ++health_.skipped_iterations;
      break;
    case health::GuardPolicy::RollbackAndBackoff: {
      ++health_.rollbacks;
      if (have_snapshot_) {
        std::span<Real> params = model_.parameters();
        std::copy(snapshot_.span().begin(), snapshot_.span().end(),
                  params.begin());
      }
      base_learning_rate_ *= config_.guard.backoff_factor;
      optimizer_.set_learning_rate(base_learning_rate_);
      divergence_.reset_streak();
      break;
    }
  }
}

IterationMetrics VqmcTrainer::step() {
  telemetry::set_iteration(iteration_);
  telemetry::Span iteration_span("iteration");
  Timer timer;
  PhaseBreakdown phases;
  Timer phase_timer;

  // 1. Sample a batch from the current model distribution.
  {
    TELEMETRY_SPAN("sample");
    // Thread the trainer's model workspace through: the batched conditional
    // engine then shares the forward pass's scratch (zero steady-state
    // allocations in the sampling phase).
    sampler_.sample_ws(batch_, model_ws_.get());
  }
  phases.sample = phase_timer.seconds();

  // 2. Local energies (Eq. 3), guarded: a single NaN/inf local energy must
  // not reach the gradient, the optimizer or the metrics unnoticed.
  phase_timer.reset();
  bool tripped = false;
  std::string trip_reason;
  EnergyEstimate est;
  {
    TELEMETRY_SPAN("local_energy");
    engine_.compute(batch_, local_energies_.span());
    const std::size_t bad = health::count_nonfinite(local_energies_.span());
    if (bad > 0) {
      ++health_.nonfinite_energy;
      tripped = true;
      trip_reason = "non-finite local energies (" + std::to_string(bad) +
                    " of " + std::to_string(local_energies_.size()) + ")";
      est.mean = est.std_dev = std::numeric_limits<Real>::quiet_NaN();
    } else {
      est = estimate_energy(local_energies_.span());
      if (divergence_.update(est.mean)) {
        ++health_.divergences;
        tripped = true;
        trip_reason = "energy divergence: batch mean exceeded the explosion "
                      "threshold for " +
                      std::to_string(config_.guard.divergence_window) +
                      " consecutive iterations";
      }
    }
  }
  phases.local_energy = phase_timer.seconds();

  // 3. Energy gradient (Eq. 5). The current parameters just produced finite
  // energies, so they become the last-good rollback snapshot.
  phase_timer.reset();
  if (!tripped) {
    TELEMETRY_SPAN("gradient");
    if (config_.guard.policy == health::GuardPolicy::RollbackAndBackoff) {
      std::span<const Real> params = model_.parameters();
      std::copy(params.begin(), params.end(), snapshot_.span().begin());
      have_snapshot_ = true;
    }
    gradient_.fill(0);
    accumulate_energy_gradient(model_, batch_, local_energies_.span(),
                               gradient_.span(), model_ws_.get());
    if (!health::all_finite(gradient_.span())) {
      ++health_.nonfinite_gradient;
      tripped = true;
      trip_reason = "non-finite energy gradient";
    }
  }
  phases.gradient = phase_timer.seconds();

  // 4. Optional SR preconditioning, guarded against solver breakdowns and
  // non-finite natural gradients.
  phase_timer.reset();
  std::span<Real> update = gradient_.span();
  if (!tripped && config_.use_sr) {
    TELEMETRY_SPAN("sr_solve");
    model_.log_psi_gradient_per_sample_ws(batch_, per_sample_o_,
                                          model_ws_.get());
    const SrReport sr = sr_.precondition(per_sample_o_, gradient_.span(),
                                         natural_gradient_.span());
    if (sr.breakdown) {
      ++health_.sr_breakdowns;
      tripped = true;
      trip_reason = "SR breakdown: " + sr.reason;
    } else {
      update = natural_gradient_.span();
      if (!health::all_finite(update)) {
        ++health_.nonfinite_update;
        tripped = true;
        trip_reason = "non-finite natural gradient after SR";
      }
    }
  }
  phases.sr_solve = phase_timer.seconds();

  // 5. Clipping, schedule and the optimizer step — or the recovery action.
  phase_timer.reset();
  if (!tripped) {
    TELEMETRY_SPAN("optimizer");
    if (config_.max_grad_norm > 0) {
      Real norm2 = 0;
      for (Real v : update) norm2 += v * v;
      const Real norm = std::sqrt(norm2);
      if (norm > config_.max_grad_norm)
        scale(update, config_.max_grad_norm / norm);
    }
    if (config_.lr_schedule != nullptr) {
      optimizer_.set_learning_rate(
          base_learning_rate_ * config_.lr_schedule->multiplier(iteration_));
    }
    optimizer_.step(model_.parameters(), update);

    if (!have_best_ || est.min < best_energy_) {
      best_energy_ = est.min;
      have_best_ = true;
    }
  } else {
    handle_guard_trip(trip_reason);
  }
  phases.optimizer = phase_timer.seconds();

  training_seconds_ += timer.seconds();
  IterationMetrics metrics;
  metrics.iteration = iteration_++;
  metrics.energy = est.mean;
  metrics.std_dev = est.std_dev;
  metrics.best_energy = best_energy_;
  metrics.seconds = training_seconds_;
  metrics.guard_trips = health_.guard_trips;
  metrics.guard_reason = health_.last_trip_reason;
  if (keeper_ && iteration_ % config_.checkpoint_every == 0) {
    TELEMETRY_SPAN("checkpoint");
    phase_timer.reset();
    keeper_->write(snapshot());
    phases.checkpoint = phase_timer.seconds();
    telemetry::jsonl_event(
        "checkpoint", {{"path", config_.checkpoint_path},
                       {"seconds", phases.checkpoint}});
  }
  metrics.phases = phases;
  record_phase_metrics(phases);
  record_flight(metrics);
  // Sink I/O happens after the iteration span closes so it is not charged
  // to iteration wall time; guarded on active() because the field list
  // allocates.
  iteration_span.end();
  if (telemetry::JsonlLogger::instance().active()) {
    telemetry::jsonl_event(
        "iteration", {{"energy", double(metrics.energy)},
                      {"std_dev", double(metrics.std_dev)},
                      {"sample_seconds", phases.sample},
                      {"local_energy_seconds", phases.local_energy},
                      {"gradient_seconds", phases.gradient},
                      {"optimizer_seconds", phases.optimizer}});
  }
  history_.push_back(metrics);
  telemetry::set_iteration(-1);
  return metrics;
}

// Both loops count from iteration_ rather than 0 so a restored trainer
// resumes at the interrupted iteration instead of re-running the full
// budget.
void VqmcTrainer::run() {
  while (iteration_ < config_.iterations) step();
}

void VqmcTrainer::run_until(
    const std::function<bool(const IterationMetrics&)>& stop) {
  while (iteration_ < config_.iterations) {
    if (stop(step())) return;
  }
}

TrainingSnapshot VqmcTrainer::snapshot() const {
  TrainingSnapshot snap;
  snap.model_name = model_.name();
  snap.optimizer_name = optimizer_.name();
  snap.sampler_name = sampler_.name();
  snap.num_spins = model_.num_spins();
  snap.num_parameters = model_.num_parameters();
  snap.iteration = iteration_;
  const std::span<const Real> params = model_.parameters();
  snap.parameters.assign(params.begin(), params.end());
  snap.optimizer_state = optimizer_.serialize_state();
  snap.sampler_state = sampler_.serialize_state();
  // Trainer-local state: [base_lr, best_energy, have_best, seconds,
  // divergence {best, have_best, consecutive}, have_snapshot,
  // rollback snapshot (iff held)].
  const health::DivergenceDetector::State div = divergence_.state();
  snap.trainer_state = {base_learning_rate_,
                        best_energy_,
                        have_best_ ? Real(1) : Real(0),
                        Real(training_seconds_),
                        div.best,
                        div.have_best ? Real(1) : Real(0),
                        Real(div.consecutive),
                        have_snapshot_ ? Real(1) : Real(0)};
  if (have_snapshot_)
    snap.trainer_state.insert(snap.trainer_state.end(),
                              snapshot_.span().begin(), snapshot_.span().end());
  return snap;
}

void VqmcTrainer::restore(const TrainingSnapshot& snap) {
  VQMC_REQUIRE(snap.model_name == model_.name(),
               "trainer restore: model kind mismatch ('" + snap.model_name +
                   "' vs '" + model_.name() + "')");
  VQMC_REQUIRE(snap.num_spins == model_.num_spins(),
               "trainer restore: spin count mismatch");
  VQMC_REQUIRE(snap.num_parameters == model_.num_parameters(),
               "trainer restore: parameter count mismatch");
  VQMC_REQUIRE(snap.optimizer_name == optimizer_.name(),
               "trainer restore: optimizer kind mismatch ('" +
                   snap.optimizer_name + "' vs '" + optimizer_.name() + "')");
  VQMC_REQUIRE(snap.sampler_name == sampler_.name(),
               "trainer restore: sampler kind mismatch ('" +
                   snap.sampler_name + "' vs '" + sampler_.name() + "')");
  VQMC_REQUIRE(snap.parameters.size() == model_.num_parameters(),
               "trainer restore: parameter payload size mismatch");
  VQMC_REQUIRE(snap.trainer_state.size() >= 8,
               "trainer restore: trainer state too short");

  std::span<Real> params = model_.parameters();
  std::copy(snap.parameters.begin(), snap.parameters.end(), params.begin());
  optimizer_.restore_state(snap.optimizer_state);
  sampler_.restore_state(snap.sampler_state);

  iteration_ = int(snap.iteration);
  base_learning_rate_ = snap.trainer_state[0];
  best_energy_ = snap.trainer_state[1];
  have_best_ = snap.trainer_state[2] != 0;
  training_seconds_ = double(snap.trainer_state[3]);
  health::DivergenceDetector::State div;
  div.best = snap.trainer_state[4];
  div.have_best = snap.trainer_state[5] != 0;
  div.consecutive = int(snap.trainer_state[6]);
  divergence_.set_state(div);
  have_snapshot_ = snap.trainer_state[7] != 0;
  if (have_snapshot_) {
    VQMC_REQUIRE(
        snap.trainer_state.size() == 8 + model_.num_parameters(),
        "trainer restore: rollback snapshot payload size mismatch");
    if (snapshot_.size() != model_.num_parameters())
      snapshot_ = Vector(model_.num_parameters());
    std::copy(snap.trainer_state.begin() + 8, snap.trainer_state.end(),
              snapshot_.span().begin());
  }
}

EnergyEstimate VqmcTrainer::evaluate(std::size_t eval_batch_size) {
  Matrix samples;
  return evaluate_with_samples(eval_batch_size, samples);
}

EnergyEstimate VqmcTrainer::evaluate_with_samples(std::size_t eval_batch_size,
                                                  Matrix& samples) {
  VQMC_REQUIRE(eval_batch_size >= 1, "trainer: eval batch must be >= 1");
  samples = Matrix(eval_batch_size, hamiltonian_.num_spins());
  sampler_.sample_ws(samples, model_ws_.get());
  Vector energies(eval_batch_size);
  engine_.compute(samples, energies.span());
  return estimate_energy(energies.span());
}

}  // namespace vqmc
