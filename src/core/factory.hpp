#pragma once

/// \file factory.hpp
/// \brief String-keyed factories used by benches and examples to assemble
/// the paper's (model, sampler, optimizer) combinations from row labels
/// like "MADE"/"AUTO"/"SGD+SR".

#include <memory>
#include <string>

#include "nn/wavefunction.hpp"
#include "optim/optimizer.hpp"
#include "sampler/metropolis_sampler.hpp"
#include "sampler/sampler.hpp"

namespace vqmc {

/// "MADE" (hidden defaults to 5 (log n)^2) or "RBM" (hidden defaults to n).
/// `hidden == 0` selects the paper default for the family.
std::unique_ptr<WavefunctionModel> make_model(const std::string& kind,
                                              std::size_t n,
                                              std::size_t hidden = 0,
                                              std::uint64_t seed = 0);

/// "AUTO" (requires an autoregressive model) or "MCMC".
/// MCMC uses the supplied config (burn_in == 0 selects the paper's
/// k = 3n + 100).
std::unique_ptr<Sampler> make_sampler(const std::string& kind,
                                      const WavefunctionModel& model,
                                      std::uint64_t seed,
                                      MetropolisConfig mcmc = {});

/// "SGD" (lr 0.1) or "ADAM" (lr 0.01); "SGD+SR" returns the SGD base (the
/// SR flag itself lives in TrainerConfig::use_sr).
std::unique_ptr<Optimizer> make_optimizer(const std::string& kind);

/// True for "SGD+SR" / "ADAM+SR" style labels.
bool optimizer_label_uses_sr(const std::string& kind);

}  // namespace vqmc
