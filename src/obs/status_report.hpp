#pragma once

/// \file status_report.hpp
/// \brief Wire-portable status snapshots and their renderers (DESIGN.md §5i).
///
/// A `StatusReport` is one rank's observable state at a point in time:
/// counters/gauges/histogram summaries from its MetricsRegistry, plus
/// free-form named fields (health/guard state, tracer ring occupancy, serve
/// engine counters, energy).  Reports cross the wire in a line-oriented text
/// encoding — `encode()`/`decode_reports()` round-trip exactly — so the
/// aggregation pull ("raw" format) and every human-facing renderer share one
/// representation:
///
///   vqmc-status 1
///   field rank 2
///   field energy -21.948
///   counter trainer.iterations 500
///   gauge serve.queue_depth 12
///   hist comm.allreduce_wait_seconds 500 1.25 0.0021 0.0042 0.0051
///   end
///
/// (`hist` carries count, sum, p50, p95, p99 — bucket arrays stay rank-local;
/// the summary is what dashboards and `vqmc_top` consume.)
///
/// A `GroupStatus` is the aggregated view rank 0 exposes for the whole
/// group: one report per world slot plus per-rank reachability, rendered as
/// Prometheus text (`render_prometheus`), JSON (`render_json`), or a
/// terminal table (`render_table`, the `vqmc_top` view).

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics_registry.hpp"

namespace vqmc::obs {

/// Free-form named value (health state, engine counters, rates).
struct StatusField {
  std::string name;
  std::string value;
};

/// Compact histogram summary (buckets stay rank-local).
struct StatusHistogram {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0;
  double p50 = 0, p95 = 0, p99 = 0;
};

/// One rank's observable state at a point in time.
struct StatusReport {
  int rank = 0;
  int world = 1;
  std::vector<telemetry::CounterSnapshot> counters;
  std::vector<telemetry::GaugeSnapshot> gauges;
  std::vector<StatusHistogram> histograms;
  std::vector<StatusField> fields;

  /// Copy the metrics state out of `snapshot` (histograms compressed to
  /// count/sum/percentile summaries).
  void add_metrics(const telemetry::MetricsSnapshot& snapshot);

  /// Set (or overwrite) a free-form field. Names must not contain spaces
  /// or newlines; values must not contain newlines.
  void set_field(const std::string& name, const std::string& value);
  void set_field(const std::string& name, double value);

  /// Field value, or "" when absent.
  [[nodiscard]] std::string field(const std::string& name) const;
  /// Field parsed as a double, or `fallback` when absent/non-numeric.
  [[nodiscard]] double field_double(const std::string& name,
                                    double fallback = 0) const;
  [[nodiscard]] const telemetry::CounterSnapshot* find_counter(
      const std::string& name) const;
  [[nodiscard]] const telemetry::GaugeSnapshot* find_gauge(
      const std::string& name) const;
  [[nodiscard]] const StatusHistogram* find_histogram(
      const std::string& name) const;

  /// Line-oriented text encoding (schema in the file comment).
  [[nodiscard]] std::string encode() const;
};

/// Parse a concatenation of encoded reports ("raw" wire payload). Throws
/// vqmc::Error on a malformed or version-mismatched payload.
[[nodiscard]] std::vector<StatusReport> decode_reports(
    const std::string& text);

/// Whole-group view served from rank 0 (or a single-rank view elsewhere).
struct GroupStatus {
  int world = 1;
  std::vector<StatusReport> ranks;  ///< one entry per world slot, rank order
  std::vector<int> reachable;       ///< 1 = report is live, 0 = pull failed

  /// Wrap one local report (reachable by construction).
  [[nodiscard]] static GroupStatus single(StatusReport report);
};

/// Prometheus text exposition: `vqmc_`-prefixed sanitized metric names,
/// `rank` labels, histogram summaries as quantile/sum/count series, plus
/// `vqmc_up` and per-rank `vqmc_rank_reachable`.
[[nodiscard]] std::string render_prometheus(const GroupStatus& group);

/// JSON: {"world": W, "ranks": [{...}, ...]} with per-rank reachability.
[[nodiscard]] std::string render_json(const GroupStatus& group);

/// Terminal table, one row per rank: liveness, iteration, rate, energy,
/// allreduce wait p50/p99, queue depth, guard trips.
[[nodiscard]] std::string render_table(const GroupStatus& group);

/// `name` sanitized for Prometheus (`[a-zA-Z0-9_:]`, `vqmc_` prefix).
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// A registry metric name split into its base family and the label body
/// carried inside the name (see telemetry::labeled_name):
/// `a{k="v",k2="v2"}` -> {base: "a", labels: `k="v",k2="v2"`}; an unlabeled
/// name comes back with an empty label body.  render_prometheus uses this
/// to fold per-model / per-tenant serve series into one labeled family
/// (single TYPE line; `rank` label merged with the embedded labels).
struct SplitMetricName {
  std::string base;
  std::string labels;
};
[[nodiscard]] SplitMetricName split_metric_name(const std::string& name);

}  // namespace vqmc::obs
