#include "obs/exposition.hpp"

#include "common/error.hpp"

namespace vqmc::obs {

namespace wire = parallel::wire;

std::string rank_endpoint(const std::string& base, int rank) {
  if (rank == 0) return base;
  if (base.rfind("unix://", 0) == 0)
    return base + ".r" + std::to_string(rank);
  VQMC_REQUIRE(base.rfind("tcp://", 0) == 0,
               "obs endpoint '" + base +
                   "' is neither unix:// nor tcp://");
  const std::size_t colon = base.rfind(':');
  VQMC_REQUIRE(colon != std::string::npos && colon > 5,
               "tcp obs endpoint '" + base + "' has no port");
  const int port = std::stoi(base.substr(colon + 1));
  VQMC_REQUIRE(port != 0,
               "tcp obs endpoint needs an explicit port to derive per-rank "
               "endpoints (got port 0)");
  return base.substr(0, colon + 1) + std::to_string(port + rank);
}

StatusServer::StatusServer(StatusServerOptions options,
                           StatusProvider provider)
    : options_(std::move(options)), provider_(std::move(provider)) {
  VQMC_REQUIRE(static_cast<bool>(provider_),
               "StatusServer needs a status provider");
  listener_ = wire::listen_on(options_.endpoint);
  endpoint_ = listener_.endpoint;
  thread_ = std::thread([this] { serve_loop(); });
}

StatusServer::~StatusServer() { stop(); }

void StatusServer::stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  listener_.socket.close();
}

void StatusServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Short poll slices keep stop() latency bounded without busy-waiting.
    if (!wire::poll_readable(listener_.socket, 0.1)) continue;
    try {
      wire::Socket conn = wire::accept_from(listener_.socket, 0.5);
      wire::Frame request;
      if (!wire::recv_frame(conn, request, options_.io_deadline_seconds))
        continue;
      const std::string format(request.payload.begin(),
                               request.payload.end());
      const std::string reply = render(request.type, format);
      wire::send_frame(conn, request.type, request.seq, reply.data(),
                       reply.size(), options_.io_deadline_seconds);
    } catch (const Error&) {
      // A malformed or timed-out client costs it its connection, never the
      // server loop (scrapers come and go while training runs for hours).
    }
  }
}

GroupStatus StatusServer::collect() {
  StatusReport local = provider_();
  local.rank = options_.rank;
  local.world = options_.world;
  if (options_.group_base.empty() || options_.world <= 1)
    return GroupStatus::single(std::move(local));

  GroupStatus group;
  group.world = options_.world;
  group.ranks.resize(std::size_t(options_.world));
  group.reachable.assign(std::size_t(options_.world), 0);
  for (int r = 0; r < options_.world; ++r) {
    const std::size_t slot = std::size_t(r);
    if (r == options_.rank) {
      group.ranks[slot] = local;
      group.reachable[slot] = 1;
      continue;
    }
    group.ranks[slot].rank = r;
    group.ranks[slot].world = options_.world;
    try {
      const std::string raw =
          fetch_status(rank_endpoint(options_.group_base, r), "raw",
                       options_.pull_deadline_seconds);
      std::vector<StatusReport> reports = decode_reports(raw);
      VQMC_REQUIRE(!reports.empty(), "empty status pull");
      group.ranks[slot] = std::move(reports.front());
      group.ranks[slot].rank = r;
      group.reachable[slot] = 1;
    } catch (const Error&) {
      // Unreachable rank: reported as reachable=0, scrape still succeeds —
      // a dead rank is exactly what the scraper needs to see.
    }
  }
  return group;
}

std::string StatusServer::render(wire::FrameType type,
                                 const std::string& format) {
  if (type == wire::FrameType::kMetrics)
    return render_prometheus(collect());
  VQMC_REQUIRE(type == wire::FrameType::kStatus,
               "obs server: unexpected frame type");
  if (format == "raw") {
    // Aggregation pull: the local report only (the puller assembles the
    // group view; recursing into collect() here would ping-pong pulls).
    StatusReport local = provider_();
    local.rank = options_.rank;
    local.world = options_.world;
    return local.encode();
  }
  if (format == "json") return render_json(collect());
  if (format == "table") return render_table(collect());
  if (format.empty() || format == "prom") return render_prometheus(collect());
  throw Error("obs server: unknown status format '" + format + "'");
}

std::string fetch_status(const std::string& endpoint,
                         const std::string& format,
                         double deadline_seconds) {
  wire::Socket conn = wire::connect_to(endpoint, deadline_seconds,
                                       /*jitter_seed=*/0x0b5u);
  const wire::FrameType type = format == "prom"
                                   ? wire::FrameType::kMetrics
                                   : wire::FrameType::kStatus;
  const std::string payload = format == "prom" ? std::string() : format;
  VQMC_REQUIRE(send_frame(conn, type, /*seq=*/0, payload.data(),
                          payload.size(), deadline_seconds),
               "obs scrape: server closed the connection");
  wire::Frame reply;
  VQMC_REQUIRE(recv_frame(conn, reply, deadline_seconds),
               "obs scrape: server closed without replying");
  return std::string(reply.payload.begin(), reply.payload.end());
}

}  // namespace vqmc::obs
