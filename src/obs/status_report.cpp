#include "obs/status_report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace vqmc::obs {

namespace {

constexpr const char* kHeader = "vqmc-status 1";

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void emit_json_string(std::ostringstream& oss, const std::string& s) {
  oss << '"';
  for (const char c : s) {
    switch (c) {
      case '"': oss << "\\\""; break;
      case '\\': oss << "\\\\"; break;
      case '\n': oss << "\\n"; break;
      case '\r': oss << "\\r"; break;
      case '\t': oss << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
  oss << '"';
}

}  // namespace

void StatusReport::add_metrics(const telemetry::MetricsSnapshot& snapshot) {
  counters.insert(counters.end(), snapshot.counters.begin(),
                  snapshot.counters.end());
  gauges.insert(gauges.end(), snapshot.gauges.begin(), snapshot.gauges.end());
  histograms.reserve(histograms.size() + snapshot.histograms.size());
  for (const telemetry::HistogramSnapshot& h : snapshot.histograms)
    histograms.push_back({h.name, h.count, h.sum, h.p50, h.p95, h.p99});
}

void StatusReport::set_field(const std::string& name,
                             const std::string& value) {
  for (StatusField& f : fields) {
    if (f.name == name) {
      f.value = value;
      return;
    }
  }
  fields.push_back({name, value});
}

void StatusReport::set_field(const std::string& name, double value) {
  set_field(name, format_double(value));
}

std::string StatusReport::field(const std::string& name) const {
  for (const StatusField& f : fields)
    if (f.name == name) return f.value;
  return "";
}

double StatusReport::field_double(const std::string& name,
                                  double fallback) const {
  const std::string v = field(name);
  if (v.empty()) return fallback;
  try {
    return std::stod(v);
  } catch (...) {
    return fallback;
  }
}

const telemetry::CounterSnapshot* StatusReport::find_counter(
    const std::string& name) const {
  for (const telemetry::CounterSnapshot& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const telemetry::GaugeSnapshot* StatusReport::find_gauge(
    const std::string& name) const {
  for (const telemetry::GaugeSnapshot& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const StatusHistogram* StatusReport::find_histogram(
    const std::string& name) const {
  for (const StatusHistogram& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

std::string StatusReport::encode() const {
  std::ostringstream oss;
  oss << kHeader << '\n';
  oss << "field rank " << rank << '\n';
  oss << "field world " << world << '\n';
  for (const StatusField& f : fields) {
    if (f.name == "rank" || f.name == "world") continue;
    oss << "field " << f.name << ' ' << f.value << '\n';
  }
  for (const telemetry::CounterSnapshot& c : counters)
    oss << "counter " << c.name << ' ' << c.value << '\n';
  for (const telemetry::GaugeSnapshot& g : gauges)
    oss << "gauge " << g.name << ' ' << format_double(g.value) << '\n';
  for (const StatusHistogram& h : histograms) {
    oss << "hist " << h.name << ' ' << h.count << ' ' << format_double(h.sum)
        << ' ' << format_double(h.p50) << ' ' << format_double(h.p95) << ' '
        << format_double(h.p99) << '\n';
  }
  oss << "end\n";
  return oss.str();
}

std::vector<StatusReport> decode_reports(const std::string& text) {
  std::vector<StatusReport> reports;
  std::istringstream lines(text);
  std::string line;
  bool in_report = false;
  StatusReport current;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (!in_report) {
      VQMC_REQUIRE(line == kHeader,
                   "status decode: expected '" + std::string(kHeader) +
                       "', got '" + line + "'");
      in_report = true;
      current = StatusReport{};
      continue;
    }
    if (line == "end") {
      current.rank = int(current.field_double("rank", 0));
      current.world = int(current.field_double("world", 1));
      reports.push_back(std::move(current));
      in_report = false;
      continue;
    }
    std::istringstream parts(line);
    std::string kind, name;
    parts >> kind >> name;
    VQMC_REQUIRE(!name.empty(), "status decode: malformed line '" + line + "'");
    if (kind == "field") {
      std::string value;
      std::getline(parts, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      current.set_field(name, value);
    } else if (kind == "counter") {
      std::uint64_t value = 0;
      parts >> value;
      current.counters.push_back({name, value});
    } else if (kind == "gauge") {
      double value = 0;
      parts >> value;
      current.gauges.push_back({name, value});
    } else if (kind == "hist") {
      StatusHistogram h;
      h.name = name;
      parts >> h.count >> h.sum >> h.p50 >> h.p95 >> h.p99;
      current.histograms.push_back(std::move(h));
    } else {
      throw Error("status decode: unknown line kind '" + kind + "'");
    }
    VQMC_REQUIRE(!parts.fail(), "status decode: malformed line '" + line + "'");
  }
  VQMC_REQUIRE(!in_report, "status decode: truncated report (missing 'end')");
  return reports;
}

GroupStatus GroupStatus::single(StatusReport report) {
  GroupStatus group;
  group.world = report.world;
  group.reachable.push_back(1);
  group.ranks.push_back(std::move(report));
  return group;
}

SplitMetricName split_metric_name(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.empty() || name.back() != '}') {
    return {name, ""};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

std::string prometheus_name(const std::string& name) {
  std::string out = "vqmc_";
  out.reserve(name.size() + out.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string render_prometheus(const GroupStatus& group) {
  std::ostringstream oss;
  oss << "# HELP vqmc_up 1 while the observed process group is serving "
         "status\n# TYPE vqmc_up gauge\nvqmc_up 1\n";
  oss << "# HELP vqmc_rank_reachable 1 when the rank's snapshot was pulled "
         "this scrape\n# TYPE vqmc_rank_reachable gauge\n";
  for (std::size_t i = 0; i < group.ranks.size(); ++i) {
    const int reachable = i < group.reachable.size() ? group.reachable[i] : 0;
    oss << "vqmc_rank_reachable{rank=\"" << group.ranks[i].rank << "\"} "
        << reachable << '\n';
  }
  // One TYPE line per *family* (labeled registry names such as
  // `serve.model.submitted{model="m0"}` fold into one family per base
  // name), then every series of that family across every reachable rank.
  // Families and series keep first-seen order.
  auto each_live = [&](auto&& fn) {
    for (std::size_t i = 0; i < group.ranks.size(); ++i) {
      if (i < group.reachable.size() && group.reachable[i] == 0) continue;
      fn(group.ranks[i]);
    }
  };
  std::vector<std::string> emitted;
  const auto seen = [&emitted](const std::string& name) {
    if (std::find(emitted.begin(), emitted.end(), name) != emitted.end())
      return true;
    emitted.push_back(name);
    return false;
  };
  // Registry names (across all live ranks, deduplicated, first-seen order)
  // whose base maps to the Prometheus family `prom`.
  const auto family_members = [&](const std::string& prom,
                                  auto&& names_of) {
    std::vector<std::string> members;
    each_live([&](const StatusReport& r) {
      names_of(r, [&](const std::string& name) {
        if (prometheus_name(split_metric_name(name).base) != prom) return;
        if (std::find(members.begin(), members.end(), name) != members.end())
          return;
        members.push_back(name);
      });
    });
    return members;
  };
  // Series label block: the rank label merged with the labels embedded in
  // the registry name, plus any trailing extras (histogram quantiles).
  const auto series_labels = [](int rank, const std::string& embedded,
                                const std::string& extra = "") {
    std::string out = "{rank=\"" + std::to_string(rank) + "\"";
    if (!embedded.empty()) out += "," + embedded;
    if (!extra.empty()) out += "," + extra;
    out += "}";
    return out;
  };
  const auto counter_names = [](const StatusReport& r, auto&& fn) {
    for (const telemetry::CounterSnapshot& c : r.counters) fn(c.name);
  };
  const auto gauge_names = [](const StatusReport& r, auto&& fn) {
    for (const telemetry::GaugeSnapshot& g : r.gauges) fn(g.name);
  };
  const auto histogram_names = [](const StatusReport& r, auto&& fn) {
    for (const StatusHistogram& h : r.histograms) fn(h.name);
  };
  each_live([&](const StatusReport& owner) {
    for (const telemetry::CounterSnapshot& c : owner.counters) {
      const std::string prom = prometheus_name(split_metric_name(c.name).base);
      if (seen(prom)) continue;
      oss << "# TYPE " << prom << " counter\n";
      for (const std::string& name : family_members(prom, counter_names)) {
        const std::string labels = split_metric_name(name).labels;
        each_live([&](const StatusReport& r) {
          if (const auto* found = r.find_counter(name))
            oss << prom << series_labels(r.rank, labels) << ' '
                << found->value << '\n';
        });
      }
    }
  });
  emitted.clear();
  each_live([&](const StatusReport& owner) {
    for (const telemetry::GaugeSnapshot& g : owner.gauges) {
      const std::string prom = prometheus_name(split_metric_name(g.name).base);
      if (seen(prom)) continue;
      oss << "# TYPE " << prom << " gauge\n";
      for (const std::string& name : family_members(prom, gauge_names)) {
        const std::string labels = split_metric_name(name).labels;
        each_live([&](const StatusReport& r) {
          if (const auto* found = r.find_gauge(name))
            oss << prom << series_labels(r.rank, labels) << ' '
                << format_double(found->value) << '\n';
        });
      }
    }
  });
  emitted.clear();
  each_live([&](const StatusReport& owner) {
    for (const StatusHistogram& h : owner.histograms) {
      const std::string prom = prometheus_name(split_metric_name(h.name).base);
      if (seen(prom)) continue;
      oss << "# TYPE " << prom << " summary\n";
      for (const std::string& name : family_members(prom, histogram_names)) {
        const std::string labels = split_metric_name(name).labels;
        each_live([&](const StatusReport& r) {
          const StatusHistogram* found = r.find_histogram(name);
          if (found == nullptr) return;
          oss << prom << series_labels(r.rank, labels, "quantile=\"0.5\"")
              << ' ' << format_double(found->p50) << '\n';
          oss << prom << series_labels(r.rank, labels, "quantile=\"0.95\"")
              << ' ' << format_double(found->p95) << '\n';
          oss << prom << series_labels(r.rank, labels, "quantile=\"0.99\"")
              << ' ' << format_double(found->p99) << '\n';
          oss << prom << "_sum" << series_labels(r.rank, labels) << ' '
              << format_double(found->sum) << '\n';
          oss << prom << "_count" << series_labels(r.rank, labels) << ' '
              << found->count << '\n';
        });
      }
    }
  });
  return oss.str();
}

std::string render_json(const GroupStatus& group) {
  std::ostringstream oss;
  oss.precision(17);
  oss << "{\"world\": " << group.world << ", \"ranks\": [";
  for (std::size_t i = 0; i < group.ranks.size(); ++i) {
    const StatusReport& r = group.ranks[i];
    if (i) oss << ", ";
    oss << "{\"rank\": " << r.rank << ", \"reachable\": "
        << (i < group.reachable.size() ? group.reachable[i] : 0);
    oss << ", \"fields\": {";
    bool first = true;
    for (const StatusField& f : r.fields) {
      if (f.name == "rank" || f.name == "world") continue;
      if (!first) oss << ", ";
      first = false;
      emit_json_string(oss, f.name);
      oss << ": ";
      emit_json_string(oss, f.value);
    }
    oss << "}, \"counters\": {";
    for (std::size_t c = 0; c < r.counters.size(); ++c) {
      if (c) oss << ", ";
      emit_json_string(oss, r.counters[c].name);
      oss << ": " << r.counters[c].value;
    }
    oss << "}, \"gauges\": {";
    for (std::size_t g = 0; g < r.gauges.size(); ++g) {
      if (g) oss << ", ";
      emit_json_string(oss, r.gauges[g].name);
      oss << ": " << r.gauges[g].value;
    }
    oss << "}, \"histograms\": {";
    for (std::size_t h = 0; h < r.histograms.size(); ++h) {
      const StatusHistogram& hist = r.histograms[h];
      if (h) oss << ", ";
      emit_json_string(oss, hist.name);
      oss << ": {\"count\": " << hist.count << ", \"sum\": " << hist.sum
          << ", \"p50\": " << hist.p50 << ", \"p95\": " << hist.p95
          << ", \"p99\": " << hist.p99 << "}";
    }
    oss << "}}";
  }
  oss << "]}";
  return oss.str();
}

std::string render_table(const GroupStatus& group) {
  Table table;
  table.set_header({"rank", "up", "iter", "it/s", "energy", "wait p50 ms",
                    "wait p99 ms", "queue", "guard"});
  for (std::size_t i = 0; i < group.ranks.size(); ++i) {
    const StatusReport& r = group.ranks[i];
    const bool up = i >= group.reachable.size() || group.reachable[i] != 0;
    if (!up) {
      table.add_row({std::to_string(r.rank), "DOWN", "-", "-", "-", "-", "-",
                     "-", "-"});
      continue;
    }
    const auto* iterations = r.find_counter("trainer.iterations");
    const auto* wait = r.find_histogram("comm.allreduce_wait_seconds");
    const auto* queue = r.find_gauge("serve.queue_depth");
    const auto* trips = r.find_counter("trainer.guard_trips");
    const std::string energy = r.field("energy");
    table.add_row({
        std::to_string(r.rank),
        "up",
        iterations != nullptr ? std::to_string(iterations->value) : "-",
        format_fixed(r.field_double("iteration_rate", 0), 1),
        energy.empty() ? "-" : format_fixed(r.field_double("energy", 0), 4),
        wait != nullptr ? format_fixed(wait->p50 * 1e3, 3) : "-",
        wait != nullptr ? format_fixed(wait->p99 * 1e3, 3) : "-",
        queue != nullptr ? format_fixed(queue->value, 0) : "-",
        trips != nullptr ? std::to_string(trips->value) : "-",
    });
  }
  return table.to_string();
}

}  // namespace vqmc::obs
