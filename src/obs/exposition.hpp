#pragma once

/// \file exposition.hpp
/// \brief Live status/metrics exposition over the framed wire protocol
/// (DESIGN.md §5i).
///
/// A `StatusServer` is a background thread bound to a `unix:///tcp://`
/// endpoint that answers one-shot scrape requests while the process trains
/// or serves.  The request/reply protocol rides the existing frame format:
///
///   * `kMetrics` frame, empty payload  -> reply `kMetrics`, Prometheus text;
///   * `kStatus` frame, payload one of `json` | `table` | `raw` | `prom`
///     -> reply `kStatus` in that rendering (`raw` is the line-oriented
///     `StatusReport` encoding the aggregation pull uses).
///
/// Each scrape is collect-on-demand: the server invokes its `StatusProvider`
/// (a closure over the owning component's registry/engine/recorder) only
/// when a request arrives, so an idle endpoint costs one parked poll loop
/// and nothing else, and no endpoint configured costs nothing at all.
///
/// Group aggregation (the pull model): every rank runs a StatusServer on
/// `rank_endpoint(base, r)`; the rank whose options carry `group_base`
/// (rank 0 in practice) answers a scrape by pulling `raw` snapshots from
/// every other rank's endpoint and rendering the combined `GroupStatus` —
/// so one endpoint exposes per-rank allreduce waits, straggler skew, and
/// live/dead membership.  A rank that cannot be reached within
/// `pull_deadline_seconds` is reported with `reachable = 0` instead of
/// failing the scrape (dead ranks are data, not errors).

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "obs/status_report.hpp"
#include "parallel/wire_protocol.hpp"

namespace vqmc::obs {

/// Builds the calling component's current StatusReport. Invoked from the
/// server thread on every scrape — must be safe against concurrent training
/// (MetricsRegistry snapshots and the FlightRecorder already are).
using StatusProvider = std::function<StatusReport()>;

struct StatusServerOptions {
  std::string endpoint;  ///< spec to bind (unix:///path or tcp://host:port)
  int rank = 0;
  int world = 1;
  /// Non-empty on the aggregating rank only: the group's base endpoint, from
  /// which per-rank endpoints derive via rank_endpoint().
  std::string group_base;
  double pull_deadline_seconds = 2.0;  ///< per-rank aggregation pull budget
  double io_deadline_seconds = 5.0;    ///< per-request frame read/write budget
};

/// Endpoint of rank `rank`'s StatusServer, derived from the group base spec:
/// rank 0 serves `base` verbatim; `unix:///path` becomes
/// `unix:///path.r<rank>`; `tcp://host:port` becomes `tcp://host:port+rank`
/// (explicit ports only — ephemeral port 0 cannot be derived for peers).
[[nodiscard]] std::string rank_endpoint(const std::string& base, int rank);

/// Background scrape server. Binds in the constructor (throws vqmc::Error if
/// the endpoint is unusable), serves until stop()/destruction.
class StatusServer {
 public:
  StatusServer(StatusServerOptions options, StatusProvider provider);
  ~StatusServer();
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Stop serving and join the server thread. Idempotent.
  void stop();

  /// The bound spec with any kernel-assigned ephemeral port substituted.
  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }

 private:
  void serve_loop();
  [[nodiscard]] GroupStatus collect();
  [[nodiscard]] std::string render(parallel::wire::FrameType type,
                                   const std::string& format);

  StatusServerOptions options_;
  StatusProvider provider_;
  parallel::wire::Listener listener_;
  std::string endpoint_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// One-shot scrape client (vqmc_top, aggregation pulls, tests): dial
/// `endpoint`, request `format` ("prom" | "json" | "table" | "raw"), return
/// the reply text. Throws vqmc::Error / vqmc::CommTimeoutError on failure.
[[nodiscard]] std::string fetch_status(const std::string& endpoint,
                                       const std::string& format,
                                       double deadline_seconds);

}  // namespace vqmc::obs
