#pragma once

/// \file socket_communicator.hpp
/// \brief Real multi-process communicator backend behind the Communicator
/// interface (DESIGN.md §5h).
///
/// `SocketCommunicator` speaks the framed, checksummed wire protocol of
/// `wire_protocol.hpp` over TCP or Unix-domain stream sockets, so the ranks
/// of a group can be separate *processes* (or separate hosts) instead of the
/// threads the ThreadCommunicator virtualizes. The distributed trainer — and
/// everything layered on it: elastic shrink, fault injection, deterministic
/// restart — runs unchanged on top.
///
/// Topology: a two-level reduction tree. Ranks are partitioned into "nodes"
/// of `node_size` consecutive ranks; the lowest rank of each node is its
/// *leader* and rank 0 (always a leader) is the *root*. Members send
/// contributions to their leader, leaders fold their node's contributions in
/// rank order and forward one partial to the root, the root folds partials
/// in node order and scatters the result (plus the membership bitmap) back
/// down. With `node_size == 0` (the default) the tree degenerates to a flat
/// star rooted at rank 0 whose fold order is exactly the thread backend's
/// flat rank-order fold. The root doubles as the group's sequencer: every
/// survivor receives the *same* fold and the same membership view, which is
/// what makes shrink deterministic.
///
/// Failure semantics (the same contract the thread backend implements):
///  * Per-collective deadline (`timeout_seconds`): a rank blocked past it
///    aborts the group; every blocked rank throws vqmc::CommTimeoutError.
///  * Peer death — EOF or ECONNRESET on a peer connection — is folded at the
///    collective where the contribution is missing. Under
///    PeerDeathPolicy::Shrink the dead rank is removed exactly like a
///    departed thread (reductions skip it deterministically); under
///    PeerDeathPolicy::Abort the whole group aborts with CommTimeoutError —
///    the "continue at reduced batch vs abort" policy knob.
///  * A hung-but-connected peer (e.g. SIGSTOP) produces no EOF; the
///    collective deadline is the liveness check and the group aborts.
///  * `leave()` sends a LEAVE frame upstream: a graceful, deterministic
///    departure at a collective boundary (leaf ranks only — a leader's death
///    orphans its node, so leaders must run to completion or abort).
///  * Death of the root (or of any leader, for its node's members) cannot be
///    shrunk around: affected ranks throw CommTimeoutError; restart from the
///    TrainingSnapshot checkpoint covers it.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "parallel/communicator.hpp"
#include "parallel/wire_protocol.hpp"

namespace vqmc::parallel {

/// What to do when a peer process dies mid-run (EOF/reset on its
/// connection).
enum class PeerDeathPolicy {
  kShrink,  ///< fold the dead rank out and continue at reduced batch
  kAbort,   ///< abort the whole group (every rank throws CommTimeoutError)
};

/// Knobs shared by every rank of one socket group. Every rank must pass the
/// same values (the WELCOME frame carries the root's view so mismatches are
/// caught at rendezvous).
struct SocketGroupOptions {
  /// Deadline for each collective; 0 disables (wait forever). Same contract
  /// as GroupOptions::timeout_seconds on the thread backend.
  double timeout_seconds = 0;
  /// Deadline for the whole rendezvous (listen/connect/welcome handshake).
  double rendezvous_timeout_seconds = 30;
  /// Ranks per node for the hierarchical reduction tree; 0 = flat star
  /// (every rank connects directly to rank 0, fold order identical to the
  /// thread backend).
  int node_size = 0;
  /// Shrink-vs-abort policy for peer process death.
  PeerDeathPolicy on_peer_death = PeerDeathPolicy::kShrink;
};

/// One rank's endpoint of a socket-backed group. Construct via
/// connect_socket_group(); all Communicator methods follow the documented
/// collective contract.
class SocketCommunicator final : public Communicator {
 public:
  ~SocketCommunicator() override;

  using Communicator::allreduce_sum;  // keep the scalar overloads visible
  using Communicator::allreduce_max;

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return world_; }

  void allreduce_sum(std::span<Real> data) override;
  void allreduce_max(std::span<Real> data) override;
  void broadcast(std::span<Real> data, int root) override;
  void barrier() override;

  [[nodiscard]] int live_count() const override;
  [[nodiscard]] bool is_alive(int r) const override;
  void leave() override;
  void interruptible_sleep(double seconds) override;

  /// Failed dial attempts during rendezvous (exponential backoff + jitter);
  /// exported so launch tooling and telemetry can report flaky bring-up.
  [[nodiscard]] long long connect_retries() const { return connect_retries_; }

  /// Ranks this endpoint has observed die un-gracefully (EOF/reset), in
  /// detection order. Leaders observe their members; the root observes
  /// every death that reaches a membership bitmap.
  [[nodiscard]] const std::vector<int>& observed_deaths() const {
    return observed_deaths_;
  }

 private:
  friend std::unique_ptr<SocketCommunicator> connect_socket_group(
      const std::string& endpoint, int rank, int world,
      const SocketGroupOptions& options);

  SocketCommunicator(int rank, int world, SocketGroupOptions options);

  /// A downstream connection: either one member rank, or (on the root) a
  /// whole node reached through its leader.
  struct Child {
    std::vector<int> covered;  ///< ranks behind this connection, ascending
    wire::Socket socket;
    bool gone = false;  ///< left, died, or folded out
  };

  enum class Op : std::uint64_t { kSum = 1, kMax = 2, kBcast = 3,
                                  kBarrier = 4 };

  void rendezvous(const std::string& endpoint);
  void round(Op op, std::span<Real> data, int bcast_root);
  void collect_and_fold(Op op, std::span<Real> data, int bcast_root,
                        std::vector<Real>& fold, bool& have_fold,
                        std::vector<char>& liveness);
  void scatter_result(const std::vector<unsigned char>& payload);
  void handle_child_death(Child& child, const char* how);
  void abort_group(const std::string& reason);
  [[noreturn]] void throw_aborted();
  void mark_dead(int r);

  const int rank_;
  const int world_;
  const SocketGroupOptions options_;
  int node_size_ = 0;    ///< effective (0 in options -> world_)
  int leader_rank_ = 0;  ///< leader of this rank's node
  bool is_leader_ = false;

  wire::Socket upstream_;        ///< connection toward the root (leaf/leader)
  std::vector<Child> children_;  ///< fold order (ascending covered ranks)

  std::vector<char> alive_;
  std::uint64_t seq_ = 0;
  bool left_ = false;
  bool aborted_ = false;
  std::string abort_reason_;
  long long connect_retries_ = 0;
  std::vector<int> observed_deaths_;
};

/// Join (or, for rank 0, host) the socket group rendezvous at `endpoint`
/// (`unix:///path` or `tcp://host:port`) and return the connected endpoint.
/// Blocks until all `world` ranks have checked in or the rendezvous deadline
/// expires (vqmc::CommTimeoutError).
std::unique_ptr<SocketCommunicator> connect_socket_group(
    const std::string& endpoint, int rank, int world,
    const SocketGroupOptions& options = {});

/// Environment-spec rendezvous (the vqmc_launch child protocol): reads
///   VQMC_ENDPOINT  — rendezvous endpoint (required)
///   VQMC_RANK      — this rank (required)
///   VQMC_RANKS     — world size (required)
///   VQMC_NODE_SIZE — hierarchical node size (optional, default flat)
/// and connects with `options` (node_size overridden by the env when set).
/// Throws vqmc::Error when a required variable is missing or malformed.
std::unique_ptr<SocketCommunicator> connect_socket_group_from_env(
    SocketGroupOptions options = {});

/// Thread-hosted socket group: spawn `num_ranks` threads, each owning a
/// SocketCommunicator endpoint of one group over loopback sockets, and join
/// them. Same body/error contract as run_thread_group — this is what lets
/// the conformance suite (and TSan) drive the full wire protocol in one
/// process. `endpoint` defaults to a fresh Unix socket under the system
/// temp directory.
void run_socket_group(int num_ranks,
                      const std::function<void(Communicator&)>& body,
                      const SocketGroupOptions& options = {},
                      std::string endpoint = "");

/// Rethrow the most informative of a group's per-rank errors: non-timeout
/// failures (the root cause) win over the CommTimeoutErrors they trigger on
/// peer ranks. No-op when no error is set. Shared by both group runners.
void rethrow_group_errors(const std::vector<std::exception_ptr>& errors);

}  // namespace vqmc::parallel
