#include "parallel/wire_protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "core/checkpoint.hpp"  // fnv1a64
#include "rng/splitmix.hpp"

namespace vqmc::parallel::wire {

namespace {

constexpr std::uint32_t kMagic = 0x56515750u;  // "VQWP"

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t type = 0;
  std::uint64_t seq = 0;
  std::uint64_t payload_bytes = 0;
};

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  VQMC_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "wire: cannot set O_NONBLOCK");
}

/// Parse `spec` into either a unix path or a host/port pair.
struct ParsedSpec {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp
  int port = 0;      // tcp
};

ParsedSpec parse_spec(const std::string& spec) {
  ParsedSpec parsed;
  if (spec.rfind("unix://", 0) == 0) {
    parsed.is_unix = true;
    parsed.path = spec.substr(7);
    VQMC_REQUIRE(!parsed.path.empty(), "wire: empty unix socket path in '" +
                                           spec + "'");
    VQMC_REQUIRE(parsed.path.size() < sizeof(sockaddr_un{}.sun_path),
                 "wire: unix socket path too long: '" + parsed.path + "'");
    return parsed;
  }
  if (spec.rfind("tcp://", 0) == 0) {
    const std::string rest = spec.substr(6);
    const std::size_t colon = rest.rfind(':');
    VQMC_REQUIRE(colon != std::string::npos && colon > 0,
                 "wire: expected tcp://host:port, got '" + spec + "'");
    parsed.host = rest.substr(0, colon);
    try {
      parsed.port = std::stoi(rest.substr(colon + 1));
    } catch (...) {
      throw Error("wire: bad port in endpoint '" + spec + "'");
    }
    VQMC_REQUIRE(parsed.port >= 0 && parsed.port <= 65535,
                 "wire: port out of range in '" + spec + "'");
    return parsed;
  }
  throw Error("wire: endpoint '" + spec +
              "' must start with unix:// or tcp://");
}

sockaddr_in tcp_address(const ParsedSpec& spec) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(std::uint16_t(spec.port));
  VQMC_REQUIRE(::inet_pton(AF_INET, spec.host.c_str(), &addr.sin_addr) == 1,
               "wire: cannot parse IPv4 address '" + spec.host +
                   "' (use a numeric address, e.g. 127.0.0.1)");
  return addr;
}

sockaddr_un unix_address(const ParsedSpec& spec) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, spec.path.c_str(), spec.path.size() + 1);
  return addr;
}

/// poll() one fd for `events`, honoring the absolute deadline. Returns true
/// when the fd is ready (or hung up), false when the deadline expired.
bool poll_fd(int fd, short events, double deadline_at) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline_at > 0) {
      const double left = deadline_at - monotonic_seconds();
      if (left <= 0) return false;
      timeout_ms = int(left * 1000) + 1;
    }
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return true;
    if (ready == 0) {
      if (deadline_at <= 0) continue;  // spurious zero without a deadline
      return false;
    }
    if (errno == EINTR) continue;
    throw Error("wire: poll failed: " + std::string(std::strerror(errno)));
  }
}

double deadline_at_from(double deadline_seconds) {
  return deadline_seconds > 0 ? monotonic_seconds() + deadline_seconds : 0;
}

/// Write exactly `bytes`; returns false on EPIPE/ECONNRESET, throws
/// CommTimeoutError past the deadline.
bool send_all(int fd, const void* data, std::size_t bytes,
              double deadline_at) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < bytes) {
    // Wait for writability up front so the deadline also holds for fds that
    // were never switched to O_NONBLOCK (e.g. adopted socketpairs).
    if (!poll_fd(fd, POLLOUT, deadline_at))
      throw CommTimeoutError("wire: send deadline expired (peer not draining)");
    const ::ssize_t w =
        ::send(fd, p + sent, bytes - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += std::size_t(w);
      continue;
    }
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_fd(fd, POLLOUT, deadline_at))
        throw CommTimeoutError(
            "wire: send deadline expired (peer not draining)");
      continue;
    }
    return false;  // any other hard error counts as a dead peer
  }
  return true;
}

/// Read exactly `bytes`. Returns the number read; a short return means the
/// peer closed (EOF/reset) mid-read. Throws CommTimeoutError past the
/// deadline.
std::size_t recv_all(int fd, void* data, std::size_t bytes,
                     double deadline_at) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t got = 0;
  while (got < bytes) {
    // As in send_all: poll first so deadlines hold even on blocking fds.
    if (!poll_fd(fd, POLLIN, deadline_at))
      throw CommTimeoutError("wire: recv deadline expired (peer silent)");
    const ::ssize_t r = ::recv(fd, p + got, bytes - got, 0);
    if (r > 0) {
      got += std::size_t(r);
      continue;
    }
    if (r == 0) return got;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_fd(fd, POLLIN, deadline_at))
        throw CommTimeoutError("wire: recv deadline expired (peer silent)");
      continue;
    }
    if (errno == ECONNRESET) return got;
    throw Error("wire: recv failed: " + std::string(std::strerror(errno)));
  }
  return got;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener listen_on(const std::string& spec, int backlog) {
  const ParsedSpec parsed = parse_spec(spec);
  const int fd = ::socket(parsed.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  VQMC_REQUIRE(fd >= 0, "wire: cannot create socket for '" + spec + "'");
  Socket socket(fd);

  if (parsed.is_unix) {
    ::unlink(parsed.path.c_str());  // stale socket file from a dead run
    const sockaddr_un addr = unix_address(parsed);
    VQMC_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "wire: cannot bind '" + spec +
                     "': " + std::strerror(errno));
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = tcp_address(parsed);
    VQMC_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "wire: cannot bind '" + spec +
                     "': " + std::strerror(errno));
  }
  VQMC_REQUIRE(::listen(fd, backlog) == 0,
               "wire: cannot listen on '" + spec + "'");
  set_nonblocking(fd);

  Listener listener;
  listener.endpoint = spec;
  if (!parsed.is_unix && parsed.port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    VQMC_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                               &len) == 0,
                 "wire: getsockname failed for '" + spec + "'");
    listener.endpoint = "tcp://" + parsed.host + ":" +
                        std::to_string(ntohs(bound.sin_port));
  }
  listener.socket = std::move(socket);
  return listener;
}

Socket connect_to(const std::string& spec, double deadline_seconds,
                  std::uint64_t jitter_seed, long long* attempts,
                  double backoff_base_seconds, double backoff_max_seconds) {
  const ParsedSpec parsed = parse_spec(spec);
  const double deadline_at = deadline_at_from(deadline_seconds);
  double backoff = backoff_base_seconds;
  std::uint64_t jitter_state = jitter_seed;
  long long tries = 0;
  for (;;) {
    const int fd =
        ::socket(parsed.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    VQMC_REQUIRE(fd >= 0, "wire: cannot create socket for '" + spec + "'");
    Socket socket(fd);
    int rc;
    if (parsed.is_unix) {
      const sockaddr_un addr = unix_address(parsed);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } else {
      const sockaddr_in addr = tcp_address(parsed);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    }
    if (rc == 0) {
      if (!parsed.is_unix) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      set_nonblocking(fd);
      if (attempts) *attempts = tries;
      return socket;
    }
    ++tries;
    socket.close();
    if (deadline_at > 0 && monotonic_seconds() >= deadline_at)
      throw CommTimeoutError("wire: rendezvous with '" + spec +
                             "' timed out after " + std::to_string(tries) +
                             " attempt(s): " + std::strerror(errno));
    // Exponential backoff with deterministic jitter in [0, backoff/2): many
    // ranks dialing the same just-started listener spread out instead of
    // stampeding in lockstep.
    jitter_state = rng::splitmix64_once(jitter_state);
    const double jitter =
        backoff * 0.5 * (double(jitter_state >> 11) / double(1ull << 53));
    double sleep_for = backoff + jitter;
    if (deadline_at > 0)
      sleep_for = std::min(sleep_for, deadline_at - monotonic_seconds());
    if (sleep_for > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_for));
    backoff = std::min(backoff * 2, backoff_max_seconds);
  }
}

Socket accept_from(Socket& listener, double deadline_seconds) {
  const double deadline_at = deadline_at_from(deadline_seconds);
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_nonblocking(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_fd(listener.fd(), POLLIN, deadline_at))
        throw CommTimeoutError(
            "wire: accept deadline expired (a rank never connected)");
      continue;
    }
    throw Error("wire: accept failed: " + std::string(std::strerror(errno)));
  }
}

bool send_frame(Socket& socket, FrameType type, std::uint64_t seq,
                const void* payload, std::size_t payload_bytes,
                double deadline_seconds) {
  const double deadline_at = deadline_at_from(deadline_seconds);
  FrameHeader header;
  header.type = std::uint32_t(type);
  header.seq = seq;
  header.payload_bytes = payload_bytes;
  // Checksum covers header and payload, so a frame delivered against the
  // wrong sequence or with flipped payload bits is rejected before any fold.
  std::uint64_t checksum = fnv1a64(&header, sizeof(header));
  if (payload_bytes > 0) {
    // Continue the FNV stream over the payload.
    const auto* p = static_cast<const unsigned char*>(payload);
    for (std::size_t i = 0; i < payload_bytes; ++i) {
      checksum ^= p[i];
      checksum *= 0x100000001b3ULL;
    }
  }
  if (!send_all(socket.fd(), &header, sizeof(header), deadline_at))
    return false;
  if (payload_bytes > 0 &&
      !send_all(socket.fd(), payload, payload_bytes, deadline_at))
    return false;
  return send_all(socket.fd(), &checksum, sizeof(checksum), deadline_at);
}

bool recv_frame(Socket& socket, Frame& out, double deadline_seconds) {
  const double deadline_at = deadline_at_from(deadline_seconds);
  FrameHeader header;
  const std::size_t header_got =
      recv_all(socket.fd(), &header, sizeof(header), deadline_at);
  if (header_got == 0) return false;  // clean EOF at a frame boundary
  VQMC_REQUIRE(header_got == sizeof(header),
               "wire: connection closed inside a frame header");
  VQMC_REQUIRE(header.magic == kMagic, "wire: bad frame magic (corrupt "
                                       "stream or non-vqmc peer)");
  VQMC_REQUIRE(header.payload_bytes <= (std::uint64_t(1) << 32),
               "wire: implausible frame payload size (corrupt header)");
  out.type = FrameType(header.type);
  out.seq = header.seq;
  out.payload.resize(std::size_t(header.payload_bytes));
  if (header.payload_bytes > 0) {
    const std::size_t got = recv_all(socket.fd(), out.payload.data(),
                                     out.payload.size(), deadline_at);
    VQMC_REQUIRE(got == out.payload.size(),
                 "wire: connection closed inside a frame payload");
  }
  std::uint64_t wire_checksum = 0;
  const std::size_t trailer_got = recv_all(socket.fd(), &wire_checksum,
                                           sizeof(wire_checksum), deadline_at);
  VQMC_REQUIRE(trailer_got == sizeof(wire_checksum),
               "wire: connection closed inside a frame trailer");
  std::uint64_t checksum = fnv1a64(&header, sizeof(header));
  for (const unsigned char byte : out.payload) {
    checksum ^= byte;
    checksum *= 0x100000001b3ULL;
  }
  VQMC_REQUIRE(checksum == wire_checksum,
               "wire: frame checksum mismatch (corrupt stream)");
  return true;
}

bool poll_readable(const Socket& socket, double deadline_seconds) {
  return poll_fd(socket.fd(), POLLIN, deadline_at_from(deadline_seconds));
}

void encode_reals(std::vector<unsigned char>& out, const Real* data,
                  std::size_t count) {
  const std::size_t offset = out.size();
  out.resize(offset + count * sizeof(Real));
  if (count > 0) std::memcpy(out.data() + offset, data, count * sizeof(Real));
}

void decode_reals(const std::vector<unsigned char>& in, std::size_t offset,
                  Real* data, std::size_t count) {
  VQMC_REQUIRE(offset + count * sizeof(Real) <= in.size(),
               "wire: payload shorter than the expected Real span");
  if (count > 0) std::memcpy(data, in.data() + offset, count * sizeof(Real));
}

}  // namespace vqmc::parallel::wire
