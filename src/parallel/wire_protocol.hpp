#pragma once

/// \file wire_protocol.hpp
/// \brief Framed, checksummed message transport for the socket communicator
/// (DESIGN.md §5h).
///
/// Every message on a rank-to-rank connection is one *frame*:
///
///   [u32 magic "VQWP"] [u32 type] [u64 seq] [u64 payload_bytes]
///   [payload ...] [u64 fnv1a64(header || payload)]
///
/// Frames are written and read atomically with poll()-enforced deadlines on
/// non-blocking file descriptors, so a dead or wedged peer can never block a
/// collective past its deadline — the timeout surfaces as the same typed
/// vqmc::CommTimeoutError the thread backend throws.  A checksum mismatch or
/// a torn frame is reported as corruption (vqmc::Error), never silently
/// folded into a reduction.
///
/// Endpoints are textual specs:
///   * `unix:///path/to/socket`  — AF_UNIX stream socket (same host);
///   * `tcp://host:port`        — AF_INET stream socket (port 0 = ephemeral).
///
/// The connect side retries with exponential backoff plus deterministic
/// per-rank jitter until the rendezvous deadline, so ranks launched in any
/// order (or seconds apart) still find the listener.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/real.hpp"

namespace vqmc::parallel::wire {

/// Frame types (the `type` header field).
enum class FrameType : std::uint32_t {
  kHello = 1,    ///< joiner -> listener: my rank (+ optional listen address)
  kWelcome = 2,  ///< listener -> joiner: group metadata, leader addresses
  kContrib = 3,  ///< member -> leader / leader -> root: collective payload
  kResult = 4,   ///< root -> leader / leader -> member: folded payload + map
  kLeave = 5,    ///< member -> leader: graceful permanent departure
  kAbort = 6,    ///< root -> everyone: group aborted, reason in payload
  kStatus = 7,   ///< obs client -> server: status request, format in payload
  kMetrics = 8,  ///< obs client -> server: Prometheus-text metrics request
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kContrib;
  std::uint64_t seq = 0;
  std::vector<unsigned char> payload;
};

/// A connected (or listening) socket endpoint. Owns the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// A bound, listening socket plus the spec peers should dial to reach it
/// (with the kernel-assigned port substituted for `tcp://host:0`).
struct Listener {
  Socket socket;
  std::string endpoint;
};

/// Bind and listen on `spec` (`unix://...` or `tcp://host:port`). For a unix
/// spec any stale socket file is unlinked first. Throws vqmc::Error on
/// failure.
Listener listen_on(const std::string& spec, int backlog = 64);

/// Dial `spec`, retrying with exponential backoff (base 2, starting at
/// `backoff_base_seconds`, capped at `backoff_max_seconds`) plus a
/// deterministic jitter derived from `jitter_seed`, until the connection
/// succeeds or `deadline_seconds` elapses. Returns the connected socket and
/// reports the number of failed attempts through `*attempts` (when non-null).
/// Throws vqmc::CommTimeoutError when the deadline expires.
Socket connect_to(const std::string& spec, double deadline_seconds,
                  std::uint64_t jitter_seed, long long* attempts = nullptr,
                  double backoff_base_seconds = 0.005,
                  double backoff_max_seconds = 0.25);

/// Accept one connection, waiting at most `deadline_seconds` (<= 0 waits
/// forever). Throws vqmc::CommTimeoutError on deadline expiry.
Socket accept_from(Socket& listener, double deadline_seconds);

/// Write one frame. `deadline_seconds` <= 0 waits forever. Returns false if
/// the peer is gone (EPIPE/ECONNRESET — the caller decides whether that is a
/// death to fold or an error); throws vqmc::CommTimeoutError when the
/// deadline expires with the frame only partially written.
bool send_frame(Socket& socket, FrameType type, std::uint64_t seq,
                const void* payload, std::size_t payload_bytes,
                double deadline_seconds);

/// Read one frame into `out`. Returns false on a clean or reset connection
/// end (peer death) *at a frame boundary*; throws vqmc::CommTimeoutError on
/// deadline expiry and vqmc::Error on a torn frame, bad magic, or checksum
/// mismatch.
bool recv_frame(Socket& socket, Frame& out, double deadline_seconds);

/// Block until `socket` is readable (or in error/EOF state) for up to
/// `deadline_seconds` (<= 0 waits forever). Returns true if the socket woke
/// the poll, false on timeout. Does not consume any bytes.
bool poll_readable(const Socket& socket, double deadline_seconds);

/// Helpers for Real payloads (the collectives move spans of Real).
void encode_reals(std::vector<unsigned char>& out, const Real* data,
                  std::size_t count);
void decode_reals(const std::vector<unsigned char>& in, std::size_t offset,
                  Real* data, std::size_t count);

}  // namespace vqmc::parallel::wire
