#include "parallel/fault_injection.hpp"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/error.hpp"

namespace vqmc::parallel {

void FaultInjectingCommunicator::before_collective(std::span<Real> payload) {
  const long long call = calls_++;
  if (plan_.kill_at_call == call) {
    inner_.leave();
    throw RankDeadError("fault injection: rank " + std::to_string(rank()) +
                        " killed at collective call " + std::to_string(call));
  }
  if (plan_.hang_at_call == call) {
    // Emulate a hung peer: block (interruptibly, so a group abort wakes us
    // and the thread can join) well past the group deadline.
    inner_.interruptible_sleep(plan_.hang_seconds);
  }
  if (plan_.delay_at_call == call && plan_.delay_seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(plan_.delay_seconds));
  }
  if (plan_.corrupt_at_call == call && plan_.corrupt_index < payload.size()) {
    static_assert(sizeof(Real) == sizeof(std::uint64_t),
                  "bit corruption assumes 64-bit Real");
    std::uint64_t bits = 0;
    std::memcpy(&bits, &payload[plan_.corrupt_index], sizeof(bits));
    bits ^= plan_.corrupt_xor_mask;
    std::memcpy(&payload[plan_.corrupt_index], &bits, sizeof(bits));
  }
}

void FaultInjectingCommunicator::allreduce_sum(std::span<Real> data) {
  before_collective(data);
  inner_.allreduce_sum(data);
}

void FaultInjectingCommunicator::allreduce_max(std::span<Real> data) {
  before_collective(data);
  inner_.allreduce_max(data);
}

void FaultInjectingCommunicator::broadcast(std::span<Real> data, int root) {
  before_collective(data);
  inner_.broadcast(data, root);
}

void FaultInjectingCommunicator::barrier() {
  before_collective(std::span<Real>());
  inner_.barrier();
}

}  // namespace vqmc::parallel
