#pragma once

/// \file fault_injection.hpp
/// \brief Deterministic fault injection for the communicator layer.
///
/// Every recovery path of the fault-tolerance design (DESIGN.md §5c) must be
/// testable without real hardware failures. `FaultInjectingCommunicator`
/// wraps any Communicator endpoint and triggers scripted faults at exact
/// collective-call indices, so a test can kill a rank at iteration k, hang
/// one allreduce, or corrupt payload bits — reproducibly, every run:
///
///  * kill:    the rank leaves the group and throws vqmc::RankDeadError
///             (the elastic-recovery path);
///  * hang:    the rank blocks inside the collective until the group's
///             deadline aborts it (the CommTimeoutError path);
///  * delay:   the rank is late but under the deadline (must be tolerated);
///  * corrupt: payload bits are flipped before the reduction (the
///             health-guard detection path).

#include <cstdint>

#include "parallel/communicator.hpp"

namespace vqmc::parallel {

/// Scripted faults for one rank. Collective calls (allreduce_sum,
/// allreduce_max, broadcast, barrier) are counted from 0; a trigger of -1 is
/// disabled. `kill_at_iteration` is interpreted by train_distributed at the
/// top of its training loop (iteration index, not call index).
struct FaultPlan {
  /// Leave the group and throw RankDeadError *instead of* making collective
  /// call number `kill_at_call`.
  long long kill_at_call = -1;
  /// Die at the top of training iteration `kill_at_iteration` (used by
  /// train_distributed; ignored by the raw decorator).
  long long kill_at_iteration = -1;
  /// Block inside collective call number `hang_at_call` for up to
  /// `hang_seconds` (interruptibly: a group abort wakes the sleeper) before
  /// attempting the call — with a group deadline shorter than the hang, the
  /// group times out and every rank throws CommTimeoutError.
  long long hang_at_call = -1;
  double hang_seconds = 3600;
  /// Sleep `delay_seconds` (non-interruptibly short) before collective call
  /// number `delay_at_call` — a slow rank that deadlines must tolerate.
  long long delay_at_call = -1;
  double delay_seconds = 0;
  /// XOR `corrupt_xor_mask` into the bit pattern of payload element
  /// `corrupt_index` before collective call number `corrupt_at_call`.
  /// The default mask flips the exponent field of an IEEE-754 double, which
  /// turns a typical finite value into inf/NaN-scale garbage — exactly what
  /// the run-health guards must catch downstream.
  long long corrupt_at_call = -1;
  std::size_t corrupt_index = 0;
  std::uint64_t corrupt_xor_mask = 0x7ff0000000000000ULL;

  [[nodiscard]] bool empty() const {
    return kill_at_call < 0 && kill_at_iteration < 0 && hang_at_call < 0 &&
           delay_at_call < 0 && corrupt_at_call < 0;
  }
};

/// Decorator that forwards every Communicator call to `inner`, injecting the
/// faults scripted in `plan` at the configured collective-call indices.
class FaultInjectingCommunicator final : public Communicator {
 public:
  FaultInjectingCommunicator(Communicator& inner, FaultPlan plan)
      : inner_(inner), plan_(plan) {}

  using Communicator::allreduce_sum;  // keep the scalar overloads visible
  using Communicator::allreduce_max;

  [[nodiscard]] int rank() const override { return inner_.rank(); }
  [[nodiscard]] int size() const override { return inner_.size(); }
  [[nodiscard]] int live_count() const override { return inner_.live_count(); }
  [[nodiscard]] bool is_alive(int r) const override {
    return inner_.is_alive(r);
  }
  void leave() override { inner_.leave(); }
  void interruptible_sleep(double seconds) override {
    inner_.interruptible_sleep(seconds);
  }

  void allreduce_sum(std::span<Real> data) override;
  void allreduce_max(std::span<Real> data) override;
  void broadcast(std::span<Real> data, int root) override;
  void barrier() override;

  /// Collective calls issued so far through this endpoint.
  [[nodiscard]] long long calls() const { return calls_; }

 private:
  /// Run the pre-call faults for collective call `calls_` (kill / hang /
  /// delay / corrupt), then advance the call counter.
  void before_collective(std::span<Real> payload);

  Communicator& inner_;
  const FaultPlan plan_;
  long long calls_ = 0;
};

}  // namespace vqmc::parallel
