#pragma once

/// \file process_faults.hpp
/// \brief Scripted faults against *real processes* (DESIGN.md §5h).
///
/// `FaultPlan` (fault_injection.hpp) scripts faults inside a thread-backed
/// rank. `ProcessFaultPlan` extends the same plan idea to the process
/// fault matrix that `vqmc_launch` executes against socket-backed ranks:
///
///  * kill  — the rank raises SIGKILL on itself at the top of the given
///            training iteration: an un-announced, real process death.
///            Survivors detect it through EOF on its connections and fold
///            it out (or abort, per PeerDeathPolicy). Raising at the
///            iteration boundary makes detection — and therefore the shrink
///            trajectory — deterministic and bitwise reproducible.
///  * leave — the rank departs gracefully (Communicator::leave()) at the
///            top of the iteration and exits: the cooperative-departure
///            path, also deterministic.
///  * stop  — the rank raises SIGSTOP on itself at the top of the
///            iteration: a connected-but-silent (wedged) peer. The launcher
///            sends SIGCONT after `stop_seconds`. With a collective
///            deadline shorter than the stop, the group aborts with
///            CommTimeoutError — the hang path against a real process.
///
/// Plans are scripted as compact spec strings (CLI / env friendly):
///
///   kill:rank=2,iter=10
///   leave:rank=1,iter=4
///   stop:rank=3,iter=5,secs=1.5

#include <string>
#include <vector>

#include "parallel/communicator.hpp"

namespace vqmc::parallel {

/// Scripted real-process faults for one rank; -1 disables a trigger.
struct ProcessFaultPlan {
  long long kill_at_iteration = -1;   ///< raise(SIGKILL): hard death
  long long leave_at_iteration = -1;  ///< graceful leave() + clean exit
  long long stop_at_iteration = -1;   ///< raise(SIGSTOP): wedged peer
  double stop_seconds = 1.0;          ///< launcher sends SIGCONT after this

  [[nodiscard]] bool empty() const {
    return kill_at_iteration < 0 && leave_at_iteration < 0 &&
           stop_at_iteration < 0;
  }
};

/// Parse one `kind:key=value,...` spec. Throws vqmc::Error on an unknown
/// kind/key, a missing rank/iter, or a rank outside [0, world).
/// Returns the target rank through `*rank`.
ProcessFaultPlan parse_process_fault_spec(const std::string& spec, int world,
                                          int* rank);

/// Parse a batch of specs into a per-rank plan vector of length `world`
/// (at most one fault kind per rank per spec; later specs for the same rank
/// merge field-wise).
std::vector<ProcessFaultPlan> parse_process_fault_specs(
    const std::vector<std::string>& specs, int world);

/// Render `plan` back into the spec format (for handing a child its own
/// plan through the environment). Empty string for an empty plan.
std::string format_process_fault_spec(const ProcessFaultPlan& plan, int rank);

/// Child-side hook: run at the top of training iteration `iteration`,
/// before any collective. Executes whichever fault is scheduled now:
/// kill never returns; leave() throws vqmc::RankDeadError after leaving the
/// group (the caller unwinds and exits cleanly); stop blocks until SIGCONT
/// and then returns normally.
void apply_process_faults_at_iteration(const ProcessFaultPlan& plan,
                                       long long iteration,
                                       Communicator& comm);

}  // namespace vqmc::parallel
