#pragma once

/// \file cost_model.hpp
/// \brief Analytic device/interconnect cost model for the virtual cluster.
///
/// The paper's weak-scaling measurements (Figure 3, Tables 6-7) ran on
/// NVIDIA V100 GPUs (NVLink within a node, InfiniBand between nodes).  This
/// machine has neither, so the scaling benches report, alongside the real
/// thread wall-times, a *modeled device time* computed from first-principles
/// flop and byte counts with V100-class constants.  The model captures
/// exactly the quantities the paper's Section 4 analysis tracks:
///
///   compute:  O(h n^2 mbs) flops per sampling pass sequence (n forward
///             passes, each a [mbs x n] x [n x h] + [mbs x h] x [h x n]
///             matmul pair), plus per-pass kernel-launch latency;
///   comms:    a ring allreduce over d = 2hn + h + n gradient floats.
///
/// The parallel efficiency predicted by the model is Eq. 15's
/// O(hn^2 bs) / (O(hn^2 mbs) + O(hn)) ~= L.

#include <cstddef>

#include "tensor/real.hpp"

namespace vqmc::parallel {

/// Hardware constants (defaults are V100-class, the paper's testbed).
struct DeviceCostModel {
  double flops_per_second = 14e12;     ///< V100 fp32 peak ~14-15.7 TFLOPS
  double kernel_latency_seconds = 8e-6;///< per launched forward pass
  double memory_bytes = 32e9;          ///< V100 32 GB variant
  double bytes_per_activation = 4;     ///< fp32 training

  // Interconnect (ring allreduce).
  double intra_node_bandwidth = 130e9;  ///< NVLink, bytes/s
  double inter_node_bandwidth = 12.0e9; ///< 100 Gb/s InfiniBand, bytes/s
  double intra_node_latency = 5e-6;     ///< per ring step, seconds
  double inter_node_latency = 2.5e-5;

  /// Per-batched-forward framework overhead (op dispatch, Python loop) —
  /// the quantity that actually dominates the paper's Table 1 timings on
  /// small models. Calibrated against the paper's measured per-iteration
  /// costs (~0.3-0.5 ms per pass in its PyTorch setup).
  double dispatch_latency_seconds = 3.5e-4;
};

/// Cluster shape: L1 nodes x L2 GPUs per node (the paper's "L1 x L2").
struct ClusterShape {
  int nodes = 1;
  int gpus_per_node = 1;
  [[nodiscard]] int total() const { return nodes * gpus_per_node; }
};

/// MADE parameter count d = 2hn + h + n (Section 4).
std::size_t made_parameter_count(std::size_t n, std::size_t h);

/// Flops for one batched MADE forward pass ([bs,n]->[bs,h]->[bs,n]).
double made_forward_flops(std::size_t n, std::size_t h, std::size_t batch);

/// Modeled time for AUTO-sampling one batch: n forward passes.
double model_sampling_seconds(const DeviceCostModel& device, std::size_t n,
                              std::size_t h, std::size_t batch);

/// Modeled time for the TIM local-energy measurement: 1 + ceil(bs*n/chunk)
/// forward passes over the connected configurations.
double model_local_energy_seconds(const DeviceCostModel& device, std::size_t n,
                                  std::size_t h, std::size_t batch,
                                  std::size_t chunk);

/// Modeled ring-allreduce time for `count` Reals across the cluster: the
/// slowest link (inter-node when nodes > 1) dominates each of the
/// 2(L - 1) ring steps.
double model_allreduce_seconds(const DeviceCostModel& device,
                               const ClusterShape& shape, std::size_t count);

/// Modeled wall time of one full distributed VQMC iteration (sampling +
/// local energy + backprop + allreduce); backprop is costed at 2x forward.
double model_iteration_seconds(const DeviceCostModel& device,
                               const ClusterShape& shape, std::size_t n,
                               std::size_t h, std::size_t mbs,
                               std::size_t chunk);

/// Flops of one batched RBM log-psi evaluation ([bs,n] -> [bs,h] -> [bs]).
double rbm_forward_flops(std::size_t n, std::size_t h, std::size_t batch);

/// Modeled wall time of one full *training iteration* (sampling + local
/// energy + backprop) for MADE&AUTO on a TIM problem — the paper's Table 1
/// protocol. Every batched forward pass pays the dispatch latency, which is
/// what makes AUTO's n-pass sampling fast and MCMC's (k + bs/c)-pass chains
/// slow on real accelerators.
double model_auto_iteration_seconds(const DeviceCostModel& device,
                                    std::size_t n, std::size_t h,
                                    std::size_t batch, std::size_t chunk);

/// Same for RBM&MCMC with `chains` parallel chains and `burn_in` discarded
/// steps per iteration (the paper's k = 3n + 100, c = 2).
double model_mcmc_iteration_seconds(const DeviceCostModel& device,
                                    std::size_t n, std::size_t h,
                                    std::size_t batch, std::size_t chains,
                                    std::size_t burn_in, std::size_t thinning,
                                    std::size_t chunk);

/// The memory-saturating per-GPU mini-batch used in Figure 3 / Table 7.
/// Matches the paper's reported values at its nine problem sizes (activation
/// memory for the local-energy flip evaluations scales as mbs * n^2) and
/// falls back to that scaling law for other n. Result is a power of two,
/// >= 4.
std::size_t saturating_mini_batch(const DeviceCostModel& device,
                                  std::size_t n);

}  // namespace vqmc::parallel
