#pragma once

/// \file communicator.hpp
/// \brief MPI-style collective-communication interface.
///
/// The distributed trainer is written against this interface so the same
/// code runs on a single process (SelfCommunicator), on thread-backed
/// virtual devices (ThreadCommunicator), or — by dropping in a thin adapter
/// — on real MPI ranks.  Only the collectives the paper's data-parallel
/// scheme needs are included: the gradient averaging is one allreduce per
/// iteration (Section 4), parameters are broadcast once at startup.
///
/// Failure contract (the fault-tolerance layer builds on these rules):
///  * Implementations may enforce a per-collective deadline; a collective
///    that cannot complete within it throws vqmc::CommTimeoutError on every
///    blocked rank instead of waiting forever — no rank is left deadlocked.
///  * A rank may permanently `leave()` the group at a collective boundary
///    (i.e. while it is not inside a collective). Subsequent collectives
///    complete among the surviving ranks only; reductions skip departed
///    ranks' stale contributions deterministically.

#include <chrono>
#include <cstdint>
#include <span>
#include <thread>

#include "tensor/real.hpp"

namespace vqmc::parallel {

/// Collective-communication endpoint for one rank.
///
/// All collectives are synchronizing and must be called by every *live* rank
/// of the group in the same order (the usual MPI contract).
class Communicator {
 public:
  virtual ~Communicator() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  /// Elementwise sum across live ranks; every rank receives the result in
  /// place.
  virtual void allreduce_sum(std::span<Real> data) = 0;

  /// Scalar convenience overload.
  Real allreduce_sum(Real value) {
    allreduce_sum(std::span<Real>(&value, 1));
    return value;
  }

  /// Elementwise max across live ranks, in place.
  virtual void allreduce_max(std::span<Real> data) = 0;

  /// Scalar convenience overload (symmetric with allreduce_sum so single-
  /// and multi-rank call sites read identically).
  Real allreduce_max(Real value) {
    allreduce_max(std::span<Real>(&value, 1));
    return value;
  }

  /// Copy `data` from `root` to every rank, in place.
  virtual void broadcast(std::span<Real> data, int root) = 0;

  /// Block until every live rank has arrived.
  virtual void barrier() = 0;

  /// Number of ranks still participating in collectives (== size() until a
  /// rank leaves the group).
  [[nodiscard]] virtual int live_count() const { return size(); }

  /// Whether rank `r` is still participating in collectives.
  [[nodiscard]] virtual bool is_alive(int r) const {
    return r >= 0 && r < size();
  }

  /// Permanently remove *this* rank from the group. Must be called at a
  /// collective boundary; afterwards this endpoint must not issue further
  /// collectives. Surviving ranks' collectives complete without it.
  virtual void leave() {}

  /// Block for up to `seconds`, returning early if the group is aborted or
  /// torn down. Fault injection uses this to emulate a hung collective
  /// without leaving a detached thread sleeping past the group's lifetime.
  /// The default (no group to watch) is a plain sleep.
  virtual void interruptible_sleep(double seconds) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

/// Single-rank communicator (the degenerate L = 1 "cluster").
class SelfCommunicator final : public Communicator {
 public:
  using Communicator::allreduce_sum;  // keep the scalar overloads visible
  using Communicator::allreduce_max;

  [[nodiscard]] int rank() const override { return 0; }
  [[nodiscard]] int size() const override { return 1; }
  void allreduce_sum(std::span<Real> /*data*/) override {}
  void allreduce_max(std::span<Real> /*data*/) override {}
  void broadcast(std::span<Real> /*data*/, int /*root*/) override {}
  void barrier() override {}
};

}  // namespace vqmc::parallel
