#pragma once

/// \file communicator.hpp
/// \brief MPI-style collective-communication interface.
///
/// The distributed trainer is written against this interface so the same
/// code runs on a single process (SelfCommunicator), on thread-backed
/// virtual devices (ThreadCommunicator), or — by dropping in a thin adapter
/// — on real MPI ranks.  Only the collectives the paper's data-parallel
/// scheme needs are included: the gradient averaging is one allreduce per
/// iteration (Section 4), parameters are broadcast once at startup.

#include <cstdint>
#include <span>

#include "tensor/real.hpp"

namespace vqmc::parallel {

/// Collective-communication endpoint for one rank.
///
/// All collectives are synchronizing and must be called by every rank of
/// the group in the same order (the usual MPI contract).
class Communicator {
 public:
  virtual ~Communicator() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  /// Elementwise sum across ranks; every rank receives the result in place.
  virtual void allreduce_sum(std::span<Real> data) = 0;

  /// Scalar convenience overload.
  Real allreduce_sum(Real value) {
    allreduce_sum(std::span<Real>(&value, 1));
    return value;
  }

  /// Elementwise max across ranks, in place.
  virtual void allreduce_max(std::span<Real> data) = 0;

  /// Copy `data` from `root` to every rank, in place.
  virtual void broadcast(std::span<Real> data, int root) = 0;

  /// Block until every rank has arrived.
  virtual void barrier() = 0;
};

/// Single-rank communicator (the degenerate L = 1 "cluster").
class SelfCommunicator final : public Communicator {
 public:
  using Communicator::allreduce_sum;  // keep the scalar overload visible

  [[nodiscard]] int rank() const override { return 0; }
  [[nodiscard]] int size() const override { return 1; }
  void allreduce_sum(std::span<Real> /*data*/) override {}
  void allreduce_max(std::span<Real> /*data*/) override {}
  void broadcast(std::span<Real> /*data*/, int /*root*/) override {}
  void barrier() override {}
};

}  // namespace vqmc::parallel
