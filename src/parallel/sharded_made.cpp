#include "parallel/sharded_made.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::parallel {

namespace {
constexpr Real kProbEps = 1e-12;
Real clamped_log(Real p) { return std::log(std::max(p, kProbEps)); }
}  // namespace

ShardedMade::ShardedMade(const Made& prototype, Communicator& comm)
    : comm_(comm),
      n_(prototype.num_spins()),
      h_total_(prototype.hidden_size()) {
  const std::size_t ranks = std::size_t(comm_.size());
  VQMC_REQUIRE(h_total_ >= ranks,
               "ShardedMade: need at least one hidden unit per rank");
  // Contiguous block partition of the hidden units.
  const std::size_t base = h_total_ / ranks;
  const std::size_t extra = h_total_ % ranks;
  const std::size_t rank = std::size_t(comm_.rank());
  h_local_ = base + (rank < extra ? 1 : 0);
  h_begin_ = rank * base + std::min(rank, extra);

  params_ = Vector(h_local_ * n_ + h_local_ + n_ * h_local_ + n_);
  mask1_ = Matrix(h_local_, n_);
  mask2_ = Matrix(n_, h_local_);

  // Slice the prototype. Its layout: W1 (h x n) | b1 (h) | W2 (n x h) |
  // b2 (n).
  const std::span<const Real> proto = prototype.parameters();
  const Real* proto_w1 = proto.data();
  const Real* proto_b1 = proto.data() + h_total_ * n_;
  const Real* proto_w2 = proto.data() + h_total_ * n_ + h_total_;
  const Real* proto_b2 = proto.data() + h_total_ * n_ + h_total_ + n_ * h_total_;

  Real* w1_loc = params_.data();
  Real* b1_loc = params_.data() + h_local_ * n_;
  Real* w2_loc = params_.data() + h_local_ * n_ + h_local_;
  Real* b2_loc = params_.data() + h_local_ * n_ + h_local_ + n_ * h_local_;

  std::copy_n(proto_w1 + h_begin_ * n_, h_local_ * n_, w1_loc);
  std::copy_n(proto_b1 + h_begin_, h_local_, b1_loc);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < h_local_; ++k)
      w2_loc[i * h_local_ + k] = proto_w2[i * h_total_ + (h_begin_ + k)];
  std::copy_n(proto_b2, n_, b2_loc);

  for (std::size_t k = 0; k < h_local_; ++k)
    for (std::size_t j = 0; j < n_; ++j)
      mask1_(k, j) = prototype.mask1()(h_begin_ + k, j);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < h_local_; ++k)
      mask2_(i, k) = prototype.mask2()(i, h_begin_ + k);
}

void ShardedMade::masked_weights(Matrix& w1m, Matrix& w2m) const {
  w1m = Matrix(h_local_, n_);
  w2m = Matrix(n_, h_local_);
  for (std::size_t i = 0; i < h_local_ * n_; ++i)
    w1m.data()[i] = mask1_.data()[i] * w1()[i];
  for (std::size_t i = 0; i < n_ * h_local_; ++i)
    w2m.data()[i] = mask2_.data()[i] * w2()[i];
}

void ShardedMade::forward(const Matrix& batch, Forward& f) {
  VQMC_REQUIRE(batch.cols() == n_, "ShardedMade: batch has wrong spin count");
  const std::size_t bs = batch.rows();
  Matrix w1m, w2m;
  masked_weights(w1m, w2m);

  f.a1 = Matrix(bs, h_local_);
  gemm_nt(batch, w1m, f.a1);
  add_row_broadcast(f.a1, std::span<const Real>(b1(), h_local_));
  f.h1 = f.a1;
  relu_inplace(f.h1);

  // Partial pre-sigmoid output from this shard; the allreduce completes the
  // hidden-unit sum across ranks. This is THE model-parallel communication.
  f.p = Matrix(bs, n_);
  gemm_nt(f.h1, w2m, f.p);
  comm_.allreduce_sum(std::span<Real>(f.p.data(), f.p.size()));
  ++allreduce_count_;
  add_row_broadcast(f.p, std::span<const Real>(b2(), n_));
  sigmoid_inplace(f.p);
}

void ShardedMade::conditionals(const Matrix& batch, Matrix& out) {
  Forward f;
  forward(batch, f);
  out = std::move(f.p);
}

void ShardedMade::log_psi(const Matrix& batch, std::span<Real> out) {
  VQMC_REQUIRE(out.size() == batch.rows(), "ShardedMade: output size mismatch");
  Forward f;
  forward(batch, f);
  const std::size_t bs = batch.rows();
  for (std::size_t k = 0; k < bs; ++k) {
    Real log_pi = 0;
    const Real* x = batch.row(k).data();
    const Real* p = f.p.row(k).data();
    for (std::size_t i = 0; i < n_; ++i)
      log_pi += x[i] * clamped_log(p[i]) + (1 - x[i]) * clamped_log(1 - p[i]);
    out[k] = log_pi / 2;
  }
}

void ShardedMade::accumulate_log_psi_gradient(const Matrix& batch,
                                              std::span<const Real> coeff,
                                              std::span<Real> grad) {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(coeff.size() == bs, "ShardedMade: coefficient size mismatch");
  VQMC_REQUIRE(grad.size() == num_local_parameters(),
               "ShardedMade: gradient size mismatch");

  Forward f;
  forward(batch, f);
  Matrix w1m, w2m;
  masked_weights(w1m, w2m);

  // g2 is identical on every rank (p is fully reduced) — so the output
  // bias gradient is replicated and the shard gradients need no comm.
  Matrix g2(bs, n_);
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real* p = f.p.row(k).data();
    Real* g = g2.row(k).data();
    const Real c = coeff[k] / 2;
    for (std::size_t i = 0; i < n_; ++i) g[i] = c * (x[i] - p[i]);
  }

  const std::size_t off_b1 = h_local_ * n_;
  const std::size_t off_w2 = off_b1 + h_local_;
  const std::size_t off_b2 = off_w2 + n_ * h_local_;

  Matrix dw2(n_, h_local_);
  gemm_tn_accumulate(g2, f.h1, dw2);
  for (std::size_t i = 0; i < n_ * h_local_; ++i)
    grad[off_w2 + i] += mask2_.data()[i] * dw2.data()[i];
  column_sum_accumulate(g2, grad.subspan(off_b2, n_));

  Matrix g1(bs, h_local_);
  gemm_nn(g2, w2m, g1);
  relu_backward_inplace(f.a1, g1);

  Matrix dw1(h_local_, n_);
  gemm_tn_accumulate(g1, batch, dw1);
  for (std::size_t i = 0; i < h_local_ * n_; ++i)
    grad[i] += mask1_.data()[i] * dw1.data()[i];
  column_sum_accumulate(g1, grad.subspan(off_b1, h_local_));
}

}  // namespace vqmc::parallel
