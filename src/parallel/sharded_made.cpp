#include "parallel/sharded_made.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::parallel {

namespace {
constexpr Real kProbEps = 1e-12;
}  // namespace

ShardedMade::ShardedMade(const Made& prototype, Communicator& comm)
    : comm_(comm),
      n_(prototype.num_spins()),
      h_total_(prototype.hidden_size()) {
  const std::size_t ranks = std::size_t(comm_.size());
  VQMC_REQUIRE(h_total_ >= ranks,
               "ShardedMade: need at least one hidden unit per rank");
  // Contiguous block partition of the hidden units.
  const std::size_t base = h_total_ / ranks;
  const std::size_t extra = h_total_ % ranks;
  const std::size_t rank = std::size_t(comm_.rank());
  h_local_ = base + (rank < extra ? 1 : 0);
  h_begin_ = rank * base + std::min(rank, extra);

  params_ = Vector(h_local_ * n_ + h_local_ + n_ * h_local_ + n_);
  mask1_ = Matrix(h_local_, n_);
  mask2_ = Matrix(n_, h_local_);

  // Slice the prototype. Its layout: W1 (h x n) | b1 (h) | W2 (n x h) |
  // b2 (n).
  const std::span<const Real> proto = prototype.parameters();
  const Real* proto_w1 = proto.data();
  const Real* proto_b1 = proto.data() + h_total_ * n_;
  const Real* proto_w2 = proto.data() + h_total_ * n_ + h_total_;
  const Real* proto_b2 = proto.data() + h_total_ * n_ + h_total_ + n_ * h_total_;

  Real* w1_loc = params_.data();
  Real* b1_loc = params_.data() + h_local_ * n_;
  Real* w2_loc = params_.data() + h_local_ * n_ + h_local_;
  Real* b2_loc = params_.data() + h_local_ * n_ + h_local_ + n_ * h_local_;

  std::copy_n(proto_w1 + h_begin_ * n_, h_local_ * n_, w1_loc);
  std::copy_n(proto_b1 + h_begin_, h_local_, b1_loc);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < h_local_; ++k)
      w2_loc[i * h_local_ + k] = proto_w2[i * h_total_ + (h_begin_ + k)];
  std::copy_n(proto_b2, n_, b2_loc);

  for (std::size_t k = 0; k < h_local_; ++k)
    for (std::size_t j = 0; j < n_; ++j)
      mask1_(k, j) = prototype.mask1()(h_begin_ + k, j);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < h_local_; ++k)
      mask2_(i, k) = prototype.mask2()(i, h_begin_ + k);
  // Extents survive slicing: a sliced prefix mask is still a prefix, a
  // sliced cyclic-prefix mask is still an interval list per row.
  plan_.build(mask1_, mask2_);
}

std::shared_ptr<const ShardedMade::MaskedWeights> ShardedMade::masked() const {
  const std::uint64_t v = version_.value();
  return cache_.fetch(v, [&] {
    auto mw = std::make_shared<MaskedWeights>();
    mw->version = v;
    mw->w1m = Matrix(h_local_, n_);  // zero-initialized
    mw->w2m = Matrix(n_, h_local_);
    const RowExtentsView e1 = plan_.w1.view();
    const RowExtentsView e2 = plan_.w2.view();
    for (std::size_t r = 0; r < h_local_; ++r) {
      Real* dst = mw->w1m.row(r).data();
      const Real* src = w1() + r * n_;
      for (const ColSpan s : e1.row(r))
        for (std::size_t j = s.begin; j < s.end; ++j) dst[j] = src[j];
    }
    for (std::size_t r = 0; r < n_; ++r) {
      Real* dst = mw->w2m.row(r).data();
      const Real* src = w2() + r * h_local_;
      for (const ColSpan s : e2.row(r))
        for (std::size_t j = s.begin; j < s.end; ++j) dst[j] = src[j];
    }
    mw->w1p = PackedRowPanels::pack(mw->w1m, e1);
    mw->w2p = PackedRowPanels::pack(mw->w2m, e2);
    return mw;
  });
}

void ShardedMade::forward(const Matrix& batch, const MaskedWeights& mw,
                          Scratch& s, Matrix& p) {
  VQMC_REQUIRE(batch.cols() == n_, "ShardedMade: batch has wrong spin count");
  const std::size_t bs = batch.rows();

  ensure_shape(s.a1, bs, h_local_);
  gemm_nt_panels(batch, plan_.w1.view(), mw.w1p, s.a1);
  add_row_broadcast(s.a1, std::span<const Real>(b1(), h_local_));
  s.h1 = s.a1;
  relu_inplace(s.h1);

  // Partial pre-sigmoid output from this shard; the allreduce completes the
  // hidden-unit sum across ranks. This is THE model-parallel communication.
  ensure_shape(p, bs, n_);
  gemm_nt_panels(s.h1, plan_.w2.view(), mw.w2p, p);
  comm_.allreduce_sum(std::span<Real>(p.data(), p.size()));
  ++allreduce_count_;
  add_row_broadcast(p, std::span<const Real>(b2(), n_));
  sigmoid_inplace(p);
}

void ShardedMade::conditionals(const Matrix& batch, Matrix& out) {
  const std::shared_ptr<const MaskedWeights> mw = masked();
  forward(batch, *mw, scratch_, out);
}

void ShardedMade::log_psi(const Matrix& batch, std::span<Real> out) {
  VQMC_REQUIRE(out.size() == batch.rows(), "ShardedMade: output size mismatch");
  const std::shared_ptr<const MaskedWeights> mw = masked();
  forward(batch, *mw, scratch_, scratch_.p);
  const std::size_t bs = batch.rows();
  for (std::size_t k = 0; k < bs; ++k) {
    out[k] = bernoulli_log_likelihood(batch.row(k), scratch_.p.row(k).data(),
                                      kProbEps) / 2;
  }
}

void ShardedMade::accumulate_log_psi_gradient(const Matrix& batch,
                                              std::span<const Real> coeff,
                                              std::span<Real> grad) {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(coeff.size() == bs, "ShardedMade: coefficient size mismatch");
  VQMC_REQUIRE(grad.size() == num_local_parameters(),
               "ShardedMade: gradient size mismatch");

  const std::shared_ptr<const MaskedWeights> mw = masked();
  Scratch& s = scratch_;
  forward(batch, *mw, s, s.p);
  const RowExtentsView e1 = plan_.w1.view();
  const RowExtentsView e2 = plan_.w2.view();

  // g2 is identical on every rank (p is fully reduced) — so the output
  // bias gradient is replicated and the shard gradients need no comm.
  ensure_shape(s.g2, bs, n_);
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real* p = s.p.row(k).data();
    Real* g = s.g2.row(k).data();
    const Real c = coeff[k] / 2;
    for (std::size_t i = 0; i < n_; ++i) g[i] = c * (x[i] - p[i]);
  }

  const std::size_t off_b1 = h_local_ * n_;
  const std::size_t off_w2 = off_b1 + h_local_;
  const std::size_t off_b2 = off_w2 + n_ * h_local_;

  ensure_shape(s.dw2, n_, h_local_);
  extents_zero(s.dw2, e2);
  gemm_tn_accumulate_extents(s.g2, s.h1, e2, s.dw2);
  extents_add_flat(s.dw2, e2, grad.subspan(off_w2, n_ * h_local_));
  column_sum_accumulate(s.g2, grad.subspan(off_b2, n_));

  ensure_shape(s.g1, bs, h_local_);
  gemm_nn_extents(s.g2, mw->w2m, e2, s.g1);
  relu_backward_inplace(s.a1, s.g1);

  ensure_shape(s.dw1, h_local_, n_);
  extents_zero(s.dw1, e1);
  gemm_tn_accumulate_extents(s.g1, batch, e1, s.dw1);
  extents_add_flat(s.dw1, e1, grad.subspan(0, h_local_ * n_));
  column_sum_accumulate(s.g1, grad.subspan(off_b1, h_local_));
}

}  // namespace vqmc::parallel
