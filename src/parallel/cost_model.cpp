#include "parallel/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vqmc::parallel {

std::size_t made_parameter_count(std::size_t n, std::size_t h) {
  return 2 * h * n + h + n;
}

double made_forward_flops(std::size_t n, std::size_t h, std::size_t batch) {
  // Two gemms (2 flops per MAC) plus bias/activation traffic (~3 per entry).
  const double gemms = 2.0 * double(batch) * double(h) * double(n) * 2.0;
  const double elementwise = 3.0 * double(batch) * double(h + n);
  return gemms + elementwise;
}

double model_sampling_seconds(const DeviceCostModel& device, std::size_t n,
                              std::size_t h, std::size_t batch) {
  const double per_pass =
      made_forward_flops(n, h, batch) / device.flops_per_second +
      device.kernel_latency_seconds;
  return double(n) * per_pass;
}

double model_local_energy_seconds(const DeviceCostModel& device, std::size_t n,
                                  std::size_t h, std::size_t batch,
                                  std::size_t chunk) {
  VQMC_REQUIRE(chunk >= 1, "cost model: chunk must be >= 1");
  const double connected = double(batch) * double(n);  // TIM: n flips/sample
  const double passes = 1.0 + std::ceil(connected / double(chunk));
  const double per_pass =
      made_forward_flops(n, h, std::min<std::size_t>(chunk, batch * n)) /
          device.flops_per_second +
      device.kernel_latency_seconds;
  return passes * per_pass;
}

double model_allreduce_seconds(const DeviceCostModel& device,
                               const ClusterShape& shape, std::size_t count) {
  const int total = shape.total();
  if (total <= 1) return 0;
  // Ring allreduce: 2 (L - 1) steps, each moving count / L elements over the
  // slowest link in the ring.
  const bool crosses_nodes = shape.nodes > 1;
  const double bandwidth = crosses_nodes ? device.inter_node_bandwidth
                                         : device.intra_node_bandwidth;
  const double latency = crosses_nodes ? device.inter_node_latency
                                       : device.intra_node_latency;
  const double bytes_per_step =
      double(count) / double(total) * device.bytes_per_activation;
  const double steps = 2.0 * double(total - 1);
  return steps * (latency + bytes_per_step / bandwidth);
}

double model_iteration_seconds(const DeviceCostModel& device,
                               const ClusterShape& shape, std::size_t n,
                               std::size_t h, std::size_t mbs,
                               std::size_t chunk) {
  // Per-pass cost includes the framework dispatch overhead — the same
  // calibration that reproduces the paper's Table 1 magnitudes. The
  // iteration is sampling (n passes on the full mini-batch) + local-energy
  // measurement (chunked passes over the flipped configurations) + ~3
  // passes worth of backprop, plus the gradient ring-allreduce.
  const double dispatch = device.dispatch_latency_seconds;
  const double full_pass =
      dispatch + made_forward_flops(n, h, mbs) / device.flops_per_second;
  const double chunk_rows = double(std::min(chunk, mbs * n));
  const double chunk_pass =
      dispatch + made_forward_flops(n, h, std::size_t(chunk_rows)) /
                     device.flops_per_second;
  const double le_passes =
      1.0 + std::ceil(double(mbs) * double(n) / double(chunk));
  const double comms = model_allreduce_seconds(
      device, shape, made_parameter_count(n, h));
  return double(n) * full_pass + le_passes * chunk_pass + 3.0 * full_pass +
         comms;
}

double rbm_forward_flops(std::size_t n, std::size_t h, std::size_t batch) {
  // One gemm [bs,n]x[n,h] plus the log-cosh reduction and the linear head.
  return 2.0 * double(batch) * double(n) * double(h) +
         8.0 * double(batch) * double(h) + 2.0 * double(batch) * double(n);
}

namespace {

/// Shared local-energy pass accounting for a TIM problem: one pass on the
/// samples plus ceil(bs * n / chunk) passes over the flipped configurations.
double local_energy_passes(std::size_t n, std::size_t batch,
                           std::size_t chunk) {
  return 1.0 + std::ceil(double(batch) * double(n) / double(chunk));
}

double pass_seconds(const DeviceCostModel& device, double flops) {
  return device.dispatch_latency_seconds + flops / device.flops_per_second;
}

}  // namespace

double model_auto_iteration_seconds(const DeviceCostModel& device,
                                    std::size_t n, std::size_t h,
                                    std::size_t batch, std::size_t chunk) {
  const double full_pass = made_forward_flops(n, h, batch);
  const double chunk_pass =
      made_forward_flops(n, h, std::min(chunk, batch * n));
  // n sampling passes + local-energy passes + ~3 passes worth of backprop.
  return double(n) * pass_seconds(device, full_pass) +
         local_energy_passes(n, batch, chunk) *
             pass_seconds(device, chunk_pass) +
         3.0 * pass_seconds(device, full_pass);
}

double model_mcmc_iteration_seconds(const DeviceCostModel& device,
                                    std::size_t n, std::size_t h,
                                    std::size_t batch, std::size_t chains,
                                    std::size_t burn_in, std::size_t thinning,
                                    std::size_t chunk) {
  VQMC_REQUIRE(chains >= 1 && thinning >= 1, "cost model: invalid MCMC args");
  // Each MH step is one batched pass over `chains` rows (latency-bound).
  const double chain_passes =
      1.0 + double(burn_in) +
      double(thinning) * std::ceil(double(batch) / double(chains));
  const double chain_pass_flops = rbm_forward_flops(n, h, chains);
  const double chunk_pass =
      rbm_forward_flops(n, h, std::min(chunk, batch * n));
  const double full_pass = rbm_forward_flops(n, h, batch);
  return chain_passes * pass_seconds(device, chain_pass_flops) +
         local_energy_passes(n, batch, chunk) *
             pass_seconds(device, chunk_pass) +
         3.0 * pass_seconds(device, full_pass);
}

std::size_t saturating_mini_batch(const DeviceCostModel& device,
                                  std::size_t n) {
  // Paper-reported values (Table 7) at its nine problem sizes.
  struct Entry {
    std::size_t n;
    std::size_t mbs;
  };
  static constexpr Entry kPaper[] = {
      {20, 1u << 19}, {50, 1u << 17},  {100, 1u << 15},
      {200, 1u << 13}, {500, 1u << 11}, {1000, 1u << 9},
      {2000, 1u << 7}, {5000, 1u << 4}, {10000, 1u << 2},
  };
  for (const Entry& e : kPaper) {
    if (e.n == n) return e.mbs;
  }
  // Fallback: activation memory scales as mbs * n^2 (local-energy flip
  // batches dominate); the paper's numbers correspond to about
  // mbs * n^2 * 4 bytes ~= memory / 24.
  const double budget = device.memory_bytes /
                        (24.0 * device.bytes_per_activation);
  const double raw = budget / (double(n) * double(n));
  const double log2_raw = std::floor(std::log2(std::max(4.0, raw)));
  return std::size_t(1) << std::size_t(log2_raw);
}

}  // namespace vqmc::parallel
