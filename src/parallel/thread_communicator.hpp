#pragma once

/// \file thread_communicator.hpp
/// \brief Thread-backed communicator group: L ranks as L threads sharing a
/// reduction context.
///
/// This is the machinery that virtualizes the paper's GPU cluster on a CPU
/// box (see DESIGN.md): every rank runs the *real* data-parallel training
/// code and the collectives perform *real* reductions — only the hardware
/// underneath is threads instead of GPUs.  Reductions are computed in a
/// fixed rank order on every rank, so results are bit-identical across
/// ranks and across runs regardless of thread scheduling.

#include <functional>
#include <span>

#include "parallel/communicator.hpp"

namespace vqmc::parallel {

/// Launch `num_ranks` threads, each receiving its own Communicator endpoint,
/// and join them.  Exceptions thrown by any rank are captured and the first
/// one is rethrown after all threads have joined.
void run_thread_group(int num_ranks,
                      const std::function<void(Communicator&)>& body);

}  // namespace vqmc::parallel
