#pragma once

/// \file thread_communicator.hpp
/// \brief Thread-backed communicator group: L ranks as L threads sharing a
/// reduction context.
///
/// This is the machinery that virtualizes the paper's GPU cluster on a CPU
/// box (see DESIGN.md): every rank runs the *real* data-parallel training
/// code and the collectives perform *real* reductions — only the hardware
/// underneath is threads instead of GPUs.  Reductions are computed in a
/// fixed rank order on every rank, so results are bit-identical across
/// ranks and across runs regardless of thread scheduling.
///
/// Fault tolerance (DESIGN.md §5c):
///  * `GroupOptions::timeout_seconds` puts a deadline on every collective;
///    a rank blocked past it aborts the whole group and every blocked rank
///    throws vqmc::CommTimeoutError — a hung peer can no longer deadlock
///    the group.
///  * `Communicator::leave()` removes a rank from the membership at a
///    collective boundary; subsequent collectives complete among the
///    survivors and reductions deterministically skip departed ranks.

#include <functional>
#include <span>

#include "parallel/communicator.hpp"

namespace vqmc::parallel {

/// Knobs shared by every rank of one thread group.
struct GroupOptions {
  /// Deadline for each collective; 0 disables (wait forever). When a rank
  /// waits longer than this inside a collective it aborts the group: every
  /// rank currently or subsequently blocked in a collective throws
  /// vqmc::CommTimeoutError instead of deadlocking.
  double timeout_seconds = 0;
};

/// Launch `num_ranks` threads, each receiving its own Communicator endpoint,
/// and join them.  Exceptions thrown by any rank abort the group (waking
/// peers blocked in collectives, which then throw CommTimeoutError) and the
/// most informative one is rethrown after all threads have joined:
/// non-timeout errors take precedence over the CommTimeoutErrors they cause
/// on other ranks.
void run_thread_group(int num_ranks,
                      const std::function<void(Communicator&)>& body,
                      const GroupOptions& options = {});

}  // namespace vqmc::parallel
