#include "parallel/thread_communicator.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace vqmc::parallel {

namespace {

/// Shared state of one thread group: a sense-reversing barrier with dynamic
/// membership (ranks can leave), per-collective deadlines and a group-wide
/// abort flag, plus the per-rank staging buffers for reductions.
///
/// Membership changes are only legal at collective boundaries (a rank calls
/// leave() while *not* inside a collective). Because a barrier phase cannot
/// complete until every live rank has arrived or left, the `alive` flags are
/// stable between a collective's first and second barrier — which is what
/// makes the skip-dead reduction fold deterministic and bit-identical on
/// every surviving rank.
struct GroupContext {
  GroupContext(int size, const GroupOptions& options)
      : size(size),
        options(options),
        threshold(size),
        count(size),
        alive(std::size_t(size), 1),
        contributions(std::size_t(size)) {}

  const int size;
  const GroupOptions options;

  std::mutex mutex;
  std::condition_variable cv;
  int threshold;  ///< live membership: arrivals required per barrier phase
  int count;      ///< arrivals still missing in the current phase
  bool sense = false;
  bool aborted = false;
  std::string abort_reason;
  std::vector<char> alive;
  /// Per-rank staging buffers for reductions / the broadcast payload.
  std::vector<std::vector<Real>> contributions;

  /// Mark the group aborted and wake every waiter. Idempotent; the first
  /// reason wins (it is the root cause, later ones are fallout).
  void abort(const std::string& reason) {
    const std::lock_guard<std::mutex> lock(mutex);
    abort_locked(reason);
  }

  void abort_locked(const std::string& reason) {
    if (!aborted) {
      aborted = true;
      abort_reason = reason;
    }
    cv.notify_all();
  }

  /// Barrier arrival with the group deadline. Throws CommTimeoutError when
  /// the deadline expires or the group is aborted before the phase
  /// completes; a completed phase always wins over a concurrent abort.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex);
    if (aborted)
      throw CommTimeoutError("collective aborted: " + abort_reason);
    const bool my_sense = sense;
    if (--count == 0) {
      count = threshold;
      sense = !sense;
      cv.notify_all();
      return;
    }
    const auto done = [&] { return sense != my_sense || aborted; };
    if (options.timeout_seconds <= 0) {
      cv.wait(lock, done);
    } else if (!cv.wait_for(lock,
                            std::chrono::duration<double>(
                                options.timeout_seconds),
                            done)) {
      ++count;  // withdraw the arrival so the barrier stays consistent
      abort_locked("collective timed out after " +
                   std::to_string(options.timeout_seconds) +
                   " s (a peer rank is hung or dead)");
      throw CommTimeoutError("collective aborted: " + abort_reason);
    }
    if (sense == my_sense)  // woken by abort, not by phase completion
      throw CommTimeoutError("collective aborted: " + abort_reason);
  }

  /// Remove `rank` from the membership (called at a collective boundary).
  void leave(int rank) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (aborted || !alive[std::size_t(rank)]) return;
    alive[std::size_t(rank)] = 0;
    --threshold;
    if (threshold > 0 && --count == 0) {
      // Everyone else had already arrived; the departure completes the phase.
      count = threshold;
      sense = !sense;
      cv.notify_all();
    }
  }
};

/// One rank's endpoint into the shared context.
class ThreadCommunicator final : public Communicator {
 public:
  ThreadCommunicator(GroupContext& context, int rank)
      : context_(context), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return context_.size; }

  void allreduce_sum(std::span<Real> data) override {
    reduce(data, [](Real a, Real b) { return a + b; });
  }

  void allreduce_max(std::span<Real> data) override {
    reduce(data, [](Real a, Real b) { return std::max(a, b); });
  }

  void broadcast(std::span<Real> data, int root) override {
    VQMC_REQUIRE(root >= 0 && root < context_.size,
                 "broadcast: root out of range");
    VQMC_REQUIRE(is_alive(root), "broadcast: root rank has left the group");
    if (rank_ == root)
      context_.contributions[std::size_t(root)].assign(data.begin(),
                                                       data.end());
    context_.arrive_and_wait();
    const std::vector<Real>& payload =
        context_.contributions[std::size_t(root)];
    VQMC_REQUIRE(payload.size() == data.size(), "broadcast: size mismatch");
    if (rank_ != root) std::copy(payload.begin(), payload.end(), data.begin());
    context_.arrive_and_wait();
  }

  void barrier() override { context_.arrive_and_wait(); }

  [[nodiscard]] int live_count() const override {
    const std::lock_guard<std::mutex> lock(context_.mutex);
    return context_.threshold;
  }

  [[nodiscard]] bool is_alive(int r) const override {
    if (r < 0 || r >= context_.size) return false;
    const std::lock_guard<std::mutex> lock(context_.mutex);
    return context_.alive[std::size_t(r)] != 0;
  }

  void leave() override { context_.leave(rank_); }

  void interruptible_sleep(double seconds) override {
    std::unique_lock<std::mutex> lock(context_.mutex);
    context_.cv.wait_for(lock, std::chrono::duration<double>(seconds),
                         [&] { return context_.aborted; });
  }

 private:
  template <typename Op>
  void reduce(std::span<Real> data, Op op) {
    auto& mine = context_.contributions[std::size_t(rank_)];
    mine.assign(data.begin(), data.end());
    context_.arrive_and_wait();
    // Every rank folds the live contributions in the same (rank) order, so
    // the floating-point result is bit-identical everywhere. The `alive`
    // flags are stable between the two barriers (see GroupContext docs), so
    // all survivors skip the same departed ranks.
    bool first = true;
    for (int r = 0; r < context_.size; ++r) {
      if (!context_.alive[std::size_t(r)]) continue;
      const std::vector<Real>& other = context_.contributions[std::size_t(r)];
      VQMC_REQUIRE(other.size() == data.size(), "allreduce: size mismatch");
      if (first) {
        std::copy(other.begin(), other.end(), data.begin());
        first = false;
      } else {
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = op(data[i], other[i]);
      }
    }
    context_.arrive_and_wait();
  }

  GroupContext& context_;
  const int rank_;
};

}  // namespace

void run_thread_group(int num_ranks,
                      const std::function<void(Communicator&)>& body,
                      const GroupOptions& options) {
  VQMC_REQUIRE(num_ranks >= 1, "thread group: need at least one rank");
  GroupContext context(num_ranks, options);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors{std::size_t(num_ranks)};
  threads.reserve(std::size_t(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      ThreadCommunicator comm(context, r);
      try {
        body(comm);
      } catch (const std::exception& e) {
        errors[std::size_t(r)] = std::current_exception();
        // Abort the group so peers blocked in collectives wake up and throw
        // CommTimeoutError instead of deadlocking on the failed rank.
        context.abort("rank " + std::to_string(r) + " failed: " + e.what());
      } catch (...) {
        errors[std::size_t(r)] = std::current_exception();
        context.abort("rank " + std::to_string(r) + " failed");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Rethrow the most informative error: a non-timeout failure is the root
  // cause; the CommTimeoutErrors it triggers on other ranks are fallout.
  std::exception_ptr first_timeout;
  for (const std::exception_ptr& err : errors) {
    if (!err) continue;
    try {
      std::rethrow_exception(err);
    } catch (const CommTimeoutError&) {
      if (!first_timeout) first_timeout = err;
    } catch (...) {
      std::rethrow_exception(err);
    }
  }
  if (first_timeout) std::rethrow_exception(first_timeout);
}

}  // namespace vqmc::parallel
