#include "parallel/thread_communicator.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace vqmc::parallel {

namespace {

/// Reusable sense-reversing barrier (std::barrier would also work; this
/// avoids libstdc++ version quirks and keeps the dependency surface small).
class Barrier {
 public:
  explicit Barrier(int count) : threshold_(count), count_(count) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool sense = sense_;
    if (--count_ == 0) {
      count_ = threshold_;
      sense_ = !sense_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return sense_ != sense; });
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const int threshold_;
  int count_;
  bool sense_ = false;
};

/// Shared state of one thread group.
struct GroupContext {
  explicit GroupContext(int size)
      : size(size), barrier(size), contributions(std::size_t(size)) {}

  const int size;
  Barrier barrier;
  /// Per-rank staging buffers for reductions / the broadcast payload.
  std::vector<std::vector<Real>> contributions;
};

/// One rank's endpoint into the shared context.
class ThreadCommunicator final : public Communicator {
 public:
  ThreadCommunicator(GroupContext& context, int rank)
      : context_(context), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return context_.size; }

  void allreduce_sum(std::span<Real> data) override {
    reduce(data, [](Real a, Real b) { return a + b; });
  }

  void allreduce_max(std::span<Real> data) override {
    reduce(data, [](Real a, Real b) { return std::max(a, b); });
  }

  void broadcast(std::span<Real> data, int root) override {
    VQMC_REQUIRE(root >= 0 && root < context_.size,
                 "broadcast: root out of range");
    if (rank_ == root)
      context_.contributions[std::size_t(root)].assign(data.begin(),
                                                       data.end());
    context_.barrier.arrive_and_wait();
    const std::vector<Real>& payload = context_.contributions[std::size_t(root)];
    VQMC_REQUIRE(payload.size() == data.size(), "broadcast: size mismatch");
    if (rank_ != root) std::copy(payload.begin(), payload.end(), data.begin());
    context_.barrier.arrive_and_wait();
  }

  void barrier() override { context_.barrier.arrive_and_wait(); }

 private:
  template <typename Op>
  void reduce(std::span<Real> data, Op op) {
    auto& mine = context_.contributions[std::size_t(rank_)];
    mine.assign(data.begin(), data.end());
    context_.barrier.arrive_and_wait();
    // Every rank folds the contributions in the same (rank) order, so the
    // floating-point result is bit-identical everywhere.
    for (int r = 0; r < context_.size; ++r) {
      const std::vector<Real>& other = context_.contributions[std::size_t(r)];
      VQMC_REQUIRE(other.size() == data.size(), "allreduce: size mismatch");
      if (r == 0) {
        std::copy(other.begin(), other.end(), data.begin());
      } else {
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = op(data[i], other[i]);
      }
    }
    context_.barrier.arrive_and_wait();
  }

  GroupContext& context_;
  const int rank_;
};

}  // namespace

void run_thread_group(int num_ranks,
                      const std::function<void(Communicator&)>& body) {
  VQMC_REQUIRE(num_ranks >= 1, "thread group: need at least one rank");
  GroupContext context(num_ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors{std::size_t(num_ranks)};
  threads.reserve(std::size_t(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      ThreadCommunicator comm(context, r);
      try {
        body(comm);
      } catch (...) {
        errors[std::size_t(r)] = std::current_exception();
        // A failed rank must keep participating in barriers or the rest of
        // the group deadlocks; there is no safe generic recovery, so we
        // terminate the group by rethrowing after join (below) — but first
        // we must not leave peers blocked. The pragmatic choice: abort the
        // whole group only when a rank dies *outside* collectives; inside,
        // the body is required to be exception-free. We simply record and
        // return; tests construct bodies that fail before any collective.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace vqmc::parallel
