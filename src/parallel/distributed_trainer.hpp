#pragma once

/// \file distributed_trainer.hpp
/// \brief Data-parallel VQMC across virtual devices (Section 4's sampling
/// parallelization).
///
/// Every rank holds an identical replica of the model, draws its own `mbs`
/// exact AUTO samples, measures local energies, and contributes to two
/// allreduces per iteration:
///
///   1. (sum of local energies, count, flags) -> the global batch mean L;
///   2. the local gradient sum               -> the global averaged gradient.
///
/// Every rank then applies the same optimizer update to its replica, so the
/// replicas stay bit-identical (the thread communicator folds reductions in
/// a fixed order) — the invariant the tests assert.  This is exactly the
/// paper's scheme with an effective batch size bs = L x mbs and O(hn)
/// communication per iteration.
///
/// Fault tolerance (DESIGN.md §5c): collectives take an optional deadline
/// (a hung rank aborts the group with vqmc::CommTimeoutError instead of
/// deadlocking it), and a rank declared dead leaves the group — surviving
/// ranks detect the departure through liveness flags that ride the energy
/// allreduce, rescale the gradient average by the surviving sample count,
/// and continue with bit-identical replicas. Shrink events are recorded in
/// DistributedResult::shrink_events.

#include <cstdint>
#include <string>
#include <vector>

#include "common/health.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "nn/wavefunction.hpp"
#include "parallel/cost_model.hpp"
#include "parallel/fault_injection.hpp"
#include "telemetry/metrics_registry.hpp"

namespace vqmc::parallel {

struct DistributedConfig {
  ClusterShape shape;               ///< L1 nodes x L2 GPUs
  int iterations = 300;
  std::size_t mini_batch_size = 4;  ///< mbs per device (Figure 4 uses 4)
  std::string optimizer = "ADAM";   ///< "SGD" or "ADAM"
  std::size_t local_energy_chunk = 1024;
  std::size_t eval_batch_per_rank = 64;  ///< final-evaluation draw per rank
  std::uint64_t seed = 0;
  /// Run-health guards. Every rank scans its local energies and gradient
  /// *before* contributing to an allreduce, and the bad-rank count itself is
  /// allreduced, so one sick rank is detected collectively instead of
  /// poisoning all replicas — and every rank applies the same recovery, which
  /// preserves the bit-identical-replicas invariant.
  health::GuardConfig guard;
  /// Deadline per collective; 0 = wait forever. With a deadline, a hung or
  /// silently-dead rank makes every blocked rank throw CommTimeoutError
  /// within the deadline instead of deadlocking the group.
  double comm_timeout_seconds = 0;
  /// Scripted per-rank faults (index = rank; ranks beyond the vector run
  /// fault-free). Test hook: every recovery path is exercised
  /// deterministically through these plans.
  std::vector<FaultPlan> fault_plans;
};

/// One elastic-shrink event: `rank` was detected dead at `iteration`,
/// leaving `live_after` ranks in the group.
struct ShrinkEvent {
  int iteration = 0;
  int rank = 0;
  int live_after = 0;
};

struct DistributedResult {
  std::vector<Real> energy_history;  ///< global batch-mean energy per iter
  Real converged_energy = 0;         ///< global mean over the final eval batch
  Real converged_std = 0;
  /// Busy (compute-only) seconds of the slowest rank — the measured analog
  /// of the paper's per-GPU execution time.
  double max_rank_busy_seconds = 0;
  /// Modeled wall time for the whole run on the V100-class cluster.
  double modeled_seconds = 0;
  /// Final replica parameters (the lowest surviving rank's copy; equals
  /// every surviving rank's).
  std::vector<Real> final_parameters;
  /// True iff all surviving replicas ended bit-identical (checked via
  /// allreduce).
  bool replicas_identical = false;
  /// Training iterations on which the health guard tripped (identical on
  /// every rank: the trip decision is made after an allreduce).
  std::uint64_t guard_trips = 0;
  /// Per-rank count of iterations where *this rank's* local energies or
  /// gradient were non-finite (length shape.total()). Summing gives the
  /// total number of bad contributions; a single hot rank shows up directly.
  std::vector<std::uint64_t> guard_trips_per_rank;
  /// Reason of the most recent guard trip; empty for a healthy run.
  std::string last_trip_reason;
  /// Elastic-recovery log: one entry per rank detected dead, in detection
  /// order. Empty for a healthy run.
  std::vector<ShrinkEvent> shrink_events;
  /// Ranks still alive at the end of the run.
  int final_live_ranks = 0;
  /// Wall seconds each rank spent blocked inside allreduces (length
  /// shape.total()). The spread across ranks is the straggler signature:
  /// fast ranks wait for slow ones, so the slowest rank shows the *least*
  /// wait (DESIGN.md §5d).
  std::vector<double> allreduce_wait_seconds_per_rank;
  /// Per-rank telemetry merged across the surviving ranks (one trailing
  /// allreduce over the packed additive state). Empty when telemetry is
  /// disabled.
  telemetry::MetricsSnapshot merged_metrics;
};

/// Train `prototype` (autoregressive; AUTO sampling) on `hamiltonian`
/// data-parallel across shape.total() thread-backed ranks.
DistributedResult train_distributed(const Hamiltonian& hamiltonian,
                                    const AutoregressiveModel& prototype,
                                    const DistributedConfig& config,
                                    const DeviceCostModel& device = {});

}  // namespace vqmc::parallel
