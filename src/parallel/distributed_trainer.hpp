#pragma once

/// \file distributed_trainer.hpp
/// \brief Data-parallel VQMC across virtual devices (Section 4's sampling
/// parallelization).
///
/// Every rank holds an identical replica of the model, draws its own `mbs`
/// exact AUTO samples, measures local energies, and contributes to two
/// allreduces per iteration:
///
///   1. (sum of local energies, count, flags) -> the global batch mean L;
///   2. the local gradient sum               -> the global averaged gradient.
///
/// Every rank then applies the same optimizer update to its replica, so the
/// replicas stay bit-identical (the thread communicator folds reductions in
/// a fixed order) — the invariant the tests assert.  This is exactly the
/// paper's scheme with an effective batch size bs = L x mbs and O(hn)
/// communication per iteration.
///
/// Fault tolerance (DESIGN.md §5c): collectives take an optional deadline
/// (a hung rank aborts the group with vqmc::CommTimeoutError instead of
/// deadlocking it), and a rank declared dead leaves the group — surviving
/// ranks detect the departure through liveness flags that ride the energy
/// allreduce, rescale the gradient average by the surviving sample count,
/// and continue with bit-identical replicas. Shrink events are recorded in
/// DistributedResult::shrink_events.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/health.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "nn/wavefunction.hpp"
#include "parallel/cost_model.hpp"
#include "parallel/fault_injection.hpp"
#include "telemetry/metrics_registry.hpp"

namespace vqmc::parallel {

struct DistributedConfig {
  ClusterShape shape;               ///< L1 nodes x L2 GPUs
  int iterations = 300;
  std::size_t mini_batch_size = 4;  ///< mbs per device (Figure 4 uses 4)
  std::string optimizer = "ADAM";   ///< "SGD" or "ADAM"
  std::size_t local_energy_chunk = 1024;
  std::size_t eval_batch_per_rank = 64;  ///< final-evaluation draw per rank
  std::uint64_t seed = 0;
  /// Run-health guards. Every rank scans its local energies and gradient
  /// *before* contributing to an allreduce, and the bad-rank count itself is
  /// allreduced, so one sick rank is detected collectively instead of
  /// poisoning all replicas — and every rank applies the same recovery, which
  /// preserves the bit-identical-replicas invariant.
  health::GuardConfig guard;
  /// Deadline per collective; 0 = wait forever. With a deadline, a hung or
  /// silently-dead rank makes every blocked rank throw CommTimeoutError
  /// within the deadline instead of deadlocking the group.
  double comm_timeout_seconds = 0;
  /// Scripted per-rank faults (index = rank; ranks beyond the vector run
  /// fault-free). Test hook: every recovery path is exercised
  /// deterministically through these plans.
  std::vector<FaultPlan> fault_plans;
  /// Checkpoint/restart (DESIGN.md §5h). When non-empty, every rank keeps a
  /// TrainingSnapshot under "<checkpoint_base>.rank<r>" so a killed run can
  /// resume bit-identically. Snapshots are written at the *top* of every
  /// `checkpoint_every`-th iteration, before any work of that iteration.
  std::string checkpoint_base;
  int checkpoint_every = 0;  ///< snapshot cadence in iterations; 0 disables
  /// Load "<checkpoint_base>.rank<r>" before training and continue from the
  /// recorded iteration. The replayed tail is bit-identical to the original
  /// run (parameters, optimizer moments, sampler RNG and guard state are all
  /// restored); energy_history slots before the resume point read 0.
  bool resume = false;
  /// Live observability (DESIGN.md §5i). When non-empty, every rank runs a
  /// StatusServer on `obs::rank_endpoint(obs_endpoint, rank)` and rank 0
  /// additionally aggregates the group, so scraping `obs_endpoint` mid-run
  /// returns per-rank allreduce waits, iteration counters and membership.
  std::string obs_endpoint;
};

/// One elastic-shrink event: `rank` was detected dead at `iteration`,
/// leaving `live_after` ranks in the group.
struct ShrinkEvent {
  int iteration = 0;
  int rank = 0;
  int live_after = 0;
};

struct DistributedResult {
  std::vector<Real> energy_history;  ///< global batch-mean energy per iter
  Real converged_energy = 0;         ///< global mean over the final eval batch
  Real converged_std = 0;
  /// Busy (compute-only) seconds of the slowest rank — the measured analog
  /// of the paper's per-GPU execution time.
  double max_rank_busy_seconds = 0;
  /// Modeled wall time for the whole run on the V100-class cluster.
  double modeled_seconds = 0;
  /// Final replica parameters (the lowest surviving rank's copy; equals
  /// every surviving rank's).
  std::vector<Real> final_parameters;
  /// True iff all surviving replicas ended bit-identical (checked via
  /// allreduce).
  bool replicas_identical = false;
  /// Training iterations on which the health guard tripped (identical on
  /// every rank: the trip decision is made after an allreduce).
  std::uint64_t guard_trips = 0;
  /// Per-rank count of iterations where *this rank's* local energies or
  /// gradient were non-finite (length shape.total()). Summing gives the
  /// total number of bad contributions; a single hot rank shows up directly.
  std::vector<std::uint64_t> guard_trips_per_rank;
  /// Reason of the most recent guard trip; empty for a healthy run.
  std::string last_trip_reason;
  /// Elastic-recovery log: one entry per rank detected dead, in detection
  /// order. Empty for a healthy run.
  std::vector<ShrinkEvent> shrink_events;
  /// Ranks still alive at the end of the run.
  int final_live_ranks = 0;
  /// Wall seconds each rank spent blocked inside allreduces (length
  /// shape.total()). The spread across ranks is the straggler signature:
  /// fast ranks wait for slow ones, so the slowest rank shows the *least*
  /// wait (DESIGN.md §5d).
  std::vector<double> allreduce_wait_seconds_per_rank;
  /// Per-rank telemetry merged across the surviving ranks (one trailing
  /// allreduce over the packed additive state). Empty when telemetry is
  /// disabled.
  telemetry::MetricsSnapshot merged_metrics;
};

/// Train `prototype` (autoregressive; AUTO sampling) on `hamiltonian`
/// data-parallel across shape.total() thread-backed ranks.
DistributedResult train_distributed(const Hamiltonian& hamiltonian,
                                    const AutoregressiveModel& prototype,
                                    const DistributedConfig& config,
                                    const DeviceCostModel& device = {});

/// Run ONE rank of the same data-parallel training on an already-connected
/// communicator endpoint — any backend (thread, socket, self). This is what
/// a vqmc_launch worker process calls after its socket rendezvous; the
/// training loop, elastic shrink, guards and checkpointing are byte-for-byte
/// the code the thread-backed driver runs.
///
/// Returns this endpoint's complete view of the run. Global fields
/// (energy_history, converged stats, shrink_events, final_parameters,
/// replicas_identical) are identical on every surviving rank because they
/// derive from allreduced data only. The per-rank vectors are gathered
/// through one trailing allreduce, so slots of ranks that died before the
/// end read 0.
///
/// `iteration_hook`, when set, runs at the top of every training iteration
/// before any collective — the seam where vqmc_launch applies scripted
/// real-process faults (see process_faults.hpp). `config.shape.total()`
/// must equal `comm.size()`.
DistributedResult train_distributed_on(
    const Hamiltonian& hamiltonian, const AutoregressiveModel& prototype,
    const DistributedConfig& config, Communicator& comm,
    const DeviceCostModel& device = {},
    const std::function<void(long long)>& iteration_hook = {});

}  // namespace vqmc::parallel
