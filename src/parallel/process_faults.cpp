#include "parallel/process_faults.hpp"

#include <csignal>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace vqmc::parallel {

namespace {

/// Split `text` on `sep`, keeping empty pieces out of the result.
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(text);
  while (std::getline(in, piece, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

long long parse_ll(const std::string& value, const std::string& spec) {
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(value, &used);
    VQMC_REQUIRE(used == value.size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw Error("process fault spec '" + spec + "': bad integer '" + value +
                "'");
  }
}

double parse_double(const std::string& value, const std::string& spec) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    VQMC_REQUIRE(used == value.size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw Error("process fault spec '" + spec + "': bad number '" + value +
                "'");
  }
}

}  // namespace

ProcessFaultPlan parse_process_fault_spec(const std::string& spec, int world,
                                          int* rank) {
  const auto colon = spec.find(':');
  VQMC_REQUIRE(colon != std::string::npos,
               "process fault spec '" + spec + "': expected kind:key=value,...");
  const std::string kind = spec.substr(0, colon);
  VQMC_REQUIRE(kind == "kill" || kind == "leave" || kind == "stop",
               "process fault spec '" + spec + "': unknown kind '" + kind +
                   "' (want kill|leave|stop)");

  long long target_rank = -1;
  long long iter = -1;
  double secs = 1.0;
  bool have_secs = false;
  for (const std::string& field : split(spec.substr(colon + 1), ',')) {
    const auto eq = field.find('=');
    VQMC_REQUIRE(eq != std::string::npos, "process fault spec '" + spec +
                                              "': field '" + field +
                                              "' is not key=value");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "rank") {
      target_rank = parse_ll(value, spec);
    } else if (key == "iter") {
      iter = parse_ll(value, spec);
    } else if (key == "secs") {
      secs = parse_double(value, spec);
      have_secs = true;
    } else {
      throw Error("process fault spec '" + spec + "': unknown key '" + key +
                  "'");
    }
  }
  VQMC_REQUIRE(target_rank >= 0 && target_rank < world,
               "process fault spec '" + spec + "': rank out of [0, " +
                   std::to_string(world) + ")");
  VQMC_REQUIRE(iter >= 0,
               "process fault spec '" + spec + "': iter is required");
  VQMC_REQUIRE(!have_secs || kind == "stop",
               "process fault spec '" + spec + "': secs only applies to stop");

  ProcessFaultPlan plan;
  if (kind == "kill") plan.kill_at_iteration = iter;
  if (kind == "leave") plan.leave_at_iteration = iter;
  if (kind == "stop") {
    plan.stop_at_iteration = iter;
    plan.stop_seconds = secs;
  }
  if (rank != nullptr) *rank = static_cast<int>(target_rank);
  return plan;
}

std::vector<ProcessFaultPlan> parse_process_fault_specs(
    const std::vector<std::string>& specs, int world) {
  VQMC_REQUIRE(world > 0, "parse_process_fault_specs: world must be positive");
  std::vector<ProcessFaultPlan> plans(static_cast<std::size_t>(world));
  for (const std::string& spec : specs) {
    int rank = -1;
    const ProcessFaultPlan parsed = parse_process_fault_spec(spec, world,
                                                             &rank);
    ProcessFaultPlan& merged = plans[static_cast<std::size_t>(rank)];
    if (parsed.kill_at_iteration >= 0)
      merged.kill_at_iteration = parsed.kill_at_iteration;
    if (parsed.leave_at_iteration >= 0)
      merged.leave_at_iteration = parsed.leave_at_iteration;
    if (parsed.stop_at_iteration >= 0) {
      merged.stop_at_iteration = parsed.stop_at_iteration;
      merged.stop_seconds = parsed.stop_seconds;
    }
  }
  return plans;
}

std::string format_process_fault_spec(const ProcessFaultPlan& plan, int rank) {
  std::ostringstream out;
  const char* sep = "";
  if (plan.kill_at_iteration >= 0) {
    out << sep << "kill:rank=" << rank << ",iter=" << plan.kill_at_iteration;
    sep = ";";
  }
  if (plan.leave_at_iteration >= 0) {
    out << sep << "leave:rank=" << rank << ",iter=" << plan.leave_at_iteration;
    sep = ";";
  }
  if (plan.stop_at_iteration >= 0) {
    out << sep << "stop:rank=" << rank << ",iter=" << plan.stop_at_iteration
        << ",secs=" << plan.stop_seconds;
    sep = ";";
  }
  return out.str();
}

void apply_process_faults_at_iteration(const ProcessFaultPlan& plan,
                                       long long iteration,
                                       Communicator& comm) {
  if (plan.stop_at_iteration == iteration) {
    // Wedge this process: blocks until the launcher sends SIGCONT, then the
    // rank resumes mid-collective exactly like a long GC pause would.
    std::raise(SIGSTOP);
  }
  if (plan.kill_at_iteration == iteration) {
    // Un-announced death at a collective boundary. SIGKILL cannot be caught,
    // so no LEAVE frame goes out — survivors must detect the EOF.
    std::raise(SIGKILL);
    std::abort();  // unreachable; SIGKILL is not deliverable to a handler
  }
  if (plan.leave_at_iteration == iteration) {
    comm.leave();
    throw RankDeadError("rank " + std::to_string(comm.rank()) +
                        " left by scripted process fault at iteration " +
                        std::to_string(iteration));
  }
}

}  // namespace vqmc::parallel
