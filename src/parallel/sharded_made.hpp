#pragma once

/// \file sharded_made.hpp
/// \brief Model parallelism for MADE — the paper's "avenue (1)".
///
/// Section 4 lists two independent ways past the single-device memory wall
/// and implements only the second (sampling parallelism).  This class
/// implements the first: the hidden layer is *sharded* across ranks.  Rank
/// r stores only its slice of the first-layer weights (h_r x n), biases
/// (h_r) and the matching column slice of the output weights (n x h_r); the
/// output bias is replicated.  Per-rank memory is O(h n / L) instead of
/// O(h n).
///
/// Forward pass: each rank computes its hidden slice locally, forms the
/// partial pre-sigmoid output H1_r W2_r^T, and one allreduce of the
/// bs x n activation matrix completes the sum over shards — after which
/// every rank holds the full conditionals.  The backward pass needs NO
/// communication at all: the output-layer signal g2 is replicated, and each
/// rank's weight gradients depend only on its own hidden slice.  Total
/// communication per evaluation is O(bs n) — compare O(h n) per iteration
/// for the gradient allreduce of sampling parallelism; the two compose.
///
/// All methods are collectives: every rank of the communicator must call
/// them in the same order with identical `batch` contents.

#include <cstdint>
#include <memory>

#include "nn/made.hpp"
#include "nn/masked_plan.hpp"
#include "parallel/communicator.hpp"

namespace vqmc::parallel {

/// Hidden-layer-sharded MADE replica bound to one rank of a communicator.
class ShardedMade {
 public:
  /// Shard `prototype`'s parameters across the ranks of `comm`.  Every rank
  /// must construct from a bit-identical prototype.  The communicator is
  /// borrowed and must outlive the shard.
  ShardedMade(const Made& prototype, Communicator& comm);

  [[nodiscard]] std::size_t num_spins() const { return n_; }
  [[nodiscard]] std::size_t hidden_total() const { return h_total_; }
  [[nodiscard]] std::size_t hidden_local() const { return h_local_; }
  /// First global hidden index owned by this rank.
  [[nodiscard]] std::size_t hidden_begin() const { return h_begin_; }

  /// Local parameter count: h_r n + h_r + n h_r + n (output bias
  /// replicated).
  [[nodiscard]] std::size_t num_local_parameters() const {
    return params_.size();
  }
  /// Mutable access is the write path (bumps the masked-weight cache
  /// version; see masked_plan.hpp). Re-acquire before each round of writes.
  [[nodiscard]] std::span<Real> local_parameters() {
    version_.bump();
    return params_.span();
  }
  [[nodiscard]] std::span<const Real> local_parameters() const {
    return params_.span();
  }

  /// All conditionals (collective: one bs x n activation allreduce).
  void conditionals(const Matrix& batch, Matrix& out);

  /// log |psi| per row (collective).
  void log_psi(const Matrix& batch, std::span<Real> out);

  /// grad += sum_k coeff[k] d log psi / d(local params). Collective in the
  /// forward recomputation only; the backward itself is communication-free.
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad);

  /// Activation allreduces performed so far (the model-parallel comm cost).
  [[nodiscard]] std::uint64_t allreduce_count() const {
    return allreduce_count_;
  }

 private:
  // Local parameter views.
  [[nodiscard]] const Real* w1() const { return params_.data(); }
  [[nodiscard]] const Real* b1() const {
    return params_.data() + h_local_ * n_;
  }
  [[nodiscard]] const Real* w2() const {
    return params_.data() + h_local_ * n_ + h_local_;
  }
  [[nodiscard]] const Real* b2() const {
    return params_.data() + h_local_ * n_ + h_local_ + n_ * h_local_;
  }

  /// Packed masked slice weights for one parameter version (cached; see
  /// masked_plan.hpp), with the row panels the forward streams over.
  struct MaskedWeights {
    Matrix w1m;           ///< h_local x n
    Matrix w2m;           ///< n x h_local
    PackedRowPanels w1p;  ///< W1 slice, row-packed over extents
    PackedRowPanels w2p;  ///< W2 slice, row-packed over extents
    std::uint64_t version = 0;
  };
  [[nodiscard]] std::shared_ptr<const MaskedWeights> masked() const;

  /// Rank-local evaluation scratch, reused across calls (methods are
  /// non-collective-reentrant anyway, so member scratch is safe).
  struct Scratch {
    Matrix a1;   ///< bs x h_local, pre-ReLU
    Matrix h1;   ///< bs x h_local
    Matrix p;    ///< bs x n, full conditionals (post-allreduce)
    Matrix g2;   ///< bs x n
    Matrix g1;   ///< bs x h_local
    Matrix dw1;  ///< h_local x n
    Matrix dw2;  ///< n x h_local
  };
  void forward(const Matrix& batch, const MaskedWeights& mw, Scratch& s,
               Matrix& p);

  Communicator& comm_;
  std::size_t n_;
  std::size_t h_total_;
  std::size_t h_local_;
  std::size_t h_begin_;
  Vector params_;
  Matrix mask1_;  ///< h_local x n
  Matrix mask2_;  ///< n x h_local
  MaskedPlan plan_;
  ParamVersion version_;
  VersionedCache<MaskedWeights> cache_;
  Scratch scratch_;
  std::uint64_t allreduce_count_ = 0;
};

}  // namespace vqmc::parallel
